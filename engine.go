// Package dbspinner is an embeddable SQL engine that reproduces the
// system described in "DBSpinner: Making a Case for Iterative
// Processing in Databases" (ICDE 2021): native support for iterative
// common table expressions
//
//	WITH ITERATIVE R (cols) AS ( R0 ITERATE Ri UNTIL Tc ) Qf
//
// implemented as a functional rewrite into a single step program with
// two new executor operators, rename and loop, plus the paper's three
// optimizations — data-movement minimization, common-result
// materialization and restricted predicate push down.
//
// The engine also supports ordinary SQL (SELECT with joins, grouping
// and set operations; CREATE/DROP/INSERT/UPDATE/DELETE; regular and
// recursive CTEs), which the baselines in the paper's evaluation are
// built from.
package dbspinner

import (
	"fmt"
	"strings"
	"sync"

	"dbspinner/internal/ast"
	"dbspinner/internal/catalog"
	"dbspinner/internal/core"
	"dbspinner/internal/exec"
	"dbspinner/internal/mpp"
	"dbspinner/internal/parser"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
	"dbspinner/internal/txn"
	"dbspinner/internal/verify"
)

// Value is a SQL datum (NULL, BOOLEAN, INT, FLOAT or VARCHAR).
type Value = sqltypes.Value

// Row is one result tuple.
type Row = sqltypes.Row

// Convenience constructors re-exported for embedding users.
var (
	// NewInt builds an INT value.
	NewInt = sqltypes.NewInt
	// NewFloat builds a FLOAT value.
	NewFloat = sqltypes.NewFloat
	// NewString builds a VARCHAR value.
	NewString = sqltypes.NewString
	// NewBool builds a BOOLEAN value.
	NewBool = sqltypes.NewBool
	// Null is the SQL NULL constant.
	Null = sqltypes.NullValue
)

// ErrIterationCapExceeded is the sentinel wrapped by every iteration
// safety-cap failure: an iterative CTE whose termination the static
// analysis could not prove hit Config.MaxIterations, or a recursive
// CTE never reached its fixed point. Match with errors.Is.
var ErrIterationCapExceeded = core.ErrIterationCapExceeded

// IterationCapError is the structured error behind
// ErrIterationCapExceeded: which CTE hit the cap, the cap value, and
// the analysis diagnostics explaining why termination was unprovable.
// Match with errors.As.
type IterationCapError = core.IterationCapError

// Config controls an Engine. The zero value is a sensible default:
// four hash partitions per table and every optimization enabled.
type Config struct {
	// Partitions is the number of hash partitions per table, modelling
	// the shared-nothing layout (default 4).
	Partitions int

	// Parallel executes query plans on the shared-nothing MPP machine:
	// one fragment goroutine per partition with shuffle exchanges
	// between stages. Off by default (single-threaded volcano
	// execution); results are identical either way.
	Parallel bool

	// ParallelSteps bounds the worker pool of the dependency-DAG step
	// scheduler: within each straight-line region of a rewritten step
	// program, steps whose statically derived effect sets are disjoint
	// (internal/effects, re-verified by internal/verify) execute
	// concurrently, up to this many at once. 0 or 1 keeps the
	// sequential step loop. Composes with Parallel, which parallelizes
	// within a step across partitions; results are byte-identical
	// either way.
	ParallelSteps int

	// The paper's optimizations are on by default; the Disable knobs
	// exist so benchmarks can measure the non-optimized baselines of
	// §VII.
	DisableRenameOpt         bool // Figure 8 baseline: copy-back instead of rename
	DisableCommonResultOpt   bool // Figure 9 baseline
	DisablePredicatePushdown bool // Figure 10 baseline

	// DisableColumnPruning turns off the column-level dataflow
	// optimizations (internal/dataflow): projection pruning of
	// intermediate results down to their live columns, filter hoisting
	// into common blocks, and liveness-driven truncation at each
	// result's last use. On by default; pruning is automatically
	// withheld wherever it could be observed (UNTIL DELTA / UNTIL n
	// UPDATES compare whole rows), so results are byte-identical either
	// way.
	DisableColumnPruning bool

	// DeltaIteration enables delta-driven (semi-naive) evaluation of
	// iterative CTEs on the merge path: Ri's scan of the iterative
	// reference reads only the rows the previous iteration changed
	// (plus the keys they reach through base-table equijoins) instead
	// of the full CTE. Applied only when a static safety analysis of
	// Ri proves the restriction sound; otherwise the full plan runs.
	// Results are identical either way. Off by default.
	DeltaIteration bool

	// DisableVerify turns off the structural program verifier that
	// checks every rewritten step program against the Table I
	// invariants before execution (internal/verify). On by default; the
	// knob exists for benchmarks that want rewrite time without the
	// verification pass.
	DisableVerify bool

	// MaxIterations sizes the safety cap installed on iterative-CTE
	// loops whose termination the static converge analysis cannot
	// prove (Unknown verdicts in EXPLAIN): such a loop fails with
	// ErrIterationCapExceeded instead of spinning forever. Loops with
	// a Terminates or Converges verdict never carry the guard. The
	// same value caps recursive-CTE fixed-point evaluation. Zero means
	// the default (100000); the guard cannot be disabled, only sized.
	MaxIterations int64
}

// Stats accumulates engine counters across statements.
type Stats struct {
	Queries    int64 // SELECT statements executed
	Statements int64 // DDL/DML statements executed

	// Iterative-CTE counters (per §VII experiments).
	Iterations   int64 // loop iterations across iterative queries
	Renames      int64 // rename operator executions
	MovedRows    int64 // rows physically copied back (baseline path)
	CommonBlocks int64 // common results materialized
	UpdatedRows  int64 // rows written to working tables
	RiFullRows   int64 // CTE rows a full Ri evaluation would read (delta accounting)
	RiInputRows  int64 // CTE rows actually fed to Ri's iterative reference

	// Data-movement accounting for the column-pruning experiment:
	// cells (rows × columns) written into intermediate results by
	// materialize/merge/copy-back steps, and cells read back out of
	// materialized results by scans.
	MaterializedCells int64
	ResultCellsRead   int64

	// Executor counters.
	RowsScanned  int64
	RowsJoined   int64
	RowsGrouped  int64
	RowsShuffled int64 // rows moved by MPP exchanges (Parallel mode)

	// DML overhead counters (what single-plan execution avoids).
	LocksAcquired int64
	WALRecords    int64
	WALBytes      int64
	TxnCommitted  int64
}

// Result is the outcome of a Query call.
type Result struct {
	Columns []string
	Rows    []Row
}

// Engine is an embedded DBSpinner instance. It is safe for concurrent
// use; statements are serialized internally.
type Engine struct {
	mu    sync.Mutex
	cfg   Config
	cat   *catalog.Catalog
	rt    *exec.StoreRuntime
	txn   *txn.Manager
	stats Stats
}

// New creates an engine.
func New(cfg Config) *Engine {
	if cfg.Partitions < 1 {
		cfg.Partitions = 4
	}
	cat := catalog.New(cfg.Partitions)
	return &Engine{
		cfg: cfg,
		cat: cat,
		rt:  exec.NewStoreRuntime(cat, storage.NewResultStore()),
		txn: txn.NewManager(),
	}
}

// coreOptions maps the config to the rewrite options.
func (e *Engine) coreOptions() core.Options {
	return core.Options{
		UseRename:          !e.cfg.DisableRenameOpt,
		CommonResults:      !e.cfg.DisableCommonResultOpt,
		PushDownPredicates: !e.cfg.DisablePredicatePushdown,
		ColumnPruning:      !e.cfg.DisableColumnPruning,
		DeltaIteration:     e.cfg.DeltaIteration,
		Parts:              e.cfg.Partitions,
		Parallel:           e.cfg.Parallel,
		ParallelSteps:      e.cfg.ParallelSteps,
		Verify:             !e.cfg.DisableVerify,
		MaxIterations:      e.cfg.MaxIterations,
	}
}

// Query executes a single SELECT statement (including iterative and
// recursive CTE queries) and returns its rows.
func (e *Engine) Query(sql string) (*Result, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*ast.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("Query expects a SELECT statement; use Exec for %T", stmt)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.querySelect(sel)
}

func (e *Engine) querySelect(sel *ast.SelectStmt) (*Result, error) {
	e.stats.Queries++
	switch {
	case core.HasIterative(sel):
		prog, err := core.Rewrite(sel, e.rt, e.coreOptions())
		if err != nil {
			return nil, err
		}
		var cs core.Stats
		rows, err := prog.Run(e.rt, &cs)
		if err != nil {
			return nil, err
		}
		e.absorbCoreStats(&cs)
		return &Result{Columns: colNames(prog.FinalColumns), Rows: rows}, nil

	case sel.With != nil && sel.With.Recursive:
		rows, cols, err := core.ExecuteRecursive(sel, e.rt, e.cfg.Partitions, e.cfg.MaxIterations)
		if err != nil {
			return nil, err
		}
		return &Result{Columns: colNames(cols), Rows: rows}, nil

	default:
		node, err := plan.NewBuilder(e.rt).Build(sel)
		if err != nil {
			return nil, err
		}
		var es exec.Stats
		var rows []Row
		if e.cfg.Parallel && e.cfg.Partitions > 1 {
			var ms mpp.Stats
			m := mpp.New(e.rt, e.cfg.Partitions, &ms, &es)
			rows, err = m.Run(node)
			e.stats.RowsShuffled += ms.RowsShuffled
		} else {
			rows, err = exec.Run(node, e.rt, &es)
		}
		if err != nil {
			return nil, err
		}
		e.absorbExecStats(&es)
		return &Result{Columns: colNames(node.Columns()), Rows: rows}, nil
	}
}

func (e *Engine) absorbCoreStats(cs *core.Stats) {
	e.stats.Iterations += int64(cs.Iterations)
	e.stats.RowsShuffled += cs.RowsShuffled
	e.stats.Renames += int64(cs.Renames)
	e.stats.MovedRows += cs.MovedRows
	e.stats.CommonBlocks += int64(cs.CommonBlocks)
	e.stats.UpdatedRows += cs.UpdatedRows
	e.stats.RiFullRows += cs.RiFullRows
	e.stats.RiInputRows += cs.RiInputRows
	e.stats.MaterializedCells += cs.MaterializedCells
	e.absorbExecStats(&cs.Exec)
}

func (e *Engine) absorbExecStats(es *exec.Stats) {
	e.stats.RowsScanned += es.RowsScanned
	e.stats.RowsJoined += es.RowsJoined
	e.stats.RowsGrouped += es.RowsGrouped
	e.stats.ResultCellsRead += es.ResultCellsRead
}

func colNames(cols []plan.ColInfo) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}

// Exec executes a single DDL or DML statement and returns the number
// of affected rows.
func (e *Engine) Exec(sql string) (int64, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.execStmt(stmt)
}

// ExecScript executes a semicolon-separated script of DDL/DML
// statements (SELECTs are executed and their results discarded).
func (e *Engine) ExecScript(sql string) error {
	stmts, err := parser.ParseAll(sql)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, stmt := range stmts {
		if sel, ok := stmt.(*ast.SelectStmt); ok {
			if _, err := e.querySelect(sel); err != nil {
				return err
			}
			continue
		}
		if _, err := e.execStmt(stmt); err != nil {
			return err
		}
	}
	return nil
}

// Explain returns the plan of a statement. For iterative-CTE queries
// this is the rewritten step program of Table I; for ordinary SELECTs
// the logical plan tree.
func (e *Engine) Explain(sql string) (string, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return "", err
	}
	if ex, ok := stmt.(*ast.Explain); ok {
		stmt = ex.Stmt
	}
	sel, ok := stmt.(*ast.SelectStmt)
	if !ok {
		return "", fmt.Errorf("EXPLAIN supports SELECT statements, got %T", stmt)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch {
	case core.HasIterative(sel):
		// EXPLAIN reports verifier findings instead of failing on them,
		// so the rewrite runs unverified and the check happens here.
		opts := e.coreOptions()
		opts.Verify = false
		prog, err := core.Rewrite(sel, e.rt, opts)
		if err != nil {
			return "", err
		}
		out := prog.Explain()
		if !e.cfg.DisableVerify {
			if diags := verify.Check(prog, sel); len(diags) > 0 {
				var b strings.Builder
				b.WriteString(out)
				for _, d := range diags {
					fmt.Fprintf(&b, "Verifier: %s\n", d)
				}
				return b.String(), nil
			}
			out += fmt.Sprintf("Verifier: OK (%d steps, %d invariant classes checked).\n",
				len(prog.Steps), verify.ClassCount)
		}
		return out, nil
	case sel.With != nil && sel.With.Recursive:
		return "RecursiveUnion " + sel.With.CTEs[0].Name + "\n", nil
	default:
		node, err := plan.NewBuilder(e.rt).Build(sel)
		if err != nil {
			return "", err
		}
		return plan.ExplainTree(node), nil
	}
}

// Stats returns a snapshot of the engine counters (WAL/lock counters
// are read live from the transaction manager).
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.LocksAcquired = e.txn.Locks.Acquired
	s.WALRecords = e.txn.Log.Records
	s.WALBytes = e.txn.Log.Bytes()
	s.TxnCommitted = e.txn.Committed
	return s
}

// ResetStats zeroes the counters (the WAL itself is checkpointed).
func (e *Engine) ResetStats() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = Stats{}
	e.txn.Locks.Acquired = 0
	e.txn.Log.Reset()
	e.txn.Committed = 0
}

// BulkInsert loads rows into a table without per-statement transaction
// overhead; it is the fast path used by dataset loaders. Values are
// cast to the declared column types.
func (e *Engine) BulkInsert(table string, rows []Row) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.cat.Get(table)
	if t == nil {
		return fmt.Errorf("table %q does not exist", table)
	}
	for _, r := range rows {
		cast, err := castRow(r, t.Schema)
		if err != nil {
			return err
		}
		t.Insert(cast)
	}
	return nil
}

// TableRowCount returns the number of rows in a base table.
func (e *Engine) TableRowCount(table string) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.cat.Get(table)
	if t == nil {
		return 0, fmt.Errorf("table %q does not exist", table)
	}
	return t.Len(), nil
}

// Tables lists the base tables.
func (e *Engine) Tables() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cat.Names()
}

func castRow(r Row, schema sqltypes.Schema) (Row, error) {
	if len(r) != len(schema) {
		return nil, fmt.Errorf("row has %d values, table has %d columns", len(r), len(schema))
	}
	out := make(Row, len(r))
	for i, v := range r {
		c, err := sqltypes.Cast(v, schema[i].Type)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", schema[i].Name, err)
		}
		out[i] = c
	}
	return out, nil
}

// String renders a result as a simple aligned table (for the shell and
// examples).
func (r *Result) String() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	cells := make([][]string, 0, len(r.Rows)+1)
	header := make([]string, len(r.Columns))
	copy(header, r.Columns)
	cells = append(cells, header)
	for _, row := range r.Rows {
		line := make([]string, len(row))
		for i, v := range row {
			line[i] = v.String()
		}
		cells = append(cells, line)
	}
	for _, line := range cells {
		for i, cell := range line {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for li, line := range cells {
		for i, cell := range line {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(line)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
		if li == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
