// Package dbspinner is an embeddable SQL engine that reproduces the
// system described in "DBSpinner: Making a Case for Iterative
// Processing in Databases" (ICDE 2021): native support for iterative
// common table expressions
//
//	WITH ITERATIVE R (cols) AS ( R0 ITERATE Ri UNTIL Tc ) Qf
//
// implemented as a functional rewrite into a single step program with
// two new executor operators, rename and loop, plus the paper's three
// optimizations — data-movement minimization, common-result
// materialization and restricted predicate push down.
//
// The engine also supports ordinary SQL (SELECT with joins, grouping
// and set operations; CREATE/DROP/INSERT/UPDATE/DELETE; regular and
// recursive CTEs), which the baselines in the paper's evaluation are
// built from.
package dbspinner

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"dbspinner/internal/ast"
	"dbspinner/internal/catalog"
	"dbspinner/internal/core"
	"dbspinner/internal/exec"
	"dbspinner/internal/faultinject"
	"dbspinner/internal/mpp"
	"dbspinner/internal/parser"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
	"dbspinner/internal/txn"
	"dbspinner/internal/verify"
)

// Value is a SQL datum (NULL, BOOLEAN, INT, FLOAT or VARCHAR).
type Value = sqltypes.Value

// Row is one result tuple.
type Row = sqltypes.Row

// Convenience constructors re-exported for embedding users.
var (
	// NewInt builds an INT value.
	NewInt = sqltypes.NewInt
	// NewFloat builds a FLOAT value.
	NewFloat = sqltypes.NewFloat
	// NewString builds a VARCHAR value.
	NewString = sqltypes.NewString
	// NewBool builds a BOOLEAN value.
	NewBool = sqltypes.NewBool
	// Null is the SQL NULL constant.
	Null = sqltypes.NullValue
)

// ErrIterationCapExceeded is the sentinel wrapped by every iteration
// safety-cap failure: an iterative CTE whose termination the static
// analysis could not prove hit Config.MaxIterations, or a recursive
// CTE never reached its fixed point. Match with errors.Is.
var ErrIterationCapExceeded = core.ErrIterationCapExceeded

// IterationCapError is the structured error behind
// ErrIterationCapExceeded: which CTE hit the cap, the cap value, and
// the analysis diagnostics explaining why termination was unprovable.
// Match with errors.As.
type IterationCapError = core.IterationCapError

// ErrQueryCanceled is the sentinel wrapped by every cancellation
// failure: the context passed to QueryContext/ExecContext was canceled
// while the statement was running. Match with errors.Is; errors.As on
// *QueryLifecycleError recovers the iteration and step reached.
var ErrQueryCanceled = core.ErrQueryCanceled

// ErrQueryTimeout is the sentinel wrapped by every deadline failure:
// the caller's context deadline or Config.QueryTimeout expired while
// the statement was running. Match with errors.Is; errors.As on
// *QueryLifecycleError recovers the iteration and step reached.
var ErrQueryTimeout = core.ErrQueryTimeout

// QueryLifecycleError is the structured error behind ErrQueryCanceled
// and ErrQueryTimeout: the iteration and step the query had reached
// when the cancellation or deadline fired. Match with errors.As.
type QueryLifecycleError = core.QueryLifecycleError

// ErrInternalPanic is the sentinel wrapped by every contained panic: a
// step, scheduler-region worker or MPP partition worker panicked and
// the containment layer converted the panic into a query failure
// instead of a process crash. Match with errors.Is.
var ErrInternalPanic = core.ErrInternalPanic

// InternalPanicError is the structured error behind ErrInternalPanic:
// the panic value, the goroutine stack at recovery, and the iteration,
// step and partition reached (0 or -1 where not applicable). Match
// with errors.As.
type InternalPanicError = core.InternalPanicError

// ErrFaultInjected is the sentinel wrapped by every error-mode fault
// fired from Config.FaultSchedule. Match with errors.Is to tell a
// scheduled fault from a real failure.
var ErrFaultInjected = faultinject.ErrInjected

// FaultInjectedError is the structured error behind ErrFaultInjected:
// which fault point fired and at which hit count. Match with
// errors.As.
type FaultInjectedError = faultinject.InjectedError

// Fault is one Config.FaultSchedule entry: fire at the Hit-th arrival
// (1-based) at the named point, in the given mode.
type Fault = faultinject.Fault

// FaultMode selects how a scheduled fault manifests: FaultModeError
// makes the point return a structured error, FaultModePanic makes it
// panic (exercising the containment layer).
type FaultMode = faultinject.Mode

// Fault modes and registered fault points, re-exported for schedule
// construction without the textual format.
const (
	FaultModeError = faultinject.ModeError
	FaultModePanic = faultinject.ModePanic
)

// Schedule helpers: ParseFaultSchedule parses the textual
// "point@hit:mode[,...]" form, FormatFaultSchedule renders it back,
// and FaultPoints lists the registered point names ("step", "region",
// "partition", "storage") so tests can enumerate the full matrix.
var (
	ParseFaultSchedule  = faultinject.ParseSchedule
	FormatFaultSchedule = faultinject.FormatSchedule
	FaultPoints         = faultinject.Points
)

// RetryPolicy bounds the iteration-granular retry of failed iterative
// queries (Config.RetryPolicy): MaxAttempts retries per checkpoint
// with exponential Backoff, descending the graceful-degradation ladder
// (same plan, then serial, then volcano) between exhausted rungs
// unless NoDegrade is set.
type RetryPolicy = core.RetryPolicy

// IterationTrace is the per-iteration runtime trace recorded when
// Config.TraceIterations is set (or EXPLAIN ANALYZE runs): one span
// per loop iteration — wall clock, rows written, delta-frontier size —
// plus cumulative per-step timings.
type IterationTrace = core.IterationTrace

// IterationSpan is one iteration's trace record.
type IterationSpan = core.IterationSpan

// StepTiming is one step's cumulative timing record.
type StepTiming = core.StepTiming

// Config controls an Engine. The zero value is a sensible default:
// four hash partitions per table and every optimization enabled.
type Config struct {
	// Partitions is the number of hash partitions per table, modelling
	// the shared-nothing layout (default 4).
	Partitions int

	// Parallel executes query plans on the shared-nothing MPP machine:
	// one fragment goroutine per partition with shuffle exchanges
	// between stages. Off by default (single-threaded volcano
	// execution); results are identical either way.
	Parallel bool

	// ParallelSteps bounds the worker pool of the dependency-DAG step
	// scheduler: within each straight-line region of a rewritten step
	// program, steps whose statically derived effect sets are disjoint
	// (internal/effects, re-verified by internal/verify) execute
	// concurrently, up to this many at once. 0 or 1 keeps the
	// sequential step loop. Composes with Parallel, which parallelizes
	// within a step across partitions; results are byte-identical
	// either way.
	ParallelSteps int

	// The paper's optimizations are on by default; the Disable knobs
	// exist so benchmarks can measure the non-optimized baselines of
	// §VII.
	DisableRenameOpt         bool // Figure 8 baseline: copy-back instead of rename
	DisableCommonResultOpt   bool // Figure 9 baseline
	DisablePredicatePushdown bool // Figure 10 baseline

	// DisableColumnPruning turns off the column-level dataflow
	// optimizations (internal/dataflow): projection pruning of
	// intermediate results down to their live columns, filter hoisting
	// into common blocks, and liveness-driven truncation at each
	// result's last use. On by default; pruning is automatically
	// withheld wherever it could be observed (UNTIL DELTA / UNTIL n
	// UPDATES compare whole rows), so results are byte-identical either
	// way.
	DisableColumnPruning bool

	// DeltaIteration enables delta-driven (semi-naive) evaluation of
	// iterative CTEs on the merge path: Ri's scan of the iterative
	// reference reads only the rows the previous iteration changed
	// (plus the keys they reach through base-table equijoins) instead
	// of the full CTE. Applied only when a static safety analysis of
	// Ri proves the restriction sound; otherwise the full plan runs.
	// Results are identical either way. Off by default.
	DeltaIteration bool

	// DisableShuffleElision turns off the shuffle-elision optimization
	// licensed by the static partition-property analysis
	// (internal/distprop): with elision on (the default), exchanges
	// whose input is statically proven to be already partitioned on
	// compatible keys are skipped by the MPP machine. Effective only
	// with Parallel and Partitions > 1; results are byte-identical
	// either way. The knob exists so benchmarks can measure the
	// always-shuffle baseline.
	DisableShuffleElision bool

	// CheckShuffleElision arms a dynamic cross-check on every elided
	// exchange: the machine re-hashes each consumed row and fails the
	// query if any row sits on a partition the claimed routing columns
	// do not map it to. A belt-and-braces guard for the static
	// analysis; off by default because it re-does the hashing the
	// elision saved.
	CheckShuffleElision bool

	// DisableIncrementalAgg turns off incremental aggregate maintenance
	// (internal/aggprop): with maintenance on (the default), an
	// iterative CTE whose aggregates the static decomposability analysis
	// proves maintainable — and whose group keys are stable and
	// retractions frontier-visible across the back-edge — keeps its
	// per-group aggregate results in the result store between iterations
	// and re-folds only the groups the changed-key frontier touched.
	// Volcano execution only (MPP runs keep the full plan, fail closed);
	// results are byte-identical either way, row order and float
	// accumulation order included. The knob exists so benchmarks can
	// measure the full re-aggregation baseline.
	DisableIncrementalAgg bool

	// CheckIncrementalAgg arms a dynamic cross-check on every maintained
	// aggregate: each iteration, a deterministic sample of the groups
	// served from the cache is recomputed from scratch through the
	// restricted plan and any divergence fails the query. A
	// belt-and-braces guard for the static analysis; off by default
	// because it re-does part of the folding the maintenance saved.
	CheckIncrementalAgg bool

	// DisableVerify turns off the structural program verifier that
	// checks every rewritten step program against the Table I
	// invariants before execution (internal/verify). On by default; the
	// knob exists for benchmarks that want rewrite time without the
	// verification pass.
	DisableVerify bool

	// QueryTimeout, when > 0, bounds the wall clock of every statement:
	// a statement still running when it expires fails with
	// ErrQueryTimeout. A deadline already present on the context passed
	// to QueryContext/ExecContext takes precedence. Zero means no
	// engine-imposed deadline.
	QueryTimeout time.Duration

	// TraceIterations records a per-iteration runtime trace for every
	// iterative query: wall clock, rows written and delta-frontier size
	// per iteration, plus per-step timings, exposed as
	// Stats.IterationTrace and rendered by EXPLAIN ANALYZE. Off by
	// default; the untraced path allocates nothing and never reads the
	// clock.
	TraceIterations bool

	// MaxIterations sizes the safety cap installed on iterative-CTE
	// loops whose termination the static converge analysis cannot
	// prove (Unknown verdicts in EXPLAIN): such a loop fails with
	// ErrIterationCapExceeded instead of spinning forever. Loops with
	// a Terminates or Converges verdict never carry the guard. The
	// same value caps recursive-CTE fixed-point evaluation. Zero means
	// the default (100000); the guard cannot be disabled, only sized.
	MaxIterations int64

	// RetryPolicy enables iteration-granular fault tolerance for
	// iterative-CTE queries: the engine checkpoints the loop-carried
	// state at every back-edge and, when an iteration fails with a
	// retryable error (anything but cancellation, deadline or the
	// iteration cap), restores the checkpoint and re-runs it — up to
	// MaxAttempts times per checkpoint, with exponential Backoff
	// between attempts. When a checkpoint's attempts are exhausted the
	// engine degrades gracefully and tries again: first disabling the
	// parallel step scheduler, shuffle elision and incremental
	// aggregate maintenance, then falling back to single-threaded
	// volcano execution; NoDegrade fails instead. A query that retries
	// to success returns byte-identical rows. The zero value disables
	// checkpointing entirely (no snapshot cost on the hot path).
	RetryPolicy RetryPolicy

	// FaultSchedule arms deterministic fault injection for testing the
	// fault-tolerance machinery: each entry fires an error or panic at
	// the Hit-th arrival at a registered fault point ("step", "region",
	// "partition", "storage"). No wall clock or randomness is involved,
	// so a failing schedule replays bit-for-bit; see ParseFaultSchedule
	// for the textual form. Empty (the default) costs one nil check
	// per point.
	FaultSchedule []Fault
}

// Stats accumulates engine counters across statements.
type Stats struct {
	Queries    int64 // SELECT statements executed
	Statements int64 // DDL/DML statements executed

	// Iterative-CTE counters (per §VII experiments).
	Iterations   int64 // loop iterations across iterative queries
	Renames      int64 // rename operator executions
	MovedRows    int64 // rows physically copied back (baseline path)
	CommonBlocks int64 // common results materialized
	UpdatedRows  int64 // rows written to working tables
	RiFullRows   int64 // CTE rows a full Ri evaluation would read (delta accounting)
	RiInputRows  int64 // CTE rows actually fed to Ri's iterative reference
	AggFullRows  int64 // CTE rows a full re-aggregation would fold (incremental-agg accounting)
	AggInputRows int64 // CTE rows actually re-folded by maintained aggregation
	RowsAggInput int64 // input rows drained by aggregate operators

	// Fault-tolerance counters (Config.RetryPolicy): iterations re-run
	// from a back-edge checkpoint, and rungs descended on the
	// graceful-degradation ladder.
	Retries      int64
	Degradations int64

	// Data-movement accounting for the column-pruning experiment:
	// cells (rows × columns) written into intermediate results by
	// materialize/merge/copy-back steps, and cells read back out of
	// materialized results by scans.
	MaterializedCells int64
	ResultCellsRead   int64

	// Executor counters.
	RowsScanned  int64
	RowsJoined   int64
	RowsGrouped  int64
	RowsShuffled int64 // rows moved by MPP exchanges (Parallel mode)

	// Shuffle-elision accounting (internal/distprop): exchanges the
	// static partition-property analysis proved unnecessary and the
	// machine skipped, and the input rows those skipped exchanges
	// would otherwise have re-hashed.
	ShufflesElided int64
	RowsElided     int64

	// IterationTrace is the runtime trace of the most recent traced
	// iterative query (Config.TraceIterations or EXPLAIN ANALYZE); nil
	// when no traced query has run.
	IterationTrace *IterationTrace

	// DML overhead counters (what single-plan execution avoids).
	LocksAcquired int64
	WALRecords    int64
	WALBytes      int64
	TxnCommitted  int64
}

// Result is the outcome of a Query call.
type Result struct {
	Columns []string
	Rows    []Row
}

// Engine is an embedded DBSpinner instance. It is safe for concurrent
// use; statements are serialized internally.
type Engine struct {
	mu    sync.Mutex
	cfg   Config
	cat   *catalog.Catalog
	rt    *exec.StoreRuntime
	txn   *txn.Manager
	stats Stats
}

// New creates an engine.
func New(cfg Config) *Engine {
	if cfg.Partitions < 1 {
		cfg.Partitions = 4
	}
	cat := catalog.New(cfg.Partitions)
	return &Engine{
		cfg: cfg,
		cat: cat,
		rt:  exec.NewStoreRuntime(cat, storage.NewResultStore()),
		txn: txn.NewManager(),
	}
}

// coreOptions maps the config to the rewrite options.
func (e *Engine) coreOptions() core.Options {
	return core.Options{
		UseRename:           !e.cfg.DisableRenameOpt,
		CommonResults:       !e.cfg.DisableCommonResultOpt,
		PushDownPredicates:  !e.cfg.DisablePredicatePushdown,
		ColumnPruning:       !e.cfg.DisableColumnPruning,
		DeltaIteration:      e.cfg.DeltaIteration,
		Parts:               e.cfg.Partitions,
		Parallel:            e.cfg.Parallel,
		ParallelSteps:       e.cfg.ParallelSteps,
		Verify:              !e.cfg.DisableVerify,
		ShuffleElision:      !e.cfg.DisableShuffleElision,
		CheckShuffleElision: e.cfg.CheckShuffleElision,
		IncrementalAgg:      !e.cfg.DisableIncrementalAgg,
		CheckIncrementalAgg: e.cfg.CheckIncrementalAgg,
		MaxIterations:       e.cfg.MaxIterations,
		Trace:               e.cfg.TraceIterations,
		QueryTimeout:        e.cfg.QueryTimeout,
		Retry:               e.cfg.RetryPolicy,
		FaultSchedule:       e.cfg.FaultSchedule,
	}
}

// Query executes a single SELECT statement (including iterative and
// recursive CTE queries) and returns its rows.
func (e *Engine) Query(sql string) (*Result, error) {
	return e.QueryContext(context.Background(), sql)
}

// QueryContext is Query under a cancellation context: the statement
// polls ctx at every iteration boundary, scheduler region, MPP
// partition batch and executor inner loop, and a fired cancellation or
// deadline fails the query with ErrQueryCanceled or ErrQueryTimeout
// (a QueryLifecycleError naming the iteration and step reached). When
// Config.QueryTimeout is set and ctx carries no deadline of its own,
// the engine arms its own deadline around the statement.
func (e *Engine) QueryContext(ctx context.Context, sql string) (*Result, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*ast.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("Query expects a SELECT statement; use Exec for %T", stmt)
	}
	ctx, cancel := e.armTimeout(ctx)
	defer cancel()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.querySelect(ctx, sel)
}

// armTimeout applies Config.QueryTimeout to ctx unless the caller
// already set a deadline. The returned cancel func is always non-nil.
func (e *Engine) armTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if e.cfg.QueryTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			return context.WithTimeout(ctx, e.cfg.QueryTimeout)
		}
	}
	return ctx, func() {}
}

func (e *Engine) querySelect(ctx context.Context, sel *ast.SelectStmt) (res *Result, err error) {
	if len(e.cfg.FaultSchedule) > 0 {
		// Arm the storage mutation point for this statement only, so
		// hit counts never leak across queries. The step, region and
		// partition points are armed inside Program.RunContext.
		e.rt.ArmFaults(faultinject.NewRegistry(e.cfg.FaultSchedule))
		defer e.rt.ArmFaults(nil)
	}
	// Last-resort containment: a panic that escapes the executor's own
	// containment layers (e.g. a storage fault on a path with no step
	// context) fails the statement, never the process.
	defer func() {
		if v := recover(); v != nil {
			res = nil
			if ferr, ok := faultinject.AsError(v); ok {
				err = ferr
				return
			}
			err = &core.InternalPanicError{Value: v, Stack: string(debug.Stack()), Partition: -1}
		}
	}()
	e.stats.Queries++
	switch {
	case core.HasIterative(sel):
		prog, err := core.Rewrite(sel, e.rt, e.coreOptions())
		if err != nil {
			return nil, err
		}
		var cs core.Stats
		rows, err := prog.RunContext(ctx, e.rt, &cs)
		// Absorb counters even when the query failed: cap and
		// cancellation diagnostics need the iterations reached.
		e.absorbCoreStats(&cs)
		if cs.Trace != nil {
			e.stats.IterationTrace = cs.Trace
		}
		if err != nil {
			return nil, err
		}
		return &Result{Columns: colNames(prog.FinalColumns), Rows: rows}, nil

	case sel.With != nil && sel.With.Recursive:
		rows, cols, err := core.ExecuteRecursiveContext(ctx, sel, e.rt, e.cfg.Partitions, e.cfg.MaxIterations)
		if err != nil {
			return nil, err
		}
		return &Result{Columns: colNames(cols), Rows: rows}, nil

	default:
		node, err := plan.NewBuilder(e.rt).Build(sel)
		if err != nil {
			return nil, err
		}
		var es exec.Stats
		var rows []Row
		if e.cfg.Parallel && e.cfg.Partitions > 1 {
			var ms mpp.Stats
			m := mpp.New(e.rt, e.cfg.Partitions, &ms, &es)
			m.Ctx = ctx
			rows, err = m.Run(node)
			e.stats.RowsShuffled += ms.RowsShuffled
		} else {
			rows, err = exec.RunContext(ctx, node, e.rt, &es)
		}
		// Absorb counters even when the query failed (see above).
		e.absorbExecStats(&es)
		if err != nil {
			return nil, core.WrapCancel(err, 0, 0, "query")
		}
		return &Result{Columns: colNames(node.Columns()), Rows: rows}, nil
	}
}

func (e *Engine) absorbCoreStats(cs *core.Stats) {
	e.stats.Iterations += int64(cs.Iterations)
	e.stats.RowsShuffled += cs.RowsShuffled
	e.stats.ShufflesElided += cs.ShufflesElided
	e.stats.RowsElided += cs.RowsElided
	e.stats.Renames += int64(cs.Renames)
	e.stats.MovedRows += cs.MovedRows
	e.stats.CommonBlocks += int64(cs.CommonBlocks)
	e.stats.UpdatedRows += cs.UpdatedRows
	e.stats.RiFullRows += cs.RiFullRows
	e.stats.RiInputRows += cs.RiInputRows
	e.stats.AggFullRows += cs.AggFullRows
	e.stats.AggInputRows += cs.AggInputRows
	e.stats.Retries += int64(cs.Retries)
	e.stats.Degradations += int64(cs.Degradations)
	e.stats.MaterializedCells += cs.MaterializedCells
	e.absorbExecStats(&cs.Exec)
}

func (e *Engine) absorbExecStats(es *exec.Stats) {
	e.stats.RowsScanned += es.RowsScanned
	e.stats.RowsJoined += es.RowsJoined
	e.stats.RowsGrouped += es.RowsGrouped
	e.stats.RowsAggInput += es.RowsAggInput
	e.stats.ResultCellsRead += es.ResultCellsRead
}

func colNames(cols []plan.ColInfo) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}

// Exec executes a single DDL or DML statement and returns the number
// of affected rows.
func (e *Engine) Exec(sql string) (int64, error) {
	return e.ExecContext(context.Background(), sql)
}

// ExecContext is Exec under a cancellation context. DDL/DML statements
// are short; the context is checked before execution starts (and
// Config.QueryTimeout is armed the same way as in QueryContext), so a
// canceled context fails fast with ErrQueryCanceled rather than
// interrupting a half-applied statement.
func (e *Engine) ExecContext(ctx context.Context, sql string) (int64, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return 0, err
	}
	ctx, cancel := e.armTimeout(ctx)
	defer cancel()
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return 0, core.WrapCancel(err, 0, 0, "statement")
	}
	return e.execStmt(stmt)
}

// ExecScript executes a semicolon-separated script of DDL/DML
// statements (SELECTs are executed and their results discarded).
func (e *Engine) ExecScript(sql string) error {
	return e.ExecScriptContext(context.Background(), sql)
}

// ExecScriptContext is ExecScript under a cancellation context. Each
// statement runs under its own Config.QueryTimeout window (a deadline
// already on ctx takes precedence and bounds the whole script), and a
// fired cancellation stops the script at the next statement boundary.
func (e *Engine) ExecScriptContext(ctx context.Context, sql string) error {
	stmts, err := parser.ParseAll(sql)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, stmt := range stmts {
		if err := e.execScriptStmt(ctx, stmt); err != nil {
			return err
		}
	}
	return nil
}

// execScriptStmt runs one script statement under a fresh
// Config.QueryTimeout window derived from the script's context.
func (e *Engine) execScriptStmt(ctx context.Context, stmt ast.Statement) error {
	sctx, cancel := e.armTimeout(ctx)
	defer cancel()
	if sel, ok := stmt.(*ast.SelectStmt); ok {
		_, err := e.querySelect(sctx, sel)
		return err
	}
	if err := sctx.Err(); err != nil {
		return core.WrapCancel(err, 0, 0, "statement")
	}
	_, err := e.execStmt(stmt)
	return err
}

// Explain returns the plan of a statement. For iterative-CTE queries
// this is the rewritten step program of Table I; for ordinary SELECTs
// the logical plan tree. EXPLAIN ANALYZE additionally executes the
// statement and appends the runtime trace: per-iteration wall clock,
// rows and delta-frontier size, per-step timings, and the total.
func (e *Engine) Explain(sql string) (string, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return "", err
	}
	analyze := false
	if ex, ok := stmt.(*ast.Explain); ok {
		analyze = ex.Analyze
		stmt = ex.Stmt
	}
	sel, ok := stmt.(*ast.SelectStmt)
	if !ok {
		return "", fmt.Errorf("EXPLAIN supports SELECT statements, got %T", stmt)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch {
	case core.HasIterative(sel):
		// EXPLAIN reports verifier findings instead of failing on them,
		// so the rewrite runs unverified and the check happens here.
		opts := e.coreOptions()
		opts.Verify = false
		prog, err := core.Rewrite(sel, e.rt, opts)
		if err != nil {
			return "", err
		}
		out := prog.Explain()
		if !e.cfg.DisableVerify {
			if diags := verify.Check(prog, sel); len(diags) > 0 {
				var b strings.Builder
				b.WriteString(out)
				for _, d := range diags {
					fmt.Fprintf(&b, "Verifier: %s\n", d)
				}
				return b.String(), nil
			}
			out += fmt.Sprintf("Verifier: OK (%d steps, %d invariant classes checked).\n",
				len(prog.Steps), verify.ClassCount)
		}
		if analyze {
			prog.Trace = true
			var cs core.Stats
			e.stats.Queries++
			_, err := prog.RunContext(context.Background(), e.rt, &cs)
			e.absorbCoreStats(&cs)
			if cs.Trace != nil {
				e.stats.IterationTrace = cs.Trace
			}
			if err != nil {
				return "", err
			}
			out += cs.Trace.Render()
		}
		return out, nil
	case sel.With != nil && sel.With.Recursive:
		out := "RecursiveUnion " + sel.With.CTEs[0].Name + "\n"
		if analyze {
			out += e.analyzePlain(sel)
		}
		return out, nil
	default:
		node, err := plan.NewBuilder(e.rt).Build(sel)
		if err != nil {
			return "", err
		}
		out := plan.ExplainTree(node)
		if analyze {
			out += e.analyzePlain(sel)
		}
		return out, nil
	}
}

// analyzePlain times one execution of a non-iterative statement for
// EXPLAIN ANALYZE and renders its total line (errors render inline:
// EXPLAIN ANALYZE reports, it does not fail the explanation).
func (e *Engine) analyzePlain(sel *ast.SelectStmt) string {
	begin := time.Now()
	res, err := e.querySelect(context.Background(), sel)
	if err != nil {
		return fmt.Sprintf("Execution failed: %v\n", err)
	}
	return fmt.Sprintf("Total: %s wall, %d rows.\n", time.Since(begin), len(res.Rows))
}

// Stats returns a snapshot of the engine counters (WAL/lock counters
// are read live from the transaction manager).
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.LocksAcquired = e.txn.Locks.Acquired
	s.WALRecords = e.txn.Log.Records
	s.WALBytes = e.txn.Log.Bytes()
	s.TxnCommitted = e.txn.Committed
	return s
}

// ResetStats zeroes the counters (the WAL itself is checkpointed).
func (e *Engine) ResetStats() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = Stats{}
	e.txn.Locks.Acquired = 0
	e.txn.Log.Reset()
	e.txn.Committed = 0
}

// BulkInsert loads rows into a table without per-statement transaction
// overhead; it is the fast path used by dataset loaders. Values are
// cast to the declared column types.
func (e *Engine) BulkInsert(table string, rows []Row) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.cat.Get(table)
	if t == nil {
		return fmt.Errorf("table %q does not exist", table)
	}
	for _, r := range rows {
		cast, err := castRow(r, t.Schema)
		if err != nil {
			return err
		}
		t.Insert(cast)
	}
	return nil
}

// TableRowCount returns the number of rows in a base table.
func (e *Engine) TableRowCount(table string) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.cat.Get(table)
	if t == nil {
		return 0, fmt.Errorf("table %q does not exist", table)
	}
	return t.Len(), nil
}

// LiveResults returns the number of intermediate results currently
// registered in the result store. After any statement — clean, failed
// or retried — it must be zero; the fault-tolerance tests use it as
// the leak-freedom observable.
func (e *Engine) LiveResults() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rt.LiveResults()
}

// Tables lists the base tables.
func (e *Engine) Tables() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cat.Names()
}

func castRow(r Row, schema sqltypes.Schema) (Row, error) {
	if len(r) != len(schema) {
		return nil, fmt.Errorf("row has %d values, table has %d columns", len(r), len(schema))
	}
	out := make(Row, len(r))
	for i, v := range r {
		c, err := sqltypes.Cast(v, schema[i].Type)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", schema[i].Name, err)
		}
		out[i] = c
	}
	return out, nil
}

// String renders a result as a simple aligned table (for the shell and
// examples).
func (r *Result) String() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	cells := make([][]string, 0, len(r.Rows)+1)
	header := make([]string, len(r.Columns))
	copy(header, r.Columns)
	cells = append(cells, header)
	for _, row := range r.Rows {
		line := make([]string, len(row))
		for i, v := range row {
			line[i] = v.String()
		}
		cells = append(cells, line)
	}
	for _, line := range cells {
		for i, cell := range line {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for li, line := range cells {
		for i, cell := range line {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(line)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
		if li == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
