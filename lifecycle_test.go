// Query-lifecycle tests: cooperative cancellation, per-query
// deadlines, goroutine hygiene, and the guarantee that a context that
// never fires (and iteration tracing itself) leaves results
// byte-identical. The matrix crosses SSSP and PageRank with
// single-partition vs MPP execution and the sequential vs scheduled
// step loop, since each combination exercises a different set of
// checkpoint sites (step boundaries, scheduler regions, partition
// batches, scan strides).
package dbspinner_test

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"

	"dbspinner"
	"dbspinner/internal/bench"
	"dbspinner/internal/workload"
)

// lifecycleGraph is big enough that a 100000-iteration query runs for
// many seconds if nothing stops it, so a ~20ms cancel always lands
// mid-flight.
func lifecycleGraph(t testing.TB) *workload.Graph {
	t.Helper()
	return workload.PreferentialAttachment(500, 4, workload.WeightUnit, 42)
}

func lifecycleEngine(t testing.TB, parts int, cfg dbspinner.Config) *dbspinner.Engine {
	t.Helper()
	cfg.Partitions = parts
	e, err := bench.NewEngine(lifecycleGraph(t), bench.Config{Partitions: parts}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// settleGoroutines retries until the goroutine count returns to within
// slack of before, tolerating runtime bookkeeping goroutines; workers
// from a canceled region need a moment to observe the context.
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after cancellation", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

type lifecycleCase struct {
	name  string
	sql   string
	parts int
	cfg   dbspinner.Config
}

func lifecycleCases(iterations int) []lifecycleCase {
	queries := []struct {
		name string
		sql  string
	}{
		{"SSSP", bench.SSSPQuery(1, iterations)},
		{"PR", bench.PRQuery(iterations)},
	}
	var cases []lifecycleCase
	for _, q := range queries {
		for _, parts := range []int{1, 4} {
			for _, sched := range []int{0, 4} {
				cfg := dbspinner.Config{ParallelSteps: sched}
				if parts > 1 {
					cfg.Parallel = true
				}
				cases = append(cases, lifecycleCase{
					name:  fmt.Sprintf("%s/parts=%d/sched=%d", q.name, parts, sched),
					sql:   q.sql,
					parts: parts,
					cfg:   cfg,
				})
			}
		}
	}
	return cases
}

// TestCancelMidIteration cancels a deliberately unbounded query ~20ms
// in and requires a prompt, structured ErrQueryCanceled with no
// goroutines left behind.
func TestCancelMidIteration(t *testing.T) {
	for _, tc := range lifecycleCases(100000) {
		t.Run(tc.name, func(t *testing.T) {
			e := lifecycleEngine(t, tc.parts, tc.cfg)
			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(20 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err := e.QueryContext(ctx, tc.sql)
			elapsed := time.Since(start)
			if !errors.Is(err, dbspinner.ErrQueryCanceled) {
				t.Fatalf("err = %v, want ErrQueryCanceled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v does not unwrap to context.Canceled", err)
			}
			var le *dbspinner.QueryLifecycleError
			if !errors.As(err, &le) {
				t.Fatalf("err = %v is not a QueryLifecycleError", err)
			}
			if !strings.Contains(err.Error(), "iteration") {
				t.Fatalf("error %q does not name the iteration reached", err)
			}
			// Bounded kill latency: a checkpoint fires within an
			// iteration boundary, partition batch, or scan stride —
			// never after the full 100000-iteration run.
			if elapsed > 10*time.Second {
				t.Fatalf("cancellation took %v", elapsed)
			}
			settleGoroutines(t, before)
		})
	}
}

// TestQueryTimeout arms the engine-level deadline knob and requires a
// structured ErrQueryTimeout.
func TestQueryTimeout(t *testing.T) {
	for _, tc := range lifecycleCases(100000) {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.QueryTimeout = 25 * time.Millisecond
			e := lifecycleEngine(t, tc.parts, cfg)
			before := runtime.NumGoroutine()
			start := time.Now()
			_, err := e.Query(tc.sql)
			elapsed := time.Since(start)
			if !errors.Is(err, dbspinner.ErrQueryTimeout) {
				t.Fatalf("err = %v, want ErrQueryTimeout", err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v does not unwrap to context.DeadlineExceeded", err)
			}
			var le *dbspinner.QueryLifecycleError
			if !errors.As(err, &le) {
				t.Fatalf("err = %v is not a QueryLifecycleError", err)
			}
			if elapsed > 10*time.Second {
				t.Fatalf("deadline enforcement took %v", elapsed)
			}
			settleGoroutines(t, before)
		})
	}
}

// TestCallerDeadlineWinsOverConfig: an explicit context deadline is
// respected even when Config.QueryTimeout is longer — the knob is a
// default, not an override.
func TestCallerDeadlineWinsOverConfig(t *testing.T) {
	e := lifecycleEngine(t, 4, dbspinner.Config{Parallel: true, QueryTimeout: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	_, err := e.QueryContext(ctx, bench.SSSPQuery(1, 100000))
	if !errors.Is(err, dbspinner.ErrQueryTimeout) {
		t.Fatalf("err = %v, want ErrQueryTimeout from caller deadline", err)
	}
}

// TestPreCanceledContext: a context that is already dead fails fast,
// before any execution work, for both queries and statements.
func TestPreCanceledContext(t *testing.T) {
	e := lifecycleEngine(t, 4, dbspinner.Config{Parallel: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := e.QueryContext(ctx, bench.SSSPQuery(1, 100000)); !errors.Is(err, dbspinner.ErrQueryCanceled) {
		t.Fatalf("QueryContext err = %v, want ErrQueryCanceled", err)
	}
	if _, err := e.ExecContext(ctx, "INSERT INTO edges VALUES (1, 2, 1.0)"); !errors.Is(err, dbspinner.ErrQueryCanceled) {
		t.Fatalf("ExecContext err = %v, want ErrQueryCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-canceled context took %v to fail", elapsed)
	}
}

// TestStatsSurviveFailure: a canceled statement still publishes the
// work it did — Stats must not be zeroed by the error path.
func TestStatsSurviveFailure(t *testing.T) {
	e := lifecycleEngine(t, 4, dbspinner.Config{Parallel: true})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := e.QueryContext(ctx, bench.PRQuery(100000))
	if !errors.Is(err, dbspinner.ErrQueryCanceled) {
		t.Fatalf("err = %v, want ErrQueryCanceled", err)
	}
	if s := e.Stats(); s.Iterations == 0 {
		t.Fatalf("stats lost on failure: %+v", s)
	}
}

// TestNonFiringContextIsInvisible: running under a cancellable context
// that never fires, with or without tracing, must give byte-identical
// results to the plain path.
func TestNonFiringContextIsInvisible(t *testing.T) {
	for _, q := range []struct {
		name string
		sql  string
	}{
		{"SSSP", bench.SSSPQuery(1, 5)},
		{"PR", bench.PRQuery(5)},
	} {
		t.Run(q.name, func(t *testing.T) {
			base := lifecycleEngine(t, 4, dbspinner.Config{Parallel: true})
			want, err := base.Query(q.sql)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			for _, variant := range []struct {
				name string
				cfg  dbspinner.Config
			}{
				{"context", dbspinner.Config{Parallel: true}},
				{"traced", dbspinner.Config{Parallel: true, TraceIterations: true}},
				{"timeout", dbspinner.Config{Parallel: true, QueryTimeout: time.Hour}},
			} {
				e := lifecycleEngine(t, 4, variant.cfg)
				got, err := e.QueryContext(ctx, q.sql)
				if err != nil {
					t.Fatalf("%s: %v", variant.name, err)
				}
				if fmt.Sprint(resultRows(want)) != fmt.Sprint(resultRows(got)) {
					t.Fatalf("%s: results diverge from plain run", variant.name)
				}
				if variant.cfg.TraceIterations {
					tr := e.Stats().IterationTrace
					if tr == nil || len(tr.Spans) != 5 {
						t.Fatalf("traced run has trace %+v, want 5 spans", tr)
					}
				}
			}
		})
	}
}

// TestCancelLeavesNoAccumulatorState: with incremental aggregate
// maintenance on (the default), a mid-iteration cancel must not leak
// the "Agg#"/"AggSnap#" accumulator slots into the engine's result
// store — the loop epilogue that truncates them never runs on the
// error path, so the run-end cleanup has to. A retried query on the
// same engine would otherwise diff its first iteration against the
// dead query's snapshot and serve stale groups; the retry runs with
// the dynamic cross-check armed and must be byte-identical to a fresh
// engine's answer.
func TestCancelLeavesNoAccumulatorState(t *testing.T) {
	for _, q := range []struct {
		name      string
		unbounded string
		bounded   string
	}{
		{"PR", bench.PRQuery(100000), bench.PRQuery(10)},
		{"SSSP", bench.SSSPQuery(1, 100000), bench.SSSPQuery(1, 10)},
	} {
		t.Run(q.name, func(t *testing.T) {
			cfg := dbspinner.Config{CheckIncrementalAgg: true}
			e := lifecycleEngine(t, 1, cfg)
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(20 * time.Millisecond)
				cancel()
			}()
			_, err := e.QueryContext(ctx, q.unbounded)
			if !errors.Is(err, dbspinner.ErrQueryCanceled) {
				t.Fatalf("err = %v, want ErrQueryCanceled", err)
			}
			// The canceled run must have exercised maintenance, or the
			// leak check below is vacuous.
			if e.Stats().AggFullRows == 0 {
				t.Fatal("canceled run never engaged aggregate maintenance")
			}
			// Retry on the same engine: the cross-check fails the query
			// if a stale accumulator survived the cancel, and parity
			// with a fresh engine catches anything the sample misses.
			got, err := e.Query(q.bounded)
			if err != nil {
				t.Fatalf("retry after cancel: %v", err)
			}
			want, err := lifecycleEngine(t, 1, cfg).Query(q.bounded)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(resultRows(got)) != fmt.Sprint(resultRows(want)) {
				t.Fatal("retry after cancel diverges from a fresh engine: accumulator state leaked")
			}
		})
	}
}

// TestExecScriptContext: scripts honor cancellation at statement
// boundaries, and each statement runs under its own
// Config.QueryTimeout window — a fast statement succeeds before an
// unbounded one times out.
func TestExecScriptContext(t *testing.T) {
	e := lifecycleEngine(t, 4, dbspinner.Config{Parallel: true, QueryTimeout: 25 * time.Millisecond})
	start := time.Now()
	err := e.ExecScriptContext(context.Background(),
		"INSERT INTO edges VALUES (991, 992, 1.0); "+bench.SSSPQuery(1, 100000))
	if !errors.Is(err, dbspinner.ErrQueryTimeout) {
		t.Fatalf("err = %v, want ErrQueryTimeout from the unbounded statement", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("script deadline enforcement took %v", elapsed)
	}
	// The first statement committed before the second timed out.
	n, err := e.TableRowCount("edges")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("fast statement did not run")
	}
	// A pre-canceled context stops the script before any statement.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.ExecScriptContext(ctx, "INSERT INTO edges VALUES (993, 994, 1.0)"); !errors.Is(err, dbspinner.ErrQueryCanceled) {
		t.Fatalf("pre-canceled script err = %v, want ErrQueryCanceled", err)
	}
	// A bounded script under a generous timeout runs to completion.
	if err := e.ExecScriptContext(context.Background(),
		"INSERT INTO edges VALUES (995, 996, 1.0); SELECT src FROM edges WHERE src = 995"); err != nil {
		t.Fatalf("bounded script failed: %v", err)
	}
}

func resultRows(r *dbspinner.Result) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.String()
	}
	return out
}

// TestExplainAnalyzeTrace: EXPLAIN ANALYZE on an iterative query must
// print per-iteration wall-clock, row, and frontier lines plus a
// total.
func TestExplainAnalyzeTrace(t *testing.T) {
	e := lifecycleEngine(t, 4, dbspinner.Config{Parallel: true})
	out, err := e.Explain("EXPLAIN ANALYZE " + bench.PRQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	iterLine := regexp.MustCompile(`Iteration 1: \S+ wall, \d+ rows, frontier \d+\.`)
	if !iterLine.MatchString(out) {
		t.Fatalf("EXPLAIN ANALYZE missing per-iteration line:\n%s", out)
	}
	for i := 1; i <= 3; i++ {
		if !strings.Contains(out, fmt.Sprintf("Iteration %d:", i)) {
			t.Fatalf("EXPLAIN ANALYZE missing iteration %d:\n%s", i, out)
		}
	}
	if !strings.Contains(out, "Total:") {
		t.Fatalf("EXPLAIN ANALYZE missing Total line:\n%s", out)
	}
	if !strings.Contains(out, "Step 1 timing:") {
		t.Fatalf("EXPLAIN ANALYZE missing step timings:\n%s", out)
	}
	// Plain EXPLAIN must stay trace-free.
	plain, err := e.Explain(bench.PRQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain, "Iteration 1:") {
		t.Fatalf("plain EXPLAIN leaked trace output:\n%s", plain)
	}
}
