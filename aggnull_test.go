// Regression tests for aggregate semantics over empty input — the
// NULL/empty-group contract the incremental-maintenance splice relies
// on ("a key absent from both maps was filtered out by Ri's WHERE
// clause — absent then, absent now"). Scalar aggregates over an empty
// relation yield exactly one row with SUM/AVG/MIN/MAX NULL and COUNT
// 0; grouped aggregates yield zero rows. The two-phase MPP path must
// agree with the volcano path at every partition count: only one
// partition may emit the empty-input scalar row
// (exec.AggregatePartition's emptyScalar flag), or the gather would
// duplicate it.
package dbspinner_test

import (
	"testing"

	"dbspinner"
)

func newAggNullEngine(t *testing.T, cfg dbspinner.Config) *dbspinner.Engine {
	t.Helper()
	e := dbspinner.New(cfg)
	for _, sql := range []string{
		"CREATE TABLE t (k int, x int)",
		"INSERT INTO t VALUES (1, 5), (2, 7), (3, 11)",
	} {
		if _, err := e.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	return e
}

func TestEmptyInputAggregateSemantics(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		for _, parts := range []int{1, 2, 4} {
			e := newAggNullEngine(t, dbspinner.Config{Partitions: parts, Parallel: parallel})

			// Scalar aggregates over empty input: one row, SQL's empty-
			// multiset identities.
			res, err := e.Query("SELECT SUM(x), COUNT(x), AVG(x), MIN(x), MAX(x) FROM t WHERE k > 100")
			if err != nil {
				t.Fatalf("parallel=%v parts=%d: %v", parallel, parts, err)
			}
			if len(res.Rows) != 1 || res.Rows[0].String() != "NULL, 0, NULL, NULL, NULL" {
				t.Errorf("parallel=%v parts=%d: scalar aggregates over empty input = %v, want one row [NULL, 0, NULL, NULL, NULL]",
					parallel, parts, res.Rows)
			}

			// COUNT(*) over empty input is 0, not NULL.
			res, err = e.Query("SELECT COUNT(*) FROM t WHERE k > 100")
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 1 || res.Rows[0].String() != "0" {
				t.Errorf("parallel=%v parts=%d: COUNT(*) over empty input = %v, want [0]", parallel, parts, res.Rows)
			}

			// Grouped aggregates over empty input produce no groups at
			// all — the splice's "absent then, absent now" case.
			res, err = e.Query("SELECT k, SUM(x) FROM t WHERE k > 100 GROUP BY k")
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 0 {
				t.Errorf("parallel=%v parts=%d: grouped aggregate over empty input = %v, want no rows", parallel, parts, res.Rows)
			}

			// NULL-bearing input: aggregates skip NULLs, COUNT(x) counts
			// only non-NULL, COUNT(*) counts every row.
			if _, err := e.Exec("INSERT INTO t VALUES (4, NULL)"); err != nil {
				t.Fatal(err)
			}
			res, err = e.Query("SELECT SUM(x), COUNT(x), COUNT(*), AVG(x) FROM t")
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 1 || res.Rows[0].String() != "23, 3, 4, 7.666666666666667" {
				t.Errorf("parallel=%v parts=%d: NULL-skipping aggregates = %v", parallel, parts, res.Rows)
			}
		}
	}
}
