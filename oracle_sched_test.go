// Oracle tests for the static effect-set analysis and the parallel
// step scheduler it licenses: every workload query must EXPLAIN with a
// per-step effect set and a region schedule (the common-result queries
// with exploitable width), and running with the scheduler on must be
// byte-identical to the sequential pc-loop across partition counts.
package dbspinner_test

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dbspinner"
	"dbspinner/internal/bench"
)

func schedWorkloadQueries() map[string]string {
	return map[string]string{
		"PR":      bench.PRQuery(10),
		"PR-VS":   bench.PRVSQuery(10),
		"SSSP":    bench.SSSPQuery(1, 10),
		"SSSP-VS": bench.SSSPVSQuery(1, 10),
		"FF":      bench.FFQuery(10, 2),
	}
}

// TestParallelStepsParityMatrix is the scheduler's oracle gate: for
// every workload query and every partition configuration, turning
// ParallelSteps on must return rows byte-identical to the sequential
// pc-loop on the same configuration. (MPP with Parallel on already
// returns rows in partition order, so cross-configuration byte
// identity is not the scheduler's contract — within-configuration
// identity is.) CI runs this under -race, so an unsound schedule shows
// up either as a diff or as a race report.
func TestParallelStepsParityMatrix(t *testing.T) {
	for name, sql := range schedWorkloadQueries() {
		t.Run(name, func(t *testing.T) {
			for _, base := range []dbspinner.Config{
				{Partitions: 1},
				{Partitions: 4},
				{Partitions: 4, Parallel: true},
			} {
				want := queryRowsText(t, base, sql)
				sched := base
				sched.ParallelSteps = 4
				if got := queryRowsText(t, sched, sql); got != want {
					t.Errorf("Partitions=%d Parallel=%v: ParallelSteps=4 diverges from the sequential pc-loop:\n got: %s\nwant: %s",
						base.Partitions, base.Parallel, got, want)
				}
			}
			// Partitioned storage without MPP must also match the
			// single-partition run byte-for-byte, scheduler on or off.
			single := queryRowsText(t, dbspinner.Config{Partitions: 1}, sql)
			parts := queryRowsText(t, dbspinner.Config{Partitions: 4, ParallelSteps: 4}, sql)
			if parts != single {
				t.Errorf("Partitions=4 ParallelSteps=4 diverges from the single-partition run:\n got: %s\nwant: %s",
					parts, single)
			}
		})
	}
}

func queryRowsText(t *testing.T, cfg dbspinner.Config, sql string) string {
	t.Helper()
	e := newVerdictEngine(t, cfg)
	res, err := e.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%v\n", r)
	}
	return b.String()
}

var (
	schedLineRE  = regexp.MustCompile(`Schedule: (\d+) regions; max width (\d+); critical path (\d+) of (\d+) steps\.`)
	regionLineRE = regexp.MustCompile(`(?m)^Schedule region \d+: (barrier step \d+ \((loop control|observes stats)\)|steps \d+-\d+; width \d+; critical path \d+)\.$`)
)

// TestExplainShowsEffectsAndSchedule is the golden EXPLAIN gate: every
// workload query's EXPLAIN must render one effect line per step and a
// schedule whose region lines are well-formed and account for every
// step; the common-result queries (PR-VS, SSSP-VS) must show a region
// of width >= 2 — the seed and the Common#1 block are independent.
func TestExplainShowsEffectsAndSchedule(t *testing.T) {
	e := newVerdictEngine(t, dbspinner.Config{Partitions: 2})
	for name, sql := range schedWorkloadQueries() {
		t.Run(name, func(t *testing.T) {
			out, err := e.Explain(sql)
			if err != nil {
				t.Fatal(err)
			}
			steps := strings.Count(out, "\nStep ") + 1 // "Step 1:" opens the output
			effectLines := 0
			for i := 1; i <= steps; i++ {
				if strings.Contains(out, fmt.Sprintf("Effects step %d: ", i)) {
					effectLines++
				}
			}
			if effectLines != steps {
				t.Errorf("%d steps but %d effect lines:\n%s", steps, effectLines, out)
			}
			distLines := 0
			for i := 1; i <= steps; i++ {
				if strings.Contains(out, fmt.Sprintf("Distribution step %d: ", i)) {
					distLines++
				}
			}
			if distLines != steps {
				t.Errorf("%d steps but %d distribution lines:\n%s", steps, distLines, out)
			}
			if !strings.Contains(out, "Distribution final: ") {
				t.Errorf("EXPLAIN prints no final distribution property:\n%s", out)
			}
			m := schedLineRE.FindStringSubmatch(out)
			if m == nil {
				t.Fatalf("EXPLAIN prints no schedule summary:\n%s", out)
			}
			regions, _ := strconv.Atoi(m[1])
			width, _ := strconv.Atoi(m[2])
			crit, _ := strconv.Atoi(m[3])
			total, _ := strconv.Atoi(m[4])
			if total != steps {
				t.Errorf("schedule covers %d steps, EXPLAIN lists %d", total, steps)
			}
			if crit > total || crit < 1 || width < 1 {
				t.Errorf("implausible schedule summary: %s", m[0])
			}
			if got := len(regionLineRE.FindAllString(out, -1)); got != regions {
				t.Errorf("summary says %d regions but %d region lines rendered:\n%s", regions, got, out)
			}
			if strings.Contains(name, "-VS") {
				if width < 2 {
					t.Errorf("%s should expose a width->=2 region (seed || Common#1), got width %d:\n%s", name, width, out)
				}
				if crit >= total {
					t.Errorf("%s critical path (%d) should be shorter than the step count (%d)", name, crit, total)
				}
				// Under a parallel configuration the VS loop bodies
				// join on the loop-invariant CTE key, so EXPLAIN must
				// list the licensed elided exchanges.
				pe := newVerdictEngine(t, dbspinner.Config{Partitions: 2, Parallel: true})
				pout, err := pe.Explain(sql)
				if err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(pout, "Elided exchange step ") {
					t.Errorf("%s under a parallel config lists no elided exchanges:\n%s", name, pout)
				}
			}
			// Spot-check the effect vocabulary: materializations write,
			// the loop controls.
			if !strings.Contains(out, "writes {") || !strings.Contains(out, "control") {
				t.Errorf("effect lines miss expected verbs:\n%s", out)
			}
		})
	}
}
