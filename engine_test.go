package dbspinner

import (
	"math"
	"strings"
	"testing"
)

// newGraphEngine creates an engine loaded with the 4-edge test graph
// used throughout the core tests: 1->2 (0.5), 1->3 (0.5), 2->3 (1.0),
// 3->1 (1.0), plus a vertexStatus table with every node available.
func newGraphEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(Config{Partitions: 2})
	mustExec(t, e, "CREATE TABLE edges (src int, dst int, weight float)")
	mustExec(t, e, `INSERT INTO edges VALUES (1,2,0.5), (1,3,0.5), (2,3,1.0), (3,1,1.0)`)
	mustExec(t, e, "CREATE TABLE vertexStatus (node int PRIMARY KEY, status int)")
	mustExec(t, e, "INSERT INTO vertexStatus VALUES (1,1), (2,1), (3,1)")
	return e
}

func mustExec(t *testing.T, e *Engine, sql string) int64 {
	t.Helper()
	n, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	r, err := e.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return r
}

func resultStrings(r *Result) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.String()
	}
	return out
}

func TestCreateInsertSelect(t *testing.T) {
	e := newGraphEngine(t)
	r := mustQuery(t, e, "SELECT COUNT(*) FROM edges")
	if r.Rows[0][0].Int() != 4 {
		t.Errorf("count = %v", r.Rows[0])
	}
	if len(r.Columns) != 1 || r.Columns[0] != "count" {
		t.Errorf("columns = %v", r.Columns)
	}
}

func TestInsertVariants(t *testing.T) {
	e := New(Config{})
	mustExec(t, e, "CREATE TABLE t (a int, b float, c varchar)")
	if n := mustExec(t, e, "INSERT INTO t VALUES (1, 2, 'x'), (2, 3.5, 'y')"); n != 2 {
		t.Errorf("affected = %d", n)
	}
	// Column-list insert fills missing columns with NULL and casts.
	mustExec(t, e, "INSERT INTO t (c, a) VALUES ('z', 3.0)")
	r := mustQuery(t, e, "SELECT a, b, c FROM t WHERE c = 'z'")
	if r.Rows[0].String() != "3, NULL, z" {
		t.Errorf("row = %v", r.Rows[0])
	}
	// INSERT ... SELECT.
	mustExec(t, e, "CREATE TABLE t2 (a int, c varchar)")
	if n := mustExec(t, e, "INSERT INTO t2 SELECT a, c FROM t"); n != 3 {
		t.Errorf("insert-select affected = %d", n)
	}
	// Errors.
	if _, err := e.Exec("INSERT INTO missing VALUES (1)"); err == nil {
		t.Error("insert into missing table")
	}
	if _, err := e.Exec("INSERT INTO t (a) VALUES (1, 2)"); err == nil {
		t.Error("arity mismatch")
	}
	if _, err := e.Exec("INSERT INTO t (zzz) VALUES (1)"); err == nil {
		t.Error("unknown column")
	}
	if _, err := e.Exec("INSERT INTO t (a) VALUES ('abc')"); err == nil {
		t.Error("uncastable value")
	}
}

func TestUpdateInPlace(t *testing.T) {
	e := New(Config{})
	mustExec(t, e, "CREATE TABLE t (k int, v int)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
	if n := mustExec(t, e, "UPDATE t SET v = v + 1 WHERE k >= 2"); n != 2 {
		t.Errorf("affected = %d", n)
	}
	r := mustQuery(t, e, "SELECT v FROM t ORDER BY k")
	got := strings.Join(resultStrings(r), "|")
	if got != "10|21|31" {
		t.Errorf("rows = %v", got)
	}
	// Unconditional update.
	if n := mustExec(t, e, "UPDATE t SET v = 0"); n != 3 {
		t.Errorf("affected = %d", n)
	}
}

func TestUpdateFromJoin(t *testing.T) {
	// The Figure 1 pattern: UPDATE main SET ... FROM intermediate WHERE
	// keys match.
	e := New(Config{})
	mustExec(t, e, "CREATE TABLE PageRank (node int, rank float, delta float)")
	mustExec(t, e, "CREATE TABLE IntermediateTable (node int, rank float, delta float)")
	mustExec(t, e, "INSERT INTO PageRank VALUES (1, 0, 0.15), (2, 0, 0.15)")
	mustExec(t, e, "INSERT INTO IntermediateTable VALUES (1, 0.15, 0.1), (3, 9, 9)")
	n := mustExec(t, e, `UPDATE PageRank
		SET rank = IntermediateTable.rank, delta = IntermediateTable.delta
		FROM IntermediateTable
		WHERE PageRank.node = IntermediateTable.node`)
	if n != 1 {
		t.Errorf("affected = %d", n)
	}
	r := mustQuery(t, e, "SELECT node, rank, delta FROM PageRank ORDER BY node")
	got := strings.Join(resultStrings(r), "|")
	if got != "1, 0.15, 0.1|2, 0, 0.15" {
		t.Errorf("rows = %q", got)
	}
	// Missing correlation is an error.
	if _, err := e.Exec("UPDATE PageRank SET rank = 0 FROM IntermediateTable"); err == nil {
		t.Error("UPDATE FROM without WHERE should fail")
	}
	if _, err := e.Exec("UPDATE PageRank SET rank = 0 FROM IntermediateTable WHERE PageRank.rank > IntermediateTable.rank"); err == nil {
		t.Error("UPDATE FROM without equality should fail")
	}
}

func TestDeleteAndTruncate(t *testing.T) {
	e := New(Config{})
	mustExec(t, e, "CREATE TABLE t (k int)")
	mustExec(t, e, "INSERT INTO t VALUES (1), (2), (3), (4)")
	if n := mustExec(t, e, "DELETE FROM t WHERE k % 2 = 0"); n != 2 {
		t.Errorf("deleted = %d", n)
	}
	if n := mustExec(t, e, "TRUNCATE TABLE t"); n != 2 {
		t.Errorf("truncated = %d", n)
	}
	r := mustQuery(t, e, "SELECT COUNT(*) FROM t")
	if r.Rows[0][0].Int() != 0 {
		t.Error("table not empty")
	}
}

func TestDropTable(t *testing.T) {
	e := New(Config{})
	mustExec(t, e, "CREATE TABLE t (k int)")
	mustExec(t, e, "DROP TABLE t")
	if _, err := e.Query("SELECT * FROM t"); err == nil {
		t.Error("dropped table still queryable")
	}
	if _, err := e.Exec("DROP TABLE t"); err == nil {
		t.Error("double drop")
	}
	mustExec(t, e, "DROP TABLE IF EXISTS t")
	mustExec(t, e, "CREATE TABLE t (k int)")
	if _, err := e.Exec("CREATE TABLE t (k int)"); err == nil {
		t.Error("duplicate create")
	}
	mustExec(t, e, "CREATE TABLE IF NOT EXISTS t (k int)")
}

func TestPageRankEndToEnd(t *testing.T) {
	e := newGraphEngine(t)
	r := mustQuery(t, e, `WITH ITERATIVE PageRank (Node, Rank, Delta)
		AS ( SELECT src, 0, 0.15
		     FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
		 ITERATE
		  SELECT PageRank.node, PageRank.rank + PageRank.delta,
		    0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
		  FROM PageRank
		    LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
		    LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
		  GROUP BY PageRank.node, PageRank.rank + PageRank.delta
		 UNTIL 2 ITERATIONS )
		SELECT Node, Rank FROM PageRank ORDER BY Node`)
	want := map[int64]float64{1: 0.2775, 2: 0.21375, 3: 0.34125}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", resultStrings(r))
	}
	for _, row := range r.Rows {
		if math.Abs(row[1].Float()-want[row[0].Int()]) > 1e-12 {
			t.Errorf("node %d rank %v", row[0].Int(), row[1])
		}
	}
	if r.Columns[0] != "Node" || r.Columns[1] != "Rank" {
		t.Errorf("columns = %v", r.Columns)
	}
	st := e.Stats()
	if st.Iterations != 2 || st.Renames != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestIterativeStatsBaselines(t *testing.T) {
	q := `WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL 3 ITERATIONS) SELECT i FROM c`
	opt := New(Config{})
	base := New(Config{DisableRenameOpt: true})
	if _, err := opt.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := base.Query(q); err != nil {
		t.Fatal(err)
	}
	so, sb := opt.Stats(), base.Stats()
	if so.Renames != 3 || so.MovedRows != 0 {
		t.Errorf("optimized stats: %+v", so)
	}
	if sb.Renames != 0 || sb.MovedRows != 3 {
		t.Errorf("baseline stats: %+v", sb)
	}
}

func TestDeltaIterationConfig(t *testing.T) {
	const q = `WITH ITERATIVE sssp (Node, Distance, Delta)
AS (SELECT src, 9999999, CASE WHEN src = 1 THEN 0 ELSE 9999999 END
 FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT sssp.node,
    LEAST(sssp.distance, sssp.delta),
    COALESCE(MIN(IncomingDistance.delta + IncomingEdges.weight), 9999999)
  FROM sssp
   LEFT JOIN edges AS IncomingEdges ON sssp.node = IncomingEdges.dst
   LEFT JOIN sssp AS IncomingDistance ON IncomingDistance.node = IncomingEdges.src
  WHERE IncomingDistance.Delta != 9999999
  GROUP BY sssp.node, LEAST(sssp.distance, sssp.delta)
 UNTIL 5 ITERATIONS)
SELECT Node, Distance FROM sssp ORDER BY Node`

	full := newGraphEngine(t)
	delta := New(Config{Partitions: 2, DeltaIteration: true})
	mustExec(t, delta, "CREATE TABLE edges (src int, dst int, weight float)")
	mustExec(t, delta, `INSERT INTO edges VALUES (1,2,0.5), (1,3,0.5), (2,3,1.0), (3,1,1.0)`)

	fr := mustQuery(t, full, q)
	dr := mustQuery(t, delta, q)
	if strings.Join(resultStrings(fr), "|") != strings.Join(resultStrings(dr), "|") {
		t.Errorf("DeltaIteration changed the result:\n  full:  %v\n  delta: %v",
			resultStrings(fr), resultStrings(dr))
	}
	fs, ds := full.Stats(), delta.Stats()
	if fs.RiFullRows != 0 || fs.RiInputRows != 0 {
		t.Errorf("default config must not run delta steps: %+v", fs)
	}
	if ds.RiFullRows == 0 || ds.RiInputRows > ds.RiFullRows {
		t.Errorf("delta accounting: input=%d full=%d", ds.RiInputRows, ds.RiFullRows)
	}

	// EXPLAIN surfaces the restricted materialization, and the verifier
	// accepts the delta-mode program.
	out, err := delta.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"changed-row frontier", "Verifier: OK"} {
		if !strings.Contains(out, frag) {
			t.Errorf("delta explain missing %q:\n%s", frag, out)
		}
	}
}

func TestRecursiveQueryEndToEnd(t *testing.T) {
	e := newGraphEngine(t)
	r := mustQuery(t, e, `WITH RECURSIVE reach (node) AS (
		SELECT 2 UNION SELECT edges.dst FROM reach JOIN edges ON edges.src = reach.node
	) SELECT COUNT(*) FROM reach`)
	if r.Rows[0][0].Int() != 3 {
		t.Errorf("reachable = %v", r.Rows[0])
	}
}

func TestExplainModes(t *testing.T) {
	e := newGraphEngine(t)
	out, err := e.Explain("SELECT src FROM edges WHERE dst = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Scan edges") || !strings.Contains(out, "Filter") {
		t.Errorf("plain explain:\n%s", out)
	}
	out, err = e.Explain(`WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL 3 ITERATIONS) SELECT i FROM c`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Step 1: Materialize c") || !strings.Contains(out, "Rename") {
		t.Errorf("iterative explain:\n%s", out)
	}
	// EXPLAIN prefix works too.
	out2, err := e.Explain("EXPLAIN SELECT src FROM edges")
	if err != nil || !strings.Contains(out2, "Scan edges") {
		t.Errorf("EXPLAIN prefix: %v\n%s", err, out2)
	}
	if _, err := e.Explain("DROP TABLE edges"); err == nil {
		t.Error("EXPLAIN of DDL should fail")
	}
}

func TestExplainReportsVerifier(t *testing.T) {
	const q = `WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL 3 ITERATIONS) SELECT i FROM c`

	e := newGraphEngine(t)
	out, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Verifier: OK") {
		t.Errorf("explain misses the verifier verdict:\n%s", out)
	}

	// The knob removes the verifier pass (and its output).
	off := New(Config{DisableVerify: true})
	mustExec(t, off, "CREATE TABLE edges (src int, dst int, weight float)")
	mustExec(t, off, "INSERT INTO edges VALUES (1,2,0.5)")
	out, err = off.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "Verifier") {
		t.Errorf("DisableVerify should suppress verifier output:\n%s", out)
	}
	// Queries still execute with verification off.
	r := mustQuery(t, off, q)
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 3 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestExecScript(t *testing.T) {
	e := New(Config{})
	err := e.ExecScript(`
		CREATE TABLE t (k int);
		INSERT INTO t VALUES (1), (2);
		SELECT * FROM t;
		UPDATE t SET k = k * 10;
	`)
	if err != nil {
		t.Fatal(err)
	}
	r := mustQuery(t, e, "SELECT SUM(k) FROM t")
	if r.Rows[0][0].Int() != 30 {
		t.Errorf("sum = %v", r.Rows[0])
	}
	if err := e.ExecScript("BOGUS;"); err == nil {
		t.Error("bad script should fail")
	}
}

func TestBulkInsert(t *testing.T) {
	e := New(Config{})
	mustExec(t, e, "CREATE TABLE t (k int, v float)")
	rows := []Row{
		{NewInt(1), NewInt(2)}, // int castable to float
		{NewInt(3), NewFloat(4.5)},
	}
	if err := e.BulkInsert("t", rows); err != nil {
		t.Fatal(err)
	}
	n, err := e.TableRowCount("t")
	if err != nil || n != 2 {
		t.Errorf("rows = %d, %v", n, err)
	}
	if err := e.BulkInsert("missing", rows); err == nil {
		t.Error("bulk insert into missing table")
	}
	if err := e.BulkInsert("t", []Row{{NewInt(1)}}); err == nil {
		t.Error("bulk insert arity")
	}
	if _, err := e.TableRowCount("missing"); err == nil {
		t.Error("row count of missing table")
	}
}

func TestTables(t *testing.T) {
	e := newGraphEngine(t)
	names := e.Tables()
	if len(names) != 2 || names[0] != "edges" || names[1] != "vertexStatus" {
		t.Errorf("tables = %v", names)
	}
}

func TestStatsAccounting(t *testing.T) {
	e := newGraphEngine(t)
	st := e.Stats()
	if st.Statements != 4 {
		t.Errorf("statements = %d", st.Statements)
	}
	if st.TxnCommitted != 4 || st.WALRecords == 0 || st.LocksAcquired != 4 {
		t.Errorf("txn stats: %+v", st)
	}
	mustQuery(t, e, "SELECT * FROM edges")
	if e.Stats().Queries != 1 {
		t.Error("query counter")
	}
	e.ResetStats()
	st = e.Stats()
	if st.Queries != 0 || st.WALRecords != 0 || st.WALBytes != 0 {
		t.Errorf("reset failed: %+v", st)
	}
}

func TestQueryErrors(t *testing.T) {
	e := New(Config{})
	if _, err := e.Query("CREATE TABLE t (k int)"); err == nil {
		t.Error("Query of DDL should fail")
	}
	if _, err := e.Exec("SELECT 1"); err == nil {
		t.Error("Exec of SELECT should fail")
	}
	if _, err := e.Query("SELECT FROM"); err == nil {
		t.Error("parse error")
	}
	if _, err := e.Exec("not sql at all"); err == nil {
		t.Error("parse error in Exec")
	}
}

func TestResultString(t *testing.T) {
	e := newGraphEngine(t)
	r := mustQuery(t, e, "SELECT src, dst FROM edges WHERE src = 1 ORDER BY dst")
	out := r.String()
	if !strings.Contains(out, "src") || !strings.Contains(out, "---") {
		t.Errorf("result table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestConcurrentQueries(t *testing.T) {
	e := newGraphEngine(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := e.Query(`WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL 3 ITERATIONS) SELECT i FROM c`)
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestDefaultPartitions(t *testing.T) {
	e := New(Config{Partitions: 0})
	if e.cfg.Partitions != 4 {
		t.Errorf("default partitions = %d", e.cfg.Partitions)
	}
}
