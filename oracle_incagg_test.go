// Oracle tests for the static aggregate decomposability analysis and
// the incremental aggregate maintenance it licenses (internal/aggprop):
// every workload query must return byte-identical ordered rows with
// maintenance on and off across partition counts — with the dynamic
// cross-check armed so a stale accumulator fails the query instead of
// silently reshaping results — and on the converging workloads the
// maintained runs must feed strictly fewer rows through the grouping
// operator.
package dbspinner_test

import (
	"strings"
	"testing"

	"dbspinner"
	"dbspinner/internal/bench"
	"dbspinner/internal/workload"
)

// incaggGraph is the deterministic dataset the maintenance oracle runs
// on: a 300-node preferential-attachment graph with the dblp-small
// shape. The cyclic generator the shuffle oracle uses would keep every
// PageRank delta live forever (every node sits on a cycle); the
// scale-free graph has sources whose deltas die out, which is the
// change frontier the maintenance exploits.
func incaggGraph() *workload.Graph {
	return workload.PreferentialAttachment(300, 3, workload.WeightOutDegree, 42)
}

// incaggRun executes sql on a fresh engine over the oracle dataset and
// returns the rendered rows plus the engine stats after the query.
func incaggRun(t *testing.T, cfg dbspinner.Config, sql string) (string, dbspinner.Stats) {
	t.Helper()
	e, err := bench.NewEngine(incaggGraph(), bench.Config{Partitions: 1, AvailFrac: 0.8}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(sql)
	if err != nil {
		t.Fatalf("Partitions=%d DisableIncrementalAgg=%v CheckIncrementalAgg=%v: %v",
			cfg.Partitions, cfg.DisableIncrementalAgg, cfg.CheckIncrementalAgg, err)
	}
	var b strings.Builder
	for _, r := range res.Rows {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String(), e.Stats()
}

// TestIncrementalAggParityMatrix is the maintenance oracle gate: all
// five workload queries x IncrementalAgg on/off x partition counts
// {1, 4} must return byte-identical ordered rows — row order and float
// SUM accumulation order included, which is the maintenance contract —
// with the dynamic cross-check (Config.CheckIncrementalAgg) armed so a
// divergent cached group fails the query. The aggregate-bearing
// queries must actually engage maintenance (AggFullRows > 0) and feed
// strictly fewer rows than the full re-fold; FF has no aggregate in
// its iterative body, so the analysis has nothing to license there and
// parity alone is the assertion. CI runs this under -race via the
// root-package coverage in the Makefile.
func TestIncrementalAggParityMatrix(t *testing.T) {
	for name, sql := range schedWorkloadQueries() {
		t.Run(name, func(t *testing.T) {
			for _, parts := range []int{1, 4} {
				on := dbspinner.Config{Partitions: parts, CheckIncrementalAgg: true}
				off := dbspinner.Config{Partitions: parts, DisableIncrementalAgg: true}
				gotOn, statsOn := incaggRun(t, on, sql)
				gotOff, _ := incaggRun(t, off, sql)
				if gotOn != gotOff {
					t.Errorf("parts=%d: maintenance changes results:\n  on: %s\n off: %s", parts, gotOn, gotOff)
				}
				if name == "FF" {
					if statsOn.AggFullRows != 0 {
						t.Errorf("parts=%d: FF has no body aggregate but maintenance engaged (AggFullRows=%d)",
							parts, statsOn.AggFullRows)
					}
					continue
				}
				if statsOn.AggFullRows == 0 {
					t.Errorf("parts=%d: maintenance never engaged on %s", parts, name)
				}
				if statsOn.AggInputRows >= statsOn.AggFullRows {
					t.Errorf("parts=%d: maintenance fed %d of %d rows on %s; the frontier must shrink",
						parts, statsOn.AggInputRows, statsOn.AggFullRows, name)
				}
			}
		})
	}
}

// TestIncrementalAggSavingsFloor pins the headline saving the analysis
// is designed for: on PR and SSSP at 10 iterations, maintenance feeds
// at least 40% fewer rows through the grouping operator once the
// change frontier shrinks.
func TestIncrementalAggSavingsFloor(t *testing.T) {
	queries := schedWorkloadQueries()
	for _, name := range []string{"PR", "SSSP"} {
		t.Run(name, func(t *testing.T) {
			sql := queries[name]
			got, stats := incaggRun(t, dbspinner.Config{CheckIncrementalAgg: true}, sql)
			want, _ := incaggRun(t, dbspinner.Config{DisableIncrementalAgg: true}, sql)
			if got != want {
				t.Fatalf("maintenance changes results:\n  on: %s\n off: %s", got, want)
			}
			if stats.AggFullRows == 0 {
				t.Fatal("maintenance never engaged; the measurement is vacuous")
			}
			saved := float64(stats.AggFullRows-stats.AggInputRows) / float64(stats.AggFullRows)
			t.Logf("%s: AggFullRows=%d AggInputRows=%d (saved %.1f%%)",
				name, stats.AggFullRows, stats.AggInputRows, 100*saved)
			if saved < 0.40 {
				t.Errorf("maintenance saves only %.1f%% of aggregate input rows (want >= 40%%): full=%d input=%d",
					100*saved, stats.AggFullRows, stats.AggInputRows)
			}
		})
	}
}
