package dbspinner

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"dbspinner/internal/graphalgo"
	"dbspinner/internal/workload"
)

// loadGraph creates an engine with the edges and vertexStatus tables
// filled from a generated graph.
func loadGraph(t *testing.T, g *workload.Graph, availFrac float64) *Engine {
	t.Helper()
	e := New(Config{Partitions: 4})
	mustExec(t, e, "CREATE TABLE edges (src int, dst int, weight float)")
	if err := e.BulkInsert("edges", workload.EdgeRows(g)); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "CREATE TABLE vertexStatus (node int PRIMARY KEY, status int)")
	if err := e.BulkInsert("vertexStatus", workload.VertexStatus(g, availFrac, 99)); err != nil {
		t.Fatal(err)
	}
	return e
}

func prSQL(iterations int) string {
	return fmt.Sprintf(`WITH ITERATIVE PageRank (Node, Rank, Delta)
AS ( SELECT src, 0, 0.15
     FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT PageRank.node, PageRank.rank + PageRank.delta,
    0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
  FROM PageRank
    LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
    LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
  GROUP BY PageRank.node, PageRank.rank + PageRank.delta
 UNTIL %d ITERATIONS )
SELECT Node, Rank FROM PageRank ORDER BY Node`, iterations)
}

func ssspSQL(source, iterations int) string {
	return fmt.Sprintf(`WITH ITERATIVE sssp (Node, Distance, Delta)
AS (SELECT src, 9999999, CASE WHEN src = %d THEN 0 ELSE 9999999 END
 FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT sssp.node,
    LEAST(sssp.distance, sssp.delta),
    COALESCE(MIN(IncomingDistance.delta + IncomingEdges.weight), 9999999)
  FROM sssp
   LEFT JOIN edges AS IncomingEdges ON sssp.node = IncomingEdges.dst
   LEFT JOIN sssp AS IncomingDistance ON IncomingDistance.node = IncomingEdges.src
  WHERE IncomingDistance.Delta != 9999999
  GROUP BY sssp.node, LEAST(sssp.distance, sssp.delta)
 UNTIL %d ITERATIONS)
SELECT Node, Distance FROM sssp ORDER BY Node`, source, iterations)
}

func ffSQL(iterations, mod int) string {
	return fmt.Sprintf(`WITH ITERATIVE forecast (node, friends, friendsPrev)
AS( SELECT src AS node, count(dst) AS friends,
      ceiling(count(dst) * (1.0-(src%%10)/100.0)) AS friendsPrev
    FROM edges GROUP BY src
 ITERATE
   SELECT node AS node,
      round(cast((friends / friendsPrev) * friends AS numeric), 5) AS friends,
      friends AS friendsPrev
   FROM forecast
 UNTIL %d ITERATIONS )
SELECT node, friends FROM forecast WHERE MOD(node, %d) = 0 ORDER BY node`, iterations, mod)
}

func TestPageRankMatchesOracle(t *testing.T) {
	g := workload.PreferentialAttachment(300, 3, workload.WeightOutDegree, 11)
	e := loadGraph(t, g, 1.0)
	r := mustQuery(t, e, prSQL(5))
	oracle := graphalgo.PageRank(g.Edges, 5)
	if len(r.Rows) != len(oracle) {
		t.Fatalf("SQL returned %d nodes, oracle %d", len(r.Rows), len(oracle))
	}
	for _, row := range r.Rows {
		node := row[0].Int()
		want := oracle[node]
		if math.IsNaN(want) {
			if !row[1].IsNull() {
				t.Errorf("node %d: SQL %v, oracle NULL", node, row[1])
			}
			continue
		}
		got := row[1].Float()
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("node %d: SQL %v, oracle %v", node, got, want)
		}
	}
}

func TestSSSPMatchesOracle(t *testing.T) {
	g := workload.Uniform(150, 600, workload.WeightUniform, 13)
	e := loadGraph(t, g, 1.0)
	const iters = 12
	r := mustQuery(t, e, ssspSQL(1, iters))
	oracle := graphalgo.SSSP(g.Edges, 1, iters)
	for _, row := range r.Rows {
		node := row[0].Int()
		got := row[1].Float()
		want := oracle[node]
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("node %d: SQL %v, oracle %v", node, got, want)
		}
	}
}

func TestSSSPConvergesToDijkstra(t *testing.T) {
	// Run enough iterations for the recurrence to reach the true
	// shortest paths on a small graph, and compare against Dijkstra.
	g := workload.Uniform(60, 240, workload.WeightUniform, 17)
	e := loadGraph(t, g, 1.0)
	r := mustQuery(t, e, ssspSQL(1, 40))
	exact := graphalgo.Dijkstra(g.Edges, 1)
	for _, row := range r.Rows {
		node := row[0].Int()
		if node == 1 {
			continue // the query's source-node quirk, see graphalgo.SSSP
		}
		got := row[1].Float()
		want := exact[node]
		if math.IsInf(want, 1) {
			if got != graphalgo.Infinity {
				t.Errorf("unreachable node %d: SQL %v", node, got)
			}
			continue
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("node %d: SQL %v, dijkstra %v", node, got, want)
		}
	}
}

func TestForecastMatchesOracle(t *testing.T) {
	g := workload.PreferentialAttachment(400, 4, workload.WeightUnit, 19)
	e := loadGraph(t, g, 1.0)
	r := mustQuery(t, e, ffSQL(5, 1))
	oracle := graphalgo.Forecast(g.Edges, 5)
	if len(r.Rows) != len(oracle) {
		t.Fatalf("SQL returned %d nodes, oracle %d", len(r.Rows), len(oracle))
	}
	for _, row := range r.Rows {
		node := row[0].Int()
		got := row[1].Float()
		want := oracle[node]
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("node %d: SQL %v, oracle %v", node, got, want)
		}
	}
}

func TestPageRankVSMatchesOracle(t *testing.T) {
	g := workload.PreferentialAttachment(200, 3, workload.WeightOutDegree, 23)
	e := loadGraph(t, g, 0.8)
	q := `WITH ITERATIVE PageRank (Node, Rank, Delta)
AS ( SELECT src, 0, 0.15
     FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT PageRank.node, PageRank.rank + PageRank.delta,
    0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
  FROM PageRank
    LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
    LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
    JOIN vertexStatus AS avail_pr ON avail_pr.node = IncomingEdges.dst
  WHERE avail_pr.status != 0
  GROUP BY PageRank.node, PageRank.rank + PageRank.delta
 UNTIL 5 ITERATIONS )
SELECT Node, Rank FROM PageRank ORDER BY Node`
	r := mustQuery(t, e, q)

	status := map[int64]int64{}
	for _, row := range workload.VertexStatus(g, 0.8, 99) {
		status[row[0].Int()] = row[1].Int()
	}
	oracle := graphalgo.PageRankVS(g.Edges, status, 5)
	for _, row := range r.Rows {
		node := row[0].Int()
		want := oracle[node]
		if math.IsNaN(want) {
			if !row[1].IsNull() {
				t.Errorf("node %d: SQL %v, oracle NULL", node, row[1])
			}
			continue
		}
		got := row[1].Float()
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("node %d: SQL %v, oracle %v", node, got, want)
		}
	}
}

func TestOptimizationsPreserveResultsOnGeneratedGraphs(t *testing.T) {
	// Every optimization combination must return identical rows for
	// all three paper queries.
	g := workload.PreferentialAttachment(150, 3, workload.WeightOutDegree, 31)
	queries := []string{prSQL(4), ssspSQL(1, 6), ffSQL(4, 2)}
	configs := []Config{
		{},
		{DisableRenameOpt: true},
		{DisableCommonResultOpt: true},
		{DisablePredicatePushdown: true},
		{DisableRenameOpt: true, DisableCommonResultOpt: true, DisablePredicatePushdown: true},
	}
	for qi, q := range queries {
		var baseline []string
		for ci, cfg := range configs {
			e := New(cfg)
			mustExec(t, e, "CREATE TABLE edges (src int, dst int, weight float)")
			if err := e.BulkInsert("edges", workload.EdgeRows(g)); err != nil {
				t.Fatal(err)
			}
			r := mustQuery(t, e, q)
			got := resultStrings(r)
			if ci == 0 {
				baseline = got
				continue
			}
			if len(got) != len(baseline) {
				t.Fatalf("query %d config %d: %d rows vs %d", qi, ci, len(got), len(baseline))
			}
			for i := range got {
				if got[i] != baseline[i] {
					t.Errorf("query %d config %d row %d: %q vs %q", qi, ci, i, got[i], baseline[i])
					break
				}
			}
		}
	}
}

func TestTerminationFormsPreserveResultsAcrossConfigs(t *testing.T) {
	// UNTIL ANY, UNTIL ALL and UNTIL DELTA each must return
	// byte-identical rows with delta iteration on, with column pruning
	// off, and with both toggled. Data and delta termination observe
	// whole rows, so this doubles as the acceptance check that
	// liveness-driven pruning withholds correctly under every
	// termination form.
	g := workload.PreferentialAttachment(150, 3, workload.WeightOutDegree, 43)

	// PageRank over available vertices, with an explicit iteration
	// counter so UNTIL ANY fires deterministically. The WHERE clause
	// makes the body eligible for both filter hoisting and delta
	// iteration.
	anyQ := `WITH ITERATIVE PageRank (Node, Rank, Delta, Iter)
AS ( SELECT src, 0, 0.15, 0
     FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT PageRank.node, PageRank.rank + PageRank.delta,
    0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight),
    PageRank.iter + 1
  FROM PageRank
    LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
    LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
    JOIN vertexStatus AS avail ON avail.node = IncomingEdges.dst
  WHERE avail.status != 0
  GROUP BY PageRank.node, PageRank.rank + PageRank.delta, PageRank.iter + 1
 UNTIL ANY (iter >= 4) )
SELECT Node, Rank FROM PageRank ORDER BY Node`

	// Friend forecast with the same counter trick: every row carries
	// the same counter, so UNTIL ALL stops after exactly three rounds.
	allQ := `WITH ITERATIVE forecast (node, friends, friendsPrev, it)
AS( SELECT src AS node, count(dst) AS friends,
      ceiling(count(dst) * (1.0-(src%10)/100.0)) AS friendsPrev, 0 AS it
    FROM edges GROUP BY src
 ITERATE
   SELECT node AS node,
      round(cast((friends / friendsPrev) * friends AS numeric), 5) AS friends,
      friends AS friendsPrev, it + 1 AS it
   FROM forecast
 UNTIL ALL (it >= 3) )
SELECT node, friends FROM forecast ORDER BY node`

	// SSSP to a fixed point: positive weights make the relaxation
	// converge, so UNTIL DELTA < 1 terminates on its own.
	deltaQ := strings.Replace(ssspSQL(1, 999), "UNTIL 999 ITERATIONS", "UNTIL DELTA < 1", 1)

	queries := []struct {
		name string
		sql  string
	}{
		{"until-any", anyQ},
		{"until-all", allQ},
		{"until-delta", deltaQ},
	}
	configs := []Config{
		{Partitions: 2},
		{Partitions: 2, DeltaIteration: true},
		{Partitions: 2, DisableColumnPruning: true},
		{Partitions: 2, DeltaIteration: true, DisableColumnPruning: true},
	}
	load := func(cfg Config) *Engine {
		e := New(cfg)
		mustExec(t, e, "CREATE TABLE edges (src int, dst int, weight float)")
		if err := e.BulkInsert("edges", workload.EdgeRows(g)); err != nil {
			t.Fatal(err)
		}
		mustExec(t, e, "CREATE TABLE vertexStatus (node int PRIMARY KEY, status int)")
		if err := e.BulkInsert("vertexStatus", workload.VertexStatus(g, 0.8, 99)); err != nil {
			t.Fatal(err)
		}
		return e
	}
	for _, q := range queries {
		var baseline []string
		for ci, cfg := range configs {
			r := mustQuery(t, load(cfg), q.sql)
			got := resultStrings(r)
			if ci == 0 {
				if len(got) == 0 {
					t.Fatalf("%s: baseline returned no rows", q.name)
				}
				baseline = got
				continue
			}
			if len(got) != len(baseline) {
				t.Fatalf("%s config %d: %d rows vs %d", q.name, ci, len(got), len(baseline))
			}
			for i := range got {
				if got[i] != baseline[i] {
					t.Errorf("%s config %d row %d: %q vs %q", q.name, ci, i, got[i], baseline[i])
					break
				}
			}
		}
	}
}

func TestParallelModeMatchesSequential(t *testing.T) {
	// MPP execution (fragments + shuffles) must return the same rows as
	// the volcano executor for all three paper queries, and must
	// actually shuffle data.
	g := workload.PreferentialAttachment(200, 3, workload.WeightOutDegree, 37)
	load := func(cfg Config) *Engine {
		e := New(cfg)
		mustExec(t, e, "CREATE TABLE edges (src int, dst int, weight float)")
		if err := e.BulkInsert("edges", workload.EdgeRows(g)); err != nil {
			t.Fatal(err)
		}
		return e
	}
	for _, q := range []string{prSQL(3), ssspSQL(1, 5), ffSQL(3, 2)} {
		seq := load(Config{Partitions: 4})
		par := load(Config{Partitions: 4, Parallel: true})
		rs := mustQuery(t, seq, q)
		rp := mustQuery(t, par, q)
		if len(rs.Rows) != len(rp.Rows) {
			t.Fatalf("row counts differ: %d vs %d", len(rs.Rows), len(rp.Rows))
		}
		for i := range rs.Rows {
			a, b := rs.Rows[i], rp.Rows[i]
			if a[0].Int() != b[0].Int() {
				t.Fatalf("row %d key: %v vs %v", i, a[0], b[0])
			}
			if a[1].IsNull() != b[1].IsNull() {
				t.Fatalf("row %d null: %v vs %v", i, a[1], b[1])
			}
			if !a[1].IsNull() && math.Abs(a[1].Float()-b[1].Float()) > 1e-9*(1+math.Abs(a[1].Float())) {
				t.Errorf("row %d: %v vs %v", i, a[1], b[1])
			}
		}
		if st := par.Stats(); st.RowsShuffled == 0 {
			t.Errorf("parallel run of %q shuffled nothing", q[:40])
		}
	}
}

func TestParallelPlainSelect(t *testing.T) {
	g := workload.PreferentialAttachment(200, 3, workload.WeightOutDegree, 41)
	e := New(Config{Partitions: 4, Parallel: true})
	mustExec(t, e, "CREATE TABLE edges (src int, dst int, weight float)")
	if err := e.BulkInsert("edges", workload.EdgeRows(g)); err != nil {
		t.Fatal(err)
	}
	r := mustQuery(t, e, "SELECT src, COUNT(*) FROM edges GROUP BY src ORDER BY src")
	seq := New(Config{Partitions: 4})
	mustExec(t, seq, "CREATE TABLE edges (src int, dst int, weight float)")
	if err := seq.BulkInsert("edges", workload.EdgeRows(g)); err != nil {
		t.Fatal(err)
	}
	r2 := mustQuery(t, seq, "SELECT src, COUNT(*) FROM edges GROUP BY src ORDER BY src")
	a, b := resultStrings(r), resultStrings(r2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: %q vs %q", i, a[i], b[i])
		}
	}
}
