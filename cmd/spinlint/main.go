// Command spinlint runs this repository's custom static analyzers
// (internal/lint): the Step.Run fall-through contract, result-store
// access boundaries, Explain coverage of step types, and error-context
// requirements in internal/core.
//
// It speaks the `go vet -vettool=` protocol, so the usual invocation is
//
//	go build -o bin/spinlint ./cmd/spinlint
//	go vet -vettool=bin/spinlint ./...
//
// (also wired up as `make lint`). It can run standalone too:
//
//	spinlint ./...
package main

import (
	"os"

	"dbspinner/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
