// Command datagen writes the synthetic benchmark graphs as CSV, for
// loading into other systems or inspecting the workloads.
//
// Usage:
//
//	datagen -preset dblp-small -out edges.csv
//	datagen -preset pokec-small -status status.csv -avail 0.8
//	datagen -nodes 10000 -outdeg 5 -seed 7 -out custom.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"dbspinner/internal/workload"
)

func main() {
	var (
		preset = flag.String("preset", "", "named preset (dblp-small, pokec-small, web-small, dblp-full, pokec-full)")
		nodes  = flag.Int("nodes", 10000, "node count (when no preset)")
		outdeg = flag.Int("outdeg", 3, "edges per node (when no preset)")
		seed   = flag.Int64("seed", 42, "generator seed")
		out    = flag.String("out", "edges.csv", "edge CSV output path (src,dst,weight)")
		status = flag.String("status", "", "also write a vertexStatus CSV (node,status)")
		avail  = flag.Float64("avail", 0.8, "available-node fraction for the status file")
	)
	flag.Parse()

	var g *workload.Graph
	if *preset != "" {
		var err error
		g, err = workload.Generate(*preset)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		g = workload.PreferentialAttachment(*nodes, *outdeg, workload.WeightOutDegree, *seed)
	}

	if err := writeEdges(*out, g); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d edges over %d nodes to %s\n", len(g.Edges), g.NumNodes, *out)

	if *status != "" {
		if err := writeStatus(*status, g, *avail, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d status rows to %s\n", g.NumNodes, *status)
	}
}

func writeEdges(path string, g *workload.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "src,dst,weight")
	for _, e := range g.Edges {
		w.WriteString(strconv.FormatInt(e.Src, 10))
		w.WriteByte(',')
		w.WriteString(strconv.FormatInt(e.Dst, 10))
		w.WriteByte(',')
		w.WriteString(strconv.FormatFloat(e.Weight, 'g', -1, 64))
		w.WriteByte('\n')
	}
	return w.Flush()
}

func writeStatus(path string, g *workload.Graph, avail float64, seed int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "node,status")
	for _, r := range workload.VertexStatus(g, avail, seed) {
		fmt.Fprintf(w, "%d,%d\n", r[0].Int(), r[1].Int())
	}
	return w.Flush()
}
