// Command dbspinner is an interactive SQL shell over the embedded
// engine, with the WITH ITERATIVE extension enabled.
//
// Usage:
//
//	dbspinner                 # interactive shell on stdin
//	dbspinner -f script.sql   # execute a script
//	dbspinner -e "SELECT 1"   # execute one statement
//	dbspinner -load dblp-small  # pre-load a generated graph dataset
//
// Shell meta-commands: \q quit, \timing toggle timings, \tables list
// tables, \explain <query> show the plan (iterative queries print the
// Table I style step program).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dbspinner"
	"dbspinner/internal/workload"
)

func main() {
	var (
		file     = flag.String("f", "", "execute a SQL script file")
		stmt     = flag.String("e", "", "execute one statement and exit")
		load     = flag.String("load", "", "pre-load a generated dataset (dblp-small, pokec-small, web-small)")
		parts    = flag.Int("partitions", 4, "table partitions")
		parallel = flag.Bool("parallel", false, "execute on the MPP machine")
		delta    = flag.Bool("delta", false, "delta iteration: evaluate merge-path iterations against the changed-row frontier when provably safe")
	)
	flag.Parse()

	e := dbspinner.New(dbspinner.Config{Partitions: *parts, Parallel: *parallel, DeltaIteration: *delta})
	if *load != "" {
		if err := loadPreset(e, *load); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded %s into tables edges and vertexStatus\n", *load)
	}

	switch {
	case *stmt != "":
		if err := runStatement(e, *stmt, true); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := runScript(e, string(data)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		repl(e)
	}
}

func loadPreset(e *dbspinner.Engine, preset string) error {
	g, err := workload.Generate(preset)
	if err != nil {
		return err
	}
	if _, err := e.Exec("CREATE TABLE edges (src int, dst int, weight float)"); err != nil {
		return err
	}
	if err := e.BulkInsert("edges", workload.EdgeRows(g)); err != nil {
		return err
	}
	if _, err := e.Exec("CREATE TABLE vertexStatus (node int PRIMARY KEY, status int)"); err != nil {
		return err
	}
	return e.BulkInsert("vertexStatus", workload.VertexStatus(g, 0.8, 99))
}

// runStatement executes one statement, printing results for SELECTs.
func runStatement(e *dbspinner.Engine, sql string, show bool) error {
	trimmed := strings.TrimSpace(strings.ToUpper(sql))
	if strings.HasPrefix(trimmed, "SELECT") || strings.HasPrefix(trimmed, "WITH") || strings.HasPrefix(trimmed, "(") {
		r, err := e.Query(sql)
		if err != nil {
			return err
		}
		if show {
			fmt.Print(r.String())
			fmt.Printf("(%d rows)\n", len(r.Rows))
		}
		return nil
	}
	if strings.HasPrefix(trimmed, "EXPLAIN") {
		out, err := e.Explain(sql)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	n, err := e.Exec(sql)
	if err != nil {
		return err
	}
	if show {
		fmt.Printf("OK, %d rows affected\n", n)
	}
	return nil
}

func runScript(e *dbspinner.Engine, script string) error {
	for _, stmt := range splitStatements(script) {
		if err := runStatement(e, stmt, true); err != nil {
			return fmt.Errorf("%q: %w", abbreviate(stmt), err)
		}
	}
	return nil
}

func repl(e *dbspinner.Engine) {
	fmt.Println("DBSpinner shell — iterative CTEs enabled. \\q to quit, \\timing to toggle timings.")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	timing := false
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("dbspinner> ")
		} else {
			fmt.Print("        -> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			switch {
			case trimmed == "\\q" || trimmed == "\\quit":
				return
			case trimmed == "\\timing":
				timing = !timing
				fmt.Printf("timing %v\n", timing)
			case trimmed == "\\tables":
				for _, t := range e.Tables() {
					fmt.Println(t)
				}
			case strings.HasPrefix(trimmed, "\\explain "):
				out, err := e.Explain(strings.TrimPrefix(trimmed, "\\explain "))
				if err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
				} else {
					fmt.Print(out)
				}
			default:
				fmt.Println("unknown command; try \\q, \\timing, \\tables, \\explain <query>")
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			sql := buf.String()
			buf.Reset()
			start := time.Now()
			if err := runStatement(e, sql, true); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else if timing {
				fmt.Printf("time: %v\n", time.Since(start).Round(time.Microsecond))
			}
		}
		prompt()
	}
}

// splitStatements splits on semicolons outside string literals.
func splitStatements(script string) []string {
	var out []string
	var cur strings.Builder
	inString := false
	for i := 0; i < len(script); i++ {
		c := script[i]
		switch {
		case c == '\'':
			inString = !inString
			cur.WriteByte(c)
		case c == ';' && !inString:
			if s := strings.TrimSpace(cur.String()); s != "" {
				out = append(out, s)
			}
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		out = append(out, s)
	}
	return out
}

func abbreviate(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}
