package main

import (
	"strings"
	"testing"

	"dbspinner"
)

func TestSplitStatements(t *testing.T) {
	stmts := splitStatements("SELECT 1; SELECT 'a;b'; -- c\nSELECT 2")
	if len(stmts) != 3 {
		t.Fatalf("stmts = %v", stmts)
	}
	if !strings.Contains(stmts[1], "a;b") {
		t.Errorf("semicolon inside string split: %q", stmts[1])
	}
	if len(splitStatements(";;  ;")) != 0 {
		t.Error("empty statements should be dropped")
	}
}

func TestAbbreviate(t *testing.T) {
	if abbreviate("SELECT   1") != "SELECT 1" {
		t.Error("whitespace collapse")
	}
	long := strings.Repeat("x ", 100)
	if got := abbreviate(long); len(got) != 60 || !strings.HasSuffix(got, "...") {
		t.Errorf("abbreviate long = %q (%d)", got, len(got))
	}
}

func TestRunStatement(t *testing.T) {
	e := dbspinner.New(dbspinner.Config{})
	if err := runStatement(e, "CREATE TABLE t (x int)", false); err != nil {
		t.Fatal(err)
	}
	if err := runStatement(e, "INSERT INTO t VALUES (1)", false); err != nil {
		t.Fatal(err)
	}
	if err := runStatement(e, "SELECT * FROM t", false); err != nil {
		t.Fatal(err)
	}
	if err := runStatement(e, "SELECT * FROM missing", false); err == nil {
		t.Error("bad query should fail")
	}
}

func TestRunScript(t *testing.T) {
	e := dbspinner.New(dbspinner.Config{})
	if err := runScript(e, "CREATE TABLE t (x int); INSERT INTO t VALUES (1); SELECT x FROM t;"); err != nil {
		t.Fatal(err)
	}
	if err := runScript(e, "SELECT * FROM missing;"); err == nil {
		t.Error("bad script should fail")
	}
}

func TestLoadPreset(t *testing.T) {
	e := dbspinner.New(dbspinner.Config{})
	if err := loadPreset(e, "dblp-small"); err != nil {
		t.Fatal(err)
	}
	n, err := e.TableRowCount("edges")
	if err != nil || n == 0 {
		t.Errorf("edges = %d, %v", n, err)
	}
	if err := loadPreset(e, "nope"); err == nil {
		t.Error("bad preset should fail")
	}
}
