// Command benchrunner regenerates the tables and figures of the
// paper's evaluation (§VII) and prints them in the paper's format.
//
// Usage:
//
//	benchrunner                      # run every experiment
//	benchrunner -exp fig8,fig10      # run a subset
//	benchrunner -preset pokec-small  # change the dataset
//	benchrunner -iterations 25       # change the loop bound
//	benchrunner -scale 2000          # override the node count
//	benchrunner -md results.md       # also write Markdown
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dbspinner/internal/bench"
)

func main() {
	var (
		expList    = flag.String("exp", "all", "comma-separated experiments: table1,fig8,fig9,fig10,fig11,middleware,parallel,delta,pruning,sched,trace")
		preset     = flag.String("preset", "dblp-small", "workload preset (dblp-small, pokec-small, web-small, ...)")
		iterations = flag.Int("iterations", 10, "loop iterations for PR/SSSP experiments (fig10/fig11 use 25 as in the paper)")
		scale      = flag.Int("scale", 0, "override the preset's node count (0 keeps the preset)")
		reps       = flag.Int("reps", 3, "timing repetitions (median reported)")
		parts      = flag.Int("partitions", 4, "table partitions")
		mdOut      = flag.String("md", "", "also write the results as Markdown to this file")
	)
	flag.Parse()

	cfg := bench.Config{
		Preset:     *preset,
		Nodes:      *scale,
		Iterations: *iterations,
		Reps:       *reps,
		Partitions: *parts,
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]

	type runner struct {
		id  string
		run func() (*bench.Experiment, error)
	}
	paperCfg := cfg
	paperCfg.Iterations = 25 // Figures 10 and 11 run 25 iterations in the paper.
	runners := []runner{
		{"table1", func() (*bench.Experiment, error) { return bench.TableI(cfg) }},
		{"fig8", func() (*bench.Experiment, error) { return bench.Fig8(cfg) }},
		{"fig9", func() (*bench.Experiment, error) {
			return bench.Fig9(cfg, []string{"dblp-small", "pokec-small"})
		}},
		{"fig10", func() (*bench.Experiment, error) { return bench.Fig10(paperCfg, nil) }},
		{"fig11", func() (*bench.Experiment, error) { return bench.Fig11(paperCfg) }},
		{"middleware", func() (*bench.Experiment, error) { return bench.MiddlewareAblation(cfg) }},
		{"parallel", func() (*bench.Experiment, error) { return bench.ParallelScaling(cfg, nil) }},
		{"delta", func() (*bench.Experiment, error) { return bench.DeltaComparison(cfg) }},
		{"pruning", func() (*bench.Experiment, error) { return bench.PruningComparison(cfg) }},
		{"sched", func() (*bench.Experiment, error) { return bench.SchedComparison(cfg) }},
		{"trace", func() (*bench.Experiment, error) { return bench.TraceOverhead(cfg) }},
		{"shuffle", func() (*bench.Experiment, error) { return bench.ShuffleComparison(cfg) }},
	}

	var md strings.Builder
	ok := true
	for _, r := range runners {
		if !all && !want[r.id] {
			continue
		}
		exp, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			ok = false
			continue
		}
		fmt.Println(exp.Render())
		md.WriteString(exp.Markdown())
		md.WriteByte('\n')
	}
	if *mdOut != "" {
		if err := os.WriteFile(*mdOut, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *mdOut, err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}
