// Command benchrunner regenerates the tables and figures of the
// paper's evaluation (§VII) and prints them in the paper's format.
//
// Usage:
//
//	benchrunner                      # run every experiment
//	benchrunner -exp fig8,fig10      # run a subset
//	benchrunner -preset pokec-small  # change the dataset
//	benchrunner -iterations 25       # change the loop bound
//	benchrunner -scale 2000          # override the node count
//	benchrunner -md results.md       # also write Markdown
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dbspinner/internal/bench"
)

func main() {
	var (
		expList    = flag.String("exp", "all", "comma-separated experiments: table1,fig8,fig9,fig10,fig11,middleware,parallel,delta,pruning,sched,trace,shuffle,incagg,faults ('smoke' expands to the CI smoke set)")
		preset     = flag.String("preset", "dblp-small", "workload preset (dblp-small, pokec-small, web-small, ...)")
		iterations = flag.Int("iterations", 10, "loop iterations for PR/SSSP experiments (fig10/fig11 use 25 as in the paper)")
		scale      = flag.Int("scale", 0, "override the preset's node count (0 keeps the preset)")
		reps       = flag.Int("reps", 3, "timing repetitions (median reported)")
		parts      = flag.Int("partitions", 4, "table partitions")
		mdOut      = flag.String("md", "", "also write the results as Markdown to this file")
	)
	flag.Parse()

	cfg := bench.Config{
		Preset:     *preset,
		Nodes:      *scale,
		Iterations: *iterations,
		Reps:       *reps,
		Partitions: *parts,
	}

	// smokeSet is the experiment list `make bench-smoke` runs; CI
	// regenerates bench-smoke.md from it. Every entry must name a
	// registered runner — the check below fails the run otherwise, so a
	// renamed experiment cannot silently drop out of the smoke doc.
	smokeSet := []string{"delta", "pruning", "sched", "trace", "shuffle", "incagg", "faults"}

	want := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		e = strings.TrimSpace(strings.ToLower(e))
		if e == "smoke" {
			for _, id := range smokeSet {
				want[id] = true
			}
			continue
		}
		want[e] = true
	}
	all := want["all"]
	delete(want, "all")

	type runner struct {
		id  string
		run func() (*bench.Experiment, error)
	}
	paperCfg := cfg
	paperCfg.Iterations = 25 // Figures 10 and 11 run 25 iterations in the paper.
	incCfg := cfg
	if incCfg.Iterations < 10 {
		// PR's change frontier thins slowly (a node's delta only stops
		// changing once every incoming path has died out), so the incagg
		// experiment's 40% savings bar needs the full default loop even
		// when the smoke run shortens the other experiments.
		incCfg.Iterations = 10
	}
	runners := []runner{
		{"table1", func() (*bench.Experiment, error) { return bench.TableI(cfg) }},
		{"fig8", func() (*bench.Experiment, error) { return bench.Fig8(cfg) }},
		{"fig9", func() (*bench.Experiment, error) {
			return bench.Fig9(cfg, []string{"dblp-small", "pokec-small"})
		}},
		{"fig10", func() (*bench.Experiment, error) { return bench.Fig10(paperCfg, nil) }},
		{"fig11", func() (*bench.Experiment, error) { return bench.Fig11(paperCfg) }},
		{"middleware", func() (*bench.Experiment, error) { return bench.MiddlewareAblation(cfg) }},
		{"parallel", func() (*bench.Experiment, error) { return bench.ParallelScaling(cfg, nil) }},
		{"delta", func() (*bench.Experiment, error) { return bench.DeltaComparison(cfg) }},
		{"pruning", func() (*bench.Experiment, error) { return bench.PruningComparison(cfg) }},
		{"sched", func() (*bench.Experiment, error) { return bench.SchedComparison(cfg) }},
		{"trace", func() (*bench.Experiment, error) { return bench.TraceOverhead(cfg) }},
		{"shuffle", func() (*bench.Experiment, error) { return bench.ShuffleComparison(cfg) }},
		{"incagg", func() (*bench.Experiment, error) { return bench.IncAggComparison(incCfg) }},
		{"faults", func() (*bench.Experiment, error) { return bench.FaultTolerance(cfg) }},
	}

	known := map[string]bool{}
	for _, r := range runners {
		known[r.id] = true
	}
	ok := true
	for id := range want {
		if !known[id] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (known: table1,fig8,fig9,fig10,fig11,middleware,parallel,delta,pruning,sched,trace,shuffle,incagg,faults)\n", id)
			ok = false
		}
	}

	var md strings.Builder
	for _, r := range runners {
		if !all && !want[r.id] {
			continue
		}
		exp, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			ok = false
			continue
		}
		fmt.Println(exp.Render())
		md.WriteString(exp.Markdown())
		md.WriteByte('\n')
	}
	if *mdOut != "" {
		// Drift guard: every experiment this run was asked for must have
		// written its "### <id> — ..." section, or the committed Markdown
		// (bench-smoke.md in CI) silently goes stale.
		for _, r := range runners {
			if !all && !want[r.id] {
				continue
			}
			if !strings.Contains(md.String(), "### "+r.id+" — ") {
				fmt.Fprintf(os.Stderr, "experiment %s wrote no section to %s; the committed results would go stale\n", r.id, *mdOut)
				ok = false
			}
		}
		if err := os.WriteFile(*mdOut, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *mdOut, err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}
