package dbspinner

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadCSV(t *testing.T) {
	e := New(Config{})
	mustExec(t, e, "CREATE TABLE edges (src int, dst int, weight float)")
	data := "src,dst,weight\n1,2,0.5\n2,3,1.5\n3,1,\n"
	n, err := e.LoadCSV("edges", strings.NewReader(data), true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("loaded = %d", n)
	}
	r := mustQuery(t, e, "SELECT src, dst, weight FROM edges ORDER BY src")
	got := strings.Join(resultStrings(r), "|")
	if got != "1, 2, 0.5|2, 3, 1.5|3, 1, NULL" {
		t.Errorf("rows = %q", got)
	}
}

func TestLoadCSVReordersByHeader(t *testing.T) {
	e := New(Config{})
	mustExec(t, e, "CREATE TABLE t (a int, b varchar)")
	if _, err := e.LoadCSV("t", strings.NewReader("b,a\nx,1\n"), true); err != nil {
		t.Fatal(err)
	}
	r := mustQuery(t, e, "SELECT a, b FROM t")
	if r.Rows[0].String() != "1, x" {
		t.Errorf("row = %v", r.Rows[0])
	}
}

func TestLoadCSVNoHeader(t *testing.T) {
	e := New(Config{})
	mustExec(t, e, "CREATE TABLE t (a int, b varchar)")
	n, err := e.LoadCSV("t", strings.NewReader("1,x\n2,y\n"), false)
	if err != nil || n != 2 {
		t.Fatalf("loaded = %d, %v", n, err)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	e := New(Config{})
	mustExec(t, e, "CREATE TABLE t (a int)")
	if _, err := e.LoadCSV("missing", strings.NewReader("1\n"), false); err == nil {
		t.Error("missing table")
	}
	if _, err := e.LoadCSV("t", strings.NewReader("zzz\n"), false); err == nil {
		t.Error("uncastable value")
	}
	if _, err := e.LoadCSV("t", strings.NewReader("1,2\n"), false); err == nil {
		t.Error("field count mismatch")
	}
	if _, err := e.LoadCSV("t", strings.NewReader("nope\n1\n"), true); err == nil {
		t.Error("unknown header column")
	}
	if _, err := e.LoadCSV("t", strings.NewReader("a,b\n1,2\n"), true); err == nil {
		t.Error("header width mismatch")
	}
}

func TestLoadCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.csv")
	if err := os.WriteFile(path, []byte("src,dst,weight\n1,2,1.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := New(Config{})
	mustExec(t, e, "CREATE TABLE edges (src int, dst int, weight float)")
	n, err := e.LoadCSVFile("edges", path, true)
	if err != nil || n != 1 {
		t.Fatalf("loaded = %d, %v", n, err)
	}
	if _, err := e.LoadCSVFile("edges", filepath.Join(dir, "missing.csv"), true); err == nil {
		t.Error("missing file")
	}
}
