// Fault-tolerance tests: deterministic fault injection across every
// registered fault point, panic containment, iteration-granular
// checkpoint/retry and the graceful-degradation ladder. The contract
// under test is the robustness matrix: every fault point × mode ×
// partition count either retries to byte-identical ordered rows or
// fails with a structured provenance error — never a process crash,
// never a leaked goroutine or result slot.
package dbspinner_test

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"dbspinner"
	"dbspinner/internal/bench"
)

// faultCfg is the common fault-test configuration: the parallel step
// scheduler armed (so region faults are reachable) and MPP execution
// when partitioned (so partition faults are reachable).
func faultCfg(parts int) dbspinner.Config {
	cfg := dbspinner.Config{ParallelSteps: 4}
	if parts > 1 {
		cfg.Parallel = true
	}
	return cfg
}

// recordScheduleOnFailure appends the failing fault schedule to
// fault-matrix-failures.txt, which CI uploads as an artifact: the
// schedule is the complete, deterministic reproducer.
func recordScheduleOnFailure(t *testing.T, sched []dbspinner.Fault) {
	t.Helper()
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		f, err := os.OpenFile("fault-matrix-failures.txt", os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return
		}
		defer f.Close()
		fmt.Fprintf(f, "%s: %s\n", t.Name(), dbspinner.FormatFaultSchedule(sched))
	})
}

// faultModes is the injection-mode axis of the matrix.
var faultModes = []dbspinner.FaultMode{dbspinner.FaultModeError, dbspinner.FaultModePanic}

// TestFaultMatrixRetriesToIdenticalRows injects one fault at every
// registered point, in both modes, at both partition counts, with
// retry armed: the query must succeed with rows byte-identical to an
// unfaulted run, leave zero live result slots and settle its
// goroutines.
func TestFaultMatrixRetriesToIdenticalRows(t *testing.T) {
	sql := bench.SSSPQuery(1, 8)
	for _, parts := range []int{1, 4} {
		want, err := lifecycleEngine(t, parts, faultCfg(parts)).Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		for _, point := range dbspinner.FaultPoints() {
			for _, mode := range faultModes {
				t.Run(fmt.Sprintf("%s/%s/parts=%d", point, mode, parts), func(t *testing.T) {
					sched := []dbspinner.Fault{{Point: point, Hit: 2, Mode: mode}}
					recordScheduleOnFailure(t, sched)
					cfg := faultCfg(parts)
					cfg.FaultSchedule = sched
					cfg.RetryPolicy = dbspinner.RetryPolicy{MaxAttempts: 2}
					e := lifecycleEngine(t, parts, cfg)
					before := runtime.NumGoroutine()
					got, err := e.Query(sql)
					if err != nil {
						t.Fatalf("faulted query did not retry to success: %v", err)
					}
					if fmt.Sprint(resultRows(got)) != fmt.Sprint(resultRows(want)) {
						t.Error("retried query diverges from the unfaulted run")
					}
					// A partition fault needs partitions to fire; every
					// other point is reachable in every configuration, and
					// a fault that fired must have been retried.
					if mustFire := point != "partition" || parts > 1; mustFire && e.Stats().Retries == 0 {
						t.Errorf("fault at %s never caused a retry; the injection never fired", point)
					}
					if n := e.LiveResults(); n != 0 {
						t.Errorf("%d intermediate results leaked", n)
					}
					settleGoroutines(t, before)
				})
			}
		}
	}
}

// TestFaultWithoutRetryFailsStructured runs the same matrix with
// checkpointing off: the query must fail with the structured sentinel
// of its mode (ErrFaultInjected or ErrInternalPanic) carrying
// provenance, leak nothing, and leave the engine usable.
func TestFaultWithoutRetryFailsStructured(t *testing.T) {
	sql := bench.SSSPQuery(1, 8)
	const parts = 4
	for _, point := range dbspinner.FaultPoints() {
		for _, mode := range faultModes {
			t.Run(fmt.Sprintf("%s/%s", point, mode), func(t *testing.T) {
				sched := []dbspinner.Fault{{Point: point, Hit: 2, Mode: mode}}
				recordScheduleOnFailure(t, sched)
				cfg := faultCfg(parts)
				cfg.FaultSchedule = sched
				e := lifecycleEngine(t, parts, cfg)
				before := runtime.NumGoroutine()
				_, err := e.Query(sql)
				if err == nil {
					t.Fatal("faulted query succeeded with no retry policy; the injection never fired")
				}
				if mode == dbspinner.FaultModeError {
					if !errors.Is(err, dbspinner.ErrFaultInjected) {
						t.Fatalf("err = %v, want ErrFaultInjected", err)
					}
					var fe *dbspinner.FaultInjectedError
					if !errors.As(err, &fe) || fe.Point != point || fe.Hit != 2 {
						t.Fatalf("err = %v does not carry the fired fault's provenance", err)
					}
				} else {
					if !errors.Is(err, dbspinner.ErrInternalPanic) {
						t.Fatalf("err = %v, want ErrInternalPanic", err)
					}
					var pe *dbspinner.InternalPanicError
					if !errors.As(err, &pe) {
						t.Fatalf("err = %v is not an InternalPanicError", err)
					}
					if !strings.Contains(err.Error(), "iteration") {
						t.Fatalf("error %q does not name the iteration reached", err)
					}
					if !strings.Contains(fmt.Sprint(pe.Value), "injected panic") {
						t.Fatalf("contained panic lost its value: %+v", pe.Value)
					}
				}
				if n := e.LiveResults(); n != 0 {
					t.Errorf("%d intermediate results leaked on the failure path", n)
				}
				settleGoroutines(t, before)
				// The engine must survive the contained failure: a plain
				// query on the same engine touches no fault point.
				if _, err := e.Query("SELECT src FROM edges WHERE src = 1"); err != nil {
					t.Fatalf("engine unusable after contained failure: %v", err)
				}
			})
		}
	}
}

// TestDegradationLadderReachesVolcano schedules enough consecutive
// partition panics that the same-plan retries and the serial rung both
// keep failing: the engine must descend to volcano execution and still
// produce byte-identical rows. The final query carries an ORDER BY:
// crossing rungs changes the physical plan, and only an ordered result
// is comparable across plans (the same contract the cross-config
// oracles pin).
func TestDegradationLadderReachesVolcano(t *testing.T) {
	sql := bench.SSSPQuery(1, 8) + " ORDER BY Node"
	want, err := lifecycleEngine(t, 4, faultCfg(4)).Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	var sched []dbspinner.Fault
	for h := 1; h <= 50; h++ {
		sched = append(sched, dbspinner.Fault{Point: "partition", Hit: h, Mode: dbspinner.FaultModePanic})
	}
	recordScheduleOnFailure(t, sched)
	cfg := faultCfg(4)
	cfg.FaultSchedule = sched
	cfg.RetryPolicy = dbspinner.RetryPolicy{MaxAttempts: 1}
	e := lifecycleEngine(t, 4, cfg)
	before := runtime.NumGoroutine()
	got, err := e.Query(sql)
	if err != nil {
		t.Fatalf("degraded query failed: %v", err)
	}
	if fmt.Sprint(resultRows(got)) != fmt.Sprint(resultRows(want)) {
		t.Error("degraded query diverges from the unfaulted run")
	}
	s := e.Stats()
	if s.Degradations < 2 {
		t.Errorf("Degradations = %d, want the full ladder (serial then volcano)", s.Degradations)
	}
	if s.Retries == 0 {
		t.Error("degraded run recorded no retries")
	}
	if n := e.LiveResults(); n != 0 {
		t.Errorf("%d intermediate results leaked", n)
	}
	settleGoroutines(t, before)
}

// TestNoDegradeStaysOnPlan: with NoDegrade set, exhausted attempts
// fail the query instead of changing its plan.
func TestNoDegradeStaysOnPlan(t *testing.T) {
	var sched []dbspinner.Fault
	for h := 1; h <= 50; h++ {
		sched = append(sched, dbspinner.Fault{Point: "partition", Hit: h, Mode: dbspinner.FaultModePanic})
	}
	recordScheduleOnFailure(t, sched)
	cfg := faultCfg(4)
	cfg.FaultSchedule = sched
	cfg.RetryPolicy = dbspinner.RetryPolicy{MaxAttempts: 1, NoDegrade: true}
	e := lifecycleEngine(t, 4, cfg)
	_, err := e.Query(bench.SSSPQuery(1, 8))
	if !errors.Is(err, dbspinner.ErrInternalPanic) {
		t.Fatalf("err = %v, want ErrInternalPanic after exhausted same-plan retries", err)
	}
	if s := e.Stats(); s.Degradations != 0 {
		t.Errorf("Degradations = %d with NoDegrade set", s.Degradations)
	}
	if n := e.LiveResults(); n != 0 {
		t.Errorf("%d intermediate results leaked", n)
	}
}

// TestFaultScheduleRoundTrip pins the textual schedule format the CI
// artifact and ParseFaultSchedule share.
func TestFaultScheduleRoundTrip(t *testing.T) {
	text := "step@3:error,partition@2:panic,storage@5:error"
	sched, err := dbspinner.ParseFaultSchedule(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := dbspinner.FormatFaultSchedule(sched); got != text {
		t.Fatalf("round trip = %q, want %q", got, text)
	}
	if _, err := dbspinner.ParseFaultSchedule("bogus@1:error"); err == nil {
		t.Fatal("unknown fault point accepted")
	}
}

// TestCheckpointOverheadIsInvisible: checkpointing armed but never
// exercised (no faults) must not change results.
func TestCheckpointOverheadIsInvisible(t *testing.T) {
	for _, q := range []struct {
		name string
		sql  string
	}{
		{"SSSP", bench.SSSPQuery(1, 5)},
		{"PR", bench.PRQuery(5)},
	} {
		t.Run(q.name, func(t *testing.T) {
			want, err := lifecycleEngine(t, 4, faultCfg(4)).Query(q.sql)
			if err != nil {
				t.Fatal(err)
			}
			cfg := faultCfg(4)
			cfg.RetryPolicy = dbspinner.RetryPolicy{MaxAttempts: 3}
			e := lifecycleEngine(t, 4, cfg)
			got, err := e.Query(q.sql)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(resultRows(got)) != fmt.Sprint(resultRows(want)) {
				t.Error("checkpointed run diverges from the plain run")
			}
			if s := e.Stats(); s.Retries != 0 || s.Degradations != 0 {
				t.Errorf("unfaulted run recorded retries: %+v", s)
			}
		})
	}
}
