module dbspinner

go 1.22
