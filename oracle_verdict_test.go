// Oracle tests for the static termination/convergence analysis: every
// workload query of the paper's evaluation must get a proved verdict
// in EXPLAIN (a regression here fails CI), and an adversarial
// oscillating query must be stopped by the planner-installed iteration
// guard with the structured error.
package dbspinner_test

import (
	"errors"
	"strings"
	"testing"

	"dbspinner"
	"dbspinner/internal/bench"
)

// newVerdictEngine loads the small 4-edge graph the engine tests use.
func newVerdictEngine(t *testing.T, cfg dbspinner.Config) *dbspinner.Engine {
	t.Helper()
	e := dbspinner.New(cfg)
	for _, sql := range []string{
		"CREATE TABLE edges (src int, dst int, weight float)",
		"INSERT INTO edges VALUES (1,2,0.5), (1,3,0.5), (2,3,1.0), (3,1,1.0)",
		"CREATE TABLE vertexStatus (node int PRIMARY KEY, status int)",
		"INSERT INTO vertexStatus VALUES (1,1), (2,1), (3,1)",
	} {
		if _, err := e.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	return e
}

// TestWorkloadQueriesGetProvenVerdicts is the verdict-regression gate:
// every evaluation query (PR, PR-VS, SSSP, SSSP-VS, FF) must EXPLAIN
// with a proved Terminates/Converges verdict and an evidence chain —
// never Unknown.
func TestWorkloadQueriesGetProvenVerdicts(t *testing.T) {
	e := newVerdictEngine(t, dbspinner.Config{Partitions: 2})
	queries := map[string]string{
		"PR":      bench.PRQuery(10),
		"PR-VS":   bench.PRVSQuery(10),
		"SSSP":    bench.SSSPQuery(1, 10),
		"SSSP-VS": bench.SSSPVSQuery(1, 10),
		"FF":      bench.FFQuery(10, 2),
	}
	for name, sql := range queries {
		t.Run(name, func(t *testing.T) {
			out, err := e.Explain(sql)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out, "Termination") {
				t.Fatalf("EXPLAIN prints no termination verdict:\n%s", out)
			}
			if strings.Contains(out, ": Unknown") {
				t.Errorf("%s got an Unknown verdict:\n%s", name, out)
			}
			if !strings.Contains(out, ": Terminates") && !strings.Contains(out, ": Converges") {
				t.Errorf("%s verdict is neither Terminates nor Converges:\n%s", name, out)
			}
			if !strings.Contains(out, "evidence [") {
				t.Errorf("%s verdict carries no evidence chain:\n%s", name, out)
			}
		})
	}
}

// oscillatingQuery recomputes every value as 1 - partner's value each
// iteration: from (0.0, 0.3) the states alternate (0.7, 1.0) and
// (0.0, 0.3) forever, so DELTA < 1 never fires. The analysis cannot
// prove termination (the value column feeds a frontier-expanding body
// through float arithmetic), so the rewrite must install the cap.
const oscillatingQuery = `WITH ITERATIVE osc (node, val) AS (
	SELECT node, val FROM vals
 ITERATE
	SELECT p.b, 1.0 - o.val FROM osc AS o JOIN pairs AS p ON p.a = o.node
 UNTIL DELTA < 1)
SELECT node, val FROM osc`

func newOscillatingEngine(t *testing.T, cfg dbspinner.Config) *dbspinner.Engine {
	t.Helper()
	e := dbspinner.New(cfg)
	for _, sql := range []string{
		"CREATE TABLE vals (node int, val float)",
		"INSERT INTO vals VALUES (1, 0.0), (2, 0.3)",
		"CREATE TABLE pairs (a int, b int)",
		"INSERT INTO pairs VALUES (1, 2), (2, 1)",
	} {
		if _, err := e.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	return e
}

func TestOscillatingQueryStoppedByGuard(t *testing.T) {
	e := newOscillatingEngine(t, dbspinner.Config{Partitions: 2, MaxIterations: 25})
	_, err := e.Query(oscillatingQuery)
	if err == nil {
		t.Fatal("oscillating query should hit the iteration cap")
	}
	if !errors.Is(err, dbspinner.ErrIterationCapExceeded) {
		t.Fatalf("error does not wrap ErrIterationCapExceeded: %v", err)
	}
	var capErr *dbspinner.IterationCapError
	if !errors.As(err, &capErr) {
		t.Fatalf("error is not a structured IterationCapError: %v", err)
	}
	if !strings.EqualFold(capErr.CTE, "osc") || capErr.Cap != 25 {
		t.Errorf("cap error fields: CTE=%q Cap=%d, want osc/25", capErr.CTE, capErr.Cap)
	}
	if len(capErr.Diags) == 0 {
		t.Error("cap error carries no analysis diagnostics")
	}
}

func TestOscillatingQueryExplainShowsGuard(t *testing.T) {
	e := newOscillatingEngine(t, dbspinner.Config{Partitions: 2, MaxIterations: 25})
	out, err := e.Explain(oscillatingQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Termination osc: Unknown") {
		t.Errorf("EXPLAIN does not report the Unknown verdict:\n%s", out)
	}
	if !strings.Contains(out, "guard: fail after 25 iterations with ErrIterationCapExceeded") {
		t.Errorf("EXPLAIN does not report the installed guard:\n%s", out)
	}
	if !strings.Contains(out, "unproved:") {
		t.Errorf("EXPLAIN does not report why termination is unproved:\n%s", out)
	}
}

// TestDefaultCapProtectsByDefault: with no MaxIterations configured the
// default cap still stops the runaway (sized down here only so the test
// does not spin 100000 iterations — the default is exercised by leaving
// Config.MaxIterations zero and checking the explain line).
func TestDefaultCapAdvertisedInExplain(t *testing.T) {
	e := newOscillatingEngine(t, dbspinner.Config{Partitions: 2})
	out, err := e.Explain(oscillatingQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "guard: fail after 100000 iterations") {
		t.Errorf("default cap not advertised:\n%s", out)
	}
}
