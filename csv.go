package dbspinner

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"

	"dbspinner/internal/sqltypes"
)

// LoadCSV bulk-loads comma-separated rows into a table, casting each
// field to the declared column type. When header is true the first
// record is treated as column names and used to reorder the fields;
// otherwise fields must match the table's column order. Empty fields
// load as NULL. Returns the number of rows loaded.
func (e *Engine) LoadCSV(table string, r io.Reader, header bool) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.cat.Get(table)
	if t == nil {
		return 0, fmt.Errorf("table %q does not exist", table)
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true

	colIdx := make([]int, len(t.Schema))
	for i := range colIdx {
		colIdx[i] = i
	}
	first := true
	var loaded int64
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return loaded, nil
		}
		if err != nil {
			return loaded, err
		}
		if first && header {
			first = false
			if len(rec) != len(t.Schema) {
				return 0, fmt.Errorf("CSV has %d columns, table %q has %d", len(rec), table, len(t.Schema))
			}
			for i, name := range rec {
				idx := t.Schema.ColumnIndex(strings.TrimSpace(name))
				if idx < 0 {
					return 0, fmt.Errorf("CSV column %q does not exist in %q", name, table)
				}
				colIdx[i] = idx
			}
			continue
		}
		first = false
		if len(rec) != len(t.Schema) {
			return loaded, fmt.Errorf("row %d has %d fields, expected %d", loaded+1, len(rec), len(t.Schema))
		}
		row := make(sqltypes.Row, len(t.Schema))
		for i, field := range rec {
			idx := colIdx[i]
			if field == "" {
				row[idx] = sqltypes.NullValue
				continue
			}
			v, err := sqltypes.Cast(sqltypes.NewString(field), t.Schema[idx].Type)
			if err != nil {
				return loaded, fmt.Errorf("row %d column %s: %w", loaded+1, t.Schema[idx].Name, err)
			}
			row[idx] = v
		}
		t.Insert(row)
		loaded++
	}
}

// LoadCSVFile is LoadCSV over a file path.
func (e *Engine) LoadCSVFile(table, path string, header bool) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return e.LoadCSV(table, f, header)
}
