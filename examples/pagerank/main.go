// PageRank on a generated social graph: the paper's Figure 2 query run
// through the engine, cross-checked against a native Go PageRank, plus
// the PR-VS variant whose invariant join block the optimizer
// materializes once before the loop (paper §V-A).
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"strings"

	"dbspinner"
	"dbspinner/internal/graphalgo"
	"dbspinner/internal/workload"
)

const iterations = 10

func main() {
	// A scale-free graph shaped like the paper's DBLP dataset.
	g := workload.PreferentialAttachment(2000, 3, workload.WeightOutDegree, 42)
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes, len(g.Edges))

	e := dbspinner.New(dbspinner.Config{Partitions: 4})
	mustExec(e, "CREATE TABLE edges (src int, dst int, weight float)")
	if err := e.BulkInsert("edges", workload.EdgeRows(g)); err != nil {
		log.Fatal(err)
	}
	mustExec(e, "CREATE TABLE vertexStatus (node int PRIMARY KEY, status int)")
	if err := e.BulkInsert("vertexStatus", workload.VertexStatus(g, 0.9, 7)); err != nil {
		log.Fatal(err)
	}

	query := fmt.Sprintf(`
		WITH ITERATIVE PageRank (Node, Rank, Delta) AS (
			SELECT src, 0, 0.15
			FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
		ITERATE
			SELECT PageRank.node,
				PageRank.rank + PageRank.delta,
				0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
			FROM PageRank
				LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
				LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
			GROUP BY PageRank.node, PageRank.rank + PageRank.delta
		UNTIL %d ITERATIONS )
		SELECT Node, Rank FROM PageRank ORDER BY Rank DESC LIMIT 5`, iterations)

	res, err := e.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop 5 nodes by rank (SQL):")
	fmt.Print(res.String())

	// Cross-check against the native implementation.
	oracle := graphalgo.PageRank(g.Edges, iterations)
	type nr struct {
		node int64
		rank float64
	}
	var top []nr
	for n, r := range oracle {
		if !math.IsNaN(r) {
			top = append(top, nr{n, r})
		}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Println("top 5 nodes by rank (native Go oracle):")
	for _, t := range top[:5] {
		fmt.Printf("%d  %.6f\n", t.node, t.rank)
	}
	for i, row := range res.Rows {
		if row[0].Int() != top[i].node || math.Abs(row[1].Float()-top[i].rank) > 1e-9 {
			log.Fatalf("mismatch at position %d: SQL %v vs oracle %v", i, row, top[i])
		}
	}
	fmt.Println("SQL and oracle agree.")

	// PR-VS: the join with vertexStatus is iteration-invariant, so the
	// optimizer hoists it out of the loop as Common#1.
	prvs := fmt.Sprintf(`
		WITH ITERATIVE PageRank (Node, Rank, Delta) AS (
			SELECT src, 0, 0.15
			FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
		ITERATE
			SELECT PageRank.node,
				PageRank.rank + PageRank.delta,
				0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
			FROM PageRank
				LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
				LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
				JOIN vertexStatus AS avail_pr ON avail_pr.node = IncomingEdges.dst
			WHERE avail_pr.status != 0
			GROUP BY PageRank.node, PageRank.rank + PageRank.delta
		UNTIL %d ITERATIONS )
		SELECT Node, Rank FROM PageRank ORDER BY Rank DESC LIMIT 3`, iterations)

	plan, err := e.Explain(prvs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPR-VS step program (note the Common#1 block before the loop):")
	for _, line := range strings.Split(plan, "\n") {
		if strings.HasPrefix(line, "Step") || strings.Contains(line, "Common#1") {
			fmt.Println(line)
		}
	}
	if _, err := e.Query(prvs); err != nil {
		log.Fatal(err)
	}
	st := e.Stats()
	fmt.Printf("\ncommon blocks materialized: %d (once, reused %d iterations)\n", st.CommonBlocks, iterations)
}

func mustExec(e *dbspinner.Engine, sql string) {
	if _, err := e.Exec(sql); err != nil {
		log.Fatal(err)
	}
}
