// Single-source shortest paths with a Delta termination condition: the
// loop stops as soon as an iteration changes fewer than one row —
// i.e., at convergence — instead of a fixed iteration count. The
// result is validated against Dijkstra.
package main

import (
	"fmt"
	"log"
	"math"

	"dbspinner"
	"dbspinner/internal/graphalgo"
	"dbspinner/internal/workload"
)

func main() {
	// A random road-network-ish graph with uniform weights in [1, 10).
	g := workload.Uniform(500, 2500, workload.WeightUniform, 11)
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes, len(g.Edges))

	e := dbspinner.New(dbspinner.Config{Partitions: 4})
	if _, err := e.Exec("CREATE TABLE edges (src int, dst int, weight float)"); err != nil {
		log.Fatal(err)
	}
	if err := e.BulkInsert("edges", workload.EdgeRows(g)); err != nil {
		log.Fatal(err)
	}

	// UNTIL DELTA < 1: iterate until a fixed point. The recurrence is
	// the Bellman-Ford relaxation
	//
	//	distance' = min(distance, min over incoming (src.distance + w))
	//
	// which is monotone, so the loop provably converges and the Delta
	// termination condition (stop when an iteration changes fewer than
	// one row) fires at the fixed point. (The paper's two-column
	// PR-style formulation in Figure 7 tracks exact-i-step walk costs
	// in its delta column, which never stabilizes on cyclic graphs —
	// that variant needs a Metadata condition; see the SSSP benchmarks.)
	// The merge path of Algorithm 1 applies because the iterative part
	// has a WHERE clause: unexplored nodes keep their previous values.
	query := `
		WITH ITERATIVE sssp (Node, Distance) AS (
			SELECT src, CASE WHEN src = 1 THEN 0 ELSE 9999999 END
			FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
		ITERATE
			SELECT sssp.node,
				LEAST(sssp.distance, MIN(Incoming.Distance + IncomingEdges.weight))
			FROM sssp
				LEFT JOIN edges AS IncomingEdges ON sssp.node = IncomingEdges.dst
				LEFT JOIN sssp AS Incoming ON Incoming.node = IncomingEdges.src
			WHERE Incoming.Distance != 9999999
			GROUP BY sssp.node, sssp.distance
		UNTIL DELTA < 1 )
		SELECT Node, Distance FROM sssp ORDER BY Node`

	res, err := e.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	st := e.Stats()
	fmt.Printf("converged after %d iterations\n", st.Iterations)

	exact := graphalgo.Dijkstra(g.Edges, 1)
	reachable, checked := 0, 0
	for _, row := range res.Rows {
		node := row[0].Int()
		got := row[1].Float()
		want := exact[node]
		if math.IsInf(want, 1) {
			if got != graphalgo.Infinity {
				log.Fatalf("node %d should be unreachable, SQL says %v", node, got)
			}
			continue
		}
		reachable++
		if math.Abs(got-want) > 1e-9 {
			log.Fatalf("node %d: SQL %v, Dijkstra %v", node, got, want)
		}
		checked++
	}
	fmt.Printf("distances agree with Dijkstra for all %d reachable nodes (of %d)\n", checked, len(res.Rows))

	// A few sample distances.
	fmt.Println("\nsample distances from node 1:")
	for _, row := range res.Rows[:5] {
		fmt.Printf("node %v: %v\n", row[0], row[1])
	}
}
