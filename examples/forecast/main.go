// Friends forecast (the paper's FF query, Figure 6) with predicate
// push down: the final query samples 1% of the nodes, and the
// optimizer pushes that filter into the non-iterative part so every
// iteration processes 100x less data. The example shows the plan with
// and without the optimization and measures both.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"dbspinner"
	"dbspinner/internal/workload"
)

const (
	iterations = 25
	mod        = 100 // MOD(node, 100) = 0 keeps 1% of the nodes
)

func query() string {
	return fmt.Sprintf(`
		WITH ITERATIVE forecast (node, friends, friendsPrev) AS (
			SELECT src AS node, count(dst) AS friends,
				ceiling(count(dst) * (1.0-(src%%10)/100.0)) AS friendsPrev
			FROM edges GROUP BY src
		ITERATE
			SELECT node AS node,
				round(cast((friends / friendsPrev) * friends AS numeric), 5) AS friends,
				friends AS friendsPrev
			FROM forecast
		UNTIL %d ITERATIONS )
		SELECT node, friends
		FROM forecast WHERE MOD(node, %d) = 0
		ORDER BY friends DESC, node LIMIT 10`, iterations, mod)
}

func load(e *dbspinner.Engine, g *workload.Graph) {
	if _, err := e.Exec("CREATE TABLE edges (src int, dst int, weight float)"); err != nil {
		log.Fatal(err)
	}
	if err := e.BulkInsert("edges", workload.EdgeRows(g)); err != nil {
		log.Fatal(err)
	}
}

func main() {
	g := workload.PreferentialAttachment(20000, 5, workload.WeightUnit, 3)
	fmt.Printf("graph: %d nodes, %d edges; forecasting %d iterations, sampling 1/%d\n",
		g.NumNodes, len(g.Edges), iterations, mod)

	optimized := dbspinner.New(dbspinner.Config{})
	baseline := dbspinner.New(dbspinner.Config{DisablePredicatePushdown: true})
	load(optimized, g)
	load(baseline, g)

	// Show where the predicate ends up in each plan.
	showPlanHead := func(label string, e *dbspinner.Engine) {
		plan, err := e.Explain(query())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — step 1 of the program:\n", label)
		head := plan[:strings.Index(plan, "Step 2")]
		for _, line := range strings.Split(strings.TrimRight(head, "\n"), "\n") {
			fmt.Println(line)
		}
	}
	showPlanHead("baseline (filter stays in Qf)", baseline)
	showPlanHead("optimized (filter pushed into R0)", optimized)

	run := func(e *dbspinner.Engine) (time.Duration, *dbspinner.Result) {
		start := time.Now()
		res, err := e.Query(query())
		if err != nil {
			log.Fatal(err)
		}
		return time.Since(start), res
	}
	baseTime, baseRes := run(baseline)
	optTime, optRes := run(optimized)

	fmt.Printf("\nbaseline:  %v\n", baseTime.Round(time.Microsecond))
	fmt.Printf("optimized: %v  (%.1fx faster)\n", optTime.Round(time.Microsecond),
		float64(baseTime)/float64(optTime))

	// Both return the same answer.
	if len(baseRes.Rows) != len(optRes.Rows) {
		log.Fatalf("row counts differ: %d vs %d", len(baseRes.Rows), len(optRes.Rows))
	}
	for i := range baseRes.Rows {
		if baseRes.Rows[i].String() != optRes.Rows[i].String() {
			log.Fatalf("row %d differs: %v vs %v", i, baseRes.Rows[i], optRes.Rows[i])
		}
	}
	fmt.Println("\ntop forecasts (identical for both plans):")
	fmt.Print(optRes.String())
}
