// Quickstart: create a table, load a few rows, and run an iterative
// CTE — the WITH ITERATIVE extension the engine implements natively.
package main

import (
	"fmt"
	"log"

	"dbspinner"
)

func main() {
	// An engine with default settings: 4 hash partitions, every
	// iterative-CTE optimization enabled.
	e := dbspinner.New(dbspinner.Config{})

	// Ordinary SQL works as usual.
	must(e.Exec(`CREATE TABLE accounts (id int PRIMARY KEY, balance float)`))
	must(e.Exec(`INSERT INTO accounts VALUES (1, 100.0), (2, 250.0), (3, 50.0)`))

	// An iterative CTE: apply 5% interest until every balance exceeds
	// 150, using a Data termination condition (UNTIL ALL (...)). Plain
	// recursive CTEs cannot express this: the working table is updated
	// in place each iteration, not appended to.
	query := `
		WITH ITERATIVE grow (id, balance) AS (
			SELECT id, balance FROM accounts
		ITERATE
			SELECT id, balance * 1.05 FROM grow
		UNTIL ALL (balance > 150.0) )
		SELECT id, ROUND(balance, 2) AS balance FROM grow ORDER BY id`

	res, err := e.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("balances after compounding to the target:")
	fmt.Print(res.String())

	// The engine executed the whole loop as a single plan; EXPLAIN
	// shows the rewritten step program (paper Table I).
	plan, err := e.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrewritten step program:")
	fmt.Print(plan)

	st := e.Stats()
	fmt.Printf("\nloop iterations: %d, rename operator uses: %d\n", st.Iterations, st.Renames)
}

func must(n int64, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
