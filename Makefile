GO ?= go
BIN := bin

.PHONY: all build test race vet lint fuzz-seed check bench-smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race-enabled run covers the packages with concurrency plus the
# ones the delta-iteration mode touches: the MPP scheduler, the
# executors, the step-program runner, the verifier, and the bench
# harness that drives full-vs-delta engines side by side. The root
# package rides along for the step-scheduler parity matrix, which must
# hold under the race detector.
race:
	$(GO) test -race . ./internal/core/... ./internal/exec/... ./internal/mpp/... ./internal/verify/... ./internal/bench/...

vet:
	$(GO) vet ./...

$(BIN)/spinlint: $(wildcard cmd/spinlint/*.go internal/lint/*.go)
	$(GO) build -o $(BIN)/spinlint ./cmd/spinlint

# Repo-specific analyzers (Step.Run fall-through, result-store access,
# Explain coverage, error context) running under the go vet driver.
lint: $(BIN)/spinlint
	$(GO) vet -vettool=$(CURDIR)/$(BIN)/spinlint ./...

# Run the fuzz targets over their seed corpus only (no mutation): every
# workload query and one variant per UNTIL shape must round-trip
# through parse -> print -> parse. Open-ended exploration is manual:
#   go test -fuzz=FuzzParseRoundTrip ./internal/parser
fuzz-seed:
	$(GO) test -run '^Fuzz' ./internal/parser

# The full gate CI runs: standard vet, spinlint, build, tests, the fuzz
# seed corpus, and the race-enabled pass over the concurrent packages.
check: vet lint build test fuzz-seed race

# bench-smoke runs the full-vs-delta, full-vs-pruned and
# sequential-vs-scheduled comparisons on small PR-VS and SSSP datasets:
# each fails if its two modes disagree on a single row, delta prints
# the Ri row savings, pruning asserts the materialized-cell reduction
# on PR-VS, and sched prints the region-DAG shape (width, critical
# path) next to the wall-clock and asserts at least one schedule has
# width > 1. trace runs PR and SSSP with iteration tracing on and off,
# asserts identical results plus one span per iteration, and fails if
# the traced run leaves the noise band of the untraced one. shuffle
# runs every workload query with shuffle elision on and off, prints
# rows shuffled next to the wall-clock, asserts identical results with
# the dynamic co-location guard armed, and fails unless the VS
# variants strictly reduce rows shuffled. incagg runs PR and SSSP with
# incremental aggregate maintenance on and off (cross-check armed),
# asserts byte-identical results, and fails unless both cut aggregate
# input rows by at least 40%. faults runs PR and SSSP with back-edge
# checkpointing off and on and once more with a deterministic fault
# schedule injected mid-loop, asserting byte-identical rows in all
# three runs, at least one retry per scheduled fault, and checkpointing
# overhead inside the noise band. The smoke set is declared once in
# cmd/benchrunner; the runner fails if any smoke experiment writes no
# section to bench-smoke.md, so the committed doc cannot silently go
# stale when an experiment is added or renamed.
bench-smoke:
	$(GO) run ./cmd/benchrunner -exp smoke -scale 300 -iterations 5 -reps 1 -partitions 2 -md bench-smoke.md

clean:
	rm -rf $(BIN)
	$(GO) clean -testcache
