GO ?= go
BIN := bin

.PHONY: all build test race vet lint check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race-enabled run covers the packages with concurrency: the MPP
# scheduler, the executors, and the step-program runner.
race:
	$(GO) test -race ./internal/core/... ./internal/exec/... ./internal/mpp/...

vet:
	$(GO) vet ./...

$(BIN)/spinlint: $(wildcard cmd/spinlint/*.go internal/lint/*.go)
	$(GO) build -o $(BIN)/spinlint ./cmd/spinlint

# Repo-specific analyzers (Step.Run fall-through, result-store access,
# Explain coverage, error context) running under the go vet driver.
lint: $(BIN)/spinlint
	$(GO) vet -vettool=$(CURDIR)/$(BIN)/spinlint ./...

# The full gate CI runs: standard vet, spinlint, build, tests, and the
# race-enabled pass over the concurrent packages.
check: vet lint build test race

clean:
	rm -rf $(BIN)
	$(GO) clean -testcache
