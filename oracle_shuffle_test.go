// Oracle tests for the static partition-property analysis and the
// shuffle elision it licenses (internal/distprop): every workload
// query must return byte-identical rows with elision on and off across
// partition counts — with the dynamic co-location cross-check armed —
// and on the vertexStatus variants the elision must actually move
// fewer rows.
package dbspinner_test

import (
	"fmt"
	"strings"
	"testing"

	"dbspinner"
)

// newShuffleEngine seeds a deterministic graph large enough that
// exchange savings are measurable: 30 nodes, 3 out-edges per node, a
// status row per node. Everything is generated from the loop index, so
// every run (and every configuration) sees the same data.
func newShuffleEngine(t *testing.T, cfg dbspinner.Config) *dbspinner.Engine {
	t.Helper()
	e := dbspinner.New(cfg)
	const nodes = 30
	var edges, status strings.Builder
	edges.WriteString("INSERT INTO edges VALUES ")
	status.WriteString("INSERT INTO vertexStatus VALUES ")
	first := true
	for i := 1; i <= nodes; i++ {
		for _, j := range []int{i%nodes + 1, (i*7)%nodes + 1, (i*13)%nodes + 1} {
			if j == i {
				j = j%nodes + 1
			}
			if !first {
				edges.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&edges, "(%d,%d,%g)", i, j, float64((i+j)%5+1)/2)
		}
		if i > 1 {
			status.WriteString(", ")
		}
		fmt.Fprintf(&status, "(%d,%d)", i, i%2)
	}
	for _, sql := range []string{
		"CREATE TABLE edges (src int, dst int, weight float)",
		edges.String(),
		"CREATE TABLE vertexStatus (node int PRIMARY KEY, status int)",
		status.String(),
	} {
		if _, err := e.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	return e
}

// shuffleRun executes sql on a fresh engine and returns the rendered
// rows plus the engine stats after the query.
func shuffleRun(t *testing.T, cfg dbspinner.Config, sql string) (string, dbspinner.Stats) {
	t.Helper()
	e := newShuffleEngine(t, cfg)
	res, err := e.Query(sql)
	if err != nil {
		t.Fatalf("Partitions=%d Parallel=%v DisableShuffleElision=%v: %v",
			cfg.Partitions, cfg.Parallel, cfg.DisableShuffleElision, err)
	}
	var b strings.Builder
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%v\n", r)
	}
	return b.String(), e.Stats()
}

// TestShuffleElisionParityMatrix is the elision oracle gate: all five
// workload queries x elision on/off x partition counts {1, 2, 4} must
// return byte-identical ordered rows, with the dynamic co-location
// check (Config.CheckShuffleElision) armed so an unsound elision fails
// the query instead of silently reshaping results. On the vertexStatus
// variants — whose joins and aggregate group on the distribution
// column — elision must strictly reduce RowsShuffled whenever the
// machine actually shuffles (Parallel, parts > 1). CI runs this under
// -race via the root-package coverage in the Makefile.
func TestShuffleElisionParityMatrix(t *testing.T) {
	for name, sql := range schedWorkloadQueries() {
		t.Run(name, func(t *testing.T) {
			for _, parts := range []int{1, 2, 4} {
				on := dbspinner.Config{Partitions: parts, Parallel: true, CheckShuffleElision: true}
				off := dbspinner.Config{Partitions: parts, Parallel: true, DisableShuffleElision: true}
				gotOn, statsOn := shuffleRun(t, on, sql)
				gotOff, statsOff := shuffleRun(t, off, sql)
				if gotOn != gotOff {
					t.Errorf("parts=%d: elision changes results:\n  on: %s\n off: %s", parts, gotOn, gotOff)
				}
				if parts == 1 {
					if statsOn.ShufflesElided != 0 {
						t.Errorf("parts=1 should never elide (nothing shuffles), got %d", statsOn.ShufflesElided)
					}
					continue
				}
				if !strings.Contains(name, "-VS") {
					continue
				}
				// The VS variants join and group on the distribution
				// column throughout, so the analysis must license real
				// elisions and the machine must move strictly fewer rows.
				if statsOn.ShufflesElided == 0 {
					t.Errorf("parts=%d: no exchanges elided on %s", parts, name)
				}
				if statsOn.RowsShuffled >= statsOff.RowsShuffled {
					t.Errorf("parts=%d: elision does not reduce shuffled rows: on=%d off=%d",
						parts, statsOn.RowsShuffled, statsOff.RowsShuffled)
				}
			}
		})
	}
}

// TestShuffleElisionSavingsFloor pins the headline saving the analysis
// is designed for: on PR-VS and SSSP-VS at 4 partitions, elision cuts
// RowsShuffled by at least 30%.
func TestShuffleElisionSavingsFloor(t *testing.T) {
	queries := schedWorkloadQueries()
	for _, name := range []string{"PR-VS", "SSSP-VS"} {
		t.Run(name, func(t *testing.T) {
			sql := queries[name]
			on := dbspinner.Config{Partitions: 4, Parallel: true, CheckShuffleElision: true}
			off := dbspinner.Config{Partitions: 4, Parallel: true, DisableShuffleElision: true}
			gotOn, statsOn := shuffleRun(t, on, sql)
			gotOff, statsOff := shuffleRun(t, off, sql)
			if gotOn != gotOff {
				t.Fatalf("elision changes results:\n  on: %s\n off: %s", gotOn, gotOff)
			}
			if statsOff.RowsShuffled == 0 {
				t.Fatal("baseline shuffles no rows; the measurement is vacuous")
			}
			saved := float64(statsOff.RowsShuffled-statsOn.RowsShuffled) / float64(statsOff.RowsShuffled)
			t.Logf("%s: RowsShuffled on=%d off=%d (saved %.1f%%); ShufflesElided=%d RowsElided=%d",
				name, statsOn.RowsShuffled, statsOff.RowsShuffled, 100*saved, statsOn.ShufflesElided, statsOn.RowsElided)
			if saved < 0.30 {
				t.Errorf("elision saves only %.1f%% of shuffled rows (want >= 30%%): on=%d off=%d",
					100*saved, statsOn.RowsShuffled, statsOff.RowsShuffled)
			}
		})
	}
}
