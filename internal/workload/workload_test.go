package workload

import (
	"math"
	"testing"

	"dbspinner/internal/sqltypes"
)

func TestPreferentialAttachmentShape(t *testing.T) {
	g := PreferentialAttachment(1000, 3, WeightOutDegree, 1)
	if g.NumNodes != 1000 {
		t.Errorf("nodes = %d", g.NumNodes)
	}
	// Out-degree <= 3 per node, so |E| <= 3*(n-1); and close to it.
	if len(g.Edges) > 3*999 || len(g.Edges) < 2*999 {
		t.Errorf("edges = %d", len(g.Edges))
	}
	// Scale-free shape: max in-degree far above the average.
	inDeg := map[int64]int{}
	for _, e := range g.Edges {
		inDeg[e.Dst]++
		if e.Src == e.Dst {
			t.Fatal("self loop")
		}
		if e.Src < 1 || e.Src > 1000 || e.Dst < 1 || e.Dst > 1000 {
			t.Fatal("endpoint out of range")
		}
	}
	max := 0
	for _, d := range inDeg {
		if d > max {
			max = d
		}
	}
	avg := float64(len(g.Edges)) / 1000
	if float64(max) < 5*avg {
		t.Errorf("max in-degree %d not heavy-tailed (avg %.1f)", max, avg)
	}
}

func TestDeterminism(t *testing.T) {
	a := PreferentialAttachment(500, 4, WeightUniform, 7)
	b := PreferentialAttachment(500, 4, WeightUniform, 7)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("lengths differ")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
	c := PreferentialAttachment(500, 4, WeightUniform, 8)
	same := true
	for i := range a.Edges {
		if i < len(c.Edges) && a.Edges[i] != c.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestOutDegreeWeights(t *testing.T) {
	g := PreferentialAttachment(200, 3, WeightOutDegree, 2)
	sums := map[int64]float64{}
	for _, e := range g.Edges {
		if e.Weight <= 0 || e.Weight > 1 {
			t.Fatalf("weight %v out of range", e.Weight)
		}
		sums[e.Src] += e.Weight
	}
	for src, s := range sums {
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("outgoing weights of %d sum to %v, want 1", src, s)
		}
	}
}

func TestUniformGraph(t *testing.T) {
	g := Uniform(100, 500, WeightUniform, 3)
	if len(g.Edges) != 500 {
		t.Errorf("edges = %d", len(g.Edges))
	}
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			t.Fatal("self loop")
		}
		if e.Weight < 1 || e.Weight >= 10 {
			t.Fatalf("weight %v out of [1,10)", e.Weight)
		}
	}
}

func TestChain(t *testing.T) {
	g := Chain(5)
	if len(g.Edges) != 4 {
		t.Fatalf("edges = %d", len(g.Edges))
	}
	for i, e := range g.Edges {
		if e.Src != int64(i+1) || e.Dst != int64(i+2) || e.Weight != 1 {
			t.Errorf("edge %d = %v", i, e)
		}
	}
}

func TestUnitWeights(t *testing.T) {
	g := Uniform(50, 100, WeightUnit, 1)
	for _, e := range g.Edges {
		if e.Weight != 1 {
			t.Fatal("unit weight")
		}
	}
}

func TestVertexStatus(t *testing.T) {
	g := PreferentialAttachment(1000, 2, WeightUnit, 1)
	rows := VertexStatus(g, 0.8, 5)
	if len(rows) != 1000 {
		t.Fatalf("rows = %d", len(rows))
	}
	avail := 0
	for _, r := range rows {
		if r[1].Int() == 1 {
			avail++
		}
	}
	if avail < 700 || avail > 900 {
		t.Errorf("available = %d, want ~800", avail)
	}
	// Deterministic.
	rows2 := VertexStatus(g, 0.8, 5)
	for i := range rows {
		if !rows[i].Equal(rows2[i]) {
			t.Fatal("VertexStatus not deterministic")
		}
	}
}

func TestEdgeRows(t *testing.T) {
	g := Chain(3)
	rows := EdgeRows(g)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != sqltypes.NewInt(1) || rows[0][1] != sqltypes.NewInt(2) {
		t.Errorf("row = %v", rows[0])
	}
}

func TestPresets(t *testing.T) {
	g, err := Generate("dblp-small")
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(g.Edges)) / float64(g.NumNodes)
	// DBLP's edge:node ratio is ~3.3; the generator should be close.
	if ratio < 2 || ratio > 3.5 {
		t.Errorf("dblp-small ratio = %.2f", ratio)
	}
	p, err := Generate("pokec-small")
	if err != nil {
		t.Fatal(err)
	}
	pratio := float64(len(p.Edges)) / float64(p.NumNodes)
	if pratio < 12 || pratio > 19 {
		t.Errorf("pokec-small ratio = %.2f", pratio)
	}
	// Pokec-like graphs are denser than DBLP-like ones, as in the paper.
	if pratio <= ratio {
		t.Error("pokec should be denser than dblp")
	}
	if _, err := Generate("nope"); err == nil {
		t.Error("unknown preset")
	}
	// Case-insensitive.
	if _, err := Generate("DBLP-Small"); err != nil {
		t.Error("preset lookup should be case-insensitive")
	}
}

func TestSmallInputsClamped(t *testing.T) {
	g := PreferentialAttachment(1, 0, WeightUnit, 1)
	if g.NumNodes < 2 {
		t.Error("node clamp")
	}
	u := Uniform(1, 3, WeightUnit, 1)
	if u.NumNodes < 2 || len(u.Edges) != 3 {
		t.Error("uniform clamp")
	}
}
