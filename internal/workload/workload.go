// Package workload generates the synthetic datasets used by the
// benchmarks. The paper evaluates on DBLP (317,080 nodes / 1,049,866
// edges), Pokec (1,632,803 / 30,622,564) and the Google web graph;
// those datasets are not redistributable here, so deterministic
// preferential-attachment generators with the same node:edge ratios
// stand in for them (see DESIGN.md for why this preserves the
// experiments' shape).
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"dbspinner/internal/graphalgo"
	"dbspinner/internal/sqltypes"
)

// WeightMode selects edge weights.
type WeightMode int

// Weight modes.
const (
	// WeightOutDegree sets weight(src->dst) = 1/outdegree(src), the
	// normalization PageRank expects.
	WeightOutDegree WeightMode = iota
	// WeightUniform draws weights uniformly from [1, 10), the shape
	// SSSP expects.
	WeightUniform
	// WeightUnit sets every weight to 1.
	WeightUnit
)

// Graph is a generated directed graph.
type Graph struct {
	NumNodes int
	Edges    []graphalgo.Edge
}

// PreferentialAttachment generates a scale-free graph: node i (from 1
// to n) attaches outDeg edges to targets drawn preferentially from
// earlier endpoints, giving the heavy-tailed in-degree distribution of
// citation and social graphs.
func PreferentialAttachment(n, outDeg int, mode WeightMode, seed int64) *Graph {
	if n < 2 {
		n = 2
	}
	if outDeg < 1 {
		outDeg = 1
	}
	rng := rand.New(rand.NewSource(seed))
	// endpoints holds every edge endpoint seen so far; drawing a
	// uniform index from it implements preferential attachment.
	endpoints := make([]int64, 0, 2*n*outDeg)
	edges := make([]graphalgo.Edge, 0, n*outDeg)
	endpoints = append(endpoints, 1)
	for i := 2; i <= n; i++ {
		src := int64(i)
		seen := map[int64]bool{src: true}
		for d := 0; d < outDeg; d++ {
			dst := endpoints[rng.Intn(len(endpoints))]
			if seen[dst] {
				// Fall back to a uniform target to keep the out-degree
				// exact without spinning on dense prefixes.
				dst = int64(rng.Intn(i-1) + 1)
				if seen[dst] {
					continue
				}
			}
			seen[dst] = true
			edges = append(edges, graphalgo.Edge{Src: src, Dst: dst})
			endpoints = append(endpoints, src, dst)
		}
	}
	g := &Graph{NumNodes: n, Edges: edges}
	g.assignWeights(mode, rng)
	return g
}

// Uniform generates an Erdős–Rényi style graph with m random edges
// over n nodes (self-loops excluded, duplicates allowed, as in real
// edge lists).
func Uniform(n, m int, mode WeightMode, seed int64) *Graph {
	if n < 2 {
		n = 2
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graphalgo.Edge, 0, m)
	for len(edges) < m {
		src := int64(rng.Intn(n) + 1)
		dst := int64(rng.Intn(n) + 1)
		if src == dst {
			continue
		}
		edges = append(edges, graphalgo.Edge{Src: src, Dst: dst})
	}
	g := &Graph{NumNodes: n, Edges: edges}
	g.assignWeights(mode, rng)
	return g
}

// Chain generates the path 1 -> 2 -> ... -> n with unit weights; the
// worst case for iterative shortest paths (diameter n-1).
func Chain(n int) *Graph {
	edges := make([]graphalgo.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graphalgo.Edge{Src: int64(i), Dst: int64(i + 1), Weight: 1})
	}
	return &Graph{NumNodes: n, Edges: edges}
}

func (g *Graph) assignWeights(mode WeightMode, rng *rand.Rand) {
	switch mode {
	case WeightOutDegree:
		outDeg := map[int64]int{}
		for _, e := range g.Edges {
			outDeg[e.Src]++
		}
		for i := range g.Edges {
			g.Edges[i].Weight = 1.0 / float64(outDeg[g.Edges[i].Src])
		}
	case WeightUniform:
		for i := range g.Edges {
			g.Edges[i].Weight = 1 + 9*rng.Float64()
		}
	case WeightUnit:
		for i := range g.Edges {
			g.Edges[i].Weight = 1
		}
	}
}

// VertexStatus generates one availability row per node; availFrac of
// the nodes (deterministically chosen) are available (status 1).
func VertexStatus(g *Graph, availFrac float64, seed int64) []sqltypes.Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]sqltypes.Row, 0, g.NumNodes)
	for n := 1; n <= g.NumNodes; n++ {
		status := int64(0)
		if rng.Float64() < availFrac {
			status = 1
		}
		rows = append(rows, sqltypes.Row{sqltypes.NewInt(int64(n)), sqltypes.NewInt(status)})
	}
	return rows
}

// EdgeRows converts a graph to rows for the edges(src, dst, weight)
// table.
func EdgeRows(g *Graph) []sqltypes.Row {
	rows := make([]sqltypes.Row, len(g.Edges))
	for i, e := range g.Edges {
		rows[i] = sqltypes.Row{sqltypes.NewInt(e.Src), sqltypes.NewInt(e.Dst), sqltypes.NewFloat(e.Weight)}
	}
	return rows
}

// Preset describes a named dataset scaled down from one of the paper's
// graphs, preserving the node:edge ratio.
type Preset struct {
	Name     string
	Nodes    int
	OutDeg   int
	Mode     WeightMode
	PaperRef string
}

// Presets are the benchmark datasets. The "small" variants keep runs
// benchmark-friendly; "full" variants match the paper's scales.
var Presets = map[string]Preset{
	// DBLP: 317,080 nodes, 1,049,866 edges => ~3.3 edges/node.
	"dblp-small": {Name: "dblp-small", Nodes: 4000, OutDeg: 3, Mode: WeightOutDegree,
		PaperRef: "DBLP collaboration graph (317,080 n / 1,049,866 e), scaled 1:79"},
	// Pokec: 1,632,803 nodes, 30,622,564 edges => ~18.8 edges/node.
	"pokec-small": {Name: "pokec-small", Nodes: 4000, OutDeg: 19, Mode: WeightOutDegree,
		PaperRef: "Pokec social network (1,632,803 n / 30,622,564 e), scaled 1:408"},
	// Google web graph: ~875,713 nodes, 5,105,039 edges => ~5.8.
	"web-small": {Name: "web-small", Nodes: 4000, OutDeg: 6, Mode: WeightOutDegree,
		PaperRef: "Google web graph (875,713 n / 5,105,039 e), scaled 1:219"},
	"dblp-full":  {Name: "dblp-full", Nodes: 317080, OutDeg: 3, Mode: WeightOutDegree, PaperRef: "DBLP at paper scale"},
	"pokec-full": {Name: "pokec-full", Nodes: 1632803, OutDeg: 19, Mode: WeightOutDegree, PaperRef: "Pokec at paper scale"},
}

// Generate builds a preset dataset with a fixed seed so results are
// reproducible across runs.
func Generate(preset string) (*Graph, error) {
	p, ok := Presets[strings.ToLower(preset)]
	if !ok {
		names := make([]string, 0, len(Presets))
		for n := range Presets {
			names = append(names, n)
		}
		return nil, fmt.Errorf("unknown preset %q (have %v)", preset, names)
	}
	return PreferentialAttachment(p.Nodes, p.OutDeg, p.Mode, 42), nil
}
