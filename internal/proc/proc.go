// Package proc implements the stored-procedure baseline of Figure 11:
// the same iterative computations expressed as a procedural sequence
// of SQL statements executed one at a time through the engine's
// statement interface. Each statement pays parsing, planning, locking
// and WAL logging individually, and the optimizer sees none of the
// loop structure — the costs the paper attributes to procedural
// solutions.
package proc

import (
	"fmt"

	"dbspinner"
)

// Procedure is a stored procedure: setup DDL, initialization DML, a
// body executed Iterations times, a final SELECT, and teardown DDL.
type Procedure struct {
	Name       string
	Setup      []string
	Init       []string
	Body       []string
	Iterations int
	Final      string
	Teardown   []string
}

// Run executes the procedure against an engine and returns the final
// query's result. Teardown always runs, even on error.
func Run(e *dbspinner.Engine, p *Procedure) (res *dbspinner.Result, err error) {
	defer func() {
		for _, s := range p.Teardown {
			if _, terr := e.Exec(s); terr != nil && err == nil {
				err = fmt.Errorf("teardown: %w", terr)
			}
		}
	}()
	for _, s := range p.Setup {
		if _, err := e.Exec(s); err != nil {
			return nil, fmt.Errorf("setup: %w", err)
		}
	}
	for _, s := range p.Init {
		if _, err := e.Exec(s); err != nil {
			return nil, fmt.Errorf("init: %w", err)
		}
	}
	for i := 0; i < p.Iterations; i++ {
		for _, s := range p.Body {
			if _, err := e.Exec(s); err != nil {
				return nil, fmt.Errorf("iteration %d: %w", i+1, err)
			}
		}
	}
	r, err := e.Query(p.Final)
	if err != nil {
		return nil, fmt.Errorf("final query: %w", err)
	}
	return r, nil
}

// PageRank builds the PR stored procedure (Figure 1). withVS adds the
// vertexStatus join of the PR-VS variant.
func PageRank(iterations int, withVS bool) *Procedure {
	join := ""
	where := ""
	if withVS {
		join = `
    JOIN vertexStatus AS avail_pr ON avail_pr.node = IncomingEdges.dst`
		where = `
  WHERE avail_pr.status != 0`
	}
	return &Procedure{
		Name: "sp_pagerank",
		Setup: []string{
			"CREATE TABLE __pr (node int, rank float, delta float)",
			"CREATE TABLE __pr_inter (node int, rank float, delta float)",
		},
		Init: []string{
			`INSERT INTO __pr
			 SELECT src, 0, 0.15
			 FROM (SELECT src FROM edges UNION SELECT dst FROM edges)`,
		},
		Body: []string{
			"DELETE FROM __pr_inter",
			fmt.Sprintf(`INSERT INTO __pr_inter
  SELECT __pr.node, __pr.rank + __pr.delta,
    0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
  FROM __pr
    LEFT JOIN edges AS IncomingEdges ON __pr.node = IncomingEdges.dst
    LEFT JOIN __pr AS IncomingRank ON IncomingRank.node = IncomingEdges.src%s%s
  GROUP BY __pr.node, __pr.rank + __pr.delta`, join, where),
			`UPDATE __pr SET rank = __pr_inter.rank, delta = __pr_inter.delta
			 FROM __pr_inter WHERE __pr.node = __pr_inter.node`,
		},
		Iterations: iterations,
		Final:      "SELECT node, rank FROM __pr ORDER BY node",
		Teardown: []string{
			"DROP TABLE IF EXISTS __pr",
			"DROP TABLE IF EXISTS __pr_inter",
		},
	}
}

// SSSP builds the single-source shortest path procedure (the
// procedural form of Figure 7). withVS adds the availability join, as
// used in the Figure 11 comparison.
func SSSP(source, iterations int, withVS bool) *Procedure {
	join := ""
	availCond := ""
	if withVS {
		join = `
    JOIN vertexStatus AS avail ON avail.node = IncomingEdges.dst`
		availCond = ` AND avail.status != 0`
	}
	return &Procedure{
		Name: "sp_sssp",
		Setup: []string{
			"CREATE TABLE __sssp (node int, distance float, delta float)",
			"CREATE TABLE __sssp_inter (node int, distance float, delta float)",
		},
		Init: []string{
			fmt.Sprintf(`INSERT INTO __sssp
			 SELECT src, 9999999, CASE WHEN src = %d THEN 0 ELSE 9999999 END
			 FROM (SELECT src FROM edges UNION SELECT dst FROM edges)`, source),
		},
		Body: []string{
			"DELETE FROM __sssp_inter",
			fmt.Sprintf(`INSERT INTO __sssp_inter
  SELECT __sssp.node,
    LEAST(__sssp.distance, __sssp.delta),
    COALESCE(MIN(IncomingDistance.delta + IncomingEdges.weight), 9999999)
  FROM __sssp
   LEFT JOIN edges AS IncomingEdges ON __sssp.node = IncomingEdges.dst
   LEFT JOIN __sssp AS IncomingDistance ON IncomingDistance.node = IncomingEdges.src%s
  WHERE IncomingDistance.Delta != 9999999%s
  GROUP BY __sssp.node, LEAST(__sssp.distance, __sssp.delta)`, join, availCond),
			`UPDATE __sssp SET distance = __sssp_inter.distance, delta = __sssp_inter.delta
			 FROM __sssp_inter WHERE __sssp.node = __sssp_inter.node`,
		},
		Iterations: iterations,
		Final:      "SELECT node, distance FROM __sssp ORDER BY node",
		Teardown: []string{
			"DROP TABLE IF EXISTS __sssp",
			"DROP TABLE IF EXISTS __sssp_inter",
		},
	}
}

// Forecast builds the FF procedure (the procedural form of Figure 6).
// The MOD predicate stays in the final query: a stored procedure gives
// the optimizer no opportunity to push it into the initialization.
func Forecast(iterations, mod int) *Procedure {
	return &Procedure{
		Name: "sp_forecast",
		Setup: []string{
			"CREATE TABLE __ff (node int, friends float, friendsPrev float)",
			"CREATE TABLE __ff_inter (node int, friends float, friendsPrev float)",
		},
		Init: []string{
			`INSERT INTO __ff
			 SELECT src, count(dst),
			   ceiling(count(dst) * (1.0-(src%10)/100.0))
			 FROM edges GROUP BY src`,
		},
		Body: []string{
			"DELETE FROM __ff_inter",
			`INSERT INTO __ff_inter
			 SELECT node, round(cast((friends / friendsPrev) * friends AS numeric), 5), friends
			 FROM __ff`,
			`UPDATE __ff SET friends = __ff_inter.friends, friendsPrev = __ff_inter.friendsPrev
			 FROM __ff_inter WHERE __ff.node = __ff_inter.node`,
		},
		Iterations: iterations,
		Final:      fmt.Sprintf("SELECT node, friends FROM __ff WHERE MOD(node, %d) = 0 ORDER BY node", mod),
		Teardown: []string{
			"DROP TABLE IF EXISTS __ff",
			"DROP TABLE IF EXISTS __ff_inter",
		},
	}
}
