package proc

import (
	"testing"

	"dbspinner"
	"dbspinner/internal/workload"
)

func newEngine(t *testing.T) *dbspinner.Engine {
	t.Helper()
	e := dbspinner.New(dbspinner.Config{Partitions: 2})
	if _, err := e.Exec("CREATE TABLE edges (src int, dst int, weight float)"); err != nil {
		t.Fatal(err)
	}
	g := workload.PreferentialAttachment(120, 3, workload.WeightOutDegree, 5)
	if err := e.BulkInsert("edges", workload.EdgeRows(g)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("CREATE TABLE vertexStatus (node int PRIMARY KEY, status int)"); err != nil {
		t.Fatal(err)
	}
	if err := e.BulkInsert("vertexStatus", workload.VertexStatus(g, 0.8, 99)); err != nil {
		t.Fatal(err)
	}
	return e
}

// sameResults compares two results cell by cell with a relative
// tolerance: different plan shapes (merge joins vs UPDATE ... FROM,
// common-block extraction) sum floats in different orders, so
// last-ULP differences are expected and fine.
func sameResults(t *testing.T, label string, a, b *dbspinner.Result) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: %d rows vs %d", label, len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if len(ra) != len(rb) {
			t.Fatalf("%s row %d: arity %d vs %d", label, i, len(ra), len(rb))
		}
		for j := range ra {
			va, vb := ra[j], rb[j]
			if va.IsNull() != vb.IsNull() {
				t.Errorf("%s row %d col %d: %v vs %v", label, i, j, va, vb)
				continue
			}
			if va.IsNull() {
				continue
			}
			fa, fb := va.Float(), vb.Float()
			if va.T == dbspinner.NewString("").T { // string column
				if va.Str() != vb.Str() {
					t.Errorf("%s row %d col %d: %q vs %q", label, i, j, va.Str(), vb.Str())
				}
				continue
			}
			if diff := fa - fb; diff > 1e-9*(1+abs(fa)) || -diff > 1e-9*(1+abs(fa)) {
				t.Errorf("%s row %d col %d: %v vs %v", label, i, j, va, vb)
			}
		}
	}
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func TestPageRankProcedureMatchesCTE(t *testing.T) {
	e := newEngine(t)
	procRes, err := Run(e, PageRank(4, false))
	if err != nil {
		t.Fatal(err)
	}
	cteRes, err := e.Query(`WITH ITERATIVE PageRank (Node, Rank, Delta)
AS ( SELECT src, 0, 0.15
     FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT PageRank.node, PageRank.rank + PageRank.delta,
    0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
  FROM PageRank
    LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
    LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
  GROUP BY PageRank.node, PageRank.rank + PageRank.delta
 UNTIL 4 ITERATIONS )
SELECT Node, Rank FROM PageRank ORDER BY Node`)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "PR", procRes, cteRes)
}

func TestPageRankVSProcedureMatchesCTE(t *testing.T) {
	e := newEngine(t)
	procRes, err := Run(e, PageRank(3, true))
	if err != nil {
		t.Fatal(err)
	}
	cteRes, err := e.Query(`WITH ITERATIVE PageRank (Node, Rank, Delta)
AS ( SELECT src, 0, 0.15
     FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT PageRank.node, PageRank.rank + PageRank.delta,
    0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
  FROM PageRank
    LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
    LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
    JOIN vertexStatus AS avail_pr ON avail_pr.node = IncomingEdges.dst
  WHERE avail_pr.status != 0
  GROUP BY PageRank.node, PageRank.rank + PageRank.delta
 UNTIL 3 ITERATIONS )
SELECT Node, Rank FROM PageRank ORDER BY Node`)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "PR-VS", procRes, cteRes)
}

func TestSSSPProcedureMatchesCTE(t *testing.T) {
	e := newEngine(t)
	procRes, err := Run(e, SSSP(1, 6, false))
	if err != nil {
		t.Fatal(err)
	}
	cteRes, err := e.Query(`WITH ITERATIVE sssp (Node, Distance, Delta)
AS (SELECT src, 9999999, CASE WHEN src = 1 THEN 0 ELSE 9999999 END
 FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT sssp.node,
    LEAST(sssp.distance, sssp.delta),
    COALESCE(MIN(IncomingDistance.delta + IncomingEdges.weight), 9999999)
  FROM sssp
   LEFT JOIN edges AS IncomingEdges ON sssp.node = IncomingEdges.dst
   LEFT JOIN sssp AS IncomingDistance ON IncomingDistance.node = IncomingEdges.src
  WHERE IncomingDistance.Delta != 9999999
  GROUP BY sssp.node, LEAST(sssp.distance, sssp.delta)
 UNTIL 6 ITERATIONS)
SELECT Node, Distance FROM sssp ORDER BY Node`)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "SSSP", procRes, cteRes)
}

func TestForecastProcedureMatchesCTE(t *testing.T) {
	e := newEngine(t)
	procRes, err := Run(e, Forecast(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	cteRes, err := e.Query(`WITH ITERATIVE forecast (node, friends, friendsPrev)
AS( SELECT src AS node, count(dst) AS friends,
      ceiling(count(dst) * (1.0-(src%10)/100.0)) AS friendsPrev
    FROM edges GROUP BY src
 ITERATE
   SELECT node AS node,
      round(cast((friends / friendsPrev) * friends AS numeric), 5) AS friends,
      friends AS friendsPrev
   FROM forecast
 UNTIL 4 ITERATIONS )
SELECT node, friends FROM forecast WHERE MOD(node, 2) = 0 ORDER BY node`)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "FF", procRes, cteRes)
}

func TestTeardownAlwaysRuns(t *testing.T) {
	e := newEngine(t)
	p := PageRank(1, false)
	p.Body = append(p.Body, "SELECT broken FROM nowhere")
	if _, err := Run(e, p); err == nil {
		t.Fatal("broken body should fail")
	}
	// The temp tables must be gone so a retry succeeds.
	if _, err := Run(e, PageRank(1, false)); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
}

func TestProcedureStatementOverheadVisible(t *testing.T) {
	e := newEngine(t)
	e.ResetStats()
	if _, err := Run(e, Forecast(5, 2)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	// 2 setup + 1 init + 3*5 body + 2 teardown = 20 statements.
	if st.Statements != 20 {
		t.Errorf("statements = %d, want 20", st.Statements)
	}
	if st.WALRecords == 0 || st.LocksAcquired == 0 {
		t.Errorf("procedural path should pay WAL/lock overhead: %+v", st)
	}
	// The CTE path pays none of it.
	e.ResetStats()
	if _, err := e.Query(`WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL 5 ITERATIONS) SELECT i FROM c`); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.WALRecords != 0 || st.LocksAcquired != 0 || st.Statements != 0 {
		t.Errorf("single-plan path should pay no DML overhead: %+v", st)
	}
}
