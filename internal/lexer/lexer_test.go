package lexer

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func mustTokenize(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	if toks[len(toks)-1].Kind != EOF {
		t.Fatalf("missing EOF token")
	}
	return toks[:len(toks)-1]
}

func TestBasicTokens(t *testing.T) {
	toks := mustTokenize(t, "SELECT src, dst FROM edges WHERE weight >= 1.5")
	want := []string{"SELECT", "src", ",", "dst", "FROM", "edges", "WHERE", "weight", ">=", "1.5"}
	got := texts(toks)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("texts = %v, want %v", got, want)
	}
	if toks[0].Kind != Keyword || toks[1].Kind != Ident || toks[9].Kind != FloatLit {
		t.Errorf("kinds = %v", kinds(toks))
	}
}

func TestIterativeKeywords(t *testing.T) {
	toks := mustTokenize(t, "WITH ITERATIVE r AS (SELECT 1 ITERATE SELECT 2 UNTIL 10 ITERATIONS)")
	for _, tok := range toks {
		if tok.Text == "ITERATIVE" || tok.Text == "ITERATE" || tok.Text == "UNTIL" || tok.Text == "ITERATIONS" {
			if tok.Kind != Keyword {
				t.Errorf("%s should be a keyword", tok.Text)
			}
		}
	}
}

func TestKeywordCaseInsensitive(t *testing.T) {
	toks := mustTokenize(t, "select Select SELECT")
	for _, tok := range toks {
		if tok.Kind != Keyword || tok.Text != "SELECT" {
			t.Errorf("got %v %q, want keyword SELECT", tok.Kind, tok.Text)
		}
	}
	if !IsKeyword("iterate") || IsKeyword("edges") {
		t.Error("IsKeyword misclassifies")
	}
}

func TestNumbers(t *testing.T) {
	cases := map[string]Kind{
		"42":      IntLit,
		"0":       IntLit,
		"3.14":    FloatLit,
		".5":      FloatLit,
		"2.":      FloatLit,
		"1e3":     FloatLit,
		"1.5e-2":  FloatLit,
		"9999999": IntLit,
	}
	for src, want := range cases {
		toks := mustTokenize(t, src)
		if len(toks) != 1 || toks[0].Kind != want {
			t.Errorf("Tokenize(%q) = %v (%v), want single %v", src, texts(toks), kinds(toks), want)
		}
	}
	if _, err := Tokenize("12abc"); err == nil {
		t.Error("12abc should be a malformed number")
	}
}

func TestStrings(t *testing.T) {
	toks := mustTokenize(t, "'hello'")
	if toks[0].Kind != StringLit || toks[0].Text != "hello" {
		t.Errorf("got %v %q", toks[0].Kind, toks[0].Text)
	}
	toks = mustTokenize(t, "'it''s'")
	if toks[0].Text != "it's" {
		t.Errorf("escaped quote: got %q", toks[0].Text)
	}
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestQuotedIdent(t *testing.T) {
	toks := mustTokenize(t, `"Group" "select"`)
	if toks[0].Kind != Ident || toks[0].Text != "Group" {
		t.Errorf("quoted ident: %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != Ident || toks[1].Text != "select" {
		t.Errorf("quoted keyword should be ident: %v %q", toks[1].Kind, toks[1].Text)
	}
	if _, err := Tokenize(`"unterminated`); err == nil {
		t.Error("unterminated quoted ident should fail")
	}
}

func TestOperators(t *testing.T) {
	toks := mustTokenize(t, "a != b <> c <= d >= e || f = g < h > i")
	var ops []string
	for _, tok := range toks {
		if tok.Kind == Op {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"!=", "!=", "<=", ">=", "||", "=", "<", ">"}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Errorf("ops = %v, want %v (<> should normalize to !=)", ops, want)
	}
}

func TestComments(t *testing.T) {
	toks := mustTokenize(t, `
		-- line comment
		SELECT /* block
		comment */ 1 -- trailing`)
	got := texts(toks)
	if len(got) != 2 || got[0] != "SELECT" || got[1] != "1" {
		t.Errorf("comments not skipped: %v", got)
	}
	// Unterminated block comment consumes to EOF without error.
	toks = mustTokenize(t, "SELECT /* never ends")
	if len(toks) != 1 {
		t.Errorf("unterminated block comment: %v", texts(toks))
	}
}

func TestDotAndQualified(t *testing.T) {
	toks := mustTokenize(t, "PageRank.node")
	got := texts(toks)
	if len(got) != 3 || got[1] != "." {
		t.Errorf("qualified name: %v", got)
	}
}

func TestUnexpectedChar(t *testing.T) {
	if _, err := Tokenize("SELECT @"); err == nil {
		t.Error("@ should be rejected")
	}
}

func TestPaperQueriesTokenize(t *testing.T) {
	// The full PR query from Figure 2 must tokenize cleanly.
	pr := `WITH ITERATIVE PageRank (Node, Rank, Delta)
	AS ( SELECT src, 0, 0.15
	      FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
	  ITERATE
	   SELECT PageRank.node, PageRank.rank + PageRank.delta,
	      0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
	   FROM PageRank
	     LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
	     LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
	   GROUP BY PageRank.node, PageRank.rank + PageRank.delta
	  UNTIL 10 ITERATIONS )
	SELECT Node, Rank FROM PageRank;`
	toks := mustTokenize(t, pr)
	if len(toks) < 50 {
		t.Errorf("PR query produced too few tokens: %d", len(toks))
	}
}

func TestPositions(t *testing.T) {
	toks := mustTokenize(t, "SELECT  x")
	if toks[0].Pos != 0 || toks[1].Pos != 8 {
		t.Errorf("positions = %d, %d", toks[0].Pos, toks[1].Pos)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		EOF: "EOF", Ident: "identifier", Keyword: "keyword", IntLit: "integer",
		FloatLit: "float", StringLit: "string", Op: "operator", Param: "parameter",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind")
	}
}
