// Package lexer tokenizes SQL text for the DBSpinner parser, covering
// the grammar of the paper's queries: identifiers, keywords, numeric and
// string literals, operators and punctuation, plus line (--) and block
// comments.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
)

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Keyword
	IntLit
	FloatLit
	StringLit
	Op    // + - * / % = != <> < <= > >= || . , ( ) ;
	Param // $1 style placeholders (reserved for future use)
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "identifier"
	case Keyword:
		return "keyword"
	case IntLit:
		return "integer"
	case FloatLit:
		return "float"
	case StringLit:
		return "string"
	case Op:
		return "operator"
	case Param:
		return "parameter"
	}
	return "unknown"
}

// Token is a single lexical unit. For keywords, Text is the uppercase
// spelling; for identifiers it preserves the original case.
type Token struct {
	Kind Kind
	Text string
	Pos  int // byte offset in the input, for error messages
}

// keywords is the reserved-word set. Iterative-CTE additions: ITERATIVE,
// ITERATE, UNTIL, ITERATIONS, UPDATES, DELTA.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"AS": true, "ON": true, "AND": true, "OR": true, "NOT": true,
	"JOIN": true, "LEFT": true, "RIGHT": true, "INNER": true, "OUTER": true,
	"FULL": true, "CROSS": true, "UNION": true, "ALL": true, "DISTINCT": true,
	"WITH": true, "RECURSIVE": true, "ITERATIVE": true, "ITERATE": true,
	"UNTIL": true, "ITERATIONS": true, "ITERATION": true, "UPDATES": true,
	"DELTA": true, "ANY": true,
	"CREATE": true, "TABLE": true, "DROP": true, "INSERT": true,
	"INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "TRUNCATE": true, "PRIMARY": true, "KEY": true,
	"IF": true, "EXISTS": true, "TEMP": true, "TEMPORARY": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"NULL": true, "TRUE": true, "FALSE": true, "IS": true, "IN": true,
	"BETWEEN": true, "LIKE": true, "CAST": true, "ASC": true, "DESC": true,
	"EXPLAIN": true, "USING": true,
}

// IsKeyword reports whether the uppercase word is reserved.
func IsKeyword(word string) bool { return keywords[strings.ToUpper(word)] }

// Lexer scans SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// New returns a Lexer over src.
func New(src string) *Lexer { return &Lexer{src: src} }

// Tokenize scans the entire input and returns the token stream
// terminated by an EOF token.
func Tokenize(src string) ([]Token, error) {
	l := New(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		return l.scanWord(start), nil
	case c >= '0' && c <= '9':
		return l.scanNumber(start)
	case c == '.':
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			return l.scanNumber(start)
		}
		l.pos++
		return Token{Kind: Op, Text: ".", Pos: start}, nil
	case c == '\'':
		return l.scanString(start)
	case c == '"':
		return l.scanQuotedIdent(start)
	}
	// Operators, longest match first.
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", "<>", "<=", ">=", "||":
		l.pos += 2
		text := two
		if text == "<>" {
			text = "!=" // normalize
		}
		return Token{Kind: Op, Text: text, Pos: start}, nil
	}
	switch c {
	case '+', '-', '*', '/', '%', '=', '<', '>', ',', '(', ')', ';':
		l.pos++
		return Token{Kind: Op, Text: string(c), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("unexpected character %q at offset %d", c, start)
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func (l *Lexer) scanWord(start int) Token {
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		return Token{Kind: Keyword, Text: upper, Pos: start}
	}
	return Token{Kind: Ident, Text: word, Pos: start}
}

func (l *Lexer) scanNumber(start int) (Token, error) {
	kind := IntLit
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		kind = FloatLit
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		mark := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			kind = FloatLit
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			l.pos = mark // not an exponent; back off
		}
	}
	if l.pos < len(l.src) && isIdentStart(l.src[l.pos]) && l.src[l.pos] != 'e' && l.src[l.pos] != 'E' {
		return Token{}, fmt.Errorf("malformed number at offset %d", start)
	}
	return Token{Kind: kind, Text: l.src[start:l.pos], Pos: start}, nil
}

func (l *Lexer) scanString(start int) (Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: StringLit, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("unterminated string literal at offset %d", start)
}

func (l *Lexer) scanQuotedIdent(start int) (Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			return Token{Kind: Ident, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("unterminated quoted identifier at offset %d", start)
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || isDigit(c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
