package converge

import (
	"fmt"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/sqltypes"
)

// This file holds the Delta-termination rules, the interesting part of
// the lattice: UNTIL DELTA < n fires exactly when an iteration changes
// fewer than n rows, so proving termination means proving the loop
// reaches a state where the body re-derives what the CTE already
// holds. Four rules are tried strongest-first; each failure leaves a
// diagnostic so an Unknown verdict explains itself.
//
//	invariant-body       the body never reads the CTE: its output is a
//	                     constant relation, so the second pass changes
//	                     zero rows. Terminates(2).
//	identity-map         the body re-selects the CTE's own columns
//	                     unchanged: the first pass compares equal to
//	                     the snapshot. Terminates(1).
//	inflationary-finite-keys   merge path whose output key is a bare
//	                     base-table column and whose only CTE
//	                     dependence is the key column: the key set
//	                     grows monotonically inside a finite domain,
//	                     and once it stabilizes the body is constant.
//	                     Terminates(|key domain| + 2).
//	stationary-merge /   merge path whose output key is the CTE's own
//	monotone-merge       key (frontier never expands). With no value
//	                     feedback the body is constant after one pass:
//	                     Terminates(2). With feedback, every non-key
//	                     column must be carried verbatim or move one
//	                     direction via LEAST/GREATEST/MIN/MAX over a
//	                     finite candidate lattice: Converges.
type deltaAnalysis struct {
	cte    *ast.CTE
	cols   []string
	lookup Lookup
	v      *Verdict

	core    *ast.SelectCore
	members []member
	aliases map[string]int
	eqs     [][2]*ast.ColumnRef
}

// member is one FROM-chain entry: the analyzed CTE itself or a base
// table with a known schema (schema nil when the lookup cannot see
// it).
type member struct {
	alias  string
	name   string
	isCTE  bool
	schema sqltypes.Schema
}

func analyzeDelta(cte *ast.CTE, lookup Lookup, v *Verdict) {
	if cte.Until.N <= 0 {
		v.Diags = append(v.Diags, fmt.Sprintf(
			"UNTIL DELTA < %d can never be satisfied: the changed-row count is always >= 0", cte.Until.N))
		return
	}
	cols := cteColumns(cte)
	if len(cols) == 0 || cols[0] == "" {
		v.Diags = append(v.Diags, "cannot determine the CTE's declared columns (no column list and the "+
			"non-iterative part's output names are not plain references)")
		return
	}

	refs := ast.CountStmtTableRefs(cte.Iter, cte.Name)
	if refs == 0 {
		v.Kind = Terminates
		v.Bound = 2
		v.Evidence = append(v.Evidence, Evidence{
			Rule: "invariant-body",
			Detail: fmt.Sprintf("the iterative part never reads %s, so its output is the same relation every "+
				"iteration; the second pass changes zero rows and DELTA < %d fires", cte.Name, cte.Until.N),
		})
		return
	}

	d := &deltaAnalysis{cte: cte, cols: cols, lookup: lookup, v: v}
	if !d.prepare(refs) {
		v.Diags = append(v.Diags, bodyDiagnostics(cte)...)
		return
	}
	if d.identityMap() {
		return
	}
	if d.core.Where == nil {
		// Rename/copy-back path: the whole CTE is replaced each
		// iteration, so any CTE feedback beyond the identity map can
		// oscillate (the FF query recomputes every value from its own
		// previous values).
		v.Diags = append(v.Diags, fmt.Sprintf(
			"the iterative part has no WHERE clause (full-update path) and feeds %s back into itself; "+
				"nothing constrains the recomputed values toward a fixpoint", cte.Name))
		v.Diags = append(v.Diags, bodyDiagnostics(cte)...)
		return
	}
	if d.mergeRules() {
		return
	}
	v.Diags = append(v.Diags, bodyDiagnostics(cte)...)
}

// prepare performs the shape checks shared by every chain rule and
// fills in the member table and equality conjuncts. A false return
// has already appended the blocking diagnostic.
func (d *deltaAnalysis) prepare(cteRefs int) bool {
	iter, v := d.cte.Iter, d.v
	if iter.OrderBy != nil || iter.Limit != nil || iter.Offset != nil {
		v.Diags = append(v.Diags, "ORDER BY/LIMIT/OFFSET on the iterative part make the produced row set "+
			"depend on more than the data; no chain rule applies")
		return false
	}
	core, ok := iter.Body.(*ast.SelectCore)
	if !ok {
		v.Diags = append(v.Diags, "the iterative part is a set operation; row provenance across UNION arms "+
			"is not tracked")
		return false
	}
	if core.From == nil {
		v.Diags = append(v.Diags, "the iterative part has no FROM clause")
		return false
	}
	chain, ok := flattenChain(core.From)
	if !ok {
		v.Diags = append(v.Diags, "the FROM clause is not a left-deep join chain")
		return false
	}
	d.core = core
	d.aliases = make(map[string]int, len(chain))
	seenCTE := 0
	for i, it := range chain {
		if i > 0 && it.typ != ast.InnerJoin && it.typ != ast.LeftJoin {
			v.Diags = append(v.Diags, fmt.Sprintf("%s can null-extend or emit rows for the left side; only "+
				"inner and left joins keep row provenance", it.typ))
			return false
		}
		bt, isBase := it.ref.(*ast.BaseTable)
		if !isBase {
			v.Diags = append(v.Diags, "a derived table in FROM hides which rows reach the output")
			return false
		}
		m := member{alias: it.alias, name: bt.Name}
		if strings.EqualFold(bt.Name, d.cte.Name) {
			m.isCTE = true
			seenCTE++
		} else if d.lookup != nil {
			if s, found := d.lookup.TableSchema(bt.Name); found {
				m.schema = s
			}
		}
		if _, dup := d.aliases[m.alias]; dup || m.alias == "" {
			v.Diags = append(v.Diags, fmt.Sprintf("duplicate or empty FROM alias %q; column ownership is "+
				"ambiguous", m.alias))
			return false
		}
		d.aliases[m.alias] = i
		d.members = append(d.members, m)
	}
	if seenCTE != cteRefs {
		v.Diags = append(v.Diags, fmt.Sprintf("references to %s are hidden inside derived tables or set "+
			"operations", d.cte.Name))
		return false
	}
	for _, it := range chain {
		d.addEqualities(it.on)
	}
	d.addEqualities(core.Where)
	return true
}

// addEqualities collects top-level column=column conjuncts.
func (d *deltaAnalysis) addEqualities(e ast.Expr) {
	for _, conj := range ast.SplitConjuncts(e) {
		bin, ok := conj.(*ast.BinaryExpr)
		if !ok || bin.Op != "=" {
			continue
		}
		l, lok := bin.L.(*ast.ColumnRef)
		r, rok := bin.R.(*ast.ColumnRef)
		if lok && rok {
			d.eqs = append(d.eqs, [2]*ast.ColumnRef{l, r})
		}
	}
}

// resolve maps a column reference to the owning chain member, -1 when
// ambiguous or unknown. The CTE member's columns are d.cols;
// unqualified references must have exactly one possible owner.
func (d *deltaAnalysis) resolve(ref *ast.ColumnRef) int {
	if ref.Table != "" {
		i, found := d.aliases[strings.ToLower(ref.Table)]
		if !found {
			return -1
		}
		return i
	}
	owner := -1
	for i, m := range d.members {
		var has bool
		if m.isCTE {
			has = columnIndex(d.cols, ref.Name) >= 0
		} else {
			if m.schema == nil {
				return -1 // unknown schema: cannot prove uniqueness
			}
			has = m.schema.ColumnIndex(ref.Name) >= 0
		}
		if has {
			if owner >= 0 {
				return -1
			}
			owner = i
		}
	}
	return owner
}

func columnIndex(cols []string, name string) int {
	for i, c := range cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// identityMap proves the body re-selects the CTE verbatim: one chain
// member (the CTE itself), no WHERE/GROUP BY/HAVING/DISTINCT, and item
// i is the bare i-th declared column. The first pass then reproduces
// the snapshot exactly. Terminates(1).
func (d *deltaAnalysis) identityMap() bool {
	c := d.core
	if len(d.members) != 1 || !d.members[0].isCTE ||
		c.Where != nil || len(c.GroupBy) > 0 || c.Having != nil || c.Distinct {
		return false
	}
	if len(c.Items) != len(d.cols) {
		return false
	}
	for i, it := range c.Items {
		ref, ok := it.Expr.(*ast.ColumnRef)
		if !ok || !strings.EqualFold(ref.Name, d.cols[i]) || d.resolve(ref) != 0 {
			return false
		}
	}
	d.v.Kind = Terminates
	d.v.Bound = 1
	d.v.Evidence = append(d.v.Evidence, Evidence{
		Rule: "identity-map",
		Detail: fmt.Sprintf("the iterative part re-selects %s's own rows unchanged (%s), so the first pass "+
			"already compares equal to the snapshot", d.cte.Name, cite(c.Items[0].Expr)),
	})
	return true
}

// mergeRules tries the merge-path rules. The output key (item 0)
// decides the case: a bare base-table column means the frontier
// expands inside that column's finite domain; the CTE's own key means
// the frontier is stable and the value columns decide.
func (d *deltaAnalysis) mergeRules() bool {
	v := d.v
	refs, star := ast.StmtColumnRefs(d.cte.Iter)
	if star {
		v.Diags = append(v.Diags, "the iterative part selects *; the analysis cannot attribute every output "+
			"column")
		return false
	}
	keyExpr := d.core.Items[0].Expr
	keyRef, ok := keyExpr.(*ast.ColumnRef)
	if !ok {
		v.Diags = append(v.Diags, fmt.Sprintf("frontier-expanding merge with computed key expression %s: the "+
			"key source is unbounded, new keys can be generated forever", cite(keyExpr)))
		return false
	}
	owner := d.resolve(keyRef)
	if owner < 0 {
		v.Diags = append(v.Diags, fmt.Sprintf("cannot attribute the key output %s to a single FROM member",
			cite(keyRef)))
		return false
	}
	if d.members[owner].isCTE {
		if !strings.EqualFold(keyRef.Name, d.cols[0]) {
			v.Diags = append(v.Diags, fmt.Sprintf("the key output %s is a non-key column of %s; merged keys "+
				"are not row identities", cite(keyRef), d.cte.Name))
			return false
		}
		if owner != 0 {
			v.Diags = append(v.Diags, fmt.Sprintf("the iterative reference %s is not at the head of the join "+
				"chain; a left join can null-extend its key", d.members[owner].alias))
			return false
		}
		return d.stableFrontier(owner, refs)
	}
	return d.finiteKeyDomain(owner, keyRef, refs)
}

// finiteKeyDomain is the inflationary rule: output keys are drawn from
// a base-table column, and the only CTE columns the body reads are key
// columns. The merged key set then grows monotonically inside the
// finite domain (the merge never deletes), and once it stabilizes the
// body — a deterministic function of base tables and the key set —
// re-derives identical rows, so the following pass changes zero rows.
func (d *deltaAnalysis) finiteKeyDomain(owner int, keyRef *ast.ColumnRef, refs []*ast.ColumnRef) bool {
	v := d.v
	for _, ref := range refs {
		i := d.resolve(ref)
		if i < 0 {
			v.Diags = append(v.Diags, fmt.Sprintf("cannot attribute %s to a single FROM member", cite(ref)))
			return false
		}
		if d.members[i].isCTE && !strings.EqualFold(ref.Name, d.cols[0]) {
			v.Diags = append(v.Diags, fmt.Sprintf("value column %s feeds a frontier-expanding body; recomputed "+
				"values can keep changing while new keys appear", cite(ref)))
			return false
		}
	}
	v.Kind = Terminates
	domain := fmt.Sprintf("%s.%s", d.members[owner].name, keyRef.Name)
	detail := fmt.Sprintf("output keys are drawn from %s, a finite domain", cite(keyRef))
	if card, ok := tableRowCount(d.lookup, d.members[owner].name); ok {
		v.Bound = int64(card) + 2
		v.BoundRef = fmt.Sprintf("|distinct %s| + 2, %d rows at plan time", domain, card)
	} else {
		v.BoundRef = fmt.Sprintf("|distinct %s| + 2", domain)
	}
	v.Evidence = append(v.Evidence,
		Evidence{Rule: "finite-key-domain", Detail: detail},
		Evidence{
			Rule: "key-stability",
			Detail: fmt.Sprintf("the merge only appends or replaces rows, so %s's key set grows monotonically "+
				"inside that domain; the body reads no CTE column except the key %s, so once the key set "+
				"stabilizes the body re-derives identical rows and the next pass changes zero rows",
				d.cte.Name, d.cols[0]),
		})
	return true
}

// tableRowCount asks the lookup for a base table's current row count.
func tableRowCount(l Lookup, table string) (int, bool) {
	c, ok := l.(CardinalityLookup)
	if !ok {
		return 0, false
	}
	return c.TableRowCount(table)
}

// stableFrontier handles merges whose output key is the CTE's own key:
// the merged key set never grows, so termination rests on the value
// columns. Carried-only bodies are stationary after one pass; bodies
// with monotone lattice feedback converge.
func (d *deltaAnalysis) stableFrontier(outer int, refs []*ast.ColumnRef) bool {
	v := d.v
	feedback := false
	for _, ref := range refs {
		if i := d.resolve(ref); i >= 0 && d.members[i].isCTE && !strings.EqualFold(ref.Name, d.cols[0]) {
			feedback = true
			break
		}
	}
	frontier := Evidence{
		Rule: "stable-frontier",
		Detail: fmt.Sprintf("the output key %s is %s's own key at the head of the join chain, so the merge "+
			"never appends new keys (the delta-iteration frontier argument)", cite(d.core.Items[0].Expr), d.cte.Name),
	}
	if !feedback {
		v.Kind = Terminates
		v.Bound = 2
		v.Evidence = append(v.Evidence, frontier, Evidence{
			Rule: "stationary-merge",
			Detail: "no CTE value column feeds the body, so its output depends only on base tables and the " +
				"stable key set; the second pass re-derives the rows the first pass merged and changes zero rows",
		})
		return true
	}
	// Value feedback: every non-key output must be carried verbatim or
	// move one direction through a finite lattice.
	for j := 1; j < len(d.core.Items); j++ {
		it := d.core.Items[j]
		if j < len(d.cols) && d.carried(it.Expr, outer, j) {
			continue
		}
		dir, ok := d.monotone(it.Expr, outer, j)
		if !ok {
			return false // monotone appended the diagnostic
		}
		v.Evidence = append(v.Evidence, Evidence{
			Rule: "monotone-merge",
			Detail: fmt.Sprintf("column %d (%s) only moves %s: the new value is the %s of the old value and "+
				"candidates selected from base-table values, never computed past them",
				j+1, cite(it.Expr), dir.word(), dir.fn()),
		})
	}
	v.Kind = Converges
	v.Evidence = append(v.Evidence, frontier, Evidence{
		Rule: "finite-lattice",
		Detail: "every candidate is selected (LEAST/GREATEST/MIN/MAX/COALESCE) from base-table values and " +
			"constants, so each column's values live in a finite lattice; monotone movement through a finite " +
			"lattice changes each row finitely often, so some pass changes zero rows and DELTA fires",
	})
	return true
}

// carried reports whether the item is the bare j-th column of the
// outer CTE reference (old value passed through unchanged).
func (d *deltaAnalysis) carried(e ast.Expr, outer, j int) bool {
	ref, ok := e.(*ast.ColumnRef)
	return ok && strings.EqualFold(ref.Name, d.cols[j]) && d.resolve(ref) == outer
}

// direction is the monotone movement of a lattice merge.
type direction int

const (
	down direction = iota // LEAST/MIN: values only decrease
	up                    // GREATEST/MAX: values only increase
)

func (dir direction) word() string {
	if dir == up {
		return "upward"
	}
	return "downward"
}

func (dir direction) fn() string {
	if dir == up {
		return "GREATEST/MAX"
	}
	return "LEAST/MIN"
}

// monotone proves item j is a one-directional lattice merge: a
// top-level LEAST/MIN (or GREATEST/MAX) whose arguments include the
// column's own old value, with every other argument a candidate —
// selected from base-table columns, the key, or constants, through
// selection functions only (LEAST/GREATEST/MIN/MAX/COALESCE preserve
// the operand value set; arithmetic would generate new values and
// unbound the lattice). A false return appends the diagnostic.
func (d *deltaAnalysis) monotone(e ast.Expr, outer, j int) (direction, bool) {
	v := d.v
	call, ok := e.(*ast.FuncCall)
	if !ok || call.Star || call.Distinct {
		v.Diags = append(v.Diags, fmt.Sprintf("column %d (%s) recomputes a value that depends on %s without a "+
			"LEAST/GREATEST envelope; nothing forces it toward a fixpoint", j+1, cite(e), d.cte.Name))
		return down, false
	}
	var dir direction
	switch strings.ToUpper(call.Name) {
	case "LEAST", "MIN":
		dir = down
	case "GREATEST", "MAX":
		dir = up
	default:
		v.Diags = append(v.Diags, fmt.Sprintf("column %d (%s): %s over the iterative reference is not a "+
			"lattice selection; %s", j+1, cite(e), call.Name, sumAvgNote(call.Name)))
		return down, false
	}
	usesOld := false
	for _, arg := range call.Args {
		if d.carried(arg, outer, j) {
			usesOld = true
			continue
		}
		if !d.candidate(arg, j) {
			return down, false
		}
	}
	if !usesOld {
		v.Diags = append(v.Diags, fmt.Sprintf("column %d (%s) drops its own previous value from the %s; the "+
			"result can move both directions as the inputs change", j+1, cite(e), call.Name))
		return down, false
	}
	return dir, true
}

// sumAvgNote names the specific float-fixpoint hazard for SUM/AVG.
func sumAvgNote(name string) string {
	switch strings.ToUpper(name) {
	case "SUM", "AVG":
		return "a floating-point " + strings.ToUpper(name) + " fixpoint can oscillate below the whole-row " +
			"comparison precision and never satisfy DELTA"
	}
	return "the recomputed value can move both directions"
}

// candidate proves an expression draws only from the stable part of
// the state: base-table columns, the CTE key, literals, combined by
// selection functions (LEAST/GREATEST/MIN/MAX/COALESCE). A false
// return appends the diagnostic.
func (d *deltaAnalysis) candidate(e ast.Expr, j int) bool {
	v := d.v
	switch t := e.(type) {
	case *ast.Literal:
		return true
	case *ast.ColumnRef:
		i := d.resolve(t)
		if i < 0 {
			v.Diags = append(v.Diags, fmt.Sprintf("cannot attribute %s to a single FROM member", cite(t)))
			return false
		}
		if d.members[i].isCTE && !strings.EqualFold(t.Name, d.cols[0]) {
			v.Diags = append(v.Diags, fmt.Sprintf("column %d couples to the recursively-defined column %s; "+
				"its candidates change as that column changes and the lattice argument breaks", j+1, cite(t)))
			return false
		}
		return true
	case *ast.FuncCall:
		switch strings.ToUpper(t.Name) {
		case "LEAST", "GREATEST", "MIN", "MAX", "COALESCE":
			for _, arg := range t.Args {
				if !d.candidate(arg, j) {
					return false
				}
			}
			return !t.Star
		}
		v.Diags = append(v.Diags, fmt.Sprintf("candidate %s is not a selection from existing values; %s",
			cite(t), sumAvgNote(t.Name)))
		return false
	}
	v.Diags = append(v.Diags, fmt.Sprintf("candidate %s generates values outside a finite lattice (only "+
		"selections from base-table values and constants keep it finite)", cite(e)))
	return false
}

// ---------------------------------------------------------------------
// Chain flattening (mirrors the optimizer's view of a FROM clause; the
// analysis cannot import internal/core, so the walk is local)
// ---------------------------------------------------------------------

// chainItem is one member of a left-deep join chain with the join that
// attached it.
type chainItem struct {
	ref   ast.TableRef
	typ   ast.JoinType
	on    ast.Expr
	alias string
}

// flattenChain unrolls a left-deep join tree into its members; false
// when the tree is not left-deep (a join on the right side).
func flattenChain(t ast.TableRef) ([]chainItem, bool) {
	switch x := t.(type) {
	case *ast.JoinRef:
		if _, nested := x.Right.(*ast.JoinRef); nested {
			return nil, false
		}
		left, ok := flattenChain(x.Left)
		if !ok {
			return nil, false
		}
		return append(left, chainItem{ref: x.Right, typ: x.Type, on: x.On, alias: tableAlias(x.Right)}), true
	default:
		return []chainItem{{ref: t, typ: ast.InnerJoin, alias: tableAlias(t)}}, true
	}
}

// tableAlias is the lowercased effective alias of a FROM member.
func tableAlias(t ast.TableRef) string {
	switch x := t.(type) {
	case *ast.BaseTable:
		if x.Alias != "" {
			return strings.ToLower(x.Alias)
		}
		return strings.ToLower(x.Name)
	case *ast.SubqueryRef:
		return strings.ToLower(x.Alias)
	}
	return ""
}

// ---------------------------------------------------------------------
// Best-effort diagnostics for Unknown verdicts
// ---------------------------------------------------------------------

// bodyDiagnostics scans the iterative part for the classic
// non-convergence hazards, so Unknown verdicts (and the cap-exceeded
// error that carries them) explain what to look at. It never proves
// anything; it only annotates.
func bodyDiagnostics(cte *ast.CTE) []string {
	// Every alias the CTE appears under in the iterative part: a
	// qualified reference through any of them reads the iterative
	// reference. Unqualified references are not counted (attribution
	// needs the member table, and diagnostics must not claim more than
	// they know).
	aliases := map[string]bool{strings.ToLower(cte.Name): true}
	for _, bt := range ast.StmtBaseTables(cte.Iter) {
		if strings.EqualFold(bt.Name, cte.Name) && bt.Alias != "" {
			aliases[strings.ToLower(bt.Alias)] = true
		}
	}
	var out []string
	seen := map[string]bool{}
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	ast.WalkStmtExprs(cte.Iter, func(root ast.Expr) {
		ast.WalkExpr(root, func(e ast.Expr) bool {
			switch t := e.(type) {
			case *ast.FuncCall:
				name := strings.ToUpper(t.Name)
				if (name == "SUM" || name == "AVG") && refsAliased(t, aliases) {
					add(fmt.Sprintf("%s aggregates the iterative reference: a floating-point fixpoint can "+
						"oscillate below the whole-row comparison precision", cite(t)))
				}
			case *ast.BinaryExpr:
				switch t.Op {
				case "+", "-", "*", "/", "%":
					if refsAliased(t, aliases) {
						add(fmt.Sprintf("arithmetic %s over the iterative reference generates values outside "+
							"any finite lattice", cite(t)))
					}
					return false // the innermost arithmetic is noise
				}
			}
			return true
		})
	})
	return out
}

// refsAliased reports whether the expression contains a column
// reference qualified with any of the given (lowercased) aliases.
func refsAliased(e ast.Expr, aliases map[string]bool) bool {
	found := false
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if c, ok := x.(*ast.ColumnRef); ok && aliases[strings.ToLower(c.Table)] && c.Table != "" {
			found = true
			return false
		}
		return !found
	})
	return found
}
