// Package converge is the static termination and convergence analysis
// for iterative CTEs: an abstract interpretation over the original
// WITH ITERATIVE AST that classifies every loop before the rewrite
// compiles it. The lattice has three points, strongest first:
//
//	Terminates(bound) — the loop provably stops within a known number
//	    of iterations: UNTIL n ITERATIONS / UPDATES metadata
//	    conditions, iteration-invariant or identity bodies under
//	    Delta termination, stationary merges, and inflationary merges
//	    whose key output ranges over a finite base-table domain.
//	Converges — the loop provably reaches a fixpoint (so UNTIL DELTA
//	    fires) but the iteration count is data-dependent: monotone
//	    LEAST/GREATEST-style merges that move each value one
//	    direction through a finite lattice.
//	Unknown(diagnostics) — nothing could be proved; the diagnostics
//	    say what blocked each rule (float SUM fixpoints that can
//	    oscillate below the comparison precision, frontier-expanding
//	    merges with computed key sources, Data conditions no fixpoint
//	    forces, non-monotone feedback through the iterative
//	    reference). The rewrite injects an iteration-cap guard into
//	    Unknown loops so they fail with a structured error instead of
//	    spinning forever.
//
// The analysis is deliberately deterministic in its inputs (the CTE
// AST and the base-table lookup): internal/core runs it during the
// rewrite to record verdicts and install guards, and internal/verify
// re-runs it on the same inputs to fail-close on any recorded claim
// the analysis cannot reprove.
package converge

import (
	"fmt"

	"dbspinner/internal/ast"
	"dbspinner/internal/sqltypes"
)

// Kind is a point of the verdict lattice. Higher is stronger.
type Kind int

// Verdict kinds, weakest first so Kind comparisons order the lattice.
const (
	Unknown Kind = iota
	Converges
	Terminates
)

func (k Kind) String() string {
	switch k {
	case Terminates:
		return "Terminates"
	case Converges:
		return "Converges"
	}
	return "Unknown"
}

// Evidence is one link of the proof chain behind a verdict: the rule
// that fired and a human-readable justification citing the source
// expressions it inspected (with byte offsets when the parser recorded
// them).
type Evidence struct {
	Rule   string
	Detail string
}

// Verdict is the analysis result for one iterative CTE.
type Verdict struct {
	CTE  string
	Kind Kind
	// Bound is a numeric upper bound on loop iterations when one is
	// known (Terminates only); 0 means no numeric bound.
	Bound int64
	// BoundRef describes a symbolic bound ("|distinct edges.dst| + 2")
	// when the numeric value was unavailable at plan time.
	BoundRef string
	// Evidence is the proof chain for Terminates/Converges verdicts.
	Evidence []Evidence
	// Diags explains, for Unknown verdicts, what blocked each rule.
	// The injected iteration-cap guard carries them into its error.
	Diags []string
}

// BoundString renders the bound for EXPLAIN.
func (v Verdict) BoundString() string {
	switch {
	case v.Bound > 0 && v.BoundRef != "":
		return fmt.Sprintf("<= %d iterations (%s)", v.Bound, v.BoundRef)
	case v.Bound > 0:
		return fmt.Sprintf("<= %d iterations", v.Bound)
	case v.BoundRef != "":
		return "<= " + v.BoundRef
	}
	return ""
}

// Lookup resolves base-table schemas. plan.TableLookup satisfies it;
// the interface is redeclared here so the analysis depends only on the
// AST layer.
type Lookup interface {
	TableSchema(name string) (sqltypes.Schema, bool)
}

// CardinalityLookup optionally reports base-table row counts, turning
// the |key domain| bound of the inflationary rule into a number. The
// engine's runtime implements it; the analysis type-asserts.
type CardinalityLookup interface {
	TableRowCount(name string) (int, bool)
}

// AnalyzeCTE classifies one iterative CTE. It never fails: anything it
// cannot prove yields Unknown with diagnostics. lookup may be nil
// (every schema-dependent rule then withholds).
func AnalyzeCTE(cte *ast.CTE, lookup Lookup) Verdict {
	v := Verdict{CTE: cte.Name}
	if !cte.Iterative || cte.Iter == nil {
		v.Diags = append(v.Diags, "not an iterative CTE")
		return v
	}
	switch cte.Until.Type {
	case ast.TermMetadata:
		analyzeMetadata(cte, &v)
	case ast.TermData:
		analyzeData(cte, &v)
	case ast.TermDelta:
		analyzeDelta(cte, lookup, &v)
	default:
		v.Diags = append(v.Diags, fmt.Sprintf("unknown termination type %v", cte.Until.Type))
	}
	return v
}

// analyzeMetadata handles UNTIL n ITERATIONS / UNTIL n UPDATES: both
// are bounded by the loop operator itself.
func analyzeMetadata(cte *ast.CTE, v *Verdict) {
	n := cte.Until.N
	if n < 0 {
		n = 0
	}
	v.Kind = Terminates
	v.Bound = maxInt64(n, 1)
	if !cte.Until.CountUpdates {
		v.Evidence = append(v.Evidence, Evidence{
			Rule: "metadata-bound",
			Detail: fmt.Sprintf("UNTIL %d ITERATIONS pins the loop counter: the loop step compares the "+
				"iteration count against the constant every pass", cte.Until.N),
		})
		return
	}
	// UNTIL n UPDATES: the counter accumulates the changed rows of the
	// identification pass. The runtime's fixpoint guard stops the loop
	// when an iteration changes nothing, so every continuing iteration
	// adds at least one update and the counter reaches n within n
	// iterations.
	v.Evidence = append(v.Evidence,
		Evidence{
			Rule: "update-bound",
			Detail: fmt.Sprintf("UNTIL %d UPDATES accumulates the changed-row counts of the merge/copy-back "+
				"identification pass monotonically", cte.Until.N),
		},
		Evidence{
			Rule: "update-fixpoint",
			Detail: "the loop operator stops when an iteration changes zero rows (the body is deterministic " +
				"over the CTE and iteration-invariant base tables, so a zero-change iteration is a fixpoint); " +
				"every continuing iteration therefore adds at least one update",
		})
}

// analyzeData handles UNTIL ANY/ALL (expr): always Unknown. The
// condition is re-evaluated each pass, but nothing forces the CTE to
// ever satisfy it — a body at fixpoint re-derives the same
// unsatisfied condition forever, and the loop operator has no
// zero-change guard for Data conditions (the condition, not the data,
// drives it).
func analyzeData(cte *ast.CTE, v *Verdict) {
	kw := "ALL"
	if cte.Until.Any {
		kw = "ANY"
	}
	v.Diags = append(v.Diags, fmt.Sprintf(
		"Data termination UNTIL %s (%s) is checked each pass but no rule forces the CTE to ever satisfy it; "+
			"a body at fixpoint re-evaluates the same unsatisfied condition forever", kw, cite(cte.Until.Expr)))
	// Body diagnostics sharpen the report even though they cannot
	// change the verdict.
	v.Diags = append(v.Diags, bodyDiagnostics(cte)...)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------
// Provenance helpers
// ---------------------------------------------------------------------

// cite renders an expression with its source byte offset when the
// parser recorded one (ColumnRef.Pos / FuncCall.Pos provenance).
func cite(e ast.Expr) string {
	if e == nil {
		return "<nil>"
	}
	if p := exprPos(e); p > 0 {
		return fmt.Sprintf("%s @%d", e, p)
	}
	return e.String()
}

// exprPos returns the smallest recorded byte offset inside e, 0 when
// none (hand-built AST).
func exprPos(e ast.Expr) int {
	pos := 0
	ast.WalkExpr(e, func(x ast.Expr) bool {
		var p int
		switch t := x.(type) {
		case *ast.ColumnRef:
			p = t.Pos
		case *ast.FuncCall:
			p = t.Pos
		}
		if p > 0 && (pos == 0 || p < pos) {
			pos = p
		}
		return true
	})
	return pos
}

// cteColumns derives the declared column names of the CTE: the
// explicit column list, or the non-iterative part's output names.
// Names that cannot be derived are "".
func cteColumns(cte *ast.CTE) []string {
	if len(cte.Cols) > 0 {
		return cte.Cols
	}
	if cte.Init == nil {
		return nil
	}
	core, ok := cte.Init.Body.(*ast.SelectCore)
	if !ok {
		return nil
	}
	cols := make([]string, len(core.Items))
	for i, it := range core.Items {
		switch {
		case it.Alias != "":
			cols[i] = it.Alias
		default:
			if ref, isRef := it.Expr.(*ast.ColumnRef); isRef {
				cols[i] = ref.Name
			}
		}
	}
	return cols
}
