package converge

import (
	"strings"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/parser"
	"dbspinner/internal/sqltypes"
)

// fakeLookup resolves the small schema the tests share.
type fakeLookup struct {
	tables map[string]sqltypes.Schema
}

func (f *fakeLookup) TableSchema(name string) (sqltypes.Schema, bool) {
	s, ok := f.tables[strings.ToLower(name)]
	return s, ok
}

// cardLookup adds row counts, exercising the CardinalityLookup
// type-assertion path.
type cardLookup struct {
	fakeLookup
	counts map[string]int
}

func (c *cardLookup) TableRowCount(name string) (int, bool) {
	n, ok := c.counts[strings.ToLower(name)]
	return n, ok
}

func newLookup() *fakeLookup {
	return &fakeLookup{tables: map[string]sqltypes.Schema{
		"edges": {
			{Name: "src", Type: sqltypes.Int},
			{Name: "dst", Type: sqltypes.Int},
			{Name: "weight", Type: sqltypes.Float},
		},
	}}
}

// cteOf parses a full iterative query and returns its first CTE.
func cteOf(t *testing.T, sql string) *ast.CTE {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	sel, ok := stmt.(*ast.SelectStmt)
	if !ok || sel.With == nil || len(sel.With.CTEs) == 0 {
		t.Fatalf("no CTE in %q", sql)
	}
	return sel.With.CTEs[0]
}

func hasRule(v Verdict, rule string) bool {
	for _, e := range v.Evidence {
		if e.Rule == rule {
			return true
		}
	}
	return false
}

func hasDiag(v Verdict, substr string) bool {
	for _, d := range v.Diags {
		if strings.Contains(d, substr) {
			return true
		}
	}
	return false
}

func TestMetadataIterationsTerminates(t *testing.T) {
	cte := cteOf(t, `WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL 5 ITERATIONS) SELECT i FROM c`)
	v := AnalyzeCTE(cte, newLookup())
	if v.Kind != Terminates || v.Bound != 5 {
		t.Fatalf("got %s bound %d, want Terminates bound 5 (%v)", v.Kind, v.Bound, v.Diags)
	}
	if !hasRule(v, "metadata-bound") {
		t.Errorf("missing metadata-bound evidence: %+v", v.Evidence)
	}
}

func TestMetadataUpdatesTerminates(t *testing.T) {
	cte := cteOf(t, `WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL 3 UPDATES) SELECT i FROM c`)
	v := AnalyzeCTE(cte, newLookup())
	if v.Kind != Terminates || v.Bound != 3 {
		t.Fatalf("got %s bound %d, want Terminates bound 3", v.Kind, v.Bound)
	}
	if !hasRule(v, "update-bound") || !hasRule(v, "update-fixpoint") {
		t.Errorf("missing update evidence chain: %+v", v.Evidence)
	}
}

func TestDataTerminationUnknown(t *testing.T) {
	cte := cteOf(t, `WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL ANY (i >= 4)) SELECT i FROM c`)
	v := AnalyzeCTE(cte, newLookup())
	if v.Kind != Unknown {
		t.Fatalf("got %s, want Unknown", v.Kind)
	}
	if !hasDiag(v, "no rule forces the CTE to ever satisfy it") {
		t.Errorf("missing data-termination diagnostic: %v", v.Diags)
	}
}

func TestDeltaZeroThresholdUnknown(t *testing.T) {
	// The parser rejects DELTA < 0 outright, so a non-positive threshold
	// can only reach the analysis through a hand-built AST.
	cte := cteOf(t, `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v FROM c UNTIL DELTA < 1) SELECT k FROM c`)
	cte.Until.N = 0
	v := AnalyzeCTE(cte, newLookup())
	if v.Kind != Unknown || !hasDiag(v, "can never be satisfied") {
		t.Fatalf("got %s %v, want Unknown with never-satisfied diagnostic", v.Kind, v.Diags)
	}
}

func TestInvariantBodyTerminates(t *testing.T) {
	cte := cteOf(t, `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT src, dst FROM edges UNTIL DELTA < 1) SELECT k FROM c`)
	v := AnalyzeCTE(cte, newLookup())
	if v.Kind != Terminates || v.Bound != 2 || !hasRule(v, "invariant-body") {
		t.Fatalf("got %s bound %d %+v, want Terminates(2) via invariant-body", v.Kind, v.Bound, v.Evidence)
	}
}

func TestIdentityMapTerminates(t *testing.T) {
	cte := cteOf(t, `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v FROM c UNTIL DELTA < 1) SELECT k FROM c`)
	v := AnalyzeCTE(cte, newLookup())
	if v.Kind != Terminates || v.Bound != 1 || !hasRule(v, "identity-map") {
		t.Fatalf("got %s bound %d %v, want Terminates(1) via identity-map", v.Kind, v.Bound, v.Diags)
	}
}

func TestFiniteKeyDomainTerminates(t *testing.T) {
	sql := `WITH ITERATIVE r (n) AS (
		SELECT src FROM edges WHERE src = 1
	 ITERATE SELECT e.dst FROM r JOIN edges e ON e.src = r.n WHERE r.n > 0
	 UNTIL DELTA < 1) SELECT n FROM r`
	cte := cteOf(t, sql)

	v := AnalyzeCTE(cte, newLookup())
	if v.Kind != Terminates {
		t.Fatalf("got %s %v, want Terminates", v.Kind, v.Diags)
	}
	if !hasRule(v, "finite-key-domain") || !hasRule(v, "key-stability") {
		t.Errorf("missing inflationary evidence chain: %+v", v.Evidence)
	}
	if v.Bound != 0 || !strings.Contains(v.BoundRef, "|distinct edges.dst| + 2") {
		t.Errorf("schema-only lookup should give symbolic bound, got %d %q", v.Bound, v.BoundRef)
	}

	// With cardinality the symbolic bound becomes numeric.
	cl := &cardLookup{fakeLookup: *newLookup(), counts: map[string]int{"edges": 7}}
	v = AnalyzeCTE(cte, cl)
	if v.Bound != 9 {
		t.Errorf("cardinality lookup should bound at 7+2, got %d (%q)", v.Bound, v.BoundRef)
	}
}

func TestStationaryMergeTerminates(t *testing.T) {
	sql := `WITH ITERATIVE c (k, v) AS (
		SELECT src, weight FROM edges
	 ITERATE SELECT c.k, e.weight FROM c JOIN edges e ON e.src = c.k WHERE e.weight > 0
	 UNTIL DELTA < 1) SELECT k FROM c`
	v := AnalyzeCTE(cteOf(t, sql), newLookup())
	if v.Kind != Terminates || v.Bound != 2 {
		t.Fatalf("got %s bound %d %v, want Terminates(2)", v.Kind, v.Bound, v.Diags)
	}
	if !hasRule(v, "stable-frontier") || !hasRule(v, "stationary-merge") {
		t.Errorf("missing stationary evidence chain: %+v", v.Evidence)
	}
}

func TestMonotoneMergeConverges(t *testing.T) {
	sql := `WITH ITERATIVE c (k, v) AS (
		SELECT src, weight FROM edges
	 ITERATE SELECT c.k, LEAST(c.v, e.weight) FROM c JOIN edges e ON e.src = c.k WHERE e.weight > 0
	 UNTIL DELTA < 1) SELECT k FROM c`
	v := AnalyzeCTE(cteOf(t, sql), newLookup())
	if v.Kind != Converges {
		t.Fatalf("got %s %v, want Converges", v.Kind, v.Diags)
	}
	for _, rule := range []string{"stable-frontier", "monotone-merge", "finite-lattice"} {
		if !hasRule(v, rule) {
			t.Errorf("missing %s evidence: %+v", rule, v.Evidence)
		}
	}
}

func TestDroppedOldValueUnknown(t *testing.T) {
	sql := `WITH ITERATIVE c (k, v) AS (
		SELECT src, weight FROM edges
	 ITERATE SELECT c.k, LEAST(e.weight, 1) FROM c JOIN edges e ON e.src = c.k WHERE c.v > 0
	 UNTIL DELTA < 1) SELECT k FROM c`
	v := AnalyzeCTE(cteOf(t, sql), newLookup())
	if v.Kind != Unknown || !hasDiag(v, "drops its own previous value") {
		t.Fatalf("got %s %v, want Unknown with dropped-old-value diagnostic", v.Kind, v.Diags)
	}
}

func TestFloatSumOscillationUnknown(t *testing.T) {
	sql := `WITH ITERATIVE c (k, v) AS (
		SELECT src, weight FROM edges
	 ITERATE SELECT c.k, SUM(c.v) FROM c JOIN edges e ON e.src = c.k WHERE e.weight > 0 GROUP BY c.k
	 UNTIL DELTA < 1) SELECT k FROM c`
	v := AnalyzeCTE(cteOf(t, sql), newLookup())
	if v.Kind != Unknown || !hasDiag(v, "oscillate") {
		t.Fatalf("got %s %v, want Unknown citing float oscillation", v.Kind, v.Diags)
	}
}

func TestComputedKeyUnknown(t *testing.T) {
	sql := `WITH ITERATIVE c (k, v) AS (
		SELECT src, dst FROM edges
	 ITERATE SELECT c.k + 1, c.v FROM c WHERE c.k > 0
	 UNTIL DELTA < 1) SELECT k FROM c`
	v := AnalyzeCTE(cteOf(t, sql), newLookup())
	if v.Kind != Unknown || !hasDiag(v, "frontier-expanding merge with computed key") {
		t.Fatalf("got %s %v, want Unknown with computed-key diagnostic", v.Kind, v.Diags)
	}
}

func TestFullUpdatePathUnknown(t *testing.T) {
	// No WHERE clause: the rename path replaces the whole CTE, so value
	// feedback beyond the identity map proves nothing.
	sql := `WITH ITERATIVE c (k, v) AS (
		SELECT src, weight FROM edges
	 ITERATE SELECT c.k, LEAST(c.v, e.weight) FROM c JOIN edges e ON e.src = c.k
	 UNTIL DELTA < 1) SELECT k FROM c`
	v := AnalyzeCTE(cteOf(t, sql), newLookup())
	if v.Kind != Unknown || !hasDiag(v, "full-update path") {
		t.Fatalf("got %s %v, want Unknown with full-update-path diagnostic", v.Kind, v.Diags)
	}
}

func TestDiagnosticsCarryProvenance(t *testing.T) {
	cte := cteOf(t, `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT c.k + 1, c.v FROM c WHERE c.k > 0 UNTIL DELTA < 1) SELECT k FROM c`)
	v := AnalyzeCTE(cte, newLookup())
	if !hasDiag(v, "@") {
		t.Errorf("diagnostics should cite source byte offsets: %v", v.Diags)
	}
}

func TestNonIterativeCTEUnknown(t *testing.T) {
	v := AnalyzeCTE(&ast.CTE{Name: "plain"}, nil)
	if v.Kind != Unknown || !hasDiag(v, "not an iterative CTE") {
		t.Fatalf("got %s %v", v.Kind, v.Diags)
	}
}

func TestBoundString(t *testing.T) {
	cases := []struct {
		v    Verdict
		want string
	}{
		{Verdict{Bound: 5}, "<= 5 iterations"},
		{Verdict{Bound: 9, BoundRef: "|distinct edges.dst| + 2"}, "<= 9 iterations (|distinct edges.dst| + 2)"},
		{Verdict{BoundRef: "|distinct edges.dst| + 2"}, "<= |distinct edges.dst| + 2"},
		{Verdict{}, ""},
	}
	for _, tc := range cases {
		if got := tc.v.BoundString(); got != tc.want {
			t.Errorf("BoundString() = %q, want %q", got, tc.want)
		}
	}
}
