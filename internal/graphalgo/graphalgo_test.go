package graphalgo

import (
	"math"
	"testing"
)

// testGraph is the 4-edge graph used across the repo:
// 1->2 (0.5), 1->3 (0.5), 2->3 (1.0), 3->1 (1.0).
func testGraph() []Edge {
	return []Edge{
		{1, 2, 0.5}, {1, 3, 0.5}, {2, 3, 1.0}, {3, 1, 1.0},
	}
}

func TestPageRankHandTrace(t *testing.T) {
	ranks := PageRank(testGraph(), 2)
	want := map[int64]float64{1: 0.2775, 2: 0.21375, 3: 0.34125}
	for n, w := range want {
		if math.Abs(ranks[n]-w) > 1e-12 {
			t.Errorf("rank[%d] = %v, want %v", n, ranks[n], w)
		}
	}
}

func TestPageRankNoIncomingIsNaN(t *testing.T) {
	// Node 1 has no incoming edges: after iteration 2 its rank is NaN
	// (rank + NULL in SQL).
	edges := []Edge{{1, 2, 1}}
	ranks := PageRank(edges, 2)
	if !math.IsNaN(ranks[1]) {
		t.Errorf("rank[1] = %v, want NaN (NULL in SQL)", ranks[1])
	}
	if math.IsNaN(ranks[2]) {
		t.Errorf("rank[2] should still be finite after 2 iterations, got NaN")
	}
	// One more iteration propagates the NULL delta through SUM, just
	// as the SQL recurrence does.
	ranks = PageRank(edges, 3)
	if !math.IsNaN(ranks[2]) {
		t.Errorf("rank[2] = %v, want NaN after the NULL delta propagates", ranks[2])
	}
}

func TestPageRankZeroIterations(t *testing.T) {
	ranks := PageRank(testGraph(), 0)
	for n, r := range ranks {
		if r != 0 {
			t.Errorf("rank[%d] = %v before any iteration", n, r)
		}
	}
}

func TestPageRankVSAllAvailableMatchesPlainShape(t *testing.T) {
	status := map[int64]int64{1: 1, 2: 1, 3: 1}
	vs := PageRankVS(testGraph(), status, 2)
	plain := PageRank(testGraph(), 2)
	for n := range plain {
		if math.Abs(vs[n]-plain[n]) > 1e-12 {
			t.Errorf("node %d: vs=%v plain=%v", n, vs[n], plain[n])
		}
	}
}

func TestPageRankVSUnavailableNodeFrozen(t *testing.T) {
	status := map[int64]int64{1: 1, 2: 0, 3: 1}
	vs := PageRankVS(testGraph(), status, 5)
	// Node 2 is unavailable: it keeps its initial rank 0 forever.
	if vs[2] != 0 {
		t.Errorf("unavailable node rank = %v, want 0", vs[2])
	}
	if vs[1] == 0 || vs[3] == 0 {
		t.Error("available nodes should accumulate rank")
	}
}

func TestSSSPChain(t *testing.T) {
	edges := []Edge{{1, 2, 1}, {2, 3, 2}, {1, 3, 5}}
	dist := SSSP(edges, 1, 5)
	if dist[2] != 1 {
		t.Errorf("dist[2] = %v", dist[2])
	}
	if dist[3] != 3 {
		t.Errorf("dist[3] = %v", dist[3])
	}
	// The source keeps the sentinel (the SQL quirk documented on SSSP).
	if dist[1] != Infinity {
		t.Errorf("dist[1] = %v, want sentinel", dist[1])
	}
}

func TestSSSPConvergesToDijkstra(t *testing.T) {
	// A slightly larger graph: SSSP run for >= diameter+2 iterations
	// must match Dijkstra for all non-source reachable nodes.
	edges := []Edge{
		{1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 5, 1},
		{1, 5, 10}, {2, 4, 3}, {5, 2, 1},
	}
	iter := SSSP(edges, 1, 10)
	exact := Dijkstra(edges, 1)
	for n, d := range exact {
		if n == 1 {
			continue
		}
		if math.IsInf(d, 1) {
			if iter[n] != Infinity {
				t.Errorf("unreachable node %d: iter=%v", n, iter[n])
			}
			continue
		}
		if iter[n] != d {
			t.Errorf("node %d: iterative=%v dijkstra=%v", n, iter[n], d)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	edges := []Edge{{1, 2, 1}, {3, 4, 1}}
	dist := Dijkstra(edges, 1)
	if !math.IsInf(dist[3], 1) || !math.IsInf(dist[4], 1) {
		t.Error("nodes 3,4 should be unreachable")
	}
	if dist[2] != 1 || dist[1] != 0 {
		t.Errorf("dist = %v", dist)
	}
	// Source not in the graph at all.
	dist = Dijkstra(edges, 99)
	for n, d := range dist {
		if !math.IsInf(d, 1) {
			t.Errorf("node %d should be unreachable from absent source", n)
		}
	}
}

func TestForecast(t *testing.T) {
	// Node 1 has out-degree 2: friends=2, prev=ceil(2*0.99)=2.
	// Iteration: friends' = round(2/2*2, 5) = 2 (stable).
	edges := []Edge{{1, 2, 1}, {1, 3, 1}, {12, 1, 1}}
	f := Forecast(edges, 3)
	if f[1] != 2 {
		t.Errorf("friends[1] = %v", f[1])
	}
	// Node 12: out-degree 1, prev = ceil(1 * (1 - 2/100)) = 1.
	if f[12] != 1 {
		t.Errorf("friends[12] = %v", f[12])
	}
	// Only nodes with outgoing edges appear.
	if _, ok := f[2]; ok {
		t.Error("node 2 has no outgoing edges and should be absent")
	}
}

func TestForecastGrowth(t *testing.T) {
	// Node 15 (node%10 = 5): out-degree 20, prev = ceil(20*0.95) = 19.
	// friends grows geometrically by ~20/19 per iteration.
	var edges []Edge
	for i := 0; i < 20; i++ {
		edges = append(edges, Edge{15, int64(100 + i), 1})
	}
	f0 := Forecast(edges, 0)
	f3 := Forecast(edges, 3)
	if f0[15] != 20 {
		t.Errorf("initial friends = %v", f0[15])
	}
	if f3[15] <= f0[15] {
		t.Errorf("friends should grow: %v -> %v", f0[15], f3[15])
	}
}
