// Package graphalgo contains native Go reference implementations of
// the paper's three evaluation computations — delta-based PageRank,
// single-source shortest path and the friends forecast — used as
// correctness oracles for the SQL results.
package graphalgo

import "math"

// Edge is one weighted directed edge.
type Edge struct {
	Src, Dst int64
	Weight   float64
}

// PageRank runs the delta-accumulation PageRank of the paper's Figure 2
// for a fixed number of iterations and returns node -> rank.
//
// The recurrence mirrors the SQL exactly:
//
//	rank'  = rank + delta
//	delta' = 0.85 * sum over incoming edges of (src.delta * weight)
//
// Nodes with no incoming edges get a NULL delta in SQL; here that is
// modelled as NaN, and rank + NaN stays NaN, matching the SQL result
// where rank + NULL is NULL.
func PageRank(edges []Edge, iterations int) map[int64]float64 {
	nodes := nodeSet(edges)
	incoming := map[int64][]Edge{}
	for _, e := range edges {
		incoming[e.Dst] = append(incoming[e.Dst], e)
	}
	rank := make(map[int64]float64, len(nodes))
	delta := make(map[int64]float64, len(nodes))
	for n := range nodes {
		rank[n] = 0
		delta[n] = 0.15
	}
	for it := 0; it < iterations; it++ {
		newRank := make(map[int64]float64, len(nodes))
		newDelta := make(map[int64]float64, len(nodes))
		for n := range nodes {
			newRank[n] = rank[n] + delta[n]
			// SQL SUM skips NULL inputs and returns NULL only when every
			// input is NULL (or there are none); NaN models NULL here.
			sum, any := 0.0, false
			for _, e := range incoming[n] {
				d := delta[e.Src]
				if math.IsNaN(d) {
					continue
				}
				sum += d * e.Weight
				any = true
			}
			if !any {
				newDelta[n] = math.NaN()
				continue
			}
			newDelta[n] = 0.85 * sum
		}
		rank, delta = newRank, newDelta
	}
	return rank
}

// PageRankVS is PageRank restricted to nodes whose status is non-zero
// in the availability map, mirroring the PR-VS query: only join rows
// whose incoming edge ends at an available node contribute, and nodes
// with no surviving join rows keep their previous values (the merge
// path), because PR-VS has a WHERE clause.
func PageRankVS(edges []Edge, status map[int64]int64, iterations int) map[int64]float64 {
	nodes := nodeSet(edges)
	incoming := map[int64][]Edge{}
	for _, e := range edges {
		incoming[e.Dst] = append(incoming[e.Dst], e)
	}
	rank := make(map[int64]float64, len(nodes))
	delta := make(map[int64]float64, len(nodes))
	for n := range nodes {
		rank[n] = 0
		delta[n] = 0.15
	}
	for it := 0; it < iterations; it++ {
		newRank := make(map[int64]float64, len(nodes))
		newDelta := make(map[int64]float64, len(nodes))
		for n := range nodes {
			// WHERE avail.status != 0 with avail joined on the edge's
			// dst: unavailable nodes (or nodes with no incoming edges)
			// produce no working-table row and keep previous values.
			if status[n] == 0 || len(incoming[n]) == 0 {
				newRank[n] = rank[n]
				newDelta[n] = delta[n]
				continue
			}
			sum, any := 0.0, false
			for _, e := range incoming[n] {
				d := delta[e.Src]
				if math.IsNaN(d) {
					continue
				}
				sum += d * e.Weight
				any = true
			}
			newRank[n] = rank[n] + delta[n]
			if !any {
				newDelta[n] = math.NaN()
			} else {
				newDelta[n] = 0.85 * sum
			}
		}
		rank, delta = newRank, newDelta
	}
	return rank
}

// Infinity is the sentinel distance used by the SSSP query.
const Infinity = 9999999

// SSSP runs the iterative shortest-path recurrence of Figure 7 for a
// fixed number of iterations and returns node -> distance. It mirrors
// the SQL semantics exactly, including the quirk that a node's
// distance is only folded in an iteration where the node has at least
// one reachable incoming edge (the WHERE clause drives the merge
// path), so the source itself keeps the sentinel distance while its
// delta is 0.
func SSSP(edges []Edge, source int64, iterations int) map[int64]float64 {
	nodes := nodeSet(edges)
	incoming := map[int64][]Edge{}
	for _, e := range edges {
		incoming[e.Dst] = append(incoming[e.Dst], e)
	}
	dist := make(map[int64]float64, len(nodes))
	delta := make(map[int64]float64, len(nodes))
	for n := range nodes {
		dist[n] = Infinity
		if n == source {
			delta[n] = 0
		} else {
			delta[n] = Infinity
		}
	}
	for it := 0; it < iterations; it++ {
		newDist := make(map[int64]float64, len(nodes))
		newDelta := make(map[int64]float64, len(nodes))
		for n := range nodes {
			best := math.Inf(1)
			for _, e := range incoming[n] {
				if delta[e.Src] != Infinity {
					if d := delta[e.Src] + e.Weight; d < best {
						best = d
					}
				}
			}
			if math.IsInf(best, 1) {
				// No row in the working table: keep previous values.
				newDist[n] = dist[n]
				newDelta[n] = delta[n]
				continue
			}
			newDist[n] = math.Min(dist[n], delta[n])
			newDelta[n] = best
		}
		dist, delta = newDist, newDelta
	}
	// The final folded distance is min(dist, delta), which is what one
	// more LEAST would produce; the query reports dist, so do the same.
	return dist
}

// Dijkstra computes exact shortest-path distances (the classic oracle,
// for validating that the SQL recurrence converges to the truth when
// run long enough). Unreachable nodes map to +Inf.
func Dijkstra(edges []Edge, source int64) map[int64]float64 {
	adj := map[int64][]Edge{}
	nodes := nodeSet(edges)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e)
	}
	dist := make(map[int64]float64, len(nodes))
	for n := range nodes {
		dist[n] = math.Inf(1)
	}
	if _, ok := nodes[source]; !ok {
		return dist
	}
	dist[source] = 0
	// Simple binary-heap-free implementation (Bellman-Ford style with
	// a worklist); fine at oracle scale.
	queue := []int64{source}
	inQueue := map[int64]bool{source: true}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		inQueue[n] = false
		for _, e := range adj[n] {
			if d := dist[n] + e.Weight; d < dist[e.Dst] {
				dist[e.Dst] = d
				if !inQueue[e.Dst] {
					inQueue[e.Dst] = true
					queue = append(queue, e.Dst)
				}
			}
		}
	}
	return dist
}

// Forecast mirrors the FF query of Figure 6: for each node with
// outgoing edges, friends starts at the out-degree, friendsPrev at
// ceil(friends * (1 - (node%10)/100)), and each iteration applies the
// geometric growth
//
//	friends' = round((friends / friendsPrev) * friends, 5)
//	friendsPrev' = friends
//
// Returns node -> friends after the given number of iterations.
func Forecast(edges []Edge, iterations int) map[int64]float64 {
	outDeg := map[int64]int64{}
	for _, e := range edges {
		outDeg[e.Src]++
	}
	friends := make(map[int64]float64, len(outDeg))
	prev := make(map[int64]float64, len(outDeg))
	for n, d := range outDeg {
		friends[n] = float64(d)
		prev[n] = math.Ceil(float64(d) * (1.0 - float64(n%10)/100.0))
	}
	for it := 0; it < iterations; it++ {
		for n := range friends {
			f := round5(friends[n] / prev[n] * friends[n])
			prev[n] = friends[n]
			friends[n] = f
		}
	}
	return friends
}

func round5(f float64) float64 {
	return math.Round(f*1e5) / 1e5
}

func nodeSet(edges []Edge) map[int64]struct{} {
	nodes := map[int64]struct{}{}
	for _, e := range edges {
		nodes[e.Src] = struct{}{}
		nodes[e.Dst] = struct{}{}
	}
	return nodes
}
