package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// AggDispatch checks that the aggregate decomposability analysis and
// its verifier-side re-derivation each dispatch over every function
// name ast.IsAggregateName accepts. Both passes classify aggregate
// calls by switching on the uppercased name with a fail-closed default
// arm (Holistic); a name added to the parser's aggregateNames set but
// not to a dispatch silently demotes every query using it to the full
// re-fold — sound but quietly disabling maintenance — and, worse, a
// name missing from only one of the two switches makes the producer
// and the checker disagree on which claims are licensed. The check is
// syntactic, like the rest of spinlint:
//
//   - A dispatch switch is an expression switch in
//     dbspinner/internal/aggprop or dbspinner/internal/verify with a
//     default clause whose case values include at least two of the
//     recognized aggregate-name string literals.
//   - The recognized names are the keys of the aggregateNames map
//     literal in internal/ast, located on disk as a sibling of the
//     directory holding the files under analysis; if it cannot be read
//     the analyzer fails closed with a diagnostic rather than silently
//     passing.
var AggDispatch = &Analyzer{
	Name: "aggdispatch",
	Doc:  "the aggregate-classification dispatches must handle every name ast.IsAggregateName accepts",
	Run:  runAggDispatch,
}

func runAggDispatch(pass *Pass) []Diagnostic {
	switch normImportPath(pass.ImportPath) {
	case "dbspinner/internal/aggprop", "dbspinner/internal/verify":
	default:
		return nil
	}

	names, err := aggregateNameSet(pass)
	if err != nil {
		if len(pass.Files) == 0 {
			return nil
		}
		return []Diagnostic{{
			Pos:     pass.Fset.Position(pass.Files[0].Pos()),
			Message: "cannot read internal/ast to enumerate aggregate names: " + err.Error(),
		}}
	}

	type dispatch struct {
		pos   token.Position
		cases map[string]bool
	}
	var dispatches []dispatch
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			cases, hasDefault := aggCaseNames(sw, names)
			if len(cases) >= 2 && hasDefault {
				dispatches = append(dispatches, dispatch{pass.Fset.Position(sw.Pos()), cases})
			}
			return true
		})
	}
	if len(dispatches) == 0 {
		if len(pass.Files) == 0 {
			return nil
		}
		return []Diagnostic{{
			Pos: pass.Fset.Position(pass.Files[0].Pos()),
			Message: "no aggregate-dispatch switch found (a string switch over aggregate names " +
				"with a default clause); the classification cannot be checked for name coverage",
		}}
	}

	var missingAll []string
	for n := range names {
		missingAll = append(missingAll, n)
	}
	sort.Strings(missingAll)

	var diags []Diagnostic
	for _, d := range dispatches {
		var missing []string
		for _, n := range missingAll {
			if !d.cases[n] {
				missing = append(missing, n)
			}
		}
		if len(missing) > 0 {
			diags = append(diags, Diagnostic{
				Pos: d.pos,
				Message: "aggregate-dispatch switch does not handle recognized aggregate(s) " +
					strings.Join(missing, ", ") + "; queries using them would silently fall back to the full re-fold",
			})
		}
	}
	return diags
}

// aggCaseNames collects the recognized aggregate-name string literals
// of every case clause of an expression switch, and whether the switch
// has a default clause.
func aggCaseNames(sw *ast.SwitchStmt, names map[string]bool) (map[string]bool, bool) {
	cases := map[string]bool{}
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, v := range cc.List {
			lit, ok := v.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				continue
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				continue
			}
			if names[s] {
				cases[s] = true
			}
		}
	}
	return cases, hasDefault
}

// aggregateNameSet parses the internal/ast package (located as a
// sibling of the directory holding the files under analysis) and
// returns the keys of its aggregateNames map literal.
func aggregateNameSet(pass *Pass) (map[string]bool, error) {
	if len(pass.Files) == 0 {
		return nil, os.ErrNotExist
	}
	selfDir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	astDir := filepath.Join(selfDir, "..", "ast")
	entries, err := os.ReadDir(astDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	names := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(astDir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "aggregateNames" || len(vs.Values) != 1 {
					continue
				}
				cl, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range cl.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					lit, ok := kv.Key.(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					if s, err := strconv.Unquote(lit.Value); err == nil {
						names[s] = true
					}
				}
			}
		}
	}
	if len(names) == 0 {
		return nil, os.ErrNotExist
	}
	return names, nil
}
