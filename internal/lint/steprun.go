package lint

import (
	"go/ast"
	"go/token"
)

// jumpSteps are the step types allowed to return something other than
// self+1 on the success path: the loop operator is the only instruction
// that computes jump targets (paper §VI-B); every other step must fall
// through, or the program counter silently skips or repeats steps.
var jumpSteps = map[string]bool{"LoopStep": true}

// StepRun checks that every Step.Run in internal/core returns self+1 on
// its success path. The check is syntactic: a method named Run whose
// last parameter is named "self" is treated as a step implementation,
// and every `return X, nil` inside it (ignoring nested function
// literals) must have X spelled exactly `self + 1`.
var StepRun = &Analyzer{
	Name: "steprun",
	Doc:  "Step.Run must return self+1 on fall-through; only LoopStep computes jumps",
	Run:  runStepRun,
}

func runStepRun(pass *Pass) []Diagnostic {
	if !isCorePackage(pass) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "Run" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if !hasSelfParam(fn) {
				continue
			}
			recv := receiverTypeName(fn)
			if jumpSteps[recv] {
				continue
			}
			walkSkippingFuncLits(fn.Body, func(n ast.Node) {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok || len(ret.Results) != 2 {
					return
				}
				if !isNilIdent(ret.Results[1]) {
					return // error path: the next-step value is never used
				}
				if !isSelfPlusOne(ret.Results[0]) {
					diags = append(diags, Diagnostic{
						Pos: pass.Fset.Position(ret.Pos()),
						Message: "(" + recv + ").Run must return self+1 on fall-through; " +
							"only the loop operator may compute a jump target",
					})
				}
			})
		}
	}
	return diags
}

// hasSelfParam reports whether the function's parameter list ends in a
// parameter named self (the step-program counter convention).
func hasSelfParam(fn *ast.FuncDecl) bool {
	params := fn.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	last := params.List[len(params.List)-1]
	for _, name := range last.Names {
		if name.Name == "self" {
			return true
		}
	}
	return false
}

func receiverTypeName(fn *ast.FuncDecl) string {
	if len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name
	}
	return ""
}

func isNilIdent(e ast.Expr) bool {
	ident, ok := e.(*ast.Ident)
	return ok && ident.Name == "nil"
}

// isSelfPlusOne matches the literal expression `self + 1`.
func isSelfPlusOne(e ast.Expr) bool {
	bin, ok := e.(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD {
		return false
	}
	x, ok := bin.X.(*ast.Ident)
	if !ok || x.Name != "self" {
		return false
	}
	lit, ok := bin.Y.(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "1"
}

// walkSkippingFuncLits visits every node except the bodies of nested
// function literals (their returns are not step returns).
func walkSkippingFuncLits(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
