package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc builds a Pass from in-memory sources. Keys are file names
// (so _test.go exemption and suppression positions can be exercised).
func parseSrc(t *testing.T, importPath string, files map[string]string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	pass := &Pass{Fset: fset, ImportPath: importPath}
	for name, src := range files {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		pass.Files = append(pass.Files, f)
	}
	return pass
}

func checkSrc(t *testing.T, importPath, src string) []Diagnostic {
	t.Helper()
	return Check(parseSrc(t, importPath, map[string]string{"fixture.go": src}))
}

func assertFindings(t *testing.T, diags []Diagnostic, want ...string) {
	t.Helper()
	if len(diags) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(diags), len(want), diags)
	}
	for i, w := range want {
		parts := strings.SplitN(w, "|", 2)
		check, substr := parts[0], parts[1]
		if diags[i].Check != check {
			t.Errorf("finding %d: check = %q, want %q", i, diags[i].Check, check)
		}
		if !strings.Contains(diags[i].Message, substr) {
			t.Errorf("finding %d: message %q does not contain %q", i, diags[i].Message, substr)
		}
	}
}

const corePath = "dbspinner/internal/core"

func TestStepRunFlagsNonFallThroughReturn(t *testing.T) {
	src := `package core

type SkipStep struct{}

func (s *SkipStep) Explain() string { return "skip" }

func (s *SkipStep) Run(ctx *Context, self int) (int, error) {
	if err := ctx.Checkpoint(self); err != nil {
		return 0, err
	}
	if bad() {
		return self + 2, nil
	}
	return self + 1, nil
}
`
	diags := checkSrc(t, corePath, src)
	// The synthetic core package declares a step implementer but no
	// registry switch, so stepeffects' fail-closed finding rides along.
	assertFindings(t, diags,
		"stepeffects|no step-registry type switch found",
		"steprun|(SkipStep).Run must return self+1")
	if diags[1].Pos.Line != 12 {
		t.Errorf("finding at line %d, want 12", diags[1].Pos.Line)
	}
}

func TestStepRunAcceptsErrorReturnsJumpStepsAndFuncLits(t *testing.T) {
	src := `package core

type GoodStep struct{}

func (s *GoodStep) Explain() string { return "good" }

func (s *GoodStep) Run(ctx *Context, self int) (int, error) {
	if err := ctx.Checkpoint(self); err != nil {
		return 0, err
	}
	f := func() (int, error) { return 99, nil } // not a step return
	if _, err := f(); err != nil {
		return 0, err // error path: next-step value unused
	}
	return self + 1, nil
}

type LoopStep struct{}

func (s *LoopStep) Explain() string { return "loop" }

func (s *LoopStep) Run(ctx *Context, self int) (int, error) {
	if err := ctx.Checkpoint(self); err != nil {
		return 0, err
	}
	return s.BodyStart, nil // the loop operator computes jumps
}

// Run without a self parameter is not a step implementation.
func (s *GoodStep) helper() {}

func Run(self int) (int, error) { return 5, nil } // no receiver
`
	// steprun is clean; stepeffects' fail-closed finding rides along
	// because the synthetic step implementers have no registry switch.
	assertFindings(t, checkSrc(t, corePath, src),
		"stepeffects|no step-registry type switch found")
}

func TestStepRunIgnoresOtherPackages(t *testing.T) {
	src := `package other

type S struct{}

func (s *S) Run(ctx int, self int) (int, error) { return 7, nil }
`
	assertFindings(t, checkSrc(t, "dbspinner/internal/other", src))
}

func TestResultStoreFlagsOutsideAccess(t *testing.T) {
	src := `package engine

func peek(rt *Runtime) int {
	return rt.Results.Len()
}
`
	// The synthetic package carries no Config struct, so optioncfg's
	// fail-closed finding rides along with the resultstore one.
	assertFindings(t, checkSrc(t, "dbspinner", src),
		"optioncfg|no Config struct found",
		"resultstore|direct access to the intermediate-result store")
}

func TestResultStoreAllowsExecutorLayers(t *testing.T) {
	src := `package exec

func get(rt *StoreRuntime, name string) any { return rt.Results.Get(name) }
`
	for _, path := range []string{
		"dbspinner/internal/exec",
		"dbspinner/internal/storage",
		"dbspinner/internal/core",
		"dbspinner/internal/mpp",
		// test-variant import path as go vet reports it
		"dbspinner/internal/exec [dbspinner/internal/exec.test]",
	} {
		assertFindings(t, checkSrc(t, path, src))
	}
}

func TestStepExplainFlagsMissingMethod(t *testing.T) {
	src := `package core

type NoExplainStep struct{}

func (s *NoExplainStep) Run(ctx *Context, self int) (int, error) {
	if err := ctx.Checkpoint(self); err != nil {
		return 0, err
	}
	return self + 1, nil
}

type FineStep struct{}

func (s *FineStep) Explain() string { return "fine" }

// Interfaces declare Explain rather than implementing it.
type Step interface {
	Explain() string
}

// Unexported types are not part of the EXPLAIN surface.
type innerStep struct{}
`
	assertFindings(t, checkSrc(t, corePath, src),
		"stepexplain|NoExplainStep does not implement Explain")
}

func TestCoreErrors(t *testing.T) {
	src := `package core

import (
	"errors"
	"fmt"
)

func f(name string) error {
	if name == "" {
		return errors.New("missing name")
	}
	if name == "x" {
		return fmt.Errorf("bad input")
	}
	return fmt.Errorf("cte %s: only 100%% done", name)
}
`
	assertFindings(t, checkSrc(t, corePath, src),
		"coreerrors|errors.New message carries no step, CTE or table name",
		"coreerrors|fmt.Errorf message carries no step, CTE or table name")
}

func TestCoreErrorsOnlyAppliesToCore(t *testing.T) {
	src := `package exec

import "errors"

func f() error { return errors.New("plain") }
`
	assertFindings(t, checkSrc(t, "dbspinner/internal/exec", src))
}

func TestStepSwitchFailsClosedWithoutDispatch(t *testing.T) {
	src := `package verify

import "dbspinner/internal/core"

func onlyPartial(st core.Step) {
	switch st.(type) {
	case *core.MaterializeStep:
	case *core.LoopStep:
	}
}
`
	// The other fail-closed dispatch checks ride along: the synthetic
	// verify package has no node-dispatch or aggregate-dispatch switch
	// either.
	assertFindings(t, checkSrc(t, "dbspinner/internal/verify", src),
		"aggdispatch|no aggregate-dispatch switch found",
		"distprop|no node-dispatch type switch found",
		"stepswitch|no step-dispatch type switch found")
}

func TestDistPropFailsClosedWithoutDispatch(t *testing.T) {
	src := `package distprop

import "dbspinner/internal/plan"

func onlyPartial(n plan.Node) {
	switch n.(type) {
	case *plan.Scan:
	case *plan.Join:
	}
}
`
	assertFindings(t, checkSrc(t, "dbspinner/internal/distprop", src),
		"distprop|no node-dispatch type switch found")
}

func TestDistPropIgnoresOtherPackages(t *testing.T) {
	src := `package plan

import "dbspinner/internal/plan"

func f(n plan.Node) {
	switch n.(type) {
	case *plan.Scan:
	case *plan.Join:
	default:
	}
}
`
	assertFindings(t, checkSrc(t, "dbspinner/internal/plan", src))
}

func TestStepSwitchIgnoresOtherPackages(t *testing.T) {
	src := `package core

func f(x any) {
	switch x.(type) {
	case *core.MaterializeStep:
	case *core.LoopStep:
	default:
	}
}
`
	assertFindings(t, checkSrc(t, corePath, src))
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	src := `package core

import "errors"

func f() error {
	//lint:ignore coreerrors statement-level error, no CTE in scope yet
	return errors.New("no iterative CTE")
}

func g() error {
	return errors.New("still flagged") //lint:ignore coreerrors same-line reasons work
}

func h() error {
	//lint:ignore coreerrors
	return errors.New("reasonless directive is not honored")
}

func k() error {
	//lint:ignore steprun wrong check name does not suppress
	return errors.New("flagged")
}
`
	diags := checkSrc(t, corePath, src)
	// f suppressed (line above), g suppressed (same line),
	// h and k still flagged.
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2:\n%v", len(diags), diags)
	}
	if diags[0].Pos.Line != 16 || diags[1].Pos.Line != 21 {
		t.Errorf("findings at lines %d, %d; want 16, 21", diags[0].Pos.Line, diags[1].Pos.Line)
	}
}

func TestTestFilesAreExempt(t *testing.T) {
	pass := parseSrc(t, corePath, map[string]string{
		"fixture_test.go": `package core

import "errors"

func f() error { return errors.New("fixtures may be broken") }
`,
	})
	if diags := Check(pass); len(diags) != 0 {
		t.Fatalf("findings in _test.go should be dropped, got %v", diags)
	}
}

func TestFindingsAreSorted(t *testing.T) {
	pass := parseSrc(t, corePath, map[string]string{
		"b.go": `package core

import "errors"

var errB = errors.New("b")
`,
		"a.go": `package core

import "errors"

var errA1 = errors.New("a1")
var errA2 = errors.New("a2")
`,
	})
	diags := Check(pass)
	if len(diags) != 3 {
		t.Fatalf("got %d findings, want 3", len(diags))
	}
	if diags[0].Pos.Filename != "a.go" || diags[1].Pos.Filename != "a.go" || diags[2].Pos.Filename != "b.go" {
		t.Errorf("findings not sorted by file: %v", diags)
	}
	if diags[0].Pos.Line >= diags[1].Pos.Line {
		t.Errorf("findings not sorted by line: %v", diags)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "x.go", Line: 3, Column: 9},
		Check:   "steprun",
		Message: "boom",
	}
	if got, want := d.String(), "x.go:3:9: boom (steprun)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
