package lint

import (
	"go/ast"
)

// Ctxcheck enforces the query-lifecycle contract: cooperative
// cancellation only works if every long-running execution site actually
// polls the context.
//
//   - In internal/core, every Step.Run implementation (a method named
//     Run whose last parameter is named "self", the same convention
//     steprun keys on) must call ctx.Checkpoint — the step boundary is
//     the engine's primary cancellation point, and a step that skips
//     the call silently extends kill latency by its whole runtime.
//   - In internal/mpp, every Machine method that launches goroutines
//     (contains a `go` statement) must call the machine's checkpoint
//     method before fanning out — otherwise a canceled query still
//     pays a full partition batch.
//
// The check is syntactic and fail-closed: a Run/parallel entry point
// with no reachable Checkpoint/checkpoint call is flagged even if it
// "obviously" finishes quickly; suppress deliberate exceptions with
// //lint:ignore ctxcheck <reason>.
var Ctxcheck = &Analyzer{
	Name: "ctxcheck",
	Doc:  "Step.Run implementers and mpp.Machine fan-out methods must consult the cancellation checkpoint",
	Run:  runCtxcheck,
}

func runCtxcheck(pass *Pass) []Diagnostic {
	switch normImportPath(pass.ImportPath) {
	case "dbspinner/internal/core":
		return ctxcheckCore(pass)
	case "dbspinner/internal/mpp":
		return ctxcheckMPP(pass)
	}
	return nil
}

// ctxcheckCore flags Step.Run implementations that never call
// Checkpoint.
func ctxcheckCore(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "Run" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if !hasSelfParam(fn) {
				continue
			}
			if callsSelector(fn.Body, "Checkpoint") {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos: pass.Fset.Position(fn.Pos()),
				Message: "(" + receiverTypeName(fn) + ").Run never calls ctx.Checkpoint; " +
					"every step must poll the cancellation context at its boundary",
			})
		}
	}
	return diags
}

// ctxcheckMPP flags Machine methods that start goroutines without
// consulting the machine checkpoint.
func ctxcheckMPP(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if receiverTypeName(fn) != "Machine" {
				continue
			}
			hasGo := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.GoStmt); ok {
					hasGo = true
					return false
				}
				return true
			})
			if !hasGo {
				continue
			}
			if callsSelector(fn.Body, "checkpoint") {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos: pass.Fset.Position(fn.Pos()),
				Message: "(Machine)." + fn.Name.Name + " launches goroutines without calling checkpoint; " +
					"every partition fan-out must poll the cancellation context first",
			})
		}
	}
	return diags
}

// callsSelector reports whether body contains a call expression whose
// callee is a selector with the given name (x.<name>(...)), anywhere —
// including nested function literals, since checkpoints may live
// inside per-partition closures.
func callsSelector(body ast.Node, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}
