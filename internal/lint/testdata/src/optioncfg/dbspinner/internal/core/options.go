// Fixture sibling package: the optioncfg analyzer disk-reads
// internal/core (relative to the files under analysis) to confirm the
// Options struct exists before checking knob coverage.
package core

type Options struct {
	Parts         int
	Parallel      bool
	MaxIterations int64
}
