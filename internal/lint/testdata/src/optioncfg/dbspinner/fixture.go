// Fixture for the optioncfg analyzer: a Config with a knob the
// translation function never reads, and a second function returning
// core.Options that splits the translation point.
package dbspinner

import "dbspinner/internal/core"

// Config mirrors the engine's public configuration.
type Config struct {
	Partitions    int
	Parallel      bool
	MaxIterations int64
	// Forgotten is a knob nothing translates.
	Forgotten bool
	// unexported fields are engine-internal and exempt.
	internal int
}

type Engine struct {
	cfg Config
}

func (e *Engine) coreOptions() core.Options { // want `Config knob\(s\) Forgotten are not read by coreOptions`
	return core.Options{
		Parts:         e.cfg.Partitions,
		Parallel:      e.cfg.Parallel,
		MaxIterations: e.cfg.MaxIterations,
	}
}

func strayOptions() core.Options { // want `multiple functions return core.Options \(coreOptions, strayOptions\)`
	return core.Options{}
}
