package mpp

import "sync"

type faultinjectPkg struct{}

func (faultinjectPkg) Contain(p int, fn func() error) error { return fn() }

var faultinject faultinjectPkg

type Machine struct{ Parts int }

// parallel runs every worker body under Contain: good.
func (m *Machine) parallel(fn func(p int) error) error {
	var wg sync.WaitGroup
	for p := 0; p < m.Parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			_ = faultinject.Contain(p, func() error { return fn(p) })
		}(p)
	}
	wg.Wait()
	return nil
}

// badParallel spawns bare worker bodies: a panic in fn kills the
// process.
func (m *Machine) badParallel(fn func(p int) error) error {
	var wg sync.WaitGroup
	for p := 0; p < m.Parts; p++ {
		wg.Add(1)
		go func(p int) { // want `goroutine body never calls faultinject\.Contain`
			defer wg.Done()
			_ = fn(p)
		}(p)
	}
	wg.Wait()
	return nil
}

func (m *Machine) work() {}

// namedSpawn hides the body behind a call; containment cannot be
// verified, so the check fails closed.
func (m *Machine) namedSpawn() {
	go m.work() // want `go statement spawns a named function`
}

// suppressed documents a deliberate exception.
func (m *Machine) suppressed() {
	//lint:ignore gorecover fixture: body provably cannot panic
	go func() {}()
}
