package txn

// Packages outside the executor layers are out of scope: their
// goroutines do not run query work.
func spawn() {
	go func() {}()
}
