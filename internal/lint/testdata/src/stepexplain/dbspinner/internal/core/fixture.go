package core

type Context struct{}

type NoExplainStep struct{} // want `exported step type NoExplainStep does not implement Explain`

func (s *NoExplainStep) Run(ctx *Context, self int) (int, error) { return self + 1, nil }

type FineStep struct{}

func (s *FineStep) Explain() string { return "fine" }

// Interfaces declare Explain rather than implementing it.
type Step interface {
	Explain() string
}

// Unexported types are not part of the EXPLAIN surface.
type innerStep struct{}
