package dbspinner

type resultsStore struct{}

func (resultsStore) Len() int { return 0 }

type runtimeish struct{ Results resultsStore }

func peek(rt *runtimeish) int {
	return rt.Results.Len() // want `direct access to the intermediate-result store outside the executor layers`
}
