package exec

type resultsStore struct{}

func (resultsStore) Get(name string) any { return nil }

type StoreRuntime struct{ Results resultsStore }

// The executor layers legitimately manage result lifetimes: no finding.
func get(rt *StoreRuntime, name string) any { return rt.Results.Get(name) }
