package core

type Context struct{}

func bad() bool { return false }

type SkipStep struct{}

func (s *SkipStep) Explain() string { return "skip" }

func (s *SkipStep) Run(ctx *Context, self int) (int, error) {
	if bad() {
		return self + 2, nil // want `\(SkipStep\)\.Run must return self\+1 on fall-through`
	}
	return self + 1, nil
}

type GoodStep struct{}

func (s *GoodStep) Explain() string { return "good" }

func (s *GoodStep) Run(ctx *Context, self int) (int, error) {
	f := func() (int, error) { return 99, nil } // nested literal: not a step return
	if _, err := f(); err != nil {
		return 0, err // error path: the next-step value is never used
	}
	return self + 1, nil
}

type LoopStep struct{ BodyStart int }

func (s *LoopStep) Explain() string { return "loop" }

func (s *LoopStep) Run(ctx *Context, self int) (int, error) {
	return s.BodyStart, nil // the loop operator computes jump targets
}

// Run without a self parameter is not a step implementation.
func Run(self int) (int, error) { return 5, nil }
