package distprop

import "dbspinner/internal/plan"

func infer(n plan.Node) string {
	switch n.(type) { // want `node-dispatch switch does not handle plan\.Node implementer\(s\) ForgottenNode`
	case *plan.Scan:
		return "scan"
	case *plan.Join:
		return "join"
	default:
		return "unknown"
	}
}

// Helper switches over a node subset without a fail-closed default arm
// are deliberately partial, not dispatches.
func describe(n plan.Node) string {
	switch n.(type) {
	case *plan.Scan:
		return "scan"
	case *plan.Join:
		return "join"
	}
	return ""
}
