// Fixture copy of the plan package: the distprop analyzer enumerates
// plan.Node implementers by method shape from the sibling plan
// directory of the package under analysis.
package plan

type ColInfo struct{ Table, Name string }

type Node interface {
	Columns() []ColInfo
	Explain() string
	Children() []Node
}

type Scan struct{}

func (s *Scan) Columns() []ColInfo { return nil }
func (s *Scan) Explain() string    { return "Scan" }
func (s *Scan) Children() []Node   { return nil }

type Join struct{}

func (j *Join) Columns() []ColInfo { return nil }
func (j *Join) Explain() string    { return "Join" }
func (j *Join) Children() []Node   { return nil }

// ForgottenNode is a Node the incomplete dispatch below forgets.
type ForgottenNode struct{}

func (f *ForgottenNode) Columns() []ColInfo { return nil }
func (f *ForgottenNode) Explain() string    { return "Forgotten" }
func (f *ForgottenNode) Children() []Node   { return nil }

// Planner is not a Node: it lacks a Children method.
type Planner struct{}

func (p *Planner) Columns() []ColInfo { return nil }
func (p *Planner) Explain() string    { return "planner" }
