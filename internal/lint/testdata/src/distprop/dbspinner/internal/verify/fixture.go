package verify

import "dbspinner/internal/plan"

// A complete dispatch — every Node implementer in the fixture plan
// package handled, plus the fail-closed default arm — is clean.
func infer(n plan.Node) string {
	switch n.(type) {
	case *plan.Scan:
		return "scan"
	case *plan.Join:
		return "join"
	case *plan.ForgottenNode:
		return "forgotten"
	default:
		return ""
	}
}
