package core

import (
	"errors"
	"fmt"
)

func f(name string) error {
	if name == "" {
		return errors.New("missing name") // want `errors.New message carries no step, CTE or table name`
	}
	if name == "x" {
		return fmt.Errorf("bad input") // want `fmt.Errorf message carries no step, CTE or table name`
	}
	if name == "y" {
		//lint:ignore coreerrors statement-level error, nothing is in scope yet
		return errors.New("suppressed by directive")
	}
	// %% alone interpolates nothing; a real verb does.
	return fmt.Errorf("cte %s: only 100%% done", name)
}
