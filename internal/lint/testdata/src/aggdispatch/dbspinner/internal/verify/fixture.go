package verify

// A complete dispatch — every name the fixture ast package recognizes,
// plus the fail-closed default arm — is clean.
func reprove(name string) string {
	switch name {
	case "SUM", "COUNT", "AVG":
		return "invertible"
	case "MIN", "MAX":
		return "monotone"
	case "MEDIAN":
		return "holistic"
	default:
		return "holistic"
	}
}
