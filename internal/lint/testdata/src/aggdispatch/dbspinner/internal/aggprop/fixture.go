package aggprop

// classify forgets MEDIAN, which the fixture ast package recognizes:
// every MEDIAN query would silently fall into the holistic default arm
// and lose maintenance.
func classify(name string) string {
	switch name { // want `aggregate-dispatch switch does not handle recognized aggregate\(s\) MEDIAN`
	case "SUM", "COUNT", "AVG":
		return "invertible"
	case "MIN", "MAX":
		return "monotone"
	default:
		return "holistic"
	}
}

// Switches over aggregate names without a fail-closed default arm are
// deliberately partial, not dispatches.
func isExtreme(name string) bool {
	switch name {
	case "MIN", "MAX":
		return true
	}
	return false
}

// Switches whose string cases are not aggregate names are unrelated.
func direction(envelope string) int {
	switch envelope {
	case "LEAST":
		return -1
	case "GREATEST":
		return 1
	default:
		return 0
	}
}
