// Fixture copy of the ast package: the aggdispatch analyzer
// enumerates the recognized aggregate functions from the
// aggregateNames map literal in the sibling ast directory of the
// package under analysis.
package ast

import "strings"

// aggregateNames is the set of recognized aggregate functions. MEDIAN
// is the name the incomplete dispatch below forgets.
var aggregateNames = map[string]bool{
	"SUM": true, "COUNT": true, "MIN": true, "MAX": true, "AVG": true, "MEDIAN": true,
}

// IsAggregateName reports whether the (uppercased) function name is an
// aggregate.
func IsAggregateName(name string) bool { return aggregateNames[strings.ToUpper(name)] }
