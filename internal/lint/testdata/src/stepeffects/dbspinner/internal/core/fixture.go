package core

type Context struct{}

type Step interface {
	Run(ctx *Context, self int) (int, error)
	Explain() string
}

type MaterializeStep struct{}

func (s *MaterializeStep) Run(ctx *Context, self int) (int, error) { return self + 1, nil }
func (s *MaterializeStep) Explain() string                         { return "materialize" }

type RenameStep struct{}

func (s *RenameStep) Run(ctx *Context, self int) (int, error) { return self + 1, nil }
func (s *RenameStep) Explain() string                         { return "rename" }

// ForgottenStep implements Step but the registry switch below does not
// handle it.
type ForgottenStep struct{}

func (s *ForgottenStep) Run(ctx *Context, self int) (int, error) { return self + 1, nil }
func (s *ForgottenStep) Explain() string                         { return "forgotten" }

// Program has a two-argument Run and an Explain, but no self
// parameter: it is not a step and needs no registry case.
type Program struct{}

func (p *Program) Run(a, b int) (int, error) { return 0, nil }
func (p *Program) Explain() string           { return "program" }

// infoFor is the registry dispatch: a binding type switch over step
// pointer types with a fail-closed default arm.
func infoFor(s Step) bool {
	switch t := s.(type) { // want `step registry does not handle core\.Step implementer\(s\) ForgottenStep`
	case *MaterializeStep:
		_ = t
	case *RenameStep:
		_ = t
	default:
		return false
	}
	return true
}

// Helper switches over a step subset without a fail-closed default arm
// are deliberately partial, not registry dispatches.
func helper(s Step) bool {
	switch s.(type) {
	case *MaterializeStep:
	case *RenameStep:
	}
	return false
}

// Non-binding switches with a default are kind tests (the cost
// estimator's shape), not the registry: they read no step fields.
func kindTest(s Step) int {
	switch s.(type) {
	case *MaterializeStep, *RenameStep:
		return 1
	default:
		return 0
	}
}

// Switches over non-step types (core walks expression and plan trees
// the same way) are not registry dispatches either, even with a
// default arm.
type scanNode struct{}
type joinNode struct{}

func walk(n interface{}) int {
	switch n.(type) {
	case *scanNode:
		return 1
	case *joinNode:
		return 2
	default:
		return 0
	}
}
