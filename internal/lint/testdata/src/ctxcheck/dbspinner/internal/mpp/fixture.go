package mpp

import "sync"

type Machine struct{ Parts int }

func (m *Machine) checkpoint() error { return nil }

// parallel consults the checkpoint before fanning out: good.
func (m *Machine) parallel(fn func(p int) error) error {
	if err := m.checkpoint(); err != nil {
		return err
	}
	var wg sync.WaitGroup
	for p := 0; p < m.Parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			_ = fn(p)
		}(p)
	}
	wg.Wait()
	return nil
}

// badParallel launches goroutines without ever polling: flagged.
func (m *Machine) badParallel(fn func(p int) error) error { // want `\(Machine\)\.badParallel launches goroutines without calling checkpoint`
	var wg sync.WaitGroup
	for p := 0; p < m.Parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			_ = fn(p)
		}(p)
	}
	wg.Wait()
	return nil
}

// gatherStats has no go statement; it need not poll.
func (m *Machine) gatherStats() int { return m.Parts }

// helper is not a Machine method; goroutines elsewhere are out of
// scope for this check.
type other struct{}

func (o *other) spawn() {
	go func() {}()
}
