package core

type Context struct{}

func (c *Context) Checkpoint(self int) error { return nil }

type GoodStep struct{}

func (s *GoodStep) Explain() string { return "good" }

func (s *GoodStep) Run(ctx *Context, self int) (int, error) {
	if err := ctx.Checkpoint(self); err != nil {
		return 0, err
	}
	return self + 1, nil
}

type BadStep struct{}

func (s *BadStep) Explain() string { return "bad" }

func (s *BadStep) Run(ctx *Context, self int) (int, error) { // want `\(BadStep\)\.Run never calls ctx\.Checkpoint`
	return self + 1, nil
}

type ClosureStep struct{}

func (s *ClosureStep) Explain() string { return "closure" }

// A checkpoint inside a nested function literal still counts: some
// steps poll from per-partition closures.
func (s *ClosureStep) Run(ctx *Context, self int) (int, error) {
	check := func() error { return ctx.Checkpoint(self) }
	if err := check(); err != nil {
		return 0, err
	}
	return self + 1, nil
}

// Run without a self parameter is not a step implementation.
func Run(n int) (int, error) { return n, nil }
