package core

type Context struct{}

type Step interface {
	Run(ctx *Context, self int) (int, error)
	Explain() string
}

type MaterializeStep struct{}

func (s *MaterializeStep) Run(ctx *Context, self int) (int, error) { return self + 1, nil }
func (s *MaterializeStep) Explain() string                         { return "materialize" }

type LoopStep struct{ BodyStart int }

func (s *LoopStep) Run(ctx *Context, self int) (int, error) { return s.BodyStart, nil }
func (s *LoopStep) Explain() string                         { return "loop" }

// ForgottenStep implements Step but the verifier fixture's dispatch
// switch does not handle it.
type ForgottenStep struct{}

func (s *ForgottenStep) Run(ctx *Context, self int) (int, error) { return self + 1, nil }
func (s *ForgottenStep) Explain() string                         { return "forgotten" }

// Program has a two-argument Run and an Explain, but no self
// parameter: it is not a step and needs no dispatch case.
type Program struct{}

func (p *Program) Run(a, b int) (int, error) { return 0, nil }
func (p *Program) Explain() string           { return "program" }
