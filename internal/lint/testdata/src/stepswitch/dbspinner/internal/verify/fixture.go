package verify

import "dbspinner/internal/core"

func dispatch(st core.Step) {
	switch st.(type) { // want `step-dispatch switch does not handle core\.Step implementer\(s\) ForgottenStep`
	case *core.MaterializeStep:
	case *core.LoopStep:
	default:
	}
}

// Helper switches over a step subset without a fail-closed default arm
// are deliberately partial, not dispatches.
func partial(st core.Step) {
	switch st.(type) {
	case *core.MaterializeStep:
	case *core.LoopStep:
	}
}
