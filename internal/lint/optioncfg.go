package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// OptionCfg checks that every engine Config knob is translated into
// core.Options at the single translation point. The engine's public
// Config and the rewrite's core.Options are separate types by design
// (the public API must not leak internal knobs), connected by exactly
// one function returning core.Options. A Config field added without a
// line there is a knob users can set that silently does nothing — the
// iteration-cap work showed exactly this hazard (Config.MaxIterations
// must reach Options.MaxIterations or the guard is never sized). The
// check is syntactic, like the rest of spinlint:
//
//   - The translation point is a function (or method) in the root
//     dbspinner package whose only result type is core.Options. More
//     than one such function splits the translation and is itself a
//     finding.
//   - A knob is translated when its field name appears as a selector
//     (.Field) anywhere in the translation function's body.
//   - The analyzer fails closed: no Config struct, no translation
//     function, or an unreadable/Options-less internal/core package
//     each produce a diagnostic instead of a silent pass.
var OptionCfg = &Analyzer{
	Name: "optioncfg",
	Doc:  "every engine Config knob must be translated into core.Options at the single translation point",
	Run:  runOptionCfg,
}

func runOptionCfg(pass *Pass) []Diagnostic {
	if normImportPath(pass.ImportPath) != "dbspinner" {
		return nil
	}
	if len(pass.Files) == 0 {
		return nil
	}
	anchor := pass.Fset.Position(pass.Files[0].Pos())

	// Config fields, with the position of the struct declaration.
	var cfgFields []string
	var cfgPos token.Position
	haveConfig := false
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "Config" {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			haveConfig = true
			cfgPos = pass.Fset.Position(ts.Pos())
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if name.IsExported() {
						cfgFields = append(cfgFields, name.Name)
					}
				}
			}
			return true
		})
	}
	if !haveConfig {
		return []Diagnostic{{Pos: anchor,
			Message: "no Config struct found in package dbspinner; the Config-to-core.Options translation cannot be checked"}}
	}

	// Translation functions: result type is exactly core.Options.
	type translator struct {
		pos  token.Position
		name string
		body *ast.BlockStmt
	}
	var translators []translator
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fieldCount(fn.Type.Results) != 1 {
				continue
			}
			sel, ok := fn.Type.Results.List[0].Type.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "core" && sel.Sel.Name == "Options" {
				translators = append(translators, translator{pass.Fset.Position(fn.Pos()), fn.Name.Name, fn.Body})
			}
		}
	}
	if len(translators) == 0 {
		return []Diagnostic{{Pos: cfgPos,
			Message: "no function returning core.Options found; Config knobs have no translation point into the rewrite options"}}
	}
	var diags []Diagnostic
	if len(translators) > 1 {
		names := make([]string, len(translators))
		for i, tr := range translators {
			names[i] = tr.name
		}
		sort.Strings(names)
		diags = append(diags, Diagnostic{Pos: translators[1].pos,
			Message: "multiple functions return core.Options (" + strings.Join(names, ", ") +
				"); the Config translation must have a single point or the knob coverage check is meaningless"})
	}

	// core.Options must actually exist; fail closed if internal/core is
	// unreadable or carries no Options struct.
	if err := coreHasOptions(pass); err != nil {
		return append(diags, Diagnostic{Pos: translators[0].pos,
			Message: "cannot confirm core.Options exists in internal/core: " + err.Error()})
	}

	// Every exported Config field must be read in the translation body.
	tr := translators[0]
	used := map[string]bool{}
	ast.Inspect(tr.body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			used[sel.Sel.Name] = true
		}
		return true
	})
	var missing []string
	for _, f := range cfgFields {
		if !used[f] {
			missing = append(missing, f)
		}
	}
	if len(missing) > 0 {
		diags = append(diags, Diagnostic{Pos: tr.pos,
			Message: "Config knob(s) " + strings.Join(missing, ", ") + " are not read by " + tr.name +
				"; setting them silently does nothing"})
	}
	return diags
}

// coreHasOptions parses internal/core (located relative to the files
// under analysis, like stepswitch's disk read) and confirms a type
// Options struct exists.
func coreHasOptions(pass *Pass) error {
	rootDir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	coreDir := filepath.Join(rootDir, "internal", "core")
	entries, err := os.ReadDir(coreDir)
	if err != nil {
		return err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(coreDir, name), nil, 0)
		if err != nil {
			return err
		}
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if ts, ok := n.(*ast.TypeSpec); ok && ts.Name.Name == "Options" {
				if _, isStruct := ts.Type.(*ast.StructType); isStruct {
					found = true
				}
			}
			return !found
		})
		if found {
			return nil
		}
	}
	return errNoOptions
}

var errNoOptions = &noOptionsError{}

type noOptionsError struct{}

func (*noOptionsError) Error() string {
	return "no 'type Options struct' declaration found under internal/core"
}
