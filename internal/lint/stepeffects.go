package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// StepEffects checks that the step registry's effect dispatch in
// internal/core handles every type implementing core.Step. The
// registry (stepinfo.go) is the single source the effect-set
// derivation, the dataflow analysis and EXPLAIN all read from; a step
// type added to core but missing from it falls into the fail-closed
// default arm — the program then runs sequentially and unverified
// rather than incorrectly, but the omission should be caught at lint
// time, not discovered as a silently disabled optimization. The check
// mirrors stepswitch (which guards the verifier's independent
// dispatches) and is syntactic:
//
//   - A Step implementer is a type in the analyzed core package with a
//     Run method of two parameters (the second named self) and two
//     results, and an Explain method of no parameters and one result.
//   - A registry dispatch is a binding type switch (`switch t :=
//     s.(type)`) in internal/core with a default clause and at least
//     two `*X` case types whose names are Step implementers. The
//     binding separates the registry — which reads every step's fields
//     — from core's expression- and plan-walking switches and from
//     deliberately partial kind tests like the cost estimator's, which
//     switch without binding.
//
// Unlike stepswitch, the implementers come from the files under
// analysis themselves: the dispatch lives in the same package.
var StepEffects = &Analyzer{
	Name: "stepeffects",
	Doc:  "the core step registry's effect dispatch must handle every core.Step implementer",
	Run:  runStepEffects,
}

func runStepEffects(pass *Pass) []Diagnostic {
	if !isCorePackage(pass) {
		return nil
	}

	steps := map[string]bool{}
	runs := map[string]bool{}
	explains := map[string]bool{}
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil {
				continue
			}
			recv := receiverTypeName(fn)
			if recv == "" {
				continue
			}
			switch fn.Name.Name {
			case "Run":
				if fieldCount(fn.Type.Params) == 2 && fieldCount(fn.Type.Results) == 2 && hasSelfParam(fn) {
					runs[recv] = true
				}
			case "Explain":
				if fieldCount(fn.Type.Params) == 0 && fieldCount(fn.Type.Results) == 1 {
					explains[recv] = true
				}
			}
		}
	}
	for recv := range runs {
		if explains[recv] {
			steps[recv] = true
		}
	}
	if len(steps) == 0 {
		return nil
	}

	type dispatch struct {
		pos   token.Position
		cases map[string]bool
	}
	var dispatches []dispatch
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			if _, binds := sw.Assign.(*ast.AssignStmt); !binds {
				return true
			}
			cases, hasDefault := localStepCaseTypes(sw, steps)
			if len(cases) >= 2 && hasDefault {
				dispatches = append(dispatches, dispatch{pass.Fset.Position(sw.Pos()), cases})
			}
			return true
		})
	}
	if len(dispatches) == 0 {
		if len(pass.Files) == 0 {
			return nil
		}
		return []Diagnostic{{
			Pos: pass.Fset.Position(pass.Files[0].Pos()),
			Message: "no step-registry type switch found (a type switch over *Step types with a " +
				"default clause); effect sets cannot be derived and every program runs sequentially",
		}}
	}

	var diags []Diagnostic
	for _, d := range dispatches {
		var missing []string
		for s := range steps {
			if !d.cases[s] {
				missing = append(missing, s)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			diags = append(diags, Diagnostic{
				Pos: d.pos,
				Message: "step registry does not handle core.Step implementer(s) " +
					strings.Join(missing, ", ") + "; their effect sets would never be derived",
			})
		}
	}
	return diags
}

// localStepCaseTypes collects the `X` of every `case *X:` clause whose
// name is a known Step implementer, and whether the switch has a
// default clause.
func localStepCaseTypes(sw *ast.TypeSwitchStmt, steps map[string]bool) (map[string]bool, bool) {
	cases := map[string]bool{}
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, t := range cc.List {
			star, ok := t.(*ast.StarExpr)
			if !ok {
				continue
			}
			if id, ok := star.X.(*ast.Ident); ok && steps[id.Name] {
				cases[id.Name] = true
			}
		}
	}
	return cases, hasDefault
}
