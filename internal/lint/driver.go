package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the command-line protocol `go vet -vettool=`
// expects of an analysis tool (the same contract as
// golang.org/x/tools/go/analysis/unitchecker, re-implemented on the
// standard library so the repository stays dependency-free):
//
//	spinlint -V=full      print a version line with a content hash,
//	                      used by the build cache
//	spinlint -flags       describe supported flags as JSON
//	spinlint unit.cfg     analyze the compilation unit described by
//	                      the JSON config the go command wrote
//
// plus a standalone mode for humans: `spinlint ./...` or
// `spinlint dir...` walks the module and analyzes every package.

// unitConfig is the subset of the go command's vet config this tool
// consumes (the file contains more fields; unknown ones are ignored).
type unitConfig struct {
	ImportPath                string
	GoFiles                   []string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the spinlint entry point. It returns the process exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			return printVersion(stdout, stderr)
		case args[0] == "-flags":
			// The go command parses this to split tool flags from
			// package patterns; spinlint defines no analyzer flags.
			fmt.Fprintln(stdout, `[{"Name":"V","Bool":true,"Usage":"print version and exit"},{"Name":"flags","Bool":true,"Usage":"print analyzer flags in JSON"}]`)
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runUnit(args[0], stderr)
		}
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	return runStandalone(args, stderr)
}

// printVersion emits the -V=full line: the executable path and a hash
// of its contents, which the go command folds into the build cache key
// so results are invalidated when the tool changes.
func printVersion(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(stderr, "spinlint:", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(stderr, "spinlint:", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(stderr, "spinlint:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	return 0
}

// runUnit analyzes one compilation unit described by a vet config file.
func runUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "spinlint:", err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "spinlint: cannot decode vet config %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command expects a facts file for downstream units even
	// though these analyzers produce no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, "spinlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Facts-only run for a dependency: nothing to do.
		return 0
	}

	diags, err := analyzeFiles(cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "spinlint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// analyzeFiles parses a package's files and runs every analyzer.
func analyzeFiles(importPath string, goFiles []string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return Check(&Pass{Fset: fset, Files: files, ImportPath: importPath}), nil
}

// ---------------------------------------------------------------------
// Standalone mode
// ---------------------------------------------------------------------

// runStandalone analyzes package directories directly (no go command).
// Arguments are directories; the pattern "dir/..." recurses.
func runStandalone(args []string, stderr io.Writer) int {
	module, root, err := moduleInfo()
	if err != nil {
		fmt.Fprintln(stderr, "spinlint:", err)
		return 1
	}
	dirSet := map[string]bool{}
	for _, arg := range args {
		recursive := false
		if strings.HasSuffix(arg, "/...") || arg == "..." {
			recursive = true
			arg = strings.TrimSuffix(strings.TrimSuffix(arg, "..."), "/")
			if arg == "" {
				arg = "."
			}
		}
		if !recursive {
			dirSet[filepath.Clean(arg)] = true
			continue
		}
		err := filepath.WalkDir(arg, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
					return filepath.SkipDir
				}
				dirSet[filepath.Clean(path)] = true
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(stderr, "spinlint:", err)
			return 1
		}
	}

	exit := 0
	for _, dir := range sortedKeys(dirSet) {
		diags, err := analyzeDir(module, root, dir)
		if err != nil {
			fmt.Fprintln(stderr, "spinlint:", err)
			exit = 1
			continue
		}
		for _, d := range diags {
			fmt.Fprintf(stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Check)
			exit = 1
		}
	}
	return exit
}

// analyzeDir lints the package in one directory (if any).
func analyzeDir(module, root, dir string) ([]Diagnostic, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, filepath.Join(dir, e.Name()))
		}
	}
	if len(goFiles) == 0 {
		return nil, nil
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		return nil, err
	}
	importPath := module
	if rel != "." {
		importPath = module + "/" + filepath.ToSlash(rel)
	}
	return analyzeFiles(importPath, goFiles)
}

// moduleInfo finds the enclosing go.mod and returns (module path,
// module root directory).
func moduleInfo() (string, string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest), dir, nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
