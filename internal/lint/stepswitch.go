package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// StepSwitch checks that the verifier's step-dispatch switch handles
// every type in internal/core that implements core.Step. The verifier
// simulates programs by switching on the concrete step type; a step
// type added to core but not to the dispatch falls into the default
// arm and every program using it is rejected as "unknown step" — or,
// worse, a partial copy of the dispatch silently skips the step's
// reads and writes. The check is syntactic, like the rest of spinlint:
//
//   - A dispatch switch is a type switch in dbspinner/internal/verify
//     with at least two `*core.X` case types and a default clause (the
//     fail-closed arm). Partial switches without a default — helpers
//     that deliberately look at a step subset — are not dispatches.
//   - A Step implementer is a type in internal/core with both a
//     Run method of two parameters (the second named self, the step
//     counter convention steprun also keys on) and two results, and an
//     Explain method of no parameters and one result (the Step
//     interface, matched shape-wise because spinlint does not
//     type-check).
//
// The core sources are located on disk relative to the verify files
// being analyzed; if they cannot be read the analyzer fails closed
// with a diagnostic rather than silently passing.
var StepSwitch = &Analyzer{
	Name: "stepswitch",
	Doc:  "the verifier's step-dispatch switch must handle every core.Step implementer",
	Run:  runStepSwitch,
}

func runStepSwitch(pass *Pass) []Diagnostic {
	if normImportPath(pass.ImportPath) != "dbspinner/internal/verify" {
		return nil
	}

	type dispatch struct {
		pos   token.Position
		cases map[string]bool
	}
	var dispatches []dispatch
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			cases, hasDefault := coreCaseTypes(sw)
			if len(cases) >= 2 && hasDefault {
				dispatches = append(dispatches, dispatch{pass.Fset.Position(sw.Pos()), cases})
			}
			return true
		})
	}
	if len(dispatches) == 0 {
		// No file position to anchor to would mean no files at all;
		// anchor the finding to the first file.
		if len(pass.Files) == 0 {
			return nil
		}
		return []Diagnostic{{
			Pos: pass.Fset.Position(pass.Files[0].Pos()),
			Message: "no step-dispatch type switch found (a type switch over *core step types " +
				"with a default clause); the verifier cannot be checked for step coverage",
		}}
	}

	steps, err := coreStepImplementers(pass)
	if err != nil {
		return []Diagnostic{{
			Pos:     dispatches[0].pos,
			Message: "cannot read internal/core to enumerate step types: " + err.Error(),
		}}
	}

	var diags []Diagnostic
	for _, d := range dispatches {
		var missing []string
		for _, s := range steps {
			if !d.cases[s] {
				missing = append(missing, s)
			}
		}
		if len(missing) > 0 {
			diags = append(diags, Diagnostic{
				Pos: d.pos,
				Message: "step-dispatch switch does not handle core.Step implementer(s) " +
					strings.Join(missing, ", ") + "; their reads and writes would not be simulated",
			})
		}
	}
	return diags
}

// coreCaseTypes collects the `X` of every `case *core.X:` clause of a
// type switch, and whether the switch has a default clause.
func coreCaseTypes(sw *ast.TypeSwitchStmt) (map[string]bool, bool) {
	cases := map[string]bool{}
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, t := range cc.List {
			star, ok := t.(*ast.StarExpr)
			if !ok {
				continue
			}
			sel, ok := star.X.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "core" {
				cases[sel.Sel.Name] = true
			}
		}
	}
	return cases, hasDefault
}

// coreStepImplementers parses the internal/core package (located as a
// sibling of the directory holding the files under analysis) and
// returns every type with Step-shaped Run and Explain methods, sorted.
func coreStepImplementers(pass *Pass) ([]string, error) {
	if len(pass.Files) == 0 {
		return nil, nil
	}
	verifyDir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	coreDir := filepath.Join(verifyDir, "..", "core")
	entries, err := os.ReadDir(coreDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	runs := map[string]bool{}
	explains := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(coreDir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil {
				continue
			}
			recv := receiverTypeName(fn)
			if recv == "" {
				continue
			}
			switch fn.Name.Name {
			case "Run":
				// The self parameter (the step-program counter) separates
				// step Run methods from other two-argument Runs, the same
				// convention the steprun analyzer keys on.
				if fieldCount(fn.Type.Params) == 2 && fieldCount(fn.Type.Results) == 2 && hasSelfParam(fn) {
					runs[recv] = true
				}
			case "Explain":
				if fieldCount(fn.Type.Params) == 0 && fieldCount(fn.Type.Results) == 1 {
					explains[recv] = true
				}
			}
		}
	}
	var out []string
	for recv := range runs {
		if explains[recv] {
			out = append(out, recv)
		}
	}
	sort.Strings(out)
	return out, nil
}

// fieldCount counts the values of a field list (a field with n names
// counts n times; an unnamed field counts once).
func fieldCount(fl *ast.FieldList) int {
	if fl == nil {
		return 0
	}
	n := 0
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}
