package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// This file is a standard-library emulation of
// golang.org/x/tools/go/analysis/analysistest: every analyzer has a
// fixture tree under testdata/src/<analyzer>/, laid out by import path,
// and expectations are `// want "regexp"` comments on the flagged
// lines. The fixtures run through the same Check pipeline as
// production code, so //lint:ignore directives and the _test.go
// exemption behave exactly as they do under `make lint`.

// runFixtures analyzes each import path under testdata/src/<a.Name>/
// and matches a's findings against the fixtures' want comments.
func runFixtures(t *testing.T, a *Analyzer, importPaths ...string) {
	t.Helper()
	root := filepath.Join("testdata", "src", a.Name)
	for _, ip := range importPaths {
		t.Run(ip, func(t *testing.T) {
			checkFixturePackage(t, a, root, ip)
		})
	}
}

type lineKey struct {
	file string
	line int
}

func checkFixturePackage(t *testing.T, a *Analyzer, root, importPath string) {
	t.Helper()
	dir := filepath.Join(root, filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture package %s: %v", importPath, err)
	}
	fset := token.NewFileSet()
	pass := &Pass{Fset: fset, ImportPath: importPath}
	wants := map[lineKey][]*regexp.Regexp{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		pass.Files = append(pass.Files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				for _, re := range parseWants(t, path, pos.Line, c.Text) {
					k := lineKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	if len(pass.Files) == 0 {
		t.Fatalf("fixture package %s has no Go files", importPath)
	}

	got := map[lineKey][]Diagnostic{}
	for _, d := range Check(pass) {
		if d.Check != a.Name {
			continue // fixtures assert one analyzer, like analysistest
		}
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d)
	}

	for k, res := range wants {
		diags := got[k]
		if len(diags) != len(res) {
			t.Errorf("%s:%d: got %d finding(s), want %d: %v", k.file, k.line, len(diags), len(res), diags)
			continue
		}
		for i, re := range res {
			if !re.MatchString(diags[i].Message) {
				t.Errorf("%s:%d: finding %q does not match want %q", k.file, k.line, diags[i].Message, re)
			}
		}
	}
	for k, diags := range got {
		if _, ok := wants[k]; !ok {
			t.Errorf("%s:%d: unexpected finding(s): %v", k.file, k.line, diags)
		}
	}
}

// parseWants extracts the expectation regexps of one `// want ...`
// comment. Both quoted ("...") and backquoted (`...`) forms are
// accepted, several per comment, exactly like analysistest.
func parseWants(t *testing.T, file string, line int, comment string) []*regexp.Regexp {
	t.Helper()
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil
	}
	var out []*regexp.Regexp
	for _, tok := range wantTokenRE.FindAllString(rest, -1) {
		unq, err := strconv.Unquote(tok)
		if err != nil {
			t.Fatalf("%s:%d: cannot unquote want token %s: %v", file, line, tok, err)
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %s: %v", file, line, tok, err)
		}
		out = append(out, re)
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: want comment carries no pattern", file, line)
	}
	return out
}

var wantTokenRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func TestStepRunFixtures(t *testing.T) {
	runFixtures(t, StepRun, "dbspinner/internal/core")
}

func TestResultStoreFixtures(t *testing.T) {
	runFixtures(t, ResultStore, "dbspinner", "dbspinner/internal/exec")
}

func TestStepExplainFixtures(t *testing.T) {
	runFixtures(t, StepExplain, "dbspinner/internal/core")
}

func TestCoreErrorsFixtures(t *testing.T) {
	runFixtures(t, CoreErrors, "dbspinner/internal/core")
}

func TestStepSwitchFixtures(t *testing.T) {
	runFixtures(t, StepSwitch, "dbspinner/internal/verify")
}

func TestStepEffectsFixtures(t *testing.T) {
	runFixtures(t, StepEffects, "dbspinner/internal/core")
}

func TestOptionCfgFixtures(t *testing.T) {
	runFixtures(t, OptionCfg, "dbspinner")
}

func TestCtxcheckFixtures(t *testing.T) {
	runFixtures(t, Ctxcheck, "dbspinner/internal/core", "dbspinner/internal/mpp")
}

func TestDistPropFixtures(t *testing.T) {
	runFixtures(t, DistProp, "dbspinner/internal/distprop", "dbspinner/internal/verify")
}

func TestAggDispatchFixtures(t *testing.T) {
	runFixtures(t, AggDispatch, "dbspinner/internal/aggprop", "dbspinner/internal/verify")
}

func TestGoRecoverFixtures(t *testing.T) {
	runFixtures(t, GoRecover, "dbspinner/internal/mpp", "dbspinner/internal/txn")
}

// The harness itself must reject malformed fixtures rather than pass
// vacuously: a want comment with no parseable pattern is a test error.
func TestParseWants(t *testing.T) {
	re := parseWants(t, "x.go", 1, "// want `a b` \"c\\\"d\"")
	if len(re) != 2 || re[0].String() != "a b" || re[1].String() != `c"d` {
		t.Fatalf("parseWants = %v", re)
	}
	if parseWants(t, "x.go", 1, "// plain comment") != nil {
		t.Fatal("non-want comment must yield nothing")
	}
	var patterns []string
	for _, tok := range wantTokenRE.FindAllString("`x` junk \"y\"", -1) {
		patterns = append(patterns, tok)
	}
	if fmt.Sprint(patterns) != "[`x` \"y\"]" {
		t.Fatalf("tokenizer = %v", patterns)
	}
}
