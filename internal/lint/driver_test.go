package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMainVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-V=full"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	// The go command requires the "buildID=" marker to cache vet results.
	if !strings.Contains(out.String(), " version devel comments-go-here buildID=") {
		t.Errorf("unexpected -V=full output %q", out.String())
	}
}

func TestMainFlagsIsJSON(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-flags"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	var flags []map[string]any
	if err := json.Unmarshal(out.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, out.String())
	}
}

// writeCfg marshals a vet config for one synthetic core package file.
func writeCfg(t *testing.T, dir string, cfg unitConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

const badCoreSrc = `package core

import "errors"

func f() error { return errors.New("nope") }
`

func TestMainUnitModeReportsDiagnostics(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "core.go")
	if err := os.WriteFile(src, []byte(badCoreSrc), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "out.vetx")
	cfg := writeCfg(t, dir, unitConfig{
		ImportPath: "dbspinner/internal/core",
		GoFiles:    []string{src},
		VetxOutput: vetx,
	})

	var out, errb bytes.Buffer
	if code := Main([]string{cfg}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "core.go:5:") || !strings.Contains(errb.String(), "errors.New") {
		t.Errorf("diagnostic missing position or message: %q", errb.String())
	}
	// The facts file must exist even though no facts are produced, or
	// the go command reports the tool as failed.
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("VetxOutput not written: %v", err)
	}
}

func TestMainUnitModeVetxOnlySkipsAnalysis(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "core.go")
	if err := os.WriteFile(src, []byte(badCoreSrc), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "out.vetx")
	cfg := writeCfg(t, dir, unitConfig{
		ImportPath: "dbspinner/internal/core",
		GoFiles:    []string{src},
		VetxOnly:   true,
		VetxOutput: vetx,
	})

	var out, errb bytes.Buffer
	if code := Main([]string{cfg}, &out, &errb); code != 0 {
		t.Fatalf("VetxOnly run must succeed without analyzing; exit %d, stderr %q", code, errb.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("VetxOutput not written: %v", err)
	}
}

func TestMainUnitModeCleanPackage(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "core.go")
	clean := `package core

import "fmt"

func f(name string) error { return fmt.Errorf("cte %s: bad", name) }
`
	if err := os.WriteFile(src, []byte(clean), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg := writeCfg(t, dir, unitConfig{
		ImportPath: "dbspinner/internal/core",
		GoFiles:    []string{src},
	})
	var out, errb bytes.Buffer
	if code := Main([]string{cfg}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
}

func TestMainUnitModeSucceedOnTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "broken.go")
	if err := os.WriteFile(src, []byte("package core\nfunc {"), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg := writeCfg(t, dir, unitConfig{
		ImportPath:                "dbspinner/internal/core",
		GoFiles:                   []string{src},
		SucceedOnTypecheckFailure: true,
	})
	var out, errb bytes.Buffer
	if code := Main([]string{cfg}, &out, &errb); code != 0 {
		t.Fatalf("exit %d with SucceedOnTypecheckFailure, stderr %q", code, errb.String())
	}
}

func TestModuleInfoFindsRepoModule(t *testing.T) {
	module, root, err := moduleInfo()
	if err != nil {
		t.Fatal(err)
	}
	if module != "dbspinner" {
		t.Errorf("module = %q, want dbspinner", module)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("root %q has no go.mod: %v", root, err)
	}
}
