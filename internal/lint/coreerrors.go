package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// CoreErrors requires errors constructed inside internal/core to carry
// context. The rewrite expands several CTEs into one flat program; an
// error that names no step, CTE or table ("missing ITERATE parts") is
// undebuggable once surfaced from a 40-step plan. The syntactic proxy:
// the message must interpolate something — a format string with at
// least one verb. errors.New and verb-less fmt.Errorf are flagged.
// Statement-level errors raised before any CTE is in scope carry a
// //lint:ignore coreerrors <why> suppression.
var CoreErrors = &Analyzer{
	Name: "coreerrors",
	Doc:  "errors in internal/core must name the step, CTE or table involved",
	Run:  runCoreErrors,
}

func runCoreErrors(pass *Pass) []Diagnostic {
	if !isCorePackage(pass) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || len(call.Args) == 0 {
				return true
			}
			var kind string
			switch {
			case pkg.Name == "errors" && sel.Sel.Name == "New":
				kind = "errors.New"
			case pkg.Name == "fmt" && sel.Sel.Name == "Errorf":
				kind = "fmt.Errorf"
			default:
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true // non-literal format: assume it carries context
			}
			if kind == "fmt.Errorf" && hasVerb(lit.Value) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos: position(pass, call),
				Message: kind + " message carries no step, CTE or table name; interpolate the context " +
					"(or add //lint:ignore coreerrors <why> for statement-level errors)",
			})
			return true
		})
	}
	return diags
}

// hasVerb reports whether a format string literal interpolates at
// least one value (%% escapes do not count).
func hasVerb(lit string) bool {
	s := strings.ReplaceAll(lit, "%%", "")
	return strings.Contains(s, "%")
}
