// Package lint implements spinlint, the repository's custom static
// analyzers, plus the minimal driver machinery needed to run them both
// standalone and under `go vet -vettool=` (the unitchecker command-line
// protocol), without depending on golang.org/x/tools.
//
// The analyzers encode invariants of this codebase that ordinary vet
// cannot know:
//
//   - steprun: a core.Step's Run must return self+1 on fall-through;
//     only the loop operator computes jump targets. A step that returns
//     anything else silently re-executes or skips program steps.
//   - resultstore: the intermediate-result store (StoreRuntime.Results)
//     may only be touched by the executor layers; everything else must
//     go through plans or the engine API, or result lifetimes and the
//     verifier's model of them diverge.
//   - stepexplain: every exported step type must implement Explain —
//     EXPLAIN output and verifier diagnostics cite step indices, which
//     is useless if a step renders as nothing.
//   - coreerrors: errors raised inside internal/core must carry the
//     step, CTE or table name; a bare message is undebuggable once the
//     rewrite has expanded several CTEs.
//   - stepswitch: the verifier's step-dispatch switch must handle
//     every core.Step implementer; a step type missing from it falls
//     into the fail-closed default arm and its reads and writes are
//     never simulated.
//   - stepeffects: the core step registry's effect dispatch
//     (stepinfo.go) must handle every core.Step implementer; a step
//     missing from it derives no effect set, so every program carrying
//     it silently loses its schedule and the dataflow analysis never
//     sees its reads and writes.
//   - optioncfg: every engine Config knob must be read by the single
//     function translating Config into core.Options; a knob missing
//     there is a public setting that silently does nothing.
//   - ctxcheck: every core Step.Run implementer must call the
//     cancellation checkpoint, and every mpp.Machine method that fans
//     out goroutines must consult the machine checkpoint first;
//     cooperative cancellation is only as good as its least
//     cooperative site.
//   - distprop: the partition-property dispatches — the producer's in
//     internal/distprop and the verifier's independent re-derivation —
//     must each handle every plan.Node implementer; a node type missing
//     from one falls into the fail-closed default arm and silently
//     drops every property flowing through it.
//   - gorecover: every goroutine spawned in the executor layers
//     (core, exec, mpp) must run its body under faultinject.Contain;
//     an uncontained panic in a worker goroutine crashes the whole
//     process instead of failing the one query that caused it.
//   - aggdispatch: the aggregate-classification dispatches — the
//     decomposability analysis in internal/aggprop and the verifier's
//     independent re-derivation — must each handle every name
//     ast.IsAggregateName accepts; a name missing from one falls into
//     the fail-closed default arm (Holistic) and silently disables
//     incremental maintenance for every query using it.
//
// All checks are purely syntactic (go/ast, no go/types), which keeps
// the tool dependency-free and fast; the cost is a small set of
// documented heuristics. Findings can be suppressed with
//
//	//lint:ignore <check> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos     token.Position
	Check   string // analyzer name
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Check)
}

// Pass describes one package being analyzed.
type Pass struct {
	Fset       *token.FileSet
	Files      []*ast.File
	ImportPath string
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) []Diagnostic
}

// Analyzers returns every spinlint check.
func Analyzers() []*Analyzer {
	return []*Analyzer{StepRun, ResultStore, StepExplain, CoreErrors, StepSwitch, StepEffects, OptionCfg, Ctxcheck, DistProp, AggDispatch, GoRecover}
}

// Check runs every analyzer over the pass, drops findings in _test.go
// files (tests deliberately build broken fixtures) and findings
// suppressed by //lint:ignore comments, and returns the rest sorted by
// position.
func Check(pass *Pass) []Diagnostic {
	ignores := collectIgnores(pass)
	var out []Diagnostic
	for _, a := range Analyzers() {
		for _, d := range a.Run(pass) {
			d.Check = a.Name
			if strings.HasSuffix(d.Pos.Filename, "_test.go") {
				continue
			}
			if ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, a.Name}] ||
				ignores[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, a.Name}] {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Check < out[j].Check
	})
	return out
}

type ignoreKey struct {
	file  string
	line  int
	check string
}

// collectIgnores indexes //lint:ignore <check> <reason> comments by
// (file, line, check). A directive without a reason is not honored.
func collectIgnores(pass *Pass) map[ignoreKey]bool {
	out := map[ignoreKey]bool{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				fields := strings.Fields(text)
				// fields: ["lint:ignore", check, reason...]
				if len(fields) < 3 {
					continue // no reason given: directive ignored
				}
				pos := pass.Fset.Position(c.Pos())
				out[ignoreKey{pos.Filename, pos.Line, fields[1]}] = true
			}
		}
	}
	return out
}

// normImportPath strips the test-variant suffix go vet uses for
// packages built with their tests ("pkg [pkg.test]").
func normImportPath(p string) string {
	if i := strings.Index(p, " ["); i >= 0 {
		return p[:i]
	}
	return p
}

// isCorePackage reports whether the pass is the step-program package.
func isCorePackage(pass *Pass) bool {
	return normImportPath(pass.ImportPath) == "dbspinner/internal/core"
}

func position(pass *Pass, n ast.Node) token.Position {
	return pass.Fset.Position(n.Pos())
}
