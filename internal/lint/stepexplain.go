package lint

import (
	"go/ast"
	"strings"
)

// StepExplain requires every exported *Step type in internal/core to
// implement Explain. EXPLAIN output and verifier diagnostics identify
// steps by index into the rendered program; a step type without Explain
// breaks that correspondence (and cannot satisfy the Step interface,
// but the compiler only notices once the type is actually stored in a
// program — this catches it at the declaration).
var StepExplain = &Analyzer{
	Name: "stepexplain",
	Doc:  "every exported Step type must implement Explain",
	Run:  runStepExplain,
}

func runStepExplain(pass *Pass) []Diagnostic {
	if !isCorePackage(pass) {
		return nil
	}
	type typeDecl struct {
		name string
		spec *ast.TypeSpec
	}
	var stepTypes []typeDecl
	explainers := map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					name := ts.Name.Name
					if ast.IsExported(name) && strings.HasSuffix(name, "Step") {
						// Only concrete types need the method; an interface
						// named ...Step declares it instead.
						if _, isIface := ts.Type.(*ast.InterfaceType); !isIface {
							stepTypes = append(stepTypes, typeDecl{name, ts})
						}
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name == "Explain" && d.Recv != nil {
					explainers[receiverTypeName(d)] = true
				}
			}
		}
	}
	var diags []Diagnostic
	for _, t := range stepTypes {
		if !explainers[t.name] {
			diags = append(diags, Diagnostic{
				Pos:     position(pass, t.spec.Name),
				Message: "exported step type " + t.name + " does not implement Explain; EXPLAIN and verifier output would skip it",
			})
		}
	}
	return diags
}
