package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DistProp checks that the partition-property analysis and its
// verifier-side re-derivation each dispatch over every type in
// internal/plan that implements plan.Node. Both passes infer
// distribution properties by switching on the concrete node type with
// a fail-closed default arm (Unknown); a node type added to plan but
// not to a dispatch silently loses every property flowing through it —
// sound but quietly disabling shuffle elision — and, worse, a node
// missing from only one of the two switches makes the producer and the
// checker disagree on valid plans. The check is syntactic, like the
// rest of spinlint:
//
//   - A dispatch switch is a type switch in dbspinner/internal/distprop
//     or dbspinner/internal/verify with at least two `*plan.X` case
//     types and a default clause (the fail-closed arm).
//   - A plan.Node implementer is a type in internal/plan with
//     Columns, Explain and Children methods of no parameters and one
//     result each (the Node interface, matched shape-wise because
//     spinlint does not type-check).
//
// The plan sources are located on disk relative to the files being
// analyzed; if they cannot be read the analyzer fails closed with a
// diagnostic rather than silently passing.
var DistProp = &Analyzer{
	Name: "distprop",
	Doc:  "the partition-property dispatches must handle every plan.Node implementer",
	Run:  runDistProp,
}

func runDistProp(pass *Pass) []Diagnostic {
	switch normImportPath(pass.ImportPath) {
	case "dbspinner/internal/distprop", "dbspinner/internal/verify":
	default:
		return nil
	}

	type dispatch struct {
		pos   token.Position
		cases map[string]bool
	}
	var dispatches []dispatch
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			cases, hasDefault := planCaseTypes(sw)
			if len(cases) >= 2 && hasDefault {
				dispatches = append(dispatches, dispatch{pass.Fset.Position(sw.Pos()), cases})
			}
			return true
		})
	}
	if len(dispatches) == 0 {
		if len(pass.Files) == 0 {
			return nil
		}
		return []Diagnostic{{
			Pos: pass.Fset.Position(pass.Files[0].Pos()),
			Message: "no node-dispatch type switch found (a type switch over *plan node types " +
				"with a default clause); the partition-property inference cannot be checked for node coverage",
		}}
	}

	nodes, err := planNodeImplementers(pass)
	if err != nil {
		return []Diagnostic{{
			Pos:     dispatches[0].pos,
			Message: "cannot read internal/plan to enumerate node types: " + err.Error(),
		}}
	}

	var diags []Diagnostic
	for _, d := range dispatches {
		var missing []string
		for _, n := range nodes {
			if !d.cases[n] {
				missing = append(missing, n)
			}
		}
		if len(missing) > 0 {
			diags = append(diags, Diagnostic{
				Pos: d.pos,
				Message: "node-dispatch switch does not handle plan.Node implementer(s) " +
					strings.Join(missing, ", ") + "; properties flowing through them would silently drop to Unknown",
			})
		}
	}
	return diags
}

// planCaseTypes collects the `X` of every `case *plan.X:` clause of a
// type switch, and whether the switch has a default clause.
func planCaseTypes(sw *ast.TypeSwitchStmt) (map[string]bool, bool) {
	cases := map[string]bool{}
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, t := range cc.List {
			star, ok := t.(*ast.StarExpr)
			if !ok {
				continue
			}
			sel, ok := star.X.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "plan" {
				cases[sel.Sel.Name] = true
			}
		}
	}
	return cases, hasDefault
}

// planNodeImplementers parses the internal/plan package (located as a
// sibling of the directory holding the files under analysis) and
// returns every type with Node-shaped Columns, Explain and Children
// methods, sorted.
func planNodeImplementers(pass *Pass) ([]string, error) {
	if len(pass.Files) == 0 {
		return nil, nil
	}
	selfDir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	planDir := filepath.Join(selfDir, "..", "plan")
	entries, err := os.ReadDir(planDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	methods := map[string]map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(planDir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil {
				continue
			}
			recv := receiverTypeName(fn)
			if recv == "" {
				continue
			}
			switch fn.Name.Name {
			case "Columns", "Explain", "Children":
				if fieldCount(fn.Type.Params) == 0 && fieldCount(fn.Type.Results) == 1 {
					if methods[recv] == nil {
						methods[recv] = map[string]bool{}
					}
					methods[recv][fn.Name.Name] = true
				}
			}
		}
	}
	var out []string
	for recv, m := range methods {
		if m["Columns"] && m["Explain"] && m["Children"] {
			out = append(out, recv)
		}
	}
	sort.Strings(out)
	return out, nil
}
