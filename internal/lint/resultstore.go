package lint

import (
	"go/ast"
)

// resultStoreAllowed are the layers that legitimately manage
// intermediate-result lifetimes: the storage package owns the store,
// the executors read from it, and the step program (core) and MPP
// machine create, rename and drop results as Table I prescribes.
var resultStoreAllowed = map[string]bool{
	"dbspinner/internal/storage": true,
	"dbspinner/internal/exec":    true,
	"dbspinner/internal/core":    true,
	"dbspinner/internal/mpp":     true,
	// Not an executor layer: this package's own sources walk
	// ast.ReturnStmt.Results, which the purely syntactic check cannot
	// tell apart from the result store.
	"dbspinner/internal/lint": true,
}

// ResultStore forbids touching the intermediate-result lookup store
// (the Results field of exec.StoreRuntime) outside the executor layers.
// A package that reaches into the store directly can observe or mutate
// working tables mid-program, invalidating both Program.Run's cleanup
// accounting and the verifier's liveness model. The check is syntactic:
// any selector `x.Results` outside the allowed packages is flagged.
var ResultStore = &Analyzer{
	Name: "resultstore",
	Doc:  "the intermediate-result store may only be accessed by exec/storage/core/mpp",
	Run:  runResultStore,
}

func runResultStore(pass *Pass) []Diagnostic {
	if resultStoreAllowed[normImportPath(pass.ImportPath)] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Results" {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos: position(pass, sel.Sel),
				Message: "direct access to the intermediate-result store outside the executor layers; " +
					"go through the engine or plan APIs so result lifetimes stay verifiable",
			})
			return true
		})
	}
	return diags
}
