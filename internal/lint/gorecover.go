package lint

import (
	"go/ast"
)

// goRecoverPackages are the executor layers whose goroutines run query
// work: a panic there is a query failure, and must be contained so it
// never takes down the embedding process.
var goRecoverPackages = map[string]bool{
	"dbspinner/internal/core": true,
	"dbspinner/internal/exec": true,
	"dbspinner/internal/mpp":  true,
}

// GoRecover enforces the panic-containment contract: every goroutine
// spawned inside the executor layers (core, exec, mpp) must run its
// body under faultinject.Contain, which recovers a panic into a
// structured error the query fails with. The check is syntactic and
// fail-closed: a `go` statement whose function literal never calls
// Contain is flagged, and a `go` statement spawning anything other
// than a function literal is always flagged — the containment cannot
// be seen across the call, so it must be hoisted into a literal.
// Suppress deliberate exceptions with //lint:ignore gorecover <reason>.
var GoRecover = &Analyzer{
	Name: "gorecover",
	Doc:  "goroutines in the executor layers must run their body under faultinject.Contain",
	Run:  runGoRecover,
}

func runGoRecover(pass *Pass) []Diagnostic {
	if !goRecoverPackages[normImportPath(pass.ImportPath)] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				diags = append(diags, Diagnostic{
					Pos: position(pass, g),
					Message: "go statement spawns a named function; containment cannot be verified across " +
						"the call — wrap the body in a function literal running under faultinject.Contain",
				})
				return true
			}
			if !callsSelector(lit.Body, "Contain") {
				diags = append(diags, Diagnostic{
					Pos: position(pass, g),
					Message: "goroutine body never calls faultinject.Contain; " +
						"an uncontained panic here crashes the process instead of failing the query",
				})
			}
			return true
		})
	}
	return diags
}
