package ast

import (
	"strings"
	"testing"

	"dbspinner/internal/sqltypes"
)

func col(t, n string) *ColumnRef { return &ColumnRef{Table: t, Name: n} }

func lit(i int64) *Literal { return &Literal{Value: sqltypes.NewInt(i)} }

func TestExprStrings(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{col("t", "a"), "t.a"},
		{col("", "a"), "a"},
		{lit(5), "5"},
		{&Literal{Value: sqltypes.NewString("it's")}, "'it''s'"},
		{&BinaryExpr{Op: "+", L: col("", "a"), R: lit(1)}, "(a + 1)"},
		{&UnaryExpr{Op: "NOT", E: col("", "b")}, "(NOT b)"},
		{&UnaryExpr{Op: "-", E: lit(3)}, "(-3)"},
		{&FuncCall{Name: "COUNT", Star: true}, "COUNT(*)"},
		{&FuncCall{Name: "SUM", Args: []Expr{col("", "x")}}, "SUM(x)"},
		{&FuncCall{Name: "COUNT", Args: []Expr{col("", "x")}, Distinct: true}, "COUNT(DISTINCT x)"},
		{&CaseExpr{Whens: []WhenClause{{Cond: col("", "c"), Result: lit(1)}}, Else: lit(0)}, "CASE WHEN c THEN 1 ELSE 0 END"},
		{&CastExpr{E: col("", "x"), To: sqltypes.Float}, "CAST(x AS FLOAT)"},
		{&IsNullExpr{E: col("", "x")}, "(x IS NULL)"},
		{&IsNullExpr{E: col("", "x"), Negate: true}, "(x IS NOT NULL)"},
		{&InExpr{E: col("", "x"), List: []Expr{lit(1), lit(2)}}, "(x IN (1, 2))"},
		{&BetweenExpr{E: col("", "x"), Lo: lit(1), Hi: lit(9)}, "(x BETWEEN 1 AND 9)"},
		{&Star{}, "*"},
		{&Star{Table: "t"}, "t.*"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSelectString(t *testing.T) {
	sel := &SelectStmt{
		Body: &SelectCore{
			Items: []SelectItem{{Expr: col("", "node")}, {Expr: col("", "rank"), Alias: "r"}},
			From: &JoinRef{
				Type:  LeftJoin,
				Left:  &BaseTable{Name: "pr"},
				Right: &BaseTable{Name: "edges", Alias: "e"},
				On:    &BinaryExpr{Op: "=", L: col("pr", "node"), R: col("e", "dst")},
			},
			Where:   &BinaryExpr{Op: ">", L: col("", "rank"), R: lit(0)},
			GroupBy: []Expr{col("", "node")},
			Having:  &BinaryExpr{Op: ">", L: &FuncCall{Name: "COUNT", Star: true}, R: lit(1)},
		},
		OrderBy: []OrderItem{{Expr: col("", "rank"), Desc: true}},
		Limit:   lit(10),
	}
	got := sel.String()
	for _, frag := range []string{"SELECT node, rank AS r", "LEFT JOIN edges AS e ON", "GROUP BY node", "HAVING", "ORDER BY rank DESC", "LIMIT 10"} {
		if !strings.Contains(got, frag) {
			t.Errorf("SelectStmt.String() = %q missing %q", got, frag)
		}
	}
}

func TestIterativeCTEString(t *testing.T) {
	cte := &CTE{
		Name:      "r",
		Cols:      []string{"a", "b"},
		Iterative: true,
		Init:      &SelectStmt{Body: &SelectCore{Items: []SelectItem{{Expr: lit(1)}, {Expr: lit(2)}}}},
		Iter:      &SelectStmt{Body: &SelectCore{Items: []SelectItem{{Expr: col("", "a")}, {Expr: col("", "b")}}, From: &BaseTable{Name: "r"}}},
		Until:     Termination{Type: TermMetadata, N: 10},
	}
	got := cte.String()
	for _, frag := range []string{"r (a, b) AS (", "ITERATE", "UNTIL 10 ITERATIONS"} {
		if !strings.Contains(got, frag) {
			t.Errorf("CTE.String() = %q missing %q", got, frag)
		}
	}
}

func TestTerminationString(t *testing.T) {
	cases := []struct {
		tc   Termination
		want string
	}{
		{Termination{Type: TermMetadata, N: 5}, "5 ITERATIONS"},
		{Termination{Type: TermMetadata, N: 3, CountUpdates: true}, "3 UPDATES"},
		{Termination{Type: TermData, Any: true, Expr: col("", "done")}, "ANY (done)"},
		{Termination{Type: TermData, Expr: col("", "done")}, "ALL (done)"},
		{Termination{Type: TermDelta, N: 1}, "DELTA < 1"},
	}
	for _, c := range cases {
		if got := c.tc.String(); got != c.want {
			t.Errorf("Termination.String() = %q, want %q", got, c.want)
		}
	}
	if TermMetadata.String() != "Metadata" || TermData.String() != "Data" || TermDelta.String() != "Delta" {
		t.Error("TermType.String()")
	}
}

func TestDDLDMLStrings(t *testing.T) {
	ct := &CreateTable{Name: "t", Temp: true, IfNotExists: true, Cols: []ColumnDef{
		{Name: "id", Type: sqltypes.Int, PrimaryKey: true},
		{Name: "v", Type: sqltypes.Float},
	}}
	want := "CREATE TEMP TABLE IF NOT EXISTS t (id INT PRIMARY KEY, v FLOAT)"
	if ct.String() != want {
		t.Errorf("CreateTable = %q, want %q", ct.String(), want)
	}
	if (&DropTable{Name: "t", IfExists: true}).String() != "DROP TABLE IF EXISTS t" {
		t.Error("DropTable")
	}
	ins := &Insert{Table: "t", Cols: []string{"a"}, Rows: [][]Expr{{lit(1)}, {lit(2)}}}
	if ins.String() != "INSERT INTO t (a) VALUES (1), (2)" {
		t.Errorf("Insert = %q", ins.String())
	}
	ins2 := &Insert{Table: "t", Select: &SelectStmt{Body: &SelectCore{Items: []SelectItem{{Expr: lit(1)}}}}}
	if ins2.String() != "INSERT INTO t SELECT 1" {
		t.Errorf("Insert select = %q", ins2.String())
	}
	upd := &Update{Table: "t", Sets: []Assignment{{Col: "v", Expr: lit(2)}},
		From:  &BaseTable{Name: "s"},
		Where: &BinaryExpr{Op: "=", L: col("t", "id"), R: col("s", "id")}}
	got := upd.String()
	if !strings.Contains(got, "UPDATE t SET v = 2 FROM s WHERE") {
		t.Errorf("Update = %q", got)
	}
	del := &Delete{Table: "t", Where: &BinaryExpr{Op: "=", L: col("", "id"), R: lit(1)}}
	if del.String() != "DELETE FROM t WHERE (id = 1)" {
		t.Errorf("Delete = %q", del.String())
	}
	if (&Delete{Table: "t"}).String() != "DELETE FROM t" {
		t.Error("Delete without WHERE")
	}
	ex := &Explain{Stmt: del}
	if !strings.HasPrefix(ex.String(), "EXPLAIN DELETE") {
		t.Errorf("Explain = %q", ex.String())
	}
}

func TestWalkAndClone(t *testing.T) {
	e := &BinaryExpr{Op: "AND",
		L: &BinaryExpr{Op: "=", L: col("t", "a"), R: lit(1)},
		R: &CaseExpr{
			Whens: []WhenClause{{Cond: &IsNullExpr{E: col("", "b")}, Result: &FuncCall{Name: "SUM", Args: []Expr{col("", "c")}}}},
			Else:  &CastExpr{E: &InExpr{E: col("", "d"), List: []Expr{lit(2)}}, To: sqltypes.Int},
		},
	}
	refs := ColumnRefs(e)
	if len(refs) != 4 {
		t.Errorf("ColumnRefs = %d, want 4", len(refs))
	}
	c := CloneExpr(e).(*BinaryExpr)
	if c.String() != e.String() {
		t.Errorf("clone differs: %q vs %q", c.String(), e.String())
	}
	// Mutating the clone must not touch the original.
	c.L.(*BinaryExpr).L.(*ColumnRef).Name = "zzz"
	if strings.Contains(e.String(), "zzz") {
		t.Error("CloneExpr aliases the original")
	}
}

func TestRewriteExpr(t *testing.T) {
	e := &BinaryExpr{Op: "+", L: col("old", "a"), R: &FuncCall{Name: "ABS", Args: []Expr{col("old", "b")}}}
	out := RewriteExpr(e, func(x Expr) Expr {
		if c, ok := x.(*ColumnRef); ok && c.Table == "old" {
			return &ColumnRef{Table: "new", Name: c.Name}
		}
		return x
	})
	if out.String() != "(new.a + ABS(new.b))" {
		t.Errorf("RewriteExpr = %q", out.String())
	}
	// Original untouched.
	if e.String() != "(old.a + ABS(old.b))" {
		t.Errorf("original mutated: %q", e.String())
	}
	if RewriteExpr(nil, func(x Expr) Expr { return x }) != nil {
		t.Error("nil rewrite")
	}
}

func TestHasAggregate(t *testing.T) {
	if !HasAggregate(&FuncCall{Name: "sum", Args: []Expr{col("", "x")}}) {
		t.Error("sum should be aggregate (case-insensitive)")
	}
	if HasAggregate(&FuncCall{Name: "ABS", Args: []Expr{col("", "x")}}) {
		t.Error("ABS is not aggregate")
	}
	nested := &BinaryExpr{Op: "+", L: lit(1), R: &FuncCall{Name: "COUNT", Star: true}}
	if !HasAggregate(nested) {
		t.Error("nested aggregate not found")
	}
	if !IsAggregateName("Min") || IsAggregateName("LEAST") {
		t.Error("IsAggregateName")
	}
}

func TestTableRefHelpers(t *testing.T) {
	from := &JoinRef{
		Type: LeftJoin,
		Left: &JoinRef{
			Type:  InnerJoin,
			Left:  &BaseTable{Name: "PageRank"},
			Right: &BaseTable{Name: "edges", Alias: "e"},
			On:    &BinaryExpr{Op: "=", L: col("PageRank", "node"), R: col("e", "dst")},
		},
		Right: &BaseTable{Name: "pagerank", Alias: "inc"},
		On:    &BinaryExpr{Op: "=", L: col("inc", "node"), R: col("e", "src")},
	}
	if n := len(BaseTables(from)); n != 3 {
		t.Errorf("BaseTables = %d, want 3", n)
	}
	if n := CountTableRefs(from, "pagerank"); n != 2 {
		t.Errorf("CountTableRefs(pagerank) = %d, want 2 (case-insensitive)", n)
	}
	if n := CountTableRefs(from, "edges"); n != 1 {
		t.Errorf("CountTableRefs(edges) = %d", n)
	}
	// Derived tables are searched too.
	sub := &SubqueryRef{Alias: "s", Select: &SelectStmt{Body: &SelectCore{
		Items: []SelectItem{{Expr: col("", "x")}},
		From:  &BaseTable{Name: "PageRank"},
	}}}
	if n := CountTableRefs(sub, "pagerank"); n != 1 {
		t.Errorf("CountTableRefs through subquery = %d", n)
	}
	union := &SelectStmt{Body: &UnionExpr{
		Left:  &SelectCore{Items: []SelectItem{{Expr: col("", "src")}}, From: &BaseTable{Name: "edges"}},
		Right: &SelectCore{Items: []SelectItem{{Expr: col("", "dst")}}, From: &BaseTable{Name: "edges"}},
	}}
	if n := CountStmtTableRefs(union, "edges"); n != 2 {
		t.Errorf("CountStmtTableRefs over union = %d", n)
	}
}

func TestConjuncts(t *testing.T) {
	a := &BinaryExpr{Op: "=", L: col("", "a"), R: lit(1)}
	b := &BinaryExpr{Op: ">", L: col("", "b"), R: lit(2)}
	c := &BinaryExpr{Op: "<", L: col("", "c"), R: lit(3)}
	e := &BinaryExpr{Op: "AND", L: &BinaryExpr{Op: "AND", L: a, R: b}, R: c}
	parts := SplitConjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("SplitConjuncts = %d parts", len(parts))
	}
	back := JoinConjuncts(parts)
	if back.String() != "(((a = 1) AND (b > 2)) AND (c < 3))" {
		t.Errorf("JoinConjuncts = %q", back.String())
	}
	if SplitConjuncts(nil) != nil {
		t.Error("SplitConjuncts(nil)")
	}
	if JoinConjuncts(nil) != nil {
		t.Error("JoinConjuncts(nil)")
	}
	// OR is not split.
	or := &BinaryExpr{Op: "OR", L: a, R: b}
	if len(SplitConjuncts(or)) != 1 {
		t.Error("OR should not split")
	}
}

func TestJoinTypeString(t *testing.T) {
	want := map[JoinType]string{
		InnerJoin: "JOIN", LeftJoin: "LEFT JOIN", RightJoin: "RIGHT JOIN",
		FullJoin: "FULL JOIN", CrossJoin: "CROSS JOIN",
	}
	for jt, w := range want {
		if jt.String() != w {
			t.Errorf("JoinType %d = %q", jt, jt.String())
		}
	}
}

func TestUnionString(t *testing.T) {
	u := &UnionExpr{
		Left:  &SelectCore{Items: []SelectItem{{Expr: col("", "src")}}, From: &BaseTable{Name: "edges"}},
		Right: &SelectCore{Items: []SelectItem{{Expr: col("", "dst")}}, From: &BaseTable{Name: "edges"}},
		All:   true,
	}
	if u.String() != "SELECT src FROM edges UNION ALL SELECT dst FROM edges" {
		t.Errorf("UnionExpr = %q", u.String())
	}
}
