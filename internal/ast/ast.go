// Package ast defines the abstract syntax tree produced by the parser.
// Every node can print itself back to SQL via String(), which the tests
// use for round-trip checks and EXPLAIN uses for readable predicates.
package ast

import (
	"fmt"
	"strings"

	"dbspinner/internal/sqltypes"
)

// Statement is any top-level SQL statement.
type Statement interface {
	stmt()
	String() string
}

// Expr is any scalar expression.
type Expr interface {
	expr()
	String() string
}

// TableRef is a FROM-clause item: a base table, a derived table or a
// join of two other refs.
type TableRef interface {
	tableRef()
	String() string
}

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

// ColumnRef is a possibly-qualified column reference (table.col or col).
type ColumnRef struct {
	Table string // optional qualifier
	Name  string
	// Pos is the byte offset of the reference in the source query,
	// recorded by the parser for diagnostics (evidence chains cite it).
	// 0 means unknown (hand-built AST).
	Pos int
}

func (*ColumnRef) expr() {}

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Literal is a constant value.
type Literal struct {
	Value sqltypes.Value
}

func (*Literal) expr() {}

func (l *Literal) String() string {
	switch l.Value.T {
	case sqltypes.String:
		return "'" + strings.ReplaceAll(l.Value.S, "'", "''") + "'"
	case sqltypes.Float:
		// Keep a decimal point so the literal re-parses as FLOAT (the
		// FF query depends on 1.0 staying a float to avoid integer
		// division).
		s := l.Value.String()
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	}
	return l.Value.String()
}

// BinaryExpr is a binary operation. Op is one of + - * / % = != < <= >
// >= AND OR ||.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (*BinaryExpr) expr() {}

func (b *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// UnaryExpr is NOT or unary minus.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	E  Expr
}

func (*UnaryExpr) expr() {}

func (u *UnaryExpr) String() string {
	if u.Op == "NOT" {
		return fmt.Sprintf("(NOT %s)", u.E)
	}
	return fmt.Sprintf("(-%s)", u.E)
}

// FuncCall is a function invocation: scalar (LEAST, COALESCE, ROUND, …)
// or aggregate (SUM, COUNT, MIN, MAX, AVG). Star marks COUNT(*).
type FuncCall struct {
	Name     string // uppercase
	Args     []Expr
	Star     bool
	Distinct bool
	// Pos is the byte offset of the call in the source query (0 =
	// unknown), kept for diagnostic provenance like ColumnRef.Pos.
	Pos int
}

func (*FuncCall) expr() {}

func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return f.Name + "(" + d + strings.Join(args, ", ") + ")"
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr // may be nil (implicit NULL)
}

// WhenClause is one WHEN cond THEN result arm.
type WhenClause struct {
	Cond   Expr
	Result Expr
}

func (*CaseExpr) expr() {}

func (c *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Result)
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// CastExpr is CAST(expr AS type).
type CastExpr struct {
	E  Expr
	To sqltypes.Type
}

func (*CastExpr) expr() {}

func (c *CastExpr) String() string {
	return fmt.Sprintf("CAST(%s AS %s)", c.E, c.To)
}

// IsNullExpr is expr IS [NOT] NULL.
type IsNullExpr struct {
	E      Expr
	Negate bool
}

func (*IsNullExpr) expr() {}

func (i *IsNullExpr) String() string {
	if i.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", i.E)
	}
	return fmt.Sprintf("(%s IS NULL)", i.E)
}

// InExpr is expr [NOT] IN (list...).
type InExpr struct {
	E      Expr
	List   []Expr
	Negate bool
}

func (*InExpr) expr() {}

func (i *InExpr) String() string {
	items := make([]string, len(i.List))
	for j, e := range i.List {
		items[j] = e.String()
	}
	op := "IN"
	if i.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", i.E, op, strings.Join(items, ", "))
}

// BetweenExpr is expr [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Negate    bool
}

func (*BetweenExpr) expr() {}

func (b *BetweenExpr) String() string {
	op := "BETWEEN"
	if b.Negate {
		op = "NOT BETWEEN"
	}
	return fmt.Sprintf("(%s %s %s AND %s)", b.E, op, b.Lo, b.Hi)
}

// Star is the bare * in a select list ("SELECT *" or "SELECT t.*").
type Star struct {
	Table string // optional qualifier
}

func (*Star) expr() {}

func (s *Star) String() string {
	if s.Table != "" {
		return s.Table + ".*"
	}
	return "*"
}

// ---------------------------------------------------------------------
// SELECT structure
// ---------------------------------------------------------------------

// SelectStmt is a full query: optional WITH clause, a body (possibly a
// UNION tree), ORDER BY and LIMIT.
type SelectStmt struct {
	With    *WithClause
	Body    SelectBody
	OrderBy []OrderItem
	Limit   Expr // nil when absent
	Offset  Expr // nil when absent
}

func (*SelectStmt) stmt() {}

func (s *SelectStmt) String() string {
	var b strings.Builder
	if s.With != nil {
		b.WriteString(s.With.String())
		b.WriteByte(' ')
	}
	b.WriteString(s.Body.String())
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&b, " LIMIT %s", s.Limit)
	}
	if s.Offset != nil {
		fmt.Fprintf(&b, " OFFSET %s", s.Offset)
	}
	return b.String()
}

// SelectBody is either a simple SELECT core or a UNION of two bodies.
type SelectBody interface {
	selectBody()
	String() string
}

// SelectCore is one SELECT ... FROM ... WHERE ... GROUP BY ... HAVING
// block.
type SelectCore struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef // nil for FROM-less selects (SELECT 1)
	Where    Expr
	GroupBy  []Expr
	Having   Expr
}

func (*SelectCore) selectBody() {}

func (s *SelectCore) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	if s.From != nil {
		fmt.Fprintf(&b, " FROM %s", s.From)
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		fmt.Fprintf(&b, " HAVING %s", s.Having)
	}
	return b.String()
}

// UnionExpr combines two bodies with UNION [ALL].
type UnionExpr struct {
	Left, Right SelectBody
	All         bool
}

func (*UnionExpr) selectBody() {}

func (u *UnionExpr) String() string {
	op := "UNION"
	if u.All {
		op = "UNION ALL"
	}
	return fmt.Sprintf("%s %s %s", u.Left, op, u.Right)
}

// SelectItem is one output expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

func (s SelectItem) String() string {
	if s.Alias != "" {
		return fmt.Sprintf("%s AS %s", s.Expr, s.Alias)
	}
	return s.Expr.String()
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String()
}

// ---------------------------------------------------------------------
// FROM clause
// ---------------------------------------------------------------------

// BaseTable is a named table reference with an optional alias.
type BaseTable struct {
	Name  string
	Alias string
}

func (*BaseTable) tableRef() {}

func (t *BaseTable) String() string {
	if t.Alias != "" {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

// SubqueryRef is a derived table: (SELECT ...) [AS] alias.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

func (*SubqueryRef) tableRef() {}

func (s *SubqueryRef) String() string {
	if s.Alias != "" {
		return "(" + s.Select.String() + ") AS " + s.Alias
	}
	return "(" + s.Select.String() + ")"
}

// JoinType enumerates the supported join kinds.
type JoinType uint8

// Join kinds.
const (
	InnerJoin JoinType = iota
	LeftJoin
	RightJoin
	FullJoin
	CrossJoin
)

func (j JoinType) String() string {
	switch j {
	case InnerJoin:
		return "JOIN"
	case LeftJoin:
		return "LEFT JOIN"
	case RightJoin:
		return "RIGHT JOIN"
	case FullJoin:
		return "FULL JOIN"
	case CrossJoin:
		return "CROSS JOIN"
	}
	return "JOIN?"
}

// JoinRef joins two table refs with an ON condition (nil for CROSS).
type JoinRef struct {
	Type        JoinType
	Left, Right TableRef
	On          Expr
}

func (*JoinRef) tableRef() {}

func (j *JoinRef) String() string {
	if j.On == nil {
		return fmt.Sprintf("%s %s %s", j.Left, j.Type, j.Right)
	}
	return fmt.Sprintf("%s %s %s ON %s", j.Left, j.Type, j.Right, j.On)
}

// ---------------------------------------------------------------------
// WITH clause (regular, recursive and iterative CTEs)
// ---------------------------------------------------------------------

// WithClause holds the CTE definitions of a query.
type WithClause struct {
	Recursive bool
	CTEs      []*CTE
}

func (w *WithClause) String() string {
	var b strings.Builder
	b.WriteString("WITH ")
	if w.Recursive {
		b.WriteString("RECURSIVE ")
	}
	for _, c := range w.CTEs {
		if c.Iterative {
			b.WriteString("ITERATIVE ")
			break
		}
	}
	for i, c := range w.CTEs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
	return b.String()
}

// CTE is one common table expression. For regular/recursive CTEs only
// Select is set. For iterative CTEs (the paper's extension) Iterative is
// true and Init/Iter/Until describe R0, Ri and Tc.
type CTE struct {
	Name      string
	Cols      []string // optional column list
	Iterative bool

	// Regular/recursive body.
	Select *SelectStmt

	// Iterative body: WITH ITERATIVE name AS ( Init ITERATE Iter UNTIL
	// Until ).
	Init  *SelectStmt
	Iter  *SelectStmt
	Until Termination
}

func (c *CTE) String() string {
	var b strings.Builder
	b.WriteString(c.Name)
	if len(c.Cols) > 0 {
		b.WriteString(" (" + strings.Join(c.Cols, ", ") + ")")
	}
	b.WriteString(" AS (")
	if c.Iterative {
		b.WriteString(c.Init.String())
		b.WriteString(" ITERATE ")
		b.WriteString(c.Iter.String())
		b.WriteString(" UNTIL ")
		b.WriteString(c.Until.String())
	} else {
		b.WriteString(c.Select.String())
	}
	b.WriteString(")")
	return b.String()
}

// TermType classifies a termination condition per the paper: Metadata
// (iteration/update counters), Data (a SQL expression over the CTE
// table) or Delta (changed-row count between iterations).
type TermType uint8

// Termination condition types.
const (
	TermMetadata TermType = iota
	TermData
	TermDelta
)

func (t TermType) String() string {
	switch t {
	case TermMetadata:
		return "Metadata"
	case TermData:
		return "Data"
	case TermDelta:
		return "Delta"
	}
	return "?"
}

// Termination is the parsed UNTIL clause.
//
//	UNTIL <n> ITERATIONS          -> Metadata, N, CountUpdates=false
//	UNTIL <n> UPDATES             -> Metadata, N, CountUpdates=true
//	UNTIL ANY (<expr>)            -> Data, Any=true
//	UNTIL ALL (<expr>)            -> Data, Any=false
//	UNTIL DELTA < <n>             -> Delta, N
type Termination struct {
	Type         TermType
	N            int64
	CountUpdates bool
	Expr         Expr
	Any          bool
}

func (t Termination) String() string {
	switch t.Type {
	case TermMetadata:
		if t.CountUpdates {
			return fmt.Sprintf("%d UPDATES", t.N)
		}
		return fmt.Sprintf("%d ITERATIONS", t.N)
	case TermData:
		kw := "ALL"
		if t.Any {
			kw = "ANY"
		}
		return fmt.Sprintf("%s (%s)", kw, t.Expr)
	case TermDelta:
		return fmt.Sprintf("DELTA < %d", t.N)
	}
	return "?"
}

// ---------------------------------------------------------------------
// DDL / DML statements
// ---------------------------------------------------------------------

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       sqltypes.Type
	PrimaryKey bool
}

// CreateTable is CREATE [TEMP] TABLE [IF NOT EXISTS] name (cols...).
type CreateTable struct {
	Name        string
	Cols        []ColumnDef
	Temp        bool
	IfNotExists bool
}

func (*CreateTable) stmt() {}

func (c *CreateTable) String() string {
	var b strings.Builder
	b.WriteString("CREATE ")
	if c.Temp {
		b.WriteString("TEMP ")
	}
	b.WriteString("TABLE ")
	if c.IfNotExists {
		b.WriteString("IF NOT EXISTS ")
	}
	b.WriteString(c.Name)
	b.WriteString(" (")
	for i, col := range c.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(col.Name + " " + col.Type.String())
		if col.PrimaryKey {
			b.WriteString(" PRIMARY KEY")
		}
	}
	b.WriteString(")")
	return b.String()
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

func (*DropTable) stmt() {}

func (d *DropTable) String() string {
	if d.IfExists {
		return "DROP TABLE IF EXISTS " + d.Name
	}
	return "DROP TABLE " + d.Name
}

// Insert is INSERT INTO name [(cols)] VALUES (...),(...) or INSERT INTO
// name [(cols)] SELECT ....
type Insert struct {
	Table  string
	Cols   []string
	Rows   [][]Expr    // literal VALUES form
	Select *SelectStmt // SELECT form (exclusive with Rows)
}

func (*Insert) stmt() {}

func (i *Insert) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO " + i.Table)
	if len(i.Cols) > 0 {
		b.WriteString(" (" + strings.Join(i.Cols, ", ") + ")")
	}
	if i.Select != nil {
		b.WriteString(" " + i.Select.String())
		return b.String()
	}
	b.WriteString(" VALUES ")
	for r, row := range i.Rows {
		if r > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for c, e := range row {
			if c > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteString(")")
	}
	return b.String()
}

// Assignment is one SET col = expr in UPDATE.
type Assignment struct {
	Col  string
	Expr Expr
}

// Update is UPDATE t SET a=..., b=... [FROM other] [WHERE cond] —
// including the PostgreSQL-style UPDATE ... FROM used by the external
// baseline (Figure 1, lines 29–33).
type Update struct {
	Table string
	Alias string
	Sets  []Assignment
	From  TableRef // optional join source
	Where Expr
}

func (*Update) stmt() {}

func (u *Update) String() string {
	var b strings.Builder
	b.WriteString("UPDATE " + u.Table)
	if u.Alias != "" {
		b.WriteString(" AS " + u.Alias)
	}
	b.WriteString(" SET ")
	for i, s := range u.Sets {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s = %s", s.Col, s.Expr)
	}
	if u.From != nil {
		fmt.Fprintf(&b, " FROM %s", u.From)
	}
	if u.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", u.Where)
	}
	return b.String()
}

// Delete is DELETE FROM t [WHERE cond].
type Delete struct {
	Table string
	Where Expr
}

func (*Delete) stmt() {}

func (d *Delete) String() string {
	if d.Where != nil {
		return fmt.Sprintf("DELETE FROM %s WHERE %s", d.Table, d.Where)
	}
	return "DELETE FROM " + d.Table
}

// Explain wraps any statement for plan display. Analyze marks EXPLAIN
// ANALYZE: the statement also executes and the runtime trace is
// appended to the plan.
type Explain struct {
	Stmt    Statement
	Analyze bool
}

func (*Explain) stmt() {}

func (e *Explain) String() string {
	if e.Analyze {
		return "EXPLAIN ANALYZE " + e.Stmt.String()
	}
	return "EXPLAIN " + e.Stmt.String()
}
