package ast

import "strings"

// WalkExpr calls fn for e and every sub-expression, pre-order. fn may
// return false to stop descending into the current node's children.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil {
		return
	}
	if !fn(e) {
		return
	}
	switch t := e.(type) {
	case *BinaryExpr:
		WalkExpr(t.L, fn)
		WalkExpr(t.R, fn)
	case *UnaryExpr:
		WalkExpr(t.E, fn)
	case *FuncCall:
		for _, a := range t.Args {
			WalkExpr(a, fn)
		}
	case *CaseExpr:
		for _, w := range t.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Result, fn)
		}
		WalkExpr(t.Else, fn)
	case *CastExpr:
		WalkExpr(t.E, fn)
	case *IsNullExpr:
		WalkExpr(t.E, fn)
	case *InExpr:
		WalkExpr(t.E, fn)
		for _, x := range t.List {
			WalkExpr(x, fn)
		}
	case *BetweenExpr:
		WalkExpr(t.E, fn)
		WalkExpr(t.Lo, fn)
		WalkExpr(t.Hi, fn)
	}
}

// CloneExpr returns a deep copy of an expression tree.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch t := e.(type) {
	case *ColumnRef:
		c := *t
		return &c
	case *Literal:
		c := *t
		return &c
	case *BinaryExpr:
		return &BinaryExpr{Op: t.Op, L: CloneExpr(t.L), R: CloneExpr(t.R)}
	case *UnaryExpr:
		return &UnaryExpr{Op: t.Op, E: CloneExpr(t.E)}
	case *FuncCall:
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = CloneExpr(a)
		}
		return &FuncCall{Name: t.Name, Args: args, Star: t.Star, Distinct: t.Distinct, Pos: t.Pos}
	case *CaseExpr:
		whens := make([]WhenClause, len(t.Whens))
		for i, w := range t.Whens {
			whens[i] = WhenClause{Cond: CloneExpr(w.Cond), Result: CloneExpr(w.Result)}
		}
		return &CaseExpr{Whens: whens, Else: CloneExpr(t.Else)}
	case *CastExpr:
		return &CastExpr{E: CloneExpr(t.E), To: t.To}
	case *IsNullExpr:
		return &IsNullExpr{E: CloneExpr(t.E), Negate: t.Negate}
	case *InExpr:
		list := make([]Expr, len(t.List))
		for i, x := range t.List {
			list[i] = CloneExpr(x)
		}
		return &InExpr{E: CloneExpr(t.E), List: list, Negate: t.Negate}
	case *BetweenExpr:
		return &BetweenExpr{E: CloneExpr(t.E), Lo: CloneExpr(t.Lo), Hi: CloneExpr(t.Hi), Negate: t.Negate}
	case *Star:
		c := *t
		return &c
	}
	return e
}

// RewriteExpr returns a copy of e with fn applied bottom-up: children
// are rewritten first, then fn is applied to the rebuilt node. fn must
// return the (possibly replaced) expression.
func RewriteExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch t := e.(type) {
	case *BinaryExpr:
		e = &BinaryExpr{Op: t.Op, L: RewriteExpr(t.L, fn), R: RewriteExpr(t.R, fn)}
	case *UnaryExpr:
		e = &UnaryExpr{Op: t.Op, E: RewriteExpr(t.E, fn)}
	case *FuncCall:
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = RewriteExpr(a, fn)
		}
		e = &FuncCall{Name: t.Name, Args: args, Star: t.Star, Distinct: t.Distinct, Pos: t.Pos}
	case *CaseExpr:
		whens := make([]WhenClause, len(t.Whens))
		for i, w := range t.Whens {
			whens[i] = WhenClause{Cond: RewriteExpr(w.Cond, fn), Result: RewriteExpr(w.Result, fn)}
		}
		e = &CaseExpr{Whens: whens, Else: RewriteExpr(t.Else, fn)}
	case *CastExpr:
		e = &CastExpr{E: RewriteExpr(t.E, fn), To: t.To}
	case *IsNullExpr:
		e = &IsNullExpr{E: RewriteExpr(t.E, fn), Negate: t.Negate}
	case *InExpr:
		list := make([]Expr, len(t.List))
		for i, x := range t.List {
			list[i] = RewriteExpr(x, fn)
		}
		e = &InExpr{E: RewriteExpr(t.E, fn), List: list, Negate: t.Negate}
	case *BetweenExpr:
		e = &BetweenExpr{E: RewriteExpr(t.E, fn), Lo: RewriteExpr(t.Lo, fn), Hi: RewriteExpr(t.Hi, fn), Negate: t.Negate}
	}
	return fn(e)
}

// ColumnRefs collects every column reference in an expression.
func ColumnRefs(e Expr) []*ColumnRef {
	var out []*ColumnRef
	WalkExpr(e, func(x Expr) bool {
		if c, ok := x.(*ColumnRef); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// aggregateNames is the set of recognized aggregate functions.
var aggregateNames = map[string]bool{
	"SUM": true, "COUNT": true, "MIN": true, "MAX": true, "AVG": true,
}

// IsAggregateName reports whether the (uppercased) function name is an
// aggregate.
func IsAggregateName(name string) bool { return aggregateNames[strings.ToUpper(name)] }

// HasAggregate reports whether e contains any aggregate function call.
func HasAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && IsAggregateName(f.Name) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// WalkTableRefs calls fn for t and every nested table ref.
func WalkTableRefs(t TableRef, fn func(TableRef) bool) {
	if t == nil {
		return
	}
	if !fn(t) {
		return
	}
	if j, ok := t.(*JoinRef); ok {
		WalkTableRefs(j.Left, fn)
		WalkTableRefs(j.Right, fn)
	}
}

// BaseTables returns all base-table references in a FROM tree.
func BaseTables(t TableRef) []*BaseTable {
	var out []*BaseTable
	WalkTableRefs(t, func(r TableRef) bool {
		if b, ok := r.(*BaseTable); ok {
			out = append(out, b)
		}
		return true
	})
	return out
}

// CountTableRefs counts references to the named table (case
// insensitive) in a FROM tree, including inside derived tables.
func CountTableRefs(t TableRef, name string) int {
	n := 0
	WalkTableRefs(t, func(r TableRef) bool {
		switch x := r.(type) {
		case *BaseTable:
			if strings.EqualFold(x.Name, name) {
				n++
			}
		case *SubqueryRef:
			n += CountStmtTableRefs(x.Select, name)
		}
		return true
	})
	return n
}

// CountStmtTableRefs counts references to the named table anywhere in a
// statement's FROM clauses (descending through UNION arms and derived
// tables).
func CountStmtTableRefs(s *SelectStmt, name string) int {
	if s == nil {
		return 0
	}
	return countBodyTableRefs(s.Body, name)
}

func countBodyTableRefs(b SelectBody, name string) int {
	switch t := b.(type) {
	case *SelectCore:
		if t.From == nil {
			return 0
		}
		return CountTableRefs(t.From, name)
	case *UnionExpr:
		return countBodyTableRefs(t.Left, name) + countBodyTableRefs(t.Right, name)
	}
	return 0
}

// WalkStmtExprs calls fn with the root of every expression tree
// attached to a statement outside its WITH clause: each select item,
// WHERE, GROUP BY keys, HAVING, ORDER BY keys and join ON conditions,
// recursing into UNION arms and derived tables. Use WalkExpr inside fn
// to descend into each tree.
func WalkStmtExprs(s *SelectStmt, fn func(Expr)) {
	if s == nil {
		return
	}
	walkBodyExprs(s.Body, fn)
	for _, o := range s.OrderBy {
		fn(o.Expr)
	}
	if s.Limit != nil {
		fn(s.Limit)
	}
	if s.Offset != nil {
		fn(s.Offset)
	}
}

func walkBodyExprs(b SelectBody, fn func(Expr)) {
	switch t := b.(type) {
	case *SelectCore:
		for _, it := range t.Items {
			fn(it.Expr)
		}
		walkFromExprs(t.From, fn)
		if t.Where != nil {
			fn(t.Where)
		}
		for _, g := range t.GroupBy {
			fn(g)
		}
		if t.Having != nil {
			fn(t.Having)
		}
	case *UnionExpr:
		walkBodyExprs(t.Left, fn)
		walkBodyExprs(t.Right, fn)
	}
}

func walkFromExprs(t TableRef, fn func(Expr)) {
	WalkTableRefs(t, func(r TableRef) bool {
		switch x := r.(type) {
		case *JoinRef:
			if x.On != nil {
				fn(x.On)
			}
		case *SubqueryRef:
			WalkStmtExprs(x.Select, fn)
		}
		return true
	})
}

// StmtColumnRefs collects every column reference appearing anywhere in
// a statement outside its WITH clause (select items, WHERE, GROUP BY,
// HAVING, ORDER BY, join ON conditions, derived tables, UNION arms).
// The second result reports whether any select list at any depth
// contains a * / t.* item, in which case the reference list is
// incomplete and callers must be conservative.
func StmtColumnRefs(s *SelectStmt) ([]*ColumnRef, bool) {
	var refs []*ColumnRef
	star := false
	WalkStmtExprs(s, func(e Expr) {
		WalkExpr(e, func(x Expr) bool {
			switch c := x.(type) {
			case *ColumnRef:
				refs = append(refs, c)
			case *Star:
				star = true
			}
			return true
		})
	})
	return refs, star
}

// StmtBaseTables returns every base-table reference in any FROM clause
// of the statement, descending through UNION arms and derived tables
// (but not the WITH clause).
func StmtBaseTables(s *SelectStmt) []*BaseTable {
	if s == nil {
		return nil
	}
	var out []*BaseTable
	collectBodyBaseTables(s.Body, &out)
	return out
}

func collectBodyBaseTables(b SelectBody, out *[]*BaseTable) {
	switch t := b.(type) {
	case *SelectCore:
		WalkTableRefs(t.From, func(r TableRef) bool {
			switch x := r.(type) {
			case *BaseTable:
				*out = append(*out, x)
			case *SubqueryRef:
				collectBodyBaseTables(x.Select.Body, out)
			}
			return true
		})
	case *UnionExpr:
		collectBodyBaseTables(t.Left, out)
		collectBodyBaseTables(t.Right, out)
	}
}

// SplitConjuncts splits an expression on top-level ANDs.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && strings.EqualFold(b.Op, "AND") {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// JoinConjuncts rebuilds a conjunction from a list of predicates (nil
// for an empty list).
func JoinConjuncts(list []Expr) Expr {
	var out Expr
	for _, e := range list {
		if out == nil {
			out = e
		} else {
			out = &BinaryExpr{Op: "AND", L: out, R: e}
		}
	}
	return out
}
