// Package storage provides the in-memory row store: hash-partitioned
// base tables (the shared-nothing layout of the simulated MPP engine)
// and the intermediate-result lookup table that the rename operator
// manipulates (paper §VI-A).
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dbspinner/internal/faultinject"
	"dbspinner/internal/sqltypes"
)

// Table is an in-memory relation, split into hash partitions to model a
// shared-nothing layout. Intermediate results use the same
// representation so the rename operator can swap them for base CTE
// results without copying.
type Table struct {
	Name   string
	Schema sqltypes.Schema
	// PK is the primary-key column index, or -1. The merge path of
	// Algorithm 1 requires a unique row identifier; if the user
	// declared none the engine assigns the first column of the CTE.
	PK int
	// DistCol is the hash-distribution column, or -1 for round-robin.
	DistCol int
	// Parts holds the rows of each partition.
	Parts [][]sqltypes.Row

	rr int // round-robin cursor for DistCol == -1
}

// NewTable creates an empty table with the given partition count
// (minimum 1).
func NewTable(name string, schema sqltypes.Schema, parts int) *Table {
	if parts < 1 {
		parts = 1
	}
	return &Table{
		Name:    name,
		Schema:  schema,
		PK:      -1,
		DistCol: -1,
		Parts:   make([][]sqltypes.Row, parts),
	}
}

// NumParts returns the partition count.
func (t *Table) NumParts() int { return len(t.Parts) }

// Len returns the total row count across partitions.
func (t *Table) Len() int {
	n := 0
	for _, p := range t.Parts {
		n += len(p)
	}
	return n
}

// partitionFor picks the destination partition of a row. Hash
// distribution routes through sqltypes.CompositeKey.Partition — the
// one routing function shared with the MPP exchange operators — so the
// static partition-property analysis (internal/distprop) can reason
// about storage layout and shuffle destinations with a single hash.
func (t *Table) partitionFor(r sqltypes.Row) int {
	if len(t.Parts) == 1 {
		return 0
	}
	if t.DistCol >= 0 && t.DistCol < len(r) {
		return sqltypes.RowKey(r, []int{t.DistCol}).Partition(len(t.Parts))
	}
	p := t.rr
	t.rr = (t.rr + 1) % len(t.Parts)
	return p
}

// Insert appends one row.
func (t *Table) Insert(r sqltypes.Row) {
	p := t.partitionFor(r)
	t.Parts[p] = append(t.Parts[p], r)
}

// InsertBatch appends many rows.
func (t *Table) InsertBatch(rows []sqltypes.Row) {
	for _, r := range rows {
		t.Insert(r)
	}
}

// AllRows returns every row (all partitions concatenated). The returned
// slice is freshly allocated; the rows themselves are shared.
func (t *Table) AllRows() []sqltypes.Row {
	out := make([]sqltypes.Row, 0, t.Len())
	for _, p := range t.Parts {
		out = append(out, p...)
	}
	return out
}

// Truncate removes all rows, keeping the schema and partitioning.
func (t *Table) Truncate() {
	for i := range t.Parts {
		t.Parts[i] = nil
	}
	t.rr = 0
}

// Clone returns a deep-enough copy: new partition slices sharing the
// row values (rows are treated as immutable once stored).
func (t *Table) Clone() *Table {
	c := &Table{Name: t.Name, Schema: t.Schema.Clone(), PK: t.PK, DistCol: t.DistCol}
	c.Parts = make([][]sqltypes.Row, len(t.Parts))
	for i, p := range t.Parts {
		c.Parts[i] = append([]sqltypes.Row(nil), p...)
	}
	return c
}

// Guard declares the result-store effect set of one scheduled step:
// the (normalized) slot names it may read, (re)bind and release. A
// guarded view calls Violation for any access outside the declared
// sets — the dynamic cross-check of the static effect analysis
// (internal/effects) — but still performs the access, so behavior
// never depends on the guard; an unsound schedule is reported, and the
// race detector sees the underlying conflict too.
type Guard struct {
	Reads  map[string]bool
	Writes map[string]bool
	Frees  map[string]bool
	// Violation receives the operation ("get", "put", "drop",
	// "rename") and the offending slot name. It may be called from
	// concurrent MPP fragments and must be safe for concurrent use.
	Violation func(op, name string)
}

func (g *Guard) check(allowed bool, op, name string) {
	if g != nil && !allowed && g.Violation != nil {
		g.Violation(op, name)
	}
}

// resultState is the storage shared by every view of one result store:
// the name-to-table map and the freed counter, behind one lock so
// concurrently scheduled steps can touch disjoint slots safely.
type resultState struct {
	mu    sync.RWMutex
	m     map[string]*Table
	freed int
	// faults is the armed fault-injection registry (Config.
	// FaultSchedule): every mutation — put, drop, rename — fires the
	// storage point before taking the state lock. An atomic pointer so
	// the disarmed path costs one load and a nil check; shared by every
	// view of the store, guarded or not.
	faults atomic.Pointer[faultinject.Registry]
}

// SetFaults arms (or, with nil, disarms) fault injection on the
// store's mutation hooks. The engine arms it around one statement and
// disarms it after, so registries never leak across queries.
func (s *ResultStore) SetFaults(r *faultinject.Registry) {
	s.state.faults.Store(r)
}

// inject fires the storage mutation fault point when armed. It must
// run before the state lock is taken: error-mode injection panics with
// a carrier the containment layer unwraps, and unwinding past a held
// mutex would deadlock the store.
func (s *ResultStore) inject() {
	if r := s.state.faults.Load(); r != nil {
		r.Mutation(faultinject.PointStorage)
	}
}

// ResultStore is the execution engine's lookup table for intermediate
// results (paper §VI-A): a name to (schema, rows) map. The rename
// operator re-points a name at another result and releases whatever the
// destination name previously referenced. Views created by Guarded
// share the underlying state; the store itself is safe for concurrent
// use on distinct slots (the parallel step scheduler's case).
type ResultStore struct {
	state *resultState
	guard *Guard
}

// NewResultStore returns an empty store.
func NewResultStore() *ResultStore {
	return &ResultStore{state: &resultState{m: make(map[string]*Table)}}
}

// Guarded returns a view of the same store that checks every access
// against the guard's declared effect set.
func (s *ResultStore) Guarded(g *Guard) *ResultStore {
	return &ResultStore{state: s.state, guard: g}
}

// Put registers (or replaces) a named intermediate result.
func (s *ResultStore) Put(name string, t *Table) {
	n := normalize(name)
	s.guard.check(s.guard == nil || s.guard.Writes[n], "put", name)
	s.inject()
	s.state.mu.Lock()
	s.state.m[n] = t
	s.state.mu.Unlock()
}

// Get returns the named result, or nil. Re-reading a slot the guard
// allows writing is fine: steps like copy-back read their own target.
func (s *ResultStore) Get(name string) *Table {
	n := normalize(name)
	s.guard.check(s.guard == nil || s.guard.Reads[n] || s.guard.Writes[n], "get", name)
	s.state.mu.RLock()
	t := s.state.m[n]
	s.state.mu.RUnlock()
	return t
}

// Drop removes the named result.
func (s *ResultStore) Drop(name string) {
	n := normalize(name)
	s.guard.check(s.guard == nil || s.guard.Frees[n], "drop", name)
	s.inject()
	s.state.mu.Lock()
	delete(s.state.m, n)
	s.state.mu.Unlock()
}

// Len returns the number of live results.
func (s *ResultStore) Len() int {
	s.state.mu.RLock()
	defer s.state.mu.RUnlock()
	return len(s.state.m)
}

// Freed counts results released by rename, for stats/tests.
func (s *ResultStore) Freed() int {
	s.state.mu.RLock()
	defer s.state.mu.RUnlock()
	return s.state.freed
}

// Rename implements the rename operator: the entry for old is
// re-registered under new. If new already points at a result, that
// result is released (its memory freed), exactly as described in
// §VI-A. Renaming a missing result is an error.
func (s *ResultStore) Rename(old, new string) error {
	o, n := normalize(old), normalize(new)
	if s.guard != nil {
		s.guard.check(s.guard.Frees[o], "rename", old)
		s.guard.check(s.guard.Writes[n], "rename", new)
	}
	s.inject()
	s.state.mu.Lock()
	defer s.state.mu.Unlock()
	t, ok := s.state.m[o]
	if !ok {
		return fmt.Errorf("rename: intermediate result %q not found", old)
	}
	if _, exists := s.state.m[n]; exists {
		s.state.freed++
	}
	delete(s.state.m, o)
	t.Name = new
	s.state.m[n] = t
	return nil
}

// NormalizeName exposes the store's name normalization (lowercasing,
// SQL identifier semantics) so effect guards can be keyed exactly the
// way the store keys its slots.
func NormalizeName(name string) string { return normalize(name) }

func normalize(name string) string {
	// Case-insensitive names, matching SQL identifier semantics.
	b := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b[i] = c
	}
	return string(b)
}
