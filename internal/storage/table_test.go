package storage

import (
	"testing"
	"testing/quick"

	"dbspinner/internal/sqltypes"
)

func schema2() sqltypes.Schema {
	return sqltypes.Schema{{Name: "a", Type: sqltypes.Int}, {Name: "b", Type: sqltypes.Float}}
}

func row(a int64, b float64) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt(a), sqltypes.NewFloat(b)}
}

func TestTableBasics(t *testing.T) {
	tb := NewTable("t", schema2(), 4)
	if tb.NumParts() != 4 || tb.Len() != 0 {
		t.Fatal("empty table")
	}
	for i := 0; i < 100; i++ {
		tb.Insert(row(int64(i), float64(i)))
	}
	if tb.Len() != 100 {
		t.Errorf("Len = %d", tb.Len())
	}
	if len(tb.AllRows()) != 100 {
		t.Error("AllRows")
	}
	tb.Truncate()
	if tb.Len() != 0 {
		t.Error("Truncate")
	}
	// Zero partitions clamps to 1.
	if NewTable("x", schema2(), 0).NumParts() != 1 {
		t.Error("clamp parts")
	}
}

func TestHashDistribution(t *testing.T) {
	tb := NewTable("t", schema2(), 4)
	tb.DistCol = 0
	// Equal keys land in the same partition.
	tb.Insert(row(7, 1))
	tb.Insert(row(7, 2))
	tb.Insert(row(7, 3))
	found := -1
	for i, p := range tb.Parts {
		if len(p) > 0 {
			if found >= 0 {
				t.Fatal("equal keys split across partitions")
			}
			found = i
			if len(p) != 3 {
				t.Errorf("partition has %d rows", len(p))
			}
		}
	}
	// Int and Float keys with the same numeric value co-locate.
	tb2 := NewTable("t2", schema2(), 8)
	tb2.DistCol = 0
	tb2.Insert(sqltypes.Row{sqltypes.NewInt(42), sqltypes.NewFloat(0)})
	tb2.Insert(sqltypes.Row{sqltypes.NewFloat(42), sqltypes.NewFloat(0)})
	nonEmpty := 0
	for _, p := range tb2.Parts {
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Error("42 and 42.0 should co-locate")
	}
}

func TestRoundRobinDistribution(t *testing.T) {
	tb := NewTable("t", schema2(), 3)
	tb.DistCol = -1
	for i := 0; i < 9; i++ {
		tb.Insert(row(1, 1)) // identical rows still spread
	}
	for i, p := range tb.Parts {
		if len(p) != 3 {
			t.Errorf("partition %d has %d rows, want 3", i, len(p))
		}
	}
}

func TestHashSpreadProperty(t *testing.T) {
	// Many distinct keys should not all land in one partition.
	tb := NewTable("t", schema2(), 8)
	tb.DistCol = 0
	for i := 0; i < 1000; i++ {
		tb.Insert(row(int64(i), 0))
	}
	for i, p := range tb.Parts {
		if len(p) == 0 {
			t.Errorf("partition %d empty with 1000 keys", i)
		}
		if len(p) > 400 {
			t.Errorf("partition %d badly skewed: %d rows", i, len(p))
		}
	}
}

func TestClone(t *testing.T) {
	tb := NewTable("t", schema2(), 2)
	tb.PK = 0
	tb.Insert(row(1, 1))
	c := tb.Clone()
	c.Insert(row(2, 2))
	if tb.Len() != 1 || c.Len() != 2 {
		t.Error("clone should not share partition slices")
	}
	if c.PK != 0 {
		t.Error("clone should copy PK")
	}
}

func TestResultStore(t *testing.T) {
	s := NewResultStore()
	a := NewTable("a", schema2(), 1)
	a.Insert(row(1, 1))
	s.Put("Working", a)
	if s.Get("working") != a {
		t.Error("case-insensitive get")
	}
	if s.Len() != 1 {
		t.Error("Len")
	}
	// Rename to a fresh name.
	if err := s.Rename("working", "cte"); err != nil {
		t.Fatal(err)
	}
	if s.Get("working") != nil || s.Get("CTE") != a {
		t.Error("rename moved wrong entries")
	}
	if a.Name != "cte" {
		t.Error("rename should update the table's name")
	}
	if s.Freed() != 0 {
		t.Error("no result was displaced")
	}
	// Rename over an existing entry frees it.
	b := NewTable("b", schema2(), 1)
	s.Put("working", b)
	if err := s.Rename("working", "cte"); err != nil {
		t.Fatal(err)
	}
	if s.Get("cte") != b {
		t.Error("rename should displace old target")
	}
	if s.Freed() != 1 {
		t.Errorf("Freed = %d, want 1", s.Freed())
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after displacing rename", s.Len())
	}
	// Renaming a missing entry errors.
	if err := s.Rename("nope", "x"); err == nil {
		t.Error("rename of missing result should fail")
	}
	s.Drop("cte")
	if s.Len() != 0 {
		t.Error("Drop")
	}
}

func TestPartitionRoutingProperties(t *testing.T) {
	const parts = 7
	route := func(v sqltypes.Value) int {
		return sqltypes.RowKey(sqltypes.Row{v}, []int{0}).Partition(parts)
	}
	// Values that normalize to the same key route identically.
	f := func(i int32) bool {
		return route(sqltypes.NewInt(int64(i))) == route(sqltypes.NewFloat(float64(i)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("int/float routing agreement: %v", err)
	}
	// NULL keys always route to partition 0.
	if route(sqltypes.NullValue) != 0 {
		t.Error("NULL should route to partition 0")
	}
	// Table inserts agree with the shared routing function.
	tab := NewTable("t", sqltypes.Schema{{Name: "a", Type: sqltypes.Int}}, parts)
	tab.DistCol = 0
	for i := 0; i < 100; i++ {
		r := sqltypes.Row{sqltypes.NewInt(int64(i * 37))}
		if got, want := tab.partitionFor(r), route(r[0]); got != want {
			t.Fatalf("partitionFor(%d) = %d, Partition = %d", i*37, got, want)
		}
	}
}
