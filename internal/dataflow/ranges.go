package dataflow

import "strings"

// StepIO is an abstract read/write/drop descriptor for one step of a
// rewritten program. internal/core builds one per step so this package
// needs no knowledge of concrete step types.
type StepIO struct {
	// Reads are result names the step may read when it runs.
	Reads []string
	// Writes are result names the step creates or overwrites.
	Writes []string
	// Drops are result names the step removes (a rename's source, a
	// truncate's target).
	Drops []string
	// LoopBodyStart is the body start index for a loop-jump step, -1
	// for every other step. The body interval is
	// [LoopBodyStart, thisStep].
	LoopBodyStart int
}

// FreedAtEnd is the sentinel last-use index for results the final
// query still needs: they stay live past the last step.
const FreedAtEnd = int(^uint(0) >> 1) // max int

// LastUses computes, for every result name written by some step, the
// last step index at which it can still be read. finalReads lists the
// results the final query consumes; those (and results never read at
// all, which the analysis refuses to reason about) are pinned to
// FreedAtEnd.
//
// The loop back-edge is what makes this more than a max over reads: a
// read anywhere inside a loop body [b, L] may recur on every
// iteration, so it extends the result's last use to the loop-jump step
// L itself. Loop-jump steps also read their own termination inputs
// (declared via Reads on the jump step).
func LastUses(steps []StepIO, finalReads []string) map[string]int {
	last := map[string]int{}
	written := map[string]bool{}
	note := func(name string, i int) {
		name = strings.ToLower(name)
		if i > last[name] || !hasKey(last, name) {
			last[name] = i
		}
	}
	for i, s := range steps {
		for _, w := range s.Writes {
			written[strings.ToLower(w)] = true
		}
		for _, r := range s.Reads {
			note(r, i)
		}
	}
	// Back-edge: reads inside a body interval extend to the loop step.
	for li, s := range steps {
		if s.LoopBodyStart < 0 {
			continue
		}
		for i := s.LoopBodyStart; i <= li && i < len(steps); i++ {
			for _, r := range steps[i].Reads {
				note(r, li)
			}
		}
	}
	for _, r := range finalReads {
		last[strings.ToLower(r)] = FreedAtEnd
	}
	// Only report results this program actually materializes, and pin
	// write-only results to the end rather than guessing.
	out := map[string]int{}
	for name := range written {
		if at, ok := last[name]; ok {
			out[name] = at
		} else {
			out[name] = FreedAtEnd
		}
	}
	return out
}

func hasKey(m map[string]int, k string) bool { _, ok := m[k]; return ok }
