package dataflow

import (
	"reflect"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/parser"
)

// liveFor parses a one-CTE iterative query and runs the live-column
// analysis with the outer statement as the only observer — the shape
// internal/core feeds it.
func liveFor(t *testing.T, sql string) Liveness {
	t.Helper()
	parsed, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	stmt := parsed.(*ast.SelectStmt)
	cte := stmt.With.CTEs[0]
	return CTELiveColumns(cte.Name, cte.Cols, cte.Iter, cte.Until, []*ast.SelectStmt{stmt})
}

func TestCTELiveColumns(t *testing.T) {
	cases := []struct {
		name  string
		sql   string
		live  []bool
		exact bool
	}{
		{
			name: "dead column pruned",
			sql: `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges
			 ITERATE SELECT k, v + 1 FROM c UNTIL 3 ITERATIONS) SELECT k FROM c`,
			live: []bool{true, false}, exact: true,
		},
		{
			name: "final query keeps a column live",
			sql: `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges
			 ITERATE SELECT k, v + 1 FROM c UNTIL 3 ITERATIONS) SELECT k, v FROM c`,
			live: []bool{true, true}, exact: true,
		},
		{
			name: "WHERE keeps a column live",
			sql: `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges
			 ITERATE SELECT k, v + 1 FROM c WHERE v < 10 UNTIL 3 ITERATIONS) SELECT k FROM c`,
			live: []bool{true, true}, exact: true,
		},
		{
			name: "termination condition keeps a column live",
			sql: `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges
			 ITERATE SELECT k, v + 1 FROM c UNTIL ANY (v >= 4)) SELECT k FROM c`,
			live: []bool{true, true}, exact: true,
		},
		{
			name: "group-by alias pins the item position live",
			sql: `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges
			 ITERATE SELECT k, v + 1 AS w FROM c GROUP BY k, w UNTIL 3 ITERATIONS) SELECT k FROM c`,
			live: []bool{true, true}, exact: true,
		},
		{
			name: "reference qualified by another table stays dead",
			sql: `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges
			 ITERATE SELECT c.k, c.v + 1 FROM c JOIN edges AS e ON c.k = e.src WHERE e.v > 0
			 UNTIL 3 ITERATIONS) SELECT k FROM c`,
			live: []bool{true, false}, exact: true,
		},
		{
			name: "self-sustaining dead cycle is pruned",
			sql: `WITH ITERATIVE c (k, x, y) AS (SELECT src, dst, dst FROM edges
			 ITERATE SELECT k, y, x FROM c UNTIL 3 ITERATIONS) SELECT k FROM c`,
			live: []bool{true, false, false}, exact: true,
		},
		{
			name: "fixpoint pulls in what a live item reads",
			sql: `WITH ITERATIVE c (k, x, y) AS (SELECT src, dst, dst FROM edges
			 ITERATE SELECT k, y + 1, y FROM c UNTIL 3 ITERATIONS) SELECT k, x FROM c`,
			live: []bool{true, true, true}, exact: true,
		},
		{
			name: "delta termination keeps whole rows",
			sql: `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges
			 ITERATE SELECT k, v FROM c UNTIL DELTA < 1) SELECT k FROM c`,
			live: []bool{true, true}, exact: false,
		},
		{
			name: "updates counter keeps whole rows",
			sql: `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges
			 ITERATE SELECT k, v + 1 FROM c UNTIL 3 UPDATES) SELECT k FROM c`,
			live: []bool{true, true}, exact: false,
		},
		{
			name: "star in the final query gives up",
			sql: `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges
			 ITERATE SELECT k, v + 1 FROM c UNTIL 3 ITERATIONS) SELECT * FROM c`,
			live: []bool{true, true}, exact: false,
		},
		{
			name: "star inside the iterative part gives up",
			sql: `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges
			 ITERATE SELECT * FROM c UNTIL 3 ITERATIONS) SELECT k FROM c`,
			live: []bool{true, true}, exact: false,
		},
		{
			name: "distinct gives up",
			sql: `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges
			 ITERATE SELECT DISTINCT k, v + 1 FROM c UNTIL 3 ITERATIONS) SELECT k FROM c`,
			live: []bool{true, true}, exact: false,
		},
		{
			name: "union body gives up",
			sql: `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges
			 ITERATE SELECT k, v + 1 FROM c UNION SELECT src, dst FROM edges
			 UNTIL 3 ITERATIONS) SELECT k FROM c`,
			live: []bool{true, true}, exact: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := liveFor(t, tc.sql)
			if got.Exact != tc.exact {
				t.Errorf("Exact = %v, want %v", got.Exact, tc.exact)
			}
			if !reflect.DeepEqual(got.Live, tc.live) {
				t.Errorf("Live = %v, want %v", got.Live, tc.live)
			}
		})
	}
}

func TestCTELiveColumnsDuplicateNamesGiveUp(t *testing.T) {
	iter := &ast.SelectStmt{Body: &ast.SelectCore{
		Items: []ast.SelectItem{{Expr: &ast.ColumnRef{Name: "k"}}, {Expr: &ast.ColumnRef{Name: "k"}}},
		From:  &ast.BaseTable{Name: "c"},
	}}
	got := CTELiveColumns("c", []string{"k", "k"}, iter,
		ast.Termination{Type: ast.TermMetadata, N: 3}, nil)
	if got.Exact || got.LiveCount() != 2 {
		t.Errorf("ambiguous columns must fail closed: %+v", got)
	}
}

func TestReferencedColumns(t *testing.T) {
	parsed, err := parser.Parse(`SELECT a.x, b.y, z FROM t AS a JOIN u AS b ON a.k = b.k WHERE b.w > 0`)
	if err != nil {
		t.Fatal(err)
	}
	cols, star := ReferencedColumns(parsed.(*ast.SelectStmt), map[string]bool{"a": true})
	if star {
		t.Fatal("no star in the statement")
	}
	// a-qualified and unqualified references count; b-qualified do not.
	for _, want := range []string{"x", "z", "k"} {
		if !cols[want] {
			t.Errorf("missing %q in %v", want, cols)
		}
	}
	for _, not := range []string{"y", "w"} {
		if cols[not] {
			t.Errorf("unexpected %q in %v", not, cols)
		}
	}
}

func TestLastUses(t *testing.T) {
	// 0: materialize A
	// 1: materialize B reading A
	// 2: loop body start — materialize W reading B
	// 3: rename W to B (drops W)
	// 4: loop jump, body [2,4], condition reads Cond
	// 5: materialize Cond  (write-only afterwards)
	steps := []StepIO{
		{Writes: []string{"A"}, LoopBodyStart: -1},
		{Reads: []string{"A"}, Writes: []string{"B"}, LoopBodyStart: -1},
		{Reads: []string{"B"}, Writes: []string{"W"}, LoopBodyStart: -1},
		{Reads: []string{"W"}, Writes: []string{"B"}, Drops: []string{"W"}, LoopBodyStart: -1},
		{Reads: []string{"Cond"}, LoopBodyStart: 2},
		{Writes: []string{"Cond"}, LoopBodyStart: -1},
	}
	got := LastUses(steps, []string{"B"})
	want := map[string]int{
		"a":    1,          // read once, before the loop
		"b":    FreedAtEnd, // final query reads it
		"w":    4,          // body read extends across the back-edge
		"cond": 4,          // the jump's own termination read
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LastUses = %v, want %v", got, want)
	}
}

func TestLastUsesWriteOnlyPinnedToEnd(t *testing.T) {
	steps := []StepIO{{Writes: []string{"X"}, LoopBodyStart: -1}}
	got := LastUses(steps, nil)
	if got["x"] != FreedAtEnd {
		t.Errorf("write-only result must stay live to the end, got %d", got["x"])
	}
}
