// Package dataflow implements column-level dataflow analysis over
// iterative CTEs and their rewritten step programs.
//
// Two results are produced. CTELiveColumns computes, per intermediate
// result, the set of columns that can influence anything observable —
// the final query Qf, the termination condition Tc, the merge/copy-back
// key, delta-frontier extraction, or a later iteration of the loop body
// Ri — so the rewrite can materialize only those (projection pruning).
// LastUses computes, per intermediate result, the last step index at
// which it can still be read, across the loop back-edge, so the rewrite
// can insert truncation steps that free results as soon as they are
// dead (liveness-driven truncation).
//
// The analysis is deliberately conservative: any construct it cannot
// prove dead (SELECT *, ambiguous or unresolvable references, UNION
// bodies, termination conditions that observe whole rows) keeps every
// column live. internal/verify re-derives the safety of both consumers
// independently — see verify's pruned-column-use and premature-truncate
// classes.
package dataflow

import (
	"strings"

	"dbspinner/internal/ast"
)

// Liveness is the result of the live-column analysis for one result
// table. Live[i] reports whether declared column i must be
// materialized. Exact is false when the analysis gave up and kept
// everything live (the slice is then all true).
type Liveness struct {
	Live  []bool
	Exact bool
}

// AllLive returns the conservative everything-is-live answer for n
// columns.
func AllLive(n int) Liveness {
	l := Liveness{Live: make([]bool, n)}
	for i := range l.Live {
		l.Live[i] = true
	}
	return l
}

// LiveCount returns the number of live columns.
func (l Liveness) LiveCount() int {
	n := 0
	for _, b := range l.Live {
		if b {
			n++
		}
	}
	return n
}

// CTELiveColumns computes the live column set for one iterative CTE.
//
//	name      the CTE's table name
//	cols      the CTE's materialized column names (schema order)
//	iter      the iterative part Ri (may already be rewritten)
//	until     the parsed termination condition Tc
//	observers statements outside the loop that may read the CTE —
//	          the final query Qf and every sibling CTE body
//
// Column 0 is always live: it is the merge/copy-back key and the
// partitioning column. Reads are attributed conservatively — a
// qualified reference counts when its qualifier matches any alias the
// CTE is visible under, an unqualified reference counts whenever its
// name matches a CTE column. The transfer function through Ri is
// positional: WHERE / GROUP BY / HAVING / ORDER BY / join ON / derived
// table references are unconditionally live, while a select-item
// reference keeps a column live only if the item's own position is
// live (closed under a fixpoint, so self-sustaining dead cycles are
// still pruned).
//
// The analysis refuses to prune (returns all live, Exact=false) when:
// the termination observes whole rows (UNTIL DELTA's row snapshot,
// UNTIL n UPDATES' identification pass), Ri is a UNION or contains a
// SELECT *, column names are ambiguous, or a reference cannot be
// resolved.
func CTELiveColumns(name string, cols []string, iter *ast.SelectStmt, until ast.Termination, observers []*ast.SelectStmt) Liveness {
	n := len(cols)
	if n == 0 {
		return AllLive(n)
	}
	// Whole-row observers: the delta snapshot compares entire rows and
	// the UPDATES counter is driven by the identification pass's row
	// comparison — dropping any column would change what they see.
	if until.Type == ast.TermDelta || until.CountUpdates {
		return AllLive(n)
	}
	idx := make(map[string]int, n)
	for i, c := range cols {
		key := strings.ToLower(c)
		if _, dup := idx[key]; dup {
			return AllLive(n) // ambiguous column names: fail closed
		}
		idx[key] = i
	}

	live := make([]bool, n)
	live[0] = true // merge/copy-back key and partitioning column

	// mark flags every CTE-column reference in refs as live. Returns
	// false when a star was seen or a reference is unresolvable enough
	// to make the analysis give up.
	mark := func(refs []*ast.ColumnRef, aliases map[string]bool) {
		for _, r := range refs {
			if r.Table != "" && !aliases[strings.ToLower(r.Table)] {
				continue // qualified with some other table
			}
			if i, ok := idx[strings.ToLower(r.Name)]; ok {
				live[i] = true
			}
		}
	}

	// Observers outside the loop: every reference they can make to the
	// CTE is unconditionally live.
	for _, o := range observers {
		al := cteAliases(o, name)
		if len(al) == 0 {
			continue // statement never reads the CTE
		}
		refs, star := ast.StmtColumnRefs(o)
		if star {
			// SELECT * somewhere in a statement that sees the CTE —
			// assume it expands the CTE's columns.
			return AllLive(n)
		}
		mark(refs, al)
	}

	// Tc for data conditions is evaluated as SELECT ... FROM cte: bare
	// references resolve against the CTE columns.
	if until.Type == ast.TermData && until.Expr != nil {
		self := map[string]bool{strings.ToLower(name): true}
		mark(ast.ColumnRefs(until.Expr), self)
	}

	// The iterative part Ri.
	core, ok := iter.Body.(*ast.SelectCore)
	if !ok {
		return AllLive(n) // UNION body: positional attribution unsafe
	}
	if core.Distinct {
		// DISTINCT dedups over the whole row: dropping a column can
		// collapse rows and change multiplicities.
		return AllLive(n)
	}
	if len(core.Items) != n {
		return AllLive(n)
	}
	for _, it := range core.Items {
		if _, isStar := it.Expr.(*ast.Star); isStar {
			return AllLive(n)
		}
	}
	riAliases := cteAliases(iter, name)

	// Non-item contexts of Ri observe columns unconditionally: WHERE
	// drives the merge path's selected set, GROUP BY/HAVING shape the
	// produced rows, join ONs gate matches, and anything inside a
	// derived table is out of positional reach.
	var ctxRefs []*ast.ColumnRef
	star := false
	collectExpr := func(e ast.Expr) {
		ast.WalkExpr(e, func(x ast.Expr) bool {
			switch c := x.(type) {
			case *ast.ColumnRef:
				ctxRefs = append(ctxRefs, c)
			case *ast.Star:
				star = true
			}
			return true
		})
	}
	if core.Where != nil {
		collectExpr(core.Where)
	}
	for _, g := range core.GroupBy {
		collectExpr(g)
	}
	if core.Having != nil {
		collectExpr(core.Having)
	}
	for _, o := range iter.OrderBy {
		collectExpr(o.Expr)
	}
	ast.WalkTableRefs(core.From, func(r ast.TableRef) bool {
		switch x := r.(type) {
		case *ast.JoinRef:
			if x.On != nil {
				collectExpr(x.On)
			}
		case *ast.SubqueryRef:
			refs, s := ast.StmtColumnRefs(x.Select)
			ctxRefs = append(ctxRefs, refs...)
			star = star || s
		}
		return true
	})
	if star {
		return AllLive(n)
	}
	mark(ctxRefs, riAliases)

	// A non-item context can also name a select item by its output
	// alias (GROUP BY rank_alias). That pins the item's position live —
	// grouping or ordering by it shapes every row — and the fixpoint
	// below then pulls in whatever the item reads.
	aliasPos := map[string][]int{}
	for i, it := range core.Items {
		if it.Alias != "" {
			k := strings.ToLower(it.Alias)
			aliasPos[k] = append(aliasPos[k], i)
		}
	}
	for _, r := range ctxRefs {
		if r.Table != "" {
			continue
		}
		for _, i := range aliasPos[strings.ToLower(r.Name)] {
			live[i] = true
		}
	}

	// Positional transfer: item i's references are live iff position i
	// is live. Iterate to a fixpoint so chains (and only true
	// self-sustaining dead cycles escape) are closed.
	for changed := true; changed; {
		changed = false
		for i, it := range core.Items {
			if !live[i] {
				continue
			}
			for _, r := range ast.ColumnRefs(it.Expr) {
				if r.Table != "" && !riAliases[strings.ToLower(r.Table)] {
					continue
				}
				if j, ok := idx[strings.ToLower(r.Name)]; ok && !live[j] {
					live[j] = true
					changed = true
				}
			}
		}
	}

	return Liveness{Live: live, Exact: true}
}

// ReferencedColumns returns the set of (lowercased) column names the
// statement references under any of the given aliases; unqualified
// references are included unconditionally. starSeen reports a * / t.*
// select item anywhere, which makes the set incomplete.
func ReferencedColumns(s *ast.SelectStmt, aliases map[string]bool) (cols map[string]bool, starSeen bool) {
	cols = map[string]bool{}
	refs, star := ast.StmtColumnRefs(s)
	for _, r := range refs {
		if r.Table != "" && !aliases[strings.ToLower(r.Table)] {
			continue
		}
		cols[strings.ToLower(r.Name)] = true
	}
	return cols, star
}

// cteAliases returns the lowercased aliases under which the named
// table is visible anywhere in the statement, always including the
// bare name itself so qualified references resolve even where the scan
// is aliased away.
func cteAliases(s *ast.SelectStmt, name string) map[string]bool {
	out := map[string]bool{strings.ToLower(name): true}
	found := false
	for _, b := range ast.StmtBaseTables(s) {
		if strings.EqualFold(b.Name, name) {
			found = true
			if b.Alias != "" {
				out[strings.ToLower(b.Alias)] = true
			}
		}
	}
	if !found {
		return map[string]bool{}
	}
	return out
}
