// Package sqltypes implements the SQL value model used throughout the
// engine: a small tagged union of NULL, BOOL, INT, FLOAT and STRING with
// SQL comparison semantics (three-valued logic, numeric type promotion)
// and the arithmetic and casting rules the expression evaluator builds on.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type identifies the SQL type of a Value or a column.
type Type uint8

// The supported SQL types. Unknown is used during planning for columns
// whose type cannot be determined yet (e.g. NULL literals).
const (
	Unknown Type = iota
	Null
	Bool
	Int
	Float
	String
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case Null:
		return "NULL"
	case Bool:
		return "BOOLEAN"
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "VARCHAR"
	default:
		return "UNKNOWN"
	}
}

// ParseType converts a SQL type name to a Type. It accepts the common
// aliases found in the paper's queries (int, bigint, float, double,
// numeric, varchar, text, boolean).
func ParseType(name string) (Type, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return Int, nil
	case "FLOAT", "DOUBLE", "REAL", "NUMERIC", "DECIMAL":
		return Float, nil
	case "VARCHAR", "TEXT", "CHAR", "STRING":
		return String, nil
	case "BOOL", "BOOLEAN":
		return Bool, nil
	default:
		return Unknown, fmt.Errorf("unknown type %q", name)
	}
}

// Value is a single SQL datum. The zero Value is SQL NULL.
//
// Values are small (32 bytes) and passed by value; rows are []Value.
type Value struct {
	// T is the runtime type tag.
	T Type
	// I holds Int and Bool (0/1) payloads.
	I int64
	// F holds Float payloads.
	F float64
	// S holds String payloads.
	S string
}

// Convenience constructors.

// NewInt returns an INT value.
func NewInt(i int64) Value { return Value{T: Int, I: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{T: Float, F: f} }

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{T: String, S: s} }

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value {
	if b {
		return Value{T: Bool, I: 1}
	}
	return Value{T: Bool}
}

// NullValue is the SQL NULL constant.
var NullValue = Value{T: Null}

// IsNull reports whether v is SQL NULL. The zero Value (Unknown tag) is
// treated as NULL as well so that uninitialized row slots behave safely.
func (v Value) IsNull() bool { return v.T == Null || v.T == Unknown }

// Bool returns the boolean payload. Only valid for Bool values.
func (v Value) Bool() bool { return v.I != 0 }

// Int returns the integer payload. Only valid for Int values.
func (v Value) Int() int64 { return v.I }

// Float returns the float payload, promoting Int values.
func (v Value) Float() float64 {
	if v.T == Int {
		return float64(v.I)
	}
	return v.F
}

// Str returns the string payload. Only valid for String values.
func (v Value) Str() string { return v.S }

// String renders the value the way the shell and EXPLAIN print it.
func (v Value) String() string {
	switch v.T {
	case Null, Unknown:
		return "NULL"
	case Bool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		// Integral floats of moderate magnitude print without an
		// exponent, as database clients expect (9999999, not
		// 9.999999e+06).
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return strconv.FormatFloat(v.F, 'f', -1, 64)
		}
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case String:
		return v.S
	default:
		return fmt.Sprintf("<bad value %d>", v.T)
	}
}

// isNumeric reports whether t is INT or FLOAT.
func isNumeric(t Type) bool { return t == Int || t == Float }

// Compare orders two values with SQL semantics and returns -1, 0 or +1.
// NULLs are not comparable in expressions (use Equal/Less via the
// evaluator, which handles three-valued logic); Compare is the total
// order used by ORDER BY and by hash-join key normalization, where NULL
// sorts first and equals itself.
func Compare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	// Numeric cross-type comparison promotes to float.
	if isNumeric(a.T) && isNumeric(b.T) {
		if a.T == Int && b.T == Int {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			}
			return 0
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	if a.T != b.T {
		// Incomparable types order by type tag so sorting is total.
		if a.T < b.T {
			return -1
		}
		return 1
	}
	switch a.T {
	case Bool:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case String:
		return strings.Compare(a.S, b.S)
	}
	return 0
}

// Equal reports SQL equality of two non-NULL values. If either side is
// NULL the result is unknown and ok is false.
func Equal(a, b Value) (eq, ok bool) {
	if a.IsNull() || b.IsNull() {
		return false, false
	}
	return Compare(a, b) == 0, true
}

// Key returns a normalized representation usable as a Go map key for
// grouping and hash joins. Int and Float values that represent the same
// number map to the same key, mirroring SQL join semantics where
// 1 = 1.0.
func (v Value) Key() Key {
	switch v.T {
	case Null, Unknown:
		return Key{k: keyNull}
	case Bool:
		return Key{k: keyBool, i: v.I}
	case Int:
		return Key{k: keyNum, f: float64(v.I)}
	case Float:
		return Key{k: keyNum, f: v.F}
	case String:
		return Key{k: keyStr, s: v.S}
	}
	return Key{k: keyNull}
}

// Key is a comparable normalization of a Value, used as (part of) map
// keys in hash aggregation and hash joins.
type Key struct {
	k keyKind
	i int64
	f float64
	s string
}

type keyKind uint8

const (
	keyNull keyKind = iota
	keyBool
	keyNum
	keyStr
)

// IsNull reports whether the key came from a NULL value.
func (k Key) IsNull() bool { return k.k == keyNull }

// Cast converts v to the target type using SQL CAST rules.
func Cast(v Value, to Type) (Value, error) {
	if v.IsNull() {
		return NullValue, nil
	}
	switch to {
	case Int:
		switch v.T {
		case Int:
			return v, nil
		case Float:
			return NewInt(int64(v.F)), nil
		case Bool:
			return NewInt(v.I), nil
		case String:
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				return NullValue, fmt.Errorf("cannot cast %q to INT", v.S)
			}
			return NewInt(i), nil
		}
	case Float:
		switch v.T {
		case Int:
			return NewFloat(float64(v.I)), nil
		case Float:
			return v, nil
		case Bool:
			return NewFloat(float64(v.I)), nil
		case String:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if err != nil {
				return NullValue, fmt.Errorf("cannot cast %q to FLOAT", v.S)
			}
			return NewFloat(f), nil
		}
	case String:
		return NewString(v.String()), nil
	case Bool:
		switch v.T {
		case Bool:
			return v, nil
		case Int:
			return NewBool(v.I != 0), nil
		case Float:
			return NewBool(v.F != 0), nil
		case String:
			b, err := strconv.ParseBool(strings.ToLower(strings.TrimSpace(v.S)))
			if err != nil {
				return NullValue, fmt.Errorf("cannot cast %q to BOOLEAN", v.S)
			}
			return NewBool(b), nil
		}
	}
	return NullValue, fmt.Errorf("unsupported cast from %s to %s", v.T, to)
}

// Arithmetic binary operators. All return NULL if either operand is NULL
// (SQL NULL propagation) and follow the usual numeric promotion: INT op
// INT yields INT (except division by zero, which is an error), and any
// FLOAT operand promotes the result to FLOAT.

// Add returns a + b.
func Add(a, b Value) (Value, error) { return arith(a, b, "+") }

// Sub returns a - b.
func Sub(a, b Value) (Value, error) { return arith(a, b, "-") }

// Mul returns a * b.
func Mul(a, b Value) (Value, error) { return arith(a, b, "*") }

// Div returns a / b. Integer division of two INTs truncates toward zero,
// matching the behaviour the FF query relies on being avoided via CAST.
func Div(a, b Value) (Value, error) { return arith(a, b, "/") }

// Mod returns a % b for INT operands, or math.Mod for FLOATs.
func Mod(a, b Value) (Value, error) { return arith(a, b, "%") }

func arith(a, b Value, op string) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return NullValue, nil
	}
	// String concatenation via "+" is deliberately not supported; SQL
	// uses || which the parser maps to Concat.
	if !isNumeric(a.T) || !isNumeric(b.T) {
		return NullValue, fmt.Errorf("operator %s requires numeric operands, got %s and %s", op, a.T, b.T)
	}
	if a.T == Int && b.T == Int {
		x, y := a.I, b.I
		switch op {
		case "+":
			return NewInt(x + y), nil
		case "-":
			return NewInt(x - y), nil
		case "*":
			return NewInt(x * y), nil
		case "/":
			if y == 0 {
				return NullValue, fmt.Errorf("division by zero")
			}
			return NewInt(x / y), nil
		case "%":
			if y == 0 {
				return NullValue, fmt.Errorf("division by zero")
			}
			return NewInt(x % y), nil
		}
	}
	x, y := a.Float(), b.Float()
	switch op {
	case "+":
		return NewFloat(x + y), nil
	case "-":
		return NewFloat(x - y), nil
	case "*":
		return NewFloat(x * y), nil
	case "/":
		if y == 0 {
			return NullValue, fmt.Errorf("division by zero")
		}
		return NewFloat(x / y), nil
	case "%":
		if y == 0 {
			return NullValue, fmt.Errorf("division by zero")
		}
		return NewFloat(math.Mod(x, y)), nil
	}
	return NullValue, fmt.Errorf("unknown operator %s", op)
}

// Neg returns -a.
func Neg(a Value) (Value, error) {
	if a.IsNull() {
		return NullValue, nil
	}
	switch a.T {
	case Int:
		return NewInt(-a.I), nil
	case Float:
		return NewFloat(-a.F), nil
	}
	return NullValue, fmt.Errorf("operator - requires a numeric operand, got %s", a.T)
}

// Concat returns the SQL || of two values (NULL-propagating).
func Concat(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return NullValue, nil
	}
	return NewString(a.String() + b.String()), nil
}

// ResultType computes the static result type of a binary arithmetic
// expression over operand types a and b, used by the planner for schema
// inference.
func ResultType(a, b Type, op string) Type {
	if op == "||" {
		return String
	}
	if a == Float || b == Float {
		return Float
	}
	if a == Int && b == Int {
		return Int
	}
	if a == Unknown || a == Null {
		return b
	}
	if b == Unknown || b == Null {
		return a
	}
	return Unknown
}

// Tri is SQL three-valued logic: True, False or Unknown (NULL).
type Tri uint8

// The three logic values.
const (
	TriUnknown Tri = iota
	TriFalse
	TriTrue
)

// TriOf converts a BOOLEAN Value to a Tri (NULL maps to TriUnknown).
func TriOf(v Value) Tri {
	if v.IsNull() {
		return TriUnknown
	}
	if v.Bool() {
		return TriTrue
	}
	return TriFalse
}

// Value converts a Tri back to a SQL BOOLEAN Value.
func (t Tri) Value() Value {
	switch t {
	case TriTrue:
		return NewBool(true)
	case TriFalse:
		return NewBool(false)
	}
	return NullValue
}

// And is three-valued AND.
func (t Tri) And(o Tri) Tri {
	if t == TriFalse || o == TriFalse {
		return TriFalse
	}
	if t == TriTrue && o == TriTrue {
		return TriTrue
	}
	return TriUnknown
}

// Or is three-valued OR.
func (t Tri) Or(o Tri) Tri {
	if t == TriTrue || o == TriTrue {
		return TriTrue
	}
	if t == TriFalse && o == TriFalse {
		return TriFalse
	}
	return TriUnknown
}

// Not is three-valued NOT.
func (t Tri) Not() Tri {
	switch t {
	case TriTrue:
		return TriFalse
	case TriFalse:
		return TriTrue
	}
	return TriUnknown
}
