package sqltypes

import (
	"math"
	"strings"
)

// Row is a single tuple of values.
type Row []Value

// Clone returns a deep copy of the row (Values are immutable so a
// shallow slice copy suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports whether two rows have identical values (NULL equals NULL
// here; this is storage equality, not SQL expression equality). It is
// used by the Delta termination condition to detect changed rows.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i].IsNull() != o[i].IsNull() {
			return false
		}
		if r[i].IsNull() {
			continue
		}
		if Compare(r[i], o[i]) != 0 {
			return false
		}
	}
	return true
}

// String renders the row as a comma-separated list, for tests and debug
// output.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}

// Column describes one column of a schema.
type Column struct {
	// Name is the (unqualified) column name.
	Name string
	// Type is the declared or inferred type.
	Type Type
}

// Schema is an ordered list of columns.
type Schema []Column

// ColumnIndex returns the position of the named column (case
// insensitive), or -1 if absent.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// String renders the schema as "(a INT, b FLOAT)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// RowKey builds a composite map key from the given column positions of a
// row. It is the common key-construction path for hash joins, grouping
// and the merge step.
func RowKey(r Row, cols []int) CompositeKey {
	switch len(cols) {
	case 0:
		return CompositeKey{}
	case 1:
		return CompositeKey{K1: r[cols[0]].Key(), N: 1}
	case 2:
		return CompositeKey{K1: r[cols[0]].Key(), K2: r[cols[1]].Key(), N: 2}
	case 3:
		return CompositeKey{K1: r[cols[0]].Key(), K2: r[cols[1]].Key(), K3: r[cols[2]].Key(), N: 3}
	}
	// Wide keys fall back to a string encoding.
	var b strings.Builder
	hasNull := false
	for _, c := range cols {
		k := r[c].Key()
		if k.IsNull() {
			hasNull = true
		}
		encodeKey(&b, k)
		b.WriteByte(0)
	}
	return CompositeKey{Wide: b.String(), N: len(cols), wideNull: hasNull}
}

// ValuesKey builds a composite key from a full row (all columns).
func ValuesKey(r Row) CompositeKey {
	cols := make([]int, len(r))
	for i := range cols {
		cols[i] = i
	}
	return RowKey(r, cols)
}

func encodeKey(b *strings.Builder, k Key) {
	switch k.k {
	case keyNull:
		b.WriteByte('n')
	case keyBool:
		b.WriteByte('b')
		if k.i != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	case keyNum:
		b.WriteByte('f')
		// Fixed-width binary encoding of the float bits.
		bits := floatBits(k.f)
		for i := 0; i < 8; i++ {
			b.WriteByte(byte(bits >> (8 * i)))
		}
	case keyStr:
		b.WriteByte('s')
		b.WriteString(k.s)
	}
}

func floatBits(f float64) uint64 {
	// Normalize -0 to +0 so they hash identically.
	if f == 0 {
		f = 0
	}
	return math.Float64bits(f)
}

// CompositeKey is a comparable key over up to three columns, with a
// string fallback for wider keys. The zero CompositeKey is the empty
// (zero-column) key.
type CompositeKey struct {
	K1, K2, K3 Key
	Wide       string
	N          int
	wideNull   bool
}

// Hash returns a 64-bit hash of the key, used by the MPP layer to
// route rows to partitions. Equal keys hash equally.
func (k CompositeKey) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	mix64 := func(u uint64) {
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	}
	mixKey := func(kk Key) {
		mix(byte(kk.k))
		switch kk.k {
		case keyBool:
			mix(byte(kk.i))
		case keyNum:
			f := kk.f
			if f == 0 {
				f = 0 // normalize -0 so it hashes like +0 (== treats them equal)
			}
			mix64(math.Float64bits(f))
		case keyStr:
			for i := 0; i < len(kk.s); i++ {
				mix(kk.s[i])
			}
		}
	}
	if k.Wide != "" {
		for i := 0; i < len(k.Wide); i++ {
			mix(k.Wide[i])
		}
		return h
	}
	if k.N >= 1 {
		mixKey(k.K1)
	}
	if k.N >= 2 {
		mixKey(k.K2)
	}
	if k.N >= 3 {
		mixKey(k.K3)
	}
	return h
}

// Partition is THE routing function of the simulated MPP engine: it
// maps a key to the partition that owns rows with that key, and every
// layer that places rows — storage inserts on a table's DistCol, the
// MPP shuffle exchange, the full-row distinct exchange — must agree on
// it, because the static partition-property analysis
// (internal/distprop) licenses shuffle elision exactly on the claim
// "rows keyed k already live in partition k.Partition(parts)".
//
// Contract:
//   - parts <= 1: everything is partition 0.
//   - any NULL component: partition 0 (NULL never matches in SQL
//     equality, so co-locating all NULLs is always safe and keeps the
//     routing total).
//   - a single non-NULL component: the legacy scalar FNV-1a hash
//     (untagged, numeric values via their float bits so 1 and 1.0
//     co-locate) — the same function storage has always used for
//     DistCol inserts, so base-table layouts are unchanged.
//   - wider keys: the composite Hash().
func (k CompositeKey) Partition(parts int) int {
	if parts <= 1 {
		return 0
	}
	if k.HasNull() {
		return 0
	}
	if k.N == 1 && k.Wide == "" {
		return int(k.K1.partitionHash() % uint64(parts))
	}
	return int(k.Hash() % uint64(parts))
}

// partitionHash is the single-value routing hash: FNV-1a over the
// normalized scalar without a type tag, matching the historical
// storage-layer hash so existing base-table layouts are preserved.
// Callers must not pass a NULL key (Partition routes those to 0 before
// hashing).
func (k Key) partitionHash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	switch k.k {
	case keyNum:
		u := floatBits(k.f)
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	case keyStr:
		for i := 0; i < len(k.s); i++ {
			mix(k.s[i])
		}
	case keyBool:
		mix(byte(k.i))
	}
	return h
}

// HasNull reports whether any component of the key is NULL; hash joins
// use this to skip NULL keys (NULL never matches in SQL equality).
func (k CompositeKey) HasNull() bool {
	if k.Wide != "" {
		return k.wideNull
	}
	if k.N >= 1 && k.K1.IsNull() {
		return true
	}
	if k.N >= 2 && k.K2.IsNull() {
		return true
	}
	if k.N >= 3 && k.K3.IsNull() {
		return true
	}
	return false
}
