package sqltypes

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Null: "NULL", Bool: "BOOLEAN", Int: "INT", Float: "FLOAT",
		String: "VARCHAR", Unknown: "UNKNOWN",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestParseType(t *testing.T) {
	good := map[string]Type{
		"int": Int, "INTEGER": Int, "BigInt": Int, "smallint": Int,
		"float": Float, "DOUBLE": Float, "numeric": Float, "real": Float, "decimal": Float,
		"varchar": String, "TEXT": String, "char": String, "string": String,
		"bool": Bool, "BOOLEAN": Bool,
	}
	for name, want := range good {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestValueAccessors(t *testing.T) {
	if !NullValue.IsNull() {
		t.Error("NullValue should be null")
	}
	if (Value{}).IsNull() == false {
		t.Error("zero Value should be null")
	}
	if NewInt(7).Int() != 7 {
		t.Error("Int accessor")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("Float accessor")
	}
	if NewInt(3).Float() != 3.0 {
		t.Error("Int should promote via Float()")
	}
	if NewString("x").Str() != "x" {
		t.Error("Str accessor")
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool accessor")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NullValue, "NULL"},
		{NewInt(-42), "-42"},
		{NewFloat(1.5), "1.5"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewString("hi"), "hi"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(1), 1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(1), NewFloat(1.0), 0},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{NullValue, NullValue, 0},
		{NullValue, NewInt(0), -1},
		{NewInt(0), NullValue, 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	if eq, ok := Equal(NewInt(1), NewFloat(1)); !ok || !eq {
		t.Error("1 = 1.0 should be true")
	}
	if _, ok := Equal(NullValue, NewInt(1)); ok {
		t.Error("NULL = 1 should be unknown")
	}
	if eq, ok := Equal(NewString("a"), NewString("b")); !ok || eq {
		t.Error("'a' = 'b' should be false")
	}
}

func TestCast(t *testing.T) {
	cases := []struct {
		v    Value
		to   Type
		want Value
		err  bool
	}{
		{NewFloat(2.9), Int, NewInt(2), false},
		{NewInt(3), Float, NewFloat(3), false},
		{NewString("12"), Int, NewInt(12), false},
		{NewString(" 2.5 "), Float, NewFloat(2.5), false},
		{NewString("abc"), Int, NullValue, true},
		{NewInt(0), Bool, NewBool(false), false},
		{NewInt(5), Bool, NewBool(true), false},
		{NewFloat(1.25), String, NewString("1.25"), false},
		{NullValue, Int, NullValue, false},
		{NewBool(true), Int, NewInt(1), false},
		{NewString("true"), Bool, NewBool(true), false},
	}
	for _, c := range cases {
		got, err := Cast(c.v, c.to)
		if (err != nil) != c.err {
			t.Errorf("Cast(%v, %v) error = %v, wantErr %v", c.v, c.to, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("Cast(%v, %v) = %v, want %v", c.v, c.to, got, c.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	mustV := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return v
	}
	if got := mustV(Add(NewInt(2), NewInt(3))); got != NewInt(5) {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustV(Add(NewInt(2), NewFloat(0.5))); got != NewFloat(2.5) {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := mustV(Sub(NewInt(2), NewInt(5))); got != NewInt(-3) {
		t.Errorf("2-5 = %v", got)
	}
	if got := mustV(Mul(NewFloat(1.5), NewInt(4))); got != NewFloat(6) {
		t.Errorf("1.5*4 = %v", got)
	}
	if got := mustV(Div(NewInt(7), NewInt(2))); got != NewInt(3) {
		t.Errorf("7/2 int division = %v", got)
	}
	if got := mustV(Div(NewFloat(7), NewInt(2))); got != NewFloat(3.5) {
		t.Errorf("7.0/2 = %v", got)
	}
	if got := mustV(Mod(NewInt(7), NewInt(3))); got != NewInt(1) {
		t.Errorf("7%%3 = %v", got)
	}
	if got := mustV(Mod(NewFloat(7.5), NewInt(2))); got != NewFloat(1.5) {
		t.Errorf("7.5%%2 = %v", got)
	}
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("1/0 should error")
	}
	if _, err := Mod(NewInt(1), NewInt(0)); err == nil {
		t.Error("1%0 should error")
	}
	if _, err := Div(NewFloat(1), NewFloat(0)); err == nil {
		t.Error("1.0/0.0 should error")
	}
	if _, err := Add(NewString("a"), NewInt(1)); err == nil {
		t.Error("'a'+1 should error")
	}
	// NULL propagation.
	if got := mustV(Add(NullValue, NewInt(1))); !got.IsNull() {
		t.Error("NULL+1 should be NULL")
	}
	if got := mustV(Mul(NewInt(1), NullValue)); !got.IsNull() {
		t.Error("1*NULL should be NULL")
	}
}

func TestNegConcat(t *testing.T) {
	if v, err := Neg(NewInt(4)); err != nil || v != NewInt(-4) {
		t.Errorf("Neg(4) = %v, %v", v, err)
	}
	if v, err := Neg(NewFloat(1.5)); err != nil || v != NewFloat(-1.5) {
		t.Errorf("Neg(1.5) = %v, %v", v, err)
	}
	if v, err := Neg(NullValue); err != nil || !v.IsNull() {
		t.Errorf("Neg(NULL) = %v, %v", v, err)
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Error("Neg('x') should error")
	}
	if v, err := Concat(NewString("a"), NewInt(1)); err != nil || v != NewString("a1") {
		t.Errorf("Concat = %v, %v", v, err)
	}
	if v, err := Concat(NullValue, NewString("a")); err != nil || !v.IsNull() {
		t.Errorf("Concat(NULL,..) = %v, %v", v, err)
	}
}

func TestResultType(t *testing.T) {
	if ResultType(Int, Int, "+") != Int {
		t.Error("INT+INT should be INT")
	}
	if ResultType(Int, Float, "*") != Float {
		t.Error("INT*FLOAT should be FLOAT")
	}
	if ResultType(Int, Null, "+") != Int {
		t.Error("INT+NULL should infer INT")
	}
	if ResultType(Unknown, Float, "+") != Float {
		t.Error("UNKNOWN+FLOAT should infer FLOAT")
	}
	if ResultType(Int, Int, "||") != String {
		t.Error("|| should be VARCHAR")
	}
}

func TestTriLogic(t *testing.T) {
	T, F, U := TriTrue, TriFalse, TriUnknown
	andTable := []struct{ a, b, want Tri }{
		{T, T, T}, {T, F, F}, {F, T, F}, {F, F, F},
		{T, U, U}, {U, T, U}, {F, U, F}, {U, F, F}, {U, U, U},
	}
	for _, c := range andTable {
		if got := c.a.And(c.b); got != c.want {
			t.Errorf("%v AND %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	orTable := []struct{ a, b, want Tri }{
		{T, T, T}, {T, F, T}, {F, T, T}, {F, F, F},
		{T, U, T}, {U, T, T}, {F, U, U}, {U, F, U}, {U, U, U},
	}
	for _, c := range orTable {
		if got := c.a.Or(c.b); got != c.want {
			t.Errorf("%v OR %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if T.Not() != F || F.Not() != T || U.Not() != U {
		t.Error("NOT table wrong")
	}
	if TriOf(NewBool(true)) != T || TriOf(NewBool(false)) != F || TriOf(NullValue) != U {
		t.Error("TriOf wrong")
	}
	if T.Value() != NewBool(true) || F.Value() != NewBool(false) || !U.Value().IsNull() {
		t.Error("Tri.Value wrong")
	}
}

// randomValue generates an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return NullValue
	case 1:
		return NewInt(int64(r.Intn(2000) - 1000))
	case 2:
		return NewFloat(float64(r.Intn(2000)-1000) / 4)
	case 3:
		return NewString(string(rune('a' + r.Intn(26))))
	default:
		return NewBool(r.Intn(2) == 0)
	}
}

// Generate implements quick.Generator so Value can be used directly in
// property tests.
func (Value) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomValue(r))
}

func TestCompareProperties(t *testing.T) {
	// Antisymmetry: Compare(a,b) == -Compare(b,a).
	anti := func(a, b Value) bool { return Compare(a, b) == -Compare(b, a) }
	if err := quick.Check(anti, nil); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	// Reflexivity: Compare(a,a) == 0.
	refl := func(a Value) bool { return Compare(a, a) == 0 }
	if err := quick.Check(refl, nil); err != nil {
		t.Errorf("reflexivity: %v", err)
	}
	// Transitivity of <= on a triple.
	trans := func(a, b, c Value) bool {
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 {
			return Compare(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Errorf("transitivity: %v", err)
	}
}

func TestKeyProperties(t *testing.T) {
	// Values that compare equal must produce equal keys (so hash joins
	// agree with sort-based comparison).
	agree := func(a, b Value) bool {
		if Compare(a, b) == 0 {
			return a.Key() == b.Key()
		}
		return true
	}
	if err := quick.Check(agree, nil); err != nil {
		t.Errorf("key/compare agreement: %v", err)
	}
	// Int and Float representations of the same number share a key.
	if NewInt(3).Key() != NewFloat(3).Key() {
		t.Error("3 and 3.0 should share a key")
	}
	if !NullValue.Key().IsNull() {
		t.Error("NULL key should report IsNull")
	}
	if NewInt(1).Key().IsNull() {
		t.Error("non-null key should not report IsNull")
	}
}

func TestCastRoundTripProperty(t *testing.T) {
	// Casting an INT to FLOAT and back is the identity for small ints.
	f := func(i int32) bool {
		v := NewInt(int64(i))
		fv, err := Cast(v, Float)
		if err != nil {
			return false
		}
		back, err := Cast(fv, Int)
		if err != nil {
			return false
		}
		return back == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("int->float->int roundtrip: %v", err)
	}
	// Casting anything to STRING then parsing back preserves numerics.
	g := func(i int32) bool {
		v := NewInt(int64(i))
		s, _ := Cast(v, String)
		back, err := Cast(s, Int)
		return err == nil && back == v
	}
	if err := quick.Check(g, nil); err != nil {
		t.Errorf("int->string->int roundtrip: %v", err)
	}
}

func TestFloatKeyNormalization(t *testing.T) {
	negZero := NewFloat(math.Copysign(0, -1))
	posZero := NewFloat(0)
	if negZero.Key() != posZero.Key() {
		t.Error("-0.0 and +0.0 should share a key")
	}
}
