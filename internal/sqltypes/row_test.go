package sqltypes

import (
	"testing"
	"testing/quick"
)

func TestRowCloneEqual(t *testing.T) {
	r := Row{NewInt(1), NewString("x"), NullValue}
	c := r.Clone()
	if !r.Equal(c) {
		t.Error("clone should equal original")
	}
	c[0] = NewInt(2)
	if r.Equal(c) {
		t.Error("mutated clone should differ")
	}
	if r[0] != NewInt(1) {
		t.Error("clone mutation leaked into original")
	}
	if (Row{NewInt(1)}).Equal(Row{NewInt(1), NewInt(2)}) {
		t.Error("different lengths should not be equal")
	}
	if !(Row{NullValue}).Equal(Row{NullValue}) {
		t.Error("NULL should equal NULL in storage equality")
	}
	if (Row{NullValue}).Equal(Row{NewInt(0)}) {
		t.Error("NULL should not equal 0")
	}
}

func TestRowString(t *testing.T) {
	r := Row{NewInt(1), NewString("a"), NullValue}
	if got := r.String(); got != "1, a, NULL" {
		t.Errorf("Row.String() = %q", got)
	}
}

func TestSchema(t *testing.T) {
	s := Schema{{Name: "Node", Type: Int}, {Name: "Rank", Type: Float}}
	if s.ColumnIndex("node") != 0 {
		t.Error("ColumnIndex should be case-insensitive")
	}
	if s.ColumnIndex("RANK") != 1 {
		t.Error("ColumnIndex RANK")
	}
	if s.ColumnIndex("missing") != -1 {
		t.Error("missing column should be -1")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "Node" || names[1] != "Rank" {
		t.Errorf("Names() = %v", names)
	}
	c := s.Clone()
	c[0].Name = "other"
	if s[0].Name != "Node" {
		t.Error("Clone should not alias")
	}
	if got := s.String(); got != "(Node INT, Rank FLOAT)" {
		t.Errorf("Schema.String() = %q", got)
	}
}

func TestRowKey(t *testing.T) {
	a := Row{NewInt(1), NewString("x"), NewFloat(2)}
	b := Row{NewFloat(1), NewString("x"), NewInt(2)}
	if RowKey(a, []int{0, 1, 2}) != RowKey(b, []int{0, 1, 2}) {
		t.Error("numerically equal rows should share keys")
	}
	if RowKey(a, []int{0}) == RowKey(b, []int{1}) {
		t.Error("different columns should (almost surely) differ")
	}
	if RowKey(a, nil) != (CompositeKey{}) {
		t.Error("empty key should be the zero CompositeKey")
	}
	// Wide keys (>3 columns) use the string fallback.
	w1 := Row{NewInt(1), NewInt(2), NewInt(3), NewInt(4)}
	w2 := Row{NewInt(1), NewInt(2), NewInt(3), NewFloat(4)}
	if RowKey(w1, []int{0, 1, 2, 3}) != RowKey(w2, []int{0, 1, 2, 3}) {
		t.Error("wide keys with equal values should match")
	}
	w3 := Row{NewInt(1), NewInt(2), NewInt(3), NewInt(5)}
	if RowKey(w1, []int{0, 1, 2, 3}) == RowKey(w3, []int{0, 1, 2, 3}) {
		t.Error("wide keys with different values should differ")
	}
}

func TestCompositeKeyHasNull(t *testing.T) {
	r := Row{NewInt(1), NullValue, NewInt(3), NullValue, NewInt(5)}
	if !RowKey(r, []int{1}).HasNull() {
		t.Error("single null key")
	}
	if RowKey(r, []int{0}).HasNull() {
		t.Error("non-null single key")
	}
	if !RowKey(r, []int{0, 1}).HasNull() {
		t.Error("two-col key with null")
	}
	if !RowKey(r, []int{0, 2, 1}).HasNull() {
		t.Error("three-col key with null")
	}
	if !RowKey(r, []int{0, 2, 4, 3}).HasNull() {
		t.Error("wide key with null")
	}
	if RowKey(r, []int{0, 2, 4, 0}).HasNull() {
		t.Error("wide key without null")
	}
}

func TestValuesKeyProperty(t *testing.T) {
	// Rows equal under storage equality produce equal full-row keys.
	f := func(a, b Value) bool {
		r1, r2 := Row{a, b}, Row{a, b}
		return ValuesKey(r1) == ValuesKey(r2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("ValuesKey determinism: %v", err)
	}
	g := func(a, b Value) bool {
		if Compare(a, b) == 0 {
			return true
		}
		return ValuesKey(Row{a}) != ValuesKey(Row{b})
	}
	if err := quick.Check(g, nil); err != nil {
		t.Errorf("ValuesKey separation: %v", err)
	}
}
