// Package mpp simulates the shared-nothing execution of the paper's
// MPPDB substrate: plans run as per-partition fragments connected by
// shuffle exchanges. Base tables are already hash-partitioned in
// storage; joins repartition both sides on the join keys, aggregations
// repartition on the group keys, and order-sensitive operators gather
// to a single fragment. Every shuffled row is counted, making data
// movement a first-class metric.
package mpp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dbspinner/internal/ast"
	"dbspinner/internal/exec"
	"dbspinner/internal/expr"
	"dbspinner/internal/faultinject"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

// Stats counts MPP-level activity.
type Stats struct {
	// RowsShuffled is the number of rows processed by exchange
	// operators: every row an exchange hashes and routes (or
	// replicates, for broadcasts) counts, whether or not it lands on
	// the partition it came from. All exchanges — hash shuffles,
	// full-row shuffles, broadcasts and gathers — account identically,
	// so an elided exchange shows up as a genuine drop in this counter.
	RowsShuffled int64
	// RowsRelocated is the subset of RowsShuffled that actually changed
	// partitions in a hash exchange. A shuffle of an already
	// co-partitioned input relocates nothing; the layout-preservation
	// tests pin that.
	RowsRelocated int64
	// Fragments is the number of parallel fragments executed.
	Fragments int64
	// ShufflesElided counts exchange operators skipped because the
	// static partition-property analysis proved their input already
	// co-partitioned on the exchange keys.
	ShufflesElided int64
	// RowsElided counts the input rows of elided exchanges: rows that
	// were not rehashed and routed because the analysis proved they
	// already sit at their destination.
	RowsElided int64
}

// Elide annotates one plan node with the exchanges the static
// partition-property analysis (internal/distprop) proved redundant.
// Each licensed exchange carries the claimed routing columns — row
// positions in the exchange's input — whose RowKey(...).Partition
// destination every input row provably already occupies. The machine
// never derives these itself; it only consumes claims that the
// verifier has independently re-derived (fail closed: an absent entry
// means every exchange runs).
type Elide struct {
	// Left / Right license skipping the join-side shuffles; Input
	// licenses the aggregate group-by exchange (replaced by local
	// pre-aggregation plus an output-row shuffle) or the distinct
	// full-row exchange.
	Left, Right, Input bool
	// LeftCols / RightCols / InputCols are the claimed routing columns
	// of the corresponding elided exchange.
	LeftCols, RightCols, InputCols []int
}

// Machine evaluates plans over P partitions with up to P concurrent
// fragment goroutines.
type Machine struct {
	RT    exec.Runtime
	Parts int
	Stats *Stats
	Exec  *exec.Stats
	// Ctx, when non-nil, is polled at every partition batch (the start
	// of each parallel region) and — through per-partition
	// exec.CancelCheckers — inside the fragments' row loops, so a
	// canceled query stops mid-batch. A nil Ctx keeps the zero-cost
	// uncancellable path.
	Ctx context.Context
	// Elide maps plan nodes to their statically licensed exchange
	// elisions. A nil map (the default) runs every exchange.
	Elide map[plan.Node]Elide
	// CheckElide enables the dynamic cross-check: every row feeding an
	// elided exchange is re-hashed at consumption and the run fails if
	// any row is not already in its claimed partition.
	CheckElide bool
	// Faults, when non-nil, arms the partition-batch fault-injection
	// hook (internal/faultinject): each parallel region takes the
	// point serially before fanning out and fires it inside partition
	// 0's worker, keeping the hit count deterministic. Only the
	// program's top-level machine is armed — per-step machines of
	// scheduled regions would interleave the counter nondeterministically.
	Faults *faultinject.Registry
}

// New creates a machine. parts must be >= 1.
func New(rt exec.Runtime, parts int, stats *Stats, execStats *exec.Stats) *Machine {
	if parts < 1 {
		parts = 1
	}
	if stats == nil {
		stats = &Stats{}
	}
	if execStats == nil {
		execStats = &exec.Stats{}
	}
	return &Machine{RT: rt, Parts: parts, Stats: stats, Exec: execStats}
}

// relation is a partitioned intermediate result flowing between
// fragments.
type relation struct {
	parts [][]sqltypes.Row
}

func (m *Machine) newRelation() *relation {
	return &relation{parts: make([][]sqltypes.Row, m.Parts)}
}

func (r *relation) gather() []sqltypes.Row {
	n := 0
	for _, p := range r.parts {
		n += len(p)
	}
	out := make([]sqltypes.Row, 0, n)
	for _, p := range r.parts {
		out = append(out, p...)
	}
	return out
}

// Run executes a plan in parallel and returns the gathered rows.
func (m *Machine) Run(n plan.Node) ([]sqltypes.Row, error) {
	rel, err := m.eval(n)
	if err != nil {
		return nil, err
	}
	return rel.gather(), nil
}

// Materialize executes a plan in parallel into a storage table.
func (m *Machine) Materialize(n plan.Node, name string) (*storage.Table, error) {
	rel, err := m.eval(n)
	if err != nil {
		return nil, err
	}
	t := storage.NewTable(name, plan.Schema(n), m.Parts)
	// Keep the fragment partitioning: the next step's scans read the
	// partitions as they were produced (no extra shuffle). The write-out
	// is one fragment per partition, counted like Run's parallel
	// regions even though the in-memory adoption is a slice swap.
	for i, p := range rel.parts {
		t.Parts[i] = p
	}
	atomic.AddInt64(&m.Stats.Fragments, int64(m.Parts))
	return t, nil
}

// checkpoint polls the machine's context; it is the cooperative
// cancellation point every parallel region consults before fanning
// out. A nil Ctx never fires.
func (m *Machine) checkpoint() error {
	if m.Ctx == nil {
		return nil
	}
	return m.Ctx.Err()
}

// isContextErr reports whether err stems from a fired context. (A
// local copy of the core-layer helper: mpp sits below core and cannot
// import it.)
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// parallel runs fn once per partition index, concurrently. Each
// worker receives a per-partition CancelChecker (possibly nil) to poll
// in its row loops. The first partition to fail cancels its siblings,
// which then stop at their next poll instead of running the batch to
// completion; the error returned is the first failure in time — except
// that a sibling's induced cancellation error never masks the real
// error that triggered it.
func (m *Machine) parallel(fn func(p int, cc *exec.CancelChecker) error) error {
	if err := m.checkpoint(); err != nil {
		return err
	}
	// The partition-batch fault hook: taken serially before the
	// fan-out (deterministic hit count) and fired inside partition 0's
	// worker, under the same containment real panics get.
	batchFault := m.Faults.Take(faultinject.PointPartition)
	outer := m.Ctx
	if outer == nil {
		outer = context.Background()
	}
	pctx, cancel := context.WithCancel(outer)
	defer cancel()

	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for p := 0; p < m.Parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if pctx.Err() != nil {
				return // a sibling already failed; skip the batch
			}
			// Contain converts a worker panic into a *faultinject.
			// PanicError carrying the partition; the core layer promotes
			// it with iteration and step provenance. No panic escapes the
			// goroutine, so no query can take down the process.
			err := faultinject.Contain(p, func() error {
				if p == 0 {
					if ferr := faultinject.Trigger(batchFault); ferr != nil {
						return ferr
					}
				}
				return fn(p, exec.NewCancelChecker(pctx))
			})
			if err == nil {
				return
			}
			mu.Lock()
			if first == nil || (isContextErr(first) && !isContextErr(err)) {
				first = err
			}
			mu.Unlock()
			cancel()
		}(p)
	}
	wg.Wait()
	atomic.AddInt64(&m.Stats.Fragments, int64(m.Parts))
	if first != nil {
		return first
	}
	// Workers skipped by an external cancellation record no error;
	// report the outer context's verdict so the caller still fails.
	if m.Ctx != nil {
		return m.Ctx.Err()
	}
	return nil
}

// shuffle redistributes a relation so that rows with equal key values
// land in the same partition. NULL keys go to partition 0 (they never
// match in joins but must survive for outer joins) — the same
// destination sqltypes.CompositeKey.Partition assigns them, so the
// exchange and the storage layer agree on one routing function.
func (m *Machine) shuffle(in *relation, keys []*expr.Compiled) (*relation, error) {
	return m.shuffleBy(in, func(r sqltypes.Row) (int, error) {
		key, null, err := exec.KeyFor(keys, r)
		if err != nil {
			return 0, err
		}
		if null {
			// KeyFor aborts key construction on the first NULL, so route
			// explicitly; Partition sends NULL-bearing keys to 0 too.
			return 0, nil
		}
		return key.Partition(m.Parts), nil
	})
}

// shuffleCols redistributes a relation routing each row by the values
// at the given column positions — the direct-column variant of shuffle
// used by the elided-aggregate path, where the routing values are
// already materialized in the row.
func (m *Machine) shuffleCols(in *relation, cols []int) (*relation, error) {
	return m.shuffleBy(in, func(r sqltypes.Row) (int, error) {
		return sqltypes.RowKey(r, cols).Partition(m.Parts), nil
	})
}

// shuffleBy is the exchange body shared by every shuffle variant:
// per-source locals are concatenated in source-partition order so the
// exchange is deterministic run to run. Every routed row counts toward
// RowsShuffled; the rows that actually change partitions additionally
// count toward RowsRelocated.
func (m *Machine) shuffleBy(in *relation, route func(sqltypes.Row) (int, error)) (*relation, error) {
	locals := make([][][]sqltypes.Row, m.Parts)
	routed := int64(0)
	moved := int64(0)
	err := m.parallel(func(p int, cc *exec.CancelChecker) error {
		local := make([][]sqltypes.Row, m.Parts)
		atomic.AddInt64(&routed, int64(len(in.parts[p])))
		for _, r := range in.parts[p] {
			if err := cc.Tick(); err != nil {
				return err
			}
			dst, err := route(r)
			if err != nil {
				return err
			}
			local[dst] = append(local[dst], r)
			if dst != p {
				atomic.AddInt64(&moved, 1)
			}
		}
		locals[p] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := m.newRelation()
	for dst := 0; dst < m.Parts; dst++ {
		for src := 0; src < m.Parts; src++ {
			out.parts[dst] = append(out.parts[dst], locals[src][dst]...)
		}
	}
	atomic.AddInt64(&m.Stats.RowsShuffled, routed)
	atomic.AddInt64(&m.Stats.RowsRelocated, moved)
	return out, nil
}

// noteElide records an elided exchange over the given input and, when
// CheckElide is set, cross-checks the static claim dynamically: every
// row must already live in the partition the routing columns hash it
// to. The check is the runtime analogue of storage.Guard for the
// partition-property analysis — behavior never depends on it, an
// unsound claim is reported as an error.
func (m *Machine) noteElide(in *relation, cols []int, what string) error {
	n := int64(0)
	for _, p := range in.parts {
		n += int64(len(p))
	}
	atomic.AddInt64(&m.Stats.ShufflesElided, 1)
	atomic.AddInt64(&m.Stats.RowsElided, n)
	if !m.CheckElide {
		return nil
	}
	return m.parallel(func(p int, cc *exec.CancelChecker) error {
		for _, r := range in.parts[p] {
			if err := cc.Tick(); err != nil {
				return err
			}
			if dst := sqltypes.RowKey(r, cols).Partition(m.Parts); dst != p {
				return fmt.Errorf("mpp: elided %s exchange is unsound: row in partition %d routes to %d on cols %v", what, p, dst, cols)
			}
		}
		return nil
	})
}

// eval recursively evaluates a plan node into a partitioned relation.
func (m *Machine) eval(n plan.Node) (*relation, error) {
	switch t := n.(type) {
	case *plan.Scan, *plan.NamedResult:
		return m.evalScan(n)
	case *plan.Alias:
		return m.eval(t.Input)
	case *plan.Filter:
		return m.evalFilter(t)
	case *plan.Project:
		return m.evalProject(t)
	case *plan.Join:
		return m.evalJoin(t)
	case *plan.Aggregate:
		return m.evalAggregate(t)
	case *plan.Union:
		return m.evalUnion(t)
	case *plan.Distinct:
		return m.evalDistinct(t)
	case *plan.TopN:
		return m.evalTopN(t)
	case *plan.EmptyNode:
		return m.newRelation(), nil
	case *plan.Sort, *plan.Limit, *plan.Trim, *plan.OneRow, *plan.ValuesNode:
		return m.evalSequential(n)
	}
	return nil, fmt.Errorf("mpp: unsupported plan node %T", n)
}

func (m *Machine) evalScan(n plan.Node) (*relation, error) {
	var t *storage.Table
	var err error
	switch s := n.(type) {
	case *plan.Scan:
		t, err = m.RT.BaseTable(s.Table)
	case *plan.NamedResult:
		t, err = m.RT.Result(s.Name)
	}
	if err != nil {
		return nil, err
	}
	out := m.newRelation()
	// Re-slice the table's partitions onto the machine's layout.
	if len(t.Parts) == m.Parts {
		for i, p := range t.Parts {
			out.parts[i] = p
			atomic.AddInt64(&m.Exec.RowsScanned, int64(len(p)))
		}
		return out, nil
	}
	i := 0
	for _, p := range t.Parts {
		for _, r := range p {
			out.parts[i%m.Parts] = append(out.parts[i%m.Parts], r)
			i++
		}
	}
	atomic.AddInt64(&m.Exec.RowsScanned, int64(i))
	return out, nil
}

func (m *Machine) evalFilter(t *plan.Filter) (*relation, error) {
	in, err := m.eval(t.Input)
	if err != nil {
		return nil, err
	}
	cond, err := expr.Compile(t.Cond, nodeEnv(t.Input))
	if err != nil {
		return nil, err
	}
	out := m.newRelation()
	err = m.parallel(func(p int, cc *exec.CancelChecker) error {
		kept := make([]sqltypes.Row, 0, len(in.parts[p]))
		for _, r := range in.parts[p] {
			if err := cc.Tick(); err != nil {
				return err
			}
			v, err := cond.Eval(r)
			if err != nil {
				return err
			}
			if sqltypes.TriOf(v) == sqltypes.TriTrue {
				kept = append(kept, r)
			}
		}
		out.parts[p] = kept
		return nil
	})
	return out, err
}

func (m *Machine) evalProject(t *plan.Project) (*relation, error) {
	in, err := m.eval(t.Input)
	if err != nil {
		return nil, err
	}
	env := nodeEnv(t.Input)
	// Compile one evaluator set per fragment: Compiled closures are
	// stateless, but building per fragment keeps the model honest
	// (each node compiles its own fragment plan).
	out := m.newRelation()
	err = m.parallel(func(p int, cc *exec.CancelChecker) error {
		items := make([]*expr.Compiled, len(t.Items))
		for i, it := range t.Items {
			c, err := expr.Compile(it.Expr, env)
			if err != nil {
				return err
			}
			items[i] = c
		}
		res := make([]sqltypes.Row, len(in.parts[p]))
		for ri, r := range in.parts[p] {
			if err := cc.Tick(); err != nil {
				return err
			}
			row := make(sqltypes.Row, len(items))
			for i, c := range items {
				v, err := c.Eval(r)
				if err != nil {
					return err
				}
				row[i] = v
			}
			res[ri] = row
		}
		out.parts[p] = res
		return nil
	})
	return out, err
}

func (m *Machine) evalJoin(t *plan.Join) (*relation, error) {
	left, err := m.eval(t.Left)
	if err != nil {
		return nil, err
	}
	right, err := m.eval(t.Right)
	if err != nil {
		return nil, err
	}
	lw, rw := len(t.Left.Columns()), len(t.Right.Columns())

	leftKeys, rightKeys, residual, err := exec.JoinKeys(t)
	if err != nil {
		return nil, err
	}

	if t.Type == ast.CrossJoin || len(leftKeys) == 0 {
		if t.Type != ast.CrossJoin && t.Type != ast.InnerJoin {
			return nil, fmt.Errorf("outer join requires at least one equality condition")
		}
		// Broadcast join: the right side is replicated to every
		// fragment (counted as movement), the left side stays put.
		residual, err := exec.CompileResidual(t)
		if err != nil {
			return nil, err
		}
		bc := right.gather()
		atomic.AddInt64(&m.Stats.RowsShuffled, int64(len(bc))*int64(m.Parts-1))
		out := m.newRelation()
		err = m.parallel(func(p int, cc *exec.CancelChecker) error {
			if e := cc.Check(); e != nil {
				return e
			}
			rows, err := exec.NestedLoopPartition(left.parts[p], bc, residual, nil)
			if err != nil {
				return err
			}
			out.parts[p] = rows
			return nil
		})
		if err != nil {
			return nil, err
		}
		m.addJoined(out)
		return out, nil
	}

	// Repartition both sides on the join keys, then join partition-wise.
	// A side whose input the partition-property analysis proved already
	// hash-distributed on exactly its key columns skips the exchange:
	// the shuffle would route every row to the partition it is already
	// in and reproduce the input verbatim (per-source concatenation of
	// rows that all stay put), so the elided path is byte-identical.
	el := m.Elide[plan.Node(t)]
	leftSh := left
	if el.Left {
		if err := m.noteElide(left, el.LeftCols, "join left"); err != nil {
			return nil, err
		}
	} else if leftSh, err = m.shuffle(left, leftKeys); err != nil {
		return nil, err
	}
	rightSh := right
	if el.Right {
		if err := m.noteElide(right, el.RightCols, "join right"); err != nil {
			return nil, err
		}
	} else if rightSh, err = m.shuffle(right, rightKeys); err != nil {
		return nil, err
	}
	out := m.newRelation()
	err = m.parallel(func(p int, cc *exec.CancelChecker) error {
		if e := cc.Check(); e != nil {
			return e
		}
		rows, err := exec.HashJoinPartition(t.Type, leftSh.parts[p], rightSh.parts[p],
			leftKeys, rightKeys, residual, lw, rw, nil)
		if err != nil {
			return err
		}
		out.parts[p] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	m.addJoined(out)
	return out, nil
}

func (m *Machine) addJoined(out *relation) {
	n := int64(0)
	for _, p := range out.parts {
		n += int64(len(p))
	}
	atomic.AddInt64(&m.Exec.RowsJoined, n)
}

func (m *Machine) evalAggregate(t *plan.Aggregate) (*relation, error) {
	in, err := m.eval(t.Input)
	if err != nil {
		return nil, err
	}
	if len(t.GroupBy) == 0 {
		// Scalar aggregate: gather and run once (cheap: one output row).
		rows, err := exec.AggregatePartition(t, in.gather(), true, m.Exec)
		if err != nil {
			return nil, err
		}
		out := m.newRelation()
		out.parts[0] = rows
		return out, nil
	}
	if el := m.Elide[plan.Node(t)]; el.Input {
		return m.evalAggregateElided(t, in, el.InputCols)
	}
	keys, err := exec.GroupKeyExprs(t)
	if err != nil {
		return nil, err
	}
	sh, err := m.shuffle(in, keys)
	if err != nil {
		return nil, err
	}
	out := m.newRelation()
	var grouped int64
	err = m.parallel(func(p int, cc *exec.CancelChecker) error {
		if e := cc.Check(); e != nil {
			return e
		}
		rows, err := exec.AggregatePartition(t, sh.parts[p], false, nil)
		if err != nil {
			return err
		}
		out.parts[p] = rows
		atomic.AddInt64(&grouped, int64(len(rows)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Per-partition calls pass a nil stats (the shared counter would
	// race); account their aggregate input here instead.
	var aggIn int64
	for _, p := range sh.parts {
		aggIn += int64(len(p))
	}
	atomic.AddInt64(&m.Exec.RowsAggInput, aggIn)
	atomic.AddInt64(&m.Exec.RowsGrouped, grouped)
	return out, nil
}

// evalAggregateElided is the grouped-aggregate path licensed by the
// partition-property analysis: the input is hash-distributed on
// columns equivalent to the group keys, so every group's rows already
// sit in one partition. Each fragment aggregates its partition exactly
// (no merge needed), then the one-row-per-group outputs are exchanged
// to the partitions the regular input shuffle would have used —
// RowKey over the leading group columns, the same values KeyFor
// computes from the group expressions, through the same Partition
// function. Destination, per-destination order (source-major, groups
// in first-seen order within each source) and float accumulation
// order all match the non-elided path, so results are byte-identical;
// only ~#groups rows move instead of ~#input rows.
func (m *Machine) evalAggregateElided(t *plan.Aggregate, in *relation, cols []int) (*relation, error) {
	if err := m.noteElide(in, cols, "aggregate input"); err != nil {
		return nil, err
	}
	pre := m.newRelation()
	var grouped int64
	err := m.parallel(func(p int, cc *exec.CancelChecker) error {
		if e := cc.Check(); e != nil {
			return e
		}
		rows, err := exec.AggregatePartition(t, in.parts[p], false, nil)
		if err != nil {
			return err
		}
		pre.parts[p] = rows
		atomic.AddInt64(&grouped, int64(len(rows)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	var aggIn int64
	for _, p := range in.parts {
		aggIn += int64(len(p))
	}
	atomic.AddInt64(&m.Exec.RowsAggInput, aggIn)
	atomic.AddInt64(&m.Exec.RowsGrouped, grouped)
	gcols := make([]int, len(t.GroupBy))
	for i := range gcols {
		gcols[i] = i
	}
	return m.shuffleCols(pre, gcols)
}

func (m *Machine) evalUnion(t *plan.Union) (*relation, error) {
	left, err := m.eval(t.Left)
	if err != nil {
		return nil, err
	}
	right, err := m.eval(t.Right)
	if err != nil {
		return nil, err
	}
	out := m.newRelation()
	for p := 0; p < m.Parts; p++ {
		out.parts[p] = append(append([]sqltypes.Row(nil), left.parts[p]...), right.parts[p]...)
	}
	return out, nil
}

func (m *Machine) evalDistinct(t *plan.Distinct) (*relation, error) {
	in, err := m.eval(t.Input)
	if err != nil {
		return nil, err
	}
	// Repartition on the full row so duplicates co-locate. When the
	// analysis proved the input already distributed on the full row,
	// the exchange is the identity (every row already sits at its
	// ValuesKey destination) and is skipped.
	sh := in
	if el := m.Elide[plan.Node(t)]; el.Input {
		if err := m.noteElide(in, el.InputCols, "distinct input"); err != nil {
			return nil, err
		}
	} else if sh, err = m.shuffleFullRow(in); err != nil {
		return nil, err
	}
	out := m.newRelation()
	err = m.parallel(func(p int, cc *exec.CancelChecker) error {
		seen := make(map[sqltypes.CompositeKey]bool, len(sh.parts[p]))
		var kept []sqltypes.Row
		for _, r := range sh.parts[p] {
			if err := cc.Tick(); err != nil {
				return err
			}
			k := sqltypes.ValuesKey(r)
			if seen[k] {
				continue
			}
			seen[k] = true
			kept = append(kept, r)
		}
		out.parts[p] = kept
		return nil
	})
	return out, err
}

// shuffleFullRow routes each row by all of its columns, through the
// same Partition function every other placement path uses (NULL-bearing
// rows go to partition 0, single-column rows use the scalar hash), so
// the partition-property analysis can equate the distinct exchange's
// layout with storage and shuffle layouts.
func (m *Machine) shuffleFullRow(in *relation) (*relation, error) {
	return m.shuffleBy(in, func(r sqltypes.Row) (int, error) {
		return sqltypes.ValuesKey(r).Partition(m.Parts), nil
	})
}

// evalTopN implements distributed top-k: each fragment computes its
// local top N+Offset candidates, only those are gathered (counted as
// movement), and a final TopN over the candidates produces the answer.
func (m *Machine) evalTopN(t *plan.TopN) (*relation, error) {
	in, err := m.eval(t.Input)
	if err != nil {
		return nil, err
	}
	keep := t.N + t.Offset
	locals := make([][]sqltypes.Row, m.Parts)
	err = m.parallel(func(p int, cc *exec.CancelChecker) error {
		if e := cc.Check(); e != nil {
			return e
		}
		rows, err := exec.TopNPartition(in.parts[p], t.Keys, keep)
		if err != nil {
			return err
		}
		locals[p] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	var candidates []sqltypes.Row
	for _, l := range locals {
		candidates = append(candidates, l...)
	}
	atomic.AddInt64(&m.Stats.RowsShuffled, int64(len(candidates)))
	final, err := exec.TopNPartition(candidates, t.Keys, keep)
	if err != nil {
		return nil, err
	}
	if t.Offset < int64(len(final)) {
		final = final[t.Offset:]
	} else {
		final = nil
	}
	out := m.newRelation()
	out.parts[0] = final
	return out, nil
}

// evalSequential handles order-sensitive nodes by evaluating the input
// in parallel, gathering to a single fragment and finishing with the
// volcano operators.
func (m *Machine) evalSequential(n plan.Node) (*relation, error) {
	out := m.newRelation()
	switch t := n.(type) {
	case *plan.OneRow:
		out.parts[0] = []sqltypes.Row{{}}
		return out, nil
	case *plan.ValuesNode:
		rows, err := exec.Run(t, m.RT, m.Exec)
		if err != nil {
			return nil, err
		}
		out.parts[0] = rows
		return out, nil
	case *plan.Sort:
		in, err := m.eval(t.Input)
		if err != nil {
			return nil, err
		}
		rows := in.gather()
		atomic.AddInt64(&m.Stats.RowsShuffled, int64(len(rows)))
		keys := t.Keys
		sort.SliceStable(rows, func(i, j int) bool {
			for _, k := range keys {
				c := sqltypes.Compare(rows[i][k.Col], rows[j][k.Col])
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		out.parts[0] = rows
		return out, nil
	case *plan.Limit:
		in, err := m.eval(t.Input)
		if err != nil {
			return nil, err
		}
		rows := in.gather()
		start := t.Offset
		if start > int64(len(rows)) {
			start = int64(len(rows))
		}
		end := int64(len(rows))
		if t.N >= 0 && start+t.N < end {
			end = start + t.N
		}
		out.parts[0] = rows[start:end]
		return out, nil
	case *plan.Trim:
		in, err := m.eval(t.Input)
		if err != nil {
			return nil, err
		}
		err = m.parallel(func(p int, cc *exec.CancelChecker) error {
			res := make([]sqltypes.Row, len(in.parts[p]))
			for i, r := range in.parts[p] {
				if err := cc.Tick(); err != nil {
					return err
				}
				res[i] = r[:t.Keep]
			}
			out.parts[p] = res
			return nil
		})
		return out, err
	}
	return nil, fmt.Errorf("mpp: unsupported sequential node %T", n)
}

func nodeEnv(n plan.Node) *expr.Env {
	e := &expr.Env{}
	for i, c := range n.Columns() {
		e.Cols = append(e.Cols, expr.Binding{
			Table: lower(c.Table), Name: lower(c.Name), Index: i, Type: c.Type,
		})
	}
	return e
}

func lower(s string) string {
	b := []byte(s)
	changed := false
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}
