package mpp

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"
	"time"

	"dbspinner/internal/ast"
	"dbspinner/internal/catalog"
	"dbspinner/internal/exec"
	"dbspinner/internal/parser"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
	"dbspinner/internal/workload"
)

// newRT builds a runtime with a generated graph in edges and a small
// kv table.
func newRT(t *testing.T, parts int) *exec.StoreRuntime {
	t.Helper()
	cat := catalog.New(parts)
	edges, err := cat.Create("edges", sqltypes.Schema{
		{Name: "src", Type: sqltypes.Int},
		{Name: "dst", Type: sqltypes.Int},
		{Name: "weight", Type: sqltypes.Float},
	}, -1)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.PreferentialAttachment(200, 3, workload.WeightOutDegree, 3)
	edges.InsertBatch(workload.EdgeRows(g))
	kv, err := cat.Create("kv", sqltypes.Schema{
		{Name: "k", Type: sqltypes.Int},
		{Name: "v", Type: sqltypes.Int},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		kv.Insert(sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewInt(i * 10)})
	}
	return exec.NewStoreRuntime(cat, storage.NewResultStore())
}

// runBoth executes a query sequentially and on the MPP machine and
// compares the row multisets.
func runBoth(t *testing.T, rt *exec.StoreRuntime, parts int, sql string) ([]sqltypes.Row, *Stats) {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	node, err := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	seq, err := exec.Run(node, rt, nil)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	stats := &Stats{}
	m := New(rt, parts, stats, nil)
	par, err := m.Run(node)
	if err != nil {
		t.Fatalf("mpp: %v", err)
	}
	assertSameMultiset(t, sql, seq, par)
	return par, stats
}

func assertSameMultiset(t *testing.T, label string, a, b []sqltypes.Row) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d rows vs %d", label, len(a), len(b))
	}
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i] = a[i].String()
		bs[i] = b[i].String()
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("%s: multiset mismatch at %d: %q vs %q", label, i, as[i], bs[i])
		}
	}
}

func TestScanFilterProject(t *testing.T) {
	rt := newRT(t, 4)
	runBoth(t, rt, 4, "SELECT src * 2, weight FROM edges WHERE src % 3 = 0")
}

func TestHashJoinParallel(t *testing.T) {
	rt := newRT(t, 4)
	_, stats := runBoth(t, rt, 4, `SELECT a.src, b.dst FROM edges a JOIN edges b ON a.dst = b.src`)
	if stats.RowsShuffled == 0 {
		t.Error("join should shuffle rows")
	}
	if stats.Fragments == 0 {
		t.Error("fragments should be counted")
	}
}

func TestLeftJoinParallel(t *testing.T) {
	rt := newRT(t, 4)
	runBoth(t, rt, 4, `SELECT kv.k, e.src FROM kv LEFT JOIN edges e ON kv.k = e.dst`)
}

func TestRightAndFullJoinParallel(t *testing.T) {
	rt := newRT(t, 3)
	runBoth(t, rt, 3, `SELECT e.src, kv.k FROM edges e RIGHT JOIN kv ON e.dst = kv.k`)
	runBoth(t, rt, 3, `SELECT e.src, kv.k FROM edges e FULL JOIN kv ON e.dst = kv.k`)
}

func TestCrossJoinBroadcast(t *testing.T) {
	rt := newRT(t, 4)
	_, stats := runBoth(t, rt, 4, `SELECT COUNT(*) FROM kv a, kv b`)
	if stats.RowsShuffled == 0 {
		t.Error("broadcast should count movement")
	}
}

func TestAggregateParallel(t *testing.T) {
	rt := newRT(t, 4)
	runBoth(t, rt, 4, "SELECT src, COUNT(*), SUM(weight) FROM edges GROUP BY src")
	// Scalar aggregate.
	runBoth(t, rt, 4, "SELECT COUNT(*), MIN(src), MAX(dst) FROM edges")
	// Scalar aggregate over empty input still yields one row.
	rows, _ := runBoth(t, rt, 4, "SELECT COUNT(*) FROM edges WHERE src < 0")
	if len(rows) != 1 || rows[0][0].Int() != 0 {
		t.Errorf("empty scalar agg = %v", rows)
	}
}

func TestUnionDistinctParallel(t *testing.T) {
	rt := newRT(t, 4)
	runBoth(t, rt, 4, "SELECT src FROM edges UNION SELECT dst FROM edges")
	runBoth(t, rt, 4, "SELECT src FROM edges UNION ALL SELECT dst FROM edges")
	runBoth(t, rt, 4, "SELECT DISTINCT src FROM edges")
}

func TestSortLimitParallel(t *testing.T) {
	rt := newRT(t, 4)
	stmt, _ := parser.Parse("SELECT src, COUNT(*) AS c FROM edges GROUP BY src ORDER BY c DESC, src LIMIT 5")
	node, err := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := exec.Run(node, rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := New(rt, 4, nil, nil)
	par, err := m.Run(node)
	if err != nil {
		t.Fatal(err)
	}
	// Ordered comparison: sort+limit output must match exactly.
	if len(seq) != len(par) {
		t.Fatalf("rows: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].String() != par[i].String() {
			t.Errorf("row %d: %q vs %q", i, seq[i], par[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	rt := newRT(t, 4)
	stmt, _ := parser.Parse("SELECT src, SUM(weight) FROM edges GROUP BY src ORDER BY src")
	node, err := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	var first string
	for i := 0; i < 5; i++ {
		m := New(rt, 4, nil, nil)
		rows, err := m.Run(node)
		if err != nil {
			t.Fatal(err)
		}
		strs := make([]string, len(rows))
		for j, r := range rows {
			strs[j] = r.String()
		}
		got := strings.Join(strs, "|")
		if first == "" {
			first = got
		} else if got != first {
			t.Fatalf("run %d differs (parallel execution must be deterministic)", i)
		}
	}
}

func TestMaterializeParallel(t *testing.T) {
	rt := newRT(t, 4)
	stmt, _ := parser.Parse("SELECT src, COUNT(*) FROM edges GROUP BY src")
	node, err := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	m := New(rt, 4, nil, nil)
	tbl, err := m.Materialize(node, "counts")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumParts() != 4 {
		t.Errorf("parts = %d", tbl.NumParts())
	}
	seq, _ := exec.Run(node, rt, nil)
	if tbl.Len() != len(seq) {
		t.Errorf("materialized %d rows, want %d", tbl.Len(), len(seq))
	}
}

// TestMaterializePartitionKeyJoin: Materialize keeps the fragment
// partitioning, so a working table produced by a GROUP BY on the
// partition key can be self-joined on that key without moving a single
// row, and the join matches the single-partition volcano engine at
// parts ∈ {1, 4}. The iterative merge path (and delta iteration)
// depends on this: the working table is re-joined with the CTE every
// iteration.
func TestMaterializePartitionKeyJoin(t *testing.T) {
	for _, parts := range []int{1, 4} {
		rt := newRT(t, parts)
		stmt, err := parser.Parse("SELECT src, COUNT(*) AS c FROM edges GROUP BY src")
		if err != nil {
			t.Fatal(err)
		}
		node, err := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
		if err != nil {
			t.Fatal(err)
		}
		stats := &Stats{}
		m := New(rt, parts, stats, nil)
		tbl, err := m.Materialize(node, "working")
		if err != nil {
			t.Fatal(err)
		}
		if tbl.NumParts() != parts {
			t.Fatalf("parts=%d: materialized into %d partitions", parts, tbl.NumParts())
		}
		rt.Results.Put("working", tbl)

		jstmt, err := parser.Parse("SELECT a.src, a.c + b.c FROM working AS a JOIN working AS b ON a.src = b.src")
		if err != nil {
			t.Fatal(err)
		}
		jnode, err := plan.NewBuilder(rt).Build(jstmt.(*ast.SelectStmt))
		if err != nil {
			t.Fatal(err)
		}
		seq, err := exec.Run(jnode, rt, nil)
		if err != nil {
			t.Fatal(err)
		}
		before := stats.RowsRelocated
		par, err := m.Run(jnode)
		if err != nil {
			t.Fatal(err)
		}
		assertSameMultiset(t, "self join", seq, par)
		if moved := stats.RowsRelocated - before; moved != 0 {
			t.Errorf("parts=%d: partition-key self-join moved %d rows; Materialize must preserve the shuffle layout", parts, moved)
		}

		// Joining back to the co-partitioned base table also matches the
		// single-partition engine (edges is distributed on a different
		// layout, so rows may move — correctness only).
		bstmt, err := parser.Parse("SELECT w.c, e.dst FROM working AS w JOIN edges AS e ON w.src = e.src")
		if err != nil {
			t.Fatal(err)
		}
		bnode, err := plan.NewBuilder(rt).Build(bstmt.(*ast.SelectStmt))
		if err != nil {
			t.Fatal(err)
		}
		bseq, err := exec.Run(bnode, rt, nil)
		if err != nil {
			t.Fatal(err)
		}
		bpar, err := m.Run(bnode)
		if err != nil {
			t.Fatal(err)
		}
		assertSameMultiset(t, "base join", bseq, bpar)
	}
}

func TestPartitionMismatchRedistributes(t *testing.T) {
	// A table with 2 partitions read by a 5-partition machine.
	rt := newRT(t, 2)
	runBoth(t, rt, 5, "SELECT src FROM edges")
}

func TestSinglePartition(t *testing.T) {
	rt := newRT(t, 1)
	runBoth(t, rt, 1, "SELECT src, COUNT(*) FROM edges GROUP BY src")
}

func TestOneRowAndValues(t *testing.T) {
	rt := newRT(t, 4)
	runBoth(t, rt, 4, "SELECT 1 + 1")
}

func TestErrorPropagation(t *testing.T) {
	rt := newRT(t, 4)
	stmt, _ := parser.Parse("SELECT 1 / (src - src) FROM edges")
	node, err := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	m := New(rt, 4, nil, nil)
	if _, err := m.Run(node); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("expected division error, got %v", err)
	}
}

func TestNullKeysSurviveOuterJoin(t *testing.T) {
	cat := catalog.New(3)
	a, _ := cat.Create("a", sqltypes.Schema{{Name: "x", Type: sqltypes.Int}}, -1)
	b, _ := cat.Create("b", sqltypes.Schema{{Name: "y", Type: sqltypes.Int}}, -1)
	a.Insert(sqltypes.Row{sqltypes.NullValue})
	a.Insert(sqltypes.Row{sqltypes.NewInt(1)})
	b.Insert(sqltypes.Row{sqltypes.NewInt(1)})
	rt := exec.NewStoreRuntime(cat, storage.NewResultStore())
	runBoth(t, rt, 3, "SELECT x, y FROM a LEFT JOIN b ON a.x = b.y")
}

// TestParallelShortCircuit: when one partition fails immediately, the
// siblings (spinning on their cancel checkers) must be cut short, and
// the real error — not a sibling's induced context.Canceled — must
// come back.
func TestParallelShortCircuit(t *testing.T) {
	m := &Machine{Parts: 4, Stats: &Stats{}}
	errReal := errors.New("partition exploded")
	start := time.Now()
	err := m.parallel(func(p int, cc *exec.CancelChecker) error {
		if p == 2 {
			return errReal
		}
		// Siblings busy-loop until their checker observes the induced
		// cancellation; without short-circuiting they run the full 2s.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if err := cc.Tick(); err != nil {
				return err
			}
		}
		return nil
	})
	elapsed := time.Since(start)
	if !errors.Is(err, errReal) {
		t.Fatalf("parallel returned %v, want the real partition error", err)
	}
	if elapsed > time.Second {
		t.Fatalf("siblings were not short-circuited: parallel took %v", elapsed)
	}
}

// TestParallelRealErrorBeatsInducedCancel: even if the induced
// cancellation error is recorded first, a later real error replaces
// it — timing must not decide between a symptom and a cause.
func TestParallelRealErrorBeatsInducedCancel(t *testing.T) {
	m := &Machine{Parts: 2, Stats: &Stats{}}
	errReal := errors.New("real failure")
	// Two-way handshake: both partitions are provably inside fn before
	// either returns, so neither worker is skipped by the induced
	// cancellation and both errors reach the first-error rule.
	in0, in1 := make(chan struct{}), make(chan struct{})
	err := m.parallel(func(p int, cc *exec.CancelChecker) error {
		if p == 0 {
			close(in0)
			<-in1
			return errReal
		}
		close(in1)
		<-in0
		return context.Canceled
	})
	if !errors.Is(err, errReal) {
		t.Fatalf("parallel returned %v, want real error over context.Canceled", err)
	}
}

// TestParallelExternalCancel: cancelling the machine context stops the
// batch and surfaces the context error even when no worker records
// one.
func TestParallelExternalCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := &Machine{Parts: 2, Ctx: ctx, Stats: &Stats{}}
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := m.parallel(func(p int, cc *exec.CancelChecker) error {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if err := cc.Tick(); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("external cancellation took %v", elapsed)
	}
	// A machine whose context is already dead refuses new batches at
	// the checkpoint, before spawning anything.
	if err := m.parallel(func(p int, cc *exec.CancelChecker) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled machine ran a batch: %v", err)
	}
}
