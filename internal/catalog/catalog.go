// Package catalog tracks the schemas of base tables and resolves names
// for the planner. It is deliberately small: DBSpinner's contribution
// lives in the planner/rewriter, and the catalog only needs to answer
// "what columns does this table have and which one is the key".
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

// Catalog maps table names (case-insensitive) to their storage.
type Catalog struct {
	tables map[string]*storage.Table
	// Parts is the partition count for newly created tables.
	Parts int
}

// New returns an empty catalog creating tables with the given partition
// count.
func New(parts int) *Catalog {
	if parts < 1 {
		parts = 1
	}
	return &Catalog{tables: make(map[string]*storage.Table), Parts: parts}
}

func key(name string) string { return strings.ToLower(name) }

// Create adds a table. pk is the primary-key column index or -1.
func (c *Catalog) Create(name string, schema sqltypes.Schema, pk int) (*storage.Table, error) {
	k := key(name)
	if _, exists := c.tables[k]; exists {
		return nil, fmt.Errorf("table %q already exists", name)
	}
	if err := validateSchema(schema); err != nil {
		return nil, fmt.Errorf("table %q: %w", name, err)
	}
	t := storage.NewTable(name, schema, c.Parts)
	t.PK = pk
	if pk >= 0 {
		t.DistCol = pk
	} else if len(schema) > 0 {
		// Distribute on the first column by default, the common choice
		// for graph edge tables (src).
		t.DistCol = 0
	}
	c.tables[k] = t
	return t, nil
}

func validateSchema(schema sqltypes.Schema) error {
	if len(schema) == 0 {
		return fmt.Errorf("schema must have at least one column")
	}
	seen := make(map[string]bool, len(schema))
	for _, col := range schema {
		lc := strings.ToLower(col.Name)
		if col.Name == "" {
			return fmt.Errorf("empty column name")
		}
		if seen[lc] {
			return fmt.Errorf("duplicate column %q", col.Name)
		}
		seen[lc] = true
	}
	return nil
}

// Get returns the named table, or nil.
func (c *Catalog) Get(name string) *storage.Table { return c.tables[key(name)] }

// Drop removes a table. With ifExists, dropping a missing table is not
// an error.
func (c *Catalog) Drop(name string, ifExists bool) error {
	k := key(name)
	if _, ok := c.tables[k]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("table %q does not exist", name)
	}
	delete(c.tables, k)
	return nil
}

// Names returns the table names in sorted order.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of tables.
func (c *Catalog) Len() int { return len(c.tables) }
