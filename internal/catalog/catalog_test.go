package catalog

import (
	"testing"

	"dbspinner/internal/sqltypes"
)

func edgeSchema() sqltypes.Schema {
	return sqltypes.Schema{
		{Name: "src", Type: sqltypes.Int},
		{Name: "dst", Type: sqltypes.Int},
		{Name: "weight", Type: sqltypes.Float},
	}
}

func TestCreateGetDrop(t *testing.T) {
	c := New(4)
	tb, err := c.Create("Edges", edgeSchema(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumParts() != 4 {
		t.Error("partition count should come from catalog")
	}
	if tb.DistCol != 0 {
		t.Error("default distribution should be the first column")
	}
	if c.Get("edges") != tb || c.Get("EDGES") != tb {
		t.Error("case-insensitive lookup")
	}
	if _, err := c.Create("edges", edgeSchema(), -1); err == nil {
		t.Error("duplicate create should fail")
	}
	if c.Len() != 1 {
		t.Error("Len")
	}
	if err := c.Drop("EDGES", false); err != nil {
		t.Fatal(err)
	}
	if c.Get("edges") != nil {
		t.Error("dropped table still visible")
	}
	if err := c.Drop("edges", false); err == nil {
		t.Error("dropping missing table should fail")
	}
	if err := c.Drop("edges", true); err != nil {
		t.Error("drop if exists should not fail")
	}
}

func TestPrimaryKeyDistribution(t *testing.T) {
	c := New(2)
	tb, err := c.Create("pr", sqltypes.Schema{
		{Name: "node", Type: sqltypes.Int},
		{Name: "rank", Type: sqltypes.Float},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tb.PK != 0 || tb.DistCol != 0 {
		t.Errorf("PK table: PK=%d DistCol=%d", tb.PK, tb.DistCol)
	}
}

func TestSchemaValidation(t *testing.T) {
	c := New(1)
	if _, err := c.Create("t", sqltypes.Schema{}, -1); err == nil {
		t.Error("empty schema should fail")
	}
	if _, err := c.Create("t", sqltypes.Schema{{Name: "a", Type: sqltypes.Int}, {Name: "A", Type: sqltypes.Int}}, -1); err == nil {
		t.Error("duplicate columns (case-insensitive) should fail")
	}
	if _, err := c.Create("t", sqltypes.Schema{{Name: "", Type: sqltypes.Int}}, -1); err == nil {
		t.Error("empty column name should fail")
	}
}

func TestNames(t *testing.T) {
	c := New(1)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.Create(n, edgeSchema(), -1); err != nil {
			t.Fatal(err)
		}
	}
	names := c.Names()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Errorf("Names = %v", names)
	}
}

func TestPartsClamp(t *testing.T) {
	if New(0).Parts != 1 {
		t.Error("parts should clamp to 1")
	}
}
