package exec

import (
	"testing"

	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

func TestFilterTableByKey(t *testing.T) {
	schema := sqltypes.Schema{
		{Name: "k", Type: sqltypes.Int},
		{Name: "v", Type: sqltypes.Int},
	}
	src := storage.NewTable("c", schema, 3)
	src.PK = 0
	src.DistCol = 0
	src.Parts[0] = []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewInt(10)},
		{sqltypes.NewInt(4), sqltypes.NewInt(40)},
	}
	// A ragged row with no key column must be dropped.
	src.Parts[1] = []sqltypes.Row{
		{sqltypes.NewInt(2), sqltypes.NewInt(20)},
		{},
	}
	src.Parts[2] = []sqltypes.Row{
		{sqltypes.NewInt(3), sqltypes.NewInt(30)},
	}

	keep := map[sqltypes.Key]bool{
		sqltypes.NewInt(1).Key(): true,
		sqltypes.NewInt(3).Key(): true,
	}
	stats := &Stats{}
	out := FilterTableByKey(src, 0, keep, "DeltaIn#c", stats)

	if out.Name != "DeltaIn#c" {
		t.Errorf("name = %q", out.Name)
	}
	if out.NumParts() != 3 {
		t.Errorf("parts = %d, want 3 (layout must be preserved, no rehash)", out.NumParts())
	}
	if out.PK != 0 || out.DistCol != 0 {
		t.Errorf("PK/DistCol not carried over: %d/%d", out.PK, out.DistCol)
	}
	// Kept rows stay in their source partitions.
	if len(out.Parts[0]) != 1 || out.Parts[0][0][0].Int() != 1 {
		t.Errorf("part 0 = %v", out.Parts[0])
	}
	if len(out.Parts[1]) != 0 {
		t.Errorf("part 1 = %v (key 2 not in keep, ragged row dropped)", out.Parts[1])
	}
	if len(out.Parts[2]) != 1 || out.Parts[2][0][0].Int() != 3 {
		t.Errorf("part 2 = %v", out.Parts[2])
	}
	if stats.RowsScanned != 5 {
		t.Errorf("RowsScanned = %d, want 5", stats.RowsScanned)
	}
	// The source table is untouched.
	if src.Len() != 5 {
		t.Errorf("source mutated: len = %d", src.Len())
	}
}
