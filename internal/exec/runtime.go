package exec

import (
	"fmt"

	"dbspinner/internal/catalog"
	"dbspinner/internal/faultinject"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

// StoreRuntime is the standard Runtime backed by a catalog of base
// tables and a result store for intermediate results. It also
// implements plan.TableLookup, so the same object drives planning and
// execution.
type StoreRuntime struct {
	Catalog *catalog.Catalog
	Results *storage.ResultStore
}

// NewStoreRuntime wraps a catalog and result store.
func NewStoreRuntime(cat *catalog.Catalog, res *storage.ResultStore) *StoreRuntime {
	return &StoreRuntime{Catalog: cat, Results: res}
}

// Guarded returns a view of the runtime whose result store checks every
// access against the guard's declared effect set (the parallel step
// scheduler's dynamic cross-check). The catalog is shared as-is: base
// tables are read-only during program execution.
func (s *StoreRuntime) Guarded(g *storage.Guard) *StoreRuntime {
	return &StoreRuntime{Catalog: s.Catalog, Results: s.Results.Guarded(g)}
}

// ArmFaults arms (or, with nil, disarms) fault injection on the result
// store's mutation hooks (the "storage" point of Config.FaultSchedule).
// The engine arms it around one statement and disarms it after.
func (s *StoreRuntime) ArmFaults(r *faultinject.Registry) { s.Results.SetFaults(r) }

// LiveResults returns the number of intermediate results currently
// registered — the leak-freedom observable of the fault-tolerance
// tests: after any statement, failed or not, it must be zero.
func (s *StoreRuntime) LiveResults() int { return s.Results.Len() }

// BaseTable implements Runtime.
func (s *StoreRuntime) BaseTable(name string) (*storage.Table, error) {
	if t := s.Catalog.Get(name); t != nil {
		return t, nil
	}
	return nil, fmt.Errorf("table %q does not exist", name)
}

// Result implements Runtime.
func (s *StoreRuntime) Result(name string) (*storage.Table, error) {
	if t := s.Results.Get(name); t != nil {
		return t, nil
	}
	return nil, fmt.Errorf("intermediate result %q does not exist", name)
}

// TableSchema implements plan.TableLookup.
func (s *StoreRuntime) TableSchema(name string) (sqltypes.Schema, bool) {
	if t := s.Catalog.Get(name); t != nil {
		return t.Schema, true
	}
	return nil, false
}

// ResultSchema implements plan.TableLookup.
func (s *StoreRuntime) ResultSchema(name string) (sqltypes.Schema, bool) {
	if t := s.Results.Get(name); t != nil {
		return t.Schema, true
	}
	return nil, false
}

// TableRowCount implements converge.CardinalityLookup: the current row
// count of a base table, used to turn a finite-key-domain termination
// argument into a numeric iteration bound.
func (s *StoreRuntime) TableRowCount(name string) (int, bool) {
	if t := s.Catalog.Get(name); t != nil {
		return t.Len(), true
	}
	return 0, false
}

// TableDistribution implements distprop.TableDist: the storage layout
// of a base table — its hash-distribution column (-1 for round-robin)
// and partition count — so the partition-property analysis can seed
// scan properties from the physical layout.
func (s *StoreRuntime) TableDistribution(name string) (distCol, parts int, ok bool) {
	if t := s.Catalog.Get(name); t != nil {
		return t.DistCol, t.NumParts(), true
	}
	return -1, 0, false
}
