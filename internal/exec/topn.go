package exec

import (
	"container/heap"
	"sort"

	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
)

// topNOp keeps the best N+Offset rows of the sorted order using a
// bounded heap instead of sorting the whole input, then emits rows
// Offset..Offset+N of the final order. Ties are broken by arrival
// order, so the output matches what the stable full sort would
// produce.
type topNOp struct {
	input  Operator
	keys   []plan.SortKey
	n      int64
	offset int64

	out []sqltypes.Row
	pos int
}

type seqRow struct {
	row sqltypes.Row
	seq int64
}

// rowHeap is a max-heap under (sort order, arrival order): the root is
// the worst retained row, evicted when a strictly better one arrives.
type rowHeap struct {
	rows []seqRow
	keys []plan.SortKey
}

func (h *rowHeap) Len() int { return len(h.rows) }

func (h *rowHeap) Less(i, j int) bool {
	// Max-heap: "less" means sorts-after.
	return seqBefore(h.keys, h.rows[j], h.rows[i])
}

func (h *rowHeap) Swap(i, j int) { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }

func (h *rowHeap) Push(x interface{}) { h.rows = append(h.rows, x.(seqRow)) }

func (h *rowHeap) Pop() interface{} {
	last := h.rows[len(h.rows)-1]
	h.rows = h.rows[:len(h.rows)-1]
	return last
}

// sortsBefore reports whether row a strictly precedes row b under the
// keys.
func sortsBefore(keys []plan.SortKey, a, b sqltypes.Row) (before, tie bool) {
	for _, k := range keys {
		c := sqltypes.Compare(a[k.Col], b[k.Col])
		if c == 0 {
			continue
		}
		if k.Desc {
			return c > 0, false
		}
		return c < 0, false
	}
	return false, true
}

// seqBefore is the total order (keys, then arrival sequence).
func seqBefore(keys []plan.SortKey, a, b seqRow) bool {
	before, tie := sortsBefore(keys, a.row, b.row)
	if tie {
		return a.seq < b.seq
	}
	return before
}

func (t *topNOp) Open() error {
	if err := t.input.Open(); err != nil {
		return err
	}
	defer t.input.Close()
	keep := t.n + t.offset
	h := &rowHeap{keys: t.keys}
	seq := int64(0)
	for {
		r, err := t.input.Next()
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		sr := seqRow{row: r, seq: seq}
		seq++
		if int64(h.Len()) < keep {
			heap.Push(h, sr)
			continue
		}
		if keep > 0 && seqBefore(t.keys, sr, h.rows[0]) {
			h.rows[0] = sr
			heap.Fix(h, 0)
		}
	}
	rows := h.rows
	keys := t.keys
	sort.Slice(rows, func(i, j int) bool { return seqBefore(keys, rows[i], rows[j]) })
	if t.offset < int64(len(rows)) {
		t.out = make([]sqltypes.Row, 0, int64(len(rows))-t.offset)
		for _, sr := range rows[t.offset:] {
			t.out = append(t.out, sr.row)
		}
	} else {
		t.out = nil
	}
	t.pos = 0
	return nil
}

func (t *topNOp) Next() (sqltypes.Row, error) {
	if t.pos >= len(t.out) {
		return nil, nil
	}
	r := t.out[t.pos]
	t.pos++
	return r, nil
}

func (t *topNOp) Close() error {
	t.out = nil
	return nil
}

// TopNPartition returns the first `keep` rows of the stable sorted
// order of a row slice (all of them when keep exceeds the input). The
// MPP layer uses it for distributed top-k: local TopN per fragment,
// then a final TopN over the gathered candidates.
func TopNPartition(rows []sqltypes.Row, keys []plan.SortKey, keep int64) ([]sqltypes.Row, error) {
	op := &topNOp{input: RowsOperator(rows), keys: keys, n: keep}
	return Drain(op)
}

// emptyOp produces no rows (a provably-false filter).
type emptyOp struct{}

func (emptyOp) Open() error                 { return nil }
func (emptyOp) Next() (sqltypes.Row, error) { return nil, nil }
func (emptyOp) Close() error                { return nil }
