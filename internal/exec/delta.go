package exec

import (
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

// FilterTableByKey builds a restriction of a result table to the rows
// whose key-column value appears in keep. The partition layout and
// per-partition row order are preserved — no rehashing — so downstream
// scans (including the MPP machine's aligned re-slicing) read the
// partitions exactly as the source produced them. Rows too short to
// carry the key column are dropped, matching the loop operator's
// treatment of ragged rows.
func FilterTableByKey(t *storage.Table, key int, keep map[sqltypes.Key]bool, name string, stats *Stats) *storage.Table {
	out := storage.NewTable(name, t.Schema.Clone(), t.NumParts())
	out.PK = t.PK
	out.DistCol = t.DistCol
	for i, part := range t.Parts {
		var rows []sqltypes.Row
		for _, r := range part {
			if stats != nil {
				stats.RowsScanned++
			}
			if key < len(r) && keep[r[key].Key()] {
				rows = append(rows, r)
			}
		}
		out.Parts[i] = rows
	}
	return out
}
