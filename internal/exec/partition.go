package exec

import (
	"dbspinner/internal/ast"
	"dbspinner/internal/expr"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
)

// This file exposes partition-level building blocks for the MPP layer
// (internal/mpp): the same hash-join and hash-aggregation logic used by
// the volcano operators, applied to in-memory row slices so a shuffle
// stage can run them per partition.

// RowsOperator wraps fixed rows as an Operator.
func RowsOperator(rows []sqltypes.Row) Operator {
	return &rowsOp{rows: rows}
}

// JoinKeys compiles a join node's equi-key expressions and residual
// predicate. Conjuncts that do not split into one-side = other-side
// form become the residual.
func JoinKeys(t *plan.Join) (leftKeys, rightKeys []*expr.Compiled, residual *expr.Compiled, err error) {
	leftEnv := planEnv(t.Left)
	rightEnv := planEnv(t.Right)
	bothEnv := planEnv(t)
	if t.On == nil {
		return nil, nil, nil, nil
	}
	var resids []ast.Expr
	for _, conj := range ast.SplitConjuncts(t.On) {
		lk, rk, ok := splitEquiKey(conj, leftEnv, rightEnv)
		if !ok {
			resids = append(resids, conj)
			continue
		}
		lc, err := expr.Compile(lk, leftEnv)
		if err != nil {
			return nil, nil, nil, err
		}
		rc, err := expr.Compile(rk, rightEnv)
		if err != nil {
			return nil, nil, nil, err
		}
		leftKeys = append(leftKeys, lc)
		rightKeys = append(rightKeys, rc)
	}
	if rem := ast.JoinConjuncts(resids); rem != nil {
		residual, err = expr.Compile(rem, bothEnv)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return leftKeys, rightKeys, residual, nil
}

// KeyFor evaluates key expressions over a row, reporting whether any
// component was NULL.
func KeyFor(keys []*expr.Compiled, r sqltypes.Row) (sqltypes.CompositeKey, bool, error) {
	return evalKey(keys, r)
}

// HashJoinPartition joins two row slices with the given key spec; the
// caller guarantees co-partitioning (equal keys appear in the same
// call). Semantics match the volcano hash join exactly.
func HashJoinPartition(typ ast.JoinType, left, right []sqltypes.Row,
	leftKeys, rightKeys []*expr.Compiled, residual *expr.Compiled,
	leftWidth, rightWidth int, stats *Stats) ([]sqltypes.Row, error) {

	if stats == nil {
		stats = &Stats{}
	}
	op := &hashJoinOp{
		typ:  typ,
		left: RowsOperator(left), right: RowsOperator(right),
		leftKeys: leftKeys, rightKeys: rightKeys,
		residual: residual, leftWidth: leftWidth, rightWidth: rightWidth,
		stats: stats,
	}
	return Drain(op)
}

// NestedLoopPartition cross-joins two row slices with an optional
// residual predicate (used for cross joins and non-equi inner joins,
// where the MPP layer broadcasts the right side).
func NestedLoopPartition(left, right []sqltypes.Row, residual *expr.Compiled, stats *Stats) ([]sqltypes.Row, error) {
	if stats == nil {
		stats = &Stats{}
	}
	op := &nestedLoopOp{
		left:     RowsOperator(left),
		right:    RowsOperator(right),
		residual: residual, stats: stats,
	}
	return Drain(op)
}

// CompileResidual compiles a join's residual over the combined row
// layout (exported for the MPP cross-join path).
func CompileResidual(t *plan.Join) (*expr.Compiled, error) {
	if t.On == nil {
		return nil, nil
	}
	return expr.Compile(t.On, planEnv(t))
}

// AggregatePartition aggregates a row slice per a plan.Aggregate node;
// the caller guarantees group co-partitioning. emptyScalar controls
// whether an empty input still yields the single scalar-aggregate row
// (only one partition may do that).
func AggregatePartition(node *plan.Aggregate, rows []sqltypes.Row, emptyScalar bool, stats *Stats) ([]sqltypes.Row, error) {
	if stats == nil {
		stats = &Stats{}
	}
	op := &aggOp{node: node, stats: stats, input: RowsOperator(rows)}
	e := planEnv(node.Input)
	for _, g := range node.GroupBy {
		c, err := expr.Compile(g, e)
		if err != nil {
			return nil, err
		}
		op.groupEx = append(op.groupEx, c)
	}
	for _, a := range node.Aggs {
		if a.Star {
			op.argEx = append(op.argEx, nil)
			continue
		}
		c, err := expr.Compile(a.Arg, e)
		if err != nil {
			return nil, err
		}
		op.argEx = append(op.argEx, c)
	}
	out, err := Drain(op)
	if err != nil {
		return nil, err
	}
	if !emptyScalar && len(node.GroupBy) == 0 && len(rows) == 0 {
		return nil, nil
	}
	return out, nil
}

// GroupKeyExprs compiles the group-by expressions of an aggregate node
// (used by the MPP layer to route rows).
func GroupKeyExprs(node *plan.Aggregate) ([]*expr.Compiled, error) {
	e := planEnv(node.Input)
	out := make([]*expr.Compiled, len(node.GroupBy))
	for i, g := range node.GroupBy {
		c, err := expr.Compile(g, e)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}
