package exec

import (
	"fmt"
	"strings"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/catalog"
	"dbspinner/internal/parser"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

// testRuntime builds a StoreRuntime with an edges table holding the
// tiny graph 1->2, 1->3, 2->3, 3->4 (weight 1.0 each) and a
// vertexStatus table where node 4 is unavailable.
func testRuntime(t *testing.T) *StoreRuntime {
	t.Helper()
	cat := catalog.New(2)
	edges, err := cat.Create("edges", sqltypes.Schema{
		{Name: "src", Type: sqltypes.Int},
		{Name: "dst", Type: sqltypes.Int},
		{Name: "weight", Type: sqltypes.Float},
	}, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int64{{1, 2}, {1, 3}, {2, 3}, {3, 4}} {
		edges.Insert(sqltypes.Row{sqltypes.NewInt(e[0]), sqltypes.NewInt(e[1]), sqltypes.NewFloat(1)})
	}
	vs, err := cat.Create("vertexStatus", sqltypes.Schema{
		{Name: "node", Type: sqltypes.Int},
		{Name: "status", Type: sqltypes.Int},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(1); n <= 4; n++ {
		st := int64(1)
		if n == 4 {
			st = 0
		}
		vs.Insert(sqltypes.Row{sqltypes.NewInt(n), sqltypes.NewInt(st)})
	}
	return NewStoreRuntime(cat, storage.NewResultStore())
}

// runSQL parses, plans and executes a SELECT.
func runSQL(t *testing.T, rt *StoreRuntime, sql string) []sqltypes.Row {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	node, err := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatalf("build %q: %v", sql, err)
	}
	rows, err := Run(node, rt, nil)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return rows
}

// rowStrings renders rows for easy comparison.
func rowStrings(rows []sqltypes.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

func expectRows(t *testing.T, got []sqltypes.Row, want ...string) {
	t.Helper()
	gs := rowStrings(got)
	if len(gs) != len(want) {
		t.Fatalf("got %d rows %v, want %d %v", len(gs), gs, len(want), want)
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Errorf("row %d = %q, want %q", i, gs[i], want[i])
		}
	}
}

// expectSet compares ignoring order.
func expectSet(t *testing.T, got []sqltypes.Row, want ...string) {
	t.Helper()
	gs := rowStrings(got)
	if len(gs) != len(want) {
		t.Fatalf("got %d rows %v, want %d %v", len(gs), gs, len(want), want)
	}
	seen := map[string]int{}
	for _, g := range gs {
		seen[g]++
	}
	for _, w := range want {
		if seen[w] == 0 {
			t.Errorf("missing row %q in %v", w, gs)
			continue
		}
		seen[w]--
	}
}

func TestScanProjectFilter(t *testing.T) {
	rt := testRuntime(t)
	rows := runSQL(t, rt, "SELECT src, dst FROM edges WHERE src = 1 ORDER BY dst")
	expectRows(t, rows, "1, 2", "1, 3")
}

func TestExpressionsInProjection(t *testing.T) {
	rt := testRuntime(t)
	rows := runSQL(t, rt, "SELECT src * 10 + dst FROM edges WHERE src = 1 ORDER BY 1")
	expectRows(t, rows, "12", "13")
}

func TestFromlessSelect(t *testing.T) {
	rt := testRuntime(t)
	rows := runSQL(t, rt, "SELECT 1 + 1, 'x'")
	expectRows(t, rows, "2, x")
}

func TestInnerJoin(t *testing.T) {
	rt := testRuntime(t)
	rows := runSQL(t, rt, `SELECT e.src, e.dst, v.status FROM edges e
		JOIN vertexStatus v ON e.dst = v.node ORDER BY e.src, e.dst`)
	expectRows(t, rows, "1, 2, 1", "1, 3, 1", "2, 3, 1", "3, 4, 0")
}

func TestLeftJoin(t *testing.T) {
	rt := testRuntime(t)
	// Nodes with no incoming edges get NULLs from the right side.
	rows := runSQL(t, rt, `SELECT v.node, e.src FROM vertexStatus v
		LEFT JOIN edges e ON v.node = e.dst ORDER BY v.node, e.src`)
	expectRows(t, rows, "1, NULL", "2, 1", "3, 1", "3, 2", "4, 3")
}

func TestRightJoin(t *testing.T) {
	rt := testRuntime(t)
	rows := runSQL(t, rt, `SELECT e.src, v.node FROM edges e
		RIGHT JOIN vertexStatus v ON e.dst = v.node ORDER BY v.node, e.src`)
	expectRows(t, rows, "NULL, 1", "1, 2", "1, 3", "2, 3", "3, 4")
}

func TestFullJoin(t *testing.T) {
	cat := catalog.New(1)
	a, _ := cat.Create("a", sqltypes.Schema{{Name: "x", Type: sqltypes.Int}}, -1)
	b, _ := cat.Create("b", sqltypes.Schema{{Name: "y", Type: sqltypes.Int}}, -1)
	for _, v := range []int64{1, 2} {
		a.Insert(sqltypes.Row{sqltypes.NewInt(v)})
	}
	for _, v := range []int64{2, 3} {
		b.Insert(sqltypes.Row{sqltypes.NewInt(v)})
	}
	rt := NewStoreRuntime(cat, storage.NewResultStore())
	rows := runSQL(t, rt, "SELECT x, y FROM a FULL JOIN b ON a.x = b.y")
	expectSet(t, rows, "1, NULL", "2, 2", "NULL, 3")
}

func TestCrossJoin(t *testing.T) {
	rt := testRuntime(t)
	rows := runSQL(t, rt, "SELECT COUNT(*) FROM edges, vertexStatus")
	expectRows(t, rows, "16")
}

func TestJoinResidualPredicate(t *testing.T) {
	rt := testRuntime(t)
	// ON clause with an extra non-equi conjunct: LEFT JOIN keeps
	// unmatched rows.
	rows := runSQL(t, rt, `SELECT v.node, e.src FROM vertexStatus v
		LEFT JOIN edges e ON v.node = e.dst AND e.src > 1 ORDER BY v.node, e.src`)
	expectRows(t, rows, "1, NULL", "2, NULL", "3, 2", "4, 3")
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	cat := catalog.New(1)
	a, _ := cat.Create("a", sqltypes.Schema{{Name: "x", Type: sqltypes.Int}}, -1)
	b, _ := cat.Create("b", sqltypes.Schema{{Name: "y", Type: sqltypes.Int}}, -1)
	a.Insert(sqltypes.Row{sqltypes.NullValue})
	a.Insert(sqltypes.Row{sqltypes.NewInt(1)})
	b.Insert(sqltypes.Row{sqltypes.NullValue})
	b.Insert(sqltypes.Row{sqltypes.NewInt(1)})
	rt := NewStoreRuntime(cat, storage.NewResultStore())
	rows := runSQL(t, rt, "SELECT x, y FROM a JOIN b ON a.x = b.y")
	expectRows(t, rows, "1, 1")
	rows = runSQL(t, rt, "SELECT x, y FROM a LEFT JOIN b ON a.x = b.y ORDER BY x")
	expectRows(t, rows, "NULL, NULL", "1, 1")
}

func TestSelfJoinWithAliases(t *testing.T) {
	rt := testRuntime(t)
	// Two-hop paths.
	rows := runSQL(t, rt, `SELECT a.src, b.dst FROM edges a
		JOIN edges b ON a.dst = b.src ORDER BY a.src, b.dst`)
	expectRows(t, rows, "1, 3", "1, 4", "2, 4")
}

func TestAggregation(t *testing.T) {
	rt := testRuntime(t)
	rows := runSQL(t, rt, "SELECT src, COUNT(*) FROM edges GROUP BY src ORDER BY src")
	expectRows(t, rows, "1, 2", "2, 1", "3, 1")
	rows = runSQL(t, rt, "SELECT SUM(weight), MIN(src), MAX(dst), AVG(src) FROM edges")
	expectRows(t, rows, "4, 1, 4, 1.75")
	// Scalar aggregate over empty input yields one row.
	rows = runSQL(t, rt, "SELECT COUNT(*), SUM(weight) FROM edges WHERE src = 99")
	expectRows(t, rows, "0, NULL")
	// Grouped aggregate over empty input yields nothing.
	rows = runSQL(t, rt, "SELECT src, COUNT(*) FROM edges WHERE src = 99 GROUP BY src")
	if len(rows) != 0 {
		t.Errorf("grouped empty input: %v", rowStrings(rows))
	}
}

func TestGroupByExpression(t *testing.T) {
	rt := testRuntime(t)
	rows := runSQL(t, rt, "SELECT src % 2, COUNT(*) FROM edges GROUP BY src % 2 ORDER BY 1")
	expectRows(t, rows, "0, 1", "1, 3")
}

func TestHaving(t *testing.T) {
	rt := testRuntime(t)
	rows := runSQL(t, rt, "SELECT src FROM edges GROUP BY src HAVING COUNT(*) > 1")
	expectRows(t, rows, "1")
}

func TestAggregateOverJoin(t *testing.T) {
	rt := testRuntime(t)
	// The PR iterative shape: aggregate over a left join.
	rows := runSQL(t, rt, `SELECT v.node, COUNT(e.src) FROM vertexStatus v
		LEFT JOIN edges e ON v.node = e.dst GROUP BY v.node ORDER BY v.node`)
	expectRows(t, rows, "1, 0", "2, 1", "3, 2", "4, 1")
}

func TestUnionDedup(t *testing.T) {
	rt := testRuntime(t)
	rows := runSQL(t, rt, "SELECT src FROM edges UNION SELECT dst FROM edges ORDER BY 1")
	expectRows(t, rows, "1", "2", "3", "4")
	rows = runSQL(t, rt, "SELECT src FROM edges UNION ALL SELECT dst FROM edges")
	if len(rows) != 8 {
		t.Errorf("UNION ALL rows = %d", len(rows))
	}
}

func TestDistinct(t *testing.T) {
	rt := testRuntime(t)
	rows := runSQL(t, rt, "SELECT DISTINCT src FROM edges ORDER BY src")
	expectRows(t, rows, "1", "2", "3")
	rows = runSQL(t, rt, "SELECT COUNT(DISTINCT src) FROM edges")
	expectRows(t, rows, "3")
}

func TestOrderLimitOffset(t *testing.T) {
	rt := testRuntime(t)
	rows := runSQL(t, rt, "SELECT src, dst FROM edges ORDER BY src DESC, dst DESC LIMIT 2")
	expectRows(t, rows, "3, 4", "2, 3")
	rows = runSQL(t, rt, "SELECT dst FROM edges ORDER BY dst LIMIT 2 OFFSET 1")
	expectRows(t, rows, "3", "3")
}

func TestSubqueryExecution(t *testing.T) {
	rt := testRuntime(t)
	rows := runSQL(t, rt, `SELECT n, COUNT(*) FROM
		(SELECT src AS n FROM edges UNION ALL SELECT dst FROM edges) AS t
		GROUP BY n ORDER BY n`)
	expectRows(t, rows, "1, 2", "2, 2", "3, 3", "4, 1")
}

func TestRegularCTEExecution(t *testing.T) {
	rt := testRuntime(t)
	rows := runSQL(t, rt, `WITH nodes (id) AS (SELECT src FROM edges UNION SELECT dst FROM edges)
		SELECT COUNT(*) FROM nodes`)
	expectRows(t, rows, "4")
}

func TestNamedResultExecution(t *testing.T) {
	rt := testRuntime(t)
	res := storage.NewTable("pr", sqltypes.Schema{
		{Name: "node", Type: sqltypes.Int},
		{Name: "rank", Type: sqltypes.Float},
	}, 1)
	res.Insert(sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewFloat(0.15)})
	res.Insert(sqltypes.Row{sqltypes.NewInt(2), sqltypes.NewFloat(0.3)})
	rt.Results.Put("pr", res)
	rows := runSQL(t, rt, "SELECT node FROM pr WHERE rank > 0.2")
	expectRows(t, rows, "2")
}

func TestCaseInProjection(t *testing.T) {
	rt := testRuntime(t)
	rows := runSQL(t, rt, `SELECT src, CASE WHEN src = 1 THEN 0 ELSE 9999999 END
		FROM edges WHERE dst = 3 ORDER BY src`)
	expectRows(t, rows, "1, 0", "2, 9999999")
}

func TestCoalesceLeastOverJoin(t *testing.T) {
	rt := testRuntime(t)
	// The SSSP shape: COALESCE(MIN(...), big) over a LEFT JOIN.
	rows := runSQL(t, rt, `SELECT v.node, COALESCE(MIN(e.src + 10), 9999999)
		FROM vertexStatus v LEFT JOIN edges e ON v.node = e.dst
		GROUP BY v.node ORDER BY v.node`)
	expectRows(t, rows, "1, 9999999", "2, 11", "3, 11", "4, 13")
}

func TestStats(t *testing.T) {
	rt := testRuntime(t)
	stmt, _ := parser.Parse("SELECT src, COUNT(*) FROM edges JOIN vertexStatus v ON edges.dst = v.node GROUP BY src")
	node, err := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if _, err := Run(node, rt, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.RowsScanned != 8 {
		t.Errorf("RowsScanned = %d, want 8", stats.RowsScanned)
	}
	if stats.RowsJoined != 4 {
		t.Errorf("RowsJoined = %d, want 4", stats.RowsJoined)
	}
	if stats.RowsGrouped != 3 {
		t.Errorf("RowsGrouped = %d, want 3", stats.RowsGrouped)
	}
}

func TestMaterialize(t *testing.T) {
	rt := testRuntime(t)
	stmt, _ := parser.Parse("SELECT src, COUNT(*) AS c FROM edges GROUP BY src")
	node, err := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Materialize(node, rt, nil, "counts", 2)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 || tbl.Name != "counts" {
		t.Errorf("materialized: %d rows, name %q", tbl.Len(), tbl.Name)
	}
	if tbl.Schema[1].Name != "c" {
		t.Errorf("schema = %v", tbl.Schema)
	}
}

func TestRuntimeErrors(t *testing.T) {
	rt := testRuntime(t)
	if _, err := rt.BaseTable("missing"); err == nil {
		t.Error("missing base table")
	}
	if _, err := rt.Result("missing"); err == nil {
		t.Error("missing result")
	}
	if _, ok := rt.TableSchema("edges"); !ok {
		t.Error("TableSchema")
	}
	if _, ok := rt.TableSchema("missing"); ok {
		t.Error("missing TableSchema")
	}
	if _, ok := rt.ResultSchema("missing"); ok {
		t.Error("missing ResultSchema")
	}
}

func TestRuntimeErrorPropagation(t *testing.T) {
	rt := testRuntime(t)
	stmt, _ := parser.Parse("SELECT 1 / (src - src) FROM edges")
	node, err := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(node, rt, nil); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("expected division by zero, got %v", err)
	}
}

func TestLargeJoinConsistency(t *testing.T) {
	// Build a larger random-ish graph and check the hash join against a
	// brute-force nested loop on the same predicate.
	cat := catalog.New(4)
	a, _ := cat.Create("a", sqltypes.Schema{{Name: "k", Type: sqltypes.Int}, {Name: "v", Type: sqltypes.Int}}, -1)
	b, _ := cat.Create("b", sqltypes.Schema{{Name: "k", Type: sqltypes.Int}, {Name: "w", Type: sqltypes.Int}}, -1)
	for i := 0; i < 200; i++ {
		a.Insert(sqltypes.Row{sqltypes.NewInt(int64(i % 37)), sqltypes.NewInt(int64(i))})
		b.Insert(sqltypes.Row{sqltypes.NewInt(int64(i % 23)), sqltypes.NewInt(int64(i))})
	}
	rt := NewStoreRuntime(cat, storage.NewResultStore())
	hashRows := runSQL(t, rt, "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k")
	// Cross join + WHERE forces the nested-loop path.
	loopRows := runSQL(t, rt, "SELECT a.v, b.w FROM a, b WHERE a.k = b.k")
	if len(hashRows) == 0 || len(hashRows) != len(loopRows) {
		t.Fatalf("hash=%d loop=%d", len(hashRows), len(loopRows))
	}
	count := map[string]int{}
	for _, r := range hashRows {
		count[r.String()]++
	}
	for _, r := range loopRows {
		count[r.String()]--
	}
	for k, v := range count {
		if v != 0 {
			t.Fatalf("row multiset mismatch at %q (%+d)", k, v)
		}
	}
}

func TestOperatorReopen(t *testing.T) {
	// Operators are re-openable: the loop operator re-executes the
	// iterative step plan every iteration.
	rt := testRuntime(t)
	stmt, _ := parser.Parse("SELECT src FROM edges WHERE src = 1")
	node, err := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	op, err := Build(node, rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rows := drainAll(t, op)
		if len(rows) != 2 {
			t.Fatalf("iteration %d: %d rows", i, len(rows))
		}
	}
}

func drainAll(t *testing.T, op Operator) []sqltypes.Row {
	t.Helper()
	rows, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestManyGroups(t *testing.T) {
	cat := catalog.New(2)
	tb, _ := cat.Create("t", sqltypes.Schema{{Name: "k", Type: sqltypes.Int}, {Name: "v", Type: sqltypes.Float}}, -1)
	const n = 5000
	for i := 0; i < n; i++ {
		tb.Insert(sqltypes.Row{sqltypes.NewInt(int64(i % 100)), sqltypes.NewFloat(float64(i))})
	}
	rt := NewStoreRuntime(cat, storage.NewResultStore())
	rows := runSQL(t, rt, "SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k")
	if len(rows) != 100 {
		t.Fatalf("groups = %d", len(rows))
	}
	var total int64
	for _, r := range rows {
		total += r[1].Int()
	}
	if total != n {
		t.Errorf("total count = %d", total)
	}
}

func TestValuesNode(t *testing.T) {
	rows := [][]ast.Expr{
		{&ast.Literal{Value: sqltypes.NewInt(1)}, &ast.Literal{Value: sqltypes.NewString("a")}},
		{&ast.Literal{Value: sqltypes.NewInt(2)}, &ast.Literal{Value: sqltypes.NewString("b")}},
	}
	n := &plan.ValuesNode{Rows: rows, Cols: []plan.ColInfo{
		{Name: "x", Type: sqltypes.Int}, {Name: "s", Type: sqltypes.String},
	}}
	got, err := Run(n, NewStoreRuntime(catalog.New(1), storage.NewResultStore()), nil)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, got, "1, a", "2, b")
}

func ExampleDrain() {
	cat := catalog.New(1)
	tb, _ := cat.Create("t", sqltypes.Schema{{Name: "x", Type: sqltypes.Int}}, -1)
	tb.Insert(sqltypes.Row{sqltypes.NewInt(42)})
	rt := NewStoreRuntime(cat, storage.NewResultStore())
	stmt, _ := parser.Parse("SELECT x FROM t")
	node, _ := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
	rows, _ := Run(node, rt, nil)
	fmt.Println(rows[0].String())
	// Output: 42
}
