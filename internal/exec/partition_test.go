package exec

import (
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/parser"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
)

// joinNode builds the logical join node of the given query's FROM
// clause for the partition-helper tests.
func joinNode(t *testing.T, rt *StoreRuntime, sql string) *plan.Join {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	var join *plan.Join
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok && join == nil {
			join = j
			return
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(node)
	if join == nil {
		t.Fatal("no join in plan")
	}
	return join
}

func TestJoinKeysExtraction(t *testing.T) {
	rt := testRuntime(t)
	j := joinNode(t, rt, `SELECT * FROM edges e JOIN vertexStatus v ON e.dst = v.node AND e.weight > 0.5`)
	lk, rk, residual, err := JoinKeys(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(lk) != 1 || len(rk) != 1 {
		t.Errorf("keys = %d/%d", len(lk), len(rk))
	}
	if residual == nil {
		t.Error("non-equi conjunct should become residual")
	}
	// Reversed operand order also extracts.
	j = joinNode(t, rt, `SELECT * FROM edges e JOIN vertexStatus v ON v.node = e.dst`)
	lk, rk, residual, err = JoinKeys(j)
	if err != nil || len(lk) != 1 || residual != nil {
		t.Errorf("reversed equi: %d keys, residual %v, err %v", len(lk), residual, err)
	}
	_ = rk
}

func TestKeyFor(t *testing.T) {
	rt := testRuntime(t)
	j := joinNode(t, rt, `SELECT * FROM edges e JOIN vertexStatus v ON e.dst = v.node`)
	lk, _, _, err := JoinKeys(j)
	if err != nil {
		t.Fatal(err)
	}
	row := sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewInt(7), sqltypes.NewFloat(1)}
	k1, null, err := KeyFor(lk, row)
	if err != nil || null {
		t.Fatalf("KeyFor: %v null=%v", err, null)
	}
	row2 := sqltypes.Row{sqltypes.NewInt(9), sqltypes.NewFloat(7), sqltypes.NewFloat(2)}
	k2, _, _ := KeyFor(lk, row2)
	if k1 != k2 {
		t.Error("7 and 7.0 keys should match")
	}
	nullRow := sqltypes.Row{sqltypes.NewInt(1), sqltypes.NullValue, sqltypes.NewFloat(1)}
	if _, null, _ := KeyFor(lk, nullRow); !null {
		t.Error("NULL key not reported")
	}
}

func TestHashJoinPartitionSemantics(t *testing.T) {
	rt := testRuntime(t)
	j := joinNode(t, rt, `SELECT * FROM edges e LEFT JOIN vertexStatus v ON e.dst = v.node`)
	lk, rk, residual, err := JoinKeys(j)
	if err != nil {
		t.Fatal(err)
	}
	left := []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewInt(2), sqltypes.NewFloat(1)},
		{sqltypes.NewInt(1), sqltypes.NewInt(99), sqltypes.NewFloat(1)}, // no match
	}
	right := []sqltypes.Row{
		{sqltypes.NewInt(2), sqltypes.NewInt(1)},
	}
	out, err := HashJoinPartition(ast.LeftJoin, left, right, lk, rk, residual, 3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("out = %d rows", len(out))
	}
	matched, unmatched := 0, 0
	for _, r := range out {
		if len(r) != 5 {
			t.Fatalf("row width %d", len(r))
		}
		if r[3].IsNull() {
			unmatched++
		} else {
			matched++
		}
	}
	if matched != 1 || unmatched != 1 {
		t.Errorf("matched=%d unmatched=%d", matched, unmatched)
	}
}

func TestNestedLoopPartition(t *testing.T) {
	a := []sqltypes.Row{{sqltypes.NewInt(1)}, {sqltypes.NewInt(2)}}
	b := []sqltypes.Row{{sqltypes.NewInt(10)}, {sqltypes.NewInt(20)}}
	out, err := NestedLoopPartition(a, b, nil, nil)
	if err != nil || len(out) != 4 {
		t.Fatalf("cross join: %d rows, %v", len(out), err)
	}
}

func TestAggregatePartitionEmptyScalar(t *testing.T) {
	rt := testRuntime(t)
	stmt, _ := parser.Parse("SELECT COUNT(*) FROM edges")
	node, err := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	agg := node.(*plan.Project).Input.(*plan.Aggregate)
	// With emptyScalar: one zero row even with no input.
	rows, err := AggregatePartition(agg, nil, true, nil)
	if err != nil || len(rows) != 1 || rows[0][0].Int() != 0 {
		t.Errorf("emptyScalar: %v, %v", rows, err)
	}
	// Without: nothing (other fragments produce the row).
	rows, err = AggregatePartition(agg, nil, false, nil)
	if err != nil || len(rows) != 0 {
		t.Errorf("non-emptyScalar: %v, %v", rows, err)
	}
}

func TestGroupKeyExprs(t *testing.T) {
	rt := testRuntime(t)
	stmt, _ := parser.Parse("SELECT src, COUNT(*) FROM edges GROUP BY src")
	node, err := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	agg := node.(*plan.Project).Input.(*plan.Aggregate)
	keys, err := GroupKeyExprs(agg)
	if err != nil || len(keys) != 1 {
		t.Fatalf("keys = %d, %v", len(keys), err)
	}
	v, err := keys[0].Eval(sqltypes.Row{sqltypes.NewInt(5), sqltypes.NewInt(6), sqltypes.NewFloat(1)})
	if err != nil || v.Int() != 5 {
		t.Errorf("key eval = %v, %v", v, err)
	}
}

func TestRowsOperator(t *testing.T) {
	op := RowsOperator([]sqltypes.Row{{sqltypes.NewInt(1)}, {sqltypes.NewInt(2)}})
	rows, err := Drain(op)
	if err != nil || len(rows) != 2 {
		t.Fatalf("%v, %v", rows, err)
	}
	// Reopenable.
	rows, err = Drain(op)
	if err != nil || len(rows) != 2 {
		t.Fatalf("reopen: %v, %v", rows, err)
	}
}
