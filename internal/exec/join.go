package exec

import (
	"fmt"

	"dbspinner/internal/ast"
	"dbspinner/internal/expr"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
)

// buildJoin compiles a join node. Equi-conjuncts of the ON condition
// become hash keys; remaining conjuncts are evaluated as a residual
// predicate on each candidate pair. Joins without any equi-key fall
// back to a nested loop.
func buildJoin(t *plan.Join, rt Runtime, stats *Stats, cc *CancelChecker) (Operator, error) {
	left, err := buildWith(t.Left, rt, stats, cc)
	if err != nil {
		return nil, err
	}
	right, err := buildWith(t.Right, rt, stats, cc)
	if err != nil {
		return nil, err
	}
	lw, rw := len(t.Left.Columns()), len(t.Right.Columns())

	leftKeys, rightKeys, residual, err := JoinKeys(t)
	if err != nil {
		return nil, err
	}

	switch t.Type {
	case ast.CrossJoin:
		return &nestedLoopOp{left: left, right: right, residual: residual, stats: stats, cancel: cc}, nil
	case ast.InnerJoin, ast.LeftJoin, ast.RightJoin, ast.FullJoin:
		if len(leftKeys) == 0 {
			if t.Type == ast.InnerJoin {
				return &nestedLoopOp{left: left, right: right, residual: residual, stats: stats, cancel: cc}, nil
			}
			return nil, fmt.Errorf("outer join requires at least one equality condition between the two sides")
		}
		return &hashJoinOp{
			typ: t.Type, left: left, right: right,
			leftKeys: leftKeys, rightKeys: rightKeys,
			residual: residual, leftWidth: lw, rightWidth: rw,
			stats: stats, cancel: cc,
		}, nil
	}
	return nil, fmt.Errorf("unsupported join type %v", t.Type)
}

// splitEquiKey recognizes conjuncts of the form leftExpr = rightExpr
// where each side resolves entirely against one input (in either
// order). It returns the key expression for the left and right inputs.
func splitEquiKey(e ast.Expr, leftEnv, rightEnv *expr.Env) (lk, rk ast.Expr, ok bool) {
	b, isBin := e.(*ast.BinaryExpr)
	if !isBin || b.Op != "=" {
		return nil, nil, false
	}
	if ast.HasAggregate(b.L) || ast.HasAggregate(b.R) {
		return nil, nil, false
	}
	resolves := func(x ast.Expr, env *expr.Env) bool {
		_, err := expr.Compile(x, env)
		return err == nil
	}
	switch {
	case resolves(b.L, leftEnv) && resolves(b.R, rightEnv):
		return b.L, b.R, true
	case resolves(b.R, leftEnv) && resolves(b.L, rightEnv):
		return b.R, b.L, true
	}
	return nil, nil, false
}

// hashJoinOp implements inner, left-outer, right-outer and full-outer
// hash joins. The build side is the right input except for right-outer
// joins, where the left input is built and the right side streamed.
type hashJoinOp struct {
	typ                   ast.JoinType
	left, right           Operator
	leftKeys, rightKeys   []*expr.Compiled
	residual              *expr.Compiled
	leftWidth, rightWidth int
	stats                 *Stats
	cancel                *CancelChecker

	build            map[sqltypes.CompositeKey][]*buildRow
	buildRows        []*buildRow // insertion order, for full-outer leftovers
	probe            Operator
	probeRow         sqltypes.Row
	matches          []*buildRow
	matchIdx         int
	emittedForProbe  bool
	leftoverIdx      int
	drainingLeftover bool
}

type buildRow struct {
	row     sqltypes.Row
	matched bool
}

// buildIsLeft reports whether the left input is the build side.
func (h *hashJoinOp) buildIsLeft() bool { return h.typ == ast.RightJoin }

func (h *hashJoinOp) Open() error {
	var buildOp Operator
	var buildKeys []*expr.Compiled
	if h.buildIsLeft() {
		buildOp, buildKeys = h.left, h.leftKeys
		h.probe = h.right
	} else {
		buildOp, buildKeys = h.right, h.rightKeys
		h.probe = h.left
	}

	rows, err := Drain(buildOp)
	if err != nil {
		return err
	}
	h.build = make(map[sqltypes.CompositeKey][]*buildRow, len(rows))
	h.buildRows = h.buildRows[:0]
	for _, r := range rows {
		key, null, err := evalKey(buildKeys, r)
		if err != nil {
			return err
		}
		br := &buildRow{row: r}
		h.buildRows = append(h.buildRows, br)
		if null {
			continue // NULL keys never match
		}
		h.build[key] = append(h.build[key], br)
	}
	h.probeRow = nil
	h.matches = nil
	h.matchIdx = 0
	h.leftoverIdx = 0
	h.drainingLeftover = false
	return h.probe.Open()
}

func evalKey(keys []*expr.Compiled, r sqltypes.Row) (sqltypes.CompositeKey, bool, error) {
	vals := make(sqltypes.Row, len(keys))
	for i, k := range keys {
		v, err := k.Eval(r)
		if err != nil {
			return sqltypes.CompositeKey{}, false, err
		}
		if v.IsNull() {
			return sqltypes.CompositeKey{}, true, nil
		}
		vals[i] = v
	}
	cols := make([]int, len(vals))
	for i := range cols {
		cols[i] = i
	}
	return sqltypes.RowKey(vals, cols), false, nil
}

// combined builds the output row in left-then-right column order.
func (h *hashJoinOp) combined(probe sqltypes.Row, build sqltypes.Row) sqltypes.Row {
	out := make(sqltypes.Row, 0, h.leftWidth+h.rightWidth)
	if h.buildIsLeft() {
		if build == nil {
			out = out[:h.leftWidth] // zero Values are NULL
		} else {
			out = append(out, build...)
		}
		out = append(out, probe...)
	} else {
		out = append(out, probe...)
		if build == nil {
			out = append(out, make(sqltypes.Row, h.rightWidth)...)
		} else {
			out = append(out, build...)
		}
	}
	return out
}

// outerProbe reports whether unmatched probe rows are emitted
// null-extended.
func (h *hashJoinOp) outerProbe() bool {
	return h.typ == ast.LeftJoin || h.typ == ast.RightJoin || h.typ == ast.FullJoin
}

func (h *hashJoinOp) Next() (sqltypes.Row, error) {
	for {
		if h.drainingLeftover {
			// Full-outer: emit unmatched build rows null-extended.
			for h.leftoverIdx < len(h.buildRows) {
				br := h.buildRows[h.leftoverIdx]
				h.leftoverIdx++
				if br.matched {
					continue
				}
				h.stats.RowsJoined++
				return h.nullExtendBuild(br.row), nil
			}
			return nil, nil
		}

		// Continue emitting matches for the current probe row.
		for h.matchIdx < len(h.matches) {
			if err := h.cancel.Tick(); err != nil {
				return nil, err
			}
			br := h.matches[h.matchIdx]
			h.matchIdx++
			out := h.combined(h.probeRow, br.row)
			if h.residual != nil {
				v, err := h.residual.Eval(out)
				if err != nil {
					return nil, err
				}
				if sqltypes.TriOf(v) != sqltypes.TriTrue {
					continue
				}
			}
			br.matched = true
			h.emittedForProbe = true
			h.stats.RowsJoined++
			return out, nil
		}

		// The previous probe row is exhausted; emit its null-extended
		// form if it matched nothing and the join is outer.
		if h.probeRow != nil && !h.emittedForProbe && h.outerProbe() {
			out := h.combined(h.probeRow, nil)
			h.probeRow = nil
			h.stats.RowsJoined++
			return out, nil
		}

		// Advance to the next probe row.
		r, err := h.probe.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			if h.typ == ast.FullJoin {
				h.drainingLeftover = true
				continue
			}
			return nil, nil
		}
		h.probeRow = r
		h.emittedForProbe = false
		var probeKeys []*expr.Compiled
		if h.buildIsLeft() {
			probeKeys = h.rightKeys
		} else {
			probeKeys = h.leftKeys
		}
		key, null, err := evalKey(probeKeys, r)
		if err != nil {
			return nil, err
		}
		if null {
			h.matches = nil
		} else {
			h.matches = h.build[key]
		}
		h.matchIdx = 0
	}
}

// nullExtendBuild emits an unmatched build row (full-outer leftovers)
// with NULLs on the probe side, in left-then-right order.
func (h *hashJoinOp) nullExtendBuild(build sqltypes.Row) sqltypes.Row {
	out := make(sqltypes.Row, 0, h.leftWidth+h.rightWidth)
	if h.buildIsLeft() {
		out = append(out, build...)
		out = append(out, make(sqltypes.Row, h.rightWidth)...)
	} else {
		out = append(out, make(sqltypes.Row, h.leftWidth)...)
		out = append(out, build...)
	}
	return out
}

func (h *hashJoinOp) Close() error {
	h.build = nil
	h.buildRows = nil
	h.matches = nil
	return h.probe.Close()
}

// nestedLoopOp implements cross joins and inner joins without
// equi-keys. The right side is materialized; the left side streams.
type nestedLoopOp struct {
	left, right Operator
	residual    *expr.Compiled
	stats       *Stats
	cancel      *CancelChecker

	rightRows []sqltypes.Row
	leftRow   sqltypes.Row
	rightIdx  int
}

func (n *nestedLoopOp) Open() error {
	rows, err := Drain(n.right)
	if err != nil {
		return err
	}
	n.rightRows = rows
	n.leftRow = nil
	n.rightIdx = 0
	return n.left.Open()
}

func (n *nestedLoopOp) Next() (sqltypes.Row, error) {
	for {
		if n.leftRow == nil {
			r, err := n.left.Next()
			if err != nil || r == nil {
				return nil, err
			}
			n.leftRow = r
			n.rightIdx = 0
		}
		for n.rightIdx < len(n.rightRows) {
			if err := n.cancel.Tick(); err != nil {
				return nil, err
			}
			rr := n.rightRows[n.rightIdx]
			n.rightIdx++
			out := make(sqltypes.Row, 0, len(n.leftRow)+len(rr))
			out = append(out, n.leftRow...)
			out = append(out, rr...)
			if n.residual != nil {
				v, err := n.residual.Eval(out)
				if err != nil {
					return nil, err
				}
				if sqltypes.TriOf(v) != sqltypes.TriTrue {
					continue
				}
			}
			n.stats.RowsJoined++
			return out, nil
		}
		n.leftRow = nil
	}
}

func (n *nestedLoopOp) Close() error {
	n.rightRows = nil
	return n.left.Close()
}
