package exec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/catalog"
	"dbspinner/internal/parser"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

func TestTopNEqualsSortLimit(t *testing.T) {
	// TopN must produce exactly what stable Sort + Limit would, for
	// random inputs with heavy ties.
	rng := rand.New(rand.NewSource(3))
	cat := catalog.New(1)
	tb, _ := cat.Create("t", sqltypes.Schema{
		{Name: "k", Type: sqltypes.Int},
		{Name: "seq", Type: sqltypes.Int},
	}, -1)
	for i := 0; i < 500; i++ {
		tb.Insert(sqltypes.Row{sqltypes.NewInt(int64(rng.Intn(10))), sqltypes.NewInt(int64(i))})
	}
	rt := NewStoreRuntime(cat, storage.NewResultStore())

	for _, tc := range []struct{ n, off int }{{5, 0}, {20, 0}, {7, 3}, {1000, 0}, {3, 498}, {2, 600}} {
		sql := fmt.Sprintf("SELECT k, seq FROM t ORDER BY k DESC LIMIT %d OFFSET %d", tc.n, tc.off)
		stmt, _ := parser.Parse(sql)
		node, err := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
		if err != nil {
			t.Fatal(err)
		}
		top, ok := node.(*plan.TopN)
		if !ok {
			t.Fatalf("expected TopN, got %T", node)
		}
		got, err := Run(top, rt, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: full stable sort + slice.
		ref, err := Run(&plan.Limit{
			Input: &plan.Sort{Input: top.Input, Keys: top.Keys},
			N:     top.N, Offset: top.Offset,
		}, rt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d rows vs %d", sql, len(got), len(ref))
		}
		for i := range got {
			if got[i].String() != ref[i].String() {
				t.Fatalf("%s row %d: %q vs %q (TopN must match stable sort)", sql, i, got[i], ref[i])
			}
		}
	}
}

func TestTopNZero(t *testing.T) {
	rows, err := TopNPartition([]sqltypes.Row{{sqltypes.NewInt(1)}}, []plan.SortKey{{Col: 0}}, 0)
	if err != nil || len(rows) != 0 {
		t.Errorf("keep=0: %v, %v", rows, err)
	}
}

func TestTopNPartitionHelper(t *testing.T) {
	rows := []sqltypes.Row{
		{sqltypes.NewInt(3)}, {sqltypes.NewInt(1)}, {sqltypes.NewInt(2)},
	}
	out, err := TopNPartition(rows, []plan.SortKey{{Col: 0}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0][0].Int() != 1 || out[1][0].Int() != 2 {
		t.Errorf("out = %v", out)
	}
}

func TestEmptyNode(t *testing.T) {
	rt := testRuntime(t)
	rows := runSQL(t, rt, "SELECT src FROM edges WHERE 1 = 0")
	if len(rows) != 0 {
		t.Errorf("rows = %v", rows)
	}
	// Aggregates over a provably-empty input still behave correctly.
	rows = runSQL(t, rt, "SELECT COUNT(*) FROM edges WHERE FALSE")
	if len(rows) != 1 || rows[0][0].Int() != 0 {
		t.Errorf("count over empty = %v", rows)
	}
}

func TestTopNExplain(t *testing.T) {
	rt := testRuntime(t)
	stmt, _ := parser.Parse("SELECT src FROM edges ORDER BY src DESC LIMIT 2")
	node, err := plan.NewBuilder(rt).Build(stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	out := plan.ExplainTree(node)
	if !strings.Contains(out, "TopN 2 by src DESC") {
		t.Errorf("explain = %s", out)
	}
}
