// Package exec implements the physical operators: volcano-style
// iterators compiled from logical plans. Joins are hash joins with
// equi-key extraction (falling back to nested loops), aggregation is
// hash-based, and every operator follows SQL NULL semantics.
package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"dbspinner/internal/expr"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

// Runtime supplies table data to operators at execution time.
type Runtime interface {
	// BaseTable resolves a catalog table.
	BaseTable(name string) (*storage.Table, error)
	// Result resolves a named intermediate result.
	Result(name string) (*storage.Table, error)
}

// Stats accumulates execution counters, used by the benchmarks and the
// data-movement experiments.
type Stats struct {
	RowsScanned int64 // rows read from base tables and results
	RowsJoined  int64 // rows emitted by joins
	RowsGrouped int64 // groups emitted by aggregates
	// RowsAggInput counts rows fed INTO aggregate operators — the
	// input-side metric the incremental-aggregate-maintenance
	// experiment reports (a maintained plan aggregates only the
	// affected groups' rows, a full plan everything).
	RowsAggInput int64
	// ResultCellsRead counts cells (row length per row) read from
	// materialized intermediate results — the read-side half of the
	// column-pruning experiment's data-movement metric (the write side
	// is core.Stats.MaterializedCells).
	ResultCellsRead int64
}

// Operator is a volcano-style iterator. Next returns nil at end of
// stream.
type Operator interface {
	Open() error
	Next() (sqltypes.Row, error)
	Close() error
}

// Drain runs an operator to completion and returns all rows.
func Drain(op Operator) ([]sqltypes.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []sqltypes.Row
	for {
		r, err := op.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return out, nil
		}
		out = append(out, r)
	}
}

// Build compiles a logical plan into an operator tree.
func Build(n plan.Node, rt Runtime, stats *Stats) (Operator, error) {
	return buildWith(n, rt, stats, nil)
}

// BuildContext compiles a plan whose scan and join inner loops poll
// ctx at a coarse row stride, so a canceled or timed-out query stops
// mid-scan instead of finishing the operator it is inside.
func BuildContext(ctx context.Context, n plan.Node, rt Runtime, stats *Stats) (Operator, error) {
	return buildWith(n, rt, stats, NewCancelChecker(ctx))
}

// buildWith is the recursive compiler; cc (possibly nil) is shared by
// every operator of the tree — execution is single-threaded.
func buildWith(n plan.Node, rt Runtime, stats *Stats, cc *CancelChecker) (Operator, error) {
	if stats == nil {
		stats = &Stats{}
	}
	switch t := n.(type) {
	case *plan.Scan:
		return &scanOp{name: t.Table, base: true, rt: rt, stats: stats, cancel: cc}, nil
	case *plan.NamedResult:
		return &scanOp{name: t.Name, base: false, rt: rt, stats: stats, cancel: cc}, nil
	case *plan.OneRow:
		return &oneRowOp{}, nil
	case *plan.Alias:
		return buildWith(t.Input, rt, stats, cc)
	case *plan.Filter:
		in, err := buildWith(t.Input, rt, stats, cc)
		if err != nil {
			return nil, err
		}
		cond, err := expr.Compile(t.Cond, planEnv(t.Input))
		if err != nil {
			return nil, err
		}
		return &filterOp{input: in, cond: cond}, nil
	case *plan.Project:
		in, err := buildWith(t.Input, rt, stats, cc)
		if err != nil {
			return nil, err
		}
		e := planEnv(t.Input)
		items := make([]*expr.Compiled, len(t.Items))
		for i, it := range t.Items {
			c, err := expr.Compile(it.Expr, e)
			if err != nil {
				return nil, err
			}
			items[i] = c
		}
		return &projectOp{input: in, items: items}, nil
	case *plan.Join:
		return buildJoin(t, rt, stats, cc)
	case *plan.Aggregate:
		return buildAggregate(t, rt, stats, cc)
	case *plan.Union:
		l, err := buildWith(t.Left, rt, stats, cc)
		if err != nil {
			return nil, err
		}
		r, err := buildWith(t.Right, rt, stats, cc)
		if err != nil {
			return nil, err
		}
		return &unionOp{left: l, right: r}, nil
	case *plan.Distinct:
		in, err := buildWith(t.Input, rt, stats, cc)
		if err != nil {
			return nil, err
		}
		return &distinctOp{input: in}, nil
	case *plan.Sort:
		in, err := buildWith(t.Input, rt, stats, cc)
		if err != nil {
			return nil, err
		}
		return &sortOp{input: in, keys: t.Keys}, nil
	case *plan.Limit:
		in, err := buildWith(t.Input, rt, stats, cc)
		if err != nil {
			return nil, err
		}
		return &limitOp{input: in, n: t.N, offset: t.Offset}, nil
	case *plan.TopN:
		in, err := buildWith(t.Input, rt, stats, cc)
		if err != nil {
			return nil, err
		}
		return &topNOp{input: in, keys: t.Keys, n: t.N, offset: t.Offset}, nil
	case *plan.EmptyNode:
		return emptyOp{}, nil
	case *plan.Trim:
		in, err := buildWith(t.Input, rt, stats, cc)
		if err != nil {
			return nil, err
		}
		return &trimOp{input: in, keep: t.Keep}, nil
	case *plan.ValuesNode:
		rows := make([]sqltypes.Row, len(t.Rows))
		emptyEnv := &expr.Env{}
		for i, exprs := range t.Rows {
			row := make(sqltypes.Row, len(exprs))
			for j, e := range exprs {
				c, err := expr.Compile(e, emptyEnv)
				if err != nil {
					return nil, err
				}
				v, err := c.Eval(nil)
				if err != nil {
					return nil, err
				}
				row[j] = v
			}
			rows[i] = row
		}
		return &rowsOp{rows: rows}, nil
	}
	return nil, fmt.Errorf("unsupported plan node %T", n)
}

// Run builds and drains a plan in one call.
func Run(n plan.Node, rt Runtime, stats *Stats) ([]sqltypes.Row, error) {
	return RunContext(nil, n, rt, stats)
}

// RunContext builds and drains a plan whose hot loops poll ctx at a
// coarse row stride; a fired context surfaces as ctx.Err(). A nil ctx
// keeps the zero-cost uncancellable path.
func RunContext(ctx context.Context, n plan.Node, rt Runtime, stats *Stats) ([]sqltypes.Row, error) {
	op, err := buildWith(n, rt, stats, NewCancelChecker(ctx))
	if err != nil {
		return nil, err
	}
	return Drain(op)
}

// Materialize executes a plan into a fresh storage table with the
// given name and partition count. Like base tables, intermediate
// results are hash-distributed on their first column: the physical
// layout is then a function of row content alone, so a plan rewrite
// that adds or removes rows cannot permute the scan-back order of the
// rows both plans produce (order-sensitive float aggregation stays
// bit-identical across optimizer variants).
func Materialize(n plan.Node, rt Runtime, stats *Stats, name string, parts int) (*storage.Table, error) {
	return MaterializeContext(nil, n, rt, stats, name, parts)
}

// MaterializeContext is Materialize over a cancelable context: the
// plan's hot loops poll ctx at a coarse row stride. A nil ctx keeps
// the zero-cost uncancellable path.
func MaterializeContext(ctx context.Context, n plan.Node, rt Runtime, stats *Stats, name string, parts int) (*storage.Table, error) {
	rows, err := RunContext(ctx, n, rt, stats)
	if err != nil {
		return nil, err
	}
	t := storage.NewTable(name, plan.Schema(n), parts)
	if len(t.Schema) > 0 {
		t.DistCol = 0
	}
	t.InsertBatch(rows)
	return t, nil
}

// planEnv builds the expression environment for a node's output.
func planEnv(n plan.Node) *expr.Env {
	e := &expr.Env{}
	for i, c := range n.Columns() {
		e.Cols = append(e.Cols, expr.Binding{
			Table: strings.ToLower(c.Table),
			Name:  strings.ToLower(c.Name),
			Index: i,
			Type:  c.Type,
		})
	}
	return e
}

// --- scan --------------------------------------------------------------

type scanOp struct {
	name   string
	base   bool
	rt     Runtime
	stats  *Stats
	cancel *CancelChecker

	// parts snapshots the table's partition slices at Open; the slices
	// themselves are stable (steps always materialize into fresh
	// tables, and DML drains its scans before mutating), so no row
	// copying is needed.
	parts [][]sqltypes.Row
	pi    int
	pos   int
}

func (s *scanOp) Open() error {
	var t *storage.Table
	var err error
	if s.base {
		t, err = s.rt.BaseTable(s.name)
	} else {
		t, err = s.rt.Result(s.name)
	}
	if err != nil {
		return err
	}
	s.parts = append(s.parts[:0], t.Parts...)
	s.pi, s.pos = 0, 0
	return nil
}

func (s *scanOp) Next() (sqltypes.Row, error) {
	if err := s.cancel.Tick(); err != nil {
		return nil, err
	}
	for s.pi < len(s.parts) {
		part := s.parts[s.pi]
		if s.pos < len(part) {
			r := part[s.pos]
			s.pos++
			s.stats.RowsScanned++
			if !s.base {
				s.stats.ResultCellsRead += int64(len(r))
			}
			return r, nil
		}
		s.pi++
		s.pos = 0
	}
	return nil, nil
}

func (s *scanOp) Close() error {
	s.parts = nil
	return nil
}

// --- trivial operators --------------------------------------------------

type oneRowOp struct{ done bool }

func (o *oneRowOp) Open() error { o.done = false; return nil }
func (o *oneRowOp) Next() (sqltypes.Row, error) {
	if o.done {
		return nil, nil
	}
	o.done = true
	return sqltypes.Row{}, nil
}
func (o *oneRowOp) Close() error { return nil }

type rowsOp struct {
	rows []sqltypes.Row
	pos  int
}

func (r *rowsOp) Open() error { r.pos = 0; return nil }
func (r *rowsOp) Next() (sqltypes.Row, error) {
	if r.pos >= len(r.rows) {
		return nil, nil
	}
	row := r.rows[r.pos]
	r.pos++
	return row, nil
}
func (r *rowsOp) Close() error { return nil }

type filterOp struct {
	input Operator
	cond  *expr.Compiled
}

func (f *filterOp) Open() error { return f.input.Open() }
func (f *filterOp) Next() (sqltypes.Row, error) {
	for {
		r, err := f.input.Next()
		if err != nil || r == nil {
			return nil, err
		}
		v, err := f.cond.Eval(r)
		if err != nil {
			return nil, err
		}
		if sqltypes.TriOf(v) == sqltypes.TriTrue {
			return r, nil
		}
	}
}
func (f *filterOp) Close() error { return f.input.Close() }

type projectOp struct {
	input Operator
	items []*expr.Compiled
}

func (p *projectOp) Open() error { return p.input.Open() }
func (p *projectOp) Next() (sqltypes.Row, error) {
	r, err := p.input.Next()
	if err != nil || r == nil {
		return nil, err
	}
	out := make(sqltypes.Row, len(p.items))
	for i, it := range p.items {
		v, err := it.Eval(r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
func (p *projectOp) Close() error { return p.input.Close() }

type trimOp struct {
	input Operator
	keep  int
}

func (t *trimOp) Open() error { return t.input.Open() }
func (t *trimOp) Next() (sqltypes.Row, error) {
	r, err := t.input.Next()
	if err != nil || r == nil {
		return nil, err
	}
	return r[:t.keep], nil
}
func (t *trimOp) Close() error { return t.input.Close() }

type unionOp struct {
	left, right Operator
	onRight     bool
}

func (u *unionOp) Open() error {
	u.onRight = false
	if err := u.left.Open(); err != nil {
		return err
	}
	return u.right.Open()
}

func (u *unionOp) Next() (sqltypes.Row, error) {
	if !u.onRight {
		r, err := u.left.Next()
		if err != nil {
			return nil, err
		}
		if r != nil {
			return r, nil
		}
		u.onRight = true
	}
	return u.right.Next()
}

func (u *unionOp) Close() error {
	err1 := u.left.Close()
	err2 := u.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

type distinctOp struct {
	input Operator
	seen  map[sqltypes.CompositeKey]bool
}

func (d *distinctOp) Open() error {
	d.seen = make(map[sqltypes.CompositeKey]bool)
	return d.input.Open()
}

func (d *distinctOp) Next() (sqltypes.Row, error) {
	for {
		r, err := d.input.Next()
		if err != nil || r == nil {
			return nil, err
		}
		k := sqltypes.ValuesKey(r)
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		return r, nil
	}
}

func (d *distinctOp) Close() error {
	d.seen = nil
	return d.input.Close()
}

type sortOp struct {
	input Operator
	keys  []plan.SortKey

	rows []sqltypes.Row
	pos  int
}

func (s *sortOp) Open() error {
	rows, err := Drain(s.input)
	if err != nil {
		return err
	}
	keys := s.keys
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			c := sqltypes.Compare(rows[i][k.Col], rows[j][k.Col])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	s.rows = rows
	s.pos = 0
	return nil
}

func (s *sortOp) Next() (sqltypes.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

func (s *sortOp) Close() error {
	s.rows = nil
	return nil
}

type limitOp struct {
	input   Operator
	n       int64
	offset  int64
	skipped int64
	emitted int64
}

func (l *limitOp) Open() error {
	l.skipped, l.emitted = 0, 0
	return l.input.Open()
}

func (l *limitOp) Next() (sqltypes.Row, error) {
	for l.skipped < l.offset {
		r, err := l.input.Next()
		if err != nil || r == nil {
			return nil, err
		}
		l.skipped++
	}
	if l.n >= 0 && l.emitted >= l.n {
		return nil, nil
	}
	r, err := l.input.Next()
	if err != nil || r == nil {
		return nil, err
	}
	l.emitted++
	return r, nil
}

func (l *limitOp) Close() error { return l.input.Close() }

// --- aggregation --------------------------------------------------------

type aggState struct {
	groupVals sqltypes.Row
	aggs      []expr.Aggregator
}

type aggOp struct {
	node  *plan.Aggregate
	rt    Runtime
	stats *Stats

	input   Operator
	groupEx []*expr.Compiled
	argEx   []*expr.Compiled // nil entries for COUNT(*)
	out     []sqltypes.Row
	pos     int
}

func buildAggregate(t *plan.Aggregate, rt Runtime, stats *Stats, cc *CancelChecker) (Operator, error) {
	in, err := buildWith(t.Input, rt, stats, cc)
	if err != nil {
		return nil, err
	}
	e := planEnv(t.Input)
	op := &aggOp{node: t, rt: rt, stats: stats, input: in}
	for _, g := range t.GroupBy {
		c, err := expr.Compile(g, e)
		if err != nil {
			return nil, err
		}
		op.groupEx = append(op.groupEx, c)
	}
	for _, a := range t.Aggs {
		if a.Star {
			op.argEx = append(op.argEx, nil)
			continue
		}
		c, err := expr.Compile(a.Arg, e)
		if err != nil {
			return nil, err
		}
		op.argEx = append(op.argEx, c)
	}
	return op, nil
}

func (a *aggOp) Open() error {
	if err := a.input.Open(); err != nil {
		return err
	}
	defer a.input.Close()

	groups := make(map[sqltypes.CompositeKey]*aggState)
	var order []sqltypes.CompositeKey

	newState := func(groupVals sqltypes.Row) (*aggState, error) {
		st := &aggState{groupVals: groupVals}
		for _, spec := range a.node.Aggs {
			ag, err := expr.NewAggregator(spec.Name, spec.Star, spec.Distinct)
			if err != nil {
				return nil, err
			}
			st.aggs = append(st.aggs, ag)
		}
		return st, nil
	}

	allCols := make([]int, len(a.groupEx))
	for i := range allCols {
		allCols[i] = i
	}

	for {
		r, err := a.input.Next()
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		a.stats.RowsAggInput++
		groupVals := make(sqltypes.Row, len(a.groupEx))
		for i, g := range a.groupEx {
			v, err := g.Eval(r)
			if err != nil {
				return err
			}
			groupVals[i] = v
		}
		key := sqltypes.RowKey(groupVals, allCols)
		st, ok := groups[key]
		if !ok {
			st, err = newState(groupVals)
			if err != nil {
				return err
			}
			groups[key] = st
			order = append(order, key)
		}
		for i, spec := range a.node.Aggs {
			var v sqltypes.Value
			if spec.Star {
				v = sqltypes.NewBool(true) // any non-null marker
			} else {
				v, err = a.argEx[i].Eval(r)
				if err != nil {
					return err
				}
			}
			if err := st.aggs[i].Add(v); err != nil {
				return err
			}
		}
	}

	// Scalar aggregate over an empty input still yields one row.
	if len(a.groupEx) == 0 && len(order) == 0 {
		st, err := newState(nil)
		if err != nil {
			return err
		}
		groups[sqltypes.CompositeKey{}] = st
		order = append(order, sqltypes.CompositeKey{})
	}

	a.out = make([]sqltypes.Row, 0, len(order))
	for _, k := range order {
		st := groups[k]
		row := make(sqltypes.Row, 0, len(a.groupEx)+len(st.aggs))
		row = append(row, st.groupVals...)
		for _, ag := range st.aggs {
			row = append(row, ag.Result())
		}
		a.out = append(a.out, row)
	}
	a.stats.RowsGrouped += int64(len(a.out))
	a.pos = 0
	return nil
}

func (a *aggOp) Next() (sqltypes.Row, error) {
	if a.pos >= len(a.out) {
		return nil, nil
	}
	r := a.out[a.pos]
	a.pos++
	return r, nil
}

func (a *aggOp) Close() error {
	a.out = nil
	return nil
}
