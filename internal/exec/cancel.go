package exec

import "context"

// cancelStride is the row interval between context polls. Polling a
// context costs an atomic load plus a channel select; amortized over
// a power-of-two stride the per-row cost is one increment and one
// mask, which disappears against expression evaluation.
const cancelStride = 1024

// CancelChecker polls a context at a coarse row stride inside the
// executor's tightest loops (scans, hash-join probes, nested-loop
// pairs). A nil *CancelChecker is the no-op used when execution runs
// without a cancelable context: Tick on a nil receiver is one branch
// and no allocation, keeping the tracing/cancellation-off path free.
type CancelChecker struct {
	ctx context.Context
	n   uint64
}

// NewCancelChecker returns a checker for ctx, or nil when ctx is nil
// or can never be canceled (Done() == nil, e.g. context.Background()),
// so uncancellable executions keep the zero-cost nil path.
func NewCancelChecker(ctx context.Context) *CancelChecker {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return &CancelChecker{ctx: ctx}
}

// Tick reports the context error on every cancelStride-th call, nil
// otherwise. Call it once per row in a hot loop.
func (c *CancelChecker) Tick() error {
	if c == nil {
		return nil
	}
	c.n++
	if c.n&(cancelStride-1) != 0 {
		return nil
	}
	return c.ctx.Err()
}

// Check polls the context unconditionally (no stride). Call it at
// batch boundaries, where the poll cost is already amortized.
func (c *CancelChecker) Check() error {
	if c == nil {
		return nil
	}
	return c.ctx.Err()
}
