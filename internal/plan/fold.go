package plan

import (
	"dbspinner/internal/ast"
	"dbspinner/internal/expr"
	"dbspinner/internal/sqltypes"
)

// FoldConstants evaluates constant sub-expressions at plan time:
// any subtree without column references that evaluates cleanly is
// replaced by its literal value. Expressions that would error at
// runtime (1/0) are left untouched so the error surfaces with the
// usual semantics — a filter that is never evaluated must not fail the
// query.
func FoldConstants(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	emptyEnv := &expr.Env{}
	return ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
		switch x.(type) {
		case *ast.Literal, *ast.ColumnRef, *ast.Star:
			return x
		}
		if len(ast.ColumnRefs(x)) > 0 || ast.HasAggregate(x) {
			return x
		}
		c, err := expr.Compile(x, emptyEnv)
		if err != nil {
			return x
		}
		v, err := c.Eval(nil)
		if err != nil {
			return x
		}
		return &ast.Literal{Value: v}
	})
}

// foldItems folds the expressions of a select-item list in place.
func foldItems(items []ast.SelectItem) []ast.SelectItem {
	out := make([]ast.SelectItem, len(items))
	for i, it := range items {
		out[i] = ast.SelectItem{Expr: FoldConstants(it.Expr), Alias: it.Alias}
	}
	return out
}

// simplifyFilter drops filters whose condition folded to a constant:
// TRUE removes the filter, FALSE (or NULL) replaces the input with an
// empty result of the same shape.
func simplifyFilter(input Node, cond ast.Expr) Node {
	if lit, ok := cond.(*ast.Literal); ok {
		switch sqltypes.TriOf(lit.Value) {
		case sqltypes.TriTrue:
			return input
		default:
			return &EmptyNode{Cols: input.Columns()}
		}
	}
	return &Filter{Input: input, Cond: cond}
}

// EmptyNode produces no rows with a fixed schema (the result of a
// provably-false filter).
type EmptyNode struct {
	Cols []ColInfo
}

func (e *EmptyNode) Columns() []ColInfo { return e.Cols }
func (e *EmptyNode) Children() []Node   { return nil }
func (e *EmptyNode) Explain() string    { return "Empty" }
