package plan

import (
	"strings"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/parser"
	"dbspinner/internal/sqltypes"
)

// fakeLookup is a TableLookup with fixed schemas.
type fakeLookup struct {
	tables  map[string]sqltypes.Schema
	results map[string]sqltypes.Schema
}

func (f *fakeLookup) TableSchema(name string) (sqltypes.Schema, bool) {
	s, ok := f.tables[strings.ToLower(name)]
	return s, ok
}

func (f *fakeLookup) ResultSchema(name string) (sqltypes.Schema, bool) {
	s, ok := f.results[strings.ToLower(name)]
	return s, ok
}

func testLookup() *fakeLookup {
	return &fakeLookup{
		tables: map[string]sqltypes.Schema{
			"edges": {
				{Name: "src", Type: sqltypes.Int},
				{Name: "dst", Type: sqltypes.Int},
				{Name: "weight", Type: sqltypes.Float},
			},
			"vertexstatus": {
				{Name: "node", Type: sqltypes.Int},
				{Name: "status", Type: sqltypes.Int},
			},
		},
		results: map[string]sqltypes.Schema{
			"pagerank": {
				{Name: "node", Type: sqltypes.Int},
				{Name: "rank", Type: sqltypes.Float},
				{Name: "delta", Type: sqltypes.Float},
			},
		},
	}
}

func buildSQL(t *testing.T, sql string) Node {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	n, err := NewBuilder(testLookup()).Build(stmt.(*ast.SelectStmt))
	if err != nil {
		t.Fatalf("build %q: %v", sql, err)
	}
	return n
}

func buildErr(t *testing.T, sql string) error {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = NewBuilder(testLookup()).Build(stmt.(*ast.SelectStmt))
	if err == nil {
		t.Fatalf("build %q should fail", sql)
	}
	return err
}

func TestBuildScanProject(t *testing.T) {
	n := buildSQL(t, "SELECT src, weight * 2 AS w2 FROM edges")
	p, ok := n.(*Project)
	if !ok {
		t.Fatalf("top node %T", n)
	}
	cols := p.Columns()
	if cols[0].Name != "src" || cols[0].Type != sqltypes.Int {
		t.Errorf("col0 = %+v", cols[0])
	}
	if cols[1].Name != "w2" || cols[1].Type != sqltypes.Float {
		t.Errorf("col1 = %+v", cols[1])
	}
	if _, ok := p.Input.(*Scan); !ok {
		t.Errorf("input %T", p.Input)
	}
}

func TestBuildFilter(t *testing.T) {
	n := buildSQL(t, "SELECT src FROM edges WHERE weight > 0.5")
	f, ok := n.(*Project).Input.(*Filter)
	if !ok {
		t.Fatalf("expected filter below project, got %T", n.(*Project).Input)
	}
	if !strings.Contains(f.Explain(), "weight") {
		t.Error("filter explain")
	}
}

func TestBuildStar(t *testing.T) {
	n := buildSQL(t, "SELECT * FROM edges")
	cols := n.Columns()
	if len(cols) != 3 || cols[0].Name != "src" || cols[2].Name != "weight" {
		t.Errorf("star cols = %+v", cols)
	}
	n = buildSQL(t, "SELECT e.* FROM edges AS e JOIN vertexStatus v ON e.src = v.node")
	cols = n.Columns()
	if len(cols) != 3 {
		t.Errorf("qualified star cols = %+v", cols)
	}
}

func TestBuildJoin(t *testing.T) {
	n := buildSQL(t, `SELECT e.src, v.status FROM edges e LEFT JOIN vertexStatus v ON e.src = v.node`)
	j, ok := n.(*Project).Input.(*Join)
	if !ok {
		t.Fatalf("expected join, got %T", n.(*Project).Input)
	}
	if j.Type != ast.LeftJoin {
		t.Error("join type")
	}
	if len(j.Columns()) != 5 {
		t.Errorf("join columns = %d", len(j.Columns()))
	}
}

func TestBuildAggregate(t *testing.T) {
	n := buildSQL(t, "SELECT src, COUNT(dst) AS c, SUM(weight) FROM edges GROUP BY src")
	p := n.(*Project)
	agg, ok := p.Input.(*Aggregate)
	if !ok {
		t.Fatalf("expected aggregate, got %T", p.Input)
	}
	if len(agg.GroupBy) != 1 || len(agg.Aggs) != 2 {
		t.Errorf("agg shape: %d group, %d aggs", len(agg.GroupBy), len(agg.Aggs))
	}
	if agg.Aggs[0].Name != "COUNT" || agg.Aggs[1].Name != "SUM" {
		t.Errorf("agg names: %+v", agg.Aggs)
	}
	cols := p.Columns()
	if cols[1].Name != "c" || cols[1].Type != sqltypes.Int {
		t.Errorf("count col: %+v", cols[1])
	}
	if cols[2].Name != "sum" || cols[2].Type != sqltypes.Float {
		t.Errorf("sum col: %+v", cols[2])
	}
}

func TestAggregateGroupExprMatch(t *testing.T) {
	// The PR pattern: a computed group expression reused in the select
	// list, case-insensitively.
	n := buildSQL(t, `SELECT PageRank.node, PageRank.rank + PageRank.delta,
		0.85 * SUM(pagerank.delta)
		FROM pagerank GROUP BY pagerank.NODE, pagerank.rank + PAGERANK.delta`)
	p := n.(*Project)
	agg := p.Input.(*Aggregate)
	if len(agg.GroupBy) != 2 || len(agg.Aggs) != 1 {
		t.Fatalf("agg shape: %d group, %d aggs", len(agg.GroupBy), len(agg.Aggs))
	}
	// Items must reference #agg columns only.
	for _, it := range p.Items {
		for _, ref := range ast.ColumnRefs(it.Expr) {
			if ref.Table != AggTable {
				t.Errorf("unrewritten column ref %s in %s", ref, it.Expr)
			}
		}
	}
}

func TestAggregateDedup(t *testing.T) {
	n := buildSQL(t, "SELECT SUM(weight), SUM(weight) + 1 FROM edges")
	agg := n.(*Project).Input.(*Aggregate)
	if len(agg.Aggs) != 1 {
		t.Errorf("identical aggregates should be computed once, got %d", len(agg.Aggs))
	}
	if len(agg.GroupBy) != 0 {
		t.Error("scalar aggregate should have no group keys")
	}
}

func TestHavingRewrite(t *testing.T) {
	n := buildSQL(t, "SELECT src FROM edges GROUP BY src HAVING COUNT(*) > 2")
	p := n.(*Project)
	f, ok := p.Input.(*Filter)
	if !ok {
		t.Fatalf("expected having filter, got %T", p.Input)
	}
	if _, ok := f.Input.(*Aggregate); !ok {
		t.Fatalf("expected aggregate below having, got %T", f.Input)
	}
	refs := ast.ColumnRefs(f.Cond)
	if len(refs) != 1 || refs[0].Table != AggTable {
		t.Errorf("having cond not rewritten: %s", f.Cond)
	}
}

func TestAggregateErrors(t *testing.T) {
	if err := buildErr(t, "SELECT dst FROM edges GROUP BY src"); !strings.Contains(err.Error(), "GROUP BY") {
		t.Errorf("naked column error: %v", err)
	}
	buildErr(t, "SELECT SUM(COUNT(src)) FROM edges")           // nested aggs
	buildErr(t, "SELECT src FROM edges WHERE SUM(weight) > 1") // agg in where
	buildErr(t, "SELECT src FROM edges GROUP BY SUM(src)")     // agg in group by
	buildErr(t, "SELECT src FROM edges HAVING src > 1 AND COUNT(*) > 0 AND dst > 1")
	buildErr(t, "SELECT SUM(src, dst) FROM edges") // arity
}

func TestBuildUnion(t *testing.T) {
	n := buildSQL(t, "SELECT src FROM edges UNION SELECT dst FROM edges")
	d, ok := n.(*Distinct)
	if !ok {
		t.Fatalf("UNION should dedup, got %T", n)
	}
	if _, ok := d.Input.(*Union); !ok {
		t.Fatalf("expected union, got %T", d.Input)
	}
	n = buildSQL(t, "SELECT src FROM edges UNION ALL SELECT dst FROM edges")
	if _, ok := n.(*Union); !ok {
		t.Fatalf("UNION ALL should not dedup, got %T", n)
	}
	buildErr(t, "SELECT src, dst FROM edges UNION SELECT src FROM edges")
}

func TestBuildSortLimit(t *testing.T) {
	// ORDER BY + LIMIT fuses into TopN.
	n := buildSQL(t, "SELECT src, dst FROM edges ORDER BY dst DESC, 1 LIMIT 5 OFFSET 2")
	top := n.(*TopN)
	if top.N != 5 || top.Offset != 2 {
		t.Errorf("topn = %+v", top)
	}
	if len(top.Keys) != 2 || top.Keys[0].Col != 1 || !top.Keys[0].Desc || top.Keys[1].Col != 0 {
		t.Errorf("sort keys = %+v", top.Keys)
	}
	// LIMIT without ORDER BY stays a plain Limit.
	n = buildSQL(t, "SELECT src FROM edges LIMIT 3")
	if l := n.(*Limit); l.N != 3 {
		t.Errorf("limit = %+v", l)
	}
	// ORDER BY without LIMIT stays a Sort.
	n = buildSQL(t, "SELECT src FROM edges ORDER BY src")
	if _, ok := n.(*Sort); !ok {
		t.Errorf("expected sort, got %T", n)
	}
	buildErr(t, "SELECT src FROM edges ORDER BY 5")
	buildErr(t, "SELECT src FROM edges ORDER BY nonexistent")
	buildErr(t, "SELECT src FROM edges LIMIT src")
}

func TestOrderByAlias(t *testing.T) {
	n := buildSQL(t, "SELECT src AS s, COUNT(*) AS c FROM edges GROUP BY src ORDER BY c DESC")
	s := n.(*Sort)
	if s.Keys[0].Col != 1 || !s.Keys[0].Desc {
		t.Errorf("order by alias: %+v", s.Keys)
	}
}

func TestBuildSubquery(t *testing.T) {
	n := buildSQL(t, "SELECT t.s FROM (SELECT src AS s FROM edges) AS t WHERE t.s > 1")
	if _, ok := n.(*Project); !ok {
		t.Fatalf("top %T", n)
	}
	// The PR R0 shape: union inside a derived table.
	n = buildSQL(t, "SELECT src, 0, 0.15 FROM (SELECT src FROM edges UNION SELECT dst FROM edges)")
	cols := n.Columns()
	if len(cols) != 3 {
		t.Errorf("R0 columns = %+v", cols)
	}
}

func TestBuildNamedResult(t *testing.T) {
	n := buildSQL(t, "SELECT Node, Rank FROM PageRank")
	p := n.(*Project)
	nr, ok := p.Input.(*NamedResult)
	if !ok {
		t.Fatalf("expected NamedResult, got %T", p.Input)
	}
	if nr.Name != "PageRank" {
		t.Errorf("name = %q", nr.Name)
	}
	// Self-join of a result with aliases, as in the PR iterative part.
	n = buildSQL(t, `SELECT a.node FROM pagerank a LEFT JOIN pagerank b ON a.node = b.node`)
	if len(n.Columns()) != 1 {
		t.Error("self-join project")
	}
}

func TestBuildRegularCTE(t *testing.T) {
	n := buildSQL(t, "WITH nodes (id) AS (SELECT src FROM edges UNION SELECT dst FROM edges) SELECT id FROM nodes WHERE id > 1")
	if _, ok := n.(*Project); !ok {
		t.Fatalf("top %T", n)
	}
	// CTE visible to a later CTE.
	buildSQL(t, "WITH a AS (SELECT src FROM edges), b AS (SELECT * FROM a) SELECT * FROM b")
	// Column-count mismatch in the CTE column list.
	buildErr(t, "WITH x (a, b) AS (SELECT src FROM edges) SELECT * FROM x")
}

func TestBuildErrors(t *testing.T) {
	buildErr(t, "SELECT * FROM nonexistent")
	buildErr(t, "SELECT zzz FROM edges")
	buildErr(t, "SELECT e.src FROM edges a JOIN edges b ON a.src = b.zzz")
	buildErr(t, "SELECT src FROM edges WHERE zzz > 1")
	buildErr(t, "SELECT *") // star without FROM
	buildErr(t, "SELECT z.* FROM edges")
}

func TestIterativeCTEReachesBuilderError(t *testing.T) {
	err := buildErr(t, "WITH ITERATIVE r (a) AS (SELECT 1 ITERATE SELECT a FROM r UNTIL 2 ITERATIONS) SELECT * FROM r")
	if !strings.Contains(err.Error(), "functional rewrite") {
		t.Errorf("error should mention the rewrite: %v", err)
	}
}

func TestExprKeyNormalization(t *testing.T) {
	a, _ := parser.ParseExpr("PageRank.Node + 1")
	b, _ := parser.ParseExpr("pagerank.node + 1")
	if ExprKey(a) != ExprKey(b) {
		t.Error("ExprKey should be case-insensitive on column refs")
	}
	c, _ := parser.ParseExpr("pagerank.node + 2")
	if ExprKey(a) == ExprKey(c) {
		t.Error("different expressions should differ")
	}
}

func TestExplainTree(t *testing.T) {
	n := buildSQL(t, "SELECT src, COUNT(*) FROM edges WHERE weight > 0 GROUP BY src ORDER BY src LIMIT 3")
	out := ExplainTree(n)
	for _, frag := range []string{"TopN 3 by src", "Project", "HashAggregate", "Filter", "Scan edges"} {
		if !strings.Contains(out, frag) {
			t.Errorf("ExplainTree missing %q:\n%s", frag, out)
		}
	}
	// Deeper nodes are indented further than shallower ones.
	if strings.Index(out, "Scan") < strings.Index(out, "TopN") {
		t.Error("scan should print after the top-level operator")
	}
}

func TestSchemaHelper(t *testing.T) {
	n := buildSQL(t, "SELECT src AS a, weight FROM edges")
	s := Schema(n)
	if len(s) != 2 || s[0].Name != "a" || s[1].Type != sqltypes.Float {
		t.Errorf("Schema = %v", s)
	}
}
