// Package plan defines the logical query plan and the builder that
// turns parsed SELECT statements into plans. Expressions remain ASTs
// inside the plan; the executor compiles them against each node's input
// environment.
//
// Iterative CTEs are NOT handled here: the functional rewrite in
// internal/core expands them into a step program whose individual steps
// are plain SELECT plans built by this package. The plan builder only
// needs to resolve references to named intermediate results (the CTE
// working tables) via the Results map.
package plan

import (
	"fmt"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/sqltypes"
)

// ColInfo describes one output column of a plan node: the table alias
// it is visible under (empty for derived expressions), its name and
// type.
type ColInfo struct {
	Table string
	Name  string
	Type  sqltypes.Type
}

// Node is a logical plan operator. Columns() describes the output row
// layout.
type Node interface {
	Columns() []ColInfo
	// Explain renders the node (without children) for plan display.
	Explain() string
	// Children returns input nodes (for traversal/printing).
	Children() []Node
}

// Schema converts a node's columns into a storage schema.
func Schema(n Node) sqltypes.Schema {
	cols := n.Columns()
	s := make(sqltypes.Schema, len(cols))
	for i, c := range cols {
		s[i] = sqltypes.Column{Name: c.Name, Type: c.Type}
	}
	return s
}

// ---------------------------------------------------------------------
// Node types
// ---------------------------------------------------------------------

// Scan reads a base table from the catalog.
type Scan struct {
	Table string // catalog name
	Alias string // visible alias (defaults to table name)
	Cols  []ColInfo
}

func (s *Scan) Columns() []ColInfo { return s.Cols }
func (s *Scan) Children() []Node   { return nil }
func (s *Scan) Explain() string {
	if s.Alias != "" && !strings.EqualFold(s.Alias, s.Table) {
		return fmt.Sprintf("Scan %s AS %s", s.Table, s.Alias)
	}
	return "Scan " + s.Table
}

// NamedResult reads a named intermediate result from the result store
// (a CTE main/working table).
type NamedResult struct {
	Name  string
	Alias string
	Cols  []ColInfo
}

func (s *NamedResult) Columns() []ColInfo { return s.Cols }
func (s *NamedResult) Children() []Node   { return nil }
func (s *NamedResult) Explain() string {
	if s.Alias != "" && !strings.EqualFold(s.Alias, s.Name) {
		return fmt.Sprintf("Result %s AS %s", s.Name, s.Alias)
	}
	return "Result " + s.Name
}

// OneRow produces a single empty row; FROM-less selects project over
// it.
type OneRow struct{}

func (*OneRow) Columns() []ColInfo { return nil }
func (*OneRow) Children() []Node   { return nil }
func (*OneRow) Explain() string    { return "OneRow" }

// Filter keeps rows satisfying Cond.
type Filter struct {
	Input Node
	Cond  ast.Expr
}

func (f *Filter) Columns() []ColInfo { return f.Input.Columns() }
func (f *Filter) Children() []Node   { return []Node{f.Input} }
func (f *Filter) Explain() string    { return "Filter " + f.Cond.String() }

// ProjItem is one projected output expression.
type ProjItem struct {
	Expr ast.Expr
	Name string
	Type sqltypes.Type
}

// Project computes output expressions.
type Project struct {
	Input Node
	Items []ProjItem
}

func (p *Project) Columns() []ColInfo {
	out := make([]ColInfo, len(p.Items))
	for i, it := range p.Items {
		out[i] = ColInfo{Name: it.Name, Type: it.Type}
	}
	return out
}
func (p *Project) Children() []Node { return []Node{p.Input} }
func (p *Project) Explain() string {
	parts := make([]string, len(p.Items))
	for i, it := range p.Items {
		parts[i] = it.Expr.String()
		if it.Name != "" && it.Name != it.Expr.String() {
			parts[i] += " AS " + it.Name
		}
	}
	return "Project " + strings.Join(parts, ", ")
}

// Rename exposes the input under a new table alias (used for derived
// tables and self-join aliases of CTE results). It does not move data;
// it only changes name resolution.
type Alias struct {
	Input Node
	Name  string
}

func (a *Alias) Columns() []ColInfo {
	in := a.Input.Columns()
	out := make([]ColInfo, len(in))
	for i, c := range in {
		out[i] = ColInfo{Table: strings.ToLower(a.Name), Name: c.Name, Type: c.Type}
	}
	return out
}
func (a *Alias) Children() []Node { return []Node{a.Input} }
func (a *Alias) Explain() string  { return "Alias " + a.Name }

// Join combines two inputs. Output columns are left's then right's.
type Join struct {
	Type  ast.JoinType // Inner, Left, Full or Cross (Right is rewritten)
	Left  Node
	Right Node
	On    ast.Expr // nil for cross joins
}

func (j *Join) Columns() []ColInfo {
	l := j.Left.Columns()
	r := j.Right.Columns()
	out := make([]ColInfo, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }
func (j *Join) Explain() string {
	var kind string
	switch j.Type {
	case ast.InnerJoin:
		kind = "HashJoin Inner"
	case ast.LeftJoin:
		kind = "HashJoin LeftOuter"
	case ast.RightJoin:
		kind = "HashJoin RightOuter"
	case ast.FullJoin:
		kind = "HashJoin FullOuter"
	case ast.CrossJoin:
		return "NestedLoop Cross"
	default:
		kind = "Join?"
	}
	if j.On != nil {
		return kind + " on " + j.On.String()
	}
	return kind
}

// AggSpec describes one aggregate computation.
type AggSpec struct {
	Name     string // SUM, COUNT, ...
	Arg      ast.Expr
	Star     bool
	Distinct bool
	// OutName is the synthetic column name the aggregate's result is
	// visible under (#agg.aN).
	OutName string
	Type    sqltypes.Type
}

// Aggregate groups the input by GroupBy expressions and computes Aggs.
// Output columns: one per group expression (named #agg.gN) followed by
// one per aggregate (named #agg.aN). A Project above maps them to the
// user-visible select items.
type Aggregate struct {
	Input   Node
	GroupBy []ast.Expr
	Types   []sqltypes.Type // group expr types, parallel to GroupBy
	Aggs    []AggSpec
}

// AggTable is the synthetic alias aggregate outputs are visible under.
const AggTable = "#agg"

func (a *Aggregate) Columns() []ColInfo {
	out := make([]ColInfo, 0, len(a.GroupBy)+len(a.Aggs))
	for i := range a.GroupBy {
		out = append(out, ColInfo{Table: AggTable, Name: fmt.Sprintf("g%d", i), Type: a.Types[i]})
	}
	for _, g := range a.Aggs {
		out = append(out, ColInfo{Table: AggTable, Name: g.OutName, Type: g.Type})
	}
	return out
}
func (a *Aggregate) Children() []Node { return []Node{a.Input} }
func (a *Aggregate) Explain() string {
	var parts []string
	for _, g := range a.GroupBy {
		parts = append(parts, g.String())
	}
	var aggs []string
	for _, g := range a.Aggs {
		s := g.Name + "("
		if g.Star {
			s += "*"
		} else {
			if g.Distinct {
				s += "DISTINCT "
			}
			s += g.Arg.String()
		}
		s += ")"
		aggs = append(aggs, s)
	}
	if len(parts) == 0 {
		return "Aggregate " + strings.Join(aggs, ", ")
	}
	return "HashAggregate by " + strings.Join(parts, ", ") + " computing " + strings.Join(aggs, ", ")
}

// Union concatenates two inputs (ALL) — dedup is a Distinct above.
type Union struct {
	Left, Right Node
}

func (u *Union) Columns() []ColInfo { return u.Left.Columns() }
func (u *Union) Children() []Node   { return []Node{u.Left, u.Right} }
func (u *Union) Explain() string    { return "UnionAll" }

// Distinct removes duplicate rows.
type Distinct struct {
	Input Node
}

func (d *Distinct) Columns() []ColInfo { return d.Input.Columns() }
func (d *Distinct) Children() []Node   { return []Node{d.Input} }
func (d *Distinct) Explain() string    { return "Distinct" }

// SortKey is one ORDER BY key over an output column index.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort orders the input.
type Sort struct {
	Input Node
	Keys  []SortKey
}

func (s *Sort) Columns() []ColInfo { return s.Input.Columns() }
func (s *Sort) Children() []Node   { return []Node{s.Input} }
func (s *Sort) Explain() string {
	parts := make([]string, len(s.Keys))
	cols := s.Input.Columns()
	for i, k := range s.Keys {
		parts[i] = cols[k.Col].Name
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort by " + strings.Join(parts, ", ")
}

// Limit keeps at most N rows after skipping Offset.
type Limit struct {
	Input  Node
	N      int64
	Offset int64
}

func (l *Limit) Columns() []ColInfo { return l.Input.Columns() }
func (l *Limit) Children() []Node   { return []Node{l.Input} }
func (l *Limit) Explain() string {
	if l.Offset > 0 {
		return fmt.Sprintf("Limit %d offset %d", l.N, l.Offset)
	}
	return fmt.Sprintf("Limit %d", l.N)
}

// TopN is the fusion of Sort and Limit: keep the first N rows (after
// Offset) of the sorted order without materializing and sorting the
// whole input. The builder creates it whenever ORDER BY and LIMIT
// appear together.
type TopN struct {
	Input  Node
	Keys   []SortKey
	N      int64
	Offset int64
}

func (t *TopN) Columns() []ColInfo { return t.Input.Columns() }
func (t *TopN) Children() []Node   { return []Node{t.Input} }
func (t *TopN) Explain() string {
	parts := make([]string, len(t.Keys))
	cols := t.Input.Columns()
	for i, k := range t.Keys {
		parts[i] = cols[k.Col].Name
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	s := fmt.Sprintf("TopN %d by %s", t.N, strings.Join(parts, ", "))
	if t.Offset > 0 {
		s += fmt.Sprintf(" offset %d", t.Offset)
	}
	return s
}

// Trim keeps only the first Keep output columns. It is used to drop
// hidden sort columns added for ORDER BY expressions that are not in
// the select list.
type Trim struct {
	Input Node
	Keep  int
}

func (t *Trim) Columns() []ColInfo { return t.Input.Columns()[:t.Keep] }
func (t *Trim) Children() []Node   { return []Node{t.Input} }
func (t *Trim) Explain() string    { return fmt.Sprintf("Trim to %d columns", t.Keep) }

// ValuesNode produces literal rows (INSERT ... VALUES and tests).
type ValuesNode struct {
	Rows [][]ast.Expr
	Cols []ColInfo
}

func (v *ValuesNode) Columns() []ColInfo { return v.Cols }
func (v *ValuesNode) Children() []Node   { return nil }
func (v *ValuesNode) Explain() string    { return fmt.Sprintf("Values (%d rows)", len(v.Rows)) }

// ExplainTree renders a plan tree with indentation.
func ExplainTree(n Node) string {
	var b strings.Builder
	var walk func(Node, int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Explain())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}
