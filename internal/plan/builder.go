package plan

import (
	"fmt"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/expr"
	"dbspinner/internal/sqltypes"
)

// TableLookup resolves table names during planning. Base tables come
// from the catalog; named results are the intermediate results of the
// iterative-CTE step program (and regular materialized CTEs).
type TableLookup interface {
	// TableSchema returns the schema of a base table, with ok=false if
	// the table does not exist.
	TableSchema(name string) (sqltypes.Schema, bool)
	// ResultSchema returns the schema of a named intermediate result.
	ResultSchema(name string) (sqltypes.Schema, bool)
}

// Builder constructs logical plans from SELECT statements.
type Builder struct {
	Lookup TableLookup
	// ctes holds regular CTE definitions visible to the current query,
	// expanded inline at reference sites (view expansion).
	ctes map[string]*ast.CTE
}

// NewBuilder returns a Builder over the given lookup.
func NewBuilder(lookup TableLookup) *Builder {
	return &Builder{Lookup: lookup, ctes: map[string]*ast.CTE{}}
}

// RegisterCTE makes a regular CTE definition visible to subsequent
// Build calls (used by the iterative-CTE rewrite, which strips the WITH
// clause apart and plans R0/Ri/Qf separately).
func (b *Builder) RegisterCTE(cte *ast.CTE) error {
	if cte.Iterative {
		return fmt.Errorf("iterative CTE %q cannot be registered for inline expansion", cte.Name)
	}
	b.ctes[strings.ToLower(cte.Name)] = cte
	return nil
}

// clone returns a builder with a copied CTE scope.
func (b *Builder) clone() *Builder {
	nb := &Builder{Lookup: b.Lookup, ctes: make(map[string]*ast.CTE, len(b.ctes))}
	for k, v := range b.ctes {
		nb.ctes[k] = v
	}
	return nb
}

// Build plans a full SELECT statement. Iterative CTEs must have been
// rewritten away before this point (internal/core does that); finding
// one here is an error.
func (b *Builder) Build(sel *ast.SelectStmt) (Node, error) {
	nb := b
	if sel.With != nil {
		nb = b.clone()
		for _, cte := range sel.With.CTEs {
			if cte.Iterative {
				return nil, fmt.Errorf("iterative CTE %q reached the plan builder; the functional rewrite must expand it first", cte.Name)
			}
			if sel.With.Recursive {
				return nil, fmt.Errorf("recursive CTEs are handled by the recursive-union rewrite, not the plan builder")
			}
			nb.ctes[strings.ToLower(cte.Name)] = cte
		}
	}
	node, err := nb.buildBody(sel.Body)
	if err != nil {
		return nil, err
	}
	if len(sel.OrderBy) > 0 {
		keys, err := resolveOrderBy(sel.OrderBy, node.Columns())
		if err != nil {
			// Standard SQL also allows ordering by input columns and
			// expressions that are not in the select list: rebuild the
			// core with hidden sort columns and trim them after the
			// sort.
			if core, ok := sel.Body.(*ast.SelectCore); ok && !core.Distinct {
				if n2, err2 := nb.buildHiddenSort(core, sel.OrderBy, len(node.Columns())); err2 == nil {
					node = n2
					goto sorted
				}
			}
			return nil, err
		}
		node = &Sort{Input: node, Keys: keys}
	}
sorted:
	if sel.Limit != nil || sel.Offset != nil {
		n := int64(-1)
		var off int64
		if sel.Limit != nil {
			v, err := constInt(sel.Limit)
			if err != nil {
				return nil, fmt.Errorf("LIMIT: %w", err)
			}
			n = v
		}
		if sel.Offset != nil {
			v, err := constInt(sel.Offset)
			if err != nil {
				return nil, fmt.Errorf("OFFSET: %w", err)
			}
			off = v
		}
		node = fuseTopN(node, n, off)
	}
	return node, nil
}

// fuseTopN turns Limit(Sort(x)) — also through a Trim added for hidden
// sort columns — into a TopN that keeps only the needed rows.
func fuseTopN(node Node, n, off int64) Node {
	if n >= 0 {
		switch t := node.(type) {
		case *Sort:
			return &TopN{Input: t.Input, Keys: t.Keys, N: n, Offset: off}
		case *Trim:
			if s, ok := t.Input.(*Sort); ok {
				return &Trim{
					Input: &TopN{Input: s.Input, Keys: s.Keys, N: n, Offset: off},
					Keep:  t.Keep,
				}
			}
		}
	}
	return &Limit{Input: node, N: n, Offset: off}
}

// buildHiddenSort re-plans a select core with the unresolvable ORDER
// BY expressions appended as hidden output columns, sorts, and trims
// them away.
func (b *Builder) buildHiddenSort(core *ast.SelectCore, orderBy []ast.OrderItem, visible int) (Node, error) {
	// With * in the select list the item index no longer equals the
	// output column index; keep the simple path only.
	for _, it := range core.Items {
		if _, isStar := it.Expr.(*ast.Star); isStar {
			return nil, fmt.Errorf("hidden sort columns are not supported with *")
		}
	}
	ext := *core
	ext.Items = append([]ast.SelectItem(nil), core.Items...)
	hidden := map[string]int{} // expr key -> output index
	for _, it := range orderBy {
		if _, isLit := it.Expr.(*ast.Literal); isLit {
			continue
		}
		key := exprKey(it.Expr)
		if _, ok := hidden[key]; ok {
			continue
		}
		// Try resolving against the visible items first (by alias).
		if ref, ok := it.Expr.(*ast.ColumnRef); ok {
			found := false
			for _, existing := range core.Items {
				if existing.Alias != "" && strings.EqualFold(existing.Alias, ref.Name) && ref.Table == "" {
					found = true
					break
				}
			}
			if found {
				continue
			}
		}
		hidden[key] = len(ext.Items)
		ext.Items = append(ext.Items, ast.SelectItem{
			Expr:  it.Expr,
			Alias: fmt.Sprintf("#sort%d", len(hidden)),
		})
	}
	node, err := b.buildCore(&ext)
	if err != nil {
		return nil, err
	}
	cols := node.Columns()
	keys := make([]SortKey, len(orderBy))
	for i, it := range orderBy {
		if idx, ok := hidden[exprKey(it.Expr)]; ok {
			keys[i] = SortKey{Col: idx, Desc: it.Desc}
			continue
		}
		resolved, err := resolveOrderBy([]ast.OrderItem{it}, cols[:visible])
		if err != nil {
			return nil, err
		}
		keys[i] = resolved[0]
	}
	return &Trim{Input: &Sort{Input: node, Keys: keys}, Keep: visible}, nil
}

func constInt(e ast.Expr) (int64, error) {
	l, ok := e.(*ast.Literal)
	if !ok || l.Value.T != sqltypes.Int {
		return 0, fmt.Errorf("expected an integer constant, got %s", e)
	}
	if l.Value.I < 0 {
		return 0, fmt.Errorf("must not be negative")
	}
	return l.Value.I, nil
}

func resolveOrderBy(items []ast.OrderItem, cols []ColInfo) ([]SortKey, error) {
	keys := make([]SortKey, len(items))
	for i, it := range items {
		idx := -1
		switch e := it.Expr.(type) {
		case *ast.Literal:
			if e.Value.T != sqltypes.Int {
				return nil, fmt.Errorf("ORDER BY position must be an integer")
			}
			p := int(e.Value.I)
			if p < 1 || p > len(cols) {
				return nil, fmt.Errorf("ORDER BY position %d is out of range", p)
			}
			idx = p - 1
		case *ast.ColumnRef:
			// Exact (qualifier-respecting) match first; if the output
			// columns are unqualified (the common case above a
			// projection), fall back to a name-only match.
			for pass := 0; pass < 2 && idx < 0; pass++ {
				for j, c := range cols {
					if !strings.EqualFold(c.Name, e.Name) {
						continue
					}
					if pass == 0 && e.Table != "" && !strings.EqualFold(c.Table, e.Table) {
						continue
					}
					if idx >= 0 {
						return nil, fmt.Errorf("ORDER BY reference %q is ambiguous", e.Name)
					}
					idx = j
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("ORDER BY column %q is not in the select list", e.Name)
			}
		default:
			return nil, fmt.Errorf("ORDER BY expression %s must be an output column or position", it.Expr)
		}
		keys[i] = SortKey{Col: idx, Desc: it.Desc}
	}
	return keys, nil
}

func (b *Builder) buildBody(body ast.SelectBody) (Node, error) {
	switch t := body.(type) {
	case *ast.SelectCore:
		return b.buildCore(t)
	case *ast.UnionExpr:
		left, err := b.buildBody(t.Left)
		if err != nil {
			return nil, err
		}
		right, err := b.buildBody(t.Right)
		if err != nil {
			return nil, err
		}
		lc, rc := left.Columns(), right.Columns()
		if len(lc) != len(rc) {
			return nil, fmt.Errorf("UNION arms have different column counts (%d vs %d)", len(lc), len(rc))
		}
		var node Node = &Union{Left: left, Right: right}
		if !t.All {
			node = &Distinct{Input: node}
		}
		return node, nil
	}
	return nil, fmt.Errorf("unsupported select body %T", body)
}

// env builds a name-resolution environment from plan columns.
func env(cols []ColInfo) *expr.Env {
	e := &expr.Env{}
	for i, c := range cols {
		e.Cols = append(e.Cols, expr.Binding{
			Table: strings.ToLower(c.Table),
			Name:  strings.ToLower(c.Name),
			Index: i,
			Type:  c.Type,
		})
	}
	return e
}

func (b *Builder) buildCore(core *ast.SelectCore) (Node, error) {
	var node Node
	if core.From != nil {
		n, err := b.buildFrom(core.From)
		if err != nil {
			return nil, err
		}
		node = n
	} else {
		node = &OneRow{}
	}

	if core.Where != nil {
		if ast.HasAggregate(core.Where) {
			return nil, fmt.Errorf("aggregates are not allowed in WHERE")
		}
		if _, err := expr.Compile(core.Where, env(node.Columns())); err != nil {
			return nil, fmt.Errorf("WHERE: %w", err)
		}
		node = simplifyFilter(node, FoldConstants(core.Where))
	}

	// Expand * select items against the pre-aggregation columns, then
	// fold constant sub-expressions.
	items, err := expandStars(core.Items, node.Columns())
	if err != nil {
		return nil, err
	}
	items = foldItems(items)

	// Detect grouping.
	grouped := len(core.GroupBy) > 0
	if !grouped {
		for _, it := range items {
			if ast.HasAggregate(it.Expr) {
				grouped = true
				break
			}
		}
		if core.Having != nil {
			grouped = true
		}
	}

	having := core.Having
	if grouped {
		node, items, having, err = b.buildAggregate(node, core.GroupBy, items, having)
		if err != nil {
			return nil, err
		}
		if having != nil {
			if _, err := expr.Compile(having, env(node.Columns())); err != nil {
				return nil, fmt.Errorf("HAVING: %w", err)
			}
			node = &Filter{Input: node, Cond: having}
		}
	} else if core.Having != nil {
		return nil, fmt.Errorf("HAVING requires GROUP BY or aggregates")
	}

	// Projection.
	inEnv := env(node.Columns())
	projItems := make([]ProjItem, len(items))
	for i, it := range items {
		c, err := expr.Compile(it.Expr, inEnv)
		if err != nil {
			if grouped && strings.Contains(err.Error(), "does not exist") {
				return nil, fmt.Errorf("select item %s: column must appear in GROUP BY or be used in an aggregate (%w)", it.Expr, err)
			}
			return nil, fmt.Errorf("select item %s: %w", it.Expr, err)
		}
		projItems[i] = ProjItem{Expr: it.Expr, Name: itemName(it, i), Type: c.Type}
	}
	node = &Project{Input: node, Items: projItems}

	if core.Distinct {
		node = &Distinct{Input: node}
	}
	return node, nil
}

// itemName picks the output column name of a select item.
func itemName(it ast.SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*ast.ColumnRef); ok {
		return c.Name
	}
	if f, ok := it.Expr.(*ast.FuncCall); ok {
		return strings.ToLower(f.Name)
	}
	return fmt.Sprintf("column%d", i+1)
}

func expandStars(items []ast.SelectItem, cols []ColInfo) ([]ast.SelectItem, error) {
	var out []ast.SelectItem
	for _, it := range items {
		star, ok := it.Expr.(*ast.Star)
		if !ok {
			out = append(out, it)
			continue
		}
		matched := false
		for _, c := range cols {
			if star.Table != "" && !strings.EqualFold(c.Table, star.Table) {
				continue
			}
			// Skip synthetic aggregate columns.
			if c.Table == AggTable {
				continue
			}
			ref := &ast.ColumnRef{Table: c.Table, Name: c.Name}
			out = append(out, ast.SelectItem{Expr: ref, Alias: c.Name})
			matched = true
		}
		if !matched {
			if star.Table != "" {
				return nil, fmt.Errorf("table %q in %s.* not found", star.Table, star.Table)
			}
			return nil, fmt.Errorf("SELECT * with no FROM clause")
		}
	}
	return out, nil
}

// buildAggregate constructs the Aggregate node and rewrites the select
// items and HAVING so they reference the aggregate's synthetic output
// columns (#agg.gN / #agg.aN).
func (b *Builder) buildAggregate(input Node, groupBy []ast.Expr, items []ast.SelectItem, having ast.Expr) (Node, []ast.SelectItem, ast.Expr, error) {
	inEnv := env(input.Columns())
	agg := &Aggregate{Input: input, GroupBy: groupBy}

	groupIdx := make(map[string]int, len(groupBy))
	for i, g := range groupBy {
		if ast.HasAggregate(g) {
			return nil, nil, nil, fmt.Errorf("aggregates are not allowed in GROUP BY")
		}
		c, err := expr.Compile(g, inEnv)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("GROUP BY: %w", err)
		}
		agg.Types = append(agg.Types, c.Type)
		groupIdx[exprKey(g)] = i
	}

	aggIdx := make(map[string]int)
	var register func(f *ast.FuncCall) (*ast.ColumnRef, error)
	register = func(f *ast.FuncCall) (*ast.ColumnRef, error) {
		key := exprKey(f)
		if i, ok := aggIdx[key]; ok {
			return &ast.ColumnRef{Table: AggTable, Name: agg.Aggs[i].OutName}, nil
		}
		spec := AggSpec{Name: f.Name, Star: f.Star, Distinct: f.Distinct}
		argType := sqltypes.Unknown
		if !f.Star {
			if len(f.Args) != 1 {
				return nil, fmt.Errorf("%s takes exactly one argument", f.Name)
			}
			if ast.HasAggregate(f.Args[0]) {
				return nil, fmt.Errorf("nested aggregates are not allowed")
			}
			c, err := expr.Compile(f.Args[0], inEnv)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", f.Name, err)
			}
			spec.Arg = f.Args[0]
			argType = c.Type
		}
		spec.Type = expr.AggregateResultType(f.Name, argType)
		spec.OutName = fmt.Sprintf("a%d", len(agg.Aggs))
		aggIdx[key] = len(agg.Aggs)
		agg.Aggs = append(agg.Aggs, spec)
		return &ast.ColumnRef{Table: AggTable, Name: spec.OutName}, nil
	}

	// rewrite replaces group expressions and aggregate calls with
	// references to the aggregate output. Applied top-down so that a
	// whole group expression matches before its parts are examined.
	var rewrite func(e ast.Expr) (ast.Expr, error)
	rewrite = func(e ast.Expr) (ast.Expr, error) {
		if e == nil {
			return nil, nil
		}
		if i, ok := groupIdx[exprKey(e)]; ok {
			return &ast.ColumnRef{Table: AggTable, Name: fmt.Sprintf("g%d", i)}, nil
		}
		if f, ok := e.(*ast.FuncCall); ok && ast.IsAggregateName(f.Name) {
			return register(f)
		}
		// Rebuild with rewritten children.
		var err error
		switch t := e.(type) {
		case *ast.BinaryExpr:
			n := &ast.BinaryExpr{Op: t.Op}
			if n.L, err = rewrite(t.L); err != nil {
				return nil, err
			}
			if n.R, err = rewrite(t.R); err != nil {
				return nil, err
			}
			return n, nil
		case *ast.UnaryExpr:
			n := &ast.UnaryExpr{Op: t.Op}
			if n.E, err = rewrite(t.E); err != nil {
				return nil, err
			}
			return n, nil
		case *ast.FuncCall:
			n := &ast.FuncCall{Name: t.Name, Star: t.Star, Distinct: t.Distinct}
			for _, a := range t.Args {
				ra, err := rewrite(a)
				if err != nil {
					return nil, err
				}
				n.Args = append(n.Args, ra)
			}
			return n, nil
		case *ast.CaseExpr:
			n := &ast.CaseExpr{}
			for _, w := range t.Whens {
				rc, err := rewrite(w.Cond)
				if err != nil {
					return nil, err
				}
				rr, err := rewrite(w.Result)
				if err != nil {
					return nil, err
				}
				n.Whens = append(n.Whens, ast.WhenClause{Cond: rc, Result: rr})
			}
			if n.Else, err = rewrite(t.Else); err != nil {
				return nil, err
			}
			return n, nil
		case *ast.CastExpr:
			n := &ast.CastExpr{To: t.To}
			if n.E, err = rewrite(t.E); err != nil {
				return nil, err
			}
			return n, nil
		case *ast.IsNullExpr:
			n := &ast.IsNullExpr{Negate: t.Negate}
			if n.E, err = rewrite(t.E); err != nil {
				return nil, err
			}
			return n, nil
		case *ast.InExpr:
			n := &ast.InExpr{Negate: t.Negate}
			if n.E, err = rewrite(t.E); err != nil {
				return nil, err
			}
			for _, x := range t.List {
				rx, err := rewrite(x)
				if err != nil {
					return nil, err
				}
				n.List = append(n.List, rx)
			}
			return n, nil
		case *ast.BetweenExpr:
			n := &ast.BetweenExpr{Negate: t.Negate}
			if n.E, err = rewrite(t.E); err != nil {
				return nil, err
			}
			if n.Lo, err = rewrite(t.Lo); err != nil {
				return nil, err
			}
			if n.Hi, err = rewrite(t.Hi); err != nil {
				return nil, err
			}
			return n, nil
		}
		return e, nil
	}

	outItems := make([]ast.SelectItem, len(items))
	for i, it := range items {
		re, err := rewrite(it.Expr)
		if err != nil {
			return nil, nil, nil, err
		}
		outItems[i] = ast.SelectItem{Expr: re, Alias: it.Alias}
		if outItems[i].Alias == "" {
			// Preserve the user-visible name from the original expr.
			outItems[i].Alias = itemName(it, i)
		}
	}
	var outHaving ast.Expr
	if having != nil {
		var err error
		outHaving, err = rewrite(having)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return agg, outItems, outHaving, nil
}

// exprKey is a normalized textual key for expression equality: column
// references are lowercased so PageRank.Node and pagerank.node match.
func exprKey(e ast.Expr) string {
	n := ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
		if c, ok := x.(*ast.ColumnRef); ok {
			return &ast.ColumnRef{Table: strings.ToLower(c.Table), Name: strings.ToLower(c.Name)}
		}
		return x
	})
	return n.String()
}

// ExprKey exposes the normalized expression key for the optimizer
// rewrites in internal/core.
func ExprKey(e ast.Expr) string { return exprKey(e) }

func (b *Builder) buildFrom(tr ast.TableRef) (Node, error) {
	switch t := tr.(type) {
	case *ast.BaseTable:
		return b.buildBase(t)
	case *ast.SubqueryRef:
		inner, err := b.clone().Build(t.Select)
		if err != nil {
			return nil, err
		}
		if t.Alias == "" {
			return inner, nil
		}
		return &Alias{Input: inner, Name: t.Alias}, nil
	case *ast.JoinRef:
		left, err := b.buildFrom(t.Left)
		if err != nil {
			return nil, err
		}
		right, err := b.buildFrom(t.Right)
		if err != nil {
			return nil, err
		}
		j := &Join{Type: t.Type, Left: left, Right: right, On: FoldConstants(t.On)}
		if t.On != nil {
			if ast.HasAggregate(t.On) {
				return nil, fmt.Errorf("aggregates are not allowed in JOIN conditions")
			}
			if _, err := expr.Compile(t.On, env(j.Columns())); err != nil {
				return nil, fmt.Errorf("JOIN ON: %w", err)
			}
		}
		return j, nil
	}
	return nil, fmt.Errorf("unsupported table reference %T", tr)
}

func (b *Builder) buildBase(t *ast.BaseTable) (Node, error) {
	alias := t.Alias
	if alias == "" {
		alias = t.Name
	}
	// 1. Regular CTE reference: inline expansion (view expansion).
	if cte, ok := b.ctes[strings.ToLower(t.Name)]; ok {
		inner, err := b.clone().Build(cte.Select)
		if err != nil {
			return nil, fmt.Errorf("CTE %s: %w", cte.Name, err)
		}
		if len(cte.Cols) > 0 {
			inner, err = renameColumns(inner, cte.Cols)
			if err != nil {
				return nil, fmt.Errorf("CTE %s: %w", cte.Name, err)
			}
		}
		return &Alias{Input: inner, Name: alias}, nil
	}
	// 2. Named intermediate result (iterative CTE tables).
	if schema, ok := b.Lookup.ResultSchema(t.Name); ok {
		return &NamedResult{Name: t.Name, Alias: alias, Cols: qualify(alias, schema)}, nil
	}
	// 3. Base table.
	if schema, ok := b.Lookup.TableSchema(t.Name); ok {
		return &Scan{Table: t.Name, Alias: alias, Cols: qualify(alias, schema)}, nil
	}
	return nil, fmt.Errorf("table %q does not exist", t.Name)
}

// renameColumns applies a CTE column list over a plan's output.
func renameColumns(n Node, names []string) (Node, error) {
	cols := n.Columns()
	if len(names) != len(cols) {
		return nil, fmt.Errorf("column list has %d names but the query produces %d columns", len(names), len(cols))
	}
	items := make([]ProjItem, len(cols))
	for i, c := range cols {
		items[i] = ProjItem{
			Expr: &ast.ColumnRef{Table: c.Table, Name: c.Name},
			Name: names[i],
			Type: c.Type,
		}
	}
	return &Project{Input: n, Items: items}, nil
}

func qualify(alias string, schema sqltypes.Schema) []ColInfo {
	out := make([]ColInfo, len(schema))
	la := strings.ToLower(alias)
	for i, c := range schema {
		out[i] = ColInfo{Table: la, Name: c.Name, Type: c.Type}
	}
	return out
}
