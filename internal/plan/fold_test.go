package plan

import (
	"strings"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/parser"
	"dbspinner/internal/sqltypes"
)

func foldStr(t *testing.T, src string) string {
	t.Helper()
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return FoldConstants(e).String()
}

func TestFoldConstants(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3":                             "7",
		"ABS(0 - 5)":                            "5",
		"1 + 2 > 2":                             "true",
		"x + (2 * 3)":                           "(x + 6)",
		"CASE WHEN 1 = 1 THEN 'a' ELSE 'b' END": "'a'",
		"LEAST(4, 2, 9)":                        "2",
		"x > 1 AND 2 < 3":                       "((x > 1) AND true)",
		"CAST(2.9 AS int)":                      "2",
		"MOD(10, 3) + x":                        "(1 + x)",
	}
	for src, want := range cases {
		if got := foldStr(t, src); got != want {
			t.Errorf("fold(%s) = %s, want %s", src, got, want)
		}
	}
}

func TestFoldLeavesErrorsUnfolded(t *testing.T) {
	// 1/0 must not fold (the error belongs to runtime, where the row
	// may never be evaluated).
	if got := foldStr(t, "1 / 0"); got != "(1 / 0)" {
		t.Errorf("1/0 folded to %s", got)
	}
	if got := foldStr(t, "x = 1 OR 1 / 0 = 2"); !strings.Contains(got, "(1 / 0)") {
		t.Errorf("nested 1/0 folded: %s", got)
	}
}

func TestFoldNil(t *testing.T) {
	if FoldConstants(nil) != nil {
		t.Error("nil fold")
	}
}

func TestSimplifyFilterTrue(t *testing.T) {
	n := buildSQL(t, "SELECT src FROM edges WHERE 1 = 1")
	// The always-true filter disappears.
	if _, ok := n.(*Project).Input.(*Scan); !ok {
		t.Errorf("filter not removed: %s", ExplainTree(n))
	}
}

func TestSimplifyFilterFalse(t *testing.T) {
	n := buildSQL(t, "SELECT src FROM edges WHERE 1 = 2")
	if _, ok := n.(*Project).Input.(*EmptyNode); !ok {
		t.Errorf("false filter should become Empty: %s", ExplainTree(n))
	}
	// NULL condition too (never true).
	n = buildSQL(t, "SELECT src FROM edges WHERE NULL")
	if _, ok := n.(*Project).Input.(*EmptyNode); !ok {
		t.Errorf("NULL filter should become Empty: %s", ExplainTree(n))
	}
}

func TestFoldInProjection(t *testing.T) {
	n := buildSQL(t, "SELECT 1 + 2 FROM edges")
	p := n.(*Project)
	if lit, ok := p.Items[0].Expr.(*ast.Literal); !ok || lit.Value != sqltypes.NewInt(3) {
		t.Errorf("projection not folded: %s", p.Items[0].Expr)
	}
}
