// Package faultinject implements deterministic, schedule-driven fault
// injection for the iterative executor. A schedule is a list of
// (fault-point, hit-count, mode) triples; the registry counts how many
// times each named point is reached and fires the scheduled fault
// exactly when the count matches — no wall clock, no randomness, so a
// failing schedule replays bit-for-bit. The registered points sit at
// every step boundary (core), scheduler region (core), MPP partition
// batch (mpp) and storage mutation (storage); injection is off by
// default and costs one nil check per point when disarmed.
//
// The package also owns the panic-containment primitive, Contain: a
// recover wrapper for worker goroutines that converts a panic into a
// *PanicError carrying the panic value, stack and partition index, so
// a panicking fragment fails its query instead of the process.
package faultinject

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Mode selects how a scheduled fault manifests.
type Mode string

const (
	// ModeError makes the fault point return an *InjectedError.
	ModeError Mode = "error"
	// ModePanic makes the fault point panic, exercising the
	// containment layer.
	ModePanic Mode = "panic"
)

// Registered fault-point names. Each names one class of injection
// hook; a schedule entry must use one of these.
const (
	// PointStep fires at the step-boundary hook of the sequential
	// step dispatcher, counted once per dispatched step.
	PointStep = "step"
	// PointRegion fires at the entry of a scheduled region
	// (Options.ParallelSteps), injected into the region's first
	// worker so the failure is deterministic.
	PointRegion = "region"
	// PointPartition fires at an MPP partition batch, injected into
	// partition 0's worker; the fault is taken serially before the
	// fan-out so the hit count is deterministic.
	PointPartition = "partition"
	// PointStorage fires at a result-store mutation (put, drop or
	// rename), counted in mutation order.
	PointStorage = "storage"
)

// Points lists every registered fault point, in a stable order, so
// tests can enumerate the full matrix.
func Points() []string {
	return []string{PointStep, PointRegion, PointPartition, PointStorage}
}

// Fault is one schedule entry: fire at the Hit-th arrival (1-based) at
// the named point, in the given mode.
type Fault struct {
	Point string
	Hit   int
	Mode  Mode
}

func (f Fault) String() string {
	return fmt.Sprintf("%s@%d:%s", f.Point, f.Hit, f.Mode)
}

// ParseSchedule parses the textual schedule format
// "point@hit:mode[,point@hit:mode...]" — e.g. "partition@2:panic,
// storage@5:error". Whitespace around entries is ignored; an empty
// string is an empty schedule.
func ParseSchedule(s string) ([]Fault, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Fault
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		at := strings.Index(entry, "@")
		colon := strings.LastIndex(entry, ":")
		if at < 1 || colon < at+2 || colon == len(entry)-1 {
			return nil, fmt.Errorf("fault schedule entry %q: want point@hit:mode", entry)
		}
		point := entry[:at]
		if !validPoint(point) {
			return nil, fmt.Errorf("fault schedule entry %q: unknown fault point %q (registered: %s)",
				entry, point, strings.Join(Points(), ", "))
		}
		hit, err := strconv.Atoi(entry[at+1 : colon])
		if err != nil || hit < 1 {
			return nil, fmt.Errorf("fault schedule entry %q: hit count must be a positive integer", entry)
		}
		mode := Mode(entry[colon+1:])
		if mode != ModeError && mode != ModePanic {
			return nil, fmt.Errorf("fault schedule entry %q: mode must be %q or %q", entry, ModeError, ModePanic)
		}
		out = append(out, Fault{Point: point, Hit: hit, Mode: mode})
	}
	return out, nil
}

// FormatSchedule renders a schedule in the ParseSchedule format, hits
// sorted within each point, points in registration order — the
// round-trippable form tests and CI artifacts use.
func FormatSchedule(sched []Fault) string {
	sorted := append([]Fault(nil), sched...)
	order := map[string]int{}
	for i, p := range Points() {
		order[p] = i
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		if order[sorted[i].Point] != order[sorted[j].Point] {
			return order[sorted[i].Point] < order[sorted[j].Point]
		}
		return sorted[i].Hit < sorted[j].Hit
	})
	parts := make([]string, len(sorted))
	for i, f := range sorted {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

func validPoint(p string) bool {
	for _, known := range Points() {
		if p == known {
			return true
		}
	}
	return false
}

// ErrInjected is the sentinel wrapped by every error-mode injection.
// Match with errors.Is to distinguish a scheduled fault from a real
// failure.
var ErrInjected = errors.New("injected fault")

// InjectedError is the structured error behind ErrInjected: which
// point fired and at which hit count. Match with errors.As.
type InjectedError struct {
	Point string
	Hit   int
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("injected fault at %s hit %d", e.Point, e.Hit)
}

// Unwrap exposes the ErrInjected sentinel.
func (e *InjectedError) Unwrap() error { return ErrInjected }

// Registry counts arrivals at each fault point and fires the scheduled
// faults. A nil *Registry is the disarmed state: every method is a
// no-op, so call sites need no guard beyond the nil receiver check the
// method itself performs.
type Registry struct {
	mu      sync.Mutex
	counts  map[string]int
	byPoint map[string][]Fault
}

// NewRegistry builds a registry from a schedule. An empty schedule
// returns nil — the disarmed, zero-cost state.
func NewRegistry(sched []Fault) *Registry {
	if len(sched) == 0 {
		return nil
	}
	r := &Registry{counts: map[string]int{}, byPoint: map[string][]Fault{}}
	for _, f := range sched {
		r.byPoint[f.Point] = append(r.byPoint[f.Point], f)
	}
	return r
}

// Take records one arrival at the point and returns the fault
// scheduled for exactly this hit count, or nil. Each scheduled fault
// is returned at most once (the counter only passes each hit number
// once), so a retried iteration does not re-fire the fault that
// failed it. Take never fires the fault itself: concurrent sites call
// it serially before fanning out, then Trigger the fault inside a
// chosen worker, keeping the hit count deterministic.
func (r *Registry) Take(point string) *Fault {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counts[point]++
	n := r.counts[point]
	for _, f := range r.byPoint[point] {
		if f.Hit == n {
			hit := f
			return &hit
		}
	}
	return nil
}

// Trigger fires a fault taken from the registry: error mode returns an
// *InjectedError, panic mode panics. A nil fault is a no-op.
func Trigger(f *Fault) error {
	if f == nil {
		return nil
	}
	if f.Mode == ModePanic {
		panic(fmt.Sprintf("injected panic at %s hit %d", f.Point, f.Hit))
	}
	return &InjectedError{Point: f.Point, Hit: f.Hit}
}

// Hit is Take followed by Trigger — the one-call form for serial
// injection sites.
func (r *Registry) Hit(point string) error {
	return Trigger(r.Take(point))
}

// carrier smuggles an error-mode injection out of a call site that has
// no error return (storage mutations): the site panics with a carrier
// and the containment layer unwraps it back into a plain error via
// AsError, so error mode stays an error even where only a panic can
// escape.
type carrier struct{ err error }

// Mutation is the injection hook for no-return mutation sites: error
// mode panics with a carrier (unwrapped to a plain error by the
// nearest containment layer), panic mode panics outright.
func (r *Registry) Mutation(point string) {
	if r == nil {
		return
	}
	f := r.Take(point)
	if f == nil {
		return
	}
	if f.Mode == ModePanic {
		panic(fmt.Sprintf("injected panic at %s hit %d", f.Point, f.Hit))
	}
	panic(carrier{&InjectedError{Point: f.Point, Hit: f.Hit}})
}

// AsError unwraps a recovered panic value that is really an error-mode
// injection in a carrier. ok=false means v is a genuine panic.
func AsError(v any) (error, bool) {
	if c, ok := v.(carrier); ok {
		return c.err, true
	}
	return nil, false
}

// PanicError is the contained form of a worker panic: the panic value,
// the goroutine stack at recovery, and the partition index of the
// worker (-1 for non-partition workers). The core layer promotes it
// into an InternalPanicError carrying iteration and step provenance.
type PanicError struct {
	Value     any
	Stack     []byte
	Partition int
}

// Error implements error.
func (e *PanicError) Error() string {
	if e.Partition >= 0 {
		return fmt.Sprintf("panic in partition %d worker: %v", e.Partition, e.Value)
	}
	return fmt.Sprintf("panic in worker: %v", e.Value)
}

// Contain runs fn and converts a panic into an error: an error-mode
// injection carrier unwraps to its plain error, anything else becomes
// a *PanicError recording the value, stack and partition. Every
// goroutine spawned by the executor layers must run its body under
// Contain (enforced by the spinlint gorecover analyzer) so no query
// can take down the process.
func Contain(partition int, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			if e, ok := AsError(v); ok {
				err = e
				return
			}
			err = &PanicError{Value: v, Stack: debug.Stack(), Partition: partition}
		}
	}()
	return fn()
}
