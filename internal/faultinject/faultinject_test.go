package faultinject

import (
	"errors"
	"testing"
)

func TestParseScheduleRoundTrip(t *testing.T) {
	in := "partition@2:panic, storage@5:error,step@1:error"
	sched, err := ParseSchedule(in)
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if len(sched) != 3 {
		t.Fatalf("got %d entries, want 3", len(sched))
	}
	got := FormatSchedule(sched)
	want := "step@1:error,partition@2:panic,storage@5:error"
	if got != want {
		t.Fatalf("FormatSchedule = %q, want %q", got, want)
	}
	back, err := ParseSchedule(got)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if FormatSchedule(back) != got {
		t.Fatalf("schedule does not round-trip: %q vs %q", FormatSchedule(back), got)
	}
}

func TestParseScheduleRejects(t *testing.T) {
	for _, bad := range []string{
		"step",            // no hit or mode
		"step@0:error",    // hit must be positive
		"step@x:error",    // hit must be a number
		"step@1:explode",  // unknown mode
		"nowhere@1:error", // unknown point
		"@1:error",        // empty point
		"step@1:",         // empty mode
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted, want error", bad)
		}
	}
	if sched, err := ParseSchedule("  "); err != nil || sched != nil {
		t.Errorf("blank schedule: got %v, %v; want nil, nil", sched, err)
	}
}

func TestRegistryDeterministicHits(t *testing.T) {
	sched := []Fault{{Point: PointStep, Hit: 3, Mode: ModeError}}
	r := NewRegistry(sched)
	for run := 0; run < 2; run++ {
		if run > 0 {
			r = NewRegistry(sched) // a fresh registry replays identically
		}
		var fired []int
		for i := 1; i <= 5; i++ {
			if f := r.Take(PointStep); f != nil {
				fired = append(fired, i)
				err := Trigger(f)
				var ie *InjectedError
				if !errors.As(err, &ie) || !errors.Is(err, ErrInjected) {
					t.Fatalf("Trigger = %v, want InjectedError wrapping ErrInjected", err)
				}
				if ie.Point != PointStep || ie.Hit != 3 {
					t.Fatalf("injected provenance = %+v", ie)
				}
			}
		}
		if len(fired) != 1 || fired[0] != 3 {
			t.Fatalf("run %d: fired at %v, want [3]", run, fired)
		}
	}
}

func TestNilRegistryIsDisarmed(t *testing.T) {
	var r *Registry
	if r != NewRegistry(nil) {
		t.Fatal("empty schedule must build a nil registry")
	}
	if f := r.Take(PointStorage); f != nil {
		t.Fatalf("nil registry took %v", f)
	}
	if err := r.Hit(PointStep); err != nil {
		t.Fatalf("nil registry hit: %v", err)
	}
	r.Mutation(PointStorage) // must not panic
}

func TestContain(t *testing.T) {
	if err := Contain(0, func() error { return nil }); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	want := errors.New("real failure")
	if err := Contain(0, func() error { return want }); err != want {
		t.Fatalf("error passthrough: %v", err)
	}
	err := Contain(2, func() error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic not contained: %v", err)
	}
	if pe.Partition != 2 || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("contained panic = %+v", pe)
	}
}

func TestMutationCarrierUnwraps(t *testing.T) {
	r := NewRegistry([]Fault{{Point: PointStorage, Hit: 1, Mode: ModeError}})
	err := Contain(-1, func() error {
		r.Mutation(PointStorage)
		return nil
	})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error-mode mutation must unwrap to a plain injected error, got %v", err)
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		t.Fatalf("error-mode mutation surfaced as a panic: %v", err)
	}

	r = NewRegistry([]Fault{{Point: PointStorage, Hit: 1, Mode: ModePanic}})
	err = Contain(-1, func() error {
		r.Mutation(PointStorage)
		return nil
	})
	if !errors.As(err, &pe) {
		t.Fatalf("panic-mode mutation must surface as a contained panic, got %v", err)
	}
}
