// Package distprop implements the static partition-property analysis:
// it infers, for every plan node, the distribution property the node's
// output relation is guaranteed to satisfy on the simulated MPP
// machine, bottom-up from the storage layout of base tables through
// projections, filters, joins, aggregations and exchanges.
//
// The property vocabulary is a three-point lattice per relation:
//
//	Unknown    ⊑  Hash(cols)   "every row r lives in partition
//	                            RowKey(r, cols).Partition(parts)"
//	Unknown    ⊑  Singleton    "every row lives in partition 0"
//
// Hash is order-sensitive — Hash(a,b) and Hash(b,a) route differently —
// so properties are compared position-wise, modulo definite column
// equivalence (columns proven value-equal on every row, e.g. the two
// sides of an inner equi-join key).
//
// The analysis licenses shuffle elision: when a join side, an
// aggregate input or a distinct input is already distributed on
// columns matching the exchange keys, the exchange provably routes
// every row to the partition it is already in, so the MPP machine may
// skip it (or, for aggregates, pre-aggregate locally and exchange only
// the one-row-per-group outputs) with byte-identical results. Every
// claim is re-derived independently by internal/verify before the
// machine trusts it, and the mpp layer can re-hash rows at consumption
// as a dynamic cross-check.
//
// The package is pure: it reads plans, never executes them, and its
// only knowledge of storage is the TableDist interface.
package distprop

import (
	"fmt"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/expr"
	"dbspinner/internal/plan"
	"dbspinner/internal/storage"
)

// Kind enumerates the points of the distribution-property lattice.
type Kind int

const (
	// KindUnknown is the lattice bottom: nothing is known about row
	// placement (round-robin layouts land here).
	KindUnknown Kind = iota
	// KindSingleton means every row lives in partition 0.
	KindSingleton
	// KindHash means every row r lives in partition
	// RowKey(r, Cols).Partition(parts) — the machine's one routing
	// function, shared with storage DistCol inserts and both shuffle
	// exchanges (NULL-bearing keys route to partition 0 in all of
	// them).
	KindHash
)

// Property is the distribution property of one relation.
type Property struct {
	Kind Kind
	// Cols are the routing column positions for KindHash, in routing
	// order.
	Cols []int
}

// Unknown returns the lattice bottom.
func Unknown() Property { return Property{Kind: KindUnknown} }

// Singleton returns the all-rows-in-partition-0 property.
func Singleton() Property { return Property{Kind: KindSingleton} }

// Hash returns the hash-distributed-on-cols property.
func Hash(cols ...int) Property { return Property{Kind: KindHash, Cols: cols} }

// Equal reports structural equality (position-wise column match).
func (p Property) Equal(q Property) bool {
	if p.Kind != q.Kind || len(p.Cols) != len(q.Cols) {
		return false
	}
	for i := range p.Cols {
		if p.Cols[i] != q.Cols[i] {
			return false
		}
	}
	return true
}

// Meet returns the greatest property implied by both inputs: equal
// properties meet to themselves, anything else to Unknown. (Callers
// holding equivalence information can do better; see Analysis.)
func Meet(p, q Property) Property {
	if p.Equal(q) {
		return p
	}
	return Unknown()
}

// String renders the property: "hash(0,2)", "singleton", "unknown".
func (p Property) String() string {
	switch p.Kind {
	case KindSingleton:
		return "singleton"
	case KindHash:
		parts := make([]string, len(p.Cols))
		for i, c := range p.Cols {
			parts[i] = fmt.Sprintf("%d", c)
		}
		return "hash(" + strings.Join(parts, ",") + ")"
	}
	return "unknown"
}

// Describe renders the property with column names substituted for
// positions, for EXPLAIN output: "hash(node)".
func (p Property) Describe(cols []plan.ColInfo) string {
	if p.Kind != KindHash {
		return p.String()
	}
	parts := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		if c >= 0 && c < len(cols) && cols[c].Name != "" {
			parts[i] = cols[c].Name
		} else {
			parts[i] = fmt.Sprintf("%d", c)
		}
	}
	return "hash(" + strings.Join(parts, ",") + ")"
}

// TableDist reports the storage distribution of a base table: the
// hash-distribution column (or -1 for round-robin) and the partition
// count. exec.StoreRuntime implements it over the catalog.
type TableDist interface {
	TableDistribution(name string) (distCol, parts int, ok bool)
}

// Exchange identifies one elidable exchange of a plan node.
type Exchange int

const (
	// JoinLeft and JoinRight are the two key shuffles of an equi-join.
	JoinLeft Exchange = iota
	JoinRight
	// AggregateInput is the group-key shuffle feeding a grouped
	// aggregate.
	AggregateInput
	// DistinctInput is the full-row shuffle feeding a Distinct.
	DistinctInput
)

// String names the exchange for diagnostics and EXPLAIN.
func (e Exchange) String() string {
	switch e {
	case JoinLeft:
		return "join left"
	case JoinRight:
		return "join right"
	case AggregateInput:
		return "aggregate input"
	case DistinctInput:
		return "distinct input"
	}
	return fmt.Sprintf("exchange(%d)", int(e))
}

// Decision records the analysis verdict for one exchange: Licensed
// means the exchange is provably redundant and may be elided; Cols are
// the claimed routing columns of the exchange's input (what a dynamic
// check re-hashes). Every exchange the analysis encounters produces a
// Decision, licensed or not, so callers can detect conflicting
// verdicts for plan nodes shared between inferences.
type Decision struct {
	Node     plan.Node
	Exch     Exchange
	Cols     []int
	Licensed bool
}

// Analysis carries the context of one property inference: the machine
// partition count, the storage layout oracle, and the properties of
// named result slots established by earlier steps of a step program.
type Analysis struct {
	// Parts is the MPP machine's partition count. Base-table layouts
	// with a different partition count are re-sliced by the scan and
	// contribute nothing.
	Parts int
	// Tables resolves base-table storage layouts; nil means no layout
	// knowledge (every scan is Unknown).
	Tables TableDist
	// Slots maps normalized result-slot names to the property their
	// stored table satisfies. Missing slots are Unknown.
	Slots map[string]Property
	// OnExchange, when non-nil, receives a Decision for every
	// elidable exchange encountered during Infer.
	OnExchange func(Decision)
}

// SlotProp returns the property recorded for a named result slot.
func (a *Analysis) SlotProp(name string) (Property, bool) {
	p, ok := a.Slots[storage.NormalizeName(name)]
	return p, ok
}

// Infer computes the distribution property of a plan node's output,
// reporting exchange decisions through OnExchange along the way.
// Unsupported node kinds are Unknown (fail closed).
func (a *Analysis) Infer(n plan.Node) Property {
	return a.infer(n).prop
}

// result couples a property with the column-equivalence knowledge
// gathered while deriving it.
type result struct {
	prop Property
	eq   *eqRel
}

func unknownOf(n plan.Node) result {
	return result{prop: Unknown(), eq: newEqRel(len(n.Columns()))}
}

// infer is the canonical dispatch of the analysis: every plan.Node
// implementer must be handled here (the distprop spinlint analyzer
// checks the switch against the plan package), with the default
// falling through to Unknown.
func (a *Analysis) infer(n plan.Node) result {
	switch t := n.(type) {
	case *plan.Scan:
		return a.inferScan(t)
	case *plan.NamedResult:
		eq := newEqRel(len(t.Cols))
		if p, ok := a.SlotProp(t.Name); ok {
			return result{prop: p, eq: eq}
		}
		return result{prop: Unknown(), eq: eq}
	case *plan.OneRow:
		// A single row in fragment 0.
		return result{prop: Singleton(), eq: newEqRel(0)}
	case *plan.Filter:
		// Filtering never moves rows.
		return a.infer(t.Input)
	case *plan.Project:
		return a.inferProject(t)
	case *plan.Alias:
		// Renaming changes name resolution only.
		return a.infer(t.Input)
	case *plan.Join:
		return a.inferJoin(t)
	case *plan.Aggregate:
		return a.inferAggregate(t)
	case *plan.Union:
		return a.inferUnion(t)
	case *plan.Distinct:
		return a.inferDistinct(t)
	case *plan.Sort:
		// Order-sensitive operators gather to fragment 0, keeping
		// column identities.
		in := a.infer(t.Input)
		return result{prop: Singleton(), eq: in.eq}
	case *plan.Limit:
		in := a.infer(t.Input)
		return result{prop: Singleton(), eq: in.eq}
	case *plan.TopN:
		in := a.infer(t.Input)
		return result{prop: Singleton(), eq: in.eq}
	case *plan.Trim:
		return a.inferTrim(t)
	case *plan.ValuesNode:
		// Literal rows are produced in fragment 0.
		return result{prop: Singleton(), eq: newEqRel(len(t.Cols))}
	case *plan.EmptyNode:
		// No rows: every property holds vacuously; Singleton is the
		// most broadly useful.
		return result{prop: Singleton(), eq: newEqRel(len(t.Cols))}
	default:
		// Fail closed: a node kind this dispatch does not know claims
		// nothing.
		return unknownOf(n)
	}
}

func (a *Analysis) inferScan(t *plan.Scan) result {
	eq := newEqRel(len(t.Cols))
	if a.Tables != nil {
		dc, parts, ok := a.Tables.TableDistribution(t.Table)
		// The scan adopts the stored layout only when the partition
		// counts agree; otherwise it re-slices round-robin.
		if ok && dc >= 0 && parts == a.Parts {
			return result{prop: Hash(dc), eq: eq}
		}
	}
	return result{prop: Unknown(), eq: eq}
}

func (a *Analysis) inferProject(t *plan.Project) result {
	in := a.infer(t.Input)
	inW := len(t.Input.Columns())
	env := nodeEnv(t.Input)
	// images[c] lists the output positions that copy input column c
	// verbatim (bare column references only — any computation breaks
	// the routing-value identity).
	images := make([][]int, inW)
	for i, it := range t.Items {
		if c := bareCol(it.Expr, env); c >= 0 {
			images[c] = append(images[c], i)
		}
	}
	return result{prop: remapProp(in.prop, images), eq: in.eq.remap(images, len(t.Items))}
}

func (a *Analysis) inferTrim(t *plan.Trim) result {
	in := a.infer(t.Input)
	inW := len(t.Input.Columns())
	images := make([][]int, inW)
	for c := 0; c < t.Keep && c < inW; c++ {
		images[c] = []int{c}
	}
	return result{prop: remapProp(in.prop, images), eq: in.eq.remap(images, t.Keep)}
}

func (a *Analysis) inferUnion(t *plan.Union) result {
	l := a.infer(t.Left)
	r := a.infer(t.Right)
	w := len(t.Left.Columns())
	// UnionAll concatenates partition-wise, so the output satisfies
	// exactly the properties both inputs satisfy. Column equivalences
	// would have to hold in both branches; drop them (sound).
	out := result{prop: Unknown(), eq: newEqRel(w)}
	for _, cand := range []Property{l.prop, r.prop} {
		if satisfies(l, cand) && satisfies(r, cand) {
			out.prop = cand
			break
		}
	}
	return out
}

func (a *Analysis) inferDistinct(t *plan.Distinct) result {
	in := a.infer(t.Input)
	w := len(t.Input.Columns())
	all := make([]int, w)
	for i := range all {
		all[i] = i
	}
	// The full-row exchange is the identity when the input already
	// sits at its ValuesKey destination — exactly Hash over all
	// columns in order.
	a.decide(t, DistinctInput, all, satisfies(in, Hash(all...)))
	// Elided or not, the output is distributed on the full row.
	return result{prop: Hash(all...), eq: in.eq}
}

func (a *Analysis) inferAggregate(t *plan.Aggregate) result {
	in := a.infer(t.Input)
	k := len(t.GroupBy)
	outW := k + len(t.Aggs)
	if k == 0 {
		// Scalar aggregates gather to fragment 0.
		return result{prop: Singleton(), eq: newEqRel(outW)}
	}
	env := nodeEnv(t.Input)
	inW := len(t.Input.Columns())
	images := make([][]int, inW)
	gcols := make([]int, k)
	for j, g := range t.GroupBy {
		gcols[j] = bareCol(g, env)
		if gcols[j] >= 0 {
			images[gcols[j]] = append(images[gcols[j]], j)
		}
	}
	// The group-key exchange is elidable iff the input is hash
	// distributed on columns each definitely equivalent to a bare
	// group column: equal group tuples then imply equal routing
	// tuples, so every group's rows already share a partition and can
	// be aggregated exactly in place (the machine still exchanges the
	// one-row-per-group outputs to their group-key destinations, so
	// placement is unchanged). Order-free subset rule: the routing
	// columns need not enumerate every group column, nor match their
	// order.
	licensed := in.prop.Kind == KindHash
	if licensed {
		for _, c := range in.prop.Cols {
			ok := false
			for _, g := range gcols {
				if g >= 0 && in.eq.same(c, g) {
					ok = true
					break
				}
			}
			if !ok {
				licensed = false
				break
			}
		}
	}
	a.decide(t, AggregateInput, in.prop.Cols, licensed)
	// Both paths leave the output routed by the full group tuple —
	// the leading k output columns in order.
	outCols := make([]int, k)
	for i := range outCols {
		outCols[i] = i
	}
	return result{prop: Hash(outCols...), eq: in.eq.remap(images, outW)}
}

func (a *Analysis) inferJoin(t *plan.Join) result {
	l := a.infer(t.Left)
	r := a.infer(t.Right)
	lw := len(t.Left.Columns())
	rw := len(t.Right.Columns())
	pairs := a.joinKeyCols(t)

	lNullable := t.Type == ast.RightJoin || t.Type == ast.FullJoin
	rNullable := t.Type == ast.LeftJoin || t.Type == ast.FullJoin
	eq := combineEq(l.eq, r.eq, lw, rw, lNullable, rNullable)
	switch t.Type {
	case ast.InnerJoin:
		// Inner equi-keys equate their columns on every output row,
		// and the hash join skips NULL keys on both sides, so each
		// bare key column is also non-NULL — which upgrades pending
		// outer-join caveats on it.
		for _, p := range pairs {
			if p.lcol >= 0 && p.rcol >= 0 {
				eq.union(p.lcol, lw+p.rcol)
			}
			if p.lcol >= 0 {
				eq.markNonNull(p.lcol)
			}
			if p.rcol >= 0 {
				eq.markNonNull(lw + p.rcol)
			}
		}
	case ast.LeftJoin:
		// L.k = R.k holds unless the right side is NULL-extended:
		// equal-unless-cond-NULL, upgradeable by a later inner join.
		for _, p := range pairs {
			if p.lcol >= 0 && p.rcol >= 0 {
				eq.addCaveat(p.lcol, lw+p.rcol, lw+p.rcol)
			}
		}
	case ast.RightJoin:
		for _, p := range pairs {
			if p.lcol >= 0 && p.rcol >= 0 {
				eq.addCaveat(p.lcol, lw+p.rcol, p.lcol)
			}
		}
	}

	if t.Type == ast.CrossJoin || len(pairs) == 0 {
		// Broadcast join: the right side is replicated, the left stays
		// put, so the left property survives (inner/cross only — the
		// machine rejects keyless outer joins).
		if t.Type == ast.CrossJoin || t.Type == ast.InnerJoin {
			return result{prop: l.prop, eq: eq}
		}
		return result{prop: Unknown(), eq: eq}
	}

	// Equi path: each side's exchange is elidable independently, and
	// only by exact identity — every key a bare column, and the side
	// already hash-distributed on exactly those columns in key order
	// (modulo the side's own definite equivalences). Then the shuffle
	// would route every row (NULL keys included: both route to
	// partition 0) to the partition it is already in.
	lcols, lok := sideCols(pairs, false)
	rcols, rok := sideCols(pairs, true)
	a.decide(t, JoinLeft, lcols, lok && satisfies(l, Hash(lcols...)))
	a.decide(t, JoinRight, rcols, rok && satisfies(r, Hash(rcols...)))

	// Output placement: rows land at their key destination. Matched
	// rows carry equal key values on both sides; NULL-extended rows
	// sit at the surviving side's key destination, which their NULL
	// side can never express — so each join type trusts only the
	// side(s) whose key columns are live on every output row.
	out := Unknown()
	switch t.Type {
	case ast.InnerJoin:
		if lok {
			out = Hash(lcols...)
		} else if rok {
			out = Hash(offsetCols(rcols, lw)...)
		}
	case ast.LeftJoin:
		if lok {
			out = Hash(lcols...)
		}
	case ast.RightJoin:
		if rok {
			out = Hash(offsetCols(rcols, lw)...)
		}
	}
	return result{prop: out, eq: eq}
}

// satisfies reports whether a derived result guarantees property p,
// comparing hash columns position-wise modulo the result's definite
// column equivalences.
func satisfies(r result, p Property) bool {
	switch p.Kind {
	case KindSingleton:
		return r.prop.Kind == KindSingleton
	case KindHash:
		if r.prop.Kind != KindHash || len(r.prop.Cols) != len(p.Cols) {
			return false
		}
		for i := range p.Cols {
			if !r.eq.same(r.prop.Cols[i], p.Cols[i]) {
				return false
			}
		}
		return true
	}
	return true // Unknown is implied by anything
}

func (a *Analysis) decide(n plan.Node, ex Exchange, cols []int, licensed bool) {
	if a.OnExchange != nil {
		a.OnExchange(Decision{Node: n, Exch: ex, Cols: cols, Licensed: licensed})
	}
}

// remapProp rewrites a property through a projection: every routing
// column must survive as a verbatim copy; images[c] lists the output
// positions copying input column c.
func remapProp(p Property, images [][]int) Property {
	switch p.Kind {
	case KindSingleton:
		return p
	case KindHash:
		out := make([]int, len(p.Cols))
		for i, c := range p.Cols {
			if c < 0 || c >= len(images) || len(images[c]) == 0 {
				return Unknown()
			}
			out[i] = images[c][0]
		}
		return Hash(out...)
	}
	return Unknown()
}

func offsetCols(cols []int, by int) []int {
	out := make([]int, len(cols))
	for i, c := range cols {
		out[i] = c + by
	}
	return out
}

// keyPair is one equi-join conjunct with its bare column positions
// (-1 when the key expression is not a bare column reference).
type keyPair struct {
	lcol, rcol int
}

// sideCols extracts one side's key columns in conjunct order,
// reporting whether every key on that side is a bare column.
func sideCols(pairs []keyPair, right bool) ([]int, bool) {
	out := make([]int, len(pairs))
	for i, p := range pairs {
		c := p.lcol
		if right {
			c = p.rcol
		}
		if c < 0 {
			return nil, false
		}
		out[i] = c
	}
	return out, true
}

// joinKeyCols mirrors the executor's equi-key extraction
// (exec.JoinKeys): conjuncts of the ON clause, in order, split into
// (left expr, right expr) pairs when one side compiles against each
// input; everything else is residual. Each pair is reduced to bare
// column positions where possible.
func (a *Analysis) joinKeyCols(t *plan.Join) []keyPair {
	if t.On == nil {
		return nil
	}
	lenv := nodeEnv(t.Left)
	renv := nodeEnv(t.Right)
	var pairs []keyPair
	for _, c := range ast.SplitConjuncts(t.On) {
		le, re, ok := splitEqui(c, lenv, renv)
		if !ok {
			continue
		}
		pairs = append(pairs, keyPair{lcol: bareCol(le, lenv), rcol: bareCol(re, renv)})
	}
	return pairs
}

// splitEqui mirrors exec.splitEquiKey: an equality whose sides compile
// against opposite inputs is a hash key; aggregates disqualify.
func splitEqui(e ast.Expr, lenv, renv *expr.Env) (ast.Expr, ast.Expr, bool) {
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op != "=" {
		return nil, nil, false
	}
	if ast.HasAggregate(b.L) || ast.HasAggregate(b.R) {
		return nil, nil, false
	}
	resolves := func(x ast.Expr, env *expr.Env) bool {
		_, err := expr.Compile(x, env)
		return err == nil
	}
	if resolves(b.L, lenv) && resolves(b.R, renv) {
		return b.L, b.R, true
	}
	if resolves(b.R, lenv) && resolves(b.L, renv) {
		return b.R, b.L, true
	}
	return nil, nil, false
}

// bareCol returns the column position a bare column reference resolves
// to in the environment, or -1.
func bareCol(e ast.Expr, env *expr.Env) int {
	cr, ok := e.(*ast.ColumnRef)
	if !ok {
		return -1
	}
	b, err := env.Resolve(cr.Table, cr.Name)
	if err != nil {
		return -1
	}
	return b.Index
}

// nodeEnv builds the expression environment of a node's output, the
// same way the executors do.
func nodeEnv(n plan.Node) *expr.Env {
	e := &expr.Env{}
	for i, c := range n.Columns() {
		e.Cols = append(e.Cols, expr.Binding{
			Table: strings.ToLower(c.Table),
			Name:  strings.ToLower(c.Name),
			Index: i,
			Type:  c.Type,
		})
	}
	return e
}
