package distprop

// eqRel tracks definite column equivalence over one relation's output:
// columns in the same class carry identical values (NULLs included) on
// every row. It also carries conditional equivalences ("caveats") from
// outer-join keys — x = y on every row where cond is non-NULL — which
// upgrade to definite equivalence once a later operator proves cond
// non-NULL on all surviving rows (an inner equi-join keyed on it).
type eqRel struct {
	parent  []int
	nonNull []bool
	caveats []caveat
}

type caveat struct {
	x, y, cond int
}

func newEqRel(w int) *eqRel {
	if w < 0 {
		w = 0
	}
	e := &eqRel{parent: make([]int, w), nonNull: make([]bool, w)}
	for i := range e.parent {
		e.parent[i] = i
	}
	return e
}

func (e *eqRel) find(c int) int {
	for e.parent[c] != c {
		e.parent[c] = e.parent[e.parent[c]]
		c = e.parent[c]
	}
	return c
}

// same reports definite equivalence; out-of-range columns are never
// equivalent to anything but themselves.
func (e *eqRel) same(a, b int) bool {
	if a == b {
		return true
	}
	if a < 0 || b < 0 || a >= len(e.parent) || b >= len(e.parent) {
		return false
	}
	return e.find(a) == e.find(b)
}

func (e *eqRel) union(a, b int) {
	if a < 0 || b < 0 || a >= len(e.parent) || b >= len(e.parent) {
		return
	}
	ra, rb := e.find(a), e.find(b)
	if ra == rb {
		return
	}
	e.parent[ra] = rb
	// Non-nullness is a per-row value fact, so it spreads over the
	// merged class.
	if e.nonNull[ra] || e.nonNull[rb] {
		e.markNonNull(rb)
	}
}

func (e *eqRel) addCaveat(x, y, cond int) {
	if x < 0 || y < 0 || cond < 0 {
		return
	}
	e.caveats = append(e.caveats, caveat{x: x, y: y, cond: cond})
}

// markNonNull records that a column (hence its whole equivalence
// class) is non-NULL on every row, and upgrades any caveat whose
// condition column is now known non-NULL into a definite equivalence.
// Upgrading can cascade: a new union may make further caveat
// conditions non-NULL.
func (e *eqRel) markNonNull(c int) {
	if c < 0 || c >= len(e.parent) {
		return
	}
	e.nonNull[e.find(c)] = true
	for changed := true; changed; {
		changed = false
		kept := e.caveats[:0]
		for _, cv := range e.caveats {
			if e.nonNull[e.find(cv.cond)] {
				e.union(cv.x, cv.y)
				changed = true
				continue
			}
			kept = append(kept, cv)
		}
		e.caveats = kept
	}
}

// remap rewrites the relation through a projection: images[c] lists
// the output positions that copy input column c verbatim. Equivalences
// survive through any copy; caveats survive when all three columns
// have copies; columns without copies drop out.
func (e *eqRel) remap(images [][]int, outW int) *eqRel {
	out := newEqRel(outW)
	first := make([]int, len(images))
	for c := range images {
		first[c] = -1
		for _, o := range images[c] {
			if o < 0 || o >= outW {
				continue
			}
			if first[c] < 0 {
				first[c] = o
			} else {
				out.union(first[c], o) // two copies of one column are equal
			}
		}
	}
	// Project equivalence classes: members with surviving copies stay
	// equivalent.
	for a := 0; a < len(images); a++ {
		if first[a] < 0 {
			continue
		}
		for b := a + 1; b < len(images); b++ {
			if first[b] >= 0 && e.same(a, b) {
				out.union(first[a], first[b])
			}
		}
		if e.nonNull[e.find(a)] {
			out.nonNull[out.find(first[a])] = true
		}
	}
	for _, cv := range e.caveats {
		if cv.x < len(first) && cv.y < len(first) && cv.cond < len(first) &&
			first[cv.x] >= 0 && first[cv.y] >= 0 && first[cv.cond] >= 0 {
			out.addCaveat(first[cv.x], first[cv.y], first[cv.cond])
		}
	}
	return out
}

// combineEq concatenates two relations side by side (join output
// layout: left columns then right columns). lNullable / rNullable mark
// a side the join may NULL-extend: its equivalences and caveats still
// hold (NULL-extended rows make them vacuous or NULL-equal), but its
// non-NULL facts do not survive.
func combineEq(l, r *eqRel, lw, rw int, lNullable, rNullable bool) *eqRel {
	out := newEqRel(lw + rw)
	for a := 0; a < lw; a++ {
		for b := a + 1; b < lw; b++ {
			if l.same(a, b) {
				out.union(a, b)
			}
		}
		if !lNullable && a < len(l.nonNull) && l.nonNull[l.find(a)] {
			out.nonNull[out.find(a)] = true
		}
	}
	for a := 0; a < rw; a++ {
		for b := a + 1; b < rw; b++ {
			if r.same(a, b) {
				out.union(lw+a, lw+b)
			}
		}
		if !rNullable && a < len(r.nonNull) && r.nonNull[r.find(a)] {
			out.nonNull[out.find(lw+a)] = true
		}
	}
	for _, cv := range l.caveats {
		out.addCaveat(cv.x, cv.y, cv.cond)
	}
	for _, cv := range r.caveats {
		out.addCaveat(lw+cv.x, lw+cv.y, lw+cv.cond)
	}
	return out
}
