package distprop

import (
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
)

type fakeDist map[string]struct{ dc, parts int }

func (f fakeDist) TableDistribution(name string) (int, int, bool) {
	d, ok := f[name]
	return d.dc, d.parts, ok
}

func cols(tbl string, names ...string) []plan.ColInfo {
	out := make([]plan.ColInfo, len(names))
	for i, n := range names {
		out[i] = plan.ColInfo{Table: tbl, Name: n, Type: sqltypes.Int}
	}
	return out
}

func scan(tbl string, names ...string) *plan.Scan {
	return &plan.Scan{Table: tbl, Alias: tbl, Cols: cols(tbl, names...)}
}

func ref(tbl, name string) *ast.ColumnRef { return &ast.ColumnRef{Table: tbl, Name: name} }

func eqExpr(l, r ast.Expr) ast.Expr { return &ast.BinaryExpr{Op: "=", L: l, R: r} }

func analysis(parts int, td TableDist) (*Analysis, *[]Decision) {
	var ds []Decision
	a := &Analysis{Parts: parts, Tables: td, OnExchange: func(d Decision) { ds = append(ds, d) }}
	return a, &ds
}

func TestPropertyBasics(t *testing.T) {
	if got := Hash(0, 2).String(); got != "hash(0,2)" {
		t.Errorf("String = %q", got)
	}
	if got := Singleton().String(); got != "singleton" {
		t.Errorf("String = %q", got)
	}
	if got := Unknown().String(); got != "unknown" {
		t.Errorf("String = %q", got)
	}
	if Hash(0, 1).Equal(Hash(1, 0)) {
		t.Error("hash properties are order-sensitive")
	}
	if !Meet(Hash(1), Hash(1)).Equal(Hash(1)) {
		t.Error("meet of equal properties")
	}
	if Meet(Hash(1), Singleton()).Kind != KindUnknown {
		t.Error("meet of different properties should be unknown")
	}
	d := Hash(1).Describe(cols("t", "a", "b"))
	if d != "hash(b)" {
		t.Errorf("Describe = %q", d)
	}
}

func TestScanProperty(t *testing.T) {
	td := fakeDist{"edges": {dc: 1, parts: 4}, "rr": {dc: -1, parts: 4}, "skew": {dc: 0, parts: 2}}
	a, _ := analysis(4, td)
	if p := a.Infer(scan("edges", "src", "dst")); !p.Equal(Hash(1)) {
		t.Errorf("hash table: %v", p)
	}
	if p := a.Infer(scan("rr", "a", "b")); p.Kind != KindUnknown {
		t.Errorf("round-robin table: %v", p)
	}
	// Partition-count mismatch: the scan re-slices, layout is lost.
	if p := a.Infer(scan("skew", "a", "b")); p.Kind != KindUnknown {
		t.Errorf("mismatched parts: %v", p)
	}
	// No layout oracle at all: fail closed.
	b := &Analysis{Parts: 4}
	if p := b.Infer(scan("edges", "src", "dst")); p.Kind != KindUnknown {
		t.Errorf("nil Tables: %v", p)
	}
}

func TestNamedResultSlots(t *testing.T) {
	a, _ := analysis(4, nil)
	a.Slots = map[string]Property{"intermediate#pagerank": Hash(0)}
	nr := &plan.NamedResult{Name: "Intermediate#PageRank", Cols: cols("pagerank", "node", "rank")}
	if p := a.Infer(nr); !p.Equal(Hash(0)) {
		t.Errorf("slot lookup should normalize names: %v", p)
	}
	if p := a.Infer(&plan.NamedResult{Name: "other", Cols: cols("o", "x")}); p.Kind != KindUnknown {
		t.Errorf("missing slot: %v", p)
	}
}

func TestProjectRemap(t *testing.T) {
	td := fakeDist{"t": {dc: 0, parts: 2}}
	a, _ := analysis(2, td)
	in := scan("t", "a", "b")
	// Reorder + rename keeps the property on the moved position.
	proj := &plan.Project{Input: in, Items: []plan.ProjItem{
		{Expr: ref("t", "b"), Name: "x", Type: sqltypes.Int},
		{Expr: ref("t", "a"), Name: "y", Type: sqltypes.Int},
	}}
	if p := a.Infer(proj); !p.Equal(Hash(1)) {
		t.Errorf("reorder: %v", p)
	}
	// Computing over the routing column breaks the property.
	comp := &plan.Project{Input: in, Items: []plan.ProjItem{
		{Expr: &ast.BinaryExpr{Op: "+", L: ref("t", "a"), R: ref("t", "b")}, Name: "s", Type: sqltypes.Int},
	}}
	if p := a.Infer(comp); p.Kind != KindUnknown {
		t.Errorf("computed routing col: %v", p)
	}
	// Dropping the routing column breaks it too.
	drop := &plan.Project{Input: in, Items: []plan.ProjItem{
		{Expr: ref("t", "b"), Name: "b", Type: sqltypes.Int},
	}}
	if p := a.Infer(drop); p.Kind != KindUnknown {
		t.Errorf("dropped routing col: %v", p)
	}
}

func TestInnerJoinElision(t *testing.T) {
	td := fakeDist{"l": {dc: 0, parts: 4}, "r": {dc: 1, parts: 4}}
	a, ds := analysis(4, td)
	j := &plan.Join{
		Type:  ast.InnerJoin,
		Left:  scan("l", "a", "b"),
		Right: scan("r", "c", "d"),
		On:    eqExpr(ref("l", "a"), ref("r", "d")),
	}
	p := a.Infer(j)
	if !p.Equal(Hash(0)) {
		t.Errorf("join output: %v", p)
	}
	if len(*ds) != 2 {
		t.Fatalf("decisions: %d", len(*ds))
	}
	for _, d := range *ds {
		if !d.Licensed {
			t.Errorf("%v should be licensed", d.Exch)
		}
	}
	// Swap the distribution column of the right table: keys no longer
	// line up with the layout, right side must shuffle.
	td["r"] = struct{ dc, parts int }{dc: 0, parts: 4}
	a2, ds2 := analysis(4, td)
	a2.Infer(j)
	for _, d := range *ds2 {
		if d.Exch == JoinRight && d.Licensed {
			t.Error("right side distributed on the wrong column must not elide")
		}
		if d.Exch == JoinLeft && !d.Licensed {
			t.Error("left side is still co-partitioned")
		}
	}
}

func TestJoinKeyOrderSensitivity(t *testing.T) {
	// Two-key join: a side hashed on (a,b) does not license a (b,a)
	// key order.
	a, ds := analysis(4, nil)
	a.Slots = map[string]Property{"l": Hash(0, 1), "r": Hash(0, 1)}
	l := &plan.NamedResult{Name: "l", Cols: cols("l", "a", "b")}
	r := &plan.NamedResult{Name: "r", Cols: cols("r", "c", "d")}
	swapped := &plan.Join{Type: ast.InnerJoin, Left: l, Right: r,
		On: &ast.BinaryExpr{Op: "AND",
			L: eqExpr(ref("l", "b"), ref("r", "d")),
			R: eqExpr(ref("l", "a"), ref("r", "c"))}}
	a.Infer(swapped)
	for _, d := range *ds {
		if d.Licensed {
			t.Errorf("%v licensed across incompatible key order", d.Exch)
		}
	}
	aligned := &plan.Join{Type: ast.InnerJoin, Left: l, Right: r,
		On: &ast.BinaryExpr{Op: "AND",
			L: eqExpr(ref("l", "a"), ref("r", "c")),
			R: eqExpr(ref("l", "b"), ref("r", "d"))}}
	a2, ds2 := analysis(4, nil)
	a2.Slots = a.Slots
	a2.Infer(aligned)
	for _, d := range *ds2 {
		if !d.Licensed {
			t.Errorf("%v should license matching key order", d.Exch)
		}
	}
}

func TestLeftJoinCaveatUpgrade(t *testing.T) {
	// Mirror of the PR-VS shape: PageRank LEFT JOIN edges ON
	// node = dst, then INNER JOIN status ON status.node = dst, then
	// GROUP BY PageRank.node. The LEFT join only caveats node~dst;
	// the inner join proves dst non-NULL, upgrading it, so the
	// aggregate input (distributed on node via the left scan) is
	// groupable in place.
	td := fakeDist{"pagerank": {dc: 0, parts: 4}, "edges": {dc: -1, parts: 4}, "status": {dc: 0, parts: 4}}
	a, ds := analysis(4, td)
	j1 := &plan.Join{Type: ast.LeftJoin,
		Left:  scan("pagerank", "node", "rank"),
		Right: scan("edges", "src", "dst"),
		On:    eqExpr(ref("pagerank", "node"), ref("edges", "dst")),
	}
	j2 := &plan.Join{Type: ast.InnerJoin,
		Left:  j1,
		Right: scan("status", "node", "status"),
		On:    eqExpr(ref("status", "node"), ref("edges", "dst")),
	}
	agg := &plan.Aggregate{
		Input:   j2,
		GroupBy: []ast.Expr{ref("pagerank", "node")},
		Types:   []sqltypes.Type{sqltypes.Int},
		Aggs:    []plan.AggSpec{{Name: "COUNT", Star: true, OutName: "a0", Type: sqltypes.Int}},
	}
	p := a.Infer(agg)
	if !p.Equal(Hash(0)) {
		t.Errorf("aggregate output: %v", p)
	}
	var aggDecision *Decision
	for i := range *ds {
		if (*ds)[i].Exch == AggregateInput {
			aggDecision = &(*ds)[i]
		}
	}
	if aggDecision == nil || !aggDecision.Licensed {
		t.Fatalf("aggregate input should be elidable after caveat upgrade: %+v", aggDecision)
	}

	// Without the inner join the caveat never upgrades: grouping by
	// node over a relation distributed on... node is fine, but
	// grouping by dst is not.
	aggWeak := &plan.Aggregate{
		Input:   j1,
		GroupBy: []ast.Expr{ref("edges", "dst")},
		Types:   []sqltypes.Type{sqltypes.Int},
		Aggs:    []plan.AggSpec{{Name: "COUNT", Star: true, OutName: "a0", Type: sqltypes.Int}},
	}
	a2, ds2 := analysis(4, td)
	a2.Infer(aggWeak)
	for _, d := range *ds2 {
		if d.Exch == AggregateInput && d.Licensed {
			t.Error("ungated caveat must not license elision")
		}
	}
}

func TestAggregateSubsetRule(t *testing.T) {
	// Input hashed on one column, grouped by that column plus another:
	// co-location follows from the subset rule.
	a, ds := analysis(4, nil)
	a.Slots = map[string]Property{"t": Hash(0)}
	in := &plan.NamedResult{Name: "t", Cols: cols("t", "a", "b")}
	agg := &plan.Aggregate{
		Input:   in,
		GroupBy: []ast.Expr{ref("t", "b"), ref("t", "a")},
		Types:   []sqltypes.Type{sqltypes.Int, sqltypes.Int},
		Aggs:    []plan.AggSpec{{Name: "COUNT", Star: true, OutName: "a0", Type: sqltypes.Int}},
	}
	if p := a.Infer(agg); !p.Equal(Hash(0, 1)) {
		t.Errorf("grouped output should be hashed on the group tuple: %v", p)
	}
	if len(*ds) != 1 || !(*ds)[0].Licensed {
		t.Fatalf("subset rule should license: %+v", *ds)
	}
	// Reverse containment does not hold: input hashed on a column
	// that is not a group column must shuffle.
	a2, ds2 := analysis(4, nil)
	a2.Slots = map[string]Property{"t": Hash(1)}
	agg2 := &plan.Aggregate{
		Input:   in,
		GroupBy: []ast.Expr{ref("t", "a")},
		Types:   []sqltypes.Type{sqltypes.Int},
		Aggs:    []plan.AggSpec{{Name: "COUNT", Star: true, OutName: "a0", Type: sqltypes.Int}},
	}
	a2.Infer(agg2)
	if len(*ds2) != 1 || (*ds2)[0].Licensed {
		t.Fatalf("non-group routing column must not license: %+v", *ds2)
	}
}

func TestDistinctElision(t *testing.T) {
	a, ds := analysis(4, nil)
	a.Slots = map[string]Property{"t": Hash(0, 1)}
	in := &plan.NamedResult{Name: "t", Cols: cols("t", "a", "b")}
	d := &plan.Distinct{Input: in}
	if p := a.Infer(d); !p.Equal(Hash(0, 1)) {
		t.Errorf("distinct output: %v", p)
	}
	if len(*ds) != 1 || !(*ds)[0].Licensed {
		t.Fatalf("full-row distributed input should elide: %+v", *ds)
	}
	// Partial-row distribution is not enough.
	a2, ds2 := analysis(4, nil)
	a2.Slots = map[string]Property{"t": Hash(0)}
	a2.Infer(d)
	if (*ds2)[0].Licensed {
		t.Error("hash(a) input must still run the full-row exchange")
	}
}

func TestUnionMeet(t *testing.T) {
	a, _ := analysis(4, nil)
	a.Slots = map[string]Property{"x": Hash(0), "y": Hash(0), "z": Hash(1)}
	x := &plan.NamedResult{Name: "x", Cols: cols("x", "a", "b")}
	y := &plan.NamedResult{Name: "y", Cols: cols("y", "a", "b")}
	z := &plan.NamedResult{Name: "z", Cols: cols("z", "a", "b")}
	if p := a.Infer(&plan.Union{Left: x, Right: y}); !p.Equal(Hash(0)) {
		t.Errorf("agreeing union: %v", p)
	}
	if p := a.Infer(&plan.Union{Left: x, Right: z}); p.Kind != KindUnknown {
		t.Errorf("disagreeing union: %v", p)
	}
}

func TestGatherNodesAreSingleton(t *testing.T) {
	td := fakeDist{"t": {dc: 0, parts: 4}}
	a, _ := analysis(4, td)
	in := scan("t", "a", "b")
	for _, n := range []plan.Node{
		&plan.Sort{Input: in, Keys: []plan.SortKey{{Col: 0}}},
		&plan.Limit{Input: in, N: 5},
		&plan.TopN{Input: in, Keys: []plan.SortKey{{Col: 0}}, N: 5},
		&plan.OneRow{},
		&plan.ValuesNode{Cols: cols("v", "a")},
		&plan.EmptyNode{Cols: cols("e", "a")},
	} {
		if p := a.Infer(n); p.Kind != KindSingleton {
			t.Errorf("%T: %v", n, p)
		}
	}
	// Trim keeps the layout when the routing columns survive.
	if p := a.Infer(&plan.Trim{Input: in, Keep: 1}); !p.Equal(Hash(0)) {
		t.Errorf("trim keeping routing col: %v", p)
	}
	td["t"] = struct{ dc, parts int }{dc: 1, parts: 4}
	if p := a.Infer(&plan.Trim{Input: in, Keep: 1}); p.Kind != KindUnknown {
		t.Errorf("trim dropping routing col: %v", p)
	}
}
