package verify

import (
	"strings"
	"testing"

	"dbspinner/internal/converge"
	"dbspinner/internal/core"
)

// unknownQuery rewrites to an Unknown termination verdict: a Data
// condition nothing forces the CTE to satisfy.
const unknownQuery = `WITH ITERATIVE c (i) AS (
	SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL ANY (i >= 4)
) SELECT i FROM c`

func rewriteQuery(t *testing.T, sql string) (*core.Program, *core.LoopState) {
	t.Helper()
	stmt := parseStmt(t, sql)
	prog, err := core.Rewrite(stmt, newRT(t), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range prog.Steps {
		if l, ok := s.(*core.LoopStep); ok {
			return prog, l.Loop
		}
	}
	t.Fatal("rewritten program has no loop step")
	return nil, nil
}

func classDiags(diags []Diagnostic, class string) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Class == class {
			out = append(out, d)
		}
	}
	return out
}

func TestHonestUnknownVerdictWithGuardVerifiesClean(t *testing.T) {
	prog, loop := rewriteQuery(t, unknownQuery)
	if loop.Cap <= 0 {
		t.Fatal("rewrite did not install a cap on the Unknown loop")
	}
	stmt := parseStmt(t, unknownQuery)
	if diags := Check(prog, stmt); len(diags) != 0 {
		t.Fatalf("honest Unknown program rejected: %v", diags)
	}
}

func TestFabricatedVerdictFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	if len(prog.Verdicts) != 1 || prog.Verdicts[0].Kind != converge.Unknown {
		t.Fatalf("expected one Unknown verdict, got %+v", prog.Verdicts)
	}
	// A planner bug (or a tampered plan cache) claims the loop provably
	// terminates. The re-derivation must not believe it.
	prog.Verdicts[0].Kind = converge.Terminates
	prog.Verdicts[0].Diags = nil

	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassUnsoundTermination)
	if len(diags) != 1 {
		t.Fatalf("fabricated Terminates verdict not rejected: %v", diags)
	}
	if !strings.Contains(diags[0].Message, "Terminates") || !strings.Contains(diags[0].Message, "Unknown") {
		t.Errorf("diagnostic should name both the claim and the re-derived verdict: %s", diags[0].Message)
	}
}

func TestFabricatedConvergesClaimFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	prog.Verdicts[0].Kind = converge.Converges
	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassUnsoundTermination)
	if len(diags) != 1 {
		t.Fatalf("fabricated Converges verdict not rejected: %v", diags)
	}
}

func TestTighterThanProvableBoundFailsClosed(t *testing.T) {
	const sql = `WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL 5 ITERATIONS) SELECT i FROM c`
	prog, _ := rewriteQuery(t, sql)
	if prog.Verdicts[0].Kind != converge.Terminates || prog.Verdicts[0].Bound != 5 {
		t.Fatalf("expected Terminates(5), got %+v", prog.Verdicts[0])
	}
	prog.Verdicts[0].Bound = 3 // tighter than the provable 5
	diags := classDiags(Check(prog, parseStmt(t, sql)), ClassUnsoundTermination)
	if len(diags) != 1 {
		t.Fatalf("fabricated tighter bound not rejected: %v", diags)
	}
	if !strings.Contains(diags[0].Message, "bound 3") {
		t.Errorf("diagnostic should cite the claimed bound: %s", diags[0].Message)
	}
}

func TestStrippedGuardFailsClosed(t *testing.T) {
	prog, loop := rewriteQuery(t, unknownQuery)
	loop.Cap = 0 // an optimizer pass "lost" the guard
	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassMissingGuard)
	if len(diags) != 1 {
		t.Fatalf("guardless Unknown loop not rejected: %v", diags)
	}
	if !strings.Contains(diags[0].Message, "no iteration-cap guard") {
		t.Errorf("unexpected diagnostic wording: %s", diags[0].Message)
	}
}

func TestProvedLoopNeedsNoGuard(t *testing.T) {
	const sql = `WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL 5 ITERATIONS) SELECT i FROM c`
	prog, loop := rewriteQuery(t, sql)
	if loop.Cap != 0 {
		t.Fatalf("provably terminating loop should carry no cap, has %d", loop.Cap)
	}
	if diags := Check(prog, parseStmt(t, sql)); len(diags) != 0 {
		t.Fatalf("proved loop without guard rejected: %v", diags)
	}
}

func TestNilStatementSkipsTerminationCheck(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	prog.Verdicts[0].Kind = converge.Terminates // would fail with the stmt
	if diags := Check(prog, nil); len(diags) != 0 {
		t.Fatalf("nil-stmt check should skip termination re-derivation: %v", diags)
	}
}
