package verify

// Seeded-mutant tests for the checkpoint re-derivation: each test
// rewrites a real iterative query (so prog.Checkpoints is the record
// the retry driver would actually trust), tampers with it the way a
// stale plan cache or a buggy rewrite pass would, and checks the
// verifier fails closed with the right class.

import (
	"strings"
	"testing"

	"dbspinner/internal/core"
)

func TestRewrittenProgramRecordsCheckpoints(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	loops := 0
	for _, s := range prog.Steps {
		if _, ok := s.(*core.LoopStep); ok {
			loops++
		}
	}
	if loops == 0 {
		t.Fatal("test premise: query must compile to at least one loop step")
	}
	if len(prog.Checkpoints) != loops {
		t.Fatalf("rewrite recorded %d checkpoint specs for %d loops", len(prog.Checkpoints), loops)
	}
	if len(prog.Checkpoints[0].Slots) == 0 {
		t.Fatal("checkpoint spec covers no slots; the body certainly writes some")
	}
	if diags := Check(prog, parseStmt(t, unknownQuery)); len(diags) != 0 {
		t.Fatalf("honest program rejected: %v", diags)
	}
}

func TestMissingCheckpointSpecFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	prog.Checkpoints = nil // the retry driver would capture at pc 0 only
	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassStaleCheckpoint)
	if len(diags) == 0 || !strings.Contains(diags[0].Message, "no checkpoint spec") {
		t.Fatalf("missing checkpoint spec not rejected: %v", diags)
	}
}

func TestDroppedSlotFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	// A "leaner" spec drops a covered slot — exactly the stale record
	// that would let a retry restore a partial snapshot.
	tampered := -1
	for i := range prog.Checkpoints {
		if n := len(prog.Checkpoints[i].Slots); n > 0 {
			prog.Checkpoints[i].Slots = prog.Checkpoints[i].Slots[:n-1]
			tampered = i
			break
		}
	}
	if tampered < 0 {
		t.Fatal("no checkpoint spec with slots to tamper with")
	}
	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassStaleCheckpoint)
	if len(diags) == 0 {
		t.Fatal("dropped checkpoint slot not rejected")
	}
	if diags[0].Step != prog.Checkpoints[tampered].Loop || !strings.Contains(diags[0].Message, "omits slots") {
		t.Errorf("diagnostic should cite the tampered loop's missing slot: %v", diags[0])
	}
}

func TestDroppedLoopSlotFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	tampered := false
	for i := range prog.Checkpoints {
		if len(prog.Checkpoints[i].LoopSlots) > 0 {
			prog.Checkpoints[i].LoopSlots = nil
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no checkpoint spec with loop slots to tamper with")
	}
	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassStaleCheckpoint)
	if len(diags) == 0 || !strings.Contains(diags[0].Message, "omits loop slots") {
		t.Fatalf("dropped loop slot not rejected: %v", diags)
	}
}

func TestSpecOnNonLoopStepFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	// Re-point a spec at a non-loop step: the recorded back-edge does
	// not exist, so a retry would restart from the wrong frame.
	moved := false
	for i := range prog.Checkpoints {
		for s := range prog.Steps {
			if _, isLoop := prog.Steps[s].(*core.LoopStep); !isLoop {
				prog.Checkpoints[i].Loop = s + 1
				moved = true
				break
			}
		}
		break
	}
	if !moved {
		t.Fatal("no non-loop step to re-point the spec at")
	}
	diags := Check(prog, parseStmt(t, unknownQuery))
	if len(classDiags(diags, ClassUnsafeRetry)) == 0 {
		t.Fatalf("spec on a non-loop step not rejected as unsafe-retry: %v", diags)
	}
	// The loop the spec abandoned is now uncovered too.
	if len(classDiags(diags, ClassStaleCheckpoint)) == 0 {
		t.Fatalf("orphaned loop not rejected as stale-checkpoint: %v", diags)
	}
}

func TestSpecOutsideProgramFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	prog.Checkpoints[0].Loop = len(prog.Steps) + 7
	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassUnsafeRetry)
	if len(diags) == 0 || !strings.Contains(diags[0].Message, "outside the program") {
		t.Fatalf("out-of-range spec not rejected: %v", diags)
	}
}

func TestWrongBodyStartFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	prog.Checkpoints[0].Body++ // spec claims a narrower retried range
	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassUnsafeRetry)
	if len(diags) == 0 {
		t.Fatal("wrong body start not rejected")
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "body start") || strings.Contains(d.Message, "loop jumps to") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diagnostic should cite the body-start disagreement: %v", diags)
	}
}

func TestDuplicateSpecFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	prog.Checkpoints = append(prog.Checkpoints, prog.Checkpoints[0])
	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassUnsafeRetry)
	if len(diags) == 0 || !strings.Contains(diags[0].Message, "more than one checkpoint spec") {
		t.Fatalf("duplicate checkpoint spec not rejected: %v", diags)
	}
}

func TestHandBuiltProgramSkipsCheckpointCheck(t *testing.T) {
	prog, _ := validProgram()
	if diags := checkCheckpoints(prog); len(diags) != 0 {
		t.Fatalf("hand-built program must be skipped: %v", diags)
	}
}
