package verify

import (
	"fmt"
	"strings"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/catalog"
	"dbspinner/internal/core"
	"dbspinner/internal/exec"
	"dbspinner/internal/parser"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

// ---------------------------------------------------------------------
// Program construction helpers
// ---------------------------------------------------------------------

func intCols(names ...string) []plan.ColInfo {
	out := make([]plan.ColInfo, len(names))
	for i, n := range names {
		out[i] = plan.ColInfo{Name: n, Type: sqltypes.Int}
	}
	return out
}

// result reads a named intermediate result with int columns.
func result(name string, cols ...string) *plan.NamedResult {
	return &plan.NamedResult{Name: name, Alias: name, Cols: intCols(cols...)}
}

// scan reads a base table with int columns.
func scan(table string, cols ...string) *plan.Scan {
	return &plan.Scan{Table: table, Alias: table, Cols: intCols(cols...)}
}

func metaLoop(cte string, n int64) *core.LoopState {
	return &core.LoopState{Term: ast.Termination{Type: ast.TermMetadata, N: n}, CTEName: cte}
}

// validProgram is the canonical rename-path program of Table I:
//
//	Step 1: Materialize t           (R0)
//	Step 2: Initialize loop
//	Step 3: Materialize Intermediate#t   (Ri)  <- body start
//	Step 4: Rename Intermediate#t to t
//	Step 5: Increment loop counter
//	Step 6: Loop back to step 3
//	Final:  read t
func validProgram() (*core.Program, *core.LoopState) {
	loop := metaLoop("t", 3)
	prog := &core.Program{
		Parts: 1,
		Steps: []core.Step{
			&core.MaterializeStep{Into: "t", Plan: scan("edges", "k", "v"), Parts: 1, CheckKey: -1},
			&core.InitLoopStep{Loop: loop, Key: 0},
			&core.MaterializeStep{Into: "Intermediate#t", Plan: result("t", "k", "v"), Parts: 1, CheckKey: -1, CountsAsUpdate: true},
			&core.RenameStep{From: "Intermediate#t", To: "t"},
			&core.UpdateLoopStep{Loop: loop},
			&core.LoopStep{Loop: loop, BodyStart: 2},
		},
		Final: result("t", "k", "v"),
	}
	return prog, loop
}

// mergeProgram is the merge-path variant (Algorithm 1 lines 8-10).
func mergeProgram(key int) *core.Program {
	loop := metaLoop("t", 3)
	return &core.Program{
		Parts: 1,
		Steps: []core.Step{
			&core.MaterializeStep{Into: "t", Plan: scan("edges", "k", "v"), Parts: 1, CheckKey: -1},
			&core.InitLoopStep{Loop: loop, Key: 0},
			&core.MaterializeStep{Into: "Intermediate#t", Plan: result("t", "k", "v"), Parts: 1, CheckKey: -1, CountsAsUpdate: true},
			&core.MergeStep{CTE: "t", Work: "Intermediate#t", Into: "Merge#t", Key: key, Parts: 1},
			&core.RenameStep{From: "Merge#t", To: "t"},
			&core.TruncateStep{Name: "Intermediate#t"},
			&core.UpdateLoopStep{Loop: loop},
			&core.LoopStep{Loop: loop, BodyStart: 2},
		},
		Final: result("t", "k", "v"),
	}
}

// ---------------------------------------------------------------------
// Valid programs pass
// ---------------------------------------------------------------------

func TestValidRenamePathProgramVerifiesClean(t *testing.T) {
	prog, _ := validProgram()
	if diags := Check(prog, nil); len(diags) != 0 {
		t.Fatalf("valid program rejected: %v", diags)
	}
}

func TestValidMergePathProgramVerifiesClean(t *testing.T) {
	if diags := Check(mergeProgram(0), nil); len(diags) != 0 {
		t.Fatalf("valid merge program rejected: %v", diags)
	}
}

// deltaProgram is the merge path with delta iteration: the working
// table comes from a DeltaMaterializeStep whose restricted plan reads
// the transient frontier DeltaIn#t, and the merge publishes Delta#t.
func deltaProgram() (*core.Program, *core.DeltaMaterializeStep, *core.MergeStep) {
	loop := metaLoop("t", 3)
	dm := &core.DeltaMaterializeStep{
		Into: "Intermediate#t",
		Full: result("t", "k", "v"), Restricted: result("DeltaIn#t", "k", "v"),
		DeltaIn: "DeltaIn#t", CTE: "t", Delta: "Delta#t",
		Loop: loop, Key: 0, Parts: 1,
	}
	merge := &core.MergeStep{CTE: "t", Work: "Intermediate#t", Into: "Merge#t",
		Key: 0, Parts: 1, Loop: loop, Delta: "Delta#t"}
	prog := &core.Program{
		Parts: 1,
		Steps: []core.Step{
			&core.MaterializeStep{Into: "t", Plan: scan("edges", "k", "v"), Parts: 1, CheckKey: -1},
			&core.InitLoopStep{Loop: loop, Key: 0},
			dm,
			merge,
			&core.RenameStep{From: "Merge#t", To: "t"},
			&core.TruncateStep{Name: "Intermediate#t"},
			&core.UpdateLoopStep{Loop: loop},
			&core.LoopStep{Loop: loop, BodyStart: 2},
		},
		Final: result("t", "k", "v"),
	}
	return prog, dm, merge
}

func TestValidDeltaProgramVerifiesClean(t *testing.T) {
	prog, _, _ := deltaProgram()
	if diags := Check(prog, nil); len(diags) != 0 {
		t.Fatalf("valid delta program rejected: %v", diags)
	}
}

// TestRejectsCorruptedDeltaPrograms: one constructor per delta
// invariant, mirroring TestRejectsCorruptedPrograms.
func TestRejectsCorruptedDeltaPrograms(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *core.Program
		class   string
		message string
	}{
		{
			name: "merge does not publish the delta table",
			build: func() *core.Program {
				prog, _, merge := deltaProgram()
				merge.Delta = ""
				return prog
			},
			class: ClassDeltaLiveness, message: "no later merge",
		},
		{
			name: "merge publishes a differently named delta table",
			build: func() *core.Program {
				prog, _, merge := deltaProgram()
				merge.Delta = "Delta#other"
				return prog
			},
			class: ClassDeltaLiveness, message: "Delta#t",
		},
		{
			name: "merge publishes a delta without a loop state",
			build: func() *core.Program {
				prog, _, merge := deltaProgram()
				merge.Loop = nil
				return prog
			},
			class: ClassDeltaLiveness, message: "without a loop state",
		},
		{
			name: "published delta has no restricted consumer",
			build: func() *core.Program {
				prog, _, _ := deltaProgram()
				// Replace the delta materialization with a plain one; the
				// merge still publishes Delta#t for nobody.
				prog.Steps[2] = &core.MaterializeStep{Into: "Intermediate#t",
					Plan: result("t", "k", "v"), Parts: 1, CheckKey: -1}
				return prog
			},
			class: ClassDeltaLiveness, message: "no restricted materialization consumes",
		},
		{
			name: "restricted materialization without a loop state",
			build: func() *core.Program {
				prog, dm, _ := deltaProgram()
				dm.Loop = nil
				return prog
			},
			class: ClassUnsafeDelta, message: "no loop state",
		},
		{
			name: "restricted plan ignores the frontier",
			build: func() *core.Program {
				prog, dm, _ := deltaProgram()
				dm.Restricted = result("t", "k", "v") // reads the full CTE
				return prog
			},
			class: ClassUnsafeDelta, message: "vacuous",
		},
		{
			name: "restricted plan is not the substituted full plan",
			build: func() *core.Program {
				prog, dm, _ := deltaProgram()
				// Full never reads the CTE at all, so no single-occurrence
				// substitution can produce the restricted plan.
				dm.Full = scan("edges", "k", "v")
				return prog
			},
			class: ClassUnsafeDelta, message: "never reads t",
		},
		{
			name: "full and restricted plans disagree on schema",
			build: func() *core.Program {
				prog, dm, _ := deltaProgram()
				dm.Restricted = &plan.NamedResult{Name: "DeltaIn#t", Alias: "DeltaIn#t",
					Cols: intCols("k", "v", "extra")}
				return prog
			},
			class: ClassSchemaMismatch, message: "disagree",
		},
		{
			name: "delta key outside the CTE schema",
			build: func() *core.Program {
				prog, dm, _ := deltaProgram()
				dm.Key = 9
				return prog
			},
			class: ClassBadKey, message: "key column 9",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := Check(tc.build(), nil)
			found := false
			for _, d := range diags {
				if d.Class == tc.class && strings.Contains(d.Message, tc.message) {
					found = true
				}
			}
			if !found {
				t.Errorf("no %s diagnostic containing %q; got %v", tc.class, tc.message, diags)
			}
		})
	}
}

// ---------------------------------------------------------------------
// Corrupted programs are rejected (one constructor per class)
// ---------------------------------------------------------------------

func TestRejectsCorruptedPrograms(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *core.Program
		class   string
		step    int // expected 1-based step index of the first diagnostic of class (0: program-level)
		message string
	}{
		{
			name: "jump target outside the program",
			build: func() *core.Program {
				prog, loop := validProgram()
				prog.Steps[5] = &core.LoopStep{Loop: loop, BodyStart: 99}
				return prog
			},
			class: ClassBadJump, step: 6, message: "outside",
		},
		{
			name: "jump target is not backward",
			build: func() *core.Program {
				prog, loop := validProgram()
				prog.Steps[5] = &core.LoopStep{Loop: loop, BodyStart: 5}
				return prog
			},
			class: ClassBadJump, step: 6, message: "not a backward jump",
		},
		{
			name: "jump target re-executes the loop initialization",
			build: func() *core.Program {
				prog, loop := validProgram()
				prog.Steps[5] = &core.LoopStep{Loop: loop, BodyStart: 1}
				return prog
			},
			class: ClassBadJump, step: 6, message: "re-executes the loop initialization",
		},
		{
			name: "loop counter never initialized",
			build: func() *core.Program {
				prog, loop := validProgram()
				prog.Steps[1] = &core.UpdateLoopStep{Loop: loop} // overwrite InitLoopStep
				return prog
			},
			class: ClassBadJump, step: 6, message: "initializes",
		},
		{
			name: "step consumes a result never materialized",
			build: func() *core.Program {
				prog, _ := validProgram()
				prog.Steps[2] = &core.MaterializeStep{Into: "Intermediate#t", Plan: result("ghost", "k", "v"), Parts: 1, CheckKey: -1}
				return prog
			},
			class: ClassUseBeforeMaterialize, step: 3, message: "ghost",
		},
		{
			name: "rename consumes a result never materialized",
			build: func() *core.Program {
				prog, _ := validProgram()
				prog.Steps[3] = &core.RenameStep{From: "ghost", To: "t"}
				return prog
			},
			class: ClassUseBeforeMaterialize, step: 4, message: "ghost",
		},
		{
			name: "rename replaces a result with an incompatible schema",
			build: func() *core.Program {
				prog, _ := validProgram()
				prog.Steps[2] = &core.MaterializeStep{Into: "Intermediate#t", Plan: scan("edges", "a", "b", "c"), Parts: 1, CheckKey: -1}
				return prog
			},
			class: ClassSchemaMismatch, step: 4, message: "3 columns",
		},
		{
			name: "rename changes a column's type family",
			build: func() *core.Program {
				prog, _ := validProgram()
				cols := []plan.ColInfo{{Name: "k", Type: sqltypes.Int}, {Name: "v", Type: sqltypes.String}}
				prog.Steps[2] = &core.MaterializeStep{Into: "Intermediate#t", Plan: &plan.Scan{Table: "edges", Alias: "edges", Cols: cols}, Parts: 1, CheckKey: -1}
				return prog
			},
			class: ClassSchemaMismatch, step: 4, message: "VARCHAR",
		},
		{
			name: "data termination reads a dead result",
			build: func() *core.Program {
				prog, loop := validProgram()
				loop.Term = ast.Termination{Type: ast.TermData}
				loop.CondPlan = result("ghost", "matching", "total")
				return prog
			},
			class: ClassDeadTermination, step: 6, message: "ghost",
		},
		{
			name: "delta termination compares a dead result",
			build: func() *core.Program {
				prog, loop := validProgram()
				loop.Term = ast.Termination{Type: ast.TermDelta, N: 1}
				loop.CTEName = "ghost"
				return prog
			},
			class: ClassDeadTermination, step: 2, message: "ghost",
		},
		{
			name: "loop-body result leaks past the program end",
			build: func() *core.Program {
				loop := metaLoop("t", 3)
				return &core.Program{
					Parts: 1,
					Steps: []core.Step{
						&core.MaterializeStep{Into: "t", Plan: scan("edges", "k", "v"), Parts: 1, CheckKey: -1},
						&core.InitLoopStep{Loop: loop, Key: 0},
						&core.MaterializeStep{Into: "Intermediate#t", Plan: result("t", "k", "v"), Parts: 1, CheckKey: -1},
						// The per-iteration scratch result is never renamed,
						// merged or dropped.
						&core.MaterializeStep{Into: "Scratch#t", Plan: result("t", "k", "v"), Parts: 1, CheckKey: -1},
						&core.RenameStep{From: "Intermediate#t", To: "t"},
						&core.UpdateLoopStep{Loop: loop},
						&core.LoopStep{Loop: loop, BodyStart: 2},
					},
					Final: result("t", "k", "v"),
				}
			},
			class: ClassLeak, step: 4, message: "Scratch#t",
		},
		{
			name: "step partition count disagrees with the program",
			build: func() *core.Program {
				prog, _ := validProgram()
				prog.Parts = 2
				return prog
			},
			class: ClassInconsistentParts, step: 1, message: "1 partitions",
		},
		{
			name: "merge key outside the schema",
			build: func() *core.Program {
				return mergeProgram(5)
			},
			class: ClassBadKey, step: 4, message: "key column 5",
		},
		{
			name: "materialize check-key outside the schema",
			build: func() *core.Program {
				prog, _ := validProgram()
				prog.Steps[0] = &core.MaterializeStep{Into: "t", Plan: scan("edges", "k", "v"), Parts: 1, CheckKey: 7}
				return prog
			},
			class: ClassBadKey, step: 1, message: "check-key column 7",
		},
		{
			name: "final query reads a result the steps never leave behind",
			build: func() *core.Program {
				prog, _ := validProgram()
				prog.Final = result("ghost", "k", "v")
				return prog
			},
			class: ClassUseBeforeMaterialize, step: 0, message: "final query",
		},
		{
			name: "unknown step type fails closed",
			build: func() *core.Program {
				prog, _ := validProgram()
				prog.Steps = append(prog.Steps, bogusStep{})
				return prog
			},
			class: ClassUnknownStep, step: 7, message: "unknown to the verifier",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := Check(tc.build(), nil)
			if len(diags) == 0 {
				t.Fatalf("corrupted program verified clean")
			}
			var hit *Diagnostic
			for i := range diags {
				if diags[i].Class == tc.class {
					hit = &diags[i]
					break
				}
			}
			if hit == nil {
				t.Fatalf("no %s diagnostic, got: %v", tc.class, diags)
			}
			if hit.Step != tc.step {
				t.Errorf("diagnostic cites step %d, want %d: %s", hit.Step, tc.step, hit)
			}
			if !strings.Contains(hit.Message, tc.message) {
				t.Errorf("diagnostic %q does not mention %q", hit.Message, tc.message)
			}
		})
	}
}

// bogusStep is a step type internal/verify has never heard of.
type bogusStep struct{}

func (bogusStep) Run(ctx *core.Context, self int) (int, error) { return self + 1, nil }
func (bogusStep) Explain() string                              { return "Bogus." }

// TestSecondIterationFaultDetected: the body renames the CTE away and
// nothing re-materializes it, so the first iteration succeeds and the
// second crashes — only the loop re-entry pass can see it.
func TestSecondIterationFaultDetected(t *testing.T) {
	loop := metaLoop("t", 3)
	prog := &core.Program{
		Parts: 1,
		Steps: []core.Step{
			&core.MaterializeStep{Into: "t", Plan: scan("edges", "k", "v"), Parts: 1, CheckKey: -1},
			&core.InitLoopStep{Loop: loop, Key: 0},
			&core.RenameStep{From: "t", To: "u"},
			&core.UpdateLoopStep{Loop: loop},
			&core.LoopStep{Loop: loop, BodyStart: 2},
		},
		Final: result("u", "k", "v"),
	}
	diags := Check(prog, nil)
	found := false
	for _, d := range diags {
		if d.Class == ClassUseBeforeMaterialize && d.Step == 3 && strings.Contains(d.Message, "re-entry") {
			found = true
		}
	}
	if !found {
		t.Fatalf("second-iteration rename fault not detected: %v", diags)
	}
}

// ---------------------------------------------------------------------
// Push-down re-check
// ---------------------------------------------------------------------

func parseStmt(t *testing.T, sql string) *ast.SelectStmt {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return stmt.(*ast.SelectStmt)
}

const pushQuery = `WITH ITERATIVE c (k, v) AS (
	SELECT src, dst FROM edges
 ITERATE SELECT k, v + 1 FROM c
 UNTIL 3 ITERATIONS)
SELECT k, v FROM c WHERE k = 1`

func TestUnsafePushdownRejected(t *testing.T) {
	cases := []struct {
		name string
		sql  string // "" means no statement available
		conj ast.Expr
		why  string
	}{
		{
			name: "no statement to re-check against",
			conj: &ast.ColumnRef{Name: "k"},
			why:  "no source statement",
		},
		{
			name: "statement has no such iterative CTE",
			sql:  strings.Replace(pushQuery, "ITERATIVE c ", "ITERATIVE d ", 1),
			conj: &ast.ColumnRef{Name: "k"},
			why:  "no iterative CTE",
		},
		{
			name: "updates termination observes per-iteration counts",
			sql:  strings.Replace(pushQuery, "UNTIL 3 ITERATIONS", "UNTIL 3 UPDATES", 1),
			conj: &ast.ColumnRef{Name: "k"},
			why:  "UPDATES",
		},
		{
			name: "data termination observes the filtered rows",
			sql:  strings.Replace(pushQuery, "UNTIL 3 ITERATIONS", "UNTIL ANY (v >= 4)", 1),
			conj: &ast.ColumnRef{Name: "k"},
			why:  "termination condition inspects the CTE data",
		},
		{
			name: "predicate references a varying column",
			sql:  pushQuery,
			conj: &ast.ColumnRef{Name: "v"},
			why:  "rewritten by the iterative part",
		},
		{
			name: "predicate qualifier is not the CTE",
			sql:  pushQuery,
			conj: &ast.ColumnRef{Table: "edges", Name: "src"},
			why:  "does not belong to the CTE",
		},
		{
			name: "iterative part joins another table",
			sql: strings.Replace(pushQuery, "ITERATE SELECT k, v + 1 FROM c",
				"ITERATE SELECT k, MIN(v) FROM c GROUP BY k", 1),
			conj: &ast.ColumnRef{Name: "k"},
			why:  "groups",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, _ := validProgram()
			prog.Pushed = []core.PushedPredicate{{CTE: "c", Conj: tc.conj}}
			var stmt *ast.SelectStmt
			if tc.sql != "" {
				stmt = parseStmt(t, tc.sql)
			}
			diags := Check(prog, stmt)
			var hit *Diagnostic
			for i := range diags {
				if diags[i].Class == ClassUnsafePush {
					hit = &diags[i]
				}
			}
			if hit == nil {
				t.Fatalf("unsafe push not rejected: %v", diags)
			}
			if !strings.Contains(hit.Message, tc.why) {
				t.Errorf("diagnostic %q does not mention %q", hit.Message, tc.why)
			}
		})
	}
}

func TestSafePushdownAccepted(t *testing.T) {
	prog, _ := validProgram()
	prog.Pushed = []core.PushedPredicate{{CTE: "c", Conj: &ast.ColumnRef{Name: "k"}}}
	if diags := Check(prog, parseStmt(t, pushQuery)); len(diags) != 0 {
		t.Fatalf("safe push rejected: %v", diags)
	}
}

// ---------------------------------------------------------------------
// Corpus: everything the real rewrite produces verifies clean
// ---------------------------------------------------------------------

// newRT builds a runtime with the small weighted graph the core tests
// use.
func newRT(t *testing.T) *exec.StoreRuntime {
	t.Helper()
	cat := catalog.New(2)
	edges, err := cat.Create("edges", sqltypes.Schema{
		{Name: "src", Type: sqltypes.Int},
		{Name: "dst", Type: sqltypes.Int},
		{Name: "weight", Type: sqltypes.Float},
	}, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []struct {
		s, d int64
		w    float64
	}{{1, 2, 0.5}, {1, 3, 0.5}, {2, 3, 1.0}, {3, 1, 1.0}} {
		edges.Insert(sqltypes.Row{sqltypes.NewInt(e.s), sqltypes.NewInt(e.d), sqltypes.NewFloat(e.w)})
	}
	return exec.NewStoreRuntime(cat, storage.NewResultStore())
}

func TestRewrittenProgramsVerifyClean(t *testing.T) {
	base := core.DefaultOptions()
	copyBack := base
	copyBack.UseRename = false
	parted := base
	parted.Parts = 2
	delta := base
	delta.DeltaIteration = true
	deltaParted := delta
	deltaParted.Parts = 2

	cases := []struct {
		name string
		sql  string
		opts core.Options
	}{
		{"rename path, iterations", `WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL 5 ITERATIONS) SELECT i FROM c`, base},
		{"copy-back baseline", `WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL 5 ITERATIONS) SELECT i FROM c`, copyBack},
		{"updates termination", `WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL 3 UPDATES) SELECT i FROM c`, base},
		{"data termination", `WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL ANY (i >= 4)) SELECT i FROM c`, base},
		{"delta termination", `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v FROM c UNTIL DELTA < 1) SELECT k, v FROM c`, base},
		{"merge path", `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v + 1 FROM c WHERE k = 1 UNTIL 2 ITERATIONS) SELECT k FROM c`, base},
		{"partitioned", `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v + 1 FROM c UNTIL 2 ITERATIONS) SELECT k FROM c`, parted},
		{"two iterative CTEs", `WITH ITERATIVE a (x) AS (SELECT 1 ITERATE SELECT x * 2 FROM a UNTIL 3 ITERATIONS),
			b (y) AS (SELECT 10 ITERATE SELECT y + 1 FROM b UNTIL 2 ITERATIONS)
			SELECT x, y FROM a, b`, base},
		{"pushdown eligible", `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v + 1 FROM c UNTIL 2 ITERATIONS) SELECT k FROM c WHERE k = 1`, base},
		{"delta iteration, identity route", `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v + 1 FROM c WHERE k = 1 UNTIL 2 ITERATIONS) SELECT k FROM c`, delta},
		{"delta iteration, propagation route", `WITH ITERATIVE s (node, dist) AS (
			SELECT src, src + 0.0 FROM edges
		 ITERATE SELECT s.node, MIN(n.dist + e.weight)
		  FROM s LEFT JOIN edges AS e ON s.node = e.dst
		    LEFT JOIN s AS n ON n.node = e.src
		  WHERE e.weight < 10 GROUP BY s.node
		 UNTIL 2 ITERATIONS) SELECT node FROM s`, delta},
		{"delta iteration, partitioned", `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v + 1 FROM c WHERE k = 1 UNTIL 2 ITERATIONS) SELECT k FROM c`, deltaParted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := newRT(t)
			stmt := parseStmt(t, tc.sql)
			// Options.Verify is on: Rewrite itself runs the registered
			// verifier, so success here is the end-to-end check.
			if !tc.opts.Verify {
				t.Fatal("corpus must run with verification enabled")
			}
			prog, err := core.Rewrite(stmt, rt, tc.opts)
			if err != nil {
				t.Fatalf("rewrite: %v", err)
			}
			// And once more directly, to assert zero diagnostics.
			if diags := Check(prog, stmt); len(diags) != 0 {
				t.Errorf("rewritten program rejected: %v", diags)
			}
			if tc.opts.DeltaIteration {
				found := false
				for _, s := range prog.Steps {
					if _, ok := s.(*core.DeltaMaterializeStep); ok {
						found = true
					}
				}
				if !found {
					t.Error("delta corpus query silently fell back to the full plan")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Premature truncation
// ---------------------------------------------------------------------

// TestRejectsPrematureTruncation: hand-built programs (no optimizer
// involved) where a TruncateStep lands before the result's true last
// use — the exact bug class the liveness-driven truncation pass could
// introduce.
func TestRejectsPrematureTruncation(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *core.Program
		message string
	}{
		{
			name: "final query reads a truncated result",
			build: func() *core.Program {
				prog, _ := validProgram()
				prog.Steps = append(prog.Steps, &core.TruncateStep{Name: "t"})
				return prog
			},
			message: `final query reads result "t" after step 7 truncated it`,
		},
		{
			name: "second iteration reads a result truncated inside the body",
			build: func() *core.Program {
				// The body reads t, truncates it, and produces w; only the
				// loop re-entry pass sees the next iteration's read of t.
				loop := metaLoop("t", 3)
				return &core.Program{
					Parts: 1,
					Steps: []core.Step{
						&core.MaterializeStep{Into: "t", Plan: scan("edges", "k", "v"), Parts: 1, CheckKey: -1},
						&core.InitLoopStep{Loop: loop, Key: 0},
						&core.MaterializeStep{Into: "u", Plan: result("t", "k", "v"), Parts: 1, CheckKey: -1, CountsAsUpdate: true},
						&core.TruncateStep{Name: "t"},
						&core.RenameStep{From: "u", To: "w"},
						&core.UpdateLoopStep{Loop: loop},
						&core.LoopStep{Loop: loop, BodyStart: 2},
					},
					Final: result("w", "k", "v"),
				}
			},
			message: `reads result "t" after step 4 truncated it (on loop re-entry)`,
		},
		{
			name: "termination condition reads a truncated result",
			build: func() *core.Program {
				loop := &core.LoopState{Term: ast.Termination{Type: ast.TermData}, CTEName: "t",
					CondPlan: result("cond", "matching", "total")}
				return &core.Program{
					Parts: 1,
					Steps: []core.Step{
						&core.MaterializeStep{Into: "t", Plan: scan("edges", "k", "v"), Parts: 1, CheckKey: -1},
						&core.MaterializeStep{Into: "cond", Plan: scan("edges", "matching", "total"), Parts: 1, CheckKey: -1},
						&core.InitLoopStep{Loop: loop, Key: 0},
						&core.MaterializeStep{Into: "Intermediate#t", Plan: result("t", "k", "v"), Parts: 1, CheckKey: -1, CountsAsUpdate: true},
						&core.RenameStep{From: "Intermediate#t", To: "t"},
						&core.TruncateStep{Name: "cond"},
						&core.UpdateLoopStep{Loop: loop},
						&core.LoopStep{Loop: loop, BodyStart: 3},
					},
					Final: result("t", "k", "v"),
				}
			},
			message: `termination condition reads result "cond" after step 6 truncated it`,
		},
		{
			name: "delta termination snapshots a truncated result",
			build: func() *core.Program {
				loop := &core.LoopState{Term: ast.Termination{Type: ast.TermDelta, N: 1}, CTEName: "t"}
				return &core.Program{
					Parts: 1,
					Steps: []core.Step{
						&core.MaterializeStep{Into: "t", Plan: scan("edges", "k", "v"), Parts: 1, CheckKey: -1},
						&core.TruncateStep{Name: "t"},
						&core.InitLoopStep{Loop: loop, Key: 0},
						&core.MaterializeStep{Into: "t", Plan: scan("edges", "k", "v"), Parts: 1, CheckKey: -1, CountsAsUpdate: true},
						&core.UpdateLoopStep{Loop: loop},
						&core.LoopStep{Loop: loop, BodyStart: 3},
					},
					Final: result("t", "k", "v"),
				}
			},
			message: `Delta termination snapshots result "t" after step 2 truncated it`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := Check(tc.build(), nil)
			found := false
			for _, d := range diags {
				if d.Class == ClassPrematureTruncate && strings.Contains(d.Message, tc.message) {
					found = true
				}
			}
			if !found {
				t.Errorf("no %s diagnostic containing %q; got %v", ClassPrematureTruncate, tc.message, diags)
			}
		})
	}
}

// ---------------------------------------------------------------------
// Pruned-column use
// ---------------------------------------------------------------------

// pruneProgram hand-builds the program projection pruning would emit
// for pruneQuery if it (wrongly or rightly) materialized c with only
// the given columns.
func pruneProgram(cols ...string) *core.Program {
	loop := metaLoop("c", 3)
	return &core.Program{
		Parts: 1,
		Steps: []core.Step{
			&core.MaterializeStep{Into: "c", Plan: scan("edges", cols...), Parts: 1, CheckKey: -1},
			&core.InitLoopStep{Loop: loop, Key: 0},
			&core.MaterializeStep{Into: "Intermediate#c", Plan: result("c", cols...), Parts: 1, CheckKey: -1, CountsAsUpdate: true},
			&core.RenameStep{From: "Intermediate#c", To: "c"},
			&core.UpdateLoopStep{Loop: loop},
			&core.LoopStep{Loop: loop, BodyStart: 2},
		},
		Final: result("c", cols[0]),
	}
}

// TestRejectsPrunedColumnUse: hand-built programs (no optimizer, no
// internal/dataflow) that drop a column something still observes, for
// both halves of the re-check: the simulation's reader-vs-producer
// schema comparison and the AST re-derivation of liveness.
func TestRejectsPrunedColumnUse(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *core.Program
		sql     string // "" means Check runs without a statement
		message string
	}{
		{
			name: "plan reads a column the materialization does not provide",
			build: func() *core.Program {
				prog, _ := validProgram()
				prog.Steps[2] = &core.MaterializeStep{Into: "Intermediate#t",
					Plan: result("t", "k", "v", "w"), Parts: 1, CheckKey: -1, CountsAsUpdate: true}
				return prog
			},
			message: `materialize Intermediate#t reads column "w" of result "t"`,
		},
		{
			name: "final query reads a column the materialization does not provide",
			build: func() *core.Program {
				prog, _ := validProgram()
				prog.Final = result("t", "k", "v", "w")
				return prog
			},
			message: `final query reads column "w" of result "t"`,
		},
		{
			name:    "pruned column is read by the final query",
			build:   func() *core.Program { return pruneProgram("k") },
			sql:     `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v + 1 FROM c UNTIL 3 ITERATIONS) SELECT k, v FROM c`,
			message: `omits declared column "v", which the final query still reads`,
		},
		{
			name:    "pruned column is read by the iterative part",
			build:   func() *core.Program { return pruneProgram("k") },
			sql:     `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v + 1 FROM c WHERE v > 0 UNTIL 3 ITERATIONS) SELECT k FROM c`,
			message: `omits declared column "v", which the iterative part still reads`,
		},
		{
			name:    "pruning under an UPDATES counter",
			build:   func() *core.Program { return pruneProgram("k") },
			sql:     `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v + 1 FROM c UNTIL 3 UPDATES) SELECT k FROM c`,
			message: "UPDATES counter",
		},
		{
			name:    "pruning under Delta termination",
			build:   func() *core.Program { return pruneProgram("k") },
			sql:     `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v FROM c UNTIL DELTA < 1) SELECT k FROM c`,
			message: "Delta termination, which compares whole rows",
		},
		{
			name:    "first declared column pruned away",
			build:   func() *core.Program { return pruneProgram("v") },
			sql:     `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v + 1 FROM c UNTIL 3 ITERATIONS) SELECT v FROM c`,
			message: `omits its first declared column "k"`,
		},
		{
			name:    "pruned column hidden behind SELECT * in the final query",
			build:   func() *core.Program { return pruneProgram("k") },
			sql:     `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v + 1 FROM c UNTIL 3 ITERATIONS) SELECT * FROM c`,
			message: "selects * so their deadness cannot be proven",
		},
		{
			name: "recorded pruning with no statement to re-check",
			build: func() *core.Program {
				prog, _ := validProgram()
				prog.Dataflow = append(prog.Dataflow, core.DataflowEntry{Result: "t", Live: []string{"k"}, Pruned: []string{"v"}})
				return prog
			},
			message: "no source statement is available",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stmt *ast.SelectStmt
			if tc.sql != "" {
				stmt = parseStmt(t, tc.sql)
			}
			diags := Check(tc.build(), stmt)
			found := false
			for _, d := range diags {
				if d.Class == ClassPrunedColumnUse && strings.Contains(d.Message, tc.message) {
					found = true
				}
			}
			if !found {
				t.Errorf("no %s diagnostic containing %q; got %v", ClassPrunedColumnUse, tc.message, diags)
			}
		})
	}
}

// TestRecordedPruningReverifies: the real optimizer's pruning of a dead
// column is accepted by the independent AST re-derivation.
func TestRecordedPruningReverifies(t *testing.T) {
	sql := `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v + 1 FROM c UNTIL 2 ITERATIONS) SELECT k FROM c`
	stmt := parseStmt(t, sql)
	prog, err := core.Rewrite(stmt, newRT(t), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	narrowed := false
	for _, e := range prog.Dataflow {
		if strings.EqualFold(e.Result, "c") && len(e.Pruned) > 0 {
			narrowed = true
		}
	}
	if !narrowed {
		t.Fatal("optimizer did not prune the dead column")
	}
	if diags := checkPruning(prog, stmt); len(diags) != 0 {
		t.Errorf("recorded pruning rejected by the re-check: %v", diags)
	}
}

// TestRecordedPushdownReverifies: the real optimizer's push on the FF
// query is recorded on the program and accepted by the independent
// re-derivation.
func TestRecordedPushdownReverifies(t *testing.T) {
	sql := `WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v + 1 FROM c UNTIL 2 ITERATIONS) SELECT k FROM c WHERE k = 1`
	stmt := parseStmt(t, sql)
	prog, err := core.Rewrite(stmt, newRT(t), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Pushed) == 0 {
		t.Fatal("optimizer did not push the eligible predicate")
	}
	if diags := checkPushdown(prog, stmt); len(diags) != 0 {
		t.Errorf("recorded push rejected by the re-check: %v", diags)
	}
}

// ---------------------------------------------------------------------
// Explain round trip
// ---------------------------------------------------------------------

// allKindsProgram exercises every step kind in one program: loop A is
// the merge path (materialize, init, merge, rename, truncate), loop B
// the copy-back baseline.
func allKindsProgram() *core.Program {
	loopA := metaLoop("a", 3)
	loopB := metaLoop("b", 2)
	return &core.Program{
		Parts: 1,
		Steps: []core.Step{
			&core.MaterializeStep{Into: "a", Plan: scan("edges", "k", "v"), Parts: 1, CheckKey: -1},
			&core.InitLoopStep{Loop: loopA, Key: 0},
			&core.MaterializeStep{Into: "Intermediate#a", Plan: result("a", "k", "v"), Parts: 1, CheckKey: -1, CountsAsUpdate: true},
			&core.MergeStep{CTE: "a", Work: "Intermediate#a", Into: "Merge#a", Key: 0, Parts: 1},
			&core.RenameStep{From: "Merge#a", To: "a"},
			&core.TruncateStep{Name: "Intermediate#a"},
			&core.UpdateLoopStep{Loop: loopA},
			&core.LoopStep{Loop: loopA, BodyStart: 2},
			&core.MaterializeStep{Into: "b", Plan: scan("edges", "k", "v"), Parts: 1, CheckKey: -1},
			&core.InitLoopStep{Loop: loopB, Key: 0},
			&core.MaterializeStep{Into: "Intermediate#b", Plan: result("b", "k", "v"), Parts: 1, CheckKey: -1, CountsAsUpdate: true},
			&core.CopyBackStep{From: "Intermediate#b", To: "b", Parts: 1, Key: 0},
			&core.UpdateLoopStep{Loop: loopB},
			&core.LoopStep{Loop: loopB, BodyStart: 10},
		},
		Final: result("a", "k", "v"),
	}
}

// TestExplainRoundTrip: every step kind renders in Explain under a
// "Step N:" heading, the clean program verifies clean, and when steps
// are corrupted the diagnostics cite exactly the indices Explain
// prints.
func TestExplainRoundTrip(t *testing.T) {
	prog := allKindsProgram()
	if diags := Check(prog, nil); len(diags) != 0 {
		t.Fatalf("all-kinds program rejected: %v", diags)
	}

	out := prog.Explain()
	for i := range prog.Steps {
		if !strings.Contains(out, fmt.Sprintf("Step %d: ", i+1)) {
			t.Errorf("Explain misses heading for step %d:\n%s", i+1, out)
		}
	}
	for _, want := range []string{
		"Materialize a", "Initialize loop operator", "Merge",
		"Rename Merge#a to a", "Delete tuples from Intermediate#a",
		"Increment loop counter", "Go to step 3", "Go to step 11",
		"Copy Intermediate#b back into b",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain misses %q:\n%s", want, out)
		}
	}

	// Corrupt steps at known positions and match diagnostics to the
	// Explain lines they cite.
	prog = allKindsProgram()
	prog.Steps[4] = &core.RenameStep{From: "ghost", To: "a"}                               // Step 5
	prog.Steps[11] = &core.CopyBackStep{From: "Intermediate#b", To: "b", Parts: 1, Key: 9} // Step 12
	explainLines := map[int]string{}
	for _, line := range strings.Split(prog.Explain(), "\n") {
		var n int
		var rest string
		if c, _ := fmt.Sscanf(line, "Step %d: %s", &n, &rest); c >= 1 {
			explainLines[n] = line
		}
	}
	diags := Check(prog, nil)
	wantVerbs := map[int]string{5: "Rename", 12: "Copy"}
	for step, verb := range wantVerbs {
		found := false
		for _, d := range diags {
			if d.Step == step {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic cites step %d: %v", step, diags)
			continue
		}
		line, ok := explainLines[step]
		if !ok {
			t.Errorf("Explain has no line for step %d", step)
			continue
		}
		if !strings.Contains(line, verb) {
			t.Errorf("Explain step %d is %q, want a %s step", step, line, verb)
		}
	}
}

// TestRewriteSurfacesVerifierError: a program the rewrite would consider
// fine but the verifier rejects surfaces as a Rewrite error (the hook is
// armed by importing this package). Simulated by corrupting through the
// registered function itself.
func TestVerifierErrorAggregates(t *testing.T) {
	prog, loop := validProgram()
	prog.Steps[5] = &core.LoopStep{Loop: loop, BodyStart: 99}
	prog.Final = result("ghost", "k", "v")
	diags := Check(prog, nil)
	if len(diags) < 2 {
		t.Fatalf("want at least 2 diagnostics, got %v", diags)
	}
	err := &Error{Diags: diags}
	msg := err.Error()
	for _, d := range diags {
		if !strings.Contains(msg, d.Class) {
			t.Errorf("aggregated error misses class %s: %s", d.Class, msg)
		}
	}
	if !strings.Contains(msg, "program verification failed") {
		t.Errorf("unexpected error header: %s", msg)
	}
}
