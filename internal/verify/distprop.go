package verify

// Partition-property re-derivation: an independent implementation of
// the static analysis in internal/distprop, checking every recorded
// DistClaim and every licensed shuffle elision of a compiled program.
// The producer infers properties with expression-compiler-based key
// resolution and a union-find equivalence relation; this checker walks
// the same plans with its own dispatch, its own AST key splitter
// (schema-based resolution, no expression compiler) and its own
// equivalence tracking, so a bug in the producer's inference cannot
// hide in an identical re-run. Fail closed throughout: anything this
// pass cannot prove is Unknown, any claim stronger than the re-derived
// property is reported, and any elision the re-derivation does not
// license is reported.

import (
	"fmt"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/core"
	"dbspinner/internal/distprop"
	"dbspinner/internal/plan"
	"dbspinner/internal/storage"
)

const (
	// ClassUnsoundDistProp: a recorded distribution-property claim
	// (core.Program.DistProps) is stronger than what the independent
	// re-derivation of the partition-property analysis can prove — a
	// consumer trusting it (shuffle elision, EXPLAIN) would assume row
	// placement the machine does not guarantee.
	ClassUnsoundDistProp = "unsound-partition-claim"
	// ClassMissingExchange: the program licenses the machine to skip an
	// exchange (core.Program.Elisions) that the independent
	// re-derivation does not prove redundant — running it would consume
	// rows from partitions they provably need not be in.
	ClassMissingExchange = "missing-exchange"
)

// checkDistProps re-derives the partition-property analysis and
// compares it against the program's recorded claims and elisions.
// Programs that never ran the analysis (hand-built) record neither and
// are skipped.
func checkDistProps(prog *core.Program) []Diagnostic {
	if prog.DistProps == nil && prog.Elisions == nil {
		return nil
	}
	d := &distChecker{prog: prog}
	d.td, _ = prog.Lookup.(distprop.TableDist)
	d.run()
	return d.diags
}

type distChecker struct {
	prog  *core.Program
	td    distprop.TableDist
	diags []Diagnostic
	// licensed collects this checker's own elision verdicts, keyed by
	// plan-node identity and exchange: a recorded elision must match
	// one of these exactly.
	licensed map[vExchKey]*vVerdict
}

type vExchKey struct {
	node plan.Node
	exch distprop.Exchange
}

type vVerdict struct {
	cols []int
	ok   bool
}

func (d *distChecker) addDiag(step int, class, format string, args ...any) {
	d.diags = append(d.diags, Diagnostic{Step: step, Class: class, Message: fmt.Sprintf(format, args...)})
}

func (d *distChecker) run() {
	entry, ok := d.fixpoint()
	if !ok {
		// A step kind this checker does not understand: the producer
		// must have claimed nothing (its own transfer fails closed the
		// same way). Any surviving claim or elision is unsound.
		for _, c := range d.prog.DistProps {
			if c.Prop.Kind != distprop.KindUnknown {
				d.addDiag(c.Step, ClassUnsoundDistProp,
					"property %s claimed in a program with unanalyzable steps", c.Prop)
			}
		}
		for _, el := range d.prog.Elisions {
			d.addDiag(el.Step, ClassMissingExchange,
				"%s elided in a program with unanalyzable steps", el.Exch)
		}
		return
	}

	d.licensed = make(map[vExchKey]*vVerdict)
	derived := make(map[int]vRes) // step (1-based; 0 = final) -> re-derived slot result
	slots := make(map[int]string)
	for i, s := range d.prog.Steps {
		st := entry[i]
		if st == nil {
			continue
		}
		switch t := s.(type) {
		case *core.MaterializeStep:
			derived[i+1] = d.infer(st, t.Plan)
			slots[i+1] = t.Into
		case *core.DeltaMaterializeStep:
			derived[i+1] = d.deltaResult(st, t)
			slots[i+1] = t.Into
		case *core.MaintainAggStep:
			derived[i+1] = d.maintainResult(st, t)
			slots[i+1] = t.Into
		case *core.RenameStep:
			derived[i+1] = vRes{prop: st[normSlot(t.From)]}
			slots[i+1] = t.To
		case *core.CopyBackStep:
			derived[i+1] = vRes{prop: distprop.Hash(0)}
			slots[i+1] = t.To
		case *core.MergeStep:
			derived[i+1] = vRes{prop: distprop.Hash(0)}
			slots[i+1] = t.Into
		}
	}
	if d.prog.Final != nil && entry[len(d.prog.Steps)] != nil {
		derived[0] = d.infer(entry[len(d.prog.Steps)], d.prog.Final)
	}

	for _, c := range d.prog.DistProps {
		if c.Prop.Kind == distprop.KindUnknown {
			continue // claiming nothing is always sound
		}
		dr, have := derived[c.Step]
		if !have {
			d.addDiag(c.Step, ClassUnsoundDistProp,
				"property %s claimed for a step that binds no result", c.Prop)
			continue
		}
		if c.Step != 0 && normSlot(c.Slot) != normSlot(slots[c.Step]) {
			d.addDiag(c.Step, ClassUnsoundDistProp,
				"claim names slot %q but the step binds %q", c.Slot, slots[c.Step])
			continue
		}
		if !dr.satisfies(c.Prop) {
			d.addDiag(c.Step, ClassUnsoundDistProp,
				"claimed %s, re-derivation proves only %s", c.Prop, dr.prop)
		}
	}

	shuffles := d.prog.Parallel && d.prog.Parts > 1
	for _, el := range d.prog.Elisions {
		if !shuffles {
			d.addDiag(el.Step, ClassMissingExchange,
				"%s elided but the program does not shuffle (parallel=%v parts=%d)",
				el.Exch, d.prog.Parallel, d.prog.Parts)
			continue
		}
		v := d.licensed[vExchKey{node: el.Node, exch: el.Exch}]
		if v == nil || !v.ok {
			d.addDiag(el.Step, ClassMissingExchange,
				"%s elided on cols %v but the re-derivation does not prove the input co-partitioned", el.Exch, el.Cols)
			continue
		}
		if !equalCols(v.cols, el.Cols) {
			d.addDiag(el.Step, ClassMissingExchange,
				"%s elided on cols %v but the re-derivation licenses only cols %v", el.Exch, el.Cols, v.cols)
		}
	}
}

// note records this checker's verdict for one exchange, with the same
// conflict rule the producer uses: a node reached through more than one
// inference context stays licensed only if every context agrees.
func (d *distChecker) note(n plan.Node, ex distprop.Exchange, cols []int, ok bool) {
	if d.licensed == nil {
		return
	}
	key := vExchKey{node: n, exch: ex}
	if v, seen := d.licensed[key]; seen {
		if !ok || !equalCols(v.cols, cols) {
			v.ok = false
		}
		return
	}
	d.licensed[key] = &vVerdict{cols: append([]int(nil), cols...), ok: ok}
}

func equalCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func normSlot(name string) string { return storage.NormalizeName(name) }

// vState maps normalized slot names to re-derived properties; absent
// means Unknown.
type vState map[string]distprop.Property

func cloneState(s vState) vState {
	out := make(vState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s vState) bind(slot string, p distprop.Property) {
	if p.Kind == distprop.KindUnknown {
		delete(s, normSlot(slot))
	} else {
		s[normSlot(slot)] = p
	}
}

// fixpoint re-derives the entry state of every step (index len(Steps)
// is the exit state the final query sees) by iterating the per-step
// transfer over the step CFG until nothing changes. ok is false when a
// step kind is not handled.
func (d *distChecker) fixpoint() (entry []vState, ok bool) {
	n := len(d.prog.Steps)
	entry = make([]vState, n+1)
	entry[0] = vState{}
	if n == 0 {
		return entry, true
	}
	for changed, rounds := true, 0; changed; rounds++ {
		if rounds > n*64 {
			return nil, false // defensive bound; the lattice is finite
		}
		changed = false
		for i := 0; i < n; i++ {
			if entry[i] == nil {
				continue
			}
			out, succs, handled := d.transfer(i, entry[i])
			if !handled {
				return nil, false
			}
			for _, succ := range succs {
				if succ < 0 || succ > n {
					continue
				}
				if mergeState(&entry[succ], out) {
					changed = true
				}
			}
		}
	}
	if entry[n] == nil {
		entry[n] = vState{}
	}
	return entry, true
}

// mergeState meets src into *dst, reporting change. A slot survives
// only with the property both paths guarantee.
func mergeState(dst *vState, src vState) bool {
	if *dst == nil {
		*dst = cloneState(src)
		return true
	}
	changed := false
	for k, have := range *dst {
		got, present := src[k]
		if present {
			got = distprop.Meet(have, got)
		}
		if !present || got.Kind == distprop.KindUnknown {
			delete(*dst, k)
			changed = true
			continue
		}
		if !got.Equal(have) {
			(*dst)[k] = got
			changed = true
		}
	}
	return changed
}

func (d *distChecker) transfer(i int, st vState) (out vState, succs []int, ok bool) {
	switch t := d.prog.Steps[i].(type) {
	case *core.MaterializeStep:
		out = cloneState(st)
		out.bind(t.Into, d.infer(st, t.Plan).prop)
	case *core.DeltaMaterializeStep:
		out = cloneState(st)
		out.bind(t.Into, d.deltaResult(st, t).prop)
	case *core.MaintainAggStep:
		out = cloneState(st)
		res := d.maintainResult(st, t)
		out.bind(t.Into, res.prop)
		// The accumulator keeps the maintained output, the snapshot keeps
		// the CTE table — both with those tables' properties.
		out.bind(t.Acc, res.prop)
		out.bind(t.Snap, st[normSlot(t.CTE)])
	case *core.RenameStep:
		out = cloneState(st)
		prop := out[normSlot(t.From)]
		delete(out, normSlot(t.From))
		out.bind(t.To, prop)
	case *core.CopyBackStep:
		out = cloneState(st)
		out.bind(t.To, distprop.Hash(0))
		delete(out, normSlot(t.From))
	case *core.MergeStep:
		out = cloneState(st)
		out.bind(t.Into, distprop.Hash(0))
		if t.Delta != "" {
			out.bind(t.Delta, distprop.Hash(0))
		}
	case *core.TruncateStep:
		out = cloneState(st)
		delete(out, normSlot(t.Name))
	case *core.InitLoopStep, *core.UpdateLoopStep:
		out = st
	case *core.LoopStep:
		return st, []int{t.BodyStart, i + 1}, true
	default:
		return nil, nil, false
	}
	return out, []int{i + 1}, true
}

// deltaResult re-derives a delta materialization: the meet of the full
// plan and the restricted plan, whose frontier input inherits the CTE
// slot's property (the restriction filters the CTE table in place).
func (d *distChecker) deltaResult(st vState, t *core.DeltaMaterializeStep) vRes {
	full := d.infer(st, t.Full)
	rst := cloneState(st)
	if cte, have := st[normSlot(t.CTE)]; have {
		rst.bind(t.DeltaIn, cte)
	}
	restricted := d.infer(rst, t.Restricted)
	return vRes{prop: distprop.Meet(full.prop, restricted.prop)}
}

// maintainResult re-derives an aggregate maintenance the same way: the
// meet of the full plan and the restricted plan, whose frontier input
// inherits the CTE slot's property (the restriction filters the CTE
// table partition-preservingly). The spliced output is rebuilt with
// hash routing on column 0, so the meet under-approximates at worst.
func (d *distChecker) maintainResult(st vState, t *core.MaintainAggStep) vRes {
	full := d.infer(st, t.Full)
	rst := cloneState(st)
	if cte, have := st[normSlot(t.CTE)]; have {
		rst.bind(t.AggIn, cte)
	}
	restricted := d.infer(rst, t.Restricted)
	return vRes{prop: distprop.Meet(full.prop, restricted.prop)}
}

// vRes is a re-derived property plus the column-equality knowledge
// gathered alongside it. eq is nil for results whose columns carry no
// equalities (identity relation).
type vRes struct {
	prop distprop.Property
	eq   *vEq
}

// satisfies reports whether the re-derived result guarantees p,
// comparing hash columns position-wise modulo re-derived equalities.
func (r vRes) satisfies(p distprop.Property) bool {
	switch p.Kind {
	case distprop.KindUnknown:
		return true
	case distprop.KindSingleton:
		return r.prop.Kind == distprop.KindSingleton
	}
	if r.prop.Kind != distprop.KindHash || len(r.prop.Cols) != len(p.Cols) {
		return false
	}
	for i := range p.Cols {
		if !r.eq.equal(r.prop.Cols[i], p.Cols[i]) {
			return false
		}
	}
	return true
}

// infer is this checker's own inference dispatch over plan nodes. Every
// plan.Node implementer must be handled here (the distprop spinlint
// analyzer checks this switch against the plan package); the default
// falls through to Unknown.
func (d *distChecker) infer(st vState, n plan.Node) vRes {
	switch t := n.(type) {
	case *plan.Scan:
		if d.td != nil {
			if dc, parts, ok := d.td.TableDistribution(t.Table); ok && dc >= 0 && parts == d.prog.Parts {
				return vRes{prop: distprop.Hash(dc)}
			}
		}
		return vRes{}
	case *plan.NamedResult:
		return vRes{prop: st[normSlot(t.Name)]}
	case *plan.OneRow:
		return vRes{prop: distprop.Singleton()}
	case *plan.Filter:
		return d.infer(st, t.Input)
	case *plan.Project:
		in := d.infer(st, t.Input)
		images := make(map[int][]int)
		for i, it := range t.Items {
			if c := schemaCol(it.Expr, t.Input.Columns()); c >= 0 {
				images[c] = append(images[c], i)
			}
		}
		return vRes{prop: projectProp(in.prop, images), eq: in.eq.project(images)}
	case *plan.Alias:
		return d.infer(st, t.Input)
	case *plan.Join:
		return d.inferJoin(st, t)
	case *plan.Aggregate:
		return d.inferAggregate(st, t)
	case *plan.Union:
		l := d.infer(st, t.Left)
		r := d.infer(st, t.Right)
		for _, cand := range []distprop.Property{l.prop, r.prop} {
			if l.satisfies(cand) && r.satisfies(cand) {
				return vRes{prop: cand}
			}
		}
		return vRes{}
	case *plan.Distinct:
		in := d.infer(st, t.Input)
		all := make([]int, len(t.Input.Columns()))
		for i := range all {
			all[i] = i
		}
		d.note(t, distprop.DistinctInput, all, in.satisfies(distprop.Hash(all...)))
		return vRes{prop: distprop.Hash(all...), eq: in.eq}
	case *plan.Sort:
		in := d.infer(st, t.Input)
		return vRes{prop: distprop.Singleton(), eq: in.eq}
	case *plan.Limit:
		in := d.infer(st, t.Input)
		return vRes{prop: distprop.Singleton(), eq: in.eq}
	case *plan.TopN:
		in := d.infer(st, t.Input)
		return vRes{prop: distprop.Singleton(), eq: in.eq}
	case *plan.Trim:
		in := d.infer(st, t.Input)
		images := make(map[int][]int)
		for c := 0; c < t.Keep && c < len(t.Input.Columns()); c++ {
			images[c] = []int{c}
		}
		return vRes{prop: projectProp(in.prop, images), eq: in.eq.project(images)}
	case *plan.ValuesNode:
		return vRes{prop: distprop.Singleton()}
	case *plan.EmptyNode:
		return vRes{prop: distprop.Singleton()}
	default:
		// Fail closed: unknown node kinds prove nothing.
		return vRes{}
	}
}

func (d *distChecker) inferAggregate(st vState, t *plan.Aggregate) vRes {
	in := d.infer(st, t.Input)
	k := len(t.GroupBy)
	if k == 0 {
		return vRes{prop: distprop.Singleton()}
	}
	inCols := t.Input.Columns()
	gcols := make([]int, k)
	images := make(map[int][]int)
	for j, g := range t.GroupBy {
		gcols[j] = schemaCol(g, inCols)
		if gcols[j] >= 0 {
			images[gcols[j]] = append(images[gcols[j]], j)
		}
	}
	// Elidable iff every routing column of the input is definitely
	// equal to some bare group column (order-free subset rule): equal
	// group tuples then imply co-located rows, so local exact
	// aggregation plus the output-row exchange reproduces the global
	// aggregation byte for byte.
	licensed := in.prop.Kind == distprop.KindHash
	for _, c := range in.prop.Cols {
		if !licensed {
			break
		}
		found := false
		for _, g := range gcols {
			if g >= 0 && in.eq.equal(c, g) {
				found = true
				break
			}
		}
		licensed = found
	}
	d.note(t, distprop.AggregateInput, in.prop.Cols, licensed)
	outCols := make([]int, k)
	for i := range outCols {
		outCols[i] = i
	}
	return vRes{prop: distprop.Hash(outCols...), eq: in.eq.project(images)}
}

func (d *distChecker) inferJoin(st vState, t *plan.Join) vRes {
	l := d.infer(st, t.Left)
	r := d.infer(st, t.Right)
	lw := len(t.Left.Columns())
	pairs := d.joinPairs(t)

	eq := joinEq(l.eq, r.eq, lw,
		t.Type == ast.RightJoin || t.Type == ast.FullJoin,
		t.Type == ast.LeftJoin || t.Type == ast.FullJoin)
	switch t.Type {
	case ast.InnerJoin:
		for _, p := range pairs {
			if p.l >= 0 && p.r >= 0 {
				eq.merge(p.l, lw+p.r)
			}
			if p.l >= 0 {
				eq.solidify(p.l)
			}
			if p.r >= 0 {
				eq.solidify(lw + p.r)
			}
		}
	case ast.LeftJoin:
		for _, p := range pairs {
			if p.l >= 0 && p.r >= 0 {
				eq.conditional(p.l, lw+p.r, lw+p.r)
			}
		}
	case ast.RightJoin:
		for _, p := range pairs {
			if p.l >= 0 && p.r >= 0 {
				eq.conditional(p.l, lw+p.r, p.l)
			}
		}
	}

	if t.Type == ast.CrossJoin || len(pairs) == 0 {
		if t.Type == ast.CrossJoin || t.Type == ast.InnerJoin {
			return vRes{prop: l.prop, eq: eq}
		}
		return vRes{prop: distprop.Unknown(), eq: eq}
	}

	lcols, lok := pairSide(pairs, false)
	rcols, rok := pairSide(pairs, true)
	d.note(t, distprop.JoinLeft, lcols, lok && l.satisfies(distprop.Hash(lcols...)))
	d.note(t, distprop.JoinRight, rcols, rok && r.satisfies(distprop.Hash(rcols...)))

	out := distprop.Unknown()
	switch t.Type {
	case ast.InnerJoin:
		if lok {
			out = distprop.Hash(lcols...)
		} else if rok {
			out = distprop.Hash(shiftCols(rcols, lw)...)
		}
	case ast.LeftJoin:
		if lok {
			out = distprop.Hash(lcols...)
		}
	case ast.RightJoin:
		if rok {
			out = distprop.Hash(shiftCols(rcols, lw)...)
		}
	}
	return vRes{prop: out, eq: eq}
}

func shiftCols(cols []int, by int) []int {
	out := make([]int, len(cols))
	for i, c := range cols {
		out[i] = c + by
	}
	return out
}

type vPair struct{ l, r int }

func pairSide(pairs []vPair, right bool) ([]int, bool) {
	out := make([]int, len(pairs))
	for i, p := range pairs {
		c := p.l
		if right {
			c = p.r
		}
		if c < 0 {
			return nil, false
		}
		out[i] = c
	}
	return out, true
}

// joinPairs re-derives the executor's equi-key list with schema-based
// resolution: a conjunct `x = y` is a key when each side's column
// references all resolve against one input (trying left/right, then
// swapped, in the executor's order); the bare-column position is kept
// where the side is a single plain reference. Anything this resolver
// cannot place is treated as residual — diverging from the executor
// here only makes the checker stricter.
func (d *distChecker) joinPairs(t *plan.Join) []vPair {
	if t.On == nil {
		return nil
	}
	lcols, rcols := t.Left.Columns(), t.Right.Columns()
	var pairs []vPair
	for _, c := range ast.SplitConjuncts(t.On) {
		b, isBin := c.(*ast.BinaryExpr)
		if !isBin || b.Op != "=" || ast.HasAggregate(b.L) || ast.HasAggregate(b.R) {
			continue
		}
		var le, re ast.Expr
		switch {
		case sideResolves(b.L, lcols) && sideResolves(b.R, rcols):
			le, re = b.L, b.R
		case sideResolves(b.R, lcols) && sideResolves(b.L, rcols):
			le, re = b.R, b.L
		default:
			continue
		}
		pairs = append(pairs, vPair{l: schemaCol(le, lcols), r: schemaCol(re, rcols)})
	}
	return pairs
}

// sideResolves reports whether every column reference in e resolves
// unambiguously against the given schema.
func sideResolves(e ast.Expr, cols []plan.ColInfo) bool {
	ok := true
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if cr, isRef := x.(*ast.ColumnRef); isRef {
			if resolveRef(cr, cols) < 0 {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// schemaCol resolves a bare column reference to its position in the
// schema, -1 for anything else (computed expressions, unresolvable or
// ambiguous references).
func schemaCol(e ast.Expr, cols []plan.ColInfo) int {
	cr, isRef := e.(*ast.ColumnRef)
	if !isRef {
		return -1
	}
	return resolveRef(cr, cols)
}

// resolveRef finds the unique schema position matching a reference the
// way the expression compiler does: qualifier (when present) and name,
// case-insensitively; ambiguity resolves to nothing.
func resolveRef(cr *ast.ColumnRef, cols []plan.ColInfo) int {
	found := -1
	for i, c := range cols {
		if !strings.EqualFold(cr.Name, c.Name) {
			continue
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, c.Table) {
			continue
		}
		if found >= 0 {
			return -1
		}
		found = i
	}
	return found
}

func projectProp(p distprop.Property, images map[int][]int) distprop.Property {
	switch p.Kind {
	case distprop.KindSingleton:
		return p
	case distprop.KindHash:
		out := make([]int, len(p.Cols))
		for i, c := range p.Cols {
			img := images[c]
			if len(img) == 0 {
				return distprop.Unknown()
			}
			out[i] = img[0]
		}
		return distprop.Hash(out...)
	}
	return distprop.Unknown()
}

// vEq tracks definite per-row column equality (NULLs compare equal)
// with map-based union-find, plus two refinements mirroring the
// executor's join semantics: columns known non-NULL on every row
// ("solid"), and conditional equalities from outer-join keys that hold
// unless a guard column is NULL — promoted to definite equalities once
// the guard solidifies. nil is the identity relation.
type vEq struct {
	parent map[int]int
	solid  map[int]bool
	conds  []vCond
}

type vCond struct{ a, b, guard int }

func newVEq() *vEq {
	return &vEq{parent: map[int]int{}, solid: map[int]bool{}}
}

func (e *vEq) root(x int) int {
	if e == nil {
		return x
	}
	r, ok := e.parent[x]
	if !ok || r == x {
		return x
	}
	top := e.root(r)
	e.parent[x] = top
	return top
}

func (e *vEq) equal(a, b int) bool {
	if a == b {
		return true
	}
	if e == nil || a < 0 || b < 0 {
		return false
	}
	return e.root(a) == e.root(b)
}

func (e *vEq) merge(a, b int) {
	ra, rb := e.root(a), e.root(b)
	if ra == rb {
		return
	}
	e.parent[ra] = rb
	if e.solid[ra] {
		e.solidify(rb)
	}
}

func (e *vEq) conditional(a, b, guard int) {
	if e.solid[e.root(guard)] {
		e.merge(a, b)
		return
	}
	e.conds = append(e.conds, vCond{a: a, b: b, guard: guard})
}

// solidify marks a column's class non-NULL and promotes every
// conditional equality whose guard just became solid, cascading.
func (e *vEq) solidify(x int) {
	r := e.root(x)
	if e.solid[r] {
		return
	}
	e.solid[r] = true
	for again := true; again; {
		again = false
		kept := e.conds[:0]
		for _, c := range e.conds {
			if e.solid[e.root(c.guard)] {
				e.merge(c.a, c.b)
				again = true
				continue
			}
			kept = append(kept, c)
		}
		e.conds = kept
	}
}

// project rewrites the relation through a projection: images maps each
// input column to the output positions that copy it verbatim.
func (e *vEq) project(images map[int][]int) *vEq {
	if e == nil {
		// Identity in, identity out — but duplicated copies of one
		// input column are equal in the output.
		e = newVEq()
	}
	out := newVEq()
	// Representative output column per input-equivalence class.
	rep := map[int]int{}
	solidClass := map[int]bool{}
	condByIn := e.conds
	for in, outs := range images {
		if len(outs) == 0 {
			continue
		}
		r := e.root(in)
		first, have := rep[r]
		if !have {
			rep[r] = outs[0]
			first = outs[0]
			if e.solid[r] {
				solidClass[r] = true
			}
		}
		for _, o := range outs {
			out.merge(first, o)
		}
	}
	for r, first := range rep {
		if solidClass[r] {
			out.solidify(first)
		}
	}
	// Conditional equalities survive when all three columns have images.
	for _, c := range condByIn {
		ra, rb, rg := e.root(c.a), e.root(c.b), e.root(c.guard)
		pa, oka := rep[ra]
		pb, okb := rep[rb]
		pg, okg := rep[rg]
		if oka && okb && okg {
			out.conditional(pa, pb, pg)
		}
	}
	return out
}

// joinEq concatenates two sides' relations into the join's output
// frame. Equalities and conditionals survive unconditionally (they are
// vacuous or NULL-equal on NULL-extended rows); non-NULL facts survive
// only from sides the join cannot NULL-extend.
func joinEq(l, r *vEq, lw int, lNullable, rNullable bool) *vEq {
	out := newVEq()
	copySide := func(e *vEq, off int, nullable bool) {
		if e == nil {
			return
		}
		for x := range e.parent {
			out.merge(x+off, e.root(x)+off)
		}
		for _, c := range e.conds {
			out.conditional(c.a+off, c.b+off, c.guard+off)
		}
		if !nullable {
			for x, s := range e.solid {
				if s {
					out.solidify(x + off)
				}
			}
		}
	}
	copySide(l, 0, lNullable)
	copySide(r, lw, rNullable)
	return out
}
