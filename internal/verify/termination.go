package verify

import (
	"fmt"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/converge"
	"dbspinner/internal/core"
)

// Termination cross-check: the rewrite runs the converge analysis and
// acts on its verdict (recording it for EXPLAIN, installing the
// iteration-cap guard on Unknown loops, feeding proved bounds to
// costing). A bug in that plumbing — a fabricated Terminates verdict, a
// dropped guard — silently removes the only protection against a
// non-terminating loop. This file re-derives every verdict from the
// original statement with the same analysis entry point and fails
// closed when the program claims more than the re-derivation proves.

// checkTermination re-derives the converge verdict for every iterative
// CTE of the original statement and compares it against what the
// program recorded and installed. stmt may be nil (program-only
// checks); the termination cross-check then has nothing to re-derive
// and is skipped. A missing recorded verdict is not a diagnostic — the
// program simply claims nothing — but a recorded verdict stronger than
// the re-derived one, or a derived-Unknown loop running without a cap,
// is.
func checkTermination(prog *core.Program, stmt *ast.SelectStmt) []Diagnostic {
	if stmt == nil || stmt.With == nil {
		return nil
	}
	recorded := map[string]*converge.Verdict{}
	for i := range prog.Verdicts {
		recorded[strings.ToLower(prog.Verdicts[i].CTE)] = &prog.Verdicts[i]
	}
	loops := map[string]*core.LoopState{}
	for _, s := range prog.Steps {
		if l, ok := s.(*core.LoopStep); ok && l.Loop != nil {
			loops[strings.ToLower(l.Loop.CTEName)] = l.Loop
		}
	}

	var diags []Diagnostic
	for _, cte := range stmt.With.CTEs {
		if !cte.Iterative {
			continue
		}
		derived := converge.AnalyzeCTE(cte, prog.Lookup)
		if rec := recorded[strings.ToLower(cte.Name)]; rec != nil {
			if rec.Kind > derived.Kind {
				diags = append(diags, Diagnostic{Class: ClassUnsoundTermination,
					Message: fmt.Sprintf("program records termination verdict %s for CTE %s, but independent re-derivation only proves %s%s",
						rec.Kind, cte.Name, derived.Kind, diagSuffix(derived))})
			} else if rec.Kind == converge.Terminates && derived.Kind == converge.Terminates &&
				rec.Bound > 0 && (derived.Bound <= 0 || rec.Bound < derived.Bound) {
				diags = append(diags, Diagnostic{Class: ClassUnsoundTermination,
					Message: fmt.Sprintf("program records iteration bound %d for CTE %s, tighter than the re-derived bound%s",
						rec.Bound, cte.Name, boundSuffix(derived))})
			}
		}
		if derived.Kind == converge.Unknown {
			if l := loops[strings.ToLower(cte.Name)]; l != nil && l.Cap <= 0 {
				diags = append(diags, Diagnostic{Class: ClassMissingGuard,
					Message: fmt.Sprintf("termination of CTE %s is Unknown%s, but its loop carries no iteration-cap guard",
						cte.Name, diagSuffix(derived))})
			}
		}
	}
	return diags
}

// diagSuffix renders an Unknown verdict's diagnostics as a
// parenthesized clause, empty when there are none.
func diagSuffix(v converge.Verdict) string {
	if len(v.Diags) == 0 {
		return ""
	}
	return " (" + strings.Join(v.Diags, "; ") + ")"
}

func boundSuffix(v converge.Verdict) string {
	if v.Bound > 0 {
		return fmt.Sprintf(" %d", v.Bound)
	}
	return " (no numeric bound is provable)"
}
