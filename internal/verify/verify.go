// Package verify statically checks compiled step programs (core.Program)
// against the structural invariants of the paper's Table I plans, before
// any step executes. The rewrite and the optimizer in internal/core are
// the only producers of step programs; a bug there — a mis-wired Loop
// jump, a rename between incompatible results, a predicate pushed past a
// termination condition that observes it — silently produces wrong
// answers. This package re-derives the invariants from the finished
// program (and, for push down, from the original AST) so the producer
// and the checker fail independently.
//
// The verifier is wired into core.Rewrite behind Options.Verify through
// core.RegisterVerifier; importing this package arms it. The engine
// imports it, so every query the engine plans is verified by default.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/core"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
)

// Diagnostic classes. Each names one invariant of the step program.
const (
	// ClassBadJump: a LoopStep's jump target is out of range, not a
	// backward jump, or wired so the loop-counter initialization is
	// skipped or re-executed every iteration.
	ClassBadJump = "bad-jump"
	// ClassUseBeforeMaterialize: a step (or a plan inside a step)
	// consumes an intermediate result no earlier step materialized.
	ClassUseBeforeMaterialize = "use-before-materialize"
	// ClassSchemaMismatch: a rename/merge/copy-back pairs results whose
	// schemas are incompatible.
	ClassSchemaMismatch = "schema-mismatch"
	// ClassDeadTermination: a loop's termination condition references a
	// result that is not live where the condition is evaluated.
	ClassDeadTermination = "dead-termination"
	// ClassLeak: an intermediate result created inside the loop body is
	// still live when the program ends without the final query reading
	// it — per-iteration working tables must be renamed away, merged or
	// dropped.
	ClassLeak = "leaked-intermediate"
	// ClassUnsafePush: a predicate recorded as pushed below the loop
	// fails the independent re-derivation of the §V-B safety conditions.
	ClassUnsafePush = "unsafe-pushdown"
	// ClassInconsistentParts: a step's partition count disagrees with
	// the program's.
	ClassInconsistentParts = "inconsistent-parts"
	// ClassBadKey: a key column index is outside the schema of the
	// result it keys.
	ClassBadKey = "bad-key"
	// ClassUnknownStep: the program contains a step type this verifier
	// does not understand; the verifier fails closed.
	ClassUnknownStep = "unknown-step"
	// ClassDeltaLiveness: delta iteration's producer/consumer pairing is
	// broken — a restricted materialization has no later merge (same
	// loop) publishing the delta table it consumes, a merge materializes
	// a delta table nothing consumes, or the delta table is dead when a
	// second iteration would read the changed-key set.
	ClassDeltaLiveness = "delta-liveness"
	// ClassUnsafeDelta: a DeltaMaterializeStep's restricted plan is not
	// the full plan with exactly the outer CTE reference swapped for the
	// frontier input — inner references must keep reading the full CTE,
	// and the restriction must not be vacuous.
	ClassUnsafeDelta = "unsafe-delta"
	// ClassPrematureTruncate: a step (or the final query, or a
	// termination condition) reads a result after a TruncateStep dropped
	// it — the liveness analysis placed a truncation before the result's
	// true last use.
	ClassPrematureTruncate = "premature-truncate"
	// ClassPrunedColumnUse: a plan reads a column of an intermediate
	// result that the result's materialization does not provide, or the
	// rewrite narrowed an iterative CTE's schema below what the original
	// statement still observes — the projection pruning dropped a live
	// column.
	ClassPrunedColumnUse = "pruned-column-use"
	// ClassUnsoundTermination: the program records a termination
	// verdict (or a numeric iteration bound) for an iterative CTE that
	// is stronger than what the independent re-run of the converge
	// analysis can prove — e.g. Terminates claimed where only Unknown
	// is derivable, or a tighter bound than the provable one.
	ClassUnsoundTermination = "unsound-termination-claim"
	// ClassMissingGuard: an iterative CTE whose termination re-derives
	// as Unknown runs without the iteration-cap safety guard — nothing
	// stops it from spinning forever.
	ClassMissingGuard = "missing-iteration-guard"
	// ClassEffectViolation: a step's recorded effect set (core.Program.
	// Effects, the record the parallel scheduler trusts) is missing a
	// read, write, free, loop access or barrier flag the independent
	// re-derivation proves the step has — an under-declared set would
	// license an unsound interleaving.
	ClassEffectViolation = "effect-violation"
	// ClassUnsoundSchedule: the recorded region schedule does not cover
	// the program, runs a barrier step inside a parallel region, lets a
	// jump land mid-region, has malformed edges, or omits a
	// happens-before edge between two steps the re-derived effect sets
	// prove conflicting.
	ClassUnsoundSchedule = "unsound-schedule"
	// ClassUnsoundAggClaim: the program records a licensed
	// incremental-aggregate claim (core.Program.AggClaims) — or installs a
	// MaintainAggStep — that the independent re-derivation of the
	// decomposability lattice and its side conditions (group-key
	// stability, retraction visibility) cannot re-prove: e.g. MIN recorded
	// as invertible, a group key that drifts across the back-edge, or an
	// inner CTE reference whose retractions are invisible to the frontier.
	ClassUnsoundAggClaim = "unsound-agg-claim"
	// ClassStaleAccumulator: a MaintainAggStep's accumulator wiring would
	// let cached per-group rows go stale — the step sits outside a loop
	// body, runs after the step that publishes its CTE within the body
	// (diffing against an already-merged table sees an empty frontier),
	// shares its accumulator or snapshot slot with another writer, never
	// feeds the frontier into its restricted plan, or restricts an inner
	// reference instead of the outer one.
	ClassStaleAccumulator = "stale-accumulator"
	// ClassUnsafeRetry: a recorded checkpoint specification
	// (core.Program.Checkpoints, the record the retry driver and
	// EXPLAIN trust) is structurally wrong — its Loop index does not
	// name a LoopStep, its Body disagrees with the loop's actual jump
	// target, the body range is inverted, or one loop carries more
	// than one spec.
	ClassUnsafeRetry = "unsafe-retry"
	// ClassStaleCheckpoint: a loop back-edge's checkpoint coverage is
	// stale — a LoopStep has no checkpoint spec, or the spec omits a
	// result-store slot or loop-operator slot the independent effect
	// re-derivation proves the loop body writes or frees. A retry
	// restoring an under-covered checkpoint would resume from a state
	// the abandoned attempt already mutated.
	ClassStaleCheckpoint = "stale-checkpoint"
)

// Classes lists every diagnostic class the verifier can report.
var Classes = []string{
	ClassBadJump, ClassUseBeforeMaterialize, ClassSchemaMismatch,
	ClassDeadTermination, ClassLeak, ClassUnsafePush,
	ClassInconsistentParts, ClassBadKey, ClassUnknownStep,
	ClassDeltaLiveness, ClassUnsafeDelta,
	ClassPrematureTruncate, ClassPrunedColumnUse,
	ClassUnsoundTermination, ClassMissingGuard,
	ClassEffectViolation, ClassUnsoundSchedule,
	ClassUnsoundDistProp, ClassMissingExchange,
	ClassUnsoundAggClaim, ClassStaleAccumulator,
	ClassUnsafeRetry, ClassStaleCheckpoint,
}

// ClassCount is the number of distinct diagnostic classes.
var ClassCount = len(Classes)

// Diagnostic is one verifier finding, citing the 1-based step index that
// Program.Explain prints ("Step %d: ..."); Step 0 marks program-level
// findings.
type Diagnostic struct {
	Step    int
	Class   string
	Message string
}

func (d Diagnostic) String() string {
	if d.Step > 0 {
		return fmt.Sprintf("Step %d: [%s] %s", d.Step, d.Class, d.Message)
	}
	return fmt.Sprintf("Program: [%s] %s", d.Class, d.Message)
}

// Error aggregates diagnostics into one error value, as returned to
// core.Rewrite when verification fails.
type Error struct {
	Diags []Diagnostic
}

func (e *Error) Error() string {
	parts := make([]string, len(e.Diags))
	for i, d := range e.Diags {
		parts[i] = d.String()
	}
	return "program verification failed: " + strings.Join(parts, "; ")
}

func init() {
	core.RegisterVerifier(func(p *core.Program, stmt *ast.SelectStmt) error {
		if diags := Check(p, stmt); len(diags) > 0 {
			return &Error{Diags: diags}
		}
		return nil
	})
}

// Check runs every structural invariant over a compiled program. stmt is
// the original statement the program was rewritten from; it is only
// needed for the push-down re-check and may be nil when the program
// records no pushed predicates.
func Check(prog *core.Program, stmt *ast.SelectStmt) []Diagnostic {
	s := &sim{
		prog:      prog,
		live:      map[string]*resultInfo{},
		inits:     map[*core.LoopState]int{},
		deltas:    map[string]bool{},
		accs:      map[string]bool{},
		truncated: map[string]int{},
	}
	s.run()
	s.checkDeltaPairing()
	s.checkAggWiring()
	s.checkLeaks()
	s.diags = append(s.diags, checkAggProps(prog, stmt)...)
	s.diags = append(s.diags, checkPushdown(prog, stmt)...)
	s.diags = append(s.diags, checkPruning(prog, stmt)...)
	s.diags = append(s.diags, checkTermination(prog, stmt)...)
	s.diags = append(s.diags, checkEffects(prog)...)
	s.diags = append(s.diags, checkSchedule(prog)...)
	s.diags = append(s.diags, checkDistProps(prog)...)
	s.diags = append(s.diags, checkCheckpoints(prog)...)
	sort.SliceStable(s.diags, func(i, j int) bool { return s.diags[i].Step < s.diags[j].Step })
	return s.diags
}

// resultInfo tracks one live intermediate result during simulation.
type resultInfo struct {
	schema sqltypes.Schema
	// display is the name as the step spelled it (live keys are
	// lowercased).
	display string
	// createdAt is the 0-based index of the step that first bound the
	// name; re-binding the same name (per-iteration re-materialization,
	// rename over an existing result) keeps the first index, since the
	// name's lifetime — what the leak invariant is about — started
	// there.
	createdAt int
}

// sim is an abstract interpretation of the step program: it tracks which
// result names are live (and with what schema) at each step, following
// the linear order and then once more around each loop body, so
// second-iteration breakage (a body step consuming a result the first
// iteration renamed away) is caught too.
type sim struct {
	prog  *core.Program
	diags []Diagnostic
	live  map[string]*resultInfo
	inits map[*core.LoopState]int
	// bodies are the [start, loopStep] intervals of verified loops,
	// used by the leak check.
	bodies [][2]int
	// deltas are the (normalized) delta-table names MergeSteps publish;
	// they live across iterations by design and are released by the
	// program cleanup, so the leak check exempts them (the pairing
	// check guards against unconsumed ones instead).
	deltas map[string]bool
	// accs are the (normalized) accumulator and snapshot slot names
	// MaintainAggSteps carry across the loop back-edge; like deltas they
	// survive the loop by design and are released by the program
	// cleanup, so the leak check exempts them (checkAggWiring guards
	// their ownership instead).
	accs map[string]bool
	// truncated maps (normalized) result names to the 0-based index of
	// the TruncateStep that most recently dropped them, so a later read
	// is diagnosed as premature truncation rather than a result that
	// never existed. Re-materializing the name clears the entry.
	truncated map[string]int
}

// readMissing files the diagnostic for a consumer of a result that is
// not live: premature-truncate when an earlier TruncateStep dropped it,
// use-before-materialize otherwise. what names the consumer ("merge",
// "materialize Intermediate#t", ...) and verb how it reads ("reads",
// "consumes", "targets"), matching the per-step message wording.
func (s *sim) readMissing(i int, what, verb, name, suffix string) {
	if at, ok := s.truncated[norm(name)]; ok {
		s.addf(i, ClassPrematureTruncate, "%s %s result %q after step %d truncated it%s", what, verb, name, at+1, suffix)
		return
	}
	s.addf(i, ClassUseBeforeMaterialize, "%s %s result %q before any step materializes it%s", what, verb, name, suffix)
}

// checkResultCols verifies that every intermediate-result read inside a
// plan only names columns the producing step actually materialized.
// Projection pruning narrows producer schemas; a reader still resolving
// a pruned column means the liveness analysis and the plan disagree.
// skip exempts one (normalized) transient name the step binds itself.
func (s *sim) checkResultCols(i int, what string, n plan.Node, suffix, skip string) {
	for _, r := range planResultNodes(n) {
		if norm(r.Name) == skip {
			continue
		}
		info := s.live[norm(r.Name)]
		if info == nil {
			continue // the liveness fault is reported separately
		}
		for _, c := range r.Cols {
			if !schemaHasColumn(info.schema, c.Name) {
				s.addf(i, ClassPrunedColumnUse, "%s reads column %q of result %q, which its materialization does not provide%s", what, c.Name, r.Name, suffix)
			}
		}
	}
}

func schemaHasColumn(schema sqltypes.Schema, name string) bool {
	for _, c := range schema {
		if strings.EqualFold(c.Name, name) {
			return true
		}
	}
	return false
}

func (s *sim) addf(step int, class, format string, args ...interface{}) {
	s.diags = append(s.diags, Diagnostic{Step: step + 1, Class: class, Message: fmt.Sprintf(format, args...)})
}

func (s *sim) run() {
	for i := 0; i < len(s.prog.Steps); i++ {
		s.step(i, s.prog.Steps[i], false)
	}
}

// step interprets one step. On the reEntry pass (the second trip around
// a loop body) only consumption and schema faults are reported — the
// structural wiring was already checked — but state transitions still
// apply so the re-entry view is accurate.
func (s *sim) step(i int, st core.Step, reEntry bool) {
	suffix := ""
	if reEntry {
		suffix = " (on loop re-entry)"
	}
	switch t := st.(type) {
	case *core.MaterializeStep:
		if !reEntry {
			s.checkParts(i, t.Parts)
		}
		for _, name := range planResults(t.Plan) {
			if s.live[name] == nil {
				s.readMissing(i, "materialize "+t.Into, "reads", name, suffix)
			}
		}
		s.checkResultCols(i, "materialize "+t.Into, t.Plan, suffix, "")
		schema := plan.Schema(t.Plan)
		if t.CheckKey >= len(schema) {
			s.addf(i, ClassBadKey, "check-key column %d is outside the %d-column schema of %s", t.CheckKey, len(schema), t.Into)
		}
		s.bind(i, t.Into, schema)

	case *core.InitLoopStep:
		if t.Loop == nil {
			s.addf(i, ClassBadJump, "loop initialization has no loop state")
			return
		}
		if !reEntry {
			s.inits[t.Loop] = i
		}
		if t.Loop.Term.Type == ast.TermDelta && s.live[norm(t.Loop.CTEName)] == nil {
			if at, ok := s.truncated[norm(t.Loop.CTEName)]; ok {
				s.addf(i, ClassPrematureTruncate, "Delta termination snapshots result %q after step %d truncated it%s", t.Loop.CTEName, at+1, suffix)
			} else {
				s.addf(i, ClassDeadTermination, "Delta termination snapshots result %q, which is not live at loop initialization%s", t.Loop.CTEName, suffix)
			}
		}

	case *core.UpdateLoopStep:
		if t.Loop == nil {
			s.addf(i, ClassBadJump, "loop-counter update has no loop state")
		}

	case *core.LoopStep:
		s.loopStep(i, t, reEntry)

	case *core.RenameStep:
		from, to := norm(t.From), norm(t.To)
		src := s.live[from]
		if src == nil {
			s.readMissing(i, "rename", "consumes", t.From, suffix)
			return
		}
		if dst := s.live[to]; dst != nil {
			if why := schemasCompatible(src.schema, dst.schema); why != "" {
				s.addf(i, ClassSchemaMismatch, "rename %s to %s replaces a result with an incompatible schema: %s%s", t.From, t.To, why, suffix)
			}
		}
		delete(s.live, from)
		s.bindInfo(t.To, src.schema, src.createdAt)

	case *core.MergeStep:
		if !reEntry {
			s.checkParts(i, t.Parts)
		}
		cte, work := s.live[norm(t.CTE)], s.live[norm(t.Work)]
		if cte == nil {
			s.readMissing(i, "merge", "consumes", t.CTE, suffix)
		}
		if work == nil {
			s.readMissing(i, "merge", "consumes", t.Work, suffix)
		}
		if cte != nil && work != nil {
			if why := schemasCompatible(cte.schema, work.schema); why != "" {
				s.addf(i, ClassSchemaMismatch, "merge pairs %s and %s with incompatible schemas: %s%s", t.CTE, t.Work, why, suffix)
			}
			if t.Key < 0 || t.Key >= len(cte.schema) {
				s.addf(i, ClassBadKey, "merge key column %d is outside the %d-column schema of %s", t.Key, len(cte.schema), t.CTE)
			}
			s.bind(i, t.Into, cte.schema)
			if t.Delta != "" {
				s.deltas[norm(t.Delta)] = true
				s.bind(i, t.Delta, cte.schema)
			}
		}
		if t.Delta != "" && t.Loop == nil && !reEntry {
			s.addf(i, ClassDeltaLiveness, "merge %s materializes delta table %q without a loop state to publish the changed keys", t.Into, t.Delta)
		}

	case *core.CopyBackStep:
		if !reEntry {
			s.checkParts(i, t.Parts)
		}
		from, to := s.live[norm(t.From)], s.live[norm(t.To)]
		if from == nil {
			s.readMissing(i, "copy-back", "consumes", t.From, suffix)
		}
		if to == nil {
			s.readMissing(i, "copy-back", "targets", t.To, suffix)
		}
		if from != nil && to != nil {
			if why := schemasCompatible(from.schema, to.schema); why != "" {
				s.addf(i, ClassSchemaMismatch, "copy-back pairs %s and %s with incompatible schemas: %s%s", t.From, t.To, why, suffix)
			}
			if t.Key < 0 || t.Key >= len(from.schema) {
				s.addf(i, ClassBadKey, "copy-back key column %d is outside the %d-column schema of %s", t.Key, len(from.schema), t.From)
			}
		}
		if from != nil {
			delete(s.live, norm(t.From))
			s.bindInfo(t.To, from.schema, i)
		}

	case *core.DeltaMaterializeStep:
		s.deltaMaterializeStep(i, t, reEntry, suffix)

	case *core.MaintainAggStep:
		s.maintainAggStep(i, t, reEntry, suffix)

	case *core.TruncateStep:
		if s.live[norm(t.Name)] == nil {
			s.readMissing(i, "truncate", "targets", t.Name, suffix)
			return
		}
		delete(s.live, norm(t.Name))
		s.truncated[norm(t.Name)] = i

	default:
		s.addf(i, ClassUnknownStep, "step type %T is unknown to the verifier; teach internal/verify its reads and writes", st)
	}
}

// deltaMaterializeStep interprets the restricted working-table
// materialization of delta iteration. Its full plan is checked like an
// ordinary materialization; its restricted plan may additionally read
// the transient frontier input (DeltaIn), which the step binds and
// drops internally. First-pass-only checks re-derive the substitution
// invariant — the restricted plan must be the full plan with exactly
// the outer CTE reference swapped for DeltaIn — independently of the
// rewrite's own safety analysis.
func (s *sim) deltaMaterializeStep(i int, t *core.DeltaMaterializeStep, reEntry bool, suffix string) {
	if !reEntry {
		s.checkParts(i, t.Parts)
		if t.Loop == nil {
			s.addf(i, ClassUnsafeDelta, "delta materialize %s has no loop state to carry the changed-key set", t.Into)
		}
	}
	for _, name := range planResults(t.Full) {
		if s.live[name] == nil {
			s.readMissing(i, "delta materialize "+t.Into, "reads", name, suffix)
		}
	}
	s.checkResultCols(i, "delta materialize "+t.Into, t.Full, suffix, "")
	din := norm(t.DeltaIn)
	readsDeltaIn := false
	for _, name := range planResults(t.Restricted) {
		if name == din {
			readsDeltaIn = true // bound transiently by the step itself
			continue
		}
		if s.live[name] == nil {
			s.readMissing(i, "delta materialize "+t.Into, "reads", name, suffix)
		}
	}
	s.checkResultCols(i, "delta materialize "+t.Into, t.Restricted, suffix, din)
	if !reEntry {
		if !readsDeltaIn {
			s.addf(i, ClassUnsafeDelta, "restricted plan of %s never reads %s; the frontier restriction is vacuous", t.Into, t.DeltaIn)
		}
		if why := substitutionMismatch(t); why != "" {
			s.addf(i, ClassUnsafeDelta, "restricted plan of %s must be the full plan with one outer %s reference reading %s: %s", t.Into, t.CTE, t.DeltaIn, why)
		}
		if why := schemasCompatible(plan.Schema(t.Full), plan.Schema(t.Restricted)); why != "" {
			s.addf(i, ClassSchemaMismatch, "full and restricted plans of %s disagree: %s", t.Into, why)
		}
		if cte := s.live[norm(t.CTE)]; cte != nil && (t.Key < 0 || t.Key >= len(cte.schema)) {
			s.addf(i, ClassBadKey, "delta key column %d is outside the %d-column schema of %s", t.Key, len(cte.schema), t.CTE)
		}
	}
	// By the second iteration the paired merge must have published the
	// delta table whose changed-key set the restriction consumes.
	if reEntry && t.Delta != "" && s.live[norm(t.Delta)] == nil {
		s.addf(i, ClassDeltaLiveness, "delta table %q is not live when the restricted iteration consumes the changed-key set%s", t.Delta, suffix)
	}
	s.bind(i, t.Into, plan.Schema(t.Full))
}

// maintainAggStep interprets the incremental aggregate maintenance
// step. Its full plan is checked like an ordinary materialization; its
// restricted plan may additionally read the transient frontier input
// (AggIn), which the step binds and drops internally. The accumulator
// (Acc) and snapshot (Snap) slots are absent on the first iteration by
// design — the step falls back to the full plan — so their liveness is
// not a fault here; what is checked is that the restriction actually
// consumes the frontier, that the restricted plan is the full plan with
// exactly the outer CTE reference swapped for AggIn, and that the two
// plans agree on schema and key.
func (s *sim) maintainAggStep(i int, t *core.MaintainAggStep, reEntry bool, suffix string) {
	if !reEntry {
		s.checkParts(i, t.Parts)
	}
	for _, name := range planResults(t.Full) {
		if s.live[name] == nil {
			s.readMissing(i, "aggregate maintenance "+t.Into, "reads", name, suffix)
		}
	}
	s.checkResultCols(i, "aggregate maintenance "+t.Into, t.Full, suffix, "")
	ain := norm(t.AggIn)
	readsAggIn := false
	for _, name := range planResults(t.Restricted) {
		if name == ain {
			readsAggIn = true // bound transiently by the step itself
			continue
		}
		if s.live[name] == nil {
			s.readMissing(i, "aggregate maintenance "+t.Into, "reads", name, suffix)
		}
	}
	s.checkResultCols(i, "aggregate maintenance "+t.Into, t.Restricted, suffix, ain)
	if !reEntry {
		if !readsAggIn {
			s.addf(i, ClassStaleAccumulator, "restricted plan of %s never reads %s; cached groups would never be re-folded", t.Into, t.AggIn)
		}
		if why := maintainSubstitutionMismatch(t); why != "" {
			s.addf(i, ClassStaleAccumulator, "restricted plan of %s must be the full plan with one outer %s reference reading %s: %s", t.Into, t.CTE, t.AggIn, why)
		}
		if why := schemasCompatible(plan.Schema(t.Full), plan.Schema(t.Restricted)); why != "" {
			s.addf(i, ClassSchemaMismatch, "full and restricted plans of %s disagree: %s", t.Into, why)
		}
		if cte := s.live[norm(t.CTE)]; cte != nil && (t.Key < 0 || t.Key >= len(cte.schema)) {
			s.addf(i, ClassBadKey, "aggregate-maintenance key column %d is outside the %d-column schema of %s", t.Key, len(cte.schema), t.CTE)
		}
		s.accs[norm(t.Acc)] = true
		s.accs[norm(t.Snap)] = true
	}
	schema := plan.Schema(t.Full)
	s.bind(i, t.Into, schema)
	s.bind(i, t.Acc, schema)
	if cte := s.live[norm(t.CTE)]; cte != nil {
		s.bind(i, t.Snap, cte.schema)
	} else {
		s.bind(i, t.Snap, schema)
	}
}

// maintainSubstitutionMismatch re-derives the outer-reference-only
// substitution invariant for aggregate maintenance: the restricted
// plan's result reads must equal the full plan's with exactly one
// occurrence of the CTE replaced by AggIn (inner CTE references keep
// reading the full table — restricting them would hide the very
// retractions the side conditions prove visible).
func maintainSubstitutionMismatch(t *core.MaintainAggStep) string {
	want := planResults(t.Full)
	cte, ain := norm(t.CTE), norm(t.AggIn)
	replaced := false
	for i, n := range want {
		if n == cte {
			want[i] = ain
			replaced = true
			break
		}
	}
	if !replaced {
		return fmt.Sprintf("full plan never reads %s", t.CTE)
	}
	got := planResults(t.Restricted)
	sort.Strings(want)
	sort.Strings(got)
	if len(got) != len(want) {
		return fmt.Sprintf("restricted plan has %d result reads, expected %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Sprintf("restricted plan reads %q where %q is expected", got[i], want[i])
		}
	}
	return ""
}

// checkAggWiring runs after the simulation: a MaintainAggStep's
// accumulators only stay fresh if the step sits inside a loop body and
// runs before the step that publishes its CTE in that body — otherwise
// the diff against the snapshot compares the already-merged table with
// itself, sees an empty frontier, and serves every cached group stale.
// The Acc/Snap slots must also have exactly one writer: another step
// binding them would splice foreign rows into maintained output.
func (s *sim) checkAggWiring() {
	// Body intervals from LoopSteps directly — s.bodies only records
	// loops that passed the jump checks, and this check should not be
	// masked by an unrelated jump fault.
	var bodies [][2]int
	for i, st := range s.prog.Steps {
		if l, ok := st.(*core.LoopStep); ok && l.BodyStart >= 0 && l.BodyStart < i {
			bodies = append(bodies, [2]int{l.BodyStart, i})
		}
	}
	loops := loopSlotInterner{}
	for i, st := range s.prog.Steps {
		t, ok := st.(*core.MaintainAggStep)
		if !ok {
			continue
		}
		var body [2]int
		inBody := false
		for _, b := range bodies {
			if i >= b[0] && i <= b[1] {
				body, inBody = b, true
				break
			}
		}
		if !inBody {
			s.addf(i, ClassStaleAccumulator, "aggregate maintenance of %s sits outside every loop body; its accumulator would never see a second iteration", t.CTE)
			continue
		}
		// Within the body, the maintenance must run before anything
		// publishes its CTE: the diff needs the previous iteration's
		// table, not the one this iteration just merged.
		for j := body[0]; j < i; j++ {
			e, known := deriveStepEffects(s.prog.Steps[j], loops)
			if known && hits(e.writes, []string{t.CTE}) {
				s.addf(i, ClassStaleAccumulator, "step %d publishes %s before the aggregate maintenance diffs it; the frontier would always be empty and cached groups would be served stale", j+1, t.CTE)
			}
		}
		// Exactly one writer per accumulator slot. Frees are fine after
		// the loop (the dataflow pass truncates dead slots), but a free
		// inside the body would wipe the cache every iteration and a
		// foreign write anywhere would splice foreign rows in.
		for j, other := range s.prog.Steps {
			if j == i {
				continue
			}
			e, known := deriveStepEffects(other, loops)
			if !known {
				continue
			}
			inBody := j >= body[0] && j <= body[1]
			for _, slot := range []string{t.Acc, t.Snap} {
				if hits(e.writes, []string{slot}) {
					s.addf(i, ClassStaleAccumulator, "step %d also writes accumulator slot %q; maintained groups would mix foreign rows", j+1, slot)
				} else if inBody && hits(e.frees, []string{slot}) {
					s.addf(i, ClassStaleAccumulator, "step %d frees accumulator slot %q inside the loop body; the cache would be wiped every iteration", j+1, slot)
				}
			}
		}
	}
}

// substitutionMismatch re-derives the outer-reference-only substitution
// invariant: the restricted plan's result reads must equal the full
// plan's with exactly one occurrence of the CTE replaced by DeltaIn
// (inner CTE references keep reading the full table — restricting them
// would corrupt aggregates over neighbours).
func substitutionMismatch(t *core.DeltaMaterializeStep) string {
	want := planResults(t.Full)
	cte, din := norm(t.CTE), norm(t.DeltaIn)
	replaced := false
	for i, n := range want {
		if n == cte {
			want[i] = din
			replaced = true
			break
		}
	}
	if !replaced {
		return fmt.Sprintf("full plan never reads %s", t.CTE)
	}
	got := planResults(t.Restricted)
	sort.Strings(want)
	sort.Strings(got)
	if len(got) != len(want) {
		return fmt.Sprintf("restricted plan has %d result reads, expected %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Sprintf("restricted plan reads %q where %q is expected", got[i], want[i])
		}
	}
	return ""
}

// checkDeltaPairing runs after the simulation: every restricted
// materialization needs a later merge on the same loop publishing its
// delta table (that merge's identification pass produces the changed
// keys the restriction consumes next iteration), and every published
// delta table needs a consumer.
func (s *sim) checkDeltaPairing() {
	for i, st := range s.prog.Steps {
		switch t := st.(type) {
		case *core.DeltaMaterializeStep:
			found := false
			for j := i + 1; j < len(s.prog.Steps) && !found; j++ {
				if m, ok := s.prog.Steps[j].(*core.MergeStep); ok && m.Loop == t.Loop && norm(m.Delta) == norm(t.Delta) {
					found = true
				}
			}
			if !found {
				s.addf(i, ClassDeltaLiveness, "no later merge on the same loop publishes delta table %q for the restricted materialization of %s", t.Delta, t.Into)
			}
		case *core.MergeStep:
			if t.Delta == "" {
				continue
			}
			found := false
			for j := 0; j < i && !found; j++ {
				if d, ok := s.prog.Steps[j].(*core.DeltaMaterializeStep); ok && d.Loop == t.Loop && norm(d.Delta) == norm(t.Delta) {
					found = true
				}
			}
			if !found {
				s.addf(i, ClassDeltaLiveness, "merge %s publishes delta table %q but no restricted materialization consumes it", t.Into, t.Delta)
			}
		}
	}
}

// loopStep verifies the loop operator's wiring: jump target, counter
// initialization and termination-condition liveness, then walks the
// body once more to catch second-iteration faults.
func (s *sim) loopStep(i int, t *core.LoopStep, reEntry bool) {
	if t.Loop == nil {
		s.addf(i, ClassBadJump, "loop step has no loop state")
		return
	}

	// Termination liveness is evaluated every iteration, so it is
	// checked on both passes.
	suffix := ""
	if reEntry {
		suffix = " (on loop re-entry)"
	}
	switch t.Loop.Term.Type {
	case ast.TermData:
		if t.Loop.CondPlan == nil {
			s.addf(i, ClassDeadTermination, "Data termination for %s has no condition plan%s", t.Loop.CTEName, suffix)
		} else {
			for _, name := range planResults(t.Loop.CondPlan) {
				if s.live[name] == nil {
					if at, ok := s.truncated[name]; ok {
						s.addf(i, ClassPrematureTruncate, "termination condition reads result %q after step %d truncated it%s", name, at+1, suffix)
					} else {
						s.addf(i, ClassDeadTermination, "termination condition reads result %q, which is not live at the loop step%s", name, suffix)
					}
				}
			}
			s.checkResultCols(i, "termination condition", t.Loop.CondPlan, suffix, "")
		}
	case ast.TermDelta:
		if s.live[norm(t.Loop.CTEName)] == nil {
			if at, ok := s.truncated[norm(t.Loop.CTEName)]; ok {
				s.addf(i, ClassPrematureTruncate, "Delta termination compares result %q after step %d truncated it%s", t.Loop.CTEName, at+1, suffix)
			} else {
				s.addf(i, ClassDeadTermination, "Delta termination compares result %q, which is not live at the loop step%s", t.Loop.CTEName, suffix)
			}
		}
	}

	if reEntry {
		return
	}

	// Jump-target wiring (first pass only — it does not change).
	switch {
	case t.BodyStart < 0 || t.BodyStart >= len(s.prog.Steps):
		s.addf(i, ClassBadJump, "jump target step %d is outside the %d-step program", t.BodyStart+1, len(s.prog.Steps))
		return
	case t.BodyStart >= i:
		s.addf(i, ClassBadJump, "jump target step %d is not a backward jump from step %d", t.BodyStart+1, i+1)
		return
	}
	initIdx, ok := s.inits[t.Loop]
	if !ok {
		s.addf(i, ClassBadJump, "no preceding step initializes this loop's counter state")
		return
	}
	if t.BodyStart <= initIdx {
		s.addf(i, ClassBadJump, "jump target step %d re-executes the loop initialization at step %d every iteration", t.BodyStart+1, initIdx+1)
		return
	}

	// Walk the body once more: faults that only appear on the second
	// iteration (a body step consuming a result the first iteration
	// renamed away) surface here.
	s.bodies = append(s.bodies, [2]int{t.BodyStart, i})
	for j := t.BodyStart; j <= i; j++ {
		s.step(j, s.prog.Steps[j], true)
	}
}

// checkLeaks runs after the simulation: anything still live that the
// final query does not read must not have been created inside a loop
// body. Pre-loop materializations (the CTE seed, Common#k blocks) are
// constant-size and released by Program.Run's cleanup; a loop-body
// result surviving to the end means an iteration forgot to rename,
// merge or drop its working table.
func (s *sim) checkLeaks() {
	finalRefs := map[string]bool{}
	if s.prog.Final != nil {
		for _, name := range planResults(s.prog.Final) {
			finalRefs[name] = true
			if s.live[name] == nil {
				if at, ok := s.truncated[name]; ok {
					s.diags = append(s.diags, Diagnostic{Class: ClassPrematureTruncate,
						Message: fmt.Sprintf("final query reads result %q after step %d truncated it", name, at+1)})
				} else {
					s.diags = append(s.diags, Diagnostic{Class: ClassUseBeforeMaterialize,
						Message: fmt.Sprintf("final query reads result %q, which is not live when the steps complete", name)})
				}
			}
		}
		for _, r := range planResultNodes(s.prog.Final) {
			info := s.live[norm(r.Name)]
			if info == nil {
				continue
			}
			for _, c := range r.Cols {
				if !schemaHasColumn(info.schema, c.Name) {
					s.diags = append(s.diags, Diagnostic{Class: ClassPrunedColumnUse,
						Message: fmt.Sprintf("final query reads column %q of result %q, which its materialization does not provide", c.Name, r.Name)})
				}
			}
		}
	}
	for name, info := range s.live {
		if finalRefs[name] || s.deltas[name] || s.accs[name] {
			continue
		}
		for _, b := range s.bodies {
			if info.createdAt >= b[0] && info.createdAt <= b[1] {
				s.addf(info.createdAt, ClassLeak, "result %q created inside the loop body is still live when the program ends and the final query never reads it", info.display)
				break
			}
		}
	}
}

// bind registers (or re-binds) a result name.
func (s *sim) bind(i int, name string, schema sqltypes.Schema) {
	s.bindInfo(name, schema, i)
}

func (s *sim) bindInfo(name string, schema sqltypes.Schema, createdAt int) {
	display := name
	if prev := s.live[norm(name)]; prev != nil {
		// Re-binding keeps the original creation point (see resultInfo).
		createdAt = prev.createdAt
		display = prev.display
	}
	s.live[norm(name)] = &resultInfo{schema: schema, display: display, createdAt: createdAt}
	delete(s.truncated, norm(name))
}

func (s *sim) checkParts(i, parts int) {
	if normParts(parts) != normParts(s.prog.Parts) {
		s.addf(i, ClassInconsistentParts, "step uses %d partitions but the program declares %d", normParts(parts), normParts(s.prog.Parts))
	}
}

func normParts(p int) int {
	if p < 1 {
		return 1
	}
	return p
}

func norm(name string) string { return strings.ToLower(name) }

// planResults walks a plan tree and returns the (normalized) names of
// every intermediate result it reads.
func planResults(n plan.Node) []string {
	var out []string
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if n == nil {
			return
		}
		if r, ok := n.(*plan.NamedResult); ok {
			out = append(out, norm(r.Name))
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}

// planResultNodes walks a plan tree and returns every intermediate
// result node it reads, with the column lists the reader resolved.
func planResultNodes(n plan.Node) []*plan.NamedResult {
	var out []*plan.NamedResult
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if n == nil {
			return
		}
		if r, ok := n.(*plan.NamedResult); ok {
			out = append(out, r)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}

// schemasCompatible reports why two schemas cannot describe the same
// result ("" when they can). Column names must match position by
// position. Types must belong to the same family: INT and FLOAT are one
// numeric family, because iterative queries routinely widen an integer
// seed (SELECT src, 0, 0.15 ...) into float ranks on the first
// iteration and the executor's values are dynamically typed. Untyped
// columns (Unknown/Null, e.g. literal NULL seeds) match anything.
func schemasCompatible(a, b sqltypes.Schema) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d columns vs %d columns", len(a), len(b))
	}
	for i := range a {
		if !strings.EqualFold(a[i].Name, b[i].Name) {
			return fmt.Sprintf("column %d is %q vs %q", i+1, a[i].Name, b[i].Name)
		}
		ta, tb := a[i].Type, b[i].Type
		if ta == sqltypes.Unknown || ta == sqltypes.Null || tb == sqltypes.Unknown || tb == sqltypes.Null {
			continue
		}
		numeric := func(t sqltypes.Type) bool { return t == sqltypes.Int || t == sqltypes.Float }
		if ta == tb || (numeric(ta) && numeric(tb)) {
			continue
		}
		return fmt.Sprintf("column %s is %s vs %s", a[i].Name, ta, tb)
	}
	return ""
}
