package verify

import (
	"fmt"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/core"
)

// checkPushdown independently re-derives the §V-B safety conditions for
// every predicate the rewrite recorded as pushed below the loop
// (Program.Pushed). It deliberately does not reuse the optimizer's
// helpers: the conditions are recomputed from the original AST, so a bug
// in internal/core/optimize.go and a bug here must coincide for an
// unsafe push to slip through. The verifier fails closed — anything it
// cannot prove safe is reported.
//
// A push is safe only when, for the owning iterative CTE:
//
//  1. the termination condition is Metadata counting ITERATIONS (Data,
//     Delta and UPDATES counters all observe row sets or row counts a
//     filter changes);
//  2. the iterative part is a plain projection over the CTE itself — one
//     base-table scan, no joins, no grouping, no HAVING, no DISTINCT, no
//     aggregates;
//  3. the final query reads the CTE directly (FROM cte);
//  4. every column the predicate references is iteration-invariant: the
//     iterative part projects it through verbatim at the same position.
func checkPushdown(prog *core.Program, stmt *ast.SelectStmt) []Diagnostic {
	if len(prog.Pushed) == 0 {
		return nil
	}
	if stmt == nil || stmt.With == nil {
		return []Diagnostic{{Class: ClassUnsafePush,
			Message: fmt.Sprintf("program records %d pushed predicates but no source statement is available to re-check them", len(prog.Pushed))}}
	}

	var diags []Diagnostic
	ctes := map[string]*cteFacts{}
	for _, p := range prog.Pushed {
		facts, ok := ctes[strings.ToLower(p.CTE)]
		if !ok {
			facts = deriveCTEFacts(stmt, p.CTE)
			ctes[strings.ToLower(p.CTE)] = facts
		}
		if why := facts.pushUnsafe(p.Conj); why != "" {
			diags = append(diags, Diagnostic{Class: ClassUnsafePush,
				Message: fmt.Sprintf("predicate (%s) pushed into the non-iterative part of %s is not provably safe: %s", p.Conj, p.CTE, why)})
		}
	}
	return diags
}

// cteFacts is everything the re-check derives about one iterative CTE.
// A non-empty unsafe field poisons every push against the CTE.
type cteFacts struct {
	unsafe string // non-empty: condition 1-3 failed for every predicate
	cols   []string
	inv    []bool
	// qfAlias is the alias under which Qf exposes the CTE; predicate
	// qualifiers must match it (or be absent).
	qfAlias string
}

// deriveCTEFacts re-derives conditions 1-3 and the invariant-column
// vector from the statement.
func deriveCTEFacts(stmt *ast.SelectStmt, name string) *cteFacts {
	var cte *ast.CTE
	for _, c := range stmt.With.CTEs {
		if c.Iterative && strings.EqualFold(c.Name, name) {
			cte = c
			break
		}
	}
	if cte == nil {
		return &cteFacts{unsafe: "the statement has no iterative CTE of that name"}
	}

	// Condition 1: Metadata/ITERATIONS termination only.
	if cte.Until.Type != ast.TermMetadata {
		return &cteFacts{unsafe: "the termination condition inspects the CTE data, which a pushed filter changes"}
	}
	if cte.Until.CountUpdates {
		return &cteFacts{unsafe: "the termination condition counts UPDATES, and a pushed filter changes the per-iteration update counts"}
	}

	// Independent column naming: the declared column list, else the
	// left-most SELECT core of the non-iterative part. Positions the
	// naming cannot resolve stay "" and fail closed when referenced.
	cols := cteColumnNames(cte)
	if cols == nil {
		return &cteFacts{unsafe: "the CTE's column names cannot be derived from the statement"}
	}

	// Condition 2 + 4: the iterative part must be a plain self-projection
	// and each predicate column must pass through it verbatim.
	inv, why := invariantVector(cte, cols)
	if why != "" {
		return &cteFacts{unsafe: why}
	}

	// Condition 3: Qf reads the CTE directly.
	qfCore, ok := stmt.Body.(*ast.SelectCore)
	if !ok {
		return &cteFacts{unsafe: "the final query is not a plain SELECT over the CTE"}
	}
	base, ok := qfCore.From.(*ast.BaseTable)
	if !ok || !strings.EqualFold(base.Name, cte.Name) {
		return &cteFacts{unsafe: "the final query does not read the CTE directly"}
	}
	alias := base.Alias
	if alias == "" {
		alias = base.Name
	}
	return &cteFacts{cols: cols, inv: inv, qfAlias: alias}
}

// pushUnsafe explains why one pushed conjunct is not provably safe
// ("" when it is).
func (f *cteFacts) pushUnsafe(conj ast.Expr) string {
	if f.unsafe != "" {
		return f.unsafe
	}
	if ast.HasAggregate(conj) {
		return "the predicate contains an aggregate function"
	}
	why := ""
	ast.WalkExpr(conj, func(e ast.Expr) bool {
		ref, ok := e.(*ast.ColumnRef)
		if !ok {
			return true
		}
		if ref.Table != "" && !strings.EqualFold(ref.Table, f.qfAlias) {
			why = fmt.Sprintf("column %s.%s does not belong to the CTE as the final query names it", ref.Table, ref.Name)
			return false
		}
		idx := f.colIndex(ref.Name)
		if idx < 0 {
			why = fmt.Sprintf("column %s cannot be resolved to a unique CTE column", ref.Name)
			return false
		}
		if !f.inv[idx] {
			why = fmt.Sprintf("column %s is rewritten by the iterative part, so filtering it early changes later iterations", ref.Name)
			return false
		}
		return true
	})
	return why
}

// colIndex resolves a column name to a unique position (-1 when absent
// or ambiguous).
func (f *cteFacts) colIndex(name string) int {
	idx := -1
	for i, c := range f.cols {
		if c != "" && strings.EqualFold(c, name) {
			if idx >= 0 {
				return -1 // duplicate name: ambiguous, fail closed
			}
			idx = i
		}
	}
	return idx
}

// cteColumnNames derives the CTE's output column names without the
// planner: the declared list when present, otherwise the item aliases /
// column names of the left-most SELECT core of the non-iterative part
// (the arm whose names a UNION exposes). Unresolvable positions are "".
func cteColumnNames(cte *ast.CTE) []string {
	if len(cte.Cols) > 0 {
		return cte.Cols
	}
	if cte.Init == nil {
		return nil
	}
	body := cte.Init.Body
	for {
		u, ok := body.(*ast.UnionExpr)
		if !ok {
			break
		}
		body = u.Left
	}
	sc, ok := body.(*ast.SelectCore)
	if !ok {
		return nil
	}
	cols := make([]string, 0, len(sc.Items))
	for _, it := range sc.Items {
		switch {
		case isStar(it.Expr):
			return nil // SELECT *: widths unknowable without the catalog
		case it.Alias != "":
			cols = append(cols, it.Alias)
		default:
			if ref, ok := it.Expr.(*ast.ColumnRef); ok {
				cols = append(cols, ref.Name)
			} else {
				cols = append(cols, "") // expression without alias
			}
		}
	}
	return cols
}

func isStar(e ast.Expr) bool {
	_, ok := e.(*ast.Star)
	return ok
}

// invariantVector re-derives which CTE columns the iterative part passes
// through unchanged. A non-empty second return disqualifies the CTE
// (condition 2 failed); otherwise inv[i] reports column i invariant.
func invariantVector(cte *ast.CTE, cols []string) ([]bool, string) {
	if cte.Iter == nil {
		return nil, "the CTE has no iterative part"
	}
	sc, ok := cte.Iter.Body.(*ast.SelectCore)
	if !ok {
		return nil, "the iterative part is not a plain SELECT"
	}
	from, ok := sc.From.(*ast.BaseTable)
	if !ok || !strings.EqualFold(from.Name, cte.Name) {
		return nil, "the iterative part does not read the CTE as its only source"
	}
	if len(sc.GroupBy) > 0 || sc.Having != nil || sc.Distinct {
		return nil, "the iterative part groups or deduplicates rows"
	}
	if len(sc.Items) != len(cols) {
		return nil, fmt.Sprintf("the iterative part projects %d columns, the CTE has %d", len(sc.Items), len(cols))
	}
	fromAlias := from.Alias
	if fromAlias == "" {
		fromAlias = from.Name
	}
	inv := make([]bool, len(cols))
	for i, it := range sc.Items {
		if ast.HasAggregate(it.Expr) {
			return nil, "the iterative part contains an aggregate function"
		}
		ref, ok := it.Expr.(*ast.ColumnRef)
		if !ok {
			continue
		}
		if ref.Table != "" && !strings.EqualFold(ref.Table, fromAlias) {
			continue
		}
		if cols[i] != "" && strings.EqualFold(ref.Name, cols[i]) {
			inv[i] = true
		}
	}
	return inv, ""
}
