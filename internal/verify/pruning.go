package verify

import (
	"fmt"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/core"
	"dbspinner/internal/plan"
)

// checkPruning independently re-derives the column-liveness facts behind
// projection pruning (Options.ColumnPruning). For every iterative CTE of
// the original statement it compares the declared column list against
// the schema the program's first materialization of that CTE actually
// produces; any declared column the materialization omits must be
// provably dead. Deadness is recomputed from the AST alone — this file
// never calls internal/dataflow, so a bug in the analysis and a bug
// here must coincide for a live column to be dropped silently.
//
// A column the materialization omits is provably dead only when:
//
//  1. the termination condition does not observe whole rows (Delta
//     comparison, UPDATES counters);
//  2. it is not the first declared column (the merge/partitioning key);
//  3. the termination expression never reads it;
//  4. the iterative part never reads it outside its own dropped select
//     items — not in WHERE, GROUP BY, HAVING, ORDER BY, join conditions,
//     derived tables or a surviving item — and nothing references a
//     dropped item's alias;
//  5. no observer — the final query or another CTE's body that reads
//     this CTE — references it, and no such observer selects *.
func checkPruning(prog *core.Program, stmt *ast.SelectStmt) []Diagnostic {
	if stmt == nil || stmt.With == nil {
		for _, e := range prog.Dataflow {
			if len(e.Pruned) > 0 {
				return []Diagnostic{{Class: ClassPrunedColumnUse,
					Message: fmt.Sprintf("program records pruned columns for %s but no source statement is available to re-check them", e.Result)}}
			}
		}
		return nil
	}
	var diags []Diagnostic
	for _, cte := range stmt.With.CTEs {
		if !cte.Iterative {
			continue
		}
		diags = append(diags, checkCTEPruning(prog, stmt, cte)...)
	}
	return diags
}

// checkCTEPruning re-checks one iterative CTE. The empty return means
// either nothing was pruned or every omitted column is provably dead.
func checkCTEPruning(prog *core.Program, stmt *ast.SelectStmt, cte *ast.CTE) []Diagnostic {
	var mat *core.MaterializeStep
	step := 0
	for i, s := range prog.Steps {
		if m, ok := s.(*core.MaterializeStep); ok && strings.EqualFold(m.Into, cte.Name) {
			mat, step = m, i+1
			break
		}
	}
	if mat == nil {
		return nil // the program never materializes this CTE
	}
	declared := cteColumnNames(cte)
	schema := plan.Schema(mat.Plan)
	if declared == nil {
		return nil // widths unknowable (SELECT * seed); pruning is impossible to detect
	}

	var diags []Diagnostic
	addf := func(format string, args ...interface{}) {
		diags = append(diags, Diagnostic{Step: step, Class: ClassPrunedColumnUse,
			Message: fmt.Sprintf(format, args...)})
	}

	pruned := map[string]bool{}
	var prunedNames []string
	for _, d := range declared {
		if d == "" || schemaHasColumn(schema, d) {
			continue
		}
		pruned[strings.ToLower(d)] = true
		prunedNames = append(prunedNames, d)
	}
	if len(prunedNames) == 0 {
		if len(schema) < len(declared) {
			addf("materialization of %s has %d columns for %d declared, and the dropped names cannot be re-derived from the statement", cte.Name, len(schema), len(declared))
		}
		return diags
	}
	list := strings.Join(prunedNames, ", ")

	// Condition 1: whole-row observers forbid pruning outright.
	if cte.Until.Type == ast.TermDelta {
		addf("materialization of %s omits declared columns (%s) under Delta termination, which compares whole rows", cte.Name, list)
		return diags
	}
	if cte.Until.CountUpdates {
		addf("materialization of %s omits declared columns (%s) under an UPDATES counter, which observes changes in every column", cte.Name, list)
		return diags
	}

	// Condition 2: the merge/partitioning key must survive.
	if declared[0] != "" && pruned[strings.ToLower(declared[0])] {
		addf("materialization of %s omits its first declared column %q, the merge and partitioning key", cte.Name, declared[0])
	}

	// Condition 3: the termination expression. Any reference there can
	// only mean the CTE's own columns, so qualifiers are ignored.
	if cte.Until.Expr != nil {
		for _, r := range ast.ColumnRefs(cte.Until.Expr) {
			if pruned[strings.ToLower(r.Name)] {
				addf("materialization of %s omits declared column %q, which the termination condition reads", cte.Name, r.Name)
			}
		}
	}

	// Condition 4: the iterative part.
	diags = append(diags, checkIterPruning(cte, declared, pruned, step)...)

	// Condition 5: observers. StmtColumnRefs/StmtBaseTables skip the
	// WITH clause, so stmt itself stands in for the final query.
	diags = append(diags, checkObserverPruning(stmt, "the final query", cte.Name, pruned, step)...)
	for _, other := range stmt.With.CTEs {
		if other == cte {
			continue
		}
		what := fmt.Sprintf("the body of CTE %s", other.Name)
		for _, s := range []*ast.SelectStmt{other.Select, other.Init, other.Iter} {
			diags = append(diags, checkObserverPruning(s, what, cte.Name, pruned, step)...)
		}
	}
	return diags
}

// checkIterPruning verifies the iterative part never reads an omitted
// column outside the select items that were dropped with it. Items map
// to declared columns by position; everything the re-check cannot line
// up fails closed.
func checkIterPruning(cte *ast.CTE, declared []string, pruned map[string]bool, step int) []Diagnostic {
	var diags []Diagnostic
	addf := func(format string, args ...interface{}) {
		diags = append(diags, Diagnostic{Step: step, Class: ClassPrunedColumnUse,
			Message: fmt.Sprintf(format, args...)})
	}
	if cte.Iter == nil {
		return nil
	}
	sc, ok := cte.Iter.Body.(*ast.SelectCore)
	if !ok {
		addf("materialization of %s omits declared columns, but the iterative part is not a plain SELECT so their deadness cannot be re-derived", cte.Name)
		return diags
	}
	if len(sc.Items) != len(declared) {
		addf("materialization of %s omits declared columns, but the iterative part projects %d items for %d declared columns so they cannot be matched", cte.Name, len(sc.Items), len(declared))
		return diags
	}

	kept := make([]ast.SelectItem, 0, len(sc.Items))
	aliasDropped := map[string]bool{}
	for i, it := range sc.Items {
		if declared[i] != "" && pruned[strings.ToLower(declared[i])] {
			if it.Alias != "" {
				aliasDropped[strings.ToLower(it.Alias)] = true
			}
			continue
		}
		kept = append(kept, it)
	}
	nc := *sc
	nc.Items = kept
	ns := *cte.Iter
	ns.Body = &nc

	selfAliases := iterSelfAliases(&ns, cte.Name)
	refs, star := ast.StmtColumnRefs(&ns)
	if star {
		addf("materialization of %s omits declared columns (%s), but the iterative part selects * so their deadness cannot be proven", cte.Name, strings.Join(mapKeysSorted(pruned), ", "))
		return diags
	}
	reported := map[string]bool{}
	for _, r := range refs {
		key := strings.ToLower(r.Name)
		if r.Table != "" && !selfAliases[strings.ToLower(r.Table)] {
			continue // provably another table's column
		}
		if pruned[key] && !reported["c"+key] {
			reported["c"+key] = true
			addf("materialization of %s omits declared column %q, which the iterative part still reads", cte.Name, r.Name)
		}
		if r.Table == "" && aliasDropped[key] && !reported["a"+key] {
			reported["a"+key] = true
			addf("materialization of %s drops the select item aliased %q, which the iterative part still references", cte.Name, r.Name)
		}
	}
	return diags
}

// checkObserverPruning verifies one observing statement never reads an
// omitted column of the CTE. A statement that does not read the CTE at
// all is skipped; one that reads it through * fails closed.
func checkObserverPruning(s *ast.SelectStmt, what, cteName string, pruned map[string]bool, step int) []Diagnostic {
	if s == nil {
		return nil
	}
	aliases := map[string]bool{}
	for _, b := range ast.StmtBaseTables(s) {
		if !strings.EqualFold(b.Name, cteName) {
			continue
		}
		aliases[strings.ToLower(b.Name)] = true
		if b.Alias != "" {
			aliases[strings.ToLower(b.Alias)] = true
		}
	}
	if len(aliases) == 0 {
		return nil // this statement never reads the CTE
	}
	var diags []Diagnostic
	addf := func(format string, args ...interface{}) {
		diags = append(diags, Diagnostic{Step: step, Class: ClassPrunedColumnUse,
			Message: fmt.Sprintf(format, args...)})
	}
	refs, star := ast.StmtColumnRefs(s)
	if star {
		addf("materialization of %s omits declared columns (%s), but %s selects * so their deadness cannot be proven", cteName, strings.Join(mapKeysSorted(pruned), ", "), what)
		return diags
	}
	reported := map[string]bool{}
	for _, r := range refs {
		key := strings.ToLower(r.Name)
		if r.Table != "" && !aliases[strings.ToLower(r.Table)] {
			continue
		}
		if pruned[key] && !reported[key] {
			reported[key] = true
			addf("materialization of %s omits declared column %q, which %s still reads", cteName, r.Name, what)
		}
	}
	return diags
}

// iterSelfAliases collects the names under which the iterative part's
// FROM clause exposes the CTE itself (including derived tables, fail
// closed on none found is not needed: an unqualified reference always
// counts).
func iterSelfAliases(s *ast.SelectStmt, cteName string) map[string]bool {
	out := map[string]bool{}
	for _, b := range ast.StmtBaseTables(s) {
		if !strings.EqualFold(b.Name, cteName) {
			continue
		}
		out[strings.ToLower(b.Name)] = true
		if b.Alias != "" {
			out[strings.ToLower(b.Alias)] = true
		}
	}
	return out
}

func mapKeysSorted(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
