package verify

// Independent re-derivation of the checkpoint coverage that licenses
// iteration-granular retry (core retry.go). The rewrite records, per
// loop back-edge, the result-store slots and loop-operator slots the
// loop body can rebind, free or advance (core.Program.Checkpoints);
// the retry driver restores a snapshot of the loop-carried state and
// EXPLAIN prints the record as the checkpoint's contract. This file
// re-derives that coverage from the verifier's own effect analysis
// (effects.go — its own type switch and loop interner, deliberately
// not the core registry) and fails closed: a spec that is structurally
// wrong is unsafe-retry, and coverage the re-derivation proves missing
// is stale-checkpoint.

import (
	"fmt"

	"dbspinner/internal/core"
)

// checkCheckpoints verifies the recorded checkpoint specifications
// against the re-derived loop-body effect sets. Recorded specs may
// over-approximate (the runtime capture snapshots every tracked slot
// anyway) but must never miss a slot the body provably writes or
// frees. Hand-built programs record neither effects nor a schedule and
// are skipped — they also record no checkpoint specs, and their
// runtime checkpoints capture the dynamic superset.
func checkCheckpoints(prog *core.Program) []Diagnostic {
	if prog.Effects == nil && prog.Schedule == nil {
		return nil
	}
	var diags []Diagnostic
	addf := func(step int, class, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{Step: step, Class: class, Message: fmt.Sprintf(format, args...)})
	}
	derived, _, ok := reDerive(prog)
	if !ok {
		return nil // the simulation's unknown-step diagnostic already fails the program
	}
	specFor := map[int]*core.CheckpointSpec{}
	for i := range prog.Checkpoints {
		spec := &prog.Checkpoints[i]
		if spec.Loop < 1 || spec.Loop > len(prog.Steps) {
			addf(0, ClassUnsafeRetry, "checkpoint spec names step %d, outside the program", spec.Loop)
			continue
		}
		if _, isLoop := prog.Steps[spec.Loop-1].(*core.LoopStep); !isLoop {
			addf(spec.Loop, ClassUnsafeRetry, "checkpoint spec names step %d, which is not a loop step", spec.Loop)
			continue
		}
		if specFor[spec.Loop] != nil {
			addf(spec.Loop, ClassUnsafeRetry, "loop step %d carries more than one checkpoint spec", spec.Loop)
			continue
		}
		if spec.Body < 1 || spec.Body > spec.Loop {
			addf(spec.Loop, ClassUnsafeRetry, "checkpoint spec's body start %d does not precede its loop step %d", spec.Body, spec.Loop)
			continue
		}
		specFor[spec.Loop] = spec
	}
	for i, st := range prog.Steps {
		loop, isLoop := st.(*core.LoopStep)
		if !isLoop {
			continue
		}
		spec := specFor[i+1]
		if spec == nil {
			addf(i+1, ClassStaleCheckpoint, "loop step %d has no checkpoint spec; its back-edge cannot be retried soundly", i+1)
			continue
		}
		if spec.Body != loop.BodyStart+1 {
			addf(i+1, ClassUnsafeRetry, "checkpoint spec says the loop body starts at step %d but the loop jumps to step %d",
				spec.Body, loop.BodyStart+1)
			continue
		}
		// Re-derive the body's write/free coverage and the loop slots it
		// advances, over the retried range [BodyStart, loop].
		var slots, loopSlots []string
		for pc := loop.BodyStart; pc >= 0 && pc <= i; pc++ {
			e := derived[pc]
			slots = append(slots, e.writes...)
			slots = append(slots, e.frees...)
			loopSlots = append(loopSlots, e.loopWrites...)
		}
		if missing := missingFrom(spec.Slots, slots); len(missing) > 0 {
			addf(i+1, ClassStaleCheckpoint, "checkpoint spec omits slots the loop body writes or frees: %v", missing)
		}
		if missing := missingFrom(spec.LoopSlots, loopSlots); len(missing) > 0 {
			addf(i+1, ClassStaleCheckpoint, "checkpoint spec omits loop slots the body advances: %v", missing)
		}
	}
	return diags
}
