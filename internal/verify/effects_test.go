package verify

// Seeded-mutant tests for the effect-set and schedule re-derivation:
// each test rewrites a real query (so Effects and Schedule are the
// records the scheduler would actually trust), tampers with one record
// the way a buggy optimizer pass or a stale plan cache would, and
// checks the verifier fails closed with the right class.

import (
	"strings"
	"testing"

	"dbspinner/internal/core"
	"dbspinner/internal/effects"
)

func TestRewrittenProgramRecordsEffectsAndSchedule(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	if len(prog.Effects) != len(prog.Steps) {
		t.Fatalf("rewrite recorded %d effect sets for %d steps", len(prog.Effects), len(prog.Steps))
	}
	if prog.Schedule == nil || !prog.Schedule.Covers(len(prog.Steps)) {
		t.Fatalf("rewrite did not record a covering schedule: %+v", prog.Schedule)
	}
	if diags := Check(prog, parseStmt(t, unknownQuery)); len(diags) != 0 {
		t.Fatalf("honest program rejected: %v", diags)
	}
}

func TestUnderDeclaredReadFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	// A "leaner" effect record drops a step's reads — exactly the
	// under-declaration that would let the scheduler run it before its
	// producer.
	tampered := -1
	for i := range prog.Effects {
		if len(prog.Effects[i].Reads) > 0 {
			prog.Effects[i].Reads = nil
			tampered = i
			break
		}
	}
	if tampered < 0 {
		t.Fatal("no step with recorded reads to tamper with")
	}
	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassEffectViolation)
	if len(diags) == 0 {
		t.Fatal("under-declared read set not rejected")
	}
	if diags[0].Step != tampered+1 || !strings.Contains(diags[0].Message, "omits read") {
		t.Errorf("diagnostic should cite the tampered step's missing read: %v", diags[0])
	}
}

func TestStrippedBarrierFlagFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	tampered := -1
	for i := range prog.Effects {
		if prog.Effects[i].Control {
			prog.Effects[i].Control = false
			tampered = i
			break
		}
	}
	if tampered < 0 {
		t.Fatal("no control step to tamper with")
	}
	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassEffectViolation)
	if len(diags) == 0 {
		t.Fatal("stripped loop-control flag not rejected")
	}
	if !strings.Contains(diags[0].Message, "loop-control barrier flag") {
		t.Errorf("unexpected diagnostic wording: %s", diags[0].Message)
	}
}

func TestScheduleWithoutEffectsFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	prog.Effects = nil // schedule survives, its justification does not
	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassUnsoundSchedule)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "no effect sets") {
		t.Fatalf("schedule without effect sets not rejected: %v", diags)
	}
}

func TestBarrierInsideParallelRegionFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	// Collapse the whole program into one edge-free "parallel" region:
	// every conflict loses its ordering and every barrier lands inside.
	n := len(prog.Steps)
	prog.Schedule = &effects.Schedule{Regions: []effects.Region{
		{Start: 0, N: n, Succs: make([][]int, n), Width: n, CritPath: 1},
	}}
	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassUnsoundSchedule)
	var barrier, order bool
	for _, d := range diags {
		if strings.Contains(d.Message, "re-derives as a barrier") {
			barrier = true
		}
		if strings.Contains(d.Message, "no happens-before path") {
			order = true
		}
	}
	if !barrier || !order {
		t.Fatalf("collapsed schedule must report both barrier placement and missing ordering: %v", diags)
	}
}

func TestDroppedEdgeFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	// Strip the happens-before edges of a multi-step region that has
	// some: the re-derived conflicts are then unordered.
	tampered := false
	for i := range prog.Schedule.Regions {
		r := &prog.Schedule.Regions[i]
		if r.Barrier || r.N < 2 {
			continue
		}
		for a := range r.Succs {
			if len(r.Succs[a]) > 0 {
				r.Succs[a] = nil
				tampered = true
			}
		}
		if tampered {
			break
		}
	}
	if !tampered {
		t.Fatal("no multi-step region with edges to tamper with")
	}
	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassUnsoundSchedule)
	if len(diags) == 0 || !strings.Contains(diags[0].Message, "no happens-before path") {
		t.Fatalf("dropped edge not rejected: %v", diags)
	}
}

func TestBackwardEdgeFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	tampered := false
	for i := range prog.Schedule.Regions {
		r := &prog.Schedule.Regions[i]
		if !r.Barrier && r.N >= 2 {
			r.Succs[r.N-1] = append(r.Succs[r.N-1], 0) // backward edge
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no multi-step region to tamper with")
	}
	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassUnsoundSchedule)
	if len(diags) == 0 || !strings.Contains(diags[0].Message, "not a forward edge") {
		t.Fatalf("backward edge not rejected: %v", diags)
	}
}

func TestNonCoveringScheduleFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	prog.Schedule.Regions = prog.Schedule.Regions[:len(prog.Schedule.Regions)-1]
	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassUnsoundSchedule)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "do not partition") {
		t.Fatalf("non-covering schedule not rejected: %v", diags)
	}
}

func TestJumpIntoRegionMiddleFailsClosed(t *testing.T) {
	prog, _ := rewriteQuery(t, unknownQuery)
	// Re-wire the loop to jump one step into the body region: the
	// schedule no longer has a region starting there, so the scheduler
	// would re-enter the middle of an already-executed DAG.
	var loopStep *core.LoopStep
	for _, s := range prog.Steps {
		if l, ok := s.(*core.LoopStep); ok {
			loopStep = l
		}
	}
	if loopStep == nil {
		t.Fatal("no loop step")
	}
	if r := prog.Schedule.RegionAt(loopStep.BodyStart); r == nil || r.N < 2 {
		t.Fatalf("test premise: body region must start at the jump target and span several steps")
	}
	loopStep.BodyStart++
	diags := classDiags(Check(prog, parseStmt(t, unknownQuery)), ClassUnsoundSchedule)
	if len(diags) == 0 {
		t.Fatal("mid-region jump target not rejected")
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "not a region start") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diagnostic should name the mid-region jump: %v", diags)
	}
}

func TestHandBuiltProgramWithoutRecordsIsSkipped(t *testing.T) {
	prog, _ := validProgram()
	if prog.Effects != nil || prog.Schedule != nil {
		t.Fatal("hand-built program should record neither effects nor schedule")
	}
	if diags := append(checkEffects(prog), checkSchedule(prog)...); len(diags) != 0 {
		t.Fatalf("hand-built program must be skipped: %v", diags)
	}
}
