package verify

// Independent re-derivation of the static effect analysis
// (internal/effects) that licenses the parallel step scheduler. The
// rewrite records, per step, the result-store slots it reads, writes
// and frees plus its loop-control accesses (core.Program.Effects), and
// the region schedule built from them (core.Program.Schedule); the
// scheduler trusts both. This file re-derives the effect sets from the
// steps themselves — its own type switch, its own loop-state interner,
// its own conflict test, deliberately NOT the core registry — and fails
// closed: a recorded set missing a proved access is effect-violation,
// and a schedule that would admit an interleaving the re-derived
// conflicts forbid is unsound-schedule.

import (
	"fmt"
	"sort"

	"dbspinner/internal/ast"
	"dbspinner/internal/core"
)

// stepEffects is the verifier's own effect record for one step.
type stepEffects struct {
	reads, writes, frees   []string
	loopReads, loopWrites  []string
	control, observesStats bool
}

func (e stepEffects) barrier() bool { return e.control || e.observesStats }

// conflictsWith is Bernstein's conditions over result-store slots and
// loop states: two steps conflict when either touches, by write or
// free, anything the other accesses at all — and likewise over loop
// slots, where any loop write against any loop access conflicts.
func (e stepEffects) conflictsWith(o stepEffects) bool {
	wa := concat(e.writes, e.frees)
	wb := concat(o.writes, o.frees)
	if hits(wa, concat(o.reads, wb)) || hits(e.reads, wb) {
		return true
	}
	lwa, lwb := e.loopWrites, o.loopWrites
	return hits(lwa, concat(o.loopReads, lwb)) || hits(e.loopReads, lwb)
}

func concat(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func hits(a, b []string) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, n := range a {
		set[norm(n)] = true
	}
	for _, n := range b {
		if set[norm(n)] {
			return true
		}
	}
	return false
}

// loopSlotInterner assigns stable names to loop states in
// first-encounter order — the same scheme the producer uses, re-run
// from scratch so the two sides agree by construction, not by sharing
// state.
type loopSlotInterner map[*core.LoopState]string

func (l loopSlotInterner) slot(ls *core.LoopState) string {
	if ls == nil {
		return ""
	}
	if id, ok := l[ls]; ok {
		return id
	}
	id := fmt.Sprintf("loop#%d", len(l)+1)
	l[ls] = id
	return id
}

// deriveStepEffects re-derives one step's effect set from its fields.
// The boolean is false for step kinds this verifier does not know —
// the caller fails closed. spinlint's stepeffects analyzer keeps this
// switch covering every core.Step implementer.
func deriveStepEffects(st core.Step, loops loopSlotInterner) (stepEffects, bool) {
	var e stepEffects
	switch t := st.(type) {
	case *core.MaterializeStep:
		e.reads = planResults(t.Plan)
		e.writes = []string{t.Into}

	case *core.DeltaMaterializeStep:
		e.reads = append(planResults(t.Full), planResults(t.Restricted)...)
		e.reads = append(e.reads, t.CTE, t.Delta)
		e.writes = []string{t.Into, t.DeltaIn}
		e.frees = []string{t.DeltaIn}
		e.loopReads = []string{loops.slot(t.Loop)}

	case *core.MaintainAggStep:
		e.reads = append(planResults(t.Full), planResults(t.Restricted)...)
		e.reads = append(e.reads, t.CTE, t.Acc, t.Snap)
		e.writes = []string{t.Into, t.AggIn, t.Acc, t.Snap}
		e.frees = []string{t.AggIn}

	case *core.RenameStep:
		e.reads = []string{t.From}
		e.writes = []string{t.To}
		e.frees = []string{t.From}

	case *core.CopyBackStep:
		e.reads = []string{t.From, t.To}
		e.writes = []string{t.To}
		e.frees = []string{t.From}
		if t.Loop != nil {
			e.loopWrites = []string{loops.slot(t.Loop)}
		}

	case *core.MergeStep:
		e.reads = []string{t.CTE, t.Work}
		e.writes = []string{t.Into}
		if t.Delta != "" {
			e.writes = append(e.writes, t.Delta)
		}
		if t.Loop != nil {
			e.loopWrites = []string{loops.slot(t.Loop)}
		}

	case *core.TruncateStep:
		e.frees = []string{t.Name}

	case *core.InitLoopStep:
		e.control = true
		if t.Loop != nil {
			e.loopWrites = []string{loops.slot(t.Loop)}
			if t.Loop.Term.Type == ast.TermDelta {
				e.reads = []string{t.Loop.CTEName}
			}
		}

	case *core.UpdateLoopStep:
		e.control = true
		e.observesStats = true
		if t.Loop != nil {
			slot := loops.slot(t.Loop)
			e.loopReads = []string{slot}
			e.loopWrites = []string{slot}
		}

	case *core.LoopStep:
		e.control = true
		if t.Loop != nil {
			slot := loops.slot(t.Loop)
			e.loopReads = []string{slot}
			e.loopWrites = []string{slot}
			if t.Loop.CondPlan != nil {
				e.reads = append(e.reads, planResults(t.Loop.CondPlan)...)
			}
			if t.Loop.Term.Type == ast.TermDelta {
				e.reads = append(e.reads, t.Loop.CTEName)
			}
		}

	default:
		return e, false
	}
	return e, true
}

// reDerive re-derives every step's effect set, or reports which step
// kind blocked it (fail closed: a program we cannot re-derive must not
// carry a schedule).
func reDerive(prog *core.Program) ([]stepEffects, int, bool) {
	loops := loopSlotInterner{}
	out := make([]stepEffects, len(prog.Steps))
	for i, st := range prog.Steps {
		e, ok := deriveStepEffects(st, loops)
		if !ok {
			return nil, i, false
		}
		out[i] = e
	}
	return out, -1, true
}

// missingFrom returns the derived names absent from the recorded list
// (case-insensitive), sorted and deduplicated for stable diagnostics.
func missingFrom(recorded, derived []string) []string {
	have := make(map[string]bool, len(recorded))
	for _, n := range recorded {
		have[norm(n)] = true
	}
	seen := map[string]bool{}
	var out []string
	for _, n := range derived {
		if k := norm(n); !have[k] && !seen[k] {
			seen[k] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// checkEffects verifies the recorded per-step effect sets against the
// re-derivation: recorded sets may over-approximate (that only loses
// parallelism) but must never miss a proved access or barrier flag.
// Hand-built programs record neither effects nor a schedule and are
// skipped — they always execute sequentially.
func checkEffects(prog *core.Program) []Diagnostic {
	if prog.Effects == nil && prog.Schedule == nil {
		return nil
	}
	var diags []Diagnostic
	addf := func(step int, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{Step: step, Class: ClassEffectViolation, Message: fmt.Sprintf(format, args...)})
	}
	if prog.Effects == nil {
		diags = append(diags, Diagnostic{Class: ClassUnsoundSchedule,
			Message: "program records a schedule but no effect sets to justify it"})
		return diags
	}
	if len(prog.Effects) != len(prog.Steps) {
		addf(0, "program records %d effect sets for %d steps", len(prog.Effects), len(prog.Steps))
		return diags
	}
	loops := loopSlotInterner{}
	for i, st := range prog.Steps {
		d, ok := deriveStepEffects(st, loops)
		if !ok {
			// The simulation's unknown-step diagnostic names the type; a
			// recorded effect set for a step we cannot re-derive is
			// additionally unsound on its own.
			addf(i+1, "recorded effect set cannot be re-derived for step type %T", st)
			continue
		}
		rec := prog.Effects[i]
		for _, m := range []struct {
			kind              string
			recorded, derived []string
		}{
			{"read", rec.Reads, d.reads},
			{"write", rec.Writes, d.writes},
			{"free", rec.Frees, d.frees},
			{"loop-read", rec.LoopReads, d.loopReads},
			{"loop-write", rec.LoopWrites, d.loopWrites},
		} {
			for _, name := range missingFrom(m.recorded, m.derived) {
				addf(i+1, "recorded effect set omits %s of %q, which the re-derivation proves", m.kind, name)
			}
		}
		if d.control && !rec.Control {
			addf(i+1, "recorded effect set omits the loop-control barrier flag")
		}
		if d.observesStats && !rec.ObservesStats {
			addf(i+1, "recorded effect set omits the observes-stats barrier flag")
		}
	}
	return diags
}

// checkSchedule verifies the recorded region schedule against the
// re-derived effects: regions must partition the step list, barrier
// steps must run alone, every loop jump must land on a region start,
// edges must be well-formed and forward-only, and every re-derived
// conflict inside a region must be ordered by a happens-before path.
func checkSchedule(prog *core.Program) []Diagnostic {
	if prog.Schedule == nil {
		return nil
	}
	var diags []Diagnostic
	addf := func(step int, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{Step: step, Class: ClassUnsoundSchedule, Message: fmt.Sprintf(format, args...)})
	}
	sched := prog.Schedule
	if !sched.Covers(len(prog.Steps)) {
		addf(0, "regions do not partition the %d-step program contiguously", len(prog.Steps))
		return diags
	}
	derived, at, ok := reDerive(prog)
	if !ok {
		addf(at+1, "schedule cannot be checked: step type %T has no re-derivable effect set", prog.Steps[at])
		return diags
	}
	for ri := range sched.Regions {
		r := &sched.Regions[ri]
		if r.Barrier && r.N != 1 {
			addf(r.Start+1, "barrier region spans %d steps; barriers must run alone", r.N)
			continue
		}
		if r.Barrier {
			continue
		}
		// Malformed edges first: Ordered assumes forward, in-range edges.
		wellFormed := true
		if len(r.Succs) != r.N {
			addf(r.Start+1, "region records %d edge lists for %d steps", len(r.Succs), r.N)
			continue
		}
		for a := 0; a < r.N; a++ {
			for _, b := range r.Succs[a] {
				if b <= a || b >= r.N {
					addf(r.Start+a+1, "edge to local step %d is not a forward edge inside the %d-step region", b, r.N)
					wellFormed = false
				}
			}
		}
		if !wellFormed {
			continue
		}
		for a := 0; a < r.N; a++ {
			ga := r.Start + a
			if derived[ga].barrier() {
				addf(ga+1, "step re-derives as a barrier (loop control or stats) but sits inside a %d-step parallel region", r.N)
			}
			for b := a + 1; b < r.N; b++ {
				if derived[ga].conflictsWith(derived[r.Start+b]) && !r.Ordered(a, b) {
					addf(ga+1, "no happens-before path orders step %d before conflicting step %d", ga+1, r.Start+b+1)
				}
			}
		}
	}
	for i, st := range prog.Steps {
		if l, isLoop := st.(*core.LoopStep); isLoop {
			if sched.RegionAt(l.BodyStart) == nil {
				addf(i+1, "loop jump target step %d is not a region start; the scheduler would re-enter mid-region", l.BodyStart+1)
			}
		}
	}
	return diags
}
