package verify

// Seeded-mutant tests for the partition-property re-derivation: take a
// genuinely rewritten program whose claims and elisions verify clean,
// corrupt one record the way a buggy producer would, and require the
// independent re-derivation to fail closed on exactly that record.

import (
	"testing"

	"dbspinner/internal/core"
	"dbspinner/internal/distprop"
)

// elisionProgram rewrites an iterative join query under a parallel
// 2-partition configuration: the loop body joins the CTE (hash(0),
// iteration-invariant through the rename) with the edges scan
// (hash(src)), so both join-side exchanges are licensed and recorded.
func elisionProgram(t *testing.T) *core.Program {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Parts = 2
	opts.Parallel = true
	stmt := parseStmt(t, `WITH ITERATIVE c (k, v) AS (
		SELECT src, dst FROM edges
		ITERATE SELECT c.k, e.dst FROM c JOIN edges AS e ON c.k = e.src
		UNTIL 2 ITERATIONS) SELECT k, v FROM c`)
	prog, err := core.Rewrite(stmt, newRT(t), opts)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if len(prog.DistProps) == 0 {
		t.Fatal("rewrite recorded no distribution claims")
	}
	if len(prog.Elisions) == 0 {
		t.Fatal("rewrite licensed no elisions; the mutants below would be vacuous")
	}
	return prog
}

func requireClass(t *testing.T, diags []Diagnostic, class string) {
	t.Helper()
	for _, d := range diags {
		if d.Class == class {
			return
		}
	}
	t.Fatalf("expected a %s diagnostic, got %v", class, diags)
}

func requireClean(t *testing.T, diags []Diagnostic) {
	t.Helper()
	if len(diags) != 0 {
		t.Fatalf("expected clean verification, got %v", diags)
	}
}

// TestRecordedDistPropsReverify: the untouched rewrite output passes
// its own re-derivation (and did so already inside Rewrite, since
// Options.Verify is on).
func TestRecordedDistPropsReverify(t *testing.T) {
	prog := elisionProgram(t)
	requireClean(t, checkDistProps(prog))
}

// TestRejectsWidenedPropertyClaim: a producer bug that widens a claimed
// key set — hash(k) recorded as hash(k, v) — claims placement the
// machine does not guarantee.
func TestRejectsWidenedPropertyClaim(t *testing.T) {
	prog := elisionProgram(t)
	mutated := false
	for i, c := range prog.DistProps {
		if c.Prop.Kind == distprop.KindHash {
			prog.DistProps[i].Prop = distprop.Hash(append(append([]int(nil), c.Prop.Cols...), 1)...)
			mutated = true
			break
		}
	}
	if !mutated {
		t.Fatal("no hash claim to widen")
	}
	requireClass(t, checkDistProps(prog), ClassUnsoundDistProp)
}

// TestRejectsClaimOnNonInvariantLoopSlot: the body of this query
// computes the CTE's first column (k + 1), so the seed's hash(src)
// layout does not survive the back-edge and the slot provably
// satisfies nothing at the loop head; claiming hash(0) for the body
// materialization trusts a layout the back-edge destroys.
func TestRejectsClaimOnNonInvariantLoopSlot(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Parts = 2
	opts.Parallel = true
	stmt := parseStmt(t, `WITH ITERATIVE c (k, v) AS (
		SELECT src, dst FROM edges
		ITERATE SELECT k + 1, v FROM c UNTIL 3 ITERATIONS) SELECT k FROM c`)
	prog, err := core.Rewrite(stmt, newRT(t), opts)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	requireClean(t, checkDistProps(prog))
	mutated := false
	for i, c := range prog.DistProps {
		if c.Step > 0 && c.Slot != "" && c.Prop.Kind == distprop.KindUnknown {
			if _, ok := prog.Steps[c.Step-1].(*core.MaterializeStep); ok {
				prog.DistProps[i].Prop = distprop.Hash(0)
				mutated = true
				break
			}
		}
	}
	if !mutated {
		t.Fatal("no unknown-property materialize claim to corrupt")
	}
	requireClass(t, checkDistProps(prog), ClassUnsoundDistProp)
}

// TestRejectsClaimPastFrontierExpandingMerge: a MergeStep rebuilds its
// output hash-distributed on the merge key (column 0); a claim that the
// merged table is distributed on some other column survives no
// re-derivation.
func TestRejectsClaimPastFrontierExpandingMerge(t *testing.T) {
	prog := mergeProgram(0)
	prog.DistProps = []core.DistClaim{
		{Step: 4, Slot: "Merge#t", Prop: distprop.Hash(1), Desc: "hash(v)"},
	}
	requireClass(t, checkDistProps(prog), ClassUnsoundDistProp)
}

// TestRejectsClaimOnUnboundStep: a claim naming a step that binds no
// result (loop bookkeeping) is structurally unsound.
func TestRejectsClaimOnUnboundStep(t *testing.T) {
	prog := elisionProgram(t)
	for i, s := range prog.Steps {
		if _, ok := s.(*core.UpdateLoopStep); ok {
			prog.DistProps = append(prog.DistProps, core.DistClaim{
				Step: i + 1, Slot: "ghost", Prop: distprop.Hash(0),
			})
			requireClass(t, checkDistProps(prog), ClassUnsoundDistProp)
			return
		}
	}
	t.Fatal("program has no loop bookkeeping step")
}

// TestRejectsElisionWithIncompatibleKeyOrder: the re-derivation
// licenses each exchange on exact routing columns in key order;
// perturbing the recorded columns — the bug a swapped or re-ordered
// key list would produce — must fail closed.
func TestRejectsElisionWithIncompatibleKeyOrder(t *testing.T) {
	prog := elisionProgram(t)
	for i := range prog.Elisions {
		cols := prog.Elisions[i].Cols
		for j := range cols {
			cols[j]++
		}
		_ = i
		break
	}
	requireClass(t, checkDistProps(prog), ClassMissingExchange)
}

// TestRejectsFabricatedElision: an elision on a node the re-derivation
// never licensed (here: the final query's CTE read, which has no
// exchange at all) is a missing exchange.
func TestRejectsFabricatedElision(t *testing.T) {
	prog := elisionProgram(t)
	prog.Elisions = append(prog.Elisions, core.ElisionRecord{
		Step: 0, Node: prog.Final, Exch: distprop.JoinLeft, Cols: []int{0},
	})
	requireClass(t, checkDistProps(prog), ClassMissingExchange)
}

// TestRejectsElisionWithoutShuffles: elisions in a program that never
// shuffles (sequential, or a single partition) license the machine to
// skip exchanges that do not exist.
func TestRejectsElisionWithoutShuffles(t *testing.T) {
	prog := elisionProgram(t)
	prog.Parallel = false
	requireClass(t, checkDistProps(prog), ClassMissingExchange)
}

// TestHandBuiltProgramsSkipDistCheck: programs that never ran the
// analysis record neither claims nor elisions and are not checked.
func TestHandBuiltProgramsSkipDistCheck(t *testing.T) {
	prog, _ := validProgram()
	requireClean(t, checkDistProps(prog))
}
