package verify

import (
	"strings"
	"testing"

	"dbspinner/internal/aggprop"
	"dbspinner/internal/ast"
	"dbspinner/internal/core"
)

// ---------------------------------------------------------------------
// Incremental aggregate maintenance: licensed programs pass, seeded
// mutants trip the two new invariant classes.
// ---------------------------------------------------------------------

// prAggSQL is a PageRank-shaped query the decomposability analysis
// licenses through the invertible rung (SUM).
const prAggSQL = `WITH ITERATIVE pr (node, rank, delta) AS (
  SELECT src, 0, 0.15 FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE SELECT pr.node, pr.rank + pr.delta, 0.85 * SUM(n.delta * e.weight)
  FROM pr LEFT JOIN edges AS e ON pr.node = e.dst
    LEFT JOIN pr AS n ON n.node = e.src
  GROUP BY pr.node, pr.rank + pr.delta
 UNTIL 3 ITERATIONS) SELECT node, rank FROM pr`

// ssspAggSQL is an SSSP-shaped query licensed through the monotone
// rung (MIN under a LEAST envelope); its WHERE clause sends it down
// the merge path.
const ssspAggSQL = `WITH ITERATIVE s (node, dist, delta) AS (
  SELECT src, 9999999, CASE WHEN src = 1 THEN 0 ELSE 9999999 END
   FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE SELECT s.node, LEAST(s.dist, s.delta), COALESCE(MIN(n.delta + e.weight), 9999999)
  FROM s LEFT JOIN edges AS e ON s.node = e.dst
    LEFT JOIN s AS n ON n.node = e.src
  WHERE n.delta != 9999999
  GROUP BY s.node, LEAST(s.dist, s.delta)
 UNTIL 3 ITERATIONS) SELECT node, dist FROM s`

// rewriteAgg rewrites sql with maintenance on and returns the program,
// the statement, and the index of the MaintainAggStep.
func rewriteAgg(t *testing.T, sql string) (*core.Program, *ast.SelectStmt, int) {
	t.Helper()
	rt := newRT(t)
	stmt := parseStmt(t, sql)
	prog, err := core.Rewrite(stmt, rt, core.DefaultOptions())
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	for i, s := range prog.Steps {
		if _, ok := s.(*core.MaintainAggStep); ok {
			return prog, stmt, i
		}
	}
	t.Fatalf("no MaintainAggStep in the rewritten program:\n%s", prog.Explain())
	return nil, nil, 0
}

func TestLicensedMaintainProgramsVerifyClean(t *testing.T) {
	for name, sql := range map[string]string{"PR": prAggSQL, "SSSP": ssspAggSQL} {
		t.Run(name, func(t *testing.T) {
			prog, stmt, _ := rewriteAgg(t, sql)
			if diags := Check(prog, stmt); len(diags) != 0 {
				t.Errorf("licensed program rejected: %v", diags)
			}
		})
	}
}

// TestRejectsUnsoundAggClaims seeds mutants of the licensing record:
// each must trip unsound-agg-claim, because the verifier re-derives
// the analysis with its own dispatch instead of trusting the claim.
func TestRejectsUnsoundAggClaims(t *testing.T) {
	t.Run("MIN recorded as invertible", func(t *testing.T) {
		prog, stmt, _ := rewriteAgg(t, ssspAggSQL)
		for i := range prog.AggClaims {
			for j := range prog.AggClaims[i].Verdict.Calls {
				prog.AggClaims[i].Verdict.Calls[j].Class = aggprop.Invertible
			}
		}
		assertDiag(t, Check(prog, stmt), ClassUnsoundAggClaim, "stronger than the re-derived class")
	})
	t.Run("installed step without a licensed claim", func(t *testing.T) {
		prog, stmt, _ := rewriteAgg(t, prAggSQL)
		for i := range prog.AggClaims {
			prog.AggClaims[i].Verdict.Licensed = false
		}
		assertDiag(t, Check(prog, stmt), ClassUnsoundAggClaim, "without a licensed incremental-aggregate claim")
	})
	t.Run("licensed claim with no statement to re-prove against", func(t *testing.T) {
		prog, _, _ := rewriteAgg(t, prAggSQL)
		assertDiag(t, Check(prog, nil), ClassUnsoundAggClaim, "no original statement")
	})
	t.Run("statement with unstable group keys", func(t *testing.T) {
		// The program claims a licensed PR, but the statement under
		// verification groups without the outer key: the independent
		// re-derivation must refuse the claim.
		prog, _, _ := rewriteAgg(t, prAggSQL)
		bad := parseStmt(t, strings.Replace(prAggSQL,
			"GROUP BY pr.node, pr.rank + pr.delta",
			"GROUP BY pr.rank + pr.delta", 1))
		assertDiag(t, Check(prog, bad), ClassUnsoundAggClaim, "fails the independent re-derivation")
	})
	t.Run("statement with an unrouted inner reference", func(t *testing.T) {
		prog, _, _ := rewriteAgg(t, prAggSQL)
		bad := parseStmt(t, strings.Replace(prAggSQL,
			"ON n.node = e.src",
			"ON n.delta = e.weight", 1))
		assertDiag(t, Check(prog, bad), ClassUnsoundAggClaim, "fails the independent re-derivation")
	})
	t.Run("statement whose aggregate the claim does not cover", func(t *testing.T) {
		prog, _, _ := rewriteAgg(t, ssspAggSQL)
		// Claim says MIN; statement computes MAX (with the matching
		// GREATEST envelope, so the re-derivation itself succeeds).
		bad := parseStmt(t, strings.ReplaceAll(strings.ReplaceAll(ssspAggSQL, "LEAST", "GREATEST"), "MIN(", "MAX("))
		assertDiag(t, Check(prog, bad), ClassUnsoundAggClaim, "which the re-derivation does not find")
	})
}

// TestRejectsStaleAccumulatorWiring seeds structural mutants of the
// rewritten program: each must trip stale-accumulator.
func TestRejectsStaleAccumulatorWiring(t *testing.T) {
	t.Run("CTE published before the maintenance diffs it", func(t *testing.T) {
		prog, stmt, i := rewriteAgg(t, prAggSQL)
		// Swap the maintain step with the rename that follows it: the
		// body then re-points the CTE name before the diff runs, so the
		// frontier is always empty.
		prog.Steps[i], prog.Steps[i+1] = prog.Steps[i+1], prog.Steps[i]
		assertDiag(t, Check(prog, stmt), ClassStaleAccumulator, "before the aggregate maintenance diffs it")
	})
	t.Run("maintenance outside every loop body", func(t *testing.T) {
		prog, stmt, i := rewriteAgg(t, prAggSQL)
		for _, s := range prog.Steps {
			if l, ok := s.(*core.LoopStep); ok && l.BodyStart == i {
				l.BodyStart = i + 1
			}
		}
		assertDiag(t, Check(prog, stmt), ClassStaleAccumulator, "outside every loop body")
	})
	t.Run("accumulator freed inside the loop body", func(t *testing.T) {
		prog, stmt, i := rewriteAgg(t, prAggSQL)
		ma := prog.Steps[i].(*core.MaintainAggStep)
		// Wipe the cache right after it is written, still inside the
		// body: every iteration would start cold and the one-writer rule
		// must say so.
		rest := append([]core.Step{&core.TruncateStep{Name: ma.Acc}}, prog.Steps[i+1:]...)
		prog.Steps = append(prog.Steps[:i+1:i+1], rest...)
		for _, s := range prog.Steps {
			if l, ok := s.(*core.LoopStep); ok && l.BodyStart > i {
				l.BodyStart = i
			}
		}
		assertDiag(t, Check(prog, stmt), ClassStaleAccumulator, "frees accumulator slot")
	})
	t.Run("foreign writer into the accumulator slot", func(t *testing.T) {
		prog, stmt, i := rewriteAgg(t, prAggSQL)
		ma := prog.Steps[i].(*core.MaintainAggStep)
		prog.Steps = append(prog.Steps, &core.RenameStep{From: ma.Into, To: ma.Acc})
		assertDiag(t, Check(prog, stmt), ClassStaleAccumulator, "also writes accumulator slot")
	})
	t.Run("restricted plan never reads the frontier input", func(t *testing.T) {
		prog, stmt, i := rewriteAgg(t, prAggSQL)
		ma := prog.Steps[i].(*core.MaintainAggStep)
		// Point the restricted plan at the full one: it re-folds the
		// whole CTE but never consumes AggIn, so the maintained splice
		// would serve cached groups that nothing re-validates.
		ma.Restricted = ma.Full
		assertDiag(t, Check(prog, stmt), ClassStaleAccumulator, "never reads")
	})
}

func assertDiag(t *testing.T, diags []Diagnostic, class, frag string) {
	t.Helper()
	for _, d := range diags {
		if d.Class == class && strings.Contains(d.Message, frag) {
			return
		}
	}
	t.Errorf("no %s diagnostic containing %q; got %v", class, frag, diags)
}
