package verify

// Incremental-aggregate cross-check: the rewrite runs the aggprop
// analysis and acts on its verdict — recording the claim for EXPLAIN
// and installing a MaintainAggStep whose cached groups the executor
// then serves without re-folding. A bug in that analysis (or a
// fabricated claim) silently produces stale aggregates. This file
// re-derives the decomposability lattice and both side conditions from
// the ORIGINAL statement with its own dispatch and its own
// equivalence-closure fixpoint over column equalities — deliberately
// NOT aggprop's direct two-hop scan — and fails closed: any licensed
// claim or installed step the re-derivation cannot re-prove is
// unsound-agg-claim. spinlint's aggdispatch analyzer keeps the
// classification switch below covering every aggregate function the
// plan builder accepts.

import (
	"fmt"
	"strings"

	"dbspinner/internal/aggprop"
	"dbspinner/internal/ast"
	"dbspinner/internal/core"
)

// vAggClass is this checker's own rung numbering of the
// decomposability lattice; greater is stronger.
type vAggClass int

const (
	vHolistic vAggClass = iota
	vMonotone
	vInvertible
)

// rankOf maps the producer's class onto this checker's rungs, by
// explicit dispatch rather than shared integer values so a reordering
// of either enum cannot silently weaken the comparison.
func rankOf(c aggprop.Class) vAggClass {
	switch c {
	case aggprop.Invertible:
		return vInvertible
	case aggprop.Monotone:
		return vMonotone
	}
	return vHolistic
}

// checkAggProps re-derives the licensing analysis for every licensed
// incremental-aggregate claim and every installed MaintainAggStep.
// Unlicensed claims assert nothing and are skipped.
func checkAggProps(prog *core.Program, stmt *ast.SelectStmt) []Diagnostic {
	var diags []Diagnostic

	claims := map[string]*core.AggClaim{}
	for i := range prog.AggClaims {
		claims[norm(prog.AggClaims[i].CTE)] = &prog.AggClaims[i]
	}
	anyLicensed := false
	for _, c := range claims {
		if c.Verdict.Licensed {
			anyLicensed = true
		}
	}

	// An installed maintenance step without a licensed claim is unsound
	// regardless of the statement: nothing even asserts the analysis ran.
	for i, st := range prog.Steps {
		t, ok := st.(*core.MaintainAggStep)
		if !ok {
			continue
		}
		if c := claims[norm(t.CTE)]; c == nil || !c.Verdict.Licensed {
			diags = append(diags, Diagnostic{Step: i + 1, Class: ClassUnsoundAggClaim,
				Message: fmt.Sprintf("aggregate maintenance of %s installed without a licensed incremental-aggregate claim", t.CTE)})
		}
	}

	if !anyLicensed {
		return diags
	}
	if stmt == nil || stmt.With == nil {
		// Hand-built programs carry no statement; a licensed claim then
		// has nothing to be re-proved against. Fail closed.
		for _, c := range prog.AggClaims {
			if c.Verdict.Licensed {
				diags = append(diags, Diagnostic{Step: c.Step, Class: ClassUnsoundAggClaim,
					Message: fmt.Sprintf("licensed incremental-aggregate claim for %s cannot be re-derived: no original statement", c.CTE)})
			}
		}
		return diags
	}

	ctes := map[string]*ast.CTE{}
	for _, cte := range stmt.With.CTEs {
		ctes[norm(cte.Name)] = cte
	}
	for i := range prog.AggClaims {
		c := &prog.AggClaims[i]
		if !c.Verdict.Licensed {
			continue
		}
		cte := ctes[norm(c.CTE)]
		if cte == nil {
			diags = append(diags, Diagnostic{Step: c.Step, Class: ClassUnsoundAggClaim,
				Message: fmt.Sprintf("licensed incremental-aggregate claim for %s, which the original statement does not define", c.CTE)})
			continue
		}
		r := reproveAgg(cte, prog)
		if r.why != "" {
			diags = append(diags, Diagnostic{Step: c.Step, Class: ClassUnsoundAggClaim,
				Message: fmt.Sprintf("licensed incremental-aggregate claim for %s fails the independent re-derivation: %s", c.CTE, r.why)})
			continue
		}
		// The claim's per-call classes must not outrank the re-derived
		// ones: MIN recorded as invertible would license retraction
		// patching the monotone proof never covers.
		for _, call := range c.Verdict.Calls {
			got, have := r.classes[call.Name]
			if !have {
				diags = append(diags, Diagnostic{Step: c.Step, Class: ClassUnsoundAggClaim,
					Message: fmt.Sprintf("claim for %s classifies %s, which the re-derivation does not find in the iterative part", c.CTE, call.Name)})
				continue
			}
			if rankOf(call.Class) > got {
				diags = append(diags, Diagnostic{Step: c.Step, Class: ClassUnsoundAggClaim,
					Message: fmt.Sprintf("claim for %s records %s, stronger than the re-derived class", c.CTE, call)})
			}
		}
	}
	return diags
}

// aggReproof is the re-derivation outcome: why is the first obstruction
// ("" when the license re-proves), classes the re-derived lattice rung
// per aggregate-call name.
type aggReproof struct {
	why     string
	classes map[string]vAggClass
}

// vChainMember is one leaf of the re-derived join chain.
type vChainMember struct {
	alias string
	name  string
	isCTE bool
	cols  []string // column names; nil when unknown
}

// reproveAgg re-derives the licensing proof for one iterative CTE. It
// shares no code with internal/aggprop beyond the ast helpers: its own
// chain flattening, its own resolver, its own classification dispatch
// and a union-find closure over column equalities instead of the
// producer's direct equation scan.
func reproveAgg(cte *ast.CTE, prog *core.Program) aggReproof {
	bad := func(format string, args ...any) aggReproof {
		return aggReproof{why: fmt.Sprintf(format, args...)}
	}
	if cte.Iter == nil {
		return bad("no iterative part")
	}
	cols := vCTEColumns(cte)
	if len(cols) == 0 || cols[0] == "" {
		return bad("the CTE's declared columns cannot be determined")
	}
	it := cte.Iter
	if it.OrderBy != nil || it.Limit != nil || it.Offset != nil {
		return bad("iterative part has ORDER BY/LIMIT/OFFSET")
	}
	body, ok := it.Body.(*ast.SelectCore)
	if !ok {
		return bad("iterative part is not a plain SELECT")
	}
	if body.Distinct {
		return bad("iterative part is SELECT DISTINCT")
	}
	if body.From == nil || len(body.Items) == 0 {
		return bad("iterative part has no FROM clause")
	}
	chain, flat := vFlattenChain(body.From)
	if !flat {
		return bad("FROM is not a left-deep join chain")
	}
	members := make([]vChainMember, len(chain))
	aliasIdx := map[string]int{}
	cteRefs := 0
	for i, c := range chain {
		if i > 0 && c.typ != ast.InnerJoin && c.typ != ast.LeftJoin {
			return bad("join %d is %s", i, c.typ)
		}
		bt, isBase := c.ref.(*ast.BaseTable)
		if !isBase {
			return bad("chain member %d is a derived table", i)
		}
		m := vChainMember{alias: c.alias, name: bt.Name}
		if strings.EqualFold(bt.Name, cte.Name) {
			m.isCTE = true
			m.cols = cols
			cteRefs++
		} else if prog.Lookup != nil {
			if s, found := prog.Lookup.TableSchema(bt.Name); found {
				m.cols = make([]string, len(s))
				for j := range s {
					m.cols[j] = s[j].Name
				}
			}
		}
		if _, dup := aliasIdx[m.alias]; dup || m.alias == "" {
			return bad("duplicate or empty table alias %q", m.alias)
		}
		aliasIdx[m.alias] = i
		members[i] = m
	}
	if cteRefs == 0 || ast.CountStmtTableRefs(it, cte.Name) != cteRefs {
		return bad("references to %s hidden outside the join chain", cte.Name)
	}

	resolve := func(ref *ast.ColumnRef) int {
		if ref.Table != "" {
			i, found := aliasIdx[strings.ToLower(ref.Table)]
			if !found {
				return -1
			}
			return i
		}
		owner := -1
		for i, m := range members {
			if m.cols == nil {
				return -1
			}
			if vColIndex(m.cols, ref.Name) >= 0 {
				if owner >= 0 {
					return -1
				}
				owner = i
			}
		}
		return owner
	}

	// Output column 0 must be the bare outer key at the chain head.
	head, isRef := body.Items[0].Expr.(*ast.ColumnRef)
	if !isRef || !strings.EqualFold(head.Name, cols[0]) {
		return bad("output column 0 is not the bare key column %s", cols[0])
	}
	if resolve(head) != 0 || !members[0].isCTE {
		return bad("output key does not come from a CTE reference at the head of the chain")
	}
	outer := 0

	// Classification, with its own envelope detection.
	envDown, envUp := false, false
	for _, item := range body.Items {
		call, isCall := item.Expr.(*ast.FuncCall)
		if !isCall || call.Star || call.Distinct {
			continue
		}
		fn := strings.ToUpper(call.Name)
		if fn != "LEAST" && fn != "GREATEST" {
			continue
		}
		for _, arg := range call.Args {
			if ref, argRef := arg.(*ast.ColumnRef); argRef && resolve(ref) == outer {
				if fn == "LEAST" {
					envDown = true
				} else {
					envUp = true
				}
				break
			}
		}
	}
	classes := map[string]vAggClass{}
	obstruction := ""
	ast.WalkStmtExprs(it, func(root ast.Expr) {
		ast.WalkExpr(root, func(e ast.Expr) bool {
			f, isCall := e.(*ast.FuncCall)
			if !isCall || !ast.IsAggregateName(f.Name) {
				return true
			}
			name := strings.ToUpper(f.Name)
			if f.Distinct {
				classes[name+" DISTINCT"] = vHolistic
				obstruction = "a DISTINCT aggregate depends on the whole group multiset"
				return true
			}
			cls := vHolistic
			switch name {
			case "SUM", "COUNT", "AVG":
				cls = vInvertible
			case "MIN":
				if envDown {
					cls = vMonotone
				} else {
					obstruction = "MIN has no LEAST envelope over the outer reference"
				}
			case "MAX":
				if envUp {
					cls = vMonotone
				} else {
					obstruction = "MAX has no GREATEST envelope over the outer reference"
				}
			default:
				obstruction = name + " has no known decomposition"
			}
			if have, seen := classes[name]; !seen || cls < have {
				classes[name] = cls
			}
			return true
		})
	})
	if len(classes) == 0 {
		return bad("no aggregate calls in the iterative part")
	}
	if obstruction != "" {
		return aggReproof{why: obstruction, classes: classes}
	}

	// Group-key stability.
	if len(body.GroupBy) == 0 {
		return bad("no GROUP BY")
	}
	grouped := false
	for _, g := range body.GroupBy {
		if ref, gRef := g.(*ast.ColumnRef); gRef && strings.EqualFold(ref.Name, cols[0]) && resolve(ref) == outer {
			grouped = true
		}
		outerOnly := true
		ast.WalkExpr(g, func(e ast.Expr) bool {
			if ref, isCol := e.(*ast.ColumnRef); isCol && resolve(ref) != outer {
				outerOnly = false
				return false
			}
			return true
		})
		if !outerOnly {
			return bad("GROUP BY expression %s reads non-outer columns", g)
		}
	}
	if !grouped {
		return bad("GROUP BY does not include the outer key %s", cols[0])
	}

	// Retraction visibility by equivalence closure: union the
	// (member, column) nodes of every top-level equality conjunct, then
	// demand each inner CTE reference's key reach the outer key —
	// directly in one class, or through two columns of one base-table
	// row (the equijoin image the propagation rules follow at runtime).
	uf := newVColUF()
	collect := func(e ast.Expr) {
		for _, conj := range ast.SplitConjuncts(e) {
			bin, isBin := conj.(*ast.BinaryExpr)
			if !isBin || bin.Op != "=" {
				continue
			}
			l, lok := bin.L.(*ast.ColumnRef)
			r, rok := bin.R.(*ast.ColumnRef)
			if !lok || !rok {
				continue
			}
			li, ri := resolve(l), resolve(r)
			if li < 0 || ri < 0 {
				continue
			}
			uf.union(vColNode{li, norm(l.Name)}, vColNode{ri, norm(r.Name)})
		}
	}
	for _, c := range chain {
		if c.on != nil {
			collect(c.on)
		}
	}
	if body.Where != nil {
		collect(body.Where)
	}
	key := norm(cols[0])
	outerKey := uf.find(vColNode{outer, key})
	for i, m := range members {
		if !m.isCTE || i == outer {
			continue
		}
		innerKey := uf.find(vColNode{i, key})
		routed := innerKey == outerKey
		if !routed {
			// One base-table row hop: some non-CTE member owns a column
			// in the inner key's class and another in the outer key's.
			for bi, b := range members {
				if b.isCTE {
					continue
				}
				hasInner, hasOuter := false, false
				for _, n := range uf.nodesOf(bi) {
					switch uf.find(n) {
					case innerKey:
						hasInner = true
					case outerKey:
						hasOuter = true
					}
				}
				if hasInner && hasOuter {
					routed = true
					break
				}
			}
		}
		if !routed {
			return aggReproof{classes: classes,
				why: fmt.Sprintf("inner reference %s has no key-equijoin route to the outer key", m.alias)}
		}
	}
	return aggReproof{classes: classes}
}

// vCTEColumns determines the CTE's declared column names: the explicit
// list, else the non-iterative part's output aliases/references.
func vCTEColumns(cte *ast.CTE) []string {
	if len(cte.Cols) > 0 {
		return cte.Cols
	}
	if cte.Init == nil {
		return nil
	}
	body, ok := cte.Init.Body.(*ast.SelectCore)
	if !ok {
		return nil
	}
	cols := make([]string, len(body.Items))
	for i, it := range body.Items {
		switch {
		case it.Alias != "":
			cols[i] = it.Alias
		default:
			if ref, isRef := it.Expr.(*ast.ColumnRef); isRef {
				cols[i] = ref.Name
			}
		}
	}
	return cols
}

func vColIndex(cols []string, name string) int {
	for i, c := range cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// vChainLeaf is one FROM-chain entry of the re-derived shape.
type vChainLeaf struct {
	ref   ast.TableRef
	typ   ast.JoinType
	on    ast.Expr
	alias string
}

func vFlattenChain(t ast.TableRef) ([]vChainLeaf, bool) {
	switch x := t.(type) {
	case *ast.JoinRef:
		left, ok := vFlattenChain(x.Left)
		if !ok {
			return nil, false
		}
		if _, isJoin := x.Right.(*ast.JoinRef); isJoin {
			return nil, false
		}
		return append(left, vChainLeaf{ref: x.Right, typ: x.Type, on: x.On, alias: vRefAlias(x.Right)}), true
	default:
		return []vChainLeaf{{ref: t, alias: vRefAlias(t)}}, true
	}
}

func vRefAlias(t ast.TableRef) string {
	switch x := t.(type) {
	case *ast.BaseTable:
		if x.Alias != "" {
			return strings.ToLower(x.Alias)
		}
		return strings.ToLower(x.Name)
	case *ast.SubqueryRef:
		return strings.ToLower(x.Alias)
	}
	return ""
}

// vColNode is one (chain member, lowercased column) node of the
// equality closure.
type vColNode struct {
	member int
	col    string
}

// vColUF is a map-based union-find over column nodes.
type vColUF struct {
	parent map[vColNode]vColNode
}

func newVColUF() *vColUF { return &vColUF{parent: map[vColNode]vColNode{}} }

func (u *vColUF) find(n vColNode) vColNode {
	p, ok := u.parent[n]
	if !ok || p == n {
		return n
	}
	top := u.find(p)
	u.parent[n] = top
	return top
}

func (u *vColUF) union(a, b vColNode) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// nodesOf lists every node of one member that participates in the
// closure (appears in some equality conjunct).
func (u *vColUF) nodesOf(member int) []vColNode {
	var out []vColNode
	seen := map[vColNode]bool{}
	for n, p := range u.parent {
		for _, x := range []vColNode{n, p} {
			if x.member == member && !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	return out
}
