package core

import (
	"fmt"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/dataflow"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
)

// ---------------------------------------------------------------------
// Predicate push down (§V-B)
// ---------------------------------------------------------------------

// pushDownPredicates moves safe conjuncts of Qf's WHERE into the
// non-iterative part R0, returning the filtered plan and the pushed
// conjuncts (in their original qualified form, for the verifier's
// independent re-check). A blind push is wrong for PR-style queries
// (neighbours of filtered-out nodes feed the computation), so the push
// only happens when:
//
//   - the termination condition is Metadata counting iterations. Data
//     and Delta conditions observe the CTE contents, and an UPDATES
//     counter observes the per-iteration row counts — a push would
//     change all of them and with that the iteration count;
//   - the iterative part reads the CTE exactly once, with no joins, no
//     aggregates and no grouping (each output row derives from exactly
//     one input row);
//   - Qf's FROM is exactly the CTE;
//   - every column the predicate references is iteration-invariant:
//     the iterative part projects it through unchanged.
//
// The FF query of Figure 6 satisfies all of these; PR and SSSP do not.
func pushDownPredicates(r0 plan.Node, cte *ast.CTE, schema sqltypes.Schema, final *ast.SelectStmt) (plan.Node, []ast.Expr) {
	if cte.Until.Type != ast.TermMetadata || cte.Until.CountUpdates {
		return r0, nil
	}
	invariant := invariantColumns(cte, schema)
	if invariant == nil {
		return r0, nil
	}

	finalCore, ok := final.Body.(*ast.SelectCore)
	if !ok || finalCore.Where == nil {
		return r0, nil
	}
	base, ok := finalCore.From.(*ast.BaseTable)
	if !ok || !strings.EqualFold(base.Name, cte.Name) {
		return r0, nil
	}
	alias := base.Alias
	if alias == "" {
		alias = base.Name
	}

	var pushed, kept []ast.Expr
	for _, conj := range ast.SplitConjuncts(finalCore.Where) {
		if conjPushable(conj, alias, schema, invariant) {
			pushed = append(pushed, conj)
		} else {
			kept = append(kept, conj)
		}
	}
	if len(pushed) == 0 {
		return r0, nil
	}
	finalCore.Where = ast.JoinConjuncts(kept)
	cond := make([]ast.Expr, len(pushed))
	for i, conj := range pushed {
		cond[i] = unqualify(conj)
	}
	return &plan.Filter{Input: r0, Cond: ast.JoinConjuncts(cond)}, pushed
}

// invariantColumns returns, for each CTE column position, whether the
// iterative part propagates it verbatim — or nil when the iterative
// part's shape disqualifies pushing altogether.
func invariantColumns(cte *ast.CTE, schema sqltypes.Schema) []bool {
	core, ok := cte.Iter.Body.(*ast.SelectCore)
	if !ok {
		return nil
	}
	from, ok := core.From.(*ast.BaseTable)
	if !ok || !strings.EqualFold(from.Name, cte.Name) {
		return nil // joins or a different source: not pushable
	}
	if len(core.GroupBy) > 0 || core.Having != nil || core.Distinct {
		return nil
	}
	fromAlias := from.Alias
	if fromAlias == "" {
		fromAlias = from.Name
	}
	for _, it := range core.Items {
		if ast.HasAggregate(it.Expr) {
			return nil
		}
	}
	if len(core.Items) != len(schema) {
		return nil
	}
	inv := make([]bool, len(schema))
	for i, it := range core.Items {
		ref, ok := it.Expr.(*ast.ColumnRef)
		if !ok {
			continue
		}
		if ref.Table != "" && !strings.EqualFold(ref.Table, fromAlias) {
			continue
		}
		if idx := schema.ColumnIndex(ref.Name); idx == i {
			inv[i] = true
		}
	}
	return inv
}

// conjPushable reports whether one conjunct only references invariant
// CTE columns.
func conjPushable(conj ast.Expr, alias string, schema sqltypes.Schema, invariant []bool) bool {
	if ast.HasAggregate(conj) {
		return false
	}
	ok := true
	ast.WalkExpr(conj, func(e ast.Expr) bool {
		if ref, isRef := e.(*ast.ColumnRef); isRef {
			if ref.Table != "" && !strings.EqualFold(ref.Table, alias) {
				ok = false
				return false
			}
			idx := schema.ColumnIndex(ref.Name)
			if idx < 0 || !invariant[idx] {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// unqualify strips table qualifiers so the pushed predicate compiles
// against R0's output columns.
func unqualify(e ast.Expr) ast.Expr {
	return ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
		if ref, ok := x.(*ast.ColumnRef); ok && ref.Table != "" {
			return &ast.ColumnRef{Name: ref.Name}
		}
		return x
	})
}

// ---------------------------------------------------------------------
// Common-result extraction (§V-A, Figure 5)
// ---------------------------------------------------------------------

// chainItem is one element of a flattened left-deep join chain.
type chainItem struct {
	ref   ast.TableRef
	typ   ast.JoinType // join that attached this item (item 0: unset)
	on    ast.Expr
	alias string // lowercased visible alias
}

// extractCommonResults hoists iteration-invariant join blocks out of
// the iterative part: maximal sets of non-CTE base tables connected by
// inner joins whose conditions only reference each other. The block is
// materialized once before the loop (Common#k) and the iterative part
// is rewritten to read it. WHERE conjuncts referencing block members
// stay in the iterative part (rewritten), preserving outer-join
// semantics.
func (r *rewriter) extractCommonResults(iter *ast.SelectStmt, cteName string, b *plan.Builder) (*ast.SelectStmt, []Step, error) {
	core, ok := iter.Body.(*ast.SelectCore)
	if !ok || core.From == nil {
		return iter, nil, nil
	}
	chain, ok := flattenChain(core.From)
	if !ok || len(chain) < 2 {
		return iter, nil, nil
	}

	aliasIdx := make(map[string]int, len(chain))
	for i := range chain {
		a := chain[i].alias
		if a == "" {
			return iter, nil, nil // unnamed derived table: skip
		}
		if _, dup := aliasIdx[a]; dup {
			return iter, nil, nil // ambiguous aliases: skip
		}
		aliasIdx[a] = i
	}

	isCTE := func(i int) bool {
		switch t := chain[i].ref.(type) {
		case *ast.BaseTable:
			return strings.EqualFold(t.Name, cteName)
		case *ast.SubqueryRef:
			return ast.CountStmtTableRefs(t.Select, cteName) > 0
		}
		return true
	}
	memberSchema := func(i int) (sqltypes.Schema, bool) {
		bt, ok := chain[i].ref.(*ast.BaseTable)
		if !ok {
			return nil, false
		}
		return r.lookup.TableSchema(bt.Name)
	}

	// Find one extractable set S.
	set := r.findCommonSet(chain, aliasIdx, isCTE, memberSchema, core.Where)
	if len(set) < 2 {
		return iter, nil, nil
	}

	// Unqualified references anywhere in the iterative part that could
	// name a member column make the rewrite ambiguous: skip.
	if hasUnqualifiedMemberRefs(core, chain, set, memberSchema) {
		return iter, nil, nil
	}

	r.commons++
	commonName := fmt.Sprintf("Common#%d", r.commons)
	commonStmt, mapping, err := buildCommonStmt(chain, set, memberSchema, commonName)
	if err != nil {
		r.commons--
		return iter, nil, nil // unbuildable (e.g. condition ordering): skip
	}

	rewritten := rewriteIterWithCommon(core, chain, set, commonName, mapping)
	newIter := &ast.SelectStmt{Body: rewritten, OrderBy: iter.OrderBy, Limit: iter.Limit, Offset: iter.Offset}

	// Column-level dataflow over the common block (ColumnPruning): WHERE
	// conjuncts over common columns alone are evaluated once before the
	// loop instead of on every iteration, and member columns nothing
	// references after that are never materialized at all.
	var prunedCols []string
	if r.opts.ColumnPruning {
		hoistCommonFilters(commonStmt, newIter, commonName, mapping)
		prunedCols = pruneCommonColumns(commonStmt, newIter, commonName)
	}

	commonPlan, err := b.Build(commonStmt)
	if err != nil {
		r.commons--
		return iter, nil, nil
	}
	commonSchema := plan.Schema(commonPlan)
	r.lookup.add(commonName, commonSchema)
	if r.opts.ColumnPruning {
		live := make([]string, len(commonSchema))
		for i, c := range commonSchema {
			live[i] = c.Name
		}
		r.noteDataflow(commonName, live, prunedCols)
	}

	step := &MaterializeStep{Into: commonName, Plan: commonPlan, Parts: r.opts.Parts, CheckKey: -1, IsCommon: true}
	return newIter, []Step{step}, nil
}

// commonAttachInfo inspects the rewritten FROM chain and returns the
// join that attaches the common-block scan (nil when the scan is the
// chain head). The second result is false when the shape forbids
// hoisting a filter into the block: every join between the scan and the
// chain root must keep the common side non-null-supplying once the
// attach is made inner — inner and left joins qualify (the scan sits on
// the preserved left side of every later join in a left-deep chain),
// right and full do not.
func commonAttachInfo(from ast.TableRef, commonName string) (*ast.JoinRef, bool) {
	cur := from
	for {
		j, isJoin := cur.(*ast.JoinRef)
		if !isJoin {
			bt, isBase := cur.(*ast.BaseTable)
			return nil, isBase && strings.EqualFold(bt.Name, commonName)
		}
		if j.Type != ast.InnerJoin && j.Type != ast.LeftJoin {
			return nil, false
		}
		if bt, isBase := j.Right.(*ast.BaseTable); isBase && strings.EqualFold(bt.Name, commonName) {
			return j, true
		}
		cur = j.Left
	}
}

// hoistCommonFilters moves WHERE conjuncts that reference only common
// columns — and are null-rejecting and aggregate-free — out of the
// iterative part and into the common block's statement, so they are
// evaluated once before the loop and the columns they reference can die
// inside it. When the common scan was attached by a LEFT join the
// attach switches to INNER: the hoisted conjunct rejects NULL on the
// common side, which is exactly the outer-behaves-as-inner argument
// whereNullRejects already makes for extraction. Reports whether
// anything was hoisted.
func hoistCommonFilters(commonStmt, newIter *ast.SelectStmt, commonName string, mapping map[[2]string]string) bool {
	core, ok := newIter.Body.(*ast.SelectCore)
	if !ok || core.Where == nil {
		return false
	}
	attach, shapeOK := commonAttachInfo(core.From, commonName)
	if !shapeOK {
		return false
	}
	commonAlias := strings.ToLower(commonName)
	reverse := make(map[string][2]string, len(mapping))
	for k, v := range mapping {
		reverse[v] = k
	}
	var hoisted, kept []ast.Expr
	for _, conj := range ast.SplitConjuncts(core.Where) {
		if c, can := unmapCommonConjunct(conj, commonAlias, reverse); can {
			hoisted = append(hoisted, c)
		} else {
			kept = append(kept, conj)
		}
	}
	if len(hoisted) == 0 {
		return false
	}
	cs := commonStmt.Body.(*ast.SelectCore) // buildCommonStmt always emits a core
	cs.Where = ast.JoinConjuncts(append(ast.SplitConjuncts(cs.Where), hoisted...))
	core.Where = ast.JoinConjuncts(kept)
	if attach != nil {
		attach.Type = ast.InnerJoin
	}
	return true
}

// unmapCommonConjunct accepts a conjunct for hoisting when every column
// reference is qualified with the common alias and maps back to a
// member column, no aggregate appears, and the conjunct is
// null-rejecting (same test as whereNullRejects: IS NULL, CASE, OR and
// COALESCE disqualify). It returns the conjunct rewritten to the
// member-alias references the common statement uses.
func unmapCommonConjunct(conj ast.Expr, commonAlias string, reverse map[string][2]string) (ast.Expr, bool) {
	if ast.HasAggregate(conj) {
		return nil, false
	}
	ok := true
	hasRef := false
	ast.WalkExpr(conj, func(e ast.Expr) bool {
		switch t := e.(type) {
		case *ast.ColumnRef:
			if strings.ToLower(t.Table) != commonAlias {
				ok = false
				return false
			}
			if _, known := reverse[strings.ToLower(t.Name)]; !known {
				ok = false
				return false
			}
			hasRef = true
		case *ast.Star:
			ok = false
		case *ast.IsNullExpr, *ast.CaseExpr:
			ok = false // not null-rejecting
		case *ast.BinaryExpr:
			if strings.EqualFold(t.Op, "OR") {
				ok = false
			}
		case *ast.FuncCall:
			if strings.EqualFold(t.Name, "COALESCE") {
				ok = false
			}
		}
		return ok
	})
	if !ok || !hasRef {
		return nil, false
	}
	out := ast.RewriteExpr(conj, func(x ast.Expr) ast.Expr {
		if ref, isRef := x.(*ast.ColumnRef); isRef {
			mc := reverse[strings.ToLower(ref.Name)]
			return &ast.ColumnRef{Table: mc[0], Name: mc[1]}
		}
		return x
	})
	return out, true
}

// pruneCommonColumns drops common-block select items the rewritten
// iterative part never references, returning the dropped output names.
// Item 0 survives unconditionally: materialization partitions on the
// first column and pruning must not change row placement.
func pruneCommonColumns(commonStmt, newIter *ast.SelectStmt, commonName string) []string {
	cs, ok := commonStmt.Body.(*ast.SelectCore)
	if !ok {
		return nil
	}
	alias := strings.ToLower(commonName)
	refs, star := dataflow.ReferencedColumns(newIter, map[string]bool{alias: true})
	if star {
		return nil
	}
	var keep []ast.SelectItem
	var pruned []string
	for i, it := range cs.Items {
		if i == 0 || refs[strings.ToLower(it.Alias)] {
			keep = append(keep, it)
		} else {
			pruned = append(pruned, it.Alias)
		}
	}
	if len(pruned) == 0 {
		return nil
	}
	cs.Items = keep
	return pruned
}

// flattenChain decomposes a left-deep join tree into a chain.
func flattenChain(t ast.TableRef) ([]chainItem, bool) {
	switch x := t.(type) {
	case *ast.JoinRef:
		left, ok := flattenChain(x.Left)
		if !ok {
			return nil, false
		}
		// Right side must be a leaf (left-deep chains only).
		if _, isJoin := x.Right.(*ast.JoinRef); isJoin {
			return nil, false
		}
		item := chainItem{ref: x.Right, typ: x.Type, on: x.On, alias: refAlias(x.Right)}
		return append(left, item), true
	default:
		return []chainItem{{ref: t, alias: refAlias(t)}}, true
	}
}

func refAlias(t ast.TableRef) string {
	switch x := t.(type) {
	case *ast.BaseTable:
		if x.Alias != "" {
			return strings.ToLower(x.Alias)
		}
		return strings.ToLower(x.Name)
	case *ast.SubqueryRef:
		return strings.ToLower(x.Alias)
	}
	return ""
}

// findCommonSet picks the first maximal extractable member set.
func (r *rewriter) findCommonSet(chain []chainItem, aliasIdx map[string]int,
	isCTE func(int) bool, memberSchema func(int) (sqltypes.Schema, bool), where ast.Expr) map[int]bool {

	for j := 1; j < len(chain); j++ {
		if chain[j].typ != ast.InnerJoin || isCTE(j) || chain[j].on == nil {
			continue
		}
		if _, ok := memberSchema(j); !ok {
			continue
		}
		// All condition refs must be qualified and resolve to non-CTE
		// base tables.
		set := map[int]bool{j: true}
		valid := true
		for _, ref := range ast.ColumnRefs(chain[j].on) {
			if ref.Table == "" {
				valid = false
				break
			}
			idx, ok := aliasIdx[strings.ToLower(ref.Table)]
			if !ok || isCTE(idx) {
				valid = false
				break
			}
			if _, ok := memberSchema(idx); !ok {
				valid = false
				break
			}
			set[idx] = true
		}
		if !valid || len(set) < 2 {
			continue
		}
		// Attachment safety: the anchor must be attached by an inner
		// join, be the chain head, or have a null-rejecting WHERE
		// conjunct over a member (which makes the original outer join
		// behave as inner for the block).
		anchor := minKey(set)
		if anchor != 0 && chain[anchor].typ != ast.InnerJoin &&
			!whereNullRejects(where, chain, set) {
			continue
		}
		// Every non-anchor member's condition must reference only set
		// members (the anchor's condition becomes the attach
		// condition).
		good := true
		for idx := range set {
			if idx == anchor || idx == j {
				continue
			}
			if chain[idx].typ != ast.InnerJoin || chain[idx].on == nil {
				good = false
				break
			}
			for _, ref := range ast.ColumnRefs(chain[idx].on) {
				k, ok := aliasIdx[strings.ToLower(ref.Table)]
				if !ok || !set[k] {
					good = false
					break
				}
			}
		}
		if good {
			return set
		}
	}
	return nil
}

func minKey(m map[int]bool) int {
	min := -1
	for k := range m {
		if min < 0 || k < min {
			min = k
		}
	}
	return min
}

// whereNullRejects reports whether some WHERE conjunct references a
// member of the set and is null-rejecting (no IS NULL, OR, CASE or
// COALESCE anywhere in the conjunct).
func whereNullRejects(where ast.Expr, chain []chainItem, set map[int]bool) bool {
	if where == nil {
		return false
	}
	memberAliases := map[string]bool{}
	for idx := range set {
		memberAliases[chain[idx].alias] = true
	}
	for _, conj := range ast.SplitConjuncts(where) {
		refsMember := false
		rejecting := true
		ast.WalkExpr(conj, func(e ast.Expr) bool {
			switch t := e.(type) {
			case *ast.ColumnRef:
				if memberAliases[strings.ToLower(t.Table)] {
					refsMember = true
				}
			case *ast.IsNullExpr, *ast.CaseExpr:
				rejecting = false
			case *ast.BinaryExpr:
				if strings.EqualFold(t.Op, "OR") {
					rejecting = false
				}
			case *ast.FuncCall:
				if strings.EqualFold(t.Name, "COALESCE") {
					rejecting = false
				}
			}
			return rejecting
		})
		if refsMember && rejecting {
			return true
		}
	}
	return false
}

// hasUnqualifiedMemberRefs scans the iterative part for unqualified
// column references that could belong to a member table.
func hasUnqualifiedMemberRefs(core *ast.SelectCore, chain []chainItem, set map[int]bool,
	memberSchema func(int) (sqltypes.Schema, bool)) bool {

	memberCols := map[string]bool{}
	for idx := range set {
		s, _ := memberSchema(idx)
		for _, c := range s {
			memberCols[strings.ToLower(c.Name)] = true
		}
	}
	found := false
	check := func(e ast.Expr) {
		ast.WalkExpr(e, func(x ast.Expr) bool {
			if ref, ok := x.(*ast.ColumnRef); ok && ref.Table == "" && memberCols[strings.ToLower(ref.Name)] {
				found = true
			}
			return !found
		})
	}
	for _, it := range core.Items {
		check(it.Expr)
	}
	check(core.Where)
	for _, g := range core.GroupBy {
		check(g)
	}
	check(core.Having)
	for i := range chain {
		if !set[i] {
			check(chain[i].on)
		}
	}
	return found
}

// buildCommonStmt creates the SELECT for the common block and the
// column mapping (alias, col) -> common column name.
func buildCommonStmt(chain []chainItem, set map[int]bool,
	memberSchema func(int) (sqltypes.Schema, bool), commonName string) (*ast.SelectStmt, map[[2]string]string, error) {

	anchor := minKey(set)
	var members []int
	for i := range chain {
		if set[i] {
			members = append(members, i)
		}
	}

	mapping := make(map[[2]string]string)
	var items []ast.SelectItem
	for _, idx := range members {
		schema, _ := memberSchema(idx)
		alias := chain[idx].alias
		for _, col := range schema {
			out := alias + "_" + strings.ToLower(col.Name)
			mapping[[2]string{alias, strings.ToLower(col.Name)}] = out
			items = append(items, ast.SelectItem{
				Expr:  &ast.ColumnRef{Table: alias, Name: col.Name},
				Alias: out,
			})
		}
	}

	// FROM: fold members left to right; non-anchor members keep their
	// join conditions (they reference set members only).
	var from ast.TableRef
	for _, idx := range members {
		bt := chain[idx].ref.(*ast.BaseTable)
		leaf := &ast.BaseTable{Name: bt.Name, Alias: chain[idx].alias}
		if from == nil {
			from = leaf
			continue
		}
		var on ast.Expr
		if idx != anchor {
			on = ast.CloneExpr(chain[idx].on)
		}
		if on == nil {
			return nil, nil, fmt.Errorf("member %s has no usable join condition", chain[idx].alias)
		}
		from = &ast.JoinRef{Type: ast.InnerJoin, Left: from, Right: leaf, On: on}
	}

	stmt := &ast.SelectStmt{Body: &ast.SelectCore{Items: items, From: from}}
	return stmt, mapping, nil
}

// rewriteIterWithCommon rebuilds the iterative SELECT core around the
// materialized common block.
func rewriteIterWithCommon(core *ast.SelectCore, chain []chainItem, set map[int]bool,
	commonName string, mapping map[[2]string]string) *ast.SelectCore {

	anchor := minKey(set)
	commonAlias := strings.ToLower(commonName)

	remap := func(e ast.Expr) ast.Expr {
		return ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
			if ref, ok := x.(*ast.ColumnRef); ok && ref.Table != "" {
				key := [2]string{strings.ToLower(ref.Table), strings.ToLower(ref.Name)}
				if out, ok := mapping[key]; ok {
					return &ast.ColumnRef{Table: commonAlias, Name: out}
				}
			}
			return x
		})
	}

	// Rebuild the chain: members other than the anchor disappear; the
	// anchor becomes the common-block scan attached with its original
	// join type and remapped condition.
	var from ast.TableRef
	for i := range chain {
		if set[i] && i != anchor {
			continue
		}
		var leaf ast.TableRef
		typ := chain[i].typ
		on := chain[i].on
		if i == anchor {
			leaf = &ast.BaseTable{Name: commonName, Alias: commonName}
		} else {
			leaf = chain[i].ref
		}
		if from == nil {
			from = leaf
			continue
		}
		from = &ast.JoinRef{Type: typ, Left: from, Right: leaf, On: remap(on)}
	}

	out := &ast.SelectCore{
		Distinct: core.Distinct,
		From:     from,
		Where:    remap(core.Where),
		Having:   remap(core.Having),
	}
	for _, it := range core.Items {
		out.Items = append(out.Items, ast.SelectItem{Expr: remap(it.Expr), Alias: it.Alias})
	}
	for _, g := range core.GroupBy {
		out.GroupBy = append(out.GroupBy, remap(g))
	}
	return out
}
