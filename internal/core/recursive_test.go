package core

import (
	"strings"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/exec"
	"dbspinner/internal/parser"
	"dbspinner/internal/sqltypes"
)

func runRecursive(t *testing.T, rt *exec.StoreRuntime, sql string) ([]sqltypes.Row, error) {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rows, _, err := ExecuteRecursive(stmt.(*ast.SelectStmt), rt, 1, 0)
	return rows, err
}

func TestRecursiveSeries(t *testing.T) {
	rt := newRT(t)
	rows, err := runRecursive(t, rt,
		`WITH RECURSIVE nums (n) AS (
			SELECT 1 UNION ALL SELECT n + 1 FROM nums WHERE n < 5
		) SELECT n FROM nums ORDER BY n`)
	if err != nil {
		t.Fatal(err)
	}
	got := rowStrs(rows)
	want := []string{"1", "2", "3", "4", "5"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("nums = %v", got)
	}
}

func TestRecursiveTransitiveClosure(t *testing.T) {
	rt := newRT(t) // graph 1->2, 1->3, 2->3, 3->1
	rows, err := runRecursive(t, rt,
		`WITH RECURSIVE reach (node) AS (
			SELECT 2
			UNION
			SELECT edges.dst FROM reach JOIN edges ON edges.src = reach.node
		) SELECT node FROM reach ORDER BY node`)
	if err != nil {
		t.Fatal(err)
	}
	// From node 2 every node is reachable (2->3->1->2...). The UNION
	// dedup is what lets the cycle terminate.
	got := rowStrs(rows)
	want := []string{"1", "2", "3"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("reach = %v", got)
	}
}

func TestRecursiveAggregateRejected(t *testing.T) {
	rt := newRT(t)
	_, err := runRecursive(t, rt,
		`WITH RECURSIVE r (n) AS (
			SELECT 1 UNION ALL SELECT SUM(n) FROM r
		) SELECT n FROM r`)
	if err == nil || !strings.Contains(err.Error(), "WITH ITERATIVE") {
		t.Errorf("aggregates in the recursive part must be rejected pointing at iterative CTEs, got %v", err)
	}
}

func TestRecursiveCycleWithoutDedupFails(t *testing.T) {
	rt := newRT(t)
	oldRows := MaxRecursionRows
	MaxRecursionRows = 5000
	defer func() { MaxRecursionRows = oldRows }()
	_, err := runRecursive(t, rt,
		`WITH RECURSIVE r (node) AS (
			SELECT 2
			UNION ALL
			SELECT edges.dst FROM r JOIN edges ON edges.src = r.node
		) SELECT node FROM r`)
	if err == nil {
		t.Error("cyclic UNION ALL should be detected as non-converging")
	}
}

func TestRecursiveErrors(t *testing.T) {
	rt := newRT(t)
	cases := []string{
		// Not a union.
		`WITH RECURSIVE r (n) AS (SELECT n + 1 FROM r) SELECT * FROM r`,
		// Self-reference in the base arm.
		`WITH RECURSIVE r (n) AS (SELECT n FROM r UNION ALL SELECT 1) SELECT * FROM r`,
		// Two references in the recursive arm.
		`WITH RECURSIVE r (n) AS (SELECT 1 UNION ALL SELECT a.n FROM r a JOIN r b ON a.n = b.n WHERE a.n < 2) SELECT * FROM r`,
		// Column count mismatch.
		`WITH RECURSIVE r (n, m) AS (SELECT 1 UNION ALL SELECT n FROM r WHERE n < 2) SELECT * FROM r`,
	}
	for _, q := range cases {
		if _, err := runRecursive(t, rt, q); err == nil {
			t.Errorf("should fail: %s", q)
		}
	}
	// Non-recursive statement.
	stmt, _ := parser.Parse("SELECT 1")
	if _, _, err := ExecuteRecursive(stmt.(*ast.SelectStmt), rt, 1, 0); err == nil {
		t.Error("ExecuteRecursive without RECURSIVE should fail")
	}
}

func TestRecursiveWithPlainCTE(t *testing.T) {
	rt := newRT(t)
	rows, err := runRecursive(t, rt,
		`WITH RECURSIVE seed (s) AS (SELECT 2),
		 r (n) AS (
			SELECT s FROM seed UNION ALL SELECT n * 2 FROM r WHERE n < 10
		 ) SELECT n FROM r ORDER BY n`)
	if err != nil {
		t.Fatal(err)
	}
	got := rowStrs(rows)
	want := []string{"2", "4", "8", "16"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("r = %v", got)
	}
}

func TestRecursiveResultsDropped(t *testing.T) {
	rt := newRT(t)
	if _, err := runRecursive(t, rt,
		`WITH RECURSIVE nums (n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM nums WHERE n < 3)
		 SELECT COUNT(*) FROM nums`); err != nil {
		t.Fatal(err)
	}
	if rt.Results.Len() != 0 {
		t.Errorf("%d results leaked", rt.Results.Len())
	}
}

func TestHasIterative(t *testing.T) {
	stmt, _ := parser.Parse(prQuery)
	if !HasIterative(stmt.(*ast.SelectStmt)) {
		t.Error("PR query should report iterative")
	}
	stmt, _ = parser.Parse("WITH x AS (SELECT 1) SELECT * FROM x")
	if HasIterative(stmt.(*ast.SelectStmt)) {
		t.Error("plain CTE is not iterative")
	}
	stmt, _ = parser.Parse("SELECT 1")
	if HasIterative(stmt.(*ast.SelectStmt)) {
		t.Error("no WITH clause")
	}
}
