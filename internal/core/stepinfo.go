package core

// The step registry: the single dispatch over every concrete Step kind
// that the in-core consumers — the effect-set derivation feeding the
// parallel scheduler, the dataflow live-range analysis, and EXPLAIN's
// effect rendering — all read from, so adding a Step has one place to
// forget instead of three. It deliberately does NOT feed
// internal/verify: the verifier keeps its own dispatches (simulation
// and effect re-derivation) so the producer and the checker of a
// schedule fail independently; spinlint's stepswitch and stepeffects
// analyzers enforce full Step coverage on both sides.

import (
	"fmt"
	"sort"

	"dbspinner/internal/ast"
	"dbspinner/internal/effects"
	"dbspinner/internal/storage"
)

// loopSlots interns loop-operator states into stable slot names
// ("loop#1", "loop#2", ...) in first-encounter order, which is
// deterministic because effect derivation walks steps in program
// order. The verifier's re-derivation assigns names the same way, so
// recorded and re-derived loop effects are comparable.
type loopSlots struct {
	ids map[*LoopState]string
}

func newLoopSlots() *loopSlots { return &loopSlots{ids: map[*LoopState]string{}} }

func (l *loopSlots) slot(ls *LoopState) string {
	if ls == nil {
		return ""
	}
	if id, ok := l.ids[ls]; ok {
		return id
	}
	id := fmt.Sprintf("loop#%d", len(l.ids)+1)
	l.ids[ls] = id
	return id
}

// stepInfo is one registry entry: the step's effect set plus the jump
// target for loop steps (-1 otherwise).
type stepInfo struct {
	Effects       effects.Set
	LoopBodyStart int
}

// infoFor derives the registry entry for one step. The boolean is
// false for step kinds the registry does not know — callers fail
// closed (no schedule is built, the dataflow analysis sees no IO).
func infoFor(s Step, loops *loopSlots) (stepInfo, bool) {
	info := stepInfo{LoopBodyStart: -1}
	e := &info.Effects
	switch t := s.(type) {
	case *MaterializeStep:
		e.Reads = planResultNames(t.Plan)
		e.Writes = []string{t.Into}

	case *DeltaMaterializeStep:
		// Both plans' result reads, plus the frontier bind: the step
		// reads the CTE table directly, consumes the delta the previous
		// merge produced, and transiently binds and drops DeltaIn. The
		// loop state carries the changed-key set it restricts by.
		e.Reads = append(planResultNames(t.Full), planResultNames(t.Restricted)...)
		e.Reads = append(e.Reads, t.CTE, t.Delta)
		e.Writes = []string{t.Into, t.DeltaIn}
		e.Frees = []string{t.DeltaIn}
		e.LoopReads = []string{loops.slot(t.Loop)}

	case *MaintainAggStep:
		// Both plans' result reads, plus the accumulator slots the step
		// carries across the back-edge: the previous output (Acc) and
		// the CTE snapshot it was computed from (Snap) are read to diff
		// and splice, then rewritten for the next iteration; AggIn is
		// transiently bound and dropped around the restricted plan.
		e.Reads = append(planResultNames(t.Full), planResultNames(t.Restricted)...)
		e.Reads = append(e.Reads, t.CTE, t.Acc, t.Snap)
		e.Writes = []string{t.Into, t.AggIn, t.Acc, t.Snap}
		e.Frees = []string{t.AggIn}

	case *RenameStep:
		e.Reads = []string{t.From}
		e.Writes = []string{t.To}
		e.Frees = []string{t.From}

	case *CopyBackStep:
		e.Reads = []string{t.From, t.To}
		e.Writes = []string{t.To}
		e.Frees = []string{t.From}
		if t.Loop != nil {
			e.LoopWrites = []string{loops.slot(t.Loop)} // noteUpdates
		}

	case *MergeStep:
		e.Reads = []string{t.CTE, t.Work}
		e.Writes = []string{t.Into}
		if t.Delta != "" {
			e.Writes = append(e.Writes, t.Delta)
		}
		if t.Loop != nil {
			e.LoopWrites = []string{loops.slot(t.Loop)} // noteUpdates/noteDelta
		}

	case *TruncateStep:
		e.Frees = []string{t.Name}

	case *InitLoopStep:
		e.Control = true
		if t.Loop != nil {
			e.LoopWrites = []string{loops.slot(t.Loop)}
			if t.Loop.Term.Type == ast.TermDelta {
				e.Reads = []string{t.Loop.CTEName} // snapshot for the delta check
			}
		}

	case *UpdateLoopStep:
		e.Control = true
		// Publishes the iteration count into the global stats as an
		// absolute value — not a mergeable counter.
		e.ObservesStats = true
		if t.Loop != nil {
			slot := loops.slot(t.Loop)
			e.LoopReads = []string{slot}
			e.LoopWrites = []string{slot}
		}

	case *LoopStep:
		e.Control = true
		info.LoopBodyStart = t.BodyStart
		if t.Loop != nil {
			slot := loops.slot(t.Loop)
			e.LoopReads = []string{slot}
			// Delta termination re-snapshots the CTE into the loop state.
			e.LoopWrites = []string{slot}
			if t.Loop.CondPlan != nil {
				e.Reads = append(e.Reads, planResultNames(t.Loop.CondPlan)...)
			}
			if t.Loop.Term.Type == ast.TermDelta {
				e.Reads = append(e.Reads, t.Loop.CTEName)
			}
		}

	default:
		return info, false
	}
	return info, true
}

// deriveEffects computes the per-step effect sets and the region
// schedule for the program and records them for the scheduler, the
// verifier and EXPLAIN. It must run after every step-list mutation
// (insertTruncations shifts jump targets). A step kind the registry
// does not know leaves both records nil: the scheduler then refuses to
// parallelize and the verifier's unknown-step diagnostic names the
// step.
func (p *Program) deriveEffects() {
	loops := newLoopSlots()
	sets := make([]effects.Set, len(p.Steps))
	var targets []int
	for i, s := range p.Steps {
		info, ok := infoFor(s, loops)
		if !ok {
			p.Effects, p.Schedule = nil, nil
			return
		}
		sets[i] = info.Effects
		if info.LoopBodyStart >= 0 {
			targets = append(targets, info.LoopBodyStart)
		}
	}
	p.Effects = sets
	p.Schedule = effects.Build(sets, targets)
	p.deriveCheckpoints(sets)
}

// deriveCheckpoints records the static checkpoint specification of
// every loop back-edge from the derived effect sets: the slots the
// loop body — steps BodyStart..loop, the range a retry re-runs — can
// rebind or free, and the loop operators it advances. This is what a
// back-edge checkpoint must cover for an iteration retry to be sound;
// the runtime capture (retry.go) snapshots every tracked slot, a
// superset, and the verifier re-derives this record independently
// (unsafe-retry, stale-checkpoint) rather than trusting it.
func (p *Program) deriveCheckpoints(sets []effects.Set) {
	p.Checkpoints = nil
	for i, s := range p.Steps {
		loop, ok := s.(*LoopStep)
		if !ok {
			continue
		}
		spec := CheckpointSpec{Loop: i + 1, Body: loop.BodyStart + 1}
		slots := map[string]bool{}
		loopSlotSet := map[string]bool{}
		var loopOrder []string
		for pc := loop.BodyStart; pc <= i && pc < len(sets); pc++ {
			if pc < 0 {
				continue
			}
			e := sets[pc]
			for _, n := range append(append([]string(nil), e.Writes...), e.Frees...) {
				slots[storage.NormalizeName(n)] = true
			}
			for _, n := range e.LoopWrites {
				if !loopSlotSet[n] {
					loopSlotSet[n] = true
					loopOrder = append(loopOrder, n)
				}
			}
		}
		for n := range slots {
			spec.Slots = append(spec.Slots, n)
		}
		sort.Strings(spec.Slots)
		spec.LoopSlots = loopOrder
		p.Checkpoints = append(p.Checkpoints, spec)
	}
}
