package core

import (
	"fmt"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/converge"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
)

// Rewrite is the functional rewrite of Algorithm 1: it expands every
// iterative CTE of the statement into a step program and plans the
// final query Qf against the materialized CTE results.
func Rewrite(stmt *ast.SelectStmt, lookup plan.TableLookup, opts Options) (*Program, error) {
	if opts.Parts < 1 {
		opts.Parts = 1
	}
	if stmt.With == nil {
		//lint:ignore coreerrors statement-level error; no CTE, step or table is in scope yet
		return nil, fmt.Errorf("statement has no WITH clause")
	}

	ll := &layeredLookup{base: lookup, extra: map[string]sqltypes.Schema{}}
	prog := &Program{Parallel: opts.Parallel, Parts: opts.Parts, Lookup: lookup}
	rw := &rewriter{lookup: ll, opts: opts, prog: prog}

	// Qf is the statement without its WITH clause; regular CTEs are
	// registered on the builders instead.
	final := &ast.SelectStmt{Body: stmt.Body, OrderBy: stmt.OrderBy, Limit: stmt.Limit, Offset: stmt.Offset}
	var regular []*ast.CTE
	sawIterative := false
	for _, cte := range stmt.With.CTEs {
		if cte.Iterative {
			sawIterative = true
			if err := rw.expandCTE(cte, regular, final, stmt.With.CTEs); err != nil {
				return nil, fmt.Errorf("iterative CTE %s: %w", cte.Name, err)
			}
			continue
		}
		regular = append(regular, cte)
	}
	if !sawIterative {
		//lint:ignore coreerrors statement-level error; no CTE, step or table is in scope yet
		return nil, fmt.Errorf("statement has no iterative CTE")
	}

	fb := rw.newBuilder(regular)
	fp, err := fb.Build(final)
	if err != nil {
		return nil, fmt.Errorf("final query: %w", err)
	}
	prog.Final = fp
	prog.FinalColumns = fp.Columns()

	// Liveness-driven truncation (Options.ColumnPruning): free each
	// intermediate result right after its last possible read.
	if opts.ColumnPruning {
		rw.insertTruncations()
	}

	// Static effect sets and the region schedule they license
	// (internal/effects), derived once the step list is final —
	// insertTruncations above both adds steps and shifts loop jump
	// targets, and the schedule must see the executed shape.
	prog.ParallelSteps = opts.ParallelSteps
	prog.Trace = opts.Trace
	prog.QueryTimeout = opts.QueryTimeout
	prog.Retry = opts.Retry
	prog.FaultSchedule = opts.FaultSchedule
	prog.deriveEffects()

	// Static partition-property analysis (internal/distprop): infer the
	// distribution property of every step's result, license shuffle
	// elisions the machine may take, and record both for EXPLAIN and
	// for the verifier's independent re-derivation.
	prog.deriveDistProps(opts)
	prog.CheckElide = opts.CheckShuffleElision

	// Post-rewrite verification (Options.Verify): an independent pass
	// over the finished step program that rejects structurally invalid
	// plans before they can execute and silently produce wrong answers.
	if opts.Verify && verifier != nil {
		if err := verifier(prog, stmt); err != nil {
			return nil, fmt.Errorf("rewrite produced an invalid step program: %w", err)
		}
	}
	return prog, nil
}

// layeredLookup adds rewrite-time schemas of pending intermediate
// results on top of the engine's lookup.
type layeredLookup struct {
	base  plan.TableLookup
	extra map[string]sqltypes.Schema
}

func (l *layeredLookup) TableSchema(name string) (sqltypes.Schema, bool) {
	return l.base.TableSchema(name)
}

func (l *layeredLookup) ResultSchema(name string) (sqltypes.Schema, bool) {
	if s, ok := l.extra[strings.ToLower(name)]; ok {
		return s, true
	}
	return l.base.ResultSchema(name)
}

func (l *layeredLookup) add(name string, s sqltypes.Schema) {
	l.extra[strings.ToLower(name)] = s
}

type rewriter struct {
	lookup  *layeredLookup
	opts    Options
	prog    *Program
	commons int // counter for Common#k names
}

func (r *rewriter) newBuilder(regular []*ast.CTE) *plan.Builder {
	b := plan.NewBuilder(r.lookup)
	for _, cte := range regular {
		// Registration of regular CTEs cannot fail (they are never
		// iterative here).
		_ = b.RegisterCTE(cte)
	}
	return b
}

// expandCTE appends the step program of one iterative CTE (Algorithm 1).
// allCTEs is the statement's full WITH list: sibling CTE bodies are
// observers for the live-column analysis.
func (r *rewriter) expandCTE(cte *ast.CTE, regular []*ast.CTE, final *ast.SelectStmt, allCTEs []*ast.CTE) error {
	if cte.Init == nil || cte.Iter == nil {
		//lint:ignore coreerrors Rewrite wraps every expandCTE error with the CTE name
		return fmt.Errorf("missing ITERATE parts")
	}
	builder := r.newBuilder(regular)

	// --- R0: the non-iterative part -----------------------------------
	r0, err := builder.Build(cte.Init)
	if err != nil {
		return fmt.Errorf("non-iterative part: %w", err)
	}
	r0, cteSchema, err := applyCTEColumns(r0, cte)
	if err != nil {
		return err
	}

	// Predicate push down (§V-B): move safe Qf predicates into R0. The
	// pushed conjuncts are recorded on the program so the verifier can
	// re-derive the safety conditions independently.
	if r.opts.PushDownPredicates {
		var pushed []ast.Expr
		r0, pushed = pushDownPredicates(r0, cte, cteSchema, final)
		for _, conj := range pushed {
			r.prog.Pushed = append(r.prog.Pushed, PushedPredicate{CTE: cte.Name, Conj: conj})
		}
	}

	// Projection pruning (Options.ColumnPruning): when the live-column
	// analysis proves some declared columns unobservable, the whole
	// schema family (cte, Intermediate#, Merge#, Delta#, DeltaIn#)
	// carries only the live ones. hadWhere is decided on the original
	// statement — pruning and hoisting never change the merge/rename
	// path choice.
	iterStmt := cte.Iter
	hadWhere := stmtHasWhere(cte.Iter)
	var prunedCols []string
	if r.opts.ColumnPruning {
		r0, cteSchema, iterStmt, prunedCols = r.pruneCTEColumns(cte, r0, cteSchema, final, allCTEs)
		live := make([]string, len(cteSchema))
		for i, c := range cteSchema {
			live[i] = c.Name
		}
		r.noteDataflow(cte.Name, live, prunedCols)
	}

	// The CTE's result schema becomes visible to Ri and Qf.
	r.lookup.add(cte.Name, cteSchema)

	var commonSteps []Step
	if r.opts.CommonResults {
		var rewritten *ast.SelectStmt
		rewritten, commonSteps, err = r.extractCommonResults(iterStmt, cte.Name, builder)
		if err != nil {
			return fmt.Errorf("common-result rewrite: %w", err)
		}
		iterStmt = rewritten
	}

	ri, err := builder.Build(iterStmt)
	if err != nil {
		return fmt.Errorf("iterative part: %w", err)
	}
	if len(ri.Columns()) != len(cteSchema) {
		return fmt.Errorf("iterative part produces %d columns, CTE has %d", len(ri.Columns()), len(cteSchema))
	}
	ri, err = renameTo(ri, cteSchema)
	if err != nil {
		return err
	}

	// The unique row identifier: the first CTE column (the paper uses a
	// user primary key or generates row IDs; our schemas key on the
	// first column, which holds node in all evaluation queries).
	const key = 0
	workName := "Intermediate#" + cte.Name
	mergeName := "Merge#" + cte.Name
	r.lookup.add(workName, cteSchema)
	r.lookup.add(mergeName, cteSchema)

	// Static termination/convergence analysis (internal/converge), run
	// on the ORIGINAL AST against the base lookup so the verifier's
	// re-derivation sees identical inputs. The verdict is recorded for
	// EXPLAIN; Unknown loops get the iteration-cap guard and Terminates
	// bounds feed the cost estimate.
	verdict := converge.AnalyzeCTE(cte, r.prog.Lookup)
	r.prog.Verdicts = append(r.prog.Verdicts, verdict)

	loop := &LoopState{Term: cte.Until, CTEName: cte.Name}
	switch verdict.Kind {
	case converge.Unknown:
		loop.Cap = r.opts.MaxIterations
		if loop.Cap <= 0 {
			loop.Cap = DefaultMaxIterations
		}
		loop.CapDiags = verdict.Diags
	case converge.Terminates:
		loop.BoundHint = verdict.Bound
	}
	if cte.Until.Type == ast.TermData {
		condPlan, err := buildDataCondPlan(cte.Name, cte.Until.Expr, builder)
		if err != nil {
			return fmt.Errorf("termination condition: %w", err)
		}
		loop.CondPlan = condPlan
	}

	steps := &r.prog.Steps

	// Algorithm 1 line 1: materialize R0 into cteTable. Common results
	// are materialized before the loop as well (Figure 5 step 2).
	*steps = append(*steps, &MaterializeStep{Into: cte.Name, Plan: r0, Parts: r.opts.Parts, CheckKey: -1})
	*steps = append(*steps, commonSteps...)
	// Line 2: initialize the loop operator.
	*steps = append(*steps, &InitLoopStep{Loop: loop, Key: key})

	// Delta iteration (Options.DeltaIteration): when the merge path is
	// taken and the AST analysis proves it safe, Ri's scan of the
	// iterative reference is evaluated against the affected frontier
	// instead of the full CTE. Any failure along the way falls back to
	// the full plan — results are identical either way.
	countUpdates := cte.Until.Type == ast.TermMetadata && cte.Until.CountUpdates
	var deltaStep *DeltaMaterializeStep
	if r.opts.DeltaIteration && hadWhere {
		deltaStep = r.buildDeltaStep(cte, cteSchema, iterStmt, ri, builder, loop, workName, key)
	}

	// Incremental aggregate maintenance (Options.IncrementalAgg): when
	// the aggprop analysis licenses it, the working-table
	// materialization re-folds only the groups the frontier touched
	// and serves the rest from the previous iteration's cached output.
	// Delta iteration takes priority when both would apply, and MPP
	// runs keep the full plan (the ordering contract is proven for the
	// volcano executor only). Results are identical on every path.
	var maintainStep *MaintainAggStep
	if deltaStep == nil && r.opts.IncrementalAgg && !(r.opts.Parallel && r.opts.Parts > 1) {
		maintainStep = r.buildMaintainStep(cte, cteSchema, iterStmt, ri, builder, workName, key)
	}

	bodyStart := len(*steps)
	// Line 3: materialize Ri into the working table (the §II
	// duplicate-key check happens inside the merge step).
	switch {
	case deltaStep != nil:
		*steps = append(*steps, deltaStep)
	case maintainStep != nil:
		*steps = append(*steps, maintainStep)
		for i := range r.prog.AggClaims {
			if r.prog.AggClaims[i].CTE == cte.Name {
				r.prog.AggClaims[i].Step = len(*steps)
			}
		}
	default:
		*steps = append(*steps, &MaterializeStep{
			Into: workName, Plan: ri, Parts: r.opts.Parts,
			CheckKey: -1, CountsAsUpdate: true,
		})
	}

	if !hadWhere {
		// Lines 5-6: full update. Rename when optimized; otherwise the
		// Figure 8 baseline copies the rows back. An UPDATES counter
		// needs the changed-row identification pass, which only the
		// copy-back performs — rename just swaps pointers — so the
		// rename optimization is skipped for it (same reasoning that
		// refuses predicate push down under UPDATES termination).
		if r.opts.UseRename && !countUpdates {
			*steps = append(*steps, &RenameStep{From: workName, To: cte.Name})
		} else {
			*steps = append(*steps, &CopyBackStep{From: workName, To: cte.Name, Parts: r.opts.Parts, Key: key, Loop: loop})
		}
	} else {
		// Lines 8-10: partial update through the fused merge operator.
		merge := &MergeStep{CTE: cte.Name, Work: workName, Into: mergeName, Key: key, Parts: r.opts.Parts, Loop: loop}
		if deltaStep != nil {
			merge.Delta = deltaStep.Delta
		}
		*steps = append(*steps, merge)
		*steps = append(*steps, &RenameStep{From: mergeName, To: cte.Name})
		*steps = append(*steps, &TruncateStep{Name: workName})
	}

	// Lines 12-14: update the loop and conditionally jump back.
	*steps = append(*steps, &UpdateLoopStep{Loop: loop})
	*steps = append(*steps, &LoopStep{Loop: loop, BodyStart: bodyStart})
	return nil
}

// applyCTEColumns renames a plan's outputs to the CTE column list and
// returns the CTE schema.
func applyCTEColumns(n plan.Node, cte *ast.CTE) (plan.Node, sqltypes.Schema, error) {
	cols := n.Columns()
	names := cte.Cols
	if len(names) == 0 {
		names = make([]string, len(cols))
		for i, c := range cols {
			names[i] = c.Name
		}
	}
	if len(names) != len(cols) {
		return nil, nil, fmt.Errorf("CTE declares %d columns but the non-iterative part produces %d", len(names), len(cols))
	}
	schema := make(sqltypes.Schema, len(cols))
	for i, c := range cols {
		schema[i] = sqltypes.Column{Name: names[i], Type: c.Type}
	}
	renamed, err := renameTo(n, schema)
	if err != nil {
		return nil, nil, err
	}
	return renamed, schema, nil
}

// renameTo exposes a plan's output under the given schema's column
// names (positions must match). When the node is already a projection,
// its item names are rewritten in place instead of stacking a second
// projection on top.
func renameTo(n plan.Node, schema sqltypes.Schema) (plan.Node, error) {
	cols := n.Columns()
	if len(cols) != len(schema) {
		return nil, fmt.Errorf("cannot rename %d columns to %d names", len(cols), len(schema))
	}
	if p, ok := n.(*plan.Project); ok {
		items := make([]plan.ProjItem, len(p.Items))
		copy(items, p.Items)
		for i := range items {
			items[i].Name = schema[i].Name
			if items[i].Type == sqltypes.Unknown || items[i].Type == sqltypes.Null {
				items[i].Type = schema[i].Type
			}
		}
		return &plan.Project{Input: p.Input, Items: items}, nil
	}
	items := make([]plan.ProjItem, len(cols))
	identical := true
	for i, c := range cols {
		typ := c.Type
		if typ == sqltypes.Unknown || typ == sqltypes.Null {
			typ = schema[i].Type
		}
		items[i] = plan.ProjItem{
			Expr: &ast.ColumnRef{Table: c.Table, Name: c.Name},
			Name: schema[i].Name,
			Type: typ,
		}
		if !strings.EqualFold(c.Name, schema[i].Name) || c.Table != "" {
			identical = false
		}
	}
	if identical {
		return n, nil
	}
	return &plan.Project{Input: n, Items: items}, nil
}

// stmtHasWhere reports whether the iterative part has a WHERE clause,
// which selects between the rename path and the merge path of
// Algorithm 1.
func stmtHasWhere(s *ast.SelectStmt) bool {
	core, ok := s.Body.(*ast.SelectCore)
	if !ok {
		return false
	}
	return core.Where != nil
}

// buildDataCondPlan compiles the Data termination check (§VI-B):
//
//	SELECT COUNT(CASE WHEN expr THEN 1 END), COUNT(*) FROM cte
func buildDataCondPlan(cteName string, cond ast.Expr, b *plan.Builder) (plan.Node, error) {
	stmt := &ast.SelectStmt{Body: &ast.SelectCore{
		Items: []ast.SelectItem{
			{Expr: &ast.FuncCall{Name: "COUNT", Args: []ast.Expr{
				&ast.CaseExpr{Whens: []ast.WhenClause{{Cond: ast.CloneExpr(cond), Result: &ast.Literal{Value: sqltypes.NewInt(1)}}}},
			}}, Alias: "matching"},
			{Expr: &ast.FuncCall{Name: "COUNT", Star: true}, Alias: "total"},
		},
		From: &ast.BaseTable{Name: cteName},
	}}
	return b.Build(stmt)
}
