package core

import (
	"errors"
	"fmt"
	"strings"
)

// ErrIterationCapExceeded is the sentinel every iteration-cap failure
// wraps: the planner-installed guard on loops whose termination the
// converge analysis could not prove (Unknown verdicts), and the
// recursive-CTE fixed-point cap. Detect it with errors.Is and recover
// the details with errors.As on *IterationCapError.
//lint:ignore coreerrors sentinel matched by errors.Is; IterationCapError carries the CTE and cap
var ErrIterationCapExceeded = errors.New("iteration cap exceeded")

// DefaultMaxIterations is the safety cap applied when
// Options.MaxIterations is zero. It matches the recursive-CTE default.
const DefaultMaxIterations = 100000

// IterationCapError reports a loop stopped by its safety cap rather
// than by its own termination condition. Diags carries the converge
// analysis' diagnostics — why termination could not be proved — so the
// failure explains which part of the query to look at.
type IterationCapError struct {
	// CTE is the iterative or recursive CTE whose loop hit the cap.
	CTE string
	// Cap is the iteration limit that fired (Config.MaxIterations or
	// the default).
	Cap int64
	// Diags are the termination-analysis diagnostics attached to the
	// guard when the rewrite installed it (empty for recursive CTEs).
	Diags []string
}

// Error implements error.
func (e *IterationCapError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CTE %s exceeded the %d-iteration safety cap without terminating", e.CTE, e.Cap)
	if len(e.Diags) > 0 {
		fmt.Fprintf(&b, " (termination could not be proved: %s)", strings.Join(e.Diags, "; "))
	}
	return b.String()
}

// Unwrap makes errors.Is(err, ErrIterationCapExceeded) work through
// the step-context wrapping Program.Run applies.
func (e *IterationCapError) Unwrap() error { return ErrIterationCapExceeded }
