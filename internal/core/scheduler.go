package core

// The dependency-DAG step scheduler (Options.ParallelSteps): within
// each straight-line region between loop-control steps, steps whose
// statically derived effect sets (internal/effects) are disjoint under
// Bernstein's conditions run concurrently on a bounded worker pool.
// Each scheduled step executes against its own guarded Context — own
// Stats, own created-set, own MPP machine, and a result-store view that
// checks every access against the step's declared effect set — so the
// only shared mutable state is the result store itself, touched on
// provably disjoint slots. The guard is the dynamic cross-check of the
// static analysis: a step that reaches outside its declared set fails
// the query with a violation report instead of silently racing.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dbspinner/internal/effects"
	"dbspinner/internal/faultinject"
	"dbspinner/internal/mpp"
	"dbspinner/internal/storage"
)

// runSteps executes the step list: the checkpoint/retry driver when a
// retry policy is armed (retry.go), otherwise the plain pc-loop over
// advance.
func (p *Program) runSteps(ctx *Context) error {
	if p.Retry.MaxAttempts > 0 {
		return p.runCheckpointed(ctx)
	}
	pc := 0
	for pc < len(p.Steps) {
		next, err := p.advance(ctx, pc)
		if err != nil {
			return err
		}
		pc = next
	}
	return nil
}

// advance executes the program position pc — a whole scheduled region
// when pc sits at the start of one the schedule licenses, a single
// step otherwise — and returns the next pc. The region-DAG path runs
// only with a worker bound above one, a schedule covering the whole
// program, a derived effect set for every step, and a context still on
// the top degradation rung; barrier steps, mid-region jump targets,
// hand-built programs and degraded contexts all take the sequential
// step path.
func (p *Program) advance(ctx *Context, pc int) (int, error) {
	if p.ParallelSteps > 1 && ctx.degrade == rungNone && p.Schedule != nil &&
		len(p.Effects) == len(p.Steps) && p.Schedule.Covers(len(p.Steps)) {
		if r := p.Schedule.RegionAt(pc); r != nil && !r.Barrier && r.N > 1 && pc == r.Start {
			if err := p.runRegion(ctx, r); err != nil {
				return 0, err
			}
			return r.End(), nil
		}
	}
	return p.runStep(ctx, pc)
}

// runStep executes one step on ctx, timing it when tracing is on and
// wrapping failures with the step's identity. Lifecycle errors keep
// their structure: a QueryLifecycleError already names iteration and
// step, and the outer wrap preserves errors.Is/As through %w.
func (p *Program) runStep(ctx *Context, pc int) (int, error) {
	var begin time.Time
	if ctx.Trace != nil {
		begin = time.Now()
	}
	next, err := p.dispatch(ctx, pc)
	if ctx.Trace != nil {
		ctx.Trace.noteStep(pc, time.Since(begin))
	}
	if err != nil {
		err = WrapCancel(err, ctx.Stats.Iterations, pc+1, "")
		return 0, fmt.Errorf("step %d (%s): %w", pc+1, p.Steps[pc].Explain(), err)
	}
	return next, nil
}

// dispatch is the contained Step.Run call: the step-boundary fault
// hook fires first, and a panic anywhere below — the step itself, a
// storage mutation hook, the volcano executor — converts into a
// structured error carrying iteration and step instead of unwinding
// the process. Contained partition-worker panics travelling up as
// errors are promoted to the same shape.
func (p *Program) dispatch(ctx *Context, pc int) (next int, err error) {
	defer func() {
		if v := recover(); v != nil {
			next, err = 0, containPanic(v, ctx.Stats.Iterations, pc+1)
		}
	}()
	if ferr := faultinject.Trigger(ctx.Faults.Take(faultinject.PointStep)); ferr != nil {
		return 0, ferr
	}
	next, err = p.Steps[pc].Run(ctx, pc)
	return next, promotePanic(err, ctx.Stats.Iterations, pc+1)
}

// stepTrace is the private execution record of one scheduled step: its
// own statistics, the intermediate results it registered, its MPP
// exchange counters, and any effect-set violations the guard caught.
// Everything is merged into the parent context after the region's
// steps have quiesced.
type stepTrace struct {
	stats    Stats
	created  map[string]bool
	mppStats mpp.Stats

	mu         sync.Mutex
	violations []string
}

func newStepTrace() *stepTrace {
	return &stepTrace{created: make(map[string]bool)}
}

// note implements storage.Guard.Violation; MPP fragments of one step
// may report concurrently.
func (t *stepTrace) note(op, name string) {
	t.mu.Lock()
	t.violations = append(t.violations, fmt.Sprintf("%s %s", op, name))
	t.mu.Unlock()
}

// guardFor builds the result-store guard from a step's declared effect
// set, keyed exactly the way the store keys its slots.
func guardFor(e effects.Set, tr *stepTrace) *storage.Guard {
	norm := func(names []string) map[string]bool {
		m := make(map[string]bool, len(names))
		for _, n := range names {
			m[storage.NormalizeName(n)] = true
		}
		return m
	}
	return &storage.Guard{
		Reads:     norm(e.Reads),
		Writes:    norm(e.Writes),
		Frees:     norm(e.Frees),
		Violation: tr.note,
	}
}

// stepContext builds the isolated Context a scheduled step runs in.
func (p *Program) stepContext(parent *Context, global int, tr *stepTrace) *Context {
	rt := parent.RT.Guarded(guardFor(p.Effects[global], tr))
	sctx := &Context{RT: rt, Stats: &tr.stats, created: tr.created}
	if parent.MPP != nil {
		sctx.MPP = mpp.New(rt, p.Parts, &tr.mppStats, &tr.stats.Exec)
		sctx.MPP.Elide = p.elide
		sctx.MPP.CheckElide = p.CheckElide
	}
	return sctx
}

// mergeTrace folds one completed (or partially executed) step's record
// into the parent context. Iterations is deliberately absent: only the
// UpdateLoop barrier sets it, as an absolute value, and barriers never
// run inside a scheduled region. Created names merge even when the
// step failed so the end-of-query cleanup still drops them.
func mergeTrace(ctx *Context, tr *stepTrace) {
	s := &tr.stats
	ctx.Stats.UpdatedRows += s.UpdatedRows
	ctx.Stats.MovedRows += s.MovedRows
	ctx.Stats.Renames += s.Renames
	ctx.Stats.CommonBlocks += s.CommonBlocks
	ctx.Stats.RowsShuffled += s.RowsShuffled + tr.mppStats.RowsShuffled
	ctx.Stats.ShufflesElided += s.ShufflesElided + tr.mppStats.ShufflesElided
	ctx.Stats.RowsElided += s.RowsElided + tr.mppStats.RowsElided
	ctx.Stats.RiFullRows += s.RiFullRows
	ctx.Stats.RiInputRows += s.RiInputRows
	ctx.Stats.MaterializedCells += s.MaterializedCells
	ctx.Stats.Exec.RowsScanned += s.Exec.RowsScanned
	ctx.Stats.Exec.RowsJoined += s.Exec.RowsJoined
	ctx.Stats.Exec.RowsGrouped += s.Exec.RowsGrouped
	ctx.Stats.Exec.ResultCellsRead += s.Exec.ResultCellsRead
	for name := range tr.created {
		ctx.track(name)
	}
}

// runRegion executes one non-barrier region's happens-before DAG with
// at most p.ParallelSteps steps in flight. One goroutine per step waits
// on its predecessors' done channels (the channel close is the
// happens-before edge the effect analysis licensed), acquires a worker
// token, and runs the step in an isolated context under a
// region-scoped cancellation: the first step to fail cancels its
// siblings, which stop at their next checkpoint. After every goroutine
// has quiesced, traces merge in step order and the reported error is
// deterministic even though execution order is not: the program-order-
// first REAL failure wins — a sibling's induced cancellation never
// masks the error that triggered it — and effect-violation reports
// from every step are merged into the message rather than dropped.
func (p *Program) runRegion(ctx *Context, r *effects.Region) error {
	n := r.N
	preds := make([][]int, n)
	for a := 0; a < n; a++ {
		for _, b := range r.Succs[a] {
			preds[b] = append(preds[b], a)
		}
	}
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	parentCtx := ctx.Ctx
	if parentCtx == nil {
		parentCtx = context.Background()
	}
	rctx, cancelRegion := context.WithCancel(parentCtx)
	defer cancelRegion()
	sem := make(chan struct{}, p.ParallelSteps)
	var failed atomic.Bool
	traces := make([]*stepTrace, n)
	errs := make([]error, n)
	// The region fault hook (internal/faultinject): the fault is taken
	// serially before the fan-out and injected into the region's first
	// worker, so the hit count is deterministic no matter how the
	// workers interleave.
	regionFault := ctx.Faults.Take(faultinject.PointRegion)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(local int) {
			defer wg.Done()
			defer close(done[local])
			for _, a := range preds[local] {
				<-done[a]
			}
			if failed.Load() {
				return // a predecessor chain already failed; don't start new work
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			global := r.Start + local
			tr := newStepTrace()
			traces[local] = tr
			// The step's private Stats starts from the parent's iteration
			// count so a lifecycle error raised inside names the right
			// iteration (mergeTrace never folds Iterations back, so this
			// cannot double-count).
			tr.stats.Iterations = ctx.Stats.Iterations
			sctx := p.stepContext(ctx, global, tr)
			sctx.Ctx = rctx
			sctx.Trace = ctx.Trace
			var begin time.Time
			if sctx.Trace != nil {
				begin = time.Now()
			}
			var next int
			err := faultinject.Contain(-1, func() error {
				if local == 0 {
					if ferr := faultinject.Trigger(regionFault); ferr != nil {
						return ferr
					}
				}
				var rerr error
				next, rerr = p.Steps[global].Run(sctx, global)
				return rerr
			})
			err = promotePanic(err, tr.stats.Iterations, global+1)
			if sctx.Trace != nil {
				sctx.Trace.noteStep(global, time.Since(begin))
			}
			if err == nil && next != global+1 {
				err = fmt.Errorf("scheduler: step returned a jump to step %d inside a straight-line region", next+1)
			}
			if err != nil {
				errs[local] = err
				failed.Store(true)
				cancelRegion() // short-circuit siblings at their next checkpoint
			}
		}(i)
	}
	wg.Wait()
	for _, tr := range traces {
		if tr != nil {
			mergeTrace(ctx, tr)
		}
	}
	// Collect guard-violation reports from EVERY step first, so a
	// losing step's violations still surface alongside the winning
	// error instead of being dropped.
	var viol []string
	for local, tr := range traces {
		if tr == nil || len(tr.violations) == 0 {
			continue
		}
		global := r.Start + local
		sort.Strings(tr.violations)
		viol = append(viol, fmt.Sprintf("step %d (%s) violated its declared effect set: %s",
			global+1, p.Steps[global].Explain(), strings.Join(tr.violations, ", ")))
	}
	// Deterministic winner: the program-order-first non-cancellation
	// error; induced cancellations (the region cancel fired by the real
	// failure) only win when every error is one.
	winner := -1
	for local, err := range errs {
		if err != nil && !isContextErr(err) {
			winner = local
			break
		}
	}
	if winner < 0 {
		for local, err := range errs {
			if err != nil {
				winner = local
				break
			}
		}
	}
	if winner >= 0 {
		global := r.Start + winner
		err := WrapCancel(errs[winner], ctx.Stats.Iterations, global+1, "")
		werr := fmt.Errorf("step %d (%s): %w", global+1, p.Steps[global].Explain(), err)
		if len(viol) > 0 {
			werr = fmt.Errorf("%w; effect violations: %s", werr, strings.Join(viol, "; "))
		}
		return werr
	}
	if len(viol) > 0 {
		return fmt.Errorf("scheduler: %s", strings.Join(viol, "; "))
	}
	return nil
}
