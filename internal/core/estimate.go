package core

import (
	"fmt"

	"dbspinner/internal/ast"
)

// The paper's future work (§IX) includes "estimating number of
// iterations for more accurate optimizer costing". This file provides
// that estimate: exact for Metadata conditions, bounded or unknown for
// the data-dependent ones. The rewrite stores it on the Program so the
// costing layer (and EXPLAIN) can use it.

// IterationEstimate is the optimizer's guess at how many times the
// loop body will run.
type IterationEstimate struct {
	// N is the estimated iteration count.
	N int64
	// Exact is true when the termination condition pins the count
	// (UNTIL n ITERATIONS).
	Exact bool
	// Bounded is true when N is an upper bound rather than a guess
	// (UNTIL n UPDATES: at least one update per iteration or the data
	// has converged, so the loop runs at most n iterations... the
	// bound assumes every iteration updates at least one row).
	Bounded bool
}

// DefaultDataIterations is the planning default for Data and Delta
// conditions, whose iteration count depends on the data. Ten matches
// the iteration counts the paper's evaluation queries use.
const DefaultDataIterations = 10

// EstimateIterations derives the estimate from a termination
// condition.
func EstimateIterations(t ast.Termination) IterationEstimate {
	switch t.Type {
	case ast.TermMetadata:
		if !t.CountUpdates {
			return IterationEstimate{N: t.N, Exact: true}
		}
		// n cumulative updates: at least one row updates per iteration
		// (otherwise a Delta-style condition would be the right tool),
		// so n iterations is an upper bound.
		return IterationEstimate{N: t.N, Bounded: true}
	default:
		return IterationEstimate{N: DefaultDataIterations}
	}
}

// String renders the estimate for EXPLAIN.
func (e IterationEstimate) String() string {
	switch {
	case e.Exact:
		return fmt.Sprintf("%d (exact)", e.N)
	case e.Bounded:
		return fmt.Sprintf("<= %d (update bound)", e.N)
	default:
		return fmt.Sprintf("~%d (data-dependent default)", e.N)
	}
}

// CostEstimate is a coarse per-query cost in abstract units: the cost
// of the non-iterative part plus the estimated iterations times the
// body cost. It exists to demonstrate how iteration estimation feeds
// costing; the unit is "materialized steps".
func (p *Program) CostEstimate() int64 {
	var initSteps, bodySteps int64
	inBody := false
	bodyStart := -1
	for _, s := range p.Steps {
		if l, ok := s.(*LoopStep); ok {
			bodyStart = l.BodyStart
			break
		}
	}
	for i, s := range p.Steps {
		if bodyStart >= 0 && i >= bodyStart {
			inBody = true
		}
		switch s.(type) {
		case *MaterializeStep, *DeltaMaterializeStep, *MergeStep, *CopyBackStep:
			if inBody {
				bodySteps++
			} else {
				initSteps++
			}
		}
	}
	iters := int64(1)
	for _, s := range p.Steps {
		if init, ok := s.(*InitLoopStep); ok {
			iters = EstimateIterations(init.Loop.Term).N
			break
		}
	}
	return initSteps + iters*bodySteps
}
