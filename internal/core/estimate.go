package core

import (
	"fmt"

	"dbspinner/internal/ast"
)

// The paper's future work (§IX) includes "estimating number of
// iterations for more accurate optimizer costing". This file provides
// that estimate: exact for Metadata conditions, bounded or unknown for
// the data-dependent ones. The rewrite stores it on the Program so the
// costing layer (and EXPLAIN) can use it.

// IterationEstimate is the optimizer's guess at how many times the
// loop body will run.
type IterationEstimate struct {
	// N is the estimated iteration count.
	N int64
	// Exact is true when the termination condition pins the count
	// (UNTIL n ITERATIONS).
	Exact bool
	// Bounded is true when N is an upper bound rather than a guess
	// (UNTIL n UPDATES: at least one update per iteration or the data
	// has converged, so the loop runs at most n iterations... the
	// bound assumes every iteration updates at least one row).
	Bounded bool
	// Proved is true when the bound comes from the converge analysis'
	// termination proof rather than the termination condition itself.
	Proved bool
}

// DefaultDataIterations is the planning default for Data and Delta
// conditions, whose iteration count depends on the data. Ten matches
// the iteration counts the paper's evaluation queries use.
const DefaultDataIterations = 10

// EstimateIterations derives the estimate from a termination
// condition.
func EstimateIterations(t ast.Termination) IterationEstimate {
	switch t.Type {
	case ast.TermMetadata:
		if !t.CountUpdates {
			return IterationEstimate{N: t.N, Exact: true}
		}
		// n cumulative updates: at least one row updates per iteration
		// (otherwise a Delta-style condition would be the right tool),
		// so n iterations is an upper bound.
		return IterationEstimate{N: t.N, Bounded: true}
	default:
		return IterationEstimate{N: DefaultDataIterations}
	}
}

// estimateLoop refines the termination-condition estimate with the
// converge analysis' proved bound (LoopState.BoundHint): a
// data-dependent loop whose verdict pins the iteration count below
// the planning default is costed at the proved bound instead — e.g.
// an iteration-invariant body under UNTIL DELTA runs twice, not the
// default ten times.
func estimateLoop(l *LoopState) IterationEstimate {
	if l == nil {
		return IterationEstimate{N: DefaultDataIterations}
	}
	est := EstimateIterations(l.Term)
	if !est.Exact && l.BoundHint > 0 && l.BoundHint < est.N {
		return IterationEstimate{N: l.BoundHint, Bounded: true, Proved: true}
	}
	return est
}

// String renders the estimate for EXPLAIN.
func (e IterationEstimate) String() string {
	switch {
	case e.Exact:
		return fmt.Sprintf("%d (exact)", e.N)
	case e.Proved:
		return fmt.Sprintf("<= %d (proved termination bound)", e.N)
	case e.Bounded:
		return fmt.Sprintf("<= %d (update bound)", e.N)
	default:
		return fmt.Sprintf("~%d (data-dependent default)", e.N)
	}
}

// deltaInputFraction is the planning guess for how much of a full Ri
// scan a delta-restricted evaluation costs: the changed-row frontier
// plus the keys it reaches is typically a fraction of the CTE, but the
// optimizer has no cardinality feedback yet, so charge half. Runtime
// truth is reported by Stats.RiFullRows vs Stats.RiInputRows.
const deltaInputFraction = 0.5

// aggMaintFraction is the planning guess for how much of a full Ri
// re-aggregation a maintained iteration costs: only the groups the
// frontier touched are re-folded, but without cardinality feedback the
// optimizer charges half. Runtime truth is reported by
// Stats.AggFullRows vs Stats.AggInputRows.
const aggMaintFraction = 0.5

// CostEstimate is a coarse per-query cost in abstract units: the cost
// of the non-iterative part plus, per loop, that loop's estimated
// iterations times its body cost. It exists to demonstrate how
// iteration estimation feeds costing; the unit is "materialized
// steps". Steps may belong to different loops (one per iterative CTE),
// each with its own iteration estimate, and a DeltaMaterializeStep is
// charged a full evaluation once plus deltaInputFraction of one for
// every later iteration — the frontier restriction the §V-style
// optimizations buy.
func (p *Program) CostEstimate() float64 {
	// Body intervals: a LoopStep at index l with body start b means
	// steps [b, l] run once per iteration of that loop.
	type interval struct {
		start, end int
		iters      float64
	}
	var loops []interval
	for i, s := range p.Steps {
		l, ok := s.(*LoopStep)
		if !ok || l.BodyStart < 0 {
			continue
		}
		iters := float64(1)
		if l.Loop != nil {
			iters = float64(estimateLoop(l.Loop).N)
		}
		loops = append(loops, interval{start: l.BodyStart, end: i, iters: iters})
	}
	cost := 0.0
	for i, s := range p.Steps {
		var unit float64
		switch s.(type) {
		case *MaterializeStep, *MergeStep, *CopyBackStep:
			unit = 1
		case *DeltaMaterializeStep:
			unit = 1
		case *MaintainAggStep:
			unit = 1
		default:
			continue
		}
		times := float64(1)
		for _, lv := range loops {
			if i >= lv.start && i <= lv.end {
				times *= lv.iters
			}
		}
		if _, isDelta := s.(*DeltaMaterializeStep); isDelta && times > 1 {
			// First iteration evaluates the full plan, later ones only
			// the restricted frontier.
			cost += unit * (1 + (times-1)*deltaInputFraction)
			continue
		}
		if _, isMaint := s.(*MaintainAggStep); isMaint && times > 1 {
			// First iteration evaluates the full plan, later ones
			// re-fold only the affected groups.
			cost += unit * (1 + (times-1)*aggMaintFraction)
			continue
		}
		cost += unit * times
	}
	// Fold in the movement saved by licensed shuffle elisions
	// (internal/distprop): each skipped exchange avoids re-hashing and
	// re-bucketing one operator input every time its step runs, credited
	// as a fraction of a materialized step.
	for _, el := range p.Elisions {
		times := float64(1)
		if el.Step > 0 {
			i := el.Step - 1
			for _, lv := range loops {
				if i >= lv.start && i <= lv.end {
					times *= lv.iters
				}
			}
		}
		cost -= elisionCredit * times
	}
	if cost < 0 {
		cost = 0
	}
	return cost
}

// elisionCredit is the estimated fraction of a materialized step's cost
// that one elided exchange saves (the hash-and-move pass over that
// operator input).
const elisionCredit = 0.25
