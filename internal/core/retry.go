package core

// Iteration-granular checkpoint/retry (Options.Retry): the loop
// back-edge is the natural recovery unit of an iterative program —
// every slot the loop body rebinds is rebuilt from the loop-carried
// state, so snapshotting that state at the back-edge lets a failed
// iteration be re-run in place instead of restarting the query from
// iteration zero (the REX / Spinning Fast Iterative Data Flows
// argument applied inside the database). The runtime checkpoint
// captures the dynamic superset — every tracked result slot plus every
// loop operator's mutable state — while the static CheckpointSpec
// (stepinfo.go) records what the loop body can actually touch; the
// verifier re-derives the spec independently (unsafe-retry,
// stale-checkpoint) so a rewrite bug cannot silently under-cover a
// checkpoint.
//
// On repeated failure the driver descends the graceful-degradation
// ladder: retry on the same plan, then with the parallel step
// scheduler / shuffle elision / incremental aggregate maintenance
// disabled, then single-threaded volcano. Every rung is byte-identical
// to the configured plan by the engine's cross-config oracles, so a
// degraded success returns exactly the rows the unfaulted run would
// have.

import (
	"context"
	"time"

	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

// CheckpointSpec is the static record of one loop back-edge
// checkpoint: the result-store slots and loop operators the loop body
// (including the back-edge steps themselves) may rebind, free or
// advance — exactly the state a retry must restore.
type CheckpointSpec struct {
	// Loop is the 1-based step index of the LoopStep whose back-edge
	// the checkpoint guards.
	Loop int
	// Body is the 1-based step index the back-edge jumps to (the first
	// step of the loop body).
	Body int
	// Slots are the normalized result-store slots the body writes or
	// frees, sorted.
	Slots []string
	// LoopSlots are the loop-operator slots ("loop#1", ...) the body
	// advances, in first-encounter order of the program's loop states.
	LoopSlots []string
}

// loopSnap is the captured mutable state of one loop operator. The
// maps are shared, not copied: every writer replaces them wholesale
// (snapshot, noteDelta, InitLoop's reset), never mutates them in
// place, so a shared reference stays frozen.
type loopSnap struct {
	iterations  int
	updates     int64
	lastUpdate  int64
	prev        map[sqltypes.Key]sqltypes.Row
	prevCount   int
	key         int
	changedKeys map[sqltypes.Key]bool
	haveDelta   bool
}

func snapLoop(l *LoopState) loopSnap {
	return loopSnap{
		iterations: l.iterations, updates: l.updates, lastUpdate: l.lastUpdate,
		prev: l.prev, prevCount: l.prevCount, key: l.key,
		changedKeys: l.changedKeys, haveDelta: l.haveDelta,
	}
}

func (s loopSnap) apply(l *LoopState) {
	l.iterations, l.updates, l.lastUpdate = s.iterations, s.updates, s.lastUpdate
	l.prev, l.prevCount, l.key = s.prev, s.prevCount, s.key
	l.changedKeys, l.haveDelta = s.changedKeys, s.haveDelta
}

// checkpoint is one captured execution state: the pc to resume at, a
// clone of every tracked result slot (nil marks a slot absent at
// capture, e.g. a rename source), the loop-operator states, the stats,
// and the trace watermark.
type checkpoint struct {
	pc          int
	tables      map[string]*storage.Table
	loops       map[*LoopState]loopSnap
	stats       Stats
	spans       int
	lastUpdated int64
}

// loopStates collects the distinct loop operators of the program, in
// step order.
func (p *Program) loopStates() []*LoopState {
	var out []*LoopState
	seen := map[*LoopState]bool{}
	note := func(l *LoopState) {
		if l != nil && !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	for _, s := range p.Steps {
		switch st := s.(type) {
		case *InitLoopStep:
			note(st.Loop)
		case *UpdateLoopStep:
			note(st.Loop)
		case *LoopStep:
			note(st.Loop)
		case *CopyBackStep:
			note(st.Loop)
		case *MergeStep:
			note(st.Loop)
		}
	}
	return out
}

// capture snapshots the loop-carried state at a back-edge (or at pc 0,
// the initial checkpoint covering pre-loop failures). Tables clone
// cheaply — fresh partition slices sharing the immutable rows — so a
// checkpoint costs O(rows) pointer copies, not a data copy.
func (p *Program) capture(ctx *Context, pc int) *checkpoint {
	cp := &checkpoint{
		pc:     pc,
		tables: make(map[string]*storage.Table, len(ctx.created)),
		loops:  make(map[*LoopState]loopSnap),
	}
	for name := range ctx.created {
		if t := ctx.RT.Results.Get(name); t != nil {
			cp.tables[name] = t.Clone()
		} else {
			cp.tables[name] = nil
		}
	}
	for _, l := range p.loopStates() {
		cp.loops[l] = snapLoop(l)
	}
	cp.stats = *ctx.Stats
	if ctx.Trace != nil {
		cp.spans, cp.lastUpdated = ctx.Trace.mark()
	}
	return cp
}

// restore rewinds the execution to a checkpoint: slots created after
// the capture are dropped, every captured slot is re-bound to a fresh
// clone (Rename mutates Table.Name in place, so the checkpoint's own
// clone must never be handed to the store), loop operators and stats
// roll back, and the trace discards the abandoned attempt's spans.
func (p *Program) restore(ctx *Context, cp *checkpoint) {
	for name := range ctx.created {
		if _, tracked := cp.tables[name]; !tracked {
			ctx.RT.Results.Drop(name)
			delete(ctx.created, name)
		}
	}
	for name, t := range cp.tables {
		if t == nil {
			ctx.RT.Results.Drop(name)
			continue
		}
		ctx.RT.Results.Put(name, t.Clone())
		ctx.track(name)
	}
	for l, s := range cp.loops {
		s.apply(l)
	}
	trace := ctx.Stats.Trace
	*ctx.Stats = cp.stats
	ctx.Stats.Trace = trace
	if ctx.Trace != nil {
		ctx.Trace.rewind(cp.spans, cp.lastUpdated)
	}
}

// runCheckpointed is the retry-enabled step driver: advance as usual,
// capture at every loop back-edge, and on a retryable failure restore
// the newest checkpoint and re-run from it — up to Retry.MaxAttempts
// times per checkpoint with doubling backoff, then one degradation
// rung down (unless NoDegrade), failing only when the ladder is
// exhausted. Cancellations, deadlines and iteration-cap failures are
// final and surface immediately.
func (p *Program) runCheckpointed(ctx *Context) error {
	cp := p.capture(ctx, 0)
	attempts := 0
	backoff := p.Retry.Backoff
	pc := 0
	for pc < len(p.Steps) {
		next, err := p.advance(ctx, pc)
		if err != nil {
			if !retryable(err) {
				return err
			}
			if attempts >= p.Retry.MaxAttempts {
				if p.Retry.NoDegrade || !ctx.degradeOnce() {
					return err
				}
				attempts = 0
				backoff = p.Retry.Backoff
			}
			attempts++
			ctx.retries++
			if ctx.Trace != nil {
				ctx.Trace.noteRetry(cp.stats.Iterations+1, pc+1, ctx.rungName(), err)
			}
			if werr := waitBackoff(ctx.Ctx, backoff); werr != nil {
				return err // context fired during backoff: report the original failure
			}
			backoff *= 2
			p.restore(ctx, cp)
			pc = cp.pc
			continue
		}
		if _, isLoop := p.Steps[pc].(*LoopStep); isLoop {
			// The back-edge: one iteration (or the pre-loop prefix)
			// committed. Checkpoint whatever comes next — another
			// iteration or the fall-through — and reset the attempt
			// budget.
			cp = p.capture(ctx, next)
			attempts = 0
			backoff = p.Retry.Backoff
		}
		pc = next
	}
	return nil
}

// waitBackoff sleeps the retry backoff, honoring the query's context:
// a cancellation or deadline during the wait aborts the retry.
func waitBackoff(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
