package core

import (
	"fmt"
	"strings"

	"dbspinner/internal/distprop"
	"dbspinner/internal/mpp"
	"dbspinner/internal/plan"
	"dbspinner/internal/storage"
)

// This file drives the static partition-property analysis
// (internal/distprop) over a rewritten step program: a dataflow
// fixpoint over the step control-flow graph (including the loop
// back-edge) computes, for every step, the distribution property each
// live result slot is guaranteed to satisfy on entry; a second pass
// then records per-step claims for EXPLAIN/verification and licenses
// shuffle elisions. Properties cross the back-edge only when they
// survive the meet at the loop head — i.e. when they are provably
// iteration-invariant — so a layout established in iteration i is
// never trusted in iteration i+1 unless every path re-establishes it.

// DistClaim is the recorded distribution property of one step's bound
// result slot (or of the final query, Step == 0).
type DistClaim struct {
	// Step is the 1-based step index; 0 marks the final-query entry.
	Step int
	// Slot is the result slot the step binds; empty for control steps
	// that bind nothing (loop bookkeeping, truncate).
	Slot string
	// Prop is the claimed property of the bound slot (or of Qf's
	// output relation for the final entry).
	Prop distprop.Property
	// Desc is the human rendering for EXPLAIN ("hash(node)").
	Desc string
}

// ElisionRecord is one exchange the analysis licensed the machine to
// skip.
type ElisionRecord struct {
	// Step is the 1-based index of the step whose plan contains the
	// exchange; 0 marks the final query.
	Step int
	// Node is the consuming plan node, Exch the elided exchange and
	// Cols the claimed routing columns of its input.
	Node plan.Node
	Exch distprop.Exchange
	Cols []int
	// Desc is the human rendering for EXPLAIN.
	Desc string
}

// distState maps normalized result-slot names to their guaranteed
// distribution property. Absent means Unknown; Unknown-valued entries
// are never stored, so map equality is canonical.
type distState map[string]distprop.Property

func (s distState) clone() distState {
	out := make(distState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s distState) set(slot string, p distprop.Property) {
	key := storage.NormalizeName(slot)
	if p.Kind == distprop.KindUnknown {
		delete(s, key)
		return
	}
	s[key] = p
}

// meetInto merges src into dst (dst may be nil, meaning "not yet
// reached"), returning the merged state and whether it changed.
// Slot-wise meet: a property survives only if both states guarantee
// it.
func meetInto(dst, src distState) (distState, bool) {
	if dst == nil {
		return src.clone(), true
	}
	changed := false
	for k, dv := range dst {
		sv, ok := src[k]
		if !ok {
			delete(dst, k)
			changed = true
			continue
		}
		if m := distprop.Meet(dv, sv); !m.Equal(dv) {
			if m.Kind == distprop.KindUnknown {
				delete(dst, k)
			} else {
				dst[k] = m
			}
			changed = true
		}
	}
	return dst, changed
}

// deriveDistProps runs the analysis and attaches its results to the
// program: DistProps always (EXPLAIN shows the inferred properties
// whether or not the machine acts on them), Elisions and the machine
// elide map only when the options license elision on a parallel
// multi-partition run.
func (p *Program) deriveDistProps(opts Options) {
	td, _ := p.Lookup.(distprop.TableDist)
	entry := p.distFixpoint(td)
	if entry == nil {
		// A step kind the transfer function does not know: fail closed,
		// claim nothing, elide nothing.
		return
	}
	license := opts.ShuffleElision && p.Parallel && p.Parts > 1

	type exchKey struct {
		node plan.Node
		exch distprop.Exchange
	}
	type exchVerdict struct {
		rec      ElisionRecord
		licensed bool
	}
	verdicts := make(map[exchKey]*exchVerdict)
	collect := func(step int, node plan.Node) func(distprop.Decision) {
		return func(d distprop.Decision) {
			key := exchKey{node: d.Node, exch: d.Exch}
			v, seen := verdicts[key]
			if !seen {
				verdicts[key] = &exchVerdict{
					rec: ElisionRecord{
						Step: step,
						Node: d.Node,
						Exch: d.Exch,
						Cols: append([]int(nil), d.Cols...),
						Desc: describeExchange(d),
					},
					licensed: d.Licensed,
				}
				return
			}
			// A node inferred in more than one context (e.g. a plan
			// subtree shared between the full and restricted delta
			// plans) elides only if every context licenses the same
			// claim.
			if !d.Licensed || !sameCols(v.rec.Cols, d.Cols) {
				v.licensed = false
			}
		}
	}

	infer := func(step int, st distState, n plan.Node) distprop.Property {
		a := &distprop.Analysis{Parts: p.Parts, Tables: td, Slots: st}
		if license {
			a.OnExchange = collect(step, n)
		}
		return a.Infer(n)
	}

	var claims []DistClaim
	for i, s := range p.Steps {
		st := entry[i]
		if st == nil {
			// Unreachable step (defensive): claim nothing for it.
			claims = append(claims, DistClaim{Step: i + 1, Desc: "unreachable"})
			continue
		}
		step := i + 1
		switch t := s.(type) {
		case *MaterializeStep:
			prop := infer(step, st, t.Plan)
			claims = append(claims, DistClaim{Step: step, Slot: t.Into, Prop: prop, Desc: prop.Describe(t.Plan.Columns())})
		case *DeltaMaterializeStep:
			full := infer(step, st, t.Full)
			rst := st.clone()
			if cte, ok := st[storage.NormalizeName(t.CTE)]; ok {
				// The restricted input is a partition-preserving filter
				// of the CTE table (exec.FilterTableByKey), so it
				// inherits the CTE slot's property.
				rst.set(t.DeltaIn, cte)
			}
			restricted := infer(step, rst, t.Restricted)
			prop := distprop.Meet(full, restricted)
			claims = append(claims, DistClaim{Step: step, Slot: t.Into, Prop: prop, Desc: prop.Describe(t.Full.Columns())})
		case *MaintainAggStep:
			// The maintained output is spliced into a fresh DistCol-0
			// table, but claim only what both constituent plans
			// guarantee, mirroring the delta step: the full plan (first
			// iteration, fallback) and the restricted plan over AggIn,
			// which — like DeltaIn — is a partition-preserving filter of
			// the CTE table and inherits its property.
			full := infer(step, st, t.Full)
			rst := st.clone()
			if cte, ok := st[storage.NormalizeName(t.CTE)]; ok {
				rst.set(t.AggIn, cte)
			}
			restricted := infer(step, rst, t.Restricted)
			prop := distprop.Meet(full, restricted)
			claims = append(claims, DistClaim{Step: step, Slot: t.Into, Prop: prop, Desc: prop.Describe(t.Full.Columns())})
		case *RenameStep:
			prop := st[storage.NormalizeName(t.From)]
			claims = append(claims, DistClaim{Step: step, Slot: t.To, Prop: prop, Desc: prop.String()})
		case *CopyBackStep:
			prop := distprop.Hash(0)
			claims = append(claims, DistClaim{Step: step, Slot: t.To, Prop: prop, Desc: prop.String()})
		case *MergeStep:
			prop := distprop.Hash(0)
			claims = append(claims, DistClaim{Step: step, Slot: t.Into, Prop: prop, Desc: prop.String()})
		case *TruncateStep, *InitLoopStep, *UpdateLoopStep, *LoopStep:
			// Truncation and loop bookkeeping bind no result slot.
			claims = append(claims, DistClaim{Step: step, Desc: "no result bound"})
		default:
			claims = append(claims, DistClaim{Step: step, Desc: "no result bound"})
		}
	}
	if p.Final != nil && entry[len(p.Steps)] != nil {
		prop := infer(0, entry[len(p.Steps)], p.Final)
		claims = append(claims, DistClaim{Step: 0, Prop: prop, Desc: prop.Describe(p.Final.Columns())})
	}
	p.DistProps = claims

	if !license {
		return
	}
	elide := make(map[plan.Node]mpp.Elide)
	for _, v := range verdicts {
		if !v.licensed {
			continue
		}
		p.Elisions = append(p.Elisions, v.rec)
		e := elide[v.rec.Node]
		switch v.rec.Exch {
		case distprop.JoinLeft:
			e.Left, e.LeftCols = true, v.rec.Cols
		case distprop.JoinRight:
			e.Right, e.RightCols = true, v.rec.Cols
		case distprop.AggregateInput, distprop.DistinctInput:
			e.Input, e.InputCols = true, v.rec.Cols
		}
		elide[v.rec.Node] = e
	}
	if len(elide) > 0 {
		p.elide = elide
	}
	// Stable EXPLAIN/verification order: by step, then exchange kind.
	sortElisions(p.Elisions)
}

func sortElisions(recs []ElisionRecord) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && elisionLess(recs[j], recs[j-1]); j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

func elisionLess(a, b ElisionRecord) bool {
	as, bs := a.Step, b.Step
	if as == 0 {
		as = int(^uint(0) >> 1) // final sorts last
	}
	if bs == 0 {
		bs = int(^uint(0) >> 1)
	}
	if as != bs {
		return as < bs
	}
	if a.Exch != b.Exch {
		return a.Exch < b.Exch
	}
	return a.Desc < b.Desc
}

func sameCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func describeExchange(d distprop.Decision) string {
	cols := d.Node.Columns()
	// For join sides, column positions refer to the side's input frame.
	if j, ok := d.Node.(*plan.Join); ok {
		switch d.Exch {
		case distprop.JoinLeft:
			cols = j.Left.Columns()
		case distprop.JoinRight:
			cols = j.Right.Columns()
		}
	}
	if a, ok := d.Node.(*plan.Aggregate); ok && d.Exch == distprop.AggregateInput {
		cols = a.Input.Columns()
	}
	if di, ok := d.Node.(*plan.Distinct); ok && d.Exch == distprop.DistinctInput {
		cols = di.Input.Columns()
	}
	names := make([]string, len(d.Cols))
	for i, c := range d.Cols {
		if c >= 0 && c < len(cols) && cols[c].Name != "" {
			names[i] = cols[c].Name
		} else {
			names[i] = fmt.Sprintf("%d", c)
		}
	}
	return fmt.Sprintf("%s co-partitioned on (%s)", d.Exch, strings.Join(names, ","))
}

// distFixpoint propagates slot properties over the step CFG to a
// fixpoint and returns the entry state of every step plus, at index
// len(Steps), the program exit state (what the final query sees). A
// nil return means a step kind the transfer function does not handle
// (fail closed).
func (p *Program) distFixpoint(td distprop.TableDist) []distState {
	n := len(p.Steps)
	entry := make([]distState, n+1)
	entry[0] = distState{}
	if n == 0 {
		return entry
	}
	work := []int{0}
	for iter := 0; len(work) > 0; iter++ {
		if iter > 10000 {
			return nil // defensive: the lattice is finite, but fail closed
		}
		i := work[0]
		work = work[1:]
		if i >= n {
			continue
		}
		out, succs, ok := p.distTransfer(td, i, entry[i])
		if !ok {
			return nil
		}
		for _, succ := range succs {
			if succ < 0 || succ > n {
				continue
			}
			merged, changed := meetInto(entry[succ], out)
			entry[succ] = merged
			if changed && succ < n {
				work = append(work, succ)
			}
		}
	}
	if entry[n] == nil {
		entry[n] = distState{}
	}
	return entry
}

// distTransfer is the per-step transfer function of the fixpoint. It
// must handle every step kind the rewrite can emit; an unknown kind
// aborts the whole analysis (ok == false). Elisions are NOT licensed
// here — only once the entry states are stable.
func (p *Program) distTransfer(td distprop.TableDist, i int, st distState) (out distState, succs []int, ok bool) {
	a := &distprop.Analysis{Parts: p.Parts, Tables: td, Slots: st}
	switch t := p.Steps[i].(type) {
	case *MaterializeStep:
		out = st.clone()
		out.set(t.Into, a.Infer(t.Plan))
	case *DeltaMaterializeStep:
		full := a.Infer(t.Full)
		rst := st.clone()
		if cte, have := st[storage.NormalizeName(t.CTE)]; have {
			rst.set(t.DeltaIn, cte)
		}
		restricted := (&distprop.Analysis{Parts: p.Parts, Tables: td, Slots: rst}).Infer(t.Restricted)
		out = st.clone()
		out.set(t.Into, distprop.Meet(full, restricted))
	case *MaintainAggStep:
		full := a.Infer(t.Full)
		rst := st.clone()
		if cte, have := st[storage.NormalizeName(t.CTE)]; have {
			rst.set(t.AggIn, cte)
		}
		restricted := (&distprop.Analysis{Parts: p.Parts, Tables: td, Slots: rst}).Infer(t.Restricted)
		out = st.clone()
		out.set(t.Into, distprop.Meet(full, restricted))
	case *RenameStep:
		out = st.clone()
		from := storage.NormalizeName(t.From)
		if prop, have := out[from]; have {
			out.set(t.To, prop)
		} else {
			out.set(t.To, distprop.Unknown())
		}
		delete(out, from)
	case *CopyBackStep:
		// The fresh copy is hash-distributed on column 0 (the fresh
		// table's DistCol); the source working table is dropped.
		out = st.clone()
		out.set(t.To, distprop.Hash(0))
		delete(out, storage.NormalizeName(t.From))
	case *MergeStep:
		// The merged table (and the delta, when materialized) are
		// built with DistCol 0.
		out = st.clone()
		out.set(t.Into, distprop.Hash(0))
		if t.Delta != "" {
			out.set(t.Delta, distprop.Hash(0))
		}
	case *TruncateStep:
		out = st.clone()
		delete(out, storage.NormalizeName(t.Name))
	case *InitLoopStep, *UpdateLoopStep:
		out = st
	case *LoopStep:
		// Both the back-edge and the fall-through observe the same
		// state; the meet at BodyStart is what enforces the
		// iteration-invariance rule.
		return st, []int{t.BodyStart, i + 1}, true
	default:
		return nil, nil, false
	}
	return out, []int{i + 1}, true
}
