package core

import (
	"fmt"

	"dbspinner/internal/ast"
	"dbspinner/internal/exec"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
)

// LoopState is the mutable state of one loop operator: the iteration
// and update counters plus the previous-iteration snapshot kept for
// Delta termination (§VI-B).
type LoopState struct {
	Term ast.Termination
	// CTEName is the main CTE result the Data/Delta conditions inspect.
	CTEName string
	// CondPlan evaluates the Data termination expression: a count of
	// CTE rows satisfying the user expression (built by the rewrite).
	CondPlan plan.Node

	// Cap, when positive, is the planner-installed safety guard for
	// loops whose termination the converge analysis could not prove
	// (Unknown verdicts): a loop that still wants to continue after Cap
	// completed iterations fails with ErrIterationCapExceeded instead
	// of spinning forever. CapDiags carries the analysis' diagnostics
	// into that error.
	Cap      int64
	CapDiags []string
	// BoundHint is a proved upper bound on iterations (Terminates
	// verdicts with a numeric bound) for termination types the
	// metadata estimate cannot see; it feeds CostEstimate.
	BoundHint int64

	iterations int
	updates    int64
	lastUpdate int64
	prev       map[sqltypes.Key]sqltypes.Row // Delta: previous iteration by key
	prevCount  int
	key        int

	// Delta-iteration state (Options.DeltaIteration): the keys the last
	// merge identified as changed, valid once the first merge of the
	// loop has run. DeltaMaterializeStep consumes it to restrict Ri's
	// scan of the iterative reference to the affected frontier.
	changedKeys map[sqltypes.Key]bool
	haveDelta   bool
}

// noteUpdates records the changed-row count of one identification pass
// (copy-back or merge), driving UNTIL n UPDATES termination.
func (l *LoopState) noteUpdates(n int64) {
	l.updates += n
	l.lastUpdate = n
}

// noteDelta records the changed-key set of one merge pass for delta
// iteration.
func (l *LoopState) noteDelta(keys map[sqltypes.Key]bool) {
	l.changedKeys = keys
	l.haveDelta = true
}

// InitLoopStep initializes the loop operator right after the
// non-iterative part (Table I step 2).
type InitLoopStep struct {
	Loop *LoopState
	// Key is the row-identifier column used by Delta comparisons.
	Key int
}

// Run implements Step.
func (s *InitLoopStep) Run(ctx *Context, self int) (int, error) {
	if err := ctx.Checkpoint(self); err != nil {
		return 0, err
	}
	s.Loop.iterations = 0
	s.Loop.updates = 0
	s.Loop.lastUpdate = 0
	s.Loop.prev = nil
	s.Loop.changedKeys = nil
	s.Loop.haveDelta = false
	s.Loop.key = s.Key
	if s.Loop.Term.Type == ast.TermDelta {
		if err := s.Loop.snapshot(ctx); err != nil {
			return 0, err
		}
	}
	return self + 1, nil
}

// Explain implements Step.
func (s *InitLoopStep) Explain() string {
	return fmt.Sprintf("Initialize loop operator <<Type:%s, %s>> (counter to zero).",
		s.Loop.Term.Type, loopParams(s.Loop.Term))
}

func loopParams(t ast.Termination) string {
	switch t.Type {
	case ast.TermMetadata:
		unit := "iterations"
		if t.CountUpdates {
			unit = "updates"
		}
		return fmt.Sprintf("N:%d %s, Expr:NONE", t.N, unit)
	case ast.TermData:
		kw := "ALL"
		if t.Any {
			kw = "ANY"
		}
		return fmt.Sprintf("N:-, Expr:%s(%s)", kw, t.Expr)
	case ast.TermDelta:
		return fmt.Sprintf("N:%d changed rows, Expr:NONE", t.N)
	}
	return "?"
}

// UpdateLoopStep advances the loop state at the end of an iteration
// (Table I step 5: increment counter).
type UpdateLoopStep struct {
	Loop *LoopState
}

// Run implements Step.
func (s *UpdateLoopStep) Run(ctx *Context, self int) (int, error) {
	if err := ctx.Checkpoint(self); err != nil {
		return 0, err
	}
	s.Loop.iterations++
	ctx.Stats.Iterations = s.Loop.iterations
	if ctx.Trace != nil {
		// The iteration boundary: record wall clock since the previous
		// boundary, the rows written this iteration, and the frontier
		// the identification pass found (0 on the rename path).
		ctx.Trace.noteIteration(s.Loop.iterations, ctx.Stats.UpdatedRows, s.Loop.lastUpdate)
	}
	return self + 1, nil
}

// Explain implements Step.
func (s *UpdateLoopStep) Explain() string {
	return "Increment loop counter by 1."
}

// LoopStep is the new loop operator (§VI-B): evaluate the continue
// variable and jump back to the first iterative step or fall through.
type LoopStep struct {
	Loop *LoopState
	// BodyStart is the step index of the first iterative step (Table I
	// step 3, "Go to step 3 if ...").
	BodyStart int
}

// Run implements Step.
func (s *LoopStep) Run(ctx *Context, self int) (int, error) {
	if err := ctx.Checkpoint(self); err != nil {
		return 0, err
	}
	cont, err := s.Loop.shouldContinue(ctx)
	if err != nil {
		return 0, err
	}
	if cont {
		// Safety guard for Unknown termination verdicts: refuse to
		// start an iteration past the cap. The check sits after
		// shouldContinue so a loop whose own condition fires exactly at
		// the cap still succeeds.
		if s.Loop.Cap > 0 && int64(s.Loop.iterations) >= s.Loop.Cap {
			return 0, &IterationCapError{CTE: s.Loop.CTEName, Cap: s.Loop.Cap, Diags: s.Loop.CapDiags}
		}
		return s.BodyStart, nil
	}
	return self + 1, nil
}

// Explain implements Step.
func (s *LoopStep) Explain() string {
	if s.Loop.Cap > 0 {
		return fmt.Sprintf("Go to step %d if continue (%s); guard: fail after %d iterations (termination Unknown).",
			s.BodyStart+1, s.Loop.Term, s.Loop.Cap)
	}
	return fmt.Sprintf("Go to step %d if continue (%s).", s.BodyStart+1, s.Loop.Term)
}

// shouldContinue computes the continue variable for the three
// termination types.
func (l *LoopState) shouldContinue(ctx *Context) (bool, error) {
	switch l.Term.Type {
	case ast.TermMetadata:
		if l.Term.CountUpdates {
			// The counter advances by the changed rows of the
			// identification pass, not the materialized row count. When
			// an iteration changes nothing the CTE has reached a
			// fixpoint: Ri is deterministic over the CTE and the
			// iteration-invariant base tables, so every further
			// iteration reproduces the same table and the counter would
			// never reach N — stop instead of spinning forever.
			return l.updates < l.Term.N && l.lastUpdate > 0, nil
		}
		return int64(l.iterations) < l.Term.N, nil

	case ast.TermData:
		// SELECT count(*) FROM cteTable WHERE expr (§VI-B).
		rows, err := exec.RunContext(ctx.Ctx, l.CondPlan, ctx.RT, &ctx.Stats.Exec)
		if err != nil {
			return false, err
		}
		if len(rows) != 1 || len(rows[0]) != 2 {
			return false, fmt.Errorf("termination condition for %s returned unexpected shape", l.CTEName)
		}
		matching := rows[0][0].Int()
		total := rows[0][1].Int()
		if l.Term.Any {
			return matching == 0, nil // stop as soon as any row satisfies
		}
		return matching < total, nil // stop when all rows satisfy

	case ast.TermDelta:
		changed, err := l.changedRows(ctx)
		if err != nil {
			return false, err
		}
		if err := l.snapshot(ctx); err != nil {
			return false, err
		}
		return changed >= l.Term.N, nil
	}
	return false, fmt.Errorf("loop for %s: unknown termination type %v", l.CTEName, l.Term.Type)
}

// snapshot captures the CTE table for the next Delta comparison.
func (l *LoopState) snapshot(ctx *Context) error {
	t := ctx.RT.Results.Get(l.CTEName)
	if t == nil {
		return fmt.Errorf("delta termination: result %q not found", l.CTEName)
	}
	// Rows too short to carry the key column are invisible to the
	// comparison on both sides: they are skipped here AND excluded from
	// prevCount, so the disappeared-row adjustment in changedRows only
	// accounts for keyed rows (a short row can neither match nor
	// disappear).
	l.prev = make(map[sqltypes.Key]sqltypes.Row, t.Len())
	l.prevCount = 0
	for _, part := range t.Parts {
		for _, r := range part {
			if l.key < len(r) {
				l.prev[r[l.key].Key()] = r
				l.prevCount++
			}
		}
	}
	return nil
}

// changedRows counts rows that differ from the previous iteration.
func (l *LoopState) changedRows(ctx *Context) (int64, error) {
	t := ctx.RT.Results.Get(l.CTEName)
	if t == nil {
		return 0, fmt.Errorf("delta termination: result %q not found", l.CTEName)
	}
	var changed int64
	seen := 0
	for _, part := range t.Parts {
		for _, r := range part {
			if l.key >= len(r) {
				continue // short rows are skipped by snapshot too
			}
			seen++
			prev, ok := l.prev[r[l.key].Key()]
			if !ok || !prev.Equal(r) {
				changed++
			}
		}
	}
	// Rows that disappeared count as changes too.
	if l.prevCount > seen {
		changed += int64(l.prevCount - seen)
	}
	return changed, nil
}
