package core

import (
	"fmt"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/exec"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

// Delta iteration (Options.DeltaIteration) is the semi-naive
// evaluation REX and DBSP build on, grafted onto the merge path: the
// identification pass of MergeStep already computes the rows each
// iteration changed, so iterations that touch a shrinking frontier
// (SSSP, converging PageRank) need not re-evaluate Ri over the whole
// CTE. The rewrite statically analyzes Ri and, when safe, replaces the
// working-table materialization with a DeltaMaterializeStep that feeds
// the outer reference from the affected frontier only.
//
// Soundness rests on the merge semantics: a key whose inputs did not
// change since the previous iteration re-derives exactly the row it
// produced then, and the merge already carries that row forward — so
// omitting the key from the outer scan is a no-op on the merged
// result. "Inputs" are approximated conservatively: a key k is
// affected when k itself changed, or some changed key reaches k
// through a key-equijoin over a base table (a DeltaProp rule). Inner
// references to the CTE keep reading the full table — restricting
// them would corrupt aggregates over neighbours — which is why every
// inner reference must be provably routed through such an equijoin
// for the analysis to succeed. Anything the analysis cannot prove
// falls back to the full plan, keeping results byte-identical.

// DeltaProp is one propagation rule: a key-equijoin path from an inner
// iterative reference through a base table back to the outer
// reference. When a CTE row with key k changed, every base-table row
// whose From column equals k marks its To column's value as affected.
type DeltaProp struct {
	Table string // catalog base table the equijoin path crosses
	From  int    // column equated with the inner reference's key
	To    int    // column equated with the outer reference's key
}

// deltaSafety is the successful outcome of the analysis.
type deltaSafety struct {
	// OuterAlias is the lowercased effective alias of the outer CTE
	// reference — the one whose key becomes output column 0 and whose
	// scan may be restricted.
	OuterAlias string
	Props      []DeltaProp
}

// buildDeltaStep runs the safety analysis on the original iterative
// part and, when it succeeds, compiles the restricted plan (the
// post-common iterStmt with the outer reference reading DeltaIn#cte)
// and returns the DeltaMaterializeStep for the loop body. A nil return
// means "fall back to the full plan".
func (r *rewriter) buildDeltaStep(cte *ast.CTE, schema sqltypes.Schema, iterStmt *ast.SelectStmt,
	full plan.Node, b *plan.Builder, loop *LoopState, workName string, key int) *DeltaMaterializeStep {

	an, ok := analyzeDeltaSafety(cte, schema, r.lookup)
	if !ok {
		return nil
	}
	deltaIn := "DeltaIn#" + cte.Name
	r.lookup.add(deltaIn, schema)
	sub, ok := substituteOuterRef(iterStmt, cte.Name, an.OuterAlias, deltaIn)
	if !ok {
		return nil
	}
	rp, err := b.Build(sub)
	if err != nil || len(rp.Columns()) != len(schema) {
		return nil
	}
	rp, err = renameTo(rp, schema)
	if err != nil {
		return nil
	}
	return &DeltaMaterializeStep{
		Into: workName, Full: full, Restricted: rp,
		DeltaIn: deltaIn, CTE: cte.Name, Delta: "Delta#" + cte.Name,
		Loop: loop, Props: an.Props, Key: key, Parts: r.opts.Parts,
	}
}

// analyzeDeltaSafety decides whether Ri's outer reference may be
// restricted to the affected frontier. It runs on the ORIGINAL
// iterative AST (before the common-result rewrite replaces base-table
// blocks with Common#k), because the propagation rules must name
// catalog base tables. The conditions:
//
//   - the body is a plain SELECT over a left-deep chain of named base
//     tables and CTE references, attached by inner or left joins;
//   - output column 0 is the bare key column of a CTE reference at the
//     head of the chain (never null-extended, so restricting its scan
//     restricts exactly the output keys), and any GROUP BY groups on
//     it;
//   - every OTHER reference to the CTE is equated on its key column
//     with a base-table column whose row also equates a (possibly
//     different) column with the outer key — yielding a DeltaProp —
//     or equated with the outer key directly;
//   - no DISTINCT, ORDER BY, LIMIT or OFFSET on the iterative part,
//     and no CTE references hidden in derived tables.
func analyzeDeltaSafety(cte *ast.CTE, schema sqltypes.Schema, lookup plan.TableLookup) (deltaSafety, bool) {
	var out deltaSafety
	if len(schema) == 0 || cte.Iter == nil {
		return out, false
	}
	if cte.Iter.OrderBy != nil || cte.Iter.Limit != nil || cte.Iter.Offset != nil {
		return out, false
	}
	core, ok := cte.Iter.Body.(*ast.SelectCore)
	if !ok || core.From == nil || core.Distinct || len(core.Items) == 0 {
		return out, false
	}
	chain, ok := flattenChain(core.From)
	if !ok {
		return out, false
	}

	type member struct {
		alias  string
		name   string // catalog/base name
		isCTE  bool
		schema sqltypes.Schema // base tables only
	}
	members := make([]member, len(chain))
	aliasIdx := make(map[string]int, len(chain))
	cteRefs := 0
	for i, it := range chain {
		if i > 0 && it.typ != ast.InnerJoin && it.typ != ast.LeftJoin {
			return out, false // right/full joins can emit non-outer keys
		}
		bt, isBase := it.ref.(*ast.BaseTable)
		if !isBase {
			return out, false // derived tables: give up
		}
		m := member{alias: it.alias, name: bt.Name}
		if strings.EqualFold(bt.Name, cte.Name) {
			m.isCTE = true
			m.schema = schema
			cteRefs++
		} else if s, found := lookup.TableSchema(bt.Name); found {
			m.schema = s
		}
		if _, dup := aliasIdx[m.alias]; dup || m.alias == "" {
			return out, false
		}
		aliasIdx[m.alias] = i
		members[i] = m
	}
	// Every reference to the CTE must be visible in the chain (none
	// hidden behind set operations — those fail the SelectCore check —
	// or derived tables, rejected above; the count cross-checks).
	if cteRefs == 0 || ast.CountStmtTableRefs(cte.Iter, cte.Name) != cteRefs {
		return out, false
	}

	keyName := schema[0].Name
	// resolve maps a column reference to the chain member that owns it;
	// unqualified references must have exactly one possible owner.
	resolve := func(ref *ast.ColumnRef) int {
		if ref.Table != "" {
			i, found := aliasIdx[strings.ToLower(ref.Table)]
			if !found {
				return -1
			}
			return i
		}
		owner := -1
		for i, m := range members {
			if m.schema == nil {
				return -1 // unknown schema: cannot prove uniqueness
			}
			if m.schema.ColumnIndex(ref.Name) >= 0 {
				if owner >= 0 {
					return -1
				}
				owner = i
			}
		}
		return owner
	}

	// Output column 0: the bare key of a CTE reference at the chain head.
	head, ok := core.Items[0].Expr.(*ast.ColumnRef)
	if !ok || !strings.EqualFold(head.Name, keyName) {
		return out, false
	}
	outer := resolve(head)
	if outer != 0 || !members[outer].isCTE {
		return out, false
	}
	if len(core.GroupBy) > 0 {
		grouped := false
		for _, g := range core.GroupBy {
			if ref, isRef := g.(*ast.ColumnRef); isRef &&
				strings.EqualFold(ref.Name, keyName) && resolve(ref) == outer {
				grouped = true
			}
		}
		if !grouped {
			return out, false
		}
	}

	// Collect every top-level equality conjunct of the join conditions
	// and the WHERE clause.
	var eqs [][2]*ast.ColumnRef
	addConjuncts := func(e ast.Expr) {
		for _, conj := range ast.SplitConjuncts(e) {
			bin, isBin := conj.(*ast.BinaryExpr)
			if !isBin || bin.Op != "=" {
				continue
			}
			l, lok := bin.L.(*ast.ColumnRef)
			r, rok := bin.R.(*ast.ColumnRef)
			if lok && rok {
				eqs = append(eqs, [2]*ast.ColumnRef{l, r})
			}
		}
	}
	for _, it := range chain {
		if it.on != nil {
			addConjuncts(it.on)
		}
	}
	if core.Where != nil {
		addConjuncts(core.Where)
	}
	// keyEq reports whether ref is the key column of chain member i.
	keyEq := func(ref *ast.ColumnRef, i int) bool {
		return strings.EqualFold(ref.Name, keyName) && resolve(ref) == i
	}

	// Every inner CTE reference needs a route back to the outer key.
	for i, m := range members {
		if !m.isCTE || i == outer {
			continue
		}
		routed := false
		for _, eq := range eqs {
			var other *ast.ColumnRef
			switch {
			case keyEq(eq[0], i):
				other = eq[1]
			case keyEq(eq[1], i):
				other = eq[0]
			default:
				continue
			}
			// Directly equated with the outer key: identity route
			// (changed keys are affected by definition).
			if keyEq(other, outer) {
				routed = true
				break
			}
			// Equated with a base-table column whose row also equates
			// some column with the outer key.
			bi := resolve(other)
			if bi < 0 || members[bi].isCTE || members[bi].schema == nil {
				continue
			}
			from := members[bi].schema.ColumnIndex(other.Name)
			if from < 0 {
				continue
			}
			for _, eq2 := range eqs {
				var bcol *ast.ColumnRef
				switch {
				case keyEq(eq2[0], outer) && resolve(eq2[1]) == bi:
					bcol = eq2[1]
				case keyEq(eq2[1], outer) && resolve(eq2[0]) == bi:
					bcol = eq2[0]
				default:
					continue
				}
				to := members[bi].schema.ColumnIndex(bcol.Name)
				if to < 0 {
					continue
				}
				out.Props = append(out.Props, DeltaProp{Table: members[bi].name, From: from, To: to})
				routed = true
				break
			}
			if routed {
				break
			}
		}
		if !routed {
			return out, false
		}
	}

	out.OuterAlias = members[outer].alias
	return out, true
}

// substituteOuterRef returns a copy of the iterative statement with
// the outer CTE reference reading newName instead, keeping its visible
// alias so qualified column references still resolve. Exactly one
// reference must match.
func substituteOuterRef(stmt *ast.SelectStmt, cteName, outerAlias, newName string) (*ast.SelectStmt, bool) {
	core, ok := stmt.Body.(*ast.SelectCore)
	if !ok || core.From == nil {
		return nil, false
	}
	from, n := replaceTableRef(core.From, cteName, outerAlias, newName)
	if n != 1 {
		return nil, false
	}
	nc := *core
	nc.From = from
	return &ast.SelectStmt{Body: &nc, OrderBy: stmt.OrderBy, Limit: stmt.Limit, Offset: stmt.Offset}, true
}

// replaceTableRef rebuilds the join tree along the path to the matched
// base table, leaving untouched subtrees shared with the original.
func replaceTableRef(t ast.TableRef, cteName, alias, newName string) (ast.TableRef, int) {
	switch x := t.(type) {
	case *ast.BaseTable:
		if strings.EqualFold(x.Name, cteName) && refAlias(x) == alias {
			eff := x.Alias
			if eff == "" {
				eff = x.Name
			}
			return &ast.BaseTable{Name: newName, Alias: eff}, 1
		}
		return x, 0
	case *ast.JoinRef:
		l, nl := replaceTableRef(x.Left, cteName, alias, newName)
		r, nr := replaceTableRef(x.Right, cteName, alias, newName)
		if nl+nr == 0 {
			return x, 0
		}
		return &ast.JoinRef{Type: x.Type, Left: l, Right: r, On: x.On}, nl + nr
	}
	return t, 0
}

// DeltaMaterializeStep materializes the working table for one
// iteration. On the first iteration (and whenever no delta is
// available) it evaluates the full Ri plan; afterwards it computes the
// affected key set — the keys the previous merge changed plus their
// images under the propagation rules — binds the matching CTE rows
// under DeltaIn (partition layout preserved, no rehashing) and
// evaluates the restricted plan instead.
type DeltaMaterializeStep struct {
	Into       string    // working table
	Full       plan.Node // Ri over the full CTE (first iteration, fallback)
	Restricted plan.Node // Ri with the outer reference reading DeltaIn
	DeltaIn    string    // transient restricted-input result name
	CTE        string    // main CTE result
	Delta      string    // delta table the paired MergeStep materializes
	Loop       *LoopState
	Props      []DeltaProp
	Key        int // CTE key column
	Parts      int
}

// Run implements Step.
func (d *DeltaMaterializeStep) Run(ctx *Context, self int) (int, error) {
	if err := ctx.Checkpoint(self); err != nil {
		return 0, err
	}
	cteTable := ctx.RT.Results.Get(d.CTE)
	if cteTable == nil {
		return 0, fmt.Errorf("delta materialize %s: result %q not found", d.Into, d.CTE)
	}
	full := int64(cteTable.Len())
	node := d.Full
	input := full
	if d.Loop != nil && d.Loop.haveDelta {
		affected, err := d.affectedKeys(ctx)
		if err != nil {
			return 0, err
		}
		din := exec.FilterTableByKey(cteTable, d.Key, affected, d.DeltaIn, &ctx.Stats.Exec)
		ctx.RT.Results.Put(d.DeltaIn, din)
		defer ctx.RT.Results.Drop(d.DeltaIn)
		node = d.Restricted
		input = int64(din.Len())
	}
	var t *storage.Table
	var err error
	if ctx.MPP != nil {
		t, err = ctx.MPP.Materialize(node, d.Into)
	} else {
		t, err = exec.MaterializeContext(ctx.Ctx, node, ctx.RT, &ctx.Stats.Exec, d.Into, d.Parts)
	}
	if err != nil {
		return 0, err
	}
	ctx.RT.Results.Put(d.Into, t)
	ctx.track(d.Into)
	ctx.Stats.MaterializedCells += int64(t.Len()) * int64(len(t.Schema))
	ctx.Stats.UpdatedRows += int64(t.Len())
	ctx.Stats.RiFullRows += full
	ctx.Stats.RiInputRows += input
	return self + 1, nil
}

// affectedKeys is changed ∪ propagate(changed): for each rule, base
// rows whose From column holds a changed key mark their To column's
// value affected. Over-approximation is safe; missing a key is not,
// which is what the analysis guarantees against.
func (d *DeltaMaterializeStep) affectedKeys(ctx *Context) (map[sqltypes.Key]bool, error) {
	changed := d.Loop.changedKeys
	affected := make(map[sqltypes.Key]bool, 2*len(changed))
	for k := range changed {
		affected[k] = true
	}
	for _, p := range d.Props {
		bt, err := ctx.RT.BaseTable(p.Table)
		if err != nil {
			return nil, fmt.Errorf("delta propagation over %s: %w", p.Table, err)
		}
		for _, part := range bt.Parts {
			for _, r := range part {
				ctx.Stats.Exec.RowsScanned++
				if p.From >= len(r) || p.To >= len(r) {
					continue
				}
				if changed[r[p.From].Key()] {
					affected[r[p.To].Key()] = true
				}
			}
		}
	}
	return affected, nil
}

// Explain implements Step.
func (d *DeltaMaterializeStep) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Materialize %s from the changed-row frontier of %s (delta %s", d.Into, d.CTE, d.Delta)
	for _, p := range d.Props {
		fmt.Fprintf(&b, "; propagate via %s[%d->%d]", p.Table, p.From, p.To)
	}
	b.WriteString("; full plan on the first iteration) with:\n")
	b.WriteString(strings.TrimRight(indent(plan.ExplainTree(d.Restricted), "  "), "\n"))
	return b.String()
}
