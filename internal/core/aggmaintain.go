package core

import (
	"fmt"
	"strings"

	"dbspinner/internal/aggprop"
	"dbspinner/internal/ast"
	"dbspinner/internal/exec"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

// Incremental aggregate maintenance (Options.IncrementalAgg) is the
// DBSP insight grafted onto the step program: when the aggprop
// analysis proves every aggregate of Ri decomposable and the two side
// conditions hold (group-key stability, retraction visibility), the
// per-group aggregate results survive the back-edge in the result
// store and only the groups the frontier touched are re-folded. The
// maintenance is group-granular rather than value-granular on
// purpose: patching a float SUM accumulator with acc-old+new would
// change the accumulation order and drift from the full plan's bits,
// so an affected group is recomputed from its full input through the
// restricted plan while an unaffected group reuses its cached output
// row verbatim. Combined with the content-addressed materialization
// layout (exec.Materialize hash-routes on column 0) and the
// first-encounter group order of the aggregate operator, the
// maintained output is byte-identical to the full plan's — row order
// and float accumulation order included. DESIGN.md §5f states the
// ordering contract; TestIncAggOrderingContract pins it.
//
// The step is licensed on the volcano executor only: MPP fragments
// adopt partition-local aggregate output layouts that a cache cannot
// reproduce bit-for-bit, so parallel runs keep the full plan (fail
// closed, results identical either way).

// AggClaim records the aggprop verdict for one iterative CTE, and the
// step (1-based) of the MaintainAggStep it licensed — 0 when the
// analysis did not license maintenance (or another mode took
// priority) and the full plan runs.
type AggClaim struct {
	CTE     string
	Step    int
	Verdict aggprop.Verdict
}

// buildMaintainStep runs the aggprop analysis on the original
// iterative AST, records the claim for EXPLAIN and the verifier, and
// — when the analysis licenses maintenance — compiles the restricted
// plan (the post-common iterStmt with the outer reference reading
// AggIn#cte) and returns the step. A nil return keeps the full plan.
func (r *rewriter) buildMaintainStep(cte *ast.CTE, schema sqltypes.Schema, iterStmt *ast.SelectStmt,
	full plan.Node, b *plan.Builder, workName string, key int) *MaintainAggStep {

	verdict := aggprop.AnalyzeCTE(cte, schema, r.lookup)
	if len(verdict.Calls) == 0 {
		return nil // no aggregates: nothing to maintain, nothing to explain
	}
	claim := AggClaim{CTE: cte.Name, Verdict: verdict}
	r.prog.AggClaims = append(r.prog.AggClaims, claim)
	idx := len(r.prog.AggClaims) - 1
	if !verdict.Licensed {
		return nil
	}
	aggIn := "AggIn#" + cte.Name
	r.lookup.add(aggIn, schema)
	sub, ok := substituteOuterRef(iterStmt, cte.Name, verdict.OuterAlias, aggIn)
	if !ok {
		r.prog.AggClaims[idx].Verdict.Licensed = false
		r.prog.AggClaims[idx].Verdict.Diags = append(r.prog.AggClaims[idx].Verdict.Diags,
			"outer-reference substitution failed on the rewritten iterative part")
		return nil
	}
	rp, err := b.Build(sub)
	if err != nil || len(rp.Columns()) != len(schema) {
		r.prog.AggClaims[idx].Verdict.Licensed = false
		r.prog.AggClaims[idx].Verdict.Diags = append(r.prog.AggClaims[idx].Verdict.Diags,
			"restricted plan failed to compile")
		return nil
	}
	rp, err = renameTo(rp, schema)
	if err != nil {
		r.prog.AggClaims[idx].Verdict.Licensed = false
		return nil
	}
	props := make([]DeltaProp, len(verdict.Props))
	for i, p := range verdict.Props {
		props[i] = DeltaProp{Table: p.Table, From: p.From, To: p.To}
	}
	return &MaintainAggStep{
		Into: workName, Full: full, Restricted: rp,
		AggIn: aggIn, Acc: "Agg#" + cte.Name, Snap: "AggSnap#" + cte.Name,
		CTE: cte.Name, Props: props, Key: key, Parts: r.opts.Parts,
		Check: r.opts.CheckIncrementalAgg,
	}
}

// MaintainAggStep materializes the working table for one iteration by
// maintaining the previous iteration's aggregate output instead of
// re-running the full Ri plan. Across the back-edge it keeps two
// result-store slots: Acc, the cached output table of the previous
// iteration, and Snap, the CTE table that output was computed from.
// Per iteration it diffs the current CTE against Snap, closes the
// changed keys under the propagation rules (the same equijoin images
// DeltaMaterializeStep uses), re-folds exactly the affected groups
// through the restricted plan, and splices cached rows in for every
// unaffected group — in CTE scan order, which the ordering contract
// proves is the full plan's output order. Anything the diff cannot
// certify (duplicate keys, unexpected restricted output) falls back
// to the full plan for that iteration; results are byte-identical
// either way. Both slots are tracked on the run context, so the
// run-end cleanup — normal, error and cancellation paths alike —
// drops them and no accumulator state leaks into a retried query.
type MaintainAggStep struct {
	Into       string    // working table
	Full       plan.Node // Ri over the full CTE (first iteration, fallback)
	Restricted plan.Node // Ri with the outer reference reading AggIn
	AggIn      string    // transient restricted-input result name
	Acc        string    // cached previous output (Agg#cte)
	Snap       string    // previous CTE snapshot (AggSnap#cte)
	CTE        string    // main CTE result
	Props      []DeltaProp
	Key        int // CTE key column
	Parts      int
	// Check arms the dynamic cross-check (Config.CheckIncrementalAgg):
	// a deterministic sample of the groups served from the cache is
	// recomputed from scratch each iteration and any divergence fails
	// the query.
	Check bool
}

// checkSampleStride picks every n-th cache-served group for the
// dynamic cross-check. Deterministic (no clock, no randomness) so a
// divergence reproduces.
const checkSampleStride = 7

// Run implements Step.
func (m *MaintainAggStep) Run(ctx *Context, self int) (int, error) {
	if err := ctx.Checkpoint(self); err != nil {
		return 0, err
	}
	cteTable := ctx.RT.Results.Get(m.CTE)
	if cteTable == nil {
		return 0, fmt.Errorf("aggregate maintenance %s: result %q not found", m.Into, m.CTE)
	}
	full := int64(cteTable.Len())
	acc := ctx.RT.Results.Get(m.Acc)
	snap := ctx.RT.Results.Get(m.Snap)

	var out *storage.Table
	var input int64
	// A degraded context (the retry driver's graceful-degradation
	// ladder) forces the full plan: incremental maintenance is one of
	// the subsystems the ladder disables, and the full path is
	// byte-identical by the maintenance contract. The accumulator
	// refresh below still runs, so the cache stays coherent.
	if ctx.degraded() {
		acc, snap = nil, nil
	}
	if acc != nil && snap != nil {
		t, in, ok, err := m.maintain(ctx, cteTable, acc, snap)
		if err != nil {
			return 0, err
		}
		if ok {
			out, input = t, in
		}
	}
	if out == nil {
		// First iteration, or a dynamic fallback: full plan.
		t, err := exec.MaterializeContext(ctx.Ctx, m.Full, ctx.RT, &ctx.Stats.Exec, m.Into, m.Parts)
		if err != nil {
			return 0, err
		}
		out, input = t, full
	}
	ctx.RT.Results.Put(m.Into, out)
	ctx.track(m.Into)
	// The accumulator state for the next iteration: the output just
	// produced and the CTE table it was computed from. Plain aliases —
	// result tables are never mutated in place, and the rename/merge
	// ahead only re-points names — tracked so the run-end cleanup
	// drops them on every exit path.
	ctx.RT.Results.Put(m.Acc, out)
	ctx.track(m.Acc)
	ctx.RT.Results.Put(m.Snap, cteTable)
	ctx.track(m.Snap)
	ctx.Stats.MaterializedCells += int64(out.Len()) * int64(len(out.Schema))
	ctx.Stats.UpdatedRows += int64(out.Len())
	ctx.Stats.AggFullRows += full
	ctx.Stats.AggInputRows += input
	return self + 1, nil
}

// maintain attempts the incremental path. ok=false (with nil error)
// means a certification failed and the caller must fall back to the
// full plan for this iteration.
func (m *MaintainAggStep) maintain(ctx *Context, cteTable, acc, snap *storage.Table) (*storage.Table, int64, bool, error) {
	// Diff the current CTE against the snapshot the cached output was
	// computed from. Group-key stability makes "which groups changed"
	// exactly "which keys changed": new keys, keys whose row differs,
	// and keys that disappeared (their rows may feed other groups
	// through the inner references, so they propagate too).
	old := make(map[sqltypes.Key]sqltypes.Row, snap.Len())
	for _, part := range snap.Parts {
		for _, r := range part {
			if m.Key >= len(r) {
				return nil, 0, false, nil
			}
			old[r[m.Key].Key()] = r
		}
	}
	changed := make(map[sqltypes.Key]bool)
	seen := make(map[sqltypes.Key]bool, cteTable.Len())
	for _, part := range cteTable.Parts {
		for _, r := range part {
			if m.Key >= len(r) {
				return nil, 0, false, nil
			}
			k := r[m.Key].Key()
			if seen[k] {
				return nil, 0, false, nil // duplicate keys: groups not key-identified
			}
			seen[k] = true
			if prev, ok := old[k]; !ok || !prev.Equal(r) {
				changed[k] = true
			}
		}
	}
	for k := range old {
		if !seen[k] {
			changed[k] = true
		}
	}

	affected, err := m.affectedKeys(ctx, changed)
	if err != nil {
		return nil, 0, false, err
	}

	din := exec.FilterTableByKey(cteTable, m.Key, affected, m.AggIn, &ctx.Stats.Exec)
	ctx.RT.Results.Put(m.AggIn, din)
	defer ctx.RT.Results.Drop(m.AggIn)
	rows, err := exec.RunContext(ctx.Ctx, m.Restricted, ctx.RT, &ctx.Stats.Exec)
	if err != nil {
		return nil, 0, false, err
	}
	refolded := make(map[sqltypes.Key]sqltypes.Row, len(rows))
	for _, r := range rows {
		if m.Key >= len(r) {
			return nil, 0, false, nil
		}
		k := r[m.Key].Key()
		if _, dup := refolded[k]; dup || !affected[k] {
			return nil, 0, false, nil // restricted plan escaped its frontier
		}
		refolded[k] = r
	}
	cached := make(map[sqltypes.Key]sqltypes.Row, acc.Len())
	for _, part := range acc.Parts {
		for _, r := range part {
			if m.Key >= len(r) {
				return nil, 0, false, nil
			}
			if _, dup := cached[r[m.Key].Key()]; dup {
				return nil, 0, false, nil
			}
			cached[r[m.Key].Key()] = r
		}
	}

	// Splice in CTE scan order: the ordering contract (group-key
	// stability + left-probe joins + first-encounter aggregation +
	// content-addressed materialization) makes this the full plan's
	// output order. A key absent from both maps was filtered out by
	// Ri's WHERE clause — absent then, absent now.
	out := storage.NewTable(m.Into, cteTable.Schema.Clone(), m.Parts)
	out.DistCol = 0
	for _, part := range cteTable.Parts {
		for _, r := range part {
			k := r[m.Key].Key()
			if affected[k] {
				if nr, ok := refolded[k]; ok {
					out.Insert(nr)
				}
			} else if cr, ok := cached[k]; ok {
				out.Insert(cr)
			}
		}
	}
	if m.Check {
		if err := m.crossCheck(ctx, cteTable, affected, cached); err != nil {
			return nil, 0, false, err
		}
	}
	return out, int64(din.Len()), true, nil
}

// affectedKeys closes the changed-key set under the propagation
// rules, exactly as DeltaMaterializeStep does: base rows whose From
// column holds a changed key mark their To column's value affected.
func (m *MaintainAggStep) affectedKeys(ctx *Context, changed map[sqltypes.Key]bool) (map[sqltypes.Key]bool, error) {
	affected := make(map[sqltypes.Key]bool, 2*len(changed))
	for k := range changed {
		affected[k] = true
	}
	for _, p := range m.Props {
		bt, err := ctx.RT.BaseTable(p.Table)
		if err != nil {
			return nil, fmt.Errorf("aggregate-maintenance propagation over %s: %w", p.Table, err)
		}
		for _, part := range bt.Parts {
			for _, r := range part {
				ctx.Stats.Exec.RowsScanned++
				if p.From >= len(r) || p.To >= len(r) {
					continue
				}
				if changed[r[p.From].Key()] {
					affected[r[p.To].Key()] = true
				}
			}
		}
	}
	return affected, nil
}

// crossCheck recomputes a deterministic sample of the cache-served
// groups from scratch and fails the query if any diverges from the
// row about to be emitted (or from its absence).
func (m *MaintainAggStep) crossCheck(ctx *Context, cteTable *storage.Table,
	affected map[sqltypes.Key]bool, cached map[sqltypes.Key]sqltypes.Row) error {

	sample := make(map[sqltypes.Key]bool)
	var sampleRows []sqltypes.Row
	i := 0
	for _, part := range cteTable.Parts {
		for _, r := range part {
			k := r[m.Key].Key()
			if affected[k] {
				continue
			}
			if i%checkSampleStride == 0 {
				sample[k] = true
				sampleRows = append(sampleRows, r)
			}
			i++
		}
	}
	if len(sample) == 0 {
		return nil
	}
	din := storage.NewTable(m.AggIn, cteTable.Schema.Clone(), m.Parts)
	din.DistCol = 0
	din.PK = cteTable.PK
	for _, r := range sampleRows {
		din.Insert(r)
	}
	ctx.RT.Results.Put(m.AggIn, din)
	rows, err := exec.RunContext(ctx.Ctx, m.Restricted, ctx.RT, &ctx.Stats.Exec)
	if err != nil {
		return err
	}
	recomputed := make(map[sqltypes.Key]sqltypes.Row, len(rows))
	for _, r := range rows {
		recomputed[r[m.Key].Key()] = r
	}
	for k := range sample {
		want, haveWant := recomputed[k]
		got, haveGot := cached[k]
		if haveWant != haveGot || (haveWant && !want.Equal(got)) {
			return fmt.Errorf("incremental-aggregate cross-check failed on %s: cached group %v diverges from scratch recomputation", m.CTE, k)
		}
	}
	return nil
}

// Explain implements Step.
func (m *MaintainAggStep) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Maintain aggregates of %s into %s (cached groups %s over snapshot %s; re-fold only keys the frontier touched",
		m.CTE, m.Into, m.Acc, m.Snap)
	for _, p := range m.Props {
		fmt.Fprintf(&b, "; propagate via %s[%d->%d]", p.Table, p.From, p.To)
	}
	b.WriteString("; full plan on the first iteration) with:\n")
	b.WriteString(strings.TrimRight(indent(plan.ExplainTree(m.Restricted), "  "), "\n"))
	return b.String()
}
