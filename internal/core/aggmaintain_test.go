package core

import (
	"strings"
	"testing"

	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

// TestIncAggOrderingContract pins the maintenance contract stated in
// DESIGN.md §5f: the maintained program's output is byte-identical to
// the full re-fold's — row order and float SUM accumulation order
// included — because the splice walks the CTE in scan order and the
// restricted plan re-folds whole groups, never partial deltas.
func TestIncAggOrderingContract(t *testing.T) {
	queries := map[string]string{
		"PR":   strings.Replace(prQuery, "UNTIL 2 ITERATIONS", "UNTIL 10 ITERATIONS", 1),
		"SSSP": strings.Replace(ssspQuery, "UNTIL 5 ITERATIONS", "UNTIL 10 ITERATIONS", 1),
	}
	for name, sql := range queries {
		t.Run(name, func(t *testing.T) {
			on := DefaultOptions()
			on.CheckIncrementalAgg = true
			off := DefaultOptions()
			off.IncrementalAgg = false
			gotRows, stats := runIterative(t, newRT(t), sql, on)
			wantRows, _ := runIterative(t, newRT(t), sql, off)
			got, want := rowStrs(gotRows), rowStrs(wantRows)
			if len(got) != len(want) {
				t.Fatalf("row counts differ: %d vs %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("row %d: maintained %q vs full %q", i, got[i], want[i])
				}
			}
			if stats.AggFullRows == 0 {
				t.Error("maintenance never engaged")
			}
		})
	}
}

// idResult is an identity plan over a named intermediate result —
// enough to drive MaintainAggStep's runtime directly, where the plans
// are opaque.
func idResult(name string, schema sqltypes.Schema) *plan.NamedResult {
	cols := make([]plan.ColInfo, len(schema))
	for i, c := range schema {
		cols[i] = plan.ColInfo{Name: c.Name, Type: c.Type}
	}
	return &plan.NamedResult{Name: name, Alias: name, Cols: cols}
}

func kvTable(name string, parts int, kv ...int64) *storage.Table {
	schema := sqltypes.Schema{{Name: "k", Type: sqltypes.Int}, {Name: "v", Type: sqltypes.Int}}
	tb := storage.NewTable(name, schema, parts)
	tb.DistCol = 0
	for i := 0; i < len(kv); i += 2 {
		tb.Insert(sqltypes.Row{sqltypes.NewInt(kv[i]), sqltypes.NewInt(kv[i+1])})
	}
	return tb
}

func maintainFixture() *MaintainAggStep {
	schema := sqltypes.Schema{{Name: "k", Type: sqltypes.Int}, {Name: "v", Type: sqltypes.Int}}
	return &MaintainAggStep{
		Into: "m", Full: idResult("c", schema), Restricted: idResult("AggIn#c", schema),
		AggIn: "AggIn#c", Acc: "Agg#c", Snap: "AggSnap#c", CTE: "c", Key: 0, Parts: 1,
	}
}

// TestMaintainStepDirect drives the step's runtime paths by hand with
// identity plans: full fold on the first iteration, group-granular
// maintenance on the second, and dynamic fallback when the CTE stops
// being key-identified.
func TestMaintainStepDirect(t *testing.T) {
	rt := newRT(t)
	ctx := &Context{RT: rt, Stats: &Stats{}}
	step := maintainFixture()

	// Missing CTE is an error.
	if _, err := step.Run(ctx, 0); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("missing CTE: err = %v", err)
	}

	// First iteration: no accumulator yet, full path.
	rt.Results.Put("c", kvTable("c", 1, 1, 10, 2, 20, 3, 30))
	next, err := step.Run(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if next != 5 {
		t.Errorf("next = %d", next)
	}
	if got := ctx.Stats.AggFullRows; got != 3 {
		t.Errorf("AggFullRows = %d, want 3", got)
	}
	if got := ctx.Stats.AggInputRows; got != 3 {
		t.Errorf("AggInputRows = %d, want 3 (first iteration is a full fold)", got)
	}
	if rt.Results.Get("Agg#c") == nil || rt.Results.Get("AggSnap#c") == nil {
		t.Fatal("accumulator slots not cached")
	}

	// Second iteration: key 1 changed, keys 2 and 3 must be served from
	// the cache; only the one affected row feeds the restricted plan.
	rt.Results.Put("c", kvTable("c", 1, 1, 11, 2, 20, 3, 30))
	if _, err := step.Run(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Stats.AggInputRows; got != 4 {
		t.Errorf("AggInputRows = %d, want 4 (3 full + 1 maintained)", got)
	}
	out := rt.Results.Get("m")
	if out == nil {
		t.Fatal("no output")
	}
	got := make([]string, 0, 3)
	for _, r := range out.AllRows() {
		got = append(got, r.String())
	}
	want := []string{"1, 11", "2, 20", "3, 30"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("maintained output = %v, want %v (CTE scan order)", got, want)
	}
	// The transient restricted input must not outlive the step.
	if rt.Results.Get("AggIn#c") != nil {
		t.Error("AggIn#c leaked past the step")
	}

	// Duplicate keys mean groups are no longer key-identified: the step
	// must fall back to the full plan, not certify a wrong cache.
	rt.Results.Put("c", kvTable("c", 1, 1, 12, 2, 20, 3, 30, 3, 31))
	before := ctx.Stats.AggInputRows
	if _, err := step.Run(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Stats.AggInputRows - before; got != 4 {
		t.Errorf("fallback fed %d rows, want 4 (the whole CTE)", got)
	}

	if !strings.Contains(step.Explain(), "Maintain aggregates of c into m") {
		t.Errorf("explain = %q", step.Explain())
	}
}

// TestMaintainCrossCheckCatchesPoisonedAccumulator proves the dynamic
// cross-check (Config.CheckIncrementalAgg) is a real oracle: corrupt
// one cached group between iterations and the next maintained fold
// must fail the query instead of serving the stale row.
func TestMaintainCrossCheckCatchesPoisonedAccumulator(t *testing.T) {
	rt := newRT(t)
	ctx := &Context{RT: rt, Stats: &Stats{}}
	step := maintainFixture()
	step.Check = true

	rt.Results.Put("c", kvTable("c", 1, 1, 10, 2, 20, 3, 30))
	if _, err := step.Run(ctx, 0); err != nil {
		t.Fatal(err)
	}
	// Poison the cached output for key 2 — the first unaffected key in
	// scan order, which the deterministic sample always covers.
	rt.Results.Put("Agg#c", kvTable("Agg#c", 1, 1, 10, 2, 99, 3, 30))
	rt.Results.Put("c", kvTable("c", 1, 1, 11, 2, 20, 3, 30))
	if _, err := step.Run(ctx, 0); err == nil || !strings.Contains(err.Error(), "cross-check") {
		t.Fatalf("poisoned accumulator not caught: err = %v", err)
	}

	// Sanity: with the check off, the same poison is served silently —
	// which is exactly why the verifier proves the one-writer rule
	// statically and CI arms the check dynamically.
	step.Check = false
	rt.Results.Put("Agg#c", kvTable("Agg#c", 1, 1, 10, 2, 99, 3, 30))
	rt.Results.Put("AggSnap#c", kvTable("AggSnap#c", 1, 1, 11, 2, 20, 3, 30))
	rt.Results.Put("c", kvTable("c", 1, 1, 12, 2, 20, 3, 30))
	if _, err := step.Run(ctx, 0); err != nil {
		t.Fatal(err)
	}
	for _, r := range rt.Results.Get("m").AllRows() {
		if r.String() == "2, 99" {
			return
		}
	}
	t.Error("expected the unchecked run to serve the poisoned row (documents what the check defends against)")
}
