package core

import (
	"strings"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/parser"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

func TestMergeStepAppendsRowsWithNewKeys(t *testing.T) {
	rt := newRT(t)
	// The merge is a full outer combination on the key: working rows
	// whose key does not exist in the CTE table are appended (frontier
	// expansion — see DESIGN.md; the paper's cte LEFT JOIN working
	// would silently drop them), existing keys keep update semantics.
	rows, _ := runIterative(t, rt,
		`WITH ITERATIVE c (k, v) AS (
			SELECT 1, 10
		 ITERATE SELECT k + 1, v + 1 FROM c WHERE k = 1
		 UNTIL 3 ITERATIONS)
		 SELECT k, v FROM c ORDER BY k`, DefaultOptions())
	got := rowStrs(rows)
	if len(got) != 2 || got[0] != "1, 10" || got[1] != "2, 11" {
		t.Errorf("rows = %v (new-key working rows must be appended, original kept)", got)
	}
}

func TestMergeStepDirect(t *testing.T) {
	rt := newRT(t)
	schema := sqltypes.Schema{{Name: "k", Type: sqltypes.Int}, {Name: "v", Type: sqltypes.Int}}
	cte := storage.NewTable("c", schema, 2)
	cte.InsertBatch([]sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewInt(10)},
		{sqltypes.NewInt(2), sqltypes.NewInt(20)},
		{sqltypes.NewInt(3), sqltypes.NewInt(30)},
	})
	work := storage.NewTable("w", schema, 2)
	work.Insert(sqltypes.Row{sqltypes.NewInt(2), sqltypes.NewInt(99)})
	rt.Results.Put("c", cte)
	rt.Results.Put("w", work)

	ctx := &Context{RT: rt, Stats: &Stats{}}
	step := &MergeStep{CTE: "c", Work: "w", Into: "m", Key: 0, Parts: 2}
	next, err := step.Run(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if next != 5 {
		t.Errorf("next = %d", next)
	}
	m := rt.Results.Get("m")
	if m == nil || m.Len() != 3 {
		t.Fatalf("merged table missing or wrong size")
	}
	byKey := map[int64]int64{}
	for _, r := range m.AllRows() {
		byKey[r[0].Int()] = r[1].Int()
	}
	if byKey[1] != 10 || byKey[2] != 99 || byKey[3] != 30 {
		t.Errorf("merged = %v", byKey)
	}
	if !strings.Contains(step.Explain(), "Merge w into m over c") {
		t.Errorf("explain = %q", step.Explain())
	}
	// Missing inputs are errors.
	if _, err := (&MergeStep{CTE: "zz", Work: "w", Into: "m", Parts: 1}).Run(ctx, 0); err == nil {
		t.Error("missing cte should fail")
	}
	if _, err := (&MergeStep{CTE: "c", Work: "zz", Into: "m", Parts: 1}).Run(ctx, 0); err == nil {
		t.Error("missing working table should fail")
	}
	// Duplicate keys in the working table are the §II run-time error.
	work.Insert(sqltypes.Row{sqltypes.NewInt(2), sqltypes.NewInt(77)})
	if _, err := step.Run(ctx, 4); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate-key merge should fail, got %v", err)
	}
}

func TestMergePathExplain(t *testing.T) {
	rt := newRT(t)
	stmt, _ := parser.Parse(ssspQuery)
	prog, err := Rewrite(stmt.(*ast.SelectStmt), rt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := prog.Explain()
	// SSSP's MIN rides a LEAST envelope, so the default options maintain
	// the body aggregation instead of re-materializing it.
	wantInOrder := []string{
		"Maintain aggregates of sssp into Intermediate#sssp",
		"Merge Intermediate#sssp into Merge#sssp over sssp",
		"Rename Merge#sssp to sssp.",
		"Delete tuples from Intermediate#sssp.",
		"Increment loop counter",
	}
	pos := -1
	for _, frag := range wantInOrder {
		p := strings.Index(out, frag)
		if p < 0 {
			t.Errorf("explain missing %q:\n%s", frag, out)
			continue
		}
		if p < pos {
			t.Errorf("fragment %q out of order", frag)
		}
		pos = p
	}
}

func TestCopyBackStepErrors(t *testing.T) {
	rt := newRT(t)
	ctx := &Context{RT: rt, Stats: &Stats{}}
	if _, err := (&CopyBackStep{From: "missing", To: "alsoMissing", Parts: 1}).Run(ctx, 0); err == nil {
		t.Error("missing source should fail")
	}
	schema := sqltypes.Schema{{Name: "k", Type: sqltypes.Int}}
	src := storage.NewTable("s", schema, 1)
	rt.Results.Put("s", src)
	if _, err := (&CopyBackStep{From: "s", To: "missing", Parts: 1}).Run(ctx, 0); err == nil {
		t.Error("missing destination should fail")
	}
}

func TestRenameStepErrors(t *testing.T) {
	rt := newRT(t)
	ctx := &Context{RT: rt, Stats: &Stats{}}
	if _, err := (&RenameStep{From: "missing", To: "x"}).Run(ctx, 0); err == nil {
		t.Error("renaming a missing result should fail")
	}
}

func TestProgramStepErrorIncludesStepNumber(t *testing.T) {
	rt := newRT(t)
	prog := &Program{
		Steps: []Step{&RenameStep{From: "missing", To: "x"}},
		Parts: 1,
	}
	_, err := prog.Run(rt, nil)
	if err == nil || !strings.Contains(err.Error(), "step 1") {
		t.Errorf("error should name the failing step: %v", err)
	}
}
