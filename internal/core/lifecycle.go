package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// Query lifecycle errors: a running step program polls its
// context.Context at every cooperative checkpoint — each step boundary,
// each scheduler region, each MPP partition batch, and the executor's
// scan/join inner loops at a coarse row stride — and a fired context
// surfaces as one of the two sentinels below, wrapped in a
// QueryLifecycleError that names the iteration and step reached. The
// iteration boundary is the natural cancellation unit (the paper's
// loop operator makes a single statement run unboundedly long), but
// the finer checkpoints bound the latency of a kill to well under one
// iteration even when an iteration itself is slow.

// ErrQueryCanceled is the sentinel wrapped by every cancellation
// failure: the caller's context was canceled while the query was
// running. Detect it with errors.Is and recover the iteration and step
// reached with errors.As on *QueryLifecycleError.
//
//lint:ignore coreerrors sentinel matched by errors.Is; QueryLifecycleError carries the iteration and step
var ErrQueryCanceled = errors.New("query canceled")

// ErrQueryTimeout is the sentinel wrapped by every deadline failure:
// the caller's context deadline (or the engine's Config.QueryTimeout)
// expired while the query was running. Detect it with errors.Is and
// recover the iteration and step reached with errors.As on
// *QueryLifecycleError.
//
//lint:ignore coreerrors sentinel matched by errors.Is; QueryLifecycleError carries the iteration and step
var ErrQueryTimeout = errors.New("query deadline exceeded")

// QueryLifecycleError reports where a canceled or timed-out query
// stopped: how many loop iterations had completed and which step of
// the rewritten program was about to run. Match the class with
// errors.Is(err, ErrQueryCanceled) or errors.Is(err, ErrQueryTimeout)
// and recover the position with errors.As.
type QueryLifecycleError struct {
	// Cause is the context error that fired (context.Canceled or
	// context.DeadlineExceeded).
	Cause error
	// Iteration is the number of completed loop iterations when the
	// query stopped (0 when it stopped before or outside a loop).
	Iteration int
	// Step is the 1-based index of the step that observed the
	// cancellation; 0 when the query stopped outside the step program
	// (final query, plain statement, recursive CTE).
	Step int
	// Where labels the execution phase for positions outside the step
	// program ("final query", "recursive CTE", ...).
	Where string
}

// Error implements error.
func (e *QueryLifecycleError) Error() string {
	var b strings.Builder
	if errors.Is(e.Cause, context.DeadlineExceeded) {
		b.WriteString("query deadline exceeded")
	} else {
		b.WriteString("query canceled")
	}
	fmt.Fprintf(&b, " at iteration %d", e.Iteration)
	if e.Step > 0 {
		fmt.Fprintf(&b, ", step %d", e.Step)
	}
	if e.Where != "" {
		fmt.Fprintf(&b, " (%s)", e.Where)
	}
	return b.String()
}

// Unwrap exposes both the class sentinel (ErrQueryCanceled or
// ErrQueryTimeout) and the underlying context error, so errors.Is
// works against either.
func (e *QueryLifecycleError) Unwrap() []error {
	if errors.Is(e.Cause, context.DeadlineExceeded) {
		return []error{ErrQueryTimeout, e.Cause}
	}
	return []error{ErrQueryCanceled, e.Cause}
}

// isContextErr reports whether err stems from a fired context — either
// a bare context sentinel bubbled up from the executor layers (which
// cannot import this package) or an already-wrapped lifecycle error.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// WrapCancel converts a bare context error into the structured
// QueryLifecycleError, stamping the iteration and step (1-based; 0 for
// positions outside the step program) reached. Errors that are neither
// context cancellations nor deadline expiries — and errors already
// wrapped — pass through unchanged.
func WrapCancel(err error, iteration, step int, where string) error {
	if err == nil {
		return nil
	}
	var le *QueryLifecycleError
	if errors.As(err, &le) {
		return err
	}
	if !isContextErr(err) {
		return err
	}
	cause := err
	if errors.Is(err, context.DeadlineExceeded) {
		cause = context.DeadlineExceeded
	} else {
		cause = context.Canceled
	}
	return &QueryLifecycleError{Cause: cause, Iteration: iteration, Step: step, Where: where}
}
