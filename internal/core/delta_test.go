package core

import (
	"math"
	"strings"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/catalog"
	"dbspinner/internal/exec"
	"dbspinner/internal/parser"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

func deltaOptions() Options {
	o := DefaultOptions()
	o.DeltaIteration = true
	return o
}

// chainRT is the graph of TestSSSPMergePath: 1 -> 2 (w 1),
// 2 -> 3 (w 2), 1 -> 3 (w 5). SSSP converges in two iterations, so the
// later ones run over an empty frontier in delta mode.
func chainRT(t *testing.T) *exec.StoreRuntime {
	t.Helper()
	cat := catalog.New(1)
	edges, err := cat.Create("edges", sqltypes.Schema{
		{Name: "src", Type: sqltypes.Int},
		{Name: "dst", Type: sqltypes.Int},
		{Name: "weight", Type: sqltypes.Float},
	}, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []struct {
		s, d int64
		w    float64
	}{{1, 2, 1}, {2, 3, 2}, {1, 3, 5}} {
		edges.Insert(sqltypes.Row{sqltypes.NewInt(e.s), sqltypes.NewInt(e.d), sqltypes.NewFloat(e.w)})
	}
	return exec.NewStoreRuntime(cat, storage.NewResultStore())
}

func hasDeltaStep(prog *Program) bool {
	for _, s := range prog.Steps {
		if _, ok := s.(*DeltaMaterializeStep); ok {
			return true
		}
	}
	return false
}

// TestDeltaIterationSSSPIdentical is the tentpole acceptance check at
// the core layer: with DeltaIteration enabled the SSSP query produces
// byte-identical rows while Ri evaluates strictly fewer input rows
// than the full-table baseline would have.
func TestDeltaIterationSSSPIdentical(t *testing.T) {
	fullRows, fullStats := runIterative(t, chainRT(t), ssspQuery, DefaultOptions())
	deltaRows, deltaStats := runIterative(t, chainRT(t), ssspQuery, deltaOptions())

	if got, want := strings.Join(rowStrs(deltaRows), "|"), strings.Join(rowStrs(fullRows), "|"); got != want {
		t.Errorf("delta mode changed the result:\n  delta: %s\n  full:  %s", got, want)
	}
	if fullStats.RiFullRows != 0 || fullStats.RiInputRows != 0 {
		t.Errorf("baseline should have no delta steps: full=%d input=%d",
			fullStats.RiFullRows, fullStats.RiInputRows)
	}
	if deltaStats.RiFullRows == 0 {
		t.Fatal("delta mode did not take the DeltaMaterializeStep path")
	}
	if deltaStats.RiInputRows >= deltaStats.RiFullRows {
		t.Errorf("frontier restriction saved nothing: input=%d full=%d",
			deltaStats.RiInputRows, deltaStats.RiFullRows)
	}
}

// Same check on the 2-partition default graph, exercising the
// partitioned FilterTableByKey path. This graph contains the cycle
// 1 -> 2 -> 3 -> 1, so the frontier never shrinks within the 5
// iterations — the point here is partitioned correctness, not savings.
func TestDeltaIterationPartitionedGraph(t *testing.T) {
	fullRows, _ := runIterative(t, newRT(t), ssspQuery, DefaultOptions())
	deltaRows, stats := runIterative(t, newRT(t), ssspQuery, deltaOptions())
	if got, want := strings.Join(rowStrs(deltaRows), "|"), strings.Join(rowStrs(fullRows), "|"); got != want {
		t.Errorf("delta mode changed the result:\n  delta: %s\n  full:  %s", got, want)
	}
	if stats.RiFullRows == 0 || stats.RiInputRows > stats.RiFullRows {
		t.Errorf("delta accounting off: input=%d full=%d", stats.RiInputRows, stats.RiFullRows)
	}
}

// TestDeltaRewriteShape: the rewrite emits a DeltaMaterializeStep whose
// Explain names the frontier, the propagation rule derived from the
// sssp.node = IncomingEdges.dst / IncomingDistance.node =
// IncomingEdges.src equijoins, and the restricted plan; the plain
// rewrite of the same query does not.
func TestDeltaRewriteShape(t *testing.T) {
	rt := newRT(t)
	stmt, err := parser.Parse(ssspQuery)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Rewrite(stmt.(*ast.SelectStmt), rt, deltaOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !hasDeltaStep(prog) {
		t.Fatal("delta-eligible query did not get a DeltaMaterializeStep")
	}
	out := prog.Explain()
	for _, frag := range []string{
		"changed-row frontier of sssp",
		"delta Delta#sssp",
		"propagate via edges[0->1]",
		"DeltaIn#sssp",
		"materialize changed rows into Delta#sssp",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("explain missing %q:\n%s", frag, out)
		}
	}

	plain, err := Rewrite(stmt.(*ast.SelectStmt), rt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if hasDeltaStep(plain) {
		t.Error("DeltaIteration off must not emit delta steps")
	}
}

// TestDeltaFallsBackWhenUnsafe: queries the analysis cannot prove safe
// run on the ordinary merge path (same results, no delta step).
func TestDeltaFallsBackWhenUnsafe(t *testing.T) {
	cases := []struct {
		name string
		sql  string
	}{
		{
			// Output column 0 is an expression, not the bare CTE key:
			// restricting the scan would drop unaffected keys from the result.
			"computed key column",
			`WITH ITERATIVE c (k, v) AS (SELECT 1, 0 UNION ALL SELECT 2, 0
			 ITERATE SELECT k + 0, v + 1 FROM c WHERE k >= 1 UNTIL 2 ITERATIONS)
			 SELECT k, v FROM c ORDER BY k`,
		},
		{
			// The inner self-reference is not routed to the outer key by
			// any equijoin, so changed keys cannot be propagated.
			"unrouted self join",
			`WITH ITERATIVE c (k, v) AS (SELECT 1, 0 UNION ALL SELECT 2, 0
			 ITERATE SELECT a.k, b.v + 1 FROM c AS a JOIN c AS b ON a.v <= b.v WHERE a.k = b.k + 0
			 UNTIL 2 ITERATIONS)
			 SELECT k, v FROM c ORDER BY k`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stmt, err := parser.Parse(tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Rewrite(stmt.(*ast.SelectStmt), newRT(t), deltaOptions())
			if err != nil {
				t.Fatal(err)
			}
			if hasDeltaStep(prog) {
				t.Fatal("unsafe query must fall back to the full merge path")
			}
			fullRows, _ := runIterative(t, newRT(t), tc.sql, DefaultOptions())
			deltaRows, _ := runIterative(t, newRT(t), tc.sql, deltaOptions())
			if got, want := strings.Join(rowStrs(deltaRows), "|"), strings.Join(rowStrs(fullRows), "|"); got != want {
				t.Errorf("fallback changed the result:\n  delta: %s\n  full:  %s", got, want)
			}
		})
	}
}

// TestUpdatesTerminationReachesFixpoint is the regression test for the
// UNTIL n UPDATES overcounting bug: the counter used to advance by the
// materialized row count, so an Ri that reproduces the table unchanged
// still "updated" every row and a large N spun the loop until N rows
// had been re-materialized. With update counting fed by the
// identification pass, both values converge to 3 after three changing
// iterations, the fourth changes nothing, and the loop stops there —
// in every execution mode.
func TestUpdatesTerminationReachesFixpoint(t *testing.T) {
	cases := []struct {
		name string
		sql  string
		opts Options
	}{
		{"copy-back path", `WITH ITERATIVE c (k, v) AS (
			SELECT 1, 0 UNION ALL SELECT 2, 0
		 ITERATE SELECT k, LEAST(v + 1, 3) FROM c
		 UNTIL 100 UPDATES)
		 SELECT k, v FROM c ORDER BY k`, DefaultOptions()},
		{"merge path", `WITH ITERATIVE c (k, v) AS (
			SELECT 1, 0 UNION ALL SELECT 2, 0
		 ITERATE SELECT k, LEAST(v + 1, 3) FROM c WHERE k >= 1
		 UNTIL 100 UPDATES)
		 SELECT k, v FROM c ORDER BY k`, DefaultOptions()},
		{"merge path, delta iteration", `WITH ITERATIVE c (k, v) AS (
			SELECT 1, 0 UNION ALL SELECT 2, 0
		 ITERATE SELECT k, LEAST(v + 1, 3) FROM c WHERE k >= 1
		 UNTIL 100 UPDATES)
		 SELECT k, v FROM c ORDER BY k`, deltaOptions()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows, stats := runIterative(t, newRT(t), tc.sql, tc.opts)
			got := rowStrs(rows)
			if len(got) != 2 || got[0] != "1, 3" || got[1] != "2, 3" {
				t.Errorf("rows = %v", got)
			}
			// Iterations 1-3 change both rows, iteration 4 reproduces the
			// table and terminates the loop well short of N=100.
			if stats.Iterations != 4 {
				t.Errorf("iterations = %d, want 4 (fixpoint must stop the loop)", stats.Iterations)
			}
		})
	}
}

// TestUpdatesCountsActualChanges: the counter reflects changed rows,
// not materialized rows — one of the two rows is frozen from the
// start, so each iteration contributes 1 update and UNTIL 4 UPDATES
// takes four iterations (the old row-count scheme stopped after two).
func TestUpdatesCountsActualChanges(t *testing.T) {
	rows, stats := runIterative(t, newRT(t),
		`WITH ITERATIVE c (k, v) AS (
			SELECT 1, 0 UNION ALL SELECT 2, 100
		 ITERATE SELECT k, LEAST(v + 1, 100) FROM c
		 UNTIL 4 UPDATES)
		 SELECT k, v FROM c ORDER BY k`, DefaultOptions())
	got := rowStrs(rows)
	if len(got) != 2 || got[0] != "1, 4" || got[1] != "2, 100" {
		t.Errorf("rows = %v", got)
	}
	if stats.Iterations != 4 {
		t.Errorf("iterations = %d, want 4", stats.Iterations)
	}
}

// TestSSSPFrontierExpansion: merge append semantics let an SSSP seeded
// with only the source row grow the reached set iteration by iteration
// (the paper's cte LEFT JOIN working formulation would pin the result
// to the seed keys forever). Graph of newRT: 1->2 (0.5), 1->3 (0.5),
// 2->3 (1.0), 3->1 (1.0).
func TestSSSPFrontierExpansion(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"full", DefaultOptions()},
		{"delta iteration", deltaOptions()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rows, _ := runIterative(t, newRT(t),
				`WITH ITERATIVE s (node, dist) AS (
					SELECT 1, 0.0
				 ITERATE SELECT e.dst, MIN(s.dist + e.weight)
				  FROM s JOIN edges AS e ON s.node = e.src
				  WHERE e.weight < 10
				  GROUP BY e.dst
				 UNTIL 2 ITERATIONS)
				 SELECT node, dist FROM s ORDER BY node`, tc.opts)
			// Iteration 1 reaches 2 and 3 from the seed; iteration 2
			// relaxes 1 via 3->1 and keeps 2, 3. All three nodes must be
			// present: 2 and 3 were appended as new keys.
			want := map[int64]float64{1: 1.5, 2: 0.5, 3: 0.5}
			if len(rows) != len(want) {
				t.Fatalf("rows = %v (frontier did not expand)", rowStrs(rows))
			}
			for _, r := range rows {
				if w, ok := want[r[0].Int()]; !ok || math.Abs(r[1].Float()-w) > 1e-12 {
					t.Errorf("node %d dist = %v, want %v", r[0].Int(), r[1].Float(), want[r[0].Int()])
				}
			}
		})
	}
}

// TestDeltaTerminationRaggedRows: rows too short to carry the key
// column are invisible to the snapshot/changedRows comparison on BOTH
// sides — they used to be skipped by the comparison but counted by the
// snapshot, so a stable table containing one short row reported a
// phantom disappearance every iteration.
func TestDeltaTerminationRaggedRows(t *testing.T) {
	rt := newRT(t)
	schema := sqltypes.Schema{{Name: "v", Type: sqltypes.Int}, {Name: "k", Type: sqltypes.Int}}
	mk := func(rows ...sqltypes.Row) {
		tbl := storage.NewTable("c", schema, 1)
		tbl.InsertBatch(rows)
		rt.Results.Put("c", tbl)
	}
	l := &LoopState{Term: ast.Termination{Type: ast.TermDelta, N: 1}, CTEName: "c", key: 1}
	ctx := &Context{RT: rt, Stats: &Stats{}}

	mk(
		sqltypes.Row{sqltypes.NewInt(10), sqltypes.NewInt(1)},
		sqltypes.Row{sqltypes.NewInt(20), sqltypes.NewInt(2)},
		sqltypes.Row{sqltypes.NewInt(99)}, // short: no key column
	)
	if err := l.snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	if l.prevCount != 2 {
		t.Errorf("prevCount = %d, want 2 (short rows carry no key)", l.prevCount)
	}
	// Identical table: zero changes, even though the short row can
	// neither match nor disappear.
	if n, err := l.changedRows(ctx); err != nil || n != 0 {
		t.Errorf("stable ragged table: changed = %d, err = %v, want 0", n, err)
	}
	// Dropping a keyed row is one change; dropping the short row is not.
	mk(sqltypes.Row{sqltypes.NewInt(10), sqltypes.NewInt(1)})
	if n, err := l.changedRows(ctx); err != nil || n != 1 {
		t.Errorf("one keyed row disappeared: changed = %d, err = %v, want 1", n, err)
	}
}
