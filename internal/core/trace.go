package core

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// IterationTrace is the runtime trace of one traced execution
// (Options.Trace, Config.TraceIterations, EXPLAIN ANALYZE): one span
// per loop iteration — wall clock, rows written to working tables,
// and the delta-frontier size the iteration's identification pass
// found — plus the cumulative wall clock of every step. It is
// captured on the same cooperative checkpoints the cancellation
// plumbing polls, so tracing adds no extra synchronization points;
// when tracing is off the execution path allocates nothing and never
// reads the clock.
type IterationTrace struct {
	// Spans holds one entry per completed loop iteration, in order.
	Spans []IterationSpan
	// Steps holds the cumulative timing of each program step, indexed
	// by 0-based step position (entry i is step i+1).
	Steps []StepTiming
	// TotalWall is the wall clock of the whole execution, including
	// the final query; FinalRows is the row count it returned.
	TotalWall time.Duration
	FinalRows int
	// Retries holds one entry per iteration retry (Options.Retry), in
	// the order the retries fired. Spans of an abandoned attempt are
	// rewound at restore, so Spans only ever describes work that
	// contributed to the final result; Retries records what it cost to
	// get there.
	Retries []RetryRecord

	// mu guards concurrent recording: scheduled steps of one region
	// report their timings from worker goroutines.
	mu          sync.Mutex
	started     time.Time
	boundary    time.Time
	lastUpdated int64
}

// IterationSpan is the trace record of one loop iteration.
type IterationSpan struct {
	// Iteration is the 1-based iteration number.
	Iteration int
	// Wall is the elapsed time since the previous iteration boundary
	// (the first span also covers the pre-loop steps).
	Wall time.Duration
	// Rows is the number of rows written to working tables during the
	// iteration.
	Rows int64
	// Frontier is the changed-row count the iteration's identification
	// pass found — the delta frontier driving UNTIL n UPDATES
	// termination and delta iteration (0 on the rename path, which has
	// no identification pass).
	Frontier int64
}

// RetryRecord is the trace record of one checkpoint retry.
type RetryRecord struct {
	// Iteration is the 1-based iteration being re-attempted (the
	// iteration the failed attempt was executing).
	Iteration int
	// Step is the 1-based step index whose failure triggered the retry.
	Step int
	// Rung names the plan variant the retry runs under ("same-plan",
	// "serial", "volcano") — the graceful-degradation ladder position.
	Rung string
	// Err is the failure that was retried, rendered.
	Err string
}

// StepTiming is the cumulative execution record of one program step.
type StepTiming struct {
	// Runs counts how many times the step executed (loop-body steps
	// run once per iteration).
	Runs int64
	// Wall is the total time spent inside the step's Run.
	Wall time.Duration
}

func newIterationTrace(steps int) *IterationTrace {
	now := time.Now()
	return &IterationTrace{Steps: make([]StepTiming, steps), started: now, boundary: now}
}

// noteIteration records one completed iteration at its loop boundary.
// updatedRows is the cumulative Stats.UpdatedRows counter; the span
// stores the delta since the previous boundary.
func (t *IterationTrace) noteIteration(iter int, updatedRows, frontier int64) {
	now := time.Now()
	t.mu.Lock()
	t.Spans = append(t.Spans, IterationSpan{
		Iteration: iter,
		Wall:      now.Sub(t.boundary),
		Rows:      updatedRows - t.lastUpdated,
		Frontier:  frontier,
	})
	t.lastUpdated = updatedRows
	t.boundary = now
	t.mu.Unlock()
}

// noteStep accumulates one step execution's wall clock. Safe for
// concurrent use (scheduled regions report from worker goroutines).
func (t *IterationTrace) noteStep(step int, d time.Duration) {
	t.mu.Lock()
	if step >= 0 && step < len(t.Steps) {
		t.Steps[step].Runs++
		t.Steps[step].Wall += d
	}
	t.mu.Unlock()
}

// noteRetry records one checkpoint retry.
func (t *IterationTrace) noteRetry(iter, step int, rung string, err error) {
	t.mu.Lock()
	t.Retries = append(t.Retries, RetryRecord{Iteration: iter, Step: step, Rung: rung, Err: err.Error()})
	t.mu.Unlock()
}

// mark returns the restore point of the trace — the span count and the
// cumulative-rows watermark — for checkpoint capture.
func (t *IterationTrace) mark() (spans int, lastUpdated int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.Spans), t.lastUpdated
}

// rewind discards the spans of an abandoned attempt, restoring the
// trace to a captured mark. The iteration boundary resets to now: the
// retried iteration's span will time the retry that produced it.
func (t *IterationTrace) rewind(spans int, lastUpdated int64) {
	t.mu.Lock()
	if spans >= 0 && spans <= len(t.Spans) {
		t.Spans = t.Spans[:spans]
	}
	t.lastUpdated = lastUpdated
	t.boundary = time.Now()
	t.mu.Unlock()
}

// finish stamps the total wall clock and final row count.
func (t *IterationTrace) finish(rows int) {
	t.mu.Lock()
	t.TotalWall = time.Since(t.started)
	t.FinalRows = rows
	t.mu.Unlock()
}

// Render prints the trace the way EXPLAIN ANALYZE shows it: one line
// per iteration, one line per executed step, and a total.
func (t *IterationTrace) Render() string {
	var b strings.Builder
	for _, s := range t.Spans {
		fmt.Fprintf(&b, "Iteration %d: %s wall, %d rows, frontier %d.\n", s.Iteration, s.Wall, s.Rows, s.Frontier)
	}
	for _, r := range t.Retries {
		fmt.Fprintf(&b, "Retry iteration %d: step %d failed (%s), re-ran on the %s plan.\n", r.Iteration, r.Step, r.Err, r.Rung)
	}
	for i, st := range t.Steps {
		if st.Runs == 0 {
			continue
		}
		fmt.Fprintf(&b, "Step %d timing: %d runs, %s total.\n", i+1, st.Runs, st.Wall)
	}
	fmt.Fprintf(&b, "Total: %s wall, %d rows, %d iterations.\n", t.TotalWall, t.FinalRows, len(t.Spans))
	return b.String()
}
