package core

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// IterationTrace is the runtime trace of one traced execution
// (Options.Trace, Config.TraceIterations, EXPLAIN ANALYZE): one span
// per loop iteration — wall clock, rows written to working tables,
// and the delta-frontier size the iteration's identification pass
// found — plus the cumulative wall clock of every step. It is
// captured on the same cooperative checkpoints the cancellation
// plumbing polls, so tracing adds no extra synchronization points;
// when tracing is off the execution path allocates nothing and never
// reads the clock.
type IterationTrace struct {
	// Spans holds one entry per completed loop iteration, in order.
	Spans []IterationSpan
	// Steps holds the cumulative timing of each program step, indexed
	// by 0-based step position (entry i is step i+1).
	Steps []StepTiming
	// TotalWall is the wall clock of the whole execution, including
	// the final query; FinalRows is the row count it returned.
	TotalWall time.Duration
	FinalRows int

	// mu guards concurrent recording: scheduled steps of one region
	// report their timings from worker goroutines.
	mu          sync.Mutex
	started     time.Time
	boundary    time.Time
	lastUpdated int64
}

// IterationSpan is the trace record of one loop iteration.
type IterationSpan struct {
	// Iteration is the 1-based iteration number.
	Iteration int
	// Wall is the elapsed time since the previous iteration boundary
	// (the first span also covers the pre-loop steps).
	Wall time.Duration
	// Rows is the number of rows written to working tables during the
	// iteration.
	Rows int64
	// Frontier is the changed-row count the iteration's identification
	// pass found — the delta frontier driving UNTIL n UPDATES
	// termination and delta iteration (0 on the rename path, which has
	// no identification pass).
	Frontier int64
}

// StepTiming is the cumulative execution record of one program step.
type StepTiming struct {
	// Runs counts how many times the step executed (loop-body steps
	// run once per iteration).
	Runs int64
	// Wall is the total time spent inside the step's Run.
	Wall time.Duration
}

func newIterationTrace(steps int) *IterationTrace {
	now := time.Now()
	return &IterationTrace{Steps: make([]StepTiming, steps), started: now, boundary: now}
}

// noteIteration records one completed iteration at its loop boundary.
// updatedRows is the cumulative Stats.UpdatedRows counter; the span
// stores the delta since the previous boundary.
func (t *IterationTrace) noteIteration(iter int, updatedRows, frontier int64) {
	now := time.Now()
	t.mu.Lock()
	t.Spans = append(t.Spans, IterationSpan{
		Iteration: iter,
		Wall:      now.Sub(t.boundary),
		Rows:      updatedRows - t.lastUpdated,
		Frontier:  frontier,
	})
	t.lastUpdated = updatedRows
	t.boundary = now
	t.mu.Unlock()
}

// noteStep accumulates one step execution's wall clock. Safe for
// concurrent use (scheduled regions report from worker goroutines).
func (t *IterationTrace) noteStep(step int, d time.Duration) {
	t.mu.Lock()
	if step >= 0 && step < len(t.Steps) {
		t.Steps[step].Runs++
		t.Steps[step].Wall += d
	}
	t.mu.Unlock()
}

// finish stamps the total wall clock and final row count.
func (t *IterationTrace) finish(rows int) {
	t.mu.Lock()
	t.TotalWall = time.Since(t.started)
	t.FinalRows = rows
	t.mu.Unlock()
}

// Render prints the trace the way EXPLAIN ANALYZE shows it: one line
// per iteration, one line per executed step, and a total.
func (t *IterationTrace) Render() string {
	var b strings.Builder
	for _, s := range t.Spans {
		fmt.Fprintf(&b, "Iteration %d: %s wall, %d rows, frontier %d.\n", s.Iteration, s.Wall, s.Rows, s.Frontier)
	}
	for i, st := range t.Steps {
		if st.Runs == 0 {
			continue
		}
		fmt.Fprintf(&b, "Step %d timing: %d runs, %s total.\n", i+1, st.Runs, st.Wall)
	}
	fmt.Fprintf(&b, "Total: %s wall, %d rows, %d iterations.\n", t.TotalWall, t.FinalRows, len(t.Spans))
	return b.String()
}
