package core

import (
	"errors"
	"fmt"
	"runtime/debug"

	"dbspinner/internal/faultinject"
)

// Panic containment: no query may take down the engine. Panics are
// recovered at three nested layers — worker goroutines
// (faultinject.Contain around every spawn in the scheduler and the MPP
// machine), the step dispatcher (dispatch), and RunContext itself as
// the last resort — and converted into an InternalPanicError carrying
// the step, iteration and partition reached, the same provenance shape
// QueryLifecycleError gives cancellations.

// ErrInternalPanic is the sentinel wrapped by every contained panic: a
// step, worker goroutine or the final query panicked and the engine
// converted the panic into a structured error instead of crashing.
// Match with errors.Is; errors.As on *InternalPanicError recovers the
// panic value, stack, iteration, step and partition.
//
//lint:ignore coreerrors sentinel matched by errors.Is; InternalPanicError carries step, iteration and partition
var ErrInternalPanic = errors.New("internal panic")

// InternalPanicError is the structured error behind ErrInternalPanic:
// where the panic happened and what it carried. Match with errors.As.
type InternalPanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack string
	// Iteration is the number of completed loop iterations when the
	// panic fired (0 outside a loop).
	Iteration int
	// Step is the 1-based step index that panicked; 0 when the panic
	// fired outside the step program (final query, planning).
	Step int
	// Partition is the MPP partition index of the panicking worker,
	// -1 when the panic did not come from a partition worker.
	Partition int
}

// Error implements error.
func (e *InternalPanicError) Error() string {
	msg := fmt.Sprintf("internal panic at iteration %d", e.Iteration)
	if e.Step > 0 {
		msg += fmt.Sprintf(", step %d", e.Step)
	}
	if e.Partition >= 0 {
		msg += fmt.Sprintf(", partition %d", e.Partition)
	}
	return fmt.Sprintf("%s: %v", msg, e.Value)
}

// Unwrap exposes the class sentinel so errors.Is works.
func (e *InternalPanicError) Unwrap() error { return ErrInternalPanic }

// containPanic converts a recovered panic value into an error: an
// error-mode injection carrier unwraps to its plain error, a
// *faultinject.PanicError already contained by a worker keeps its
// partition, anything else becomes an InternalPanicError with the
// stack captured here.
func containPanic(v any, iteration, step int) error {
	if e, ok := faultinject.AsError(v); ok {
		return e
	}
	if pe, ok := v.(*faultinject.PanicError); ok {
		return &InternalPanicError{Value: pe.Value, Stack: string(pe.Stack),
			Iteration: iteration, Step: step, Partition: pe.Partition}
	}
	return &InternalPanicError{Value: v, Stack: string(debug.Stack()),
		Iteration: iteration, Step: step, Partition: -1}
}

// promotePanic lifts a *faultinject.PanicError travelling as an error
// (a contained worker panic bubbling up through a step's error return)
// into the structured InternalPanicError, stamping iteration and step.
// Every other error passes through unchanged.
func promotePanic(err error, iteration, step int) error {
	if err == nil {
		return nil
	}
	var pe *faultinject.PanicError
	if !errors.As(err, &pe) {
		return err
	}
	var ipe *InternalPanicError
	if errors.As(err, &ipe) {
		return err // already promoted upstream
	}
	return &InternalPanicError{Value: pe.Value, Stack: string(pe.Stack),
		Iteration: iteration, Step: step, Partition: pe.Partition}
}

// retryable reports whether a failed iteration may be retried from its
// checkpoint: context cancellations/deadlines and iteration-cap
// failures are final (retrying cannot change them); everything else —
// injected faults, contained panics, effect violations, transient
// executor errors — is worth bounded retries.
func retryable(err error) bool {
	if err == nil || isContextErr(err) {
		return false
	}
	var capErr *IterationCapError
	return !errors.As(err, &capErr)
}
